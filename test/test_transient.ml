(* Tests for the baseline transient solvers (backward Euler, trapezoidal,
   Gear/BDF2, frequency-domain FFT, Grünwald–Letnikov). *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_transient

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)

let step = Source.Step { amplitude = 1.0; delay = 0.0 }
let rc = Descriptor.scalar ~e:1.0 ~a:(-1.0) ~b:1.0

let max_err_of w exact =
  let y = Waveform.channel w 0 in
  let err = ref 0.0 in
  Array.iteri
    (fun i t -> if t > 0.0 then err := Float.max !err (Float.abs (y.(i) -. exact t)))
    w.Waveform.times;
  !err

(* ---------- one-step schemes ---------- *)

let test_schemes_track_rc () =
  let exact t = 1.0 -. exp (-.t) in
  List.iter
    (fun (scheme, bound) ->
      let w = Stepper.solve ~scheme ~h:0.01 ~t_end:5.0 rc [| step |] in
      check_bool (Stepper.scheme_name scheme) true (max_err_of w exact < bound))
    [
      (Stepper.Backward_euler, 5e-3);
      (Stepper.Trapezoidal, 1e-5);
      (Stepper.Gear2, 2e-4);
    ]

let convergence_order scheme =
  let exact t = 1.0 -. exp (-.t) in
  let err h = max_err_of (Stepper.solve ~scheme ~h ~t_end:2.0 rc [| step |]) exact in
  log (err 0.02 /. err 0.01) /. log 2.0

let test_backward_euler_order_one () =
  let p = convergence_order Stepper.Backward_euler in
  check_bool "≈ order 1" true (p > 0.8 && p < 1.3)

let test_trapezoidal_order_two () =
  let p = convergence_order Stepper.Trapezoidal in
  check_bool "≈ order 2" true (p > 1.7 && p < 2.3)

let test_gear_order_two () =
  let p = convergence_order Stepper.Gear2 in
  check_bool "≈ order 2" true (p > 1.7 && p < 2.3)

let test_schemes_on_dae () =
  (* singular E: x1' = −x1 + u; 0 = x2 − 2 x1 *)
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| -2.0; 1.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0 |]; [| 0.0 |] |] in
  let c = Mat.of_arrays [| [| 0.0; 1.0 |] |] in
  let sys = Descriptor.of_dense ~e ~a ~b ~c () in
  let exact t = 2.0 *. (1.0 -. exp (-.t)) in
  List.iter
    (fun scheme ->
      let w = Stepper.solve ~scheme ~h:0.005 ~t_end:3.0 sys [| step |] in
      check_bool (Stepper.scheme_name scheme ^ " on DAE") true
        (max_err_of w exact < 1e-2))
    [ Stepper.Backward_euler; Stepper.Trapezoidal; Stepper.Gear2 ]

let test_stepper_stability_stiff () =
  (* λ = −10⁶ with h = 0.01: A-stable schemes must not blow up *)
  let stiff = Descriptor.scalar ~e:1.0 ~a:(-1e6) ~b:1e6 in
  List.iter
    (fun scheme ->
      let w = Stepper.solve ~scheme ~h:0.01 ~t_end:1.0 stiff [| step |] in
      let y = Waveform.channel w 0 in
      check_bool (Stepper.scheme_name scheme ^ " stable") true
        (Float.abs y.(Array.length y - 1) < 2.0))
    [ Stepper.Backward_euler; Stepper.Trapezoidal; Stepper.Gear2 ]

let test_stepper_validation () =
  check_bool "h <= 0" true
    (try
       ignore (Stepper.solve ~scheme:Stepper.Gear2 ~h:0.0 ~t_end:1.0 rc [| step |]);
       false
     with Invalid_argument _ -> true);
  check_bool "source mismatch" true
    (try
       ignore (Stepper.solve ~scheme:Stepper.Gear2 ~h:0.1 ~t_end:1.0 rc [||]);
       false
     with Invalid_argument _ -> true)

let test_solve_states () =
  let w = Stepper.solve_states ~scheme:Stepper.Trapezoidal ~h:0.1 ~t_end:1.0 rc [| step |] in
  Alcotest.(check int) "all states observed" 1 (Waveform.channel_count w)

(* ---------- frequency-domain (FFT) method ---------- *)

let test_fft_alpha1_rc () =
  (* with enough samples the damped-contour FFT tracks the RC answer *)
  let w = Freq_domain.solve ~n_samples:512 ~alpha:1.0 ~t_end:5.0 rc [| step |] in
  let exact t = 1.0 -. exp (-.t) in
  check_bool "tracks analytic" true (max_err_of w exact < 0.1)

let test_fft_sample_count_improves () =
  let grid = Grid.uniform ~t_end:2.0 ~m:512 in
  let opm = Opm.simulate_fractional ~grid ~alpha:0.5 rc [| step |] in
  let err n =
    let w = Freq_domain.solve ~n_samples:n ~alpha:0.5 ~t_end:2.0 rc [| step |] in
    Error.waveform_error_db ~reference:opm.Sim_result.outputs w
  in
  let e8 = err 8 and e100 = err 100 in
  check_bool "paper's FFT-2 beats FFT-1" true (e100 < e8)

let test_fft_arbitrary_sample_count () =
  (* n = 100 is not a power of two — exercises Bluestein end-to-end *)
  let w = Freq_domain.solve ~n_samples:100 ~alpha:0.5 ~t_end:2.0 rc [| step |] in
  Alcotest.(check int) "100 samples" 100 (Waveform.sample_count w)

let test_fft_zero_damping_periodic_input () =
  (* σ = 0 is fine for a signal that is genuinely periodic on [0, T) *)
  let src = Source.Sine { amplitude = 1.0; freq_hz = 1.0; phase = 0.0; offset = 0.0 } in
  let w = Freq_domain.solve ~damping:0.0 ~n_samples:256 ~alpha:1.0 ~t_end:4.0 rc [| src |] in
  (* steady-state: x = (sin wt − w cos wt)/(1+w²), w = 2π; compare away
     from the initial transient (the σ=0 method yields the periodic
     steady state, not the transient) *)
  let w_ang = 2.0 *. Float.pi in
  let y = Waveform.channel w 0 in
  let err = ref 0.0 in
  Array.iteri
    (fun i t ->
      if t > 1.0 then
        let exact =
          ((sin (w_ang *. t)) -. (w_ang *. cos (w_ang *. t))) /. (1.0 +. (w_ang *. w_ang))
        in
        err := Float.max !err (Float.abs (y.(i) -. exact)))
    w.Waveform.times;
  check_bool "steady state" true (!err < 0.05)

let test_fft_validation () =
  check_bool "n < 2" true
    (try
       ignore (Freq_domain.solve ~n_samples:1 ~alpha:1.0 ~t_end:1.0 rc [| step |]);
       false
     with Invalid_argument _ -> true);
  check_bool "negative damping" true
    (try
       ignore (Freq_domain.solve ~damping:(-1.0) ~n_samples:8 ~alpha:1.0 ~t_end:1.0 rc [| step |]);
       false
     with Invalid_argument _ -> true)

(* ---------- Grünwald–Letnikov ---------- *)

let test_gl_weights () =
  (* α = 1: weights are (1, −1, 0, 0, …) — the first difference *)
  let w = Grunwald.weights ~alpha:1.0 4 in
  close "w0" 1.0 w.(0);
  close "w1" (-1.0) w.(1);
  close "w2" 0.0 w.(2);
  (* α = 0.5: w1 = −0.5, w2 = −0.125 *)
  let h = Grunwald.weights ~alpha:0.5 4 in
  close "h1" (-0.5) h.(1);
  close "h2" (-0.125) h.(2)

let test_gl_weights_sum_to_zero () =
  (* Σ w_j → 0 as the series converges for 0 < α (binomial theorem at 1) *)
  let w = Grunwald.weights ~alpha:0.7 2000 in
  let s = Array.fold_left ( +. ) 0.0 w in
  check_bool "partial sums shrink" true (Float.abs s < 0.01)

let test_gl_alpha1_matches_backward_euler () =
  (* α = 1 GL is exactly backward Euler *)
  let wgl = Grunwald.solve ~h:0.01 ~alpha:1.0 ~t_end:2.0 rc [| step |] in
  let wbe = Stepper.solve ~scheme:Stepper.Backward_euler ~h:0.01 ~t_end:2.0 rc [| step |] in
  let ygl = Waveform.channel wgl 0 and ybe = Waveform.channel wbe 0 in
  close "identical" 0.0 (Vec.max_abs_diff ygl ybe) ~tol:1e-10

let test_gl_tracks_mittag_leffler () =
  let w = Grunwald.solve ~h:0.002 ~alpha:0.5 ~t_end:2.0 rc [| step |] in
  let exact = Special.ml_step_response ~alpha:0.5 ~lambda:1.0 in
  let y = Waveform.channel w 0 in
  let err = ref 0.0 in
  Array.iteri
    (fun i t -> if t > 0.05 then err := Float.max !err (Float.abs (y.(i) -. exact t)))
    w.Waveform.times;
  check_bool "tracks ML" true (!err < 5e-3)

let test_gl_short_memory () =
  (* short memory must approach full memory as L grows, and full L is
     identical to the default *)
  let exact = Special.ml_step_response ~alpha:0.5 ~lambda:1.0 in
  let err w =
    let y = Waveform.channel w 0 in
    let e = ref 0.0 in
    Array.iteri
      (fun i t -> if t > 0.2 then e := Float.max !e (Float.abs (y.(i) -. exact t)))
      w.Waveform.times;
    !e
  in
  let h = 0.005 and t_end = 2.0 in
  let full = Grunwald.solve ~h ~alpha:0.5 ~t_end rc [| step |] in
  let e_full = err full in
  let e_short l = err (Grunwald.solve ~memory_length:l ~h ~alpha:0.5 ~t_end rc [| step |]) in
  check_bool "L=20 worse than full" true (e_short 20 > e_full);
  check_bool "accuracy improves with L" true (e_short 200 < e_short 20);
  let whole =
    Grunwald.solve ~memory_length:10000 ~h ~alpha:0.5 ~t_end rc [| step |]
  in
  close "L >= N is exact" 0.0
    (Vec.max_abs_diff (Waveform.channel whole 0) (Waveform.channel full 0))
    ~tol:1e-14

(* ---------- periodic steady state ---------- *)

let test_periodic_matches_phasor () =
  (* sine-driven RC: the steady state equals the AC phasor solution *)
  let f_hz = 0.5 in
  let w_ang = 2.0 *. Float.pi *. f_hz in
  let src = [| Source.Sine { amplitude = 1.0; freq_hz = f_hz; phase = 0.0; offset = 0.0 } |] in
  let w = Periodic.solve ~periods:2 ~period:(1.0 /. f_hz) ~steps_per_period:512 rc src in
  let y = Waveform.channel w 0 in
  (* exact steady state: (sin ωt − ω cos ωt)/(1+ω²) *)
  let err = ref 0.0 in
  Array.iteri
    (fun i t ->
      let exact = ((sin (w_ang *. t)) -. (w_ang *. cos (w_ang *. t))) /. (1.0 +. (w_ang *. w_ang)) in
      err := Float.max !err (Float.abs (y.(i) -. exact)))
    w.Waveform.times;
  check_bool "matches phasor from the first sample" true (!err < 2e-3)

let test_periodic_no_transient () =
  (* the first and last period must coincide — no start-up transient *)
  let f_hz = 1.0 in
  let spp = 128 in
  let src = [| Source.Sine { amplitude = 1.0; freq_hz = f_hz; phase = 0.4; offset = 0.2 } |] in
  let w = Periodic.solve ~periods:2 ~period:1.0 ~steps_per_period:spp rc src in
  let y = Waveform.channel w 0 in
  let diff = ref 0.0 in
  for k = 0 to spp - 1 do
    diff := Float.max !diff (Float.abs (y.(k) -. y.(k + spp)))
  done;
  check_bool "periodic from the start" true (!diff < 1e-9)

let test_periodic_beats_transient_simulation () =
  (* a slow-pole system driven fast: transient simulation needs many
     periods to settle; the periodic solver is settled immediately *)
  let slow = Descriptor.scalar ~e:1.0 ~a:(-0.05) ~b:0.05 in
  let src = [| Source.Sine { amplitude = 1.0; freq_hz = 2.0; phase = 0.0; offset = 1.0 } |] in
  let w = Periodic.solve ~periods:1 ~period:0.5 ~steps_per_period:256 slow src in
  let y = Waveform.channel w 0 in
  (* steady state oscillates around the DC gain of the offset = 1 *)
  let mean = Array.fold_left ( +. ) 0.0 y /. float_of_int (Array.length y) in
  check_bool "already centred on the DC level" true (Float.abs (mean -. 1.0) < 0.02)

(* ---------- adaptive trapezoidal ---------- *)

let test_adaptive_trap_accuracy () =
  let w, _ = Adaptive_trap.solve ~tol:1e-6 ~t_end:5.0 rc [| step |] in
  check_bool "tracks RC within tolerance band" true
    (max_err_of w (fun t -> 1.0 -. exp (-.t)) < 1e-4)

let test_adaptive_trap_grows_steps () =
  let _, stats = Adaptive_trap.solve ~tol:1e-4 ~h_init:1e-3 ~t_end:10.0 rc [| step |] in
  check_bool "few factorizations (dyadic cache)" true
    (stats.Adaptive_trap.factorizations < 20);
  check_bool "far fewer steps than uniform at h_init" true
    (stats.Adaptive_trap.accepted < 2000)

let test_adaptive_trap_covers_span () =
  let w, _ = Adaptive_trap.solve ~tol:1e-4 ~t_end:3.0 rc [| step |] in
  let times = w.Waveform.times in
  Alcotest.(check (float 1e-9)) "ends at t_end" 3.0 times.(Array.length times - 1)

(* ---------- exact LTI reference ---------- *)

let test_exact_lti_is_exact () =
  (* matches the analytic RC answer at machine precision even with a
     coarse step *)
  let w = Exact_lti.solve ~h:0.5 ~t_end:5.0 rc [| step |] in
  close "machine precision" 0.0 (max_err_of w (fun t -> 1.0 -. exp (-.t)))
    ~tol:1e-12

let test_exact_lti_oscillator () =
  (* undamped oscillator from x0: energy-exact at sample points *)
  let sys =
    Descriptor.of_dense ~e:(Mat.eye 2)
      ~a:(Mat.of_arrays [| [| 0.0; 1.0 |]; [| -4.0; 0.0 |] |])
      ~b:(Mat.zeros 2 1)
      ~c:(Mat.of_arrays [| [| 1.0; 0.0 |] |])
      ()
  in
  let w = Exact_lti.solve ~x0:[| 1.0; 0.0 |] ~h:0.1 ~t_end:10.0 sys [| Source.Dc 0.0 |] in
  close "cos(2t) exact" 0.0 (max_err_of w (fun t -> cos (2.0 *. t))) ~tol:1e-10

let test_exact_lti_rejects_dae () =
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| -2.0; 1.0 |] |] in
  let sys =
    Descriptor.of_dense ~e ~a ~b:(Mat.zeros 2 1) ~c:(Mat.eye 2) ()
  in
  check_bool "singular E raises" true
    (try
       ignore (Exact_lti.solve ~h:0.1 ~t_end:1.0 sys [| Source.Dc 0.0 |]);
       false
     with Lu.Singular _ -> true)

let test_opm_converges_to_exact_lti () =
  (* the convergence claim measured against a zero-error reference *)
  let sys = Descriptor.random_stable ~seed:77 ~n:6 ~p:1 ~q:1 () in
  let t_end = 2.0 in
  let reference = Exact_lti.solve ~h:(t_end /. 512.0) ~t_end sys [| step |] in
  let err m =
    let r = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m) sys [| step |] in
    Error.waveform_error_db ~reference r.Sim_result.outputs
  in
  let e64 = err 64 and e512 = err 512 in
  check_bool "error decreases" true (e512 < e64 -. 20.0)

let test_gl_vs_opm_cross_check () =
  (* two completely different fractional discretisations must agree *)
  let sys = Descriptor.scalar ~e:1.0 ~a:(-2.0) ~b:2.0 in
  let t_end = 1.5 in
  let wgl = Grunwald.solve ~h:(t_end /. 3000.0) ~alpha:0.7 ~t_end sys [| step |] in
  let grid = Grid.uniform ~t_end ~m:3000 in
  let opm = Opm.simulate_fractional ~grid ~alpha:0.7 sys [| step |] in
  let err =
    Error.waveform_error_db ~reference:opm.Sim_result.outputs wgl
  in
  check_bool "agree within −40 dB" true (err < -40.0)

(* regression: the time loop used to rebuild [Csr.scale (−h^{−α}) E]
   every step — O(steps·nnz) wasted allocation. With a dense 60×60 E
   over 500 steps that alone would allocate ≥ 500·3600·8 ≈ 14 MB; with
   the matrix hoisted out of the loop the whole solve stays far below
   that. The solve itself allocates ~8 MB (mostly per-step sparse
   triangular solves), so the 12 MB bound passes with the hoist and the
   ≥ 22 MB pre-fix total fails it. (Allocation counts are deterministic
   on one domain, so this is a stable bound, not a timing test.) *)
let test_grunwald_hoisted_scale () =
  let n = 60 in
  let e = Mat.init n n (fun i j -> if i = j then 2.0 else 0.01) in
  let a = Mat.init n n (fun i j -> if i = j then -1.0 else 0.0) in
  let b = Mat.init n 1 (fun _ _ -> 1.0) in
  let c = Mat.init 1 n (fun _ j -> if j = 0 then 1.0 else 0.0) in
  let sys =
    Descriptor.make ~e:(Opm_sparse.Csr.of_dense e) ~a:(Opm_sparse.Csr.of_dense a)
      ~b ~c ()
  in
  let step = Source.Step { amplitude = 1.0; delay = 0.0 } in
  (* warm-up keeps one-time costs (factorisation fill-in) out of the
     measured window *)
  ignore (Grunwald.solve ~memory_length:1 ~h:0.1 ~alpha:0.5 ~t_end:0.5 sys [| step |]);
  let before = Gc.allocated_bytes () in
  let w =
    Grunwald.solve ~memory_length:1 ~h:0.002 ~alpha:0.5 ~t_end:1.0 sys [| step |]
  in
  let allocated = Gc.allocated_bytes () -. before in
  check_bool
    (Printf.sprintf "no per-step CSR rebuild (allocated %.1f MB)"
       (allocated /. 1e6))
    true
    (allocated < 12e6);
  (* and the response is still the monotone charging curve *)
  let y = Waveform.channel w 0 in
  check_bool "response still sane" true
    (y.(0) = 0.0 && y.(Array.length y - 1) > 0.0)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transient"
    [
      ( "steppers",
        [
          t "all track RC" test_schemes_track_rc;
          t "backward Euler order 1" test_backward_euler_order_one;
          t "trapezoidal order 2" test_trapezoidal_order_two;
          t "gear order 2" test_gear_order_two;
          t "DAE handling" test_schemes_on_dae;
          t "stiff stability" test_stepper_stability_stiff;
          t "validation" test_stepper_validation;
          t "solve_states" test_solve_states;
        ] );
      ( "freq-domain",
        [
          t "α = 1 RC" test_fft_alpha1_rc;
          t "FFT-2 beats FFT-1" test_fft_sample_count_improves;
          t "non-pow2 sample count" test_fft_arbitrary_sample_count;
          t "zero damping periodic" test_fft_zero_damping_periodic_input;
          t "validation" test_fft_validation;
        ] );
      ( "grunwald",
        [
          t "weights" test_gl_weights;
          t "weights telescope" test_gl_weights_sum_to_zero;
          t "α = 1 is backward Euler" test_gl_alpha1_matches_backward_euler;
          t "tracks Mittag-Leffler" test_gl_tracks_mittag_leffler;
          t "short-memory principle" test_gl_short_memory;
          t "cross-check vs OPM" test_gl_vs_opm_cross_check;
          t "scaled matrix hoisted out of loop" test_grunwald_hoisted_scale;
        ] );
      ( "periodic",
        [
          t "matches phasor" test_periodic_matches_phasor;
          t "no start-up transient" test_periodic_no_transient;
          t "slow pole settled immediately" test_periodic_beats_transient_simulation;
        ] );
      ( "adaptive-trap",
        [
          t "accuracy" test_adaptive_trap_accuracy;
          t "dyadic step control" test_adaptive_trap_grows_steps;
          t "covers span" test_adaptive_trap_covers_span;
        ] );
      ( "exact-lti",
        [
          t "machine-precision RC" test_exact_lti_is_exact;
          t "undamped oscillator" test_exact_lti_oscillator;
          t "rejects DAE" test_exact_lti_rejects_dae;
          t "OPM converges to it" test_opm_converges_to_exact_lti;
        ] );
    ]
