(* Differential suite for the windowed streaming driver (lib/core/window):
   windowed vs global solves on random passive RLC networks and the
   Table-I fractional line, the w = m degenerate case, short-memory
   truncation against the documented mass bound, and the Factor_cache
   (α, h) collision regression.

   Random cases are seeded from OPM_PROP_SEED (default 20260806) and
   every failure message carries the replay seed, same protocol as
   test_props.ml. *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let base_seed =
  match Sys.getenv_opt "OPM_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 20260806)
  | None -> 20260806

let prop ~n f () =
  for k = 0 to n - 1 do
    let seed = base_seed + (1013904223 * k) in
    let st = Random.State.make [| 0x9e37; seed |] in
    try f st seed
    with e ->
      Alcotest.failf "case %d failed — replay with OPM_PROP_SEED=%d — %s" k
        seed (Printexc.to_string e)
  done

let check_le msg lhs rhs =
  if not (lhs <= rhs) then Alcotest.failf "%s: %.6g > %.6g" msg lhs rhs

let rel_diff a b =
  let scale = Float.max (Mat.norm_inf b) 1e-30 in
  Mat.max_abs_diff a b /. scale

let random_input st =
  Source.Sine
    {
      amplitude = 1.0;
      freq_hz = 5e4 +. Random.State.float st 1.5e5;
      phase = Random.State.float st 6.28;
      offset = 0.5;
    }

let random_system st seed =
  let nodes = 2 + Random.State.int st 4 in
  let net = Generators.random_rlc ~seed ~nodes ~input:(random_input st) () in
  Mna.stamp_linear net

(* ---------- integer order: windowed ≡ global ---------- *)

let prop_integer_windowed_matches_global =
  prop ~n:4 (fun st seed ->
      let sys, srcs = random_system st seed in
      let m = 128 in
      let w = m / 8 in
      let grid = Grid.uniform ~t_end:2e-5 ~m in
      let global = Opm.simulate_linear ~grid sys srcs in
      let windowed = Opm.simulate_linear ~window:w ~grid sys srcs in
      check_le
        (Printf.sprintf "windowed (w = m/8) vs global, seed %d" seed)
        (rel_diff windowed.Sim_result.x global.Sim_result.x)
        1e-10)

(* the general (Toeplitz-history) path must agree too: force it through
   a multi-term wrapper of the same order-1 system with full memory *)
let prop_integer_general_path_matches_global =
  prop ~n:3 (fun st seed ->
      let sys, srcs = random_system st seed in
      let mt = Multi_term.of_linear sys in
      let mt =
        (* a second copy of the α = 1 term with the coefficient split in
           half is the same equation but takes the multi-term path *)
        match mt.Multi_term.terms with
        | [ { Multi_term.coeff; alpha } ] ->
            let half = Opm_sparse.Csr.scale 0.5 coeff in
            {
              mt with
              Multi_term.terms =
                [
                  { Multi_term.coeff = half; alpha };
                  { Multi_term.coeff = half; alpha };
                ];
            }
        | _ -> mt
      in
      let m = 96 in
      let grid = Grid.uniform ~t_end:2e-5 ~m in
      let global = Opm.simulate_multi_term ~grid mt srcs in
      let windowed = Opm.simulate_multi_term ~window:(m / 8) ~grid mt srcs in
      check_le
        (Printf.sprintf "multi-term windowed vs global, seed %d" seed)
        (rel_diff windowed.Sim_result.x global.Sim_result.x)
        1e-10)

(* ---------- fractional orders ---------- *)

let fractional_case ~alpha st seed =
  let sys, srcs = random_system st seed in
  let m = 128 in
  let w = m / 8 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let global = Opm.simulate_fractional ~grid ~alpha sys srcs in
  let windowed = Opm.simulate_fractional ~window:w ~grid ~alpha sys srcs in
  (* full memory: the windowed recurrence is the global one re-bracketed *)
  check_le
    (Printf.sprintf "α = %g full-memory windowed vs global, seed %d" alpha
       seed)
    (rel_diff windowed.Sim_result.x global.Sim_result.x)
    1e-10;
  (* short memory: relative error below the documented truncation mass
     (with a unit safety factor — the mass over-counts because the
     dropped history columns are multiplied by decaying ρ weights *and*
     the bounded solution) *)
  let memory_len = m / 4 in
  let truncated =
    Opm.simulate_fractional ~window:w ~memory_len ~grid ~alpha sys srcs
  in
  let mass = Window.truncation_mass ~alpha ~lags:(m - 1) ~memory_len in
  if mass <= 0.0 then
    Alcotest.failf "truncation mass should be positive for α = %g" alpha;
  check_le
    (Printf.sprintf "α = %g short-memory error vs mass bound, seed %d" alpha
       seed)
    (rel_diff truncated.Sim_result.x global.Sim_result.x)
    mass

let prop_fractional_05 = prop ~n:3 (fractional_case ~alpha:0.5)
let prop_fractional_15 = prop ~n:3 (fractional_case ~alpha:1.5)

(* integer orders carry their history through the exact ρ_n recurrence,
   so even memory_len = 0 must not degrade them (the general path is
   forced via the split-term trick above) *)
let prop_integer_exact_under_truncation =
  prop ~n:2 (fun st seed ->
      let sys, srcs = random_system st seed in
      let mt = Multi_term.of_linear sys in
      let mt =
        match mt.Multi_term.terms with
        | [ { Multi_term.coeff; alpha } ] ->
            let half = Opm_sparse.Csr.scale 0.5 coeff in
            {
              mt with
              Multi_term.terms =
                [
                  { Multi_term.coeff = half; alpha };
                  { Multi_term.coeff = half; alpha };
                ];
            }
        | _ -> mt
      in
      let m = 96 in
      let grid = Grid.uniform ~t_end:2e-5 ~m in
      let global = Opm.simulate_multi_term ~grid mt srcs in
      let truncated =
        Opm.simulate_multi_term ~window:(m / 8) ~memory_len:0 ~grid mt srcs
      in
      check_le
        (Printf.sprintf "integer order, memory_len = 0, seed %d" seed)
        (rel_diff truncated.Sim_result.x global.Sim_result.x)
        1e-10)

(* Table-I line (n = 7, α = 0.5): the acceptance workload *)
let test_table1_windowed () =
  let sys = Opm_circuit.Tline.model () in
  let srcs = Opm_circuit.Tline.inputs () in
  let alpha = Opm_circuit.Tline.alpha in
  let m = 128 in
  let grid = Grid.uniform ~t_end:Opm_circuit.Tline.t_end ~m in
  let global = Opm.simulate_fractional ~grid ~alpha sys srcs in
  let windowed =
    Opm.simulate_fractional ~window:(m / 8) ~grid ~alpha sys srcs
  in
  check_le "table-I windowed (w = m/8) vs global"
    (rel_diff windowed.Sim_result.x global.Sim_result.x)
    1e-10

(* ---------- degenerate and boundary shapes ---------- *)

let test_w_eq_m_is_global () =
  let st = Random.State.make [| 0x9e37; base_seed |] in
  let sys, srcs = random_system st base_seed in
  let m = 64 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let global = Opm.simulate_linear ~grid sys srcs in
  let windowed = Opm.simulate_linear ~window:m ~grid sys srcs in
  (* w ≥ m must not merely be close: Opm routes it to the very same
     global code path, so the result is bit-identical *)
  if Mat.max_abs_diff windowed.Sim_result.x global.Sim_result.x <> 0.0 then
    Alcotest.fail "w = m must be bit-identical to the global solve"

let test_short_last_window () =
  let st = Random.State.make [| 0x9e37; base_seed + 7 |] in
  let sys, srcs = random_system st (base_seed + 7) in
  let m = 50 and w = 8 in
  (* 50 = 6 full windows + one of 2 columns *)
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let global = Opm.simulate_linear ~grid sys srcs in
  let windowed = Opm.simulate_linear ~window:w ~grid sys srcs in
  check_le "short last window (m = 50, w = 8)"
    (rel_diff windowed.Sim_result.x global.Sim_result.x)
    1e-10

let test_windowed_with_x0 () =
  let st = Random.State.make [| 0x9e37; base_seed + 13 |] in
  let sys, srcs = random_system st (base_seed + 13) in
  let n = Descriptor.order sys in
  let x0 = Array.init n (fun i -> 0.1 *. float_of_int (i + 1)) in
  let m = 64 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let global = Opm.simulate_linear ~x0 ~grid sys srcs in
  let windowed = Opm.simulate_linear ~x0 ~window:(m / 8) ~grid sys srcs in
  check_le "windowed with x0"
    (rel_diff windowed.Sim_result.x global.Sim_result.x)
    1e-10

let test_invalid_args () =
  let st = Random.State.make [| 0x9e37; base_seed |] in
  let sys, srcs = random_system st base_seed in
  let grid = Grid.uniform ~t_end:2e-5 ~m:16 in
  Alcotest.check_raises "window = 0 rejected"
    (Invalid_argument "Opm: window width must be >= 1") (fun () ->
      ignore (Opm.simulate_linear ~window:0 ~grid sys srcs));
  let adaptive = Grid.geometric ~t_end:2e-5 ~m:16 ~ratio:1.3 in
  (try
     ignore (Opm.simulate_linear ~window:4 ~grid:adaptive sys srcs);
     Alcotest.fail "adaptive grid must be rejected by the windowed driver"
   with Invalid_argument _ -> ())

(* ---------- streaming stats, metrics, callbacks ---------- *)

let test_window_stats_and_callback () =
  let st = Random.State.make [| 0x9e37; base_seed + 21 |] in
  let sys, srcs = random_system st (base_seed + 21) in
  let mt = Multi_term.of_fractional ~alpha:0.5 sys in
  let m = 64 and w = 8 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let bu = Mat.mul mt.Multi_term.b (Opm.input_coefficients ~grid srcs) in
  let seen = ref [] in
  let x, stats =
    Window.solve ~window:w ~grid mt ~bu
      ~on_window:(fun ~index ~start blk ->
        seen := (index, start, snd (Mat.dims blk)) :: !seen)
  in
  Alcotest.(check int) "windows" (m / w) stats.Window.windows;
  Alcotest.(check int) "width" w stats.Window.width;
  Alcotest.(check int) "full memory by default" m stats.Window.memory_len;
  (* one pencil on a uniform grid: a single factorisation, and each
     engine call after the first is served from the shared cache (the
     within-window columns are served by the engine's per-call memo, so
     hits count windows, not columns) *)
  Alcotest.(check int) "one factorisation" 1 stats.Window.factor_misses;
  Alcotest.(check int) "⌈m/w⌉ − 1 cache hits" (stats.Window.windows - 1)
    stats.Window.factor_hits;
  Alcotest.(check int) "callback per window" (m / w) (List.length !seen);
  List.iter
    (fun (index, start, cols) ->
      Alcotest.(check int) "start = index·w" (index * w) start;
      Alcotest.(check int) "block width" w cols)
    !seen;
  Alcotest.(check (pair int int)) "assembled dims" (Multi_term.order mt, m)
    (Mat.dims x)

let test_factor_reuse_metric () =
  let st = Random.State.make [| 0x9e37; base_seed + 34 |] in
  let sys, srcs = random_system st (base_seed + 34) in
  let m = 64 and w = 8 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let was_enabled = Opm_obs.Metrics.enabled () in
  Opm_obs.Metrics.set_enabled true;
  Opm_obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> Opm_obs.Metrics.set_enabled was_enabled)
    (fun () ->
      ignore (Opm.simulate_fractional ~window:w ~grid ~alpha:0.5 sys srcs);
      let reuse =
        Opm_obs.Metrics.counter_value
          (Opm_obs.Metrics.counter "window.factor_reuse")
      in
      let windows =
        Opm_obs.Metrics.counter_value (Opm_obs.Metrics.counter "window.count")
      in
      Alcotest.(check int) "window.count" (m / w) windows;
      check_le "window.factor_reuse ≥ windows" (float_of_int windows)
        (float_of_int reuse))

(* ---------- Factor_cache (α, h) collision regression ---------- *)

(* At h = 2 the diagonal coefficient (2/h)^α = 1 for every α, so a
   shared cache keyed only on diagonal coefficients would serve the
   α = 0.5 pencil to the α = 1.5 solve. The key_salt discipline must
   keep them apart (2 misses) and both results equal their
   unshared-cache references. *)
let test_factor_cache_alpha_h_regression () =
  let st = Random.State.make [| 0x9e37; base_seed + 55 |] in
  let sys, srcs = random_system st (base_seed + 55) in
  let n = Descriptor.order sys in
  let m = 16 in
  let t_end = 2.0 *. float_of_int m in
  (* h = t_end / m = 2 exactly *)
  let grid = Grid.uniform ~t_end ~m in
  let mt alpha = Multi_term.of_fractional ~alpha sys in
  let bu alpha =
    Mat.mul (mt alpha).Multi_term.b (Opm.input_coefficients ~grid srcs)
  in
  let solve ?fcache alpha =
    let mta = mt alpha in
    let d = Block_pulse.fractional_differential_matrix grid alpha in
    let terms =
      List.map
        (fun { Multi_term.coeff; _ } -> (Opm_sparse.Csr.to_dense coeff, d))
        mta.Multi_term.terms
    in
    Engine.solve_dense ?fcache ~key_salt:[ alpha; 2.0 ] ~terms
      ~a:(Opm_sparse.Csr.to_dense mta.Multi_term.a)
      ~bu:(bu alpha) ()
  in
  let shared = Engine.Factor_cache.create () in
  let x05 = solve ~fcache:shared 0.5 in
  let x15 = solve ~fcache:shared 1.5 in
  Alcotest.(check int)
    "distinct α on the h = 2 grid must not share a factorisation" 2
    (Engine.Factor_cache.misses shared);
  ignore n;
  check_le "α = 0.5 shared-cache result unchanged"
    (rel_diff x05 (solve 0.5))
    1e-15;
  check_le "α = 1.5 shared-cache result unchanged"
    (rel_diff x15 (solve 1.5))
    1e-15

(* Eviction-pinning regression: the Factor_cache is capacity-bounded,
   and before entry pinning existed a sweep that interleaved more than
   [capacity] other (α, h) keys between windows triggered the overflow
   reset and evicted the window's own pencil — every later window
   re-factored. The windowed driver now pins its entry, so the hit
   count must stay at ⌈m/w⌉ − 1 no matter how hard the shared cache is
   thrashed from the [on_window] callback, and the result must stay
   bit-identical to an uninterfered run. *)
let test_pinned_factor_survives_interleaving () =
  let st = Random.State.make [| 0x9e37; base_seed + 89 |] in
  let sys, srcs = random_system st (base_seed + 89) in
  let mt = Multi_term.of_fractional ~alpha:0.5 sys in
  let m = 64 and w = 8 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let bu = Mat.mul mt.Multi_term.b (Opm.input_coefficients ~grid srcs) in
  let x_clean, _ = Window.solve ~window:w ~grid mt ~bu in
  (* capacity 2: the three foreign keys inserted between consecutive
     windows are guaranteed to overflow the unpinned table every time *)
  let fc_d = Engine.Factor_cache.create ~capacity:2 () in
  let salt = ref 0 in
  let pollute () =
    for _ = 1 to 3 do
      incr salt;
      (* a real engine call under a foreign (α, h)-style key, inserted
         unpinned — exactly the interleaved-sweep workload *)
      ignore
        (Engine.solve_dense ~fcache:fc_d
           ~key_salt:[ float_of_int !salt ]
           ~terms:[ (Mat.eye 1, Mat.eye 1) ]
           ~a:(Mat.scale (-1.0) (Mat.eye 1))
           ~bu:(Mat.zeros 1 1) ())
    done
  in
  let x, stats =
    Window.solve ~fc_d ~window:w ~grid mt ~bu
      ~on_window:(fun ~index:_ ~start:_ _ -> pollute ())
  in
  Alcotest.(check int)
    "⌈m/w⌉ − 1 hits despite cache-thrashing interleaving"
    (stats.Window.windows - 1) stats.Window.factor_hits;
  Alcotest.(check int) "exactly one pinned entry" 1
    (Engine.Factor_cache.pinned_count fc_d);
  if Mat.max_abs_diff x x_clean <> 0.0 then
    Alcotest.fail "interleaved run must stay bit-identical to the clean run"

(* FFT-gating regression: the convolver used to gate on the per-window
   column count (w = 64 < 256 ⇒ never engaged, however long the
   horizon), quietly costing O(m·w) per window on the history tail.
   The gate now compares the effective global history length, so small
   windows on a long horizon must engage the FFT path. *)
let test_fft_gate_uses_global_history_len () =
  let st = Random.State.make [| 0x9e37; base_seed + 144 |] in
  let sys, srcs = random_system st (base_seed + 144) in
  let m = 4096 and w = 64 in
  let grid = Grid.uniform ~t_end:2e-5 ~m in
  let metrics_were_on = Opm_obs.Metrics.enabled () in
  let fft_was_on = Engine.fft_rhs_enabled () in
  Opm_obs.Metrics.set_enabled true;
  Opm_obs.Metrics.reset ();
  Engine.set_fft_rhs_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_fft_rhs_enabled fft_was_on;
      Opm_obs.Metrics.reset ();
      Opm_obs.Metrics.set_enabled metrics_were_on)
    (fun () ->
      ignore (Opm.simulate_fractional ~window:w ~grid ~alpha:0.5 sys srcs);
      let blocks =
        Opm_obs.Metrics.counter_value
          (Opm_obs.Metrics.counter "engine.rhsconv.blocks")
      in
      if blocks <= 0 then
        Alcotest.failf
          "w = %d windows on an m = %d horizon must engage the FFT \
           history convolver (blocks = %d)"
          w m blocks)

let test_truncation_mass () =
  (* sanity of the bound itself: monotone in memory_len, 0 when nothing
     is truncated *)
  let mass k = Window.truncation_mass ~alpha:0.5 ~lags:127 ~memory_len:k in
  Alcotest.(check (float 0.0)) "no truncation" 0.0 (mass 127);
  check_le "mass decreases with memory" (mass 64) (mass 16);
  check_le "mass positive" 1e-12 (mass 16);
  check_le "mass ≤ 1" (mass 1) 1.0

let () =
  Alcotest.run "window"
    [
      ( "differential",
        [
          Alcotest.test_case "integer: windowed vs global (w = m/8)" `Quick
            prop_integer_windowed_matches_global;
          Alcotest.test_case "integer: general path windowed vs global" `Quick
            prop_integer_general_path_matches_global;
          Alcotest.test_case "fractional α = 0.5" `Quick prop_fractional_05;
          Alcotest.test_case "fractional α = 1.5" `Quick prop_fractional_15;
          Alcotest.test_case "integer order exact at memory_len = 0" `Quick
            prop_integer_exact_under_truncation;
          Alcotest.test_case "table-I line windowed" `Quick
            test_table1_windowed;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "w = m is exactly the global path" `Quick
            test_w_eq_m_is_global;
          Alcotest.test_case "short last window" `Quick test_short_last_window;
          Alcotest.test_case "windowed with x0" `Quick test_windowed_with_x0;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "stats + on_window" `Quick
            test_window_stats_and_callback;
          Alcotest.test_case "factor_reuse metric" `Quick
            test_factor_reuse_metric;
        ] );
      ( "factor-cache",
        [
          Alcotest.test_case "(α, h) collision regression" `Quick
            test_factor_cache_alpha_h_regression;
          Alcotest.test_case "pinned entry survives interleaving" `Quick
            test_pinned_factor_survives_interleaving;
          Alcotest.test_case "FFT gate uses global history length" `Quick
            test_fft_gate_uses_global_history_len;
          Alcotest.test_case "truncation mass bound" `Quick
            test_truncation_mass;
        ] );
    ]
