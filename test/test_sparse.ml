(* Tests for the sparse-matrix substrate (COO builder, CSR, sparse LU). *)

open Opm_numkit
open Opm_sparse

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_sparse ?(density = 0.2) ?(dominant = true) seed n =
  let st = Random.State.make [| seed |] in
  Mat.init n n (fun i j ->
      if i = j && dominant then float_of_int n +. Random.State.float st 1.0
      else if Random.State.float st 1.0 < density then
        Random.State.float st 2.0 -. 1.0
      else 0.0)

(* ---------- Coo ---------- *)

let test_coo_merge () =
  let c = Coo.create ~rows:3 ~cols:3 in
  Coo.add c 0 0 1.0;
  Coo.add c 0 0 2.0;
  Coo.add c 2 1 5.0;
  Coo.add c 1 1 (-5.0);
  Coo.add c 1 1 5.0;
  check_int "entry count pre-merge" 5 (Coo.entry_count c);
  let m = Coo.to_csr c in
  close "duplicates summed" 3.0 (Csr.get m 0 0);
  close "single entry" 5.0 (Csr.get m 2 1);
  close "cancelled entry dropped" 0.0 (Csr.get m 1 1);
  check_int "explicit zeros dropped" 2 (Csr.nnz m)

let test_coo_bounds () =
  let c = Coo.create ~rows:2 ~cols:2 in
  check_bool "out of bounds raises" true
    (try
       Coo.add c 2 0 1.0;
       false
     with Invalid_argument _ -> true)

let test_coo_roundtrip () =
  let d = random_sparse ~dominant:false 7 10 in
  let m = Coo.to_csr (Coo.of_dense d) in
  close "dense roundtrip" 0.0 (Mat.max_abs_diff (Csr.to_dense m) d)

let test_coo_growth () =
  (* push past the initial capacity *)
  let c = Coo.create ~rows:100 ~cols:100 in
  for k = 0 to 999 do
    Coo.add c (k mod 100) (k / 10 mod 100) 1.0
  done;
  check_int "all entries kept" 1000 (Coo.entry_count c);
  check_bool "csr builds" true (Csr.nnz (Coo.to_csr c) > 0)

(* ---------- Csr ---------- *)

let test_csr_get () =
  let d = Mat.of_arrays [| [| 0.0; 2.0; 0.0 |]; [| 1.0; 0.0; 3.0 |] |] in
  let s = Csr.of_dense d in
  close "stored" 2.0 (Csr.get s 0 1);
  close "structural zero" 0.0 (Csr.get s 0 0);
  close "stored 2" 3.0 (Csr.get s 1 2);
  check_int "nnz" 3 (Csr.nnz s)

let test_csr_mul_vec () =
  let d = random_sparse 11 20 in
  let s = Csr.of_dense d in
  let x = Array.init 20 (fun i -> sin (float_of_int i)) in
  check_bool "matches dense" true
    (Vec.approx_equal ~tol:1e-12 (Mat.mul_vec d x) (Csr.mul_vec s x))

let test_csr_tmul_vec () =
  let d = random_sparse ~dominant:false 13 15 in
  let s = Csr.of_dense d in
  let x = Array.init 15 (fun i -> cos (float_of_int i)) in
  check_bool "matches dense transpose" true
    (Vec.approx_equal ~tol:1e-12
       (Mat.mul_vec (Mat.transpose d) x)
       (Csr.tmul_vec s x))

let test_csr_transpose () =
  let d = random_sparse ~dominant:false 17 12 in
  let s = Csr.of_dense d in
  close "transpose matches dense" 0.0
    (Mat.max_abs_diff (Csr.to_dense (Csr.transpose s)) (Mat.transpose d));
  close "double transpose" 0.0
    (Csr.max_abs_diff (Csr.transpose (Csr.transpose s)) s)

let test_csr_add () =
  let da = random_sparse ~dominant:false 19 9 in
  let db = random_sparse ~dominant:false 23 9 in
  let sum =
    Csr.add ~alpha:2.0 ~beta:(-0.5) (Csr.of_dense da) (Csr.of_dense db)
  in
  let expected = Mat.add (Mat.scale 2.0 da) (Mat.scale (-0.5) db) in
  close "αA + βB" 0.0 (Mat.max_abs_diff (Csr.to_dense sum) expected) ~tol:1e-12

let test_csr_eye_scale () =
  let i5 = Csr.eye 5 in
  check_int "eye nnz" 5 (Csr.nnz i5);
  let s = Csr.scale 3.0 i5 in
  close "scaled diag" 3.0 (Csr.get s 2 2)

let test_csr_zero () =
  let z = Csr.zero ~rows:3 ~cols:4 in
  check_int "zero nnz" 0 (Csr.nnz z);
  let x = [| 1.0; 1.0; 1.0; 1.0 |] in
  check_bool "zero mul" true (Vec.approx_equal (Vec.zeros 3) (Csr.mul_vec z x))

let prop_csr_add_commutes =
  QCheck.Test.make ~count:30 ~name:"csr: A + B = B + A over random patterns"
    QCheck.(pair (int_range 1 15) (int_range 0 1000))
    (fun (n, seed) ->
      let a = Csr.of_dense (random_sparse ~dominant:false seed n) in
      let b = Csr.of_dense (random_sparse ~dominant:false (seed + 1) n) in
      Csr.max_abs_diff (Csr.add a b) (Csr.add b a) < 1e-14)

let prop_csr_matvec_linear =
  QCheck.Test.make ~count:30 ~name:"csr: (A + B)x = Ax + Bx"
    QCheck.(pair (int_range 1 15) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed + 99 |] in
      let a = Csr.of_dense (random_sparse ~dominant:false seed n) in
      let b = Csr.of_dense (random_sparse ~dominant:false (seed + 2) n) in
      let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let lhs = Csr.mul_vec (Csr.add a b) x in
      let rhs = Vec.add (Csr.mul_vec a x) (Csr.mul_vec b x) in
      Vec.max_abs_diff lhs rhs < 1e-12)

(* ---------- Slu ---------- *)

let test_slu_vs_dense () =
  let d = random_sparse 31 40 in
  let s = Csr.of_dense d in
  let b = Array.init 40 (fun i -> sin (float_of_int i)) in
  check_bool "sparse = dense solution" true
    (Vec.approx_equal ~tol:1e-10 (Slu.solve_dense s b) (Lu.solve_dense d b))

let test_slu_factor_reuse () =
  let d = random_sparse 37 25 in
  let s = Csr.of_dense d in
  let f = Slu.factor s in
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let b = Array.init 25 (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let x = Slu.solve f b in
      let r = Vec.sub (Csr.mul_vec s x) b in
      close (Printf.sprintf "residual seed %d" seed) 0.0 (Vec.norm2 r) ~tol:1e-9)
    [ 1; 2; 3 ]

let test_slu_permutation_needed () =
  (* anti-diagonal: every pivot requires a row swap *)
  let n = 6 in
  let d =
    Mat.init n n (fun i j -> if i + j = n - 1 then float_of_int (i + 1) else 0.0)
  in
  let s = Csr.of_dense d in
  let b = Array.init n (fun i -> float_of_int (2 * i)) in
  let x = Slu.solve_dense s b in
  check_bool "residual" true (Vec.approx_equal ~tol:1e-12 (Csr.mul_vec s x) b)

let test_slu_singular () =
  let d = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_bool "raises" true
    (try
       ignore (Slu.factor (Csr.of_dense d));
       false
     with Slu.Singular _ -> true)

let test_slu_dae_pencil () =
  (* the kind of matrix OPM factors for a DAE: d·E − A with singular E *)
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 1.0 |]; [| 1.0; -2.0 |] |] in
  let pencil = Csr.of_dense (Mat.sub (Mat.scale 10.0 e) a) in
  let x = Slu.solve_dense pencil [| 1.0; 0.0 |] in
  let r = Vec.sub (Csr.mul_vec pencil x) [| 1.0; 0.0 |] in
  close "dae pencil residual" 0.0 (Vec.norm2 r) ~tol:1e-12

let test_slu_tridiagonal_no_fill () =
  (* a tridiagonal matrix factors with O(n) fill *)
  let n = 50 in
  let d =
    Mat.init n n (fun i j ->
        if i = j then 4.0 else if abs (i - j) = 1 then -1.0 else 0.0)
  in
  let s = Csr.of_dense d in
  let f = Slu.factor s in
  check_bool "fill stays linear" true (Slu.nnz_factors f <= 3 * n)

(* ---------- Rcm ---------- *)

let shuffled_band seed n bw =
  (* a band matrix viewed through a random symmetric permutation *)
  let st = Random.State.make [| seed |] in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  let d =
    Mat.init n n (fun i j ->
        if abs (p.(i) - p.(j)) > bw then 0.0
        else if i = j then 4.0 +. Random.State.float st 1.0
        else Random.State.float st 0.5)
  in
  Csr.of_dense d

let test_rcm_is_permutation () =
  let a = shuffled_band 3 30 2 in
  let p = Rcm.ordering a in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check_bool "bijection" true (Array.to_list sorted = List.init 30 Fun.id)

let test_rcm_reduces_bandwidth () =
  let a = shuffled_band 5 60 2 in
  let p = Rcm.ordering a in
  let permuted = Rcm.permute_symmetric a p in
  check_bool
    (Printf.sprintf "bandwidth %d -> %d" (Rcm.bandwidth a)
       (Rcm.bandwidth permuted))
    true
    (Rcm.bandwidth permuted < Rcm.bandwidth a / 2)

let test_rcm_permute_values () =
  let d = Mat.init 5 5 (fun i j -> float_of_int ((10 * i) + j)) in
  let a = Csr.of_dense d in
  let p = [| 4; 2; 0; 1; 3 |] in
  let a' = Rcm.permute_symmetric a p in
  (* a'_{ij} = a_{p(i) p(j)} *)
  Alcotest.(check (float 1e-12)) "entry" (Mat.get d 4 2) (Csr.get a' 0 1);
  Alcotest.(check (float 1e-12)) "entry 2" (Mat.get d 1 3) (Csr.get a' 3 4)

let test_rcm_inverse () =
  let p = [| 3; 0; 2; 1 |] in
  let inv = Rcm.inverse p in
  Array.iteri (fun i v -> Alcotest.(check int) "roundtrip" i inv.(p.(i)) |> ignore; ignore v) p

let test_slu_ordering_variants_agree () =
  let d = Csr.to_dense (shuffled_band 11 40 3) in
  let s = Csr.of_dense d in
  let b = Array.init 40 (fun i -> sin (float_of_int i)) in
  let x_rcm = Slu.solve (Slu.factor ~ordering:`Rcm s) b in
  let x_nat = Slu.solve (Slu.factor ~ordering:`Natural s) b in
  let x_strict = Slu.solve (Slu.factor ~pivot_tol:1.0 s) b in
  check_bool "rcm = natural" true (Vec.approx_equal ~tol:1e-9 x_rcm x_nat);
  check_bool "threshold = strict pivoting" true
    (Vec.approx_equal ~tol:1e-9 x_rcm x_strict)

let test_slu_rcm_reduces_fill () =
  let s = shuffled_band 13 200 2 in
  let f_rcm = Slu.factor ~ordering:`Rcm s in
  let f_nat = Slu.factor ~ordering:`Natural s in
  check_bool
    (Printf.sprintf "fill %d (rcm) < %d (natural)" (Slu.nnz_factors f_rcm)
       (Slu.nnz_factors f_nat))
    true
    (Slu.nnz_factors f_rcm < Slu.nnz_factors f_nat)

let prop_slu_random =
  QCheck.Test.make ~count:30 ~name:"slu: agrees with dense LU on random sparse"
    QCheck.(pair (int_range 2 30) (int_range 0 1000))
    (fun (n, seed) ->
      let d = random_sparse seed n in
      let st = Random.State.make [| seed * 7 |] in
      let b = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let xs = Slu.solve_dense (Csr.of_dense d) b in
      let xd = Lu.solve_dense d b in
      Vec.max_abs_diff xs xd < 1e-8)

(* ---------- Amd + symbolic/numeric split + Bcsr ---------- *)

let is_permutation n p =
  Array.length p = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    p

let rlc_pencil seed nodes =
  let net =
    Opm_circuit.Generators.random_rlc ~seed ~nodes
      ~input:(Opm_signal.Source.Dc 1e-3) ()
  in
  let sys, _ = Opm_circuit.Mna.stamp_linear net in
  Csr.add ~alpha:2e11 ~beta:(-1.0) sys.Opm_core.Descriptor.e
    sys.Opm_core.Descriptor.a

let grid_system nx ny nz =
  let spec = { Opm_circuit.Power_grid.default_spec with nx; ny; nz } in
  let net = Opm_circuit.Power_grid.generate spec in
  let probe =
    [ Opm_circuit.Mna.Node_voltage (Opm_circuit.Power_grid.node_name ~x:0 ~y:0 ~z:0) ]
  in
  fst (Opm_circuit.Mna.stamp_linear ~outputs:probe net)

let grid_pencil ?(h = 1e-11) nx ny nz =
  let sys = grid_system nx ny nz in
  Csr.add ~alpha:(2.0 /. h) ~beta:(-1.0) sys.Opm_core.Descriptor.e
    sys.Opm_core.Descriptor.a

let test_amd_permutation_rlc () =
  List.iter
    (fun seed ->
      let a = rlc_pencil seed (20 + seed) in
      let n, _ = Csr.dims a in
      check_bool
        (Printf.sprintf "amd is a permutation (rlc seed %d)" seed)
        true
        (is_permutation n (Amd.ordering a)))
    [ 1; 2; 3; 4; 5 ]

let test_amd_permutation_grid () =
  let a = grid_pencil 6 5 3 in
  let n, _ = Csr.dims a in
  check_bool "amd is a permutation (power grid)" true
    (is_permutation n (Amd.ordering a))

let test_amd_fill_le_natural () =
  let a = grid_pencil 6 6 3 in
  let f_amd = Slu.factor ~ordering:`Amd a in
  let f_nat = Slu.factor ~ordering:`Natural a in
  check_bool
    (Printf.sprintf "fill %d (amd) <= %d (natural)" (Slu.nnz_factors f_amd)
       (Slu.nnz_factors f_nat))
    true
    (Slu.nnz_factors f_amd <= Slu.nnz_factors f_nat)

let test_amd_solves_grid () =
  let a = grid_pencil 5 4 3 in
  let n, _ = Csr.dims a in
  let b = Array.init n (fun i -> sin (float_of_int i)) in
  let x = Slu.solve (Slu.factor ~ordering:`Amd a) b in
  let r = Vec.sub (Csr.mul_vec a x) b in
  check_bool "amd-ordered solve residual" true
    (Vec.norm2 r /. Vec.norm2 b < 1e-9)

let test_refactor_bit_identical () =
  let check_one name a =
    let n, _ = Csr.dims a in
    let s, f0 = Slu.analyze a in
    let f1 = Slu.refactor s a in
    let fresh = Slu.factor a in
    let b = Array.init n (fun i -> sin (float_of_int (i + 1))) in
    let x0 = Slu.solve f0 b in
    check_bool (name ^ ": refactor = analyze factor, bit for bit") true
      (Slu.solve f1 b = x0);
    check_bool (name ^ ": refactor = fresh factor, bit for bit") true
      (Slu.solve fresh b = x0)
  in
  check_one "random" (Csr.of_dense (random_sparse 41 60));
  check_one "grid" (grid_pencil 5 4 3);
  check_one "rlc" (rlc_pencil 9 30)

let test_refactor_new_values () =
  (* the real workload: same pattern, different pencil diagonal *)
  let sys = grid_system 4 4 2 in
  let pencil h =
    Csr.add ~alpha:(2.0 /. h) ~beta:(-1.0) sys.Opm_core.Descriptor.e
      sys.Opm_core.Descriptor.a
  in
  let a1 = pencil 1e-11 and a2 = pencil 2.5e-11 in
  let s, _ = Slu.analyze a1 in
  let f2 = Slu.refactor s a2 in
  let n, _ = Csr.dims a2 in
  let b = Array.init n (fun i -> cos (float_of_int i)) in
  let x = Slu.solve f2 b in
  let r = Vec.sub (Csr.mul_vec a2 x) b in
  check_bool "refactored pencil residual" true
    (Vec.norm2 r /. Vec.norm2 b < 1e-9)

let test_refactor_pattern_mismatch () =
  let s, _ = Slu.analyze (grid_pencil 4 4 2) in
  check_bool "different size raises" true
    (try
       ignore (Slu.refactor s (rlc_pencil 3 10));
       false
     with Slu.Pattern_mismatch -> true);
  let a = Csr.of_dense (random_sparse 61 20) in
  let s20, _ = Slu.analyze a in
  check_bool "same size, different pattern raises" true
    (try
       ignore (Slu.refactor s20 (Csr.of_dense (random_sparse 62 20)));
       false
     with Slu.Pattern_mismatch -> true)

let test_singular_named_in_original_order () =
  let n = 12 in
  let d0 = random_sparse 53 n in
  (* structurally disconnect unknown 7 *)
  let d =
    Mat.init n n (fun i j -> if i = 7 || j = 7 then 0.0 else Mat.get d0 i j)
  in
  let s = Csr.of_dense d in
  List.iter
    (fun (name, ord) ->
      match Slu.factor ~ordering:ord s with
      | _ -> Alcotest.fail (name ^ ": expected Singular")
      | exception Slu.Singular k ->
          check_int (name ^ " names the original unknown") 7 k)
    [ ("amd", `Amd); ("rcm", `Rcm); ("natural", `Natural) ]

let test_refactor_singular_named () =
  let n = 9 in
  let d = Mat.init n n (fun i j -> if i = j then float_of_int (i + 2) else 0.0) in
  let a = Csr.of_dense d in
  let s, _ = Slu.analyze ~ordering:`Amd a in
  let values = Array.copy a.Csr.values in
  Array.iteri (fun k c -> if c = 4 then values.(k) <- 0.0) a.Csr.col_ind;
  let a2 = { a with Csr.values } in
  match Slu.refactor s a2 with
  | _ -> Alcotest.fail "expected Singular from refactor"
  | exception Slu.Singular k ->
      check_int "refactor names the original unknown under `Amd" 4 k

let test_refactor_unstable_and_hint_fallback () =
  let a1 = Csr.of_dense (Mat.of_arrays [| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |]) in
  let a2 =
    Csr.of_dense (Mat.of_arrays [| [| 1e-8; 1.0 |]; [| 1.0; 1e-8 |] |])
  in
  let s, _ = Slu.analyze a1 in
  check_bool "degraded pivot raises Unstable" true
    (try
       ignore (Slu.refactor s a2);
       false
     with Slu.Unstable _ -> true);
  (* the hinted path must recover with a fresh analysis, never a wrong
     answer *)
  let hint = ref None in
  ignore (Slu.factor_hinted ~hint a1);
  check_bool "hint filled" true (!hint <> None);
  let f2 = Slu.factor_hinted ~hint a2 in
  let b = [| 1.0; -1.0 |] in
  let r = Vec.sub (Csr.mul_vec a2 (Slu.solve f2 b)) b in
  check_bool "hinted fallback residual" true (Vec.norm2 r < 1e-9)

let test_solve_many_matches_map () =
  let a = grid_pencil 4 4 2 in
  let n, _ = Csr.dims a in
  let f = Slu.factor a in
  let bs =
    Array.init 7 (fun r ->
        Array.init n (fun i -> sin (float_of_int ((r * n) + i + 1))))
  in
  let seq = Array.map (Slu.solve f) bs in
  check_bool "pooled back-solve batch bit-identical to sequential" true
    (Slu.solve_many f bs = seq);
  Opm_parallel.Pool.with_pool ~domains:3 (fun pool ->
      check_bool "explicit pool bit-identical" true
        (Slu.solve_many ~pool f bs = seq))

(* Bigarray-backed storage must agree with the array-backed ops to the
   last bit *)

let bcsr_cases () =
  let empty_rows =
    Mat.init 12 12 (fun i j ->
        if i mod 3 = 0 then 0.0
        else if (i + j) mod 4 = 0 then float_of_int (i - j) /. 7.0
        else 0.0)
  in
  let dup =
    let c = Coo.create ~rows:8 ~cols:8 in
    for k = 0 to 40 do
      Coo.add c (k mod 8) (k * 3 mod 8) (sin (float_of_int k))
    done;
    (* duplicate coordinates on purpose: they merge in to_csr *)
    Coo.add c 2 6 0.125;
    Coo.add c 2 6 0.25;
    Coo.to_csr c
  in
  [
    ("random", Csr.of_dense (random_sparse ~dominant:false 47 18));
    ("empty rows", Csr.of_dense empty_rows);
    ("duplicate coords", dup);
  ]

let test_bcsr_roundtrip () =
  List.iter
    (fun (name, a) ->
      let b = Bcsr.to_csr (Bcsr.of_csr a) in
      check_bool (name ^ ": roundtrip row_ptr") true
        (b.Csr.row_ptr = a.Csr.row_ptr);
      check_bool (name ^ ": roundtrip col_ind") true
        (b.Csr.col_ind = a.Csr.col_ind);
      check_bool (name ^ ": roundtrip values") true (b.Csr.values = a.Csr.values))
    (bcsr_cases ())

let test_bcsr_ops_bit_identical () =
  List.iter
    (fun (name, a) ->
      let b = Bcsr.of_csr a in
      let rows, cols = Csr.dims a in
      let x = Array.init cols (fun i -> cos (float_of_int (3 * i))) in
      let xt = Array.init rows (fun i -> sin (float_of_int (2 * i))) in
      check_bool (name ^ ": mul_vec bit-identical") true
        (Bcsr.mul_vec b x = Csr.mul_vec a x);
      check_bool (name ^ ": tmul_vec bit-identical") true
        (Bcsr.tmul_vec b xt = Csr.tmul_vec a xt);
      let sc = Bcsr.to_csr (Bcsr.scale (-0.37) b) in
      check_bool (name ^ ": scale bit-identical") true
        (sc.Csr.values = (Csr.scale (-0.37) a).Csr.values);
      let other =
        Csr.of_dense
          (Mat.init rows cols (fun i j ->
               if (i + (2 * j)) mod 3 = 0 then float_of_int (j - i) /. 11.0
               else 0.0))
      in
      let s_ref = Csr.add ~alpha:1.25 ~beta:(-2.0) a other in
      let s_big =
        Bcsr.to_csr (Bcsr.add ~alpha:1.25 ~beta:(-2.0) b (Bcsr.of_csr other))
      in
      check_bool (name ^ ": add pattern identical") true
        (s_big.Csr.row_ptr = s_ref.Csr.row_ptr
        && s_big.Csr.col_ind = s_ref.Csr.col_ind);
      check_bool (name ^ ": add values bit-identical") true
        (s_big.Csr.values = s_ref.Csr.values))
    (bcsr_cases ())

let test_bcsr_factor_agrees () =
  let a = grid_pencil 4 4 2 in
  let n, _ = Csr.dims a in
  let f_arr = Slu.factor a in
  let f_big = Slu.factor_b (Bcsr.of_csr a) in
  let b = Array.init n (fun i -> sin (float_of_int (i + 1))) in
  check_bool "bigarray-backed factor solves bit-identically" true
    (Slu.solve f_big b = Slu.solve f_arr b)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sparse"
    [
      ( "coo",
        [
          t "duplicate merging" test_coo_merge;
          t "bounds checking" test_coo_bounds;
          t "dense roundtrip" test_coo_roundtrip;
          t "capacity growth" test_coo_growth;
        ] );
      ( "csr",
        [
          t "get" test_csr_get;
          t "mul_vec" test_csr_mul_vec;
          t "tmul_vec" test_csr_tmul_vec;
          t "transpose" test_csr_transpose;
          t "add" test_csr_add;
          t "eye + scale" test_csr_eye_scale;
          t "zero" test_csr_zero;
          q prop_csr_add_commutes;
          q prop_csr_matvec_linear;
        ] );
      ( "rcm",
        [
          t "is a permutation" test_rcm_is_permutation;
          t "reduces bandwidth" test_rcm_reduces_bandwidth;
          t "permute values" test_rcm_permute_values;
          t "inverse" test_rcm_inverse;
          t "ordering variants agree" test_slu_ordering_variants_agree;
          t "rcm reduces fill" test_slu_rcm_reduces_fill;
        ] );
      ( "slu",
        [
          t "vs dense LU" test_slu_vs_dense;
          t "factor reuse" test_slu_factor_reuse;
          t "permutation needed" test_slu_permutation_needed;
          t "singular raises" test_slu_singular;
          t "dae pencil" test_slu_dae_pencil;
          t "tridiagonal no fill" test_slu_tridiagonal_no_fill;
          q prop_slu_random;
        ] );
      ( "amd",
        [
          t "permutation on random rlc" test_amd_permutation_rlc;
          t "permutation on power grid" test_amd_permutation_grid;
          t "fill <= natural on 3-d grid" test_amd_fill_le_natural;
          t "solves grid pencil" test_amd_solves_grid;
          t "singular named in original order"
            test_singular_named_in_original_order;
        ] );
      ( "refactor",
        [
          t "bit-identical to fresh factor" test_refactor_bit_identical;
          t "new values same pattern" test_refactor_new_values;
          t "pattern mismatch raises" test_refactor_pattern_mismatch;
          t "singular named under amd" test_refactor_singular_named;
          t "unstable + hinted fallback" test_refactor_unstable_and_hint_fallback;
          t "solve_many bit-identical" test_solve_many_matches_map;
        ] );
      ( "bcsr",
        [
          t "roundtrip" test_bcsr_roundtrip;
          t "ops bit-identical" test_bcsr_ops_bit_identical;
          t "factor agrees" test_bcsr_factor_agrees;
        ] );
    ]
