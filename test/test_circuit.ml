(* Tests for the circuit substrate: netlist, parser, MNA/NA stamping and
   the workload generators. *)

open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let step = Source.Step { amplitude = 1.0; delay = 0.0 }

(* ---------- Netlist ---------- *)

let test_netlist_nodes () =
  let net =
    Netlist.of_list
      [ Netlist.r "R1" "a" "b" 10.0; Netlist.c "C1" "b" "0" 1e-6 ]
  in
  check_int "two non-ground nodes" 2 (Netlist.node_count net);
  check_bool "ground not a node" true (Netlist.node_index net "0" = None);
  check_bool "a is node 0" true (Netlist.node_index net "a" = Some 0);
  check_bool "b is node 1" true (Netlist.node_index net "b" = Some 1)

let test_netlist_ground_aliases () =
  check_bool "0" true (Netlist.is_ground "0");
  check_bool "gnd" true (Netlist.is_ground "gnd");
  check_bool "GND" true (Netlist.is_ground "GND");
  check_bool "vdd not ground" false (Netlist.is_ground "vdd")

let test_netlist_duplicate_rejected () =
  let net = Netlist.create () in
  Netlist.add net (Netlist.r "R1" "a" "0" 1.0);
  check_bool "duplicate designator" true
    (try
       Netlist.add net (Netlist.r "R1" "b" "0" 2.0);
       false
     with Invalid_argument _ -> true)

let test_netlist_invalid_values () =
  check_bool "negative R" true
    (try
       ignore (Netlist.of_list [ Netlist.r "R1" "a" "0" (-1.0) ]);
       false
     with Invalid_argument _ -> true);
  check_bool "zero C" true
    (try
       ignore (Netlist.of_list [ Netlist.c "C1" "a" "0" 0.0 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "ground-to-ground" true
    (try
       ignore (Netlist.of_list [ Netlist.r "R1" "0" "gnd" 1.0 ]);
       false
     with Invalid_argument _ -> true)

let test_netlist_find () =
  let net = Netlist.of_list [ Netlist.l "L1" "a" "0" 1e-9 ] in
  check_bool "found" true (Netlist.find net "L1" <> None);
  check_bool "missing" true (Netlist.find net "L2" = None)

(* ---------- Parser ---------- *)

let test_parse_value_suffixes () =
  close "k" 1000.0 (Parser.parse_value "1k");
  close "meg" 10e6 (Parser.parse_value "10meg");
  close "u" 2.2e-6 (Parser.parse_value "2.2u") ~tol:1e-18;
  close "n" 5e-9 (Parser.parse_value "5n") ~tol:1e-20;
  close "p" 3e-12 (Parser.parse_value "3p") ~tol:1e-22;
  close "f" 4e-15 (Parser.parse_value "4F") ~tol:1e-25;
  close "m" 7e-3 (Parser.parse_value "7m") ~tol:1e-14;
  close "g" 2e9 (Parser.parse_value "2G");
  close "t" 1e12 (Parser.parse_value "1T");
  close "plain" 42.5 (Parser.parse_value "42.5");
  close "scientific" 1.5e-7 (Parser.parse_value "1.5e-7") ~tol:1e-18

let test_parse_value_malformed () =
  check_bool "garbage" true
    (try
       ignore (Parser.parse_value "abc");
       false
     with Failure _ -> true)

let test_parse_elements () =
  let net =
    Parser.parse_string
      "* comment line\n\
       R1 in out 1k   ; trailing comment\n\
       C1 out 0 1u\n\
       L1 out tail 10n\n\
       P1 tail 0 q=1u alpha=0.5\n\
       V1 in 0 step(1)\n\
       I1 out 0 dc 1m\n\
       .end\n"
  in
  check_int "six elements" 6 (Netlist.cardinality net);
  (match Netlist.find net "P1" with
  | Some { Netlist.element = Netlist.Cpe { q; alpha }; _ } ->
      close "cpe q" 1e-6 q ~tol:1e-16;
      close "cpe alpha" 0.5 alpha
  | _ -> Alcotest.fail "P1 not parsed as CPE");
  match Netlist.find net "R1" with
  | Some { Netlist.element = Netlist.Resistor r; _ } -> close "R value" 1000.0 r
  | _ -> Alcotest.fail "R1 not parsed"

let test_parse_sources () =
  let net =
    Parser.parse_string
      "V1 a 0 pulse(0 5 1n 2n 10n)\n\
       V2 b 0 sin(0.5 2 1meg 0.1)\n\
       V3 c 0 exp(3 1u)\n\
       V4 d 0 pwl(0 0, 1n 1, 2n 0)\n\
       V5 e 0 ramp(2 1n)\n\
       V6 f 0 2.5\n"
  in
  let src name =
    match Netlist.find net name with
    | Some { Netlist.element = Netlist.Voltage_source s; _ } -> s
    | _ -> Alcotest.fail (name ^ " missing")
  in
  (match src "V1" with
  | Source.Pulse { low; high; delay; width; period } ->
      close "low" 0.0 low;
      close "high" 5.0 high;
      close "delay" 1e-9 delay ~tol:1e-20;
      close "width" 2e-9 width ~tol:1e-20;
      close "period" 10e-9 period ~tol:1e-20
  | _ -> Alcotest.fail "V1 not a pulse");
  (match src "V2" with
  | Source.Sine { amplitude; freq_hz; phase; offset } ->
      close "amp" 2.0 amplitude;
      close "freq" 1e6 freq_hz;
      close "phase" 0.1 phase;
      close "offset" 0.5 offset
  | _ -> Alcotest.fail "V2 not a sine");
  (match src "V4" with
  | Source.Pwl points -> check_int "pwl points" 3 (List.length points)
  | _ -> Alcotest.fail "V4 not pwl");
  match src "V6" with
  | Source.Dc v -> close "bare dc" 2.5 v
  | _ -> Alcotest.fail "V6 not dc"

let test_parse_pulse_oneshot () =
  let net = Parser.parse_string "I1 a 0 pulse(0 1 0 5n 0)\n" in
  match Netlist.find net "I1" with
  | Some { Netlist.element = Netlist.Current_source (Source.Pulse { period; _ }); _ } ->
      check_bool "period 0 becomes one-shot" true (period = Float.infinity)
  | _ -> Alcotest.fail "I1 missing"

let test_parse_errors_carry_line_numbers () =
  let check_line text expected_line =
    try
      ignore (Parser.parse_string text);
      Alcotest.fail "expected Parse_error"
    with Parser.Parse_error { line; _ } ->
      check_int "line number" expected_line line
  in
  check_line "R1 a 0 1k\nC1 b 0\n" 2;
  check_line "Z1 a 0 1k\n" 1;
  check_line "R1 a 0 1k\n\nV1 c 0 wobble(3)\n" 3;
  check_line "P1 a 0 q=1 beta=2\n" 1

let test_parse_file_roundtrip () =
  let path = Filename.temp_file "opm_test" ".sp" in
  let oc = open_out path in
  output_string oc "R1 a 0 2k\nC1 a 0 1n\n";
  close_out oc;
  let net = Parser.parse_file path in
  Sys.remove path;
  check_int "elements" 2 (Netlist.cardinality net)

(* ---------- MNA stamping ---------- *)

let test_mna_rc_matrices () =
  (* V—R—C: states (v_in, v_out, i_V); checked entry by entry *)
  let net =
    Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n"
  in
  let sys, srcs = Mna.stamp_linear net in
  check_int "3 states" 3 (Descriptor.order sys);
  check_int "1 source" 1 (Array.length srcs);
  let e = Descriptor.e_dense sys and a = Descriptor.a_dense sys in
  let g = 1e-3 in
  (* node order: in = 0, out = 1; branch current row = 2 *)
  close "E[out][out] = C" 1e-6 (Mat.get e 1 1) ~tol:1e-16;
  close "E elsewhere" 0.0 (Mat.get e 0 0);
  close "A[in][in] = −G" (-.g) (Mat.get a 0 0) ~tol:1e-12;
  close "A[in][out] = G" g (Mat.get a 0 1) ~tol:1e-12;
  close "A[out][out] = −G" (-.g) (Mat.get a 1 1) ~tol:1e-12;
  (* voltage source row and column *)
  close "A[vrow][in]" 1.0 (Mat.get a 2 0);
  close "A[in][vrow]" (-1.0) (Mat.get a 0 2);
  close "B[vrow][0]" (-1.0) (Mat.get sys.Descriptor.b 2 0)

let test_mna_symmetric_rc_stamps () =
  (* for R/C-only circuits (no branch states) E and the G part of A are
     symmetric *)
  let net =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.r "R1" "a" "b" 2.0;
        Netlist.r "R2" "b" "0" 3.0;
        Netlist.c "C1" "a" "0" 1.0;
        Netlist.c "C2" "a" "b" 2.0;
      ]
  in
  let sys, _ = Mna.stamp_linear net in
  let e = Descriptor.e_dense sys and a = Descriptor.a_dense sys in
  close "E symmetric" 0.0 (Mat.max_abs_diff e (Mat.transpose e));
  close "A symmetric" 0.0 (Mat.max_abs_diff a (Mat.transpose a));
  (* coupling capacitor off-diagonal *)
  close "E[a][b] = −2" (-2.0) (Mat.get e 0 1)

let test_mna_inductor_branch () =
  let net =
    Netlist.of_list
      [ Netlist.i "I1" "a" "0" step; Netlist.l "L1" "a" "0" 2e-3 ]
  in
  let sys, _ = Mna.stamp_linear net in
  check_int "node + branch" 2 (Descriptor.order sys);
  let e = Descriptor.e_dense sys and a = Descriptor.a_dense sys in
  close "E[branch][branch] = L" 2e-3 (Mat.get e 1 1) ~tol:1e-12;
  close "A[branch][node] = 1" 1.0 (Mat.get a 1 0);
  close "A[node][branch] = −1" (-1.0) (Mat.get a 0 1)

let test_mna_state_names () =
  let net =
    Parser.parse_string "V1 in 0 step(1)\nL1 in out 1n\nR1 out 0 50\n"
  in
  let names = Mna.state_names net in
  check_bool "node name" true (Array.exists (( = ) "v(out)") names);
  check_bool "inductor current" true (Array.exists (( = ) "i(L1)") names);
  check_bool "source current" true (Array.exists (( = ) "i(V1)") names)

let test_mna_probe_errors () =
  let net = Parser.parse_string "R1 a 0 1k\nV1 a 0 dc 1\n" in
  check_bool "unknown node" true
    (try
       ignore (Mna.stamp ~outputs:[ Mna.Node_voltage "zz" ] net);
       false
     with Invalid_argument _ -> true);
  check_bool "R has no current state" true
    (try
       ignore (Mna.stamp ~outputs:[ Mna.Branch_current "R1" ] net);
       false
     with Invalid_argument _ -> true)

let test_mna_cpe_grouping () =
  (* two CPEs with equal α share one term; different α makes two *)
  let net1 =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.cpe "P1" "a" "0" ~q:1.0 ~alpha:0.5;
        Netlist.cpe "P2" "a" "b" ~q:2.0 ~alpha:0.5;
        Netlist.r "R1" "b" "0" 1.0;
      ]
  in
  let mt1, _ = Mna.stamp net1 in
  check_int "E1 + one Eα" 2 (List.length mt1.Multi_term.terms);
  let net2 =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.cpe "P1" "a" "0" ~q:1.0 ~alpha:0.5;
        Netlist.cpe "P2" "a" "b" ~q:2.0 ~alpha:0.7;
        Netlist.r "R1" "b" "0" 1.0;
      ]
  in
  let mt2, _ = Mna.stamp net2 in
  check_int "E1 + two Eα" 3 (List.length mt2.Multi_term.terms)

let test_mna_stamp_linear_rejects_cpe () =
  let net =
    Netlist.of_list
      [ Netlist.i "I1" "a" "0" step; Netlist.cpe "P1" "a" "0" ~q:1.0 ~alpha:0.5 ]
  in
  check_bool "raises" true
    (try
       ignore (Mna.stamp_linear net);
       false
     with Invalid_argument _ -> true)

let test_mna_stamp_fractional_shapes () =
  let frac =
    Netlist.of_list
      [
        Netlist.v "V1" "in" "0" step;
        Netlist.r "R1" "in" "out" 1e3;
        Netlist.cpe "P1" "out" "0" ~q:1e-6 ~alpha:0.5;
      ]
  in
  (match Mna.stamp_fractional frac with
  | Some (_, alpha, _) -> close "alpha" 0.5 alpha
  | None -> Alcotest.fail "expected fractional shape");
  (* a capacitor spoils the single-order shape *)
  let mixed =
    Netlist.of_list
      [
        Netlist.v "V1" "in" "0" step;
        Netlist.r "R1" "in" "out" 1e3;
        Netlist.cpe "P1" "out" "0" ~q:1e-6 ~alpha:0.5;
        Netlist.c "C1" "out" "0" 1e-9;
      ]
  in
  check_bool "mixed orders rejected" true (Mna.stamp_fractional mixed = None)

(* ---------- unparser roundtrip ---------- *)

let test_netlist_to_string_roundtrip () =
  let text =
    "V1 in 0 step(1, 1n)\n\
     V2 b 0 sin(0.5 2 1e6 0.1)\n\
     V3 c 0 pwl(0 0, 1e-9 1, 2e-9 0)\n\
     I1 d 0 pulse(0 0.001 1e-9 2e-9 1e-8)\n\
     I2 e 0 exp(3 1e-6)\n\
     I3 f 0 ramp(2 1e-9)\n\
     R1 in out 1000\n\
     C1 out 0 1e-6\n\
     L1 out d 1e-8\n\
     P1 e 0 q=1e-6 alpha=0.5\n\
     G1 f 0 in 0 0.002\n\
     E1 g 0 out 0 10\n"
  in
  let net = Parser.parse_string text in
  let printed = Netlist.to_string net in
  let reparsed = Parser.parse_string printed in
  check_int "same cardinality" (Netlist.cardinality net)
    (Netlist.cardinality reparsed);
  check_int "same nodes" (Netlist.node_count net) (Netlist.node_count reparsed);
  (* stamping both must give identical matrices *)
  let mt1, srcs1 = Mna.stamp net in
  let mt2, srcs2 = Mna.stamp reparsed in
  close "A matrices equal" 0.0
    (Csr.max_abs_diff mt1.Multi_term.a mt2.Multi_term.a);
  check_int "same source count" (Array.length srcs1) (Array.length srcs2);
  (* and the sources must evaluate identically *)
  Array.iteri
    (fun k s1 ->
      let s2 = srcs2.(k) in
      List.iter
        (fun t ->
          close
            (Printf.sprintf "source %d at %g" k t)
            (Source.eval s1 t) (Source.eval s2 t) ~tol:1e-12)
        [ 0.0; 0.4e-9; 1.1e-9; 3e-9; 7.7e-9 ])
    srcs1

let test_fn_source_not_printable () =
  check_bool "raises" true
    (try
       ignore (Netlist.instance_to_line (Netlist.v "V1" "a" "0" (Source.Fn exp)));
       false
     with Invalid_argument _ -> true)

let prop_random_netlist_roundtrip =
  QCheck.Test.make ~count:40
    ~name:"random netlists survive print → parse → stamp unchanged"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let rand_val lo hi = lo *. ((hi /. lo) ** Random.State.float st 1.0) in
      let node k = Printf.sprintf "n%d" k in
      let n_nodes = 2 + Random.State.int st 5 in
      let rand_node () = node (Random.State.int st n_nodes) in
      let rand_node_or_gnd () =
        if Random.State.bool st then "0" else rand_node ()
      in
      let net = Netlist.create () in
      (* a source to make the system meaningful *)
      Netlist.add net
        (Netlist.i "I0" (node 0) "0"
           (Source.Pulse
              {
                low = 0.0;
                high = rand_val 1e-4 1e-2;
                delay = rand_val 1e-12 1e-9;
                width = rand_val 1e-12 1e-9;
                period = Float.infinity;
              }));
      for k = 1 to 3 + Random.State.int st 8 do
        let name kind = Printf.sprintf "%s%d" kind k in
        let a = rand_node () and b = rand_node_or_gnd () in
        if a <> b then
          match Random.State.int st 4 with
          | 0 -> Netlist.add net (Netlist.r (name "R") a b (rand_val 1.0 1e6))
          | 1 -> Netlist.add net (Netlist.c (name "C") a b (rand_val 1e-15 1e-6))
          | 2 -> Netlist.add net (Netlist.l (name "L") a b (rand_val 1e-12 1e-3))
          | _ ->
              Netlist.add net
                (Netlist.cpe (name "P") a b ~q:(rand_val 1e-9 1e-3)
                   ~alpha:(rand_val 0.2 0.9))
      done;
      let reparsed = Parser.parse_string (Netlist.to_string net) in
      let mt1, _ = Mna.stamp net in
      let mt2, _ = Mna.stamp reparsed in
      Csr.max_abs_diff mt1.Multi_term.a mt2.Multi_term.a < 1e-15
      && List.length mt1.Multi_term.terms = List.length mt2.Multi_term.terms
      && Netlist.node_count net = Netlist.node_count reparsed)

(* ---------- parser fuzz ----------

   The QCheck roundtrip above starts from netlist *objects*, so it only
   ever sees the canonical surface syntax [Netlist.to_string] emits.
   This fuzzer starts from raw TEXT and exercises the syntax the
   unparser never produces: value suffixes (mixed case), comment lines,
   trailing `;` comments, commas inside source calls, stray blank lines
   and a `.end` card. Cases are seeded from OPM_PROP_SEED (default
   20260806) and every failure carries the replay seed. *)

let fuzz_base_seed =
  match Sys.getenv_opt "OPM_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 20260806)
  | None -> 20260806

let fuzz_prop ~n f () =
  for k = 0 to n - 1 do
    let seed = fuzz_base_seed + (1013904223 * k) in
    let st = Random.State.make [| 0x51c7; seed |] in
    try f st
    with e ->
      Alcotest.failf "case %d failed — replay with OPM_PROP_SEED=%d — %s" k
        seed (Printexc.to_string e)
  done

let random_netlist_text st =
  let buf = Buffer.create 256 in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let value () =
    let mant = 0.1 +. Random.State.float st 99.9 in
    match Random.State.int st 4 with
    | 0 -> Printf.sprintf "%.4g" mant
    | 1 ->
        Printf.sprintf "%.4g%s" mant
          (pick [| "k"; "meg"; "m"; "u"; "n"; "p" |])
    | 2 -> Printf.sprintf "%.4g%s" mant (pick [| "K"; "MEG"; "U"; "N" |])
    | _ -> Printf.sprintf "%.4ge%+d" mant (Random.State.int st 9 - 4)
  in
  let n_nodes = 2 + Random.State.int st 5 in
  let node () = Printf.sprintf "n%d" (Random.State.int st n_nodes) in
  let node_or_gnd () =
    if Random.State.bool st then pick [| "0"; "gnd"; "GND" |] else node ()
  in
  let sep () = pick [| " "; ", " |] in
  let source_spec () =
    match Random.State.int st 8 with
    | 0 -> Printf.sprintf "step(%s)" (value ())
    | 1 -> Printf.sprintf "STEP(%s%s1n)" (value ()) (sep ())
    | 2 ->
        Printf.sprintf "pulse(0%s%s%s1n%s5n%s20n)" (sep ()) (value ())
          (sep ()) (sep ()) (sep ())
    | 3 -> Printf.sprintf "sin(0%s%s%s1meg)" (sep ()) (value ()) (sep ())
    | 4 -> Printf.sprintf "exp(%s%s%s)" (value ()) (sep ()) (value ())
    | 5 -> Printf.sprintf "ramp(%s)" (value ())
    | 6 -> Printf.sprintf "pwl(0 0, 1u %s, 2u 0)" (value ())
    | _ -> if Random.State.bool st then "dc " ^ value () else value ()
  in
  let decor line =
    let line = if Random.State.int st 4 = 0 then "  " ^ line else line in
    let line =
      if Random.State.int st 4 = 0 then line ^ "   ; trailing comment"
      else line
    in
    Buffer.add_string buf line;
    Buffer.add_char buf '\n';
    if Random.State.int st 5 = 0 then
      Buffer.add_string buf (pick [| "* a comment line\n"; "\n" |])
  in
  (* a driving source so stamping is meaningful *)
  decor
    (Printf.sprintf "%s0 n0 0 %s"
       (pick [| "I"; "V" |])
       (source_spec ()));
  for k = 1 to 3 + Random.State.int st 8 do
    let a = node () and b = node_or_gnd () in
    if a <> b && not (Netlist.is_ground a && Netlist.is_ground b) then
      match Random.State.int st 7 with
      | 0 -> decor (Printf.sprintf "R%d %s %s %s" k a b (value ()))
      | 1 -> decor (Printf.sprintf "C%d %s %s %s" k a b (value ()))
      | 2 -> decor (Printf.sprintf "L%d %s %s %s" k a b (value ()))
      | 3 ->
          decor
            (Printf.sprintf "P%d %s %s q=%s alpha=%.3f" k a b (value ())
               (0.2 +. Random.State.float st 0.7))
      | 4 ->
          decor
            (Printf.sprintf "G%d %s %s %s 0 %s" k a b (node ()) (value ()))
      | 5 -> decor (Printf.sprintf "I%d %s %s %s" k a b (source_spec ()))
      | _ -> decor (Printf.sprintf "V%d %s %s %s" k a b (source_spec ()))
  done;
  if Random.State.bool st then
    Buffer.add_string buf (pick [| ".end\n"; ".END\n" |]);
  Buffer.contents buf

let prop_parser_fuzz_text_roundtrip =
  fuzz_prop ~n:40 (fun st ->
      let text = random_netlist_text st in
      let net1 =
        try Parser.parse_string text
        with Parser.Parse_error { line; message } ->
          Alcotest.failf "generated text rejected at line %d (%s):\n%s" line
            message text
      in
      let printed = Netlist.to_string net1 in
      let net2 = Parser.parse_string printed in
      check_int "cardinality survives print → parse"
        (Netlist.cardinality net1)
        (Netlist.cardinality net2);
      check_int "node count survives print → parse"
        (Netlist.node_count net1)
        (Netlist.node_count net2);
      let mt1, srcs1 = Mna.stamp net1 in
      let mt2, srcs2 = Mna.stamp net2 in
      close "stamped A matrices equal" 0.0
        (Csr.max_abs_diff mt1.Multi_term.a mt2.Multi_term.a)
        ~tol:1e-15;
      check_int "same term count"
        (List.length mt1.Multi_term.terms)
        (List.length mt2.Multi_term.terms);
      check_int "same source count" (Array.length srcs1)
        (Array.length srcs2);
      Array.iteri
        (fun k s1 ->
          List.iter
            (fun t ->
              close
                (Printf.sprintf "source %d at t=%g" k t)
                (Source.eval s1 t)
                (Source.eval srcs2.(k) t)
                ~tol:1e-12)
            [ 0.0; 3e-7; 1.1e-6; 5e-6 ])
        srcs1)

(* every rejection must point at the offending 1-based line, whatever
   layer it comes from (tokenizer, value parser, element arity, source
   grammar, or the netlist's own validation wrapped by parse_string) *)
let test_parser_fuzz_malformed_line_numbers () =
  let cases =
    [
      ("R1 a 0\n", 1) (* missing value *);
      ("R1 a 0 1k\nC1 b 0 12xyz\n", 2) (* unparsable value token *);
      ("* comment\n\nZ1 a 0 1\n", 3) (* unknown element letter *);
      ("R1 a 0 1k\nV1 a 0 wobble(3)\n", 2) (* unknown source function *);
      ("V1 a 0 pulse(0 1\n", 1) (* unbalanced '(' *);
      ("R1 a 0 1k\nR2 b 0 2k\nV1 c 0 pwl(0 0, 1n)\n", 3)
      (* odd pwl argument count *);
      ("P1 a 0 q=1u\n", 1) (* CPE missing alpha=<v> *);
      ("R1 a 0 1k\nP1 a 0 q=1u beta=0.5\n", 2) (* wrong CPE keyword *);
      ("G1 a 0 b 1m\n", 1) (* VCCS arity *);
      ("R1 a 0 1k\nR1 b 0 2k\n", 2) (* duplicate designator *);
    ]
  in
  List.iteri
    (fun k (text, expected_line) ->
      try
        ignore (Parser.parse_string text);
        Alcotest.failf "case %d: expected Parse_error for %S" k text
      with Parser.Parse_error { line; message } ->
        check_int (Printf.sprintf "case %d line number" k) expected_line line;
        check_bool
          (Printf.sprintf "case %d has a message" k)
          true
          (String.length message > 0))
    cases

let prop_random_ladder_opm_matches_trapezoidal =
  QCheck.Test.make ~count:15
    ~name:"random RC ladders: OPM and trapezoidal agree below −55 dB"
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (sections, seed) ->
      let st = Random.State.make [| seed |] in
      let r = 100.0 +. Random.State.float st 10e3 in
      let c = 1e-10 +. Random.State.float st 1e-8 in
      let tau = r *. c *. float_of_int sections in
      let net =
        Generators.rc_ladder ~r ~c ~sections
          ~input:(Source.Step { amplitude = 1.0; delay = 0.0 })
          ()
      in
      let probe = [ Mna.Node_voltage (Printf.sprintf "n%d" sections) ] in
      let sys, srcs = Mna.stamp_linear ~outputs:probe net in
      let t_end = 3.0 *. tau in
      let m = 2000 in
      let opm = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m) sys srcs in
      let trap =
        Opm_transient.Stepper.solve ~scheme:Opm_transient.Stepper.Trapezoidal
          ~h:(t_end /. float_of_int m) ~t_end sys srcs
      in
      Error.waveform_error_db ~reference:opm.Sim_result.outputs trap < -55.0)

(* ---------- controlled sources ---------- *)

let test_parse_controlled_sources () =
  let net =
    Parser.parse_string
      "V1 in 0 dc 1\nG1 out 0 in 0 2m\nE1 amp 0 out 0 10\nR1 out 0 1k\nR2 amp 0 1k\n"
  in
  (match Netlist.find net "G1" with
  | Some { Netlist.element = Netlist.Vccs { gm; ctrl_plus; ctrl_minus }; _ } ->
      close "gm" 2e-3 gm ~tol:1e-12;
      check_bool "ctrl nodes" true (ctrl_plus = "in" && ctrl_minus = "0")
  | _ -> Alcotest.fail "G1 not parsed as VCCS");
  (match Netlist.find net "E1" with
  | Some { Netlist.element = Netlist.Vcvs { gain; _ }; _ } ->
      close "gain" 10.0 gain
  | _ -> Alcotest.fail "E1 not parsed as VCVS");
  check_bool "bad arity rejected" true
    (try
       ignore (Parser.parse_string "G1 a 0 b 1m\n");
       false
     with Parser.Parse_error _ -> true)

let test_vccs_registers_control_nodes () =
  (* a control node that appears nowhere else must still become a node *)
  let net =
    Netlist.of_list
      [
        Netlist.vccs "G1" "out" "0" ~ctrl:("sense", "0") ~gm:1e-3;
        Netlist.r "R1" "out" "0" 1e3;
      ]
  in
  check_bool "sense registered" true (Netlist.node_index net "sense" <> None)

let test_vcvs_transient_follower () =
  (* unity-gain buffer driving an RC: output node must follow the same
     exponential as the direct drive *)
  let direct = Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let buffered =
    Parser.parse_string
      "V1 src 0 step(1)\nRb src 0 1meg\nE1 in 0 src 0 1\nR1 in out 1k\nC1 out 0 1u\n"
  in
  let sys1, s1 = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] direct in
  let sys2, s2 = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] buffered in
  let grid = Grid.uniform ~t_end:5e-3 ~m:200 in
  let r1 = Opm.simulate_linear ~grid sys1 s1 in
  let r2 = Opm.simulate_linear ~grid sys2 s2 in
  check_bool "buffer is transparent" true
    (Vec.approx_equal ~tol:1e-9 (Sim_result.output r1 0) (Sim_result.output r2 0))

let test_vccs_integrator () =
  (* G into a capacitor is an integrator: v = (gm/C)·∫v_in *)
  let net =
    Parser.parse_string
      "V1 in 0 dc 1\nRl in 0 1k\nG1 out 0 in 0 1m\nC1 out 0 1u\n"
  in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  let grid = Grid.uniform ~t_end:2e-3 ~m:400 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let y = Sim_result.output r 0 in
  let mids = Grid.midpoints grid in
  (* current gm·1V leaves node "out", charging C negatively *)
  let err = ref 0.0 in
  Array.iteri
    (fun i t -> err := Float.max !err (Float.abs (y.(i) +. (1e-3 /. 1e-6 *. t))))
    mids;
  check_bool "ramps at −gm/C" true (!err < 2e-2)

let test_na2_accepts_vccs () =
  let net =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.vccs "G1" "b" "0" ~ctrl:("a", "0") ~gm:1e-3;
        Netlist.r "R1" "a" "0" 1e3;
        Netlist.r "R2" "b" "0" 1e3;
        Netlist.c "C1" "b" "0" 1e-9;
      ]
  in
  let mt, _ = Na2.stamp net in
  Alcotest.(check int) "nodes only" 2 (Multi_term.order mt)

let test_na2_rejects_vcvs () =
  let net =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.r "R1" "a" "0" 1e3;
        Netlist.vcvs "E1" "b" "0" ~ctrl:("a", "0") ~gain:2.0;
        Netlist.r "R2" "b" "0" 1e3;
      ]
  in
  check_bool "raises" true
    (try
       ignore (Na2.stamp net);
       false
     with Invalid_argument _ -> true)

(* ---------- NA second-order ---------- *)

let test_na2_sizes_and_stamps () =
  let net =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0" step;
        Netlist.r "R1" "a" "b" 2.0;
        Netlist.l "L1" "b" "0" 4.0;
        Netlist.c "C1" "a" "0" 3.0;
      ]
  in
  let mt, srcs = Na2.stamp net in
  check_int "node count only" 2 (Multi_term.order mt);
  check_int "one source" 1 (Array.length srcs);
  check_int "input derivative" 1 mt.Multi_term.input_order;
  (* term orders 2 and 1 *)
  close "max alpha" 2.0 (Multi_term.max_alpha mt);
  (* Γ = 1/L stamps into −A *)
  close "A[b][b] = −1/L" (-0.25) (Csr.get mt.Multi_term.a 1 1)

let test_na2_rejects_vsource () =
  let net =
    Netlist.of_list [ Netlist.v "V1" "a" "0" step; Netlist.r "R1" "a" "0" 1.0 ]
  in
  check_bool "raises" true
    (try
       ignore (Na2.stamp net);
       false
     with Invalid_argument _ -> true)

let test_na2_equals_mna_dynamics () =
  (* the same physical circuit through both formulations *)
  let net =
    Netlist.of_list
      [
        Netlist.i "I1" "a" "0"
          (Source.Pulse
             { low = 0.0; high = 1e-3; delay = 0.0; width = 2e-10; period = Float.infinity });
        Netlist.r "R1" "a" "b" 1.0;
        Netlist.c "C1" "a" "0" 1e-12;
        Netlist.c "C2" "b" "0" 1e-12;
        Netlist.l "L1" "b" "0" 1e-10;
      ]
  in
  let probe = [ Mna.Node_voltage "a" ] in
  let mna, srcs1 = Mna.stamp_linear ~outputs:probe net in
  let na, srcs2 = Na2.stamp ~outputs:probe net in
  let grid = Grid.uniform ~t_end:1e-9 ~m:400 in
  let r1 = Opm.simulate_linear ~grid mna srcs1 in
  let r2 = Opm.simulate_multi_term ~grid na srcs2 in
  let err =
    Error.waveform_error_db ~reference:r1.Sim_result.outputs
      r2.Sim_result.outputs
  in
  check_bool "formulations agree (< −60 dB)" true (err < -60.0)

(* ---------- generators ---------- *)

let test_rc_ladder_structure () =
  let net = Generators.rc_ladder ~sections:5 ~input:step () in
  (* 1 source + 5 R + 5 C *)
  check_int "elements" 11 (Netlist.cardinality net);
  check_int "nodes: in + 5" 6 (Netlist.node_count net)

let test_rc_ladder_dc_gain () =
  (* at DC every node settles to the input voltage *)
  let net = Generators.rc_ladder ~sections:3 ~input:step () in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "n3" ] net in
  let grid = Grid.uniform ~t_end:1e-4 ~m:2000 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let y = Sim_result.output r 0 in
  close "settles to 1" 1.0 y.(1999) ~tol:1e-3

let test_power_grid_counts () =
  let spec = { Power_grid.default_spec with nx = 3; ny = 4; nz = 2; load_count = 2 } in
  let net = Power_grid.generate spec in
  check_int "nodes" (Power_grid.na_unknowns spec) (Netlist.node_count net);
  let sys, _ = Mna.stamp_linear net in
  check_int "mna unknowns" (Power_grid.mna_unknowns spec) (Descriptor.order sys);
  (* inductors only between layers: 3·4·(2−1) = 12 *)
  check_int "via inductors" 12
    (List.length
       (List.filter
          (fun i ->
            match i.Netlist.element with Netlist.Inductor _ -> true | _ -> false)
          (Netlist.instances net)))

let test_power_grid_validation () =
  check_bool "zero dimension" true
    (try
       ignore (Power_grid.generate { Power_grid.default_spec with nx = 0 });
       false
     with Invalid_argument _ -> true);
  check_bool "too many loads" true
    (try
       ignore
         (Power_grid.generate
            { Power_grid.default_spec with nx = 2; ny = 2; load_count = 5 });
       false
     with Invalid_argument _ -> true)

let test_power_grid_deterministic () =
  let spec = { Power_grid.default_spec with nx = 3; ny = 3; nz = 2 } in
  let a = Power_grid.generate spec and b = Power_grid.generate spec in
  check_int "same size" (Netlist.cardinality a) (Netlist.cardinality b)

let test_two_time_scale () =
  let net = Generators.rc_two_time_scale ~input:step () in
  let sys, srcs =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "fast"; Mna.Node_voltage "slow" ] net
  in
  let grid = Grid.uniform ~t_end:5e-4 ~m:4000 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let fast = Sim_result.output r 0 and slow = Sim_result.output r 1 in
  (* early: fast nearly settled, slow barely moving *)
  check_bool "separation" true (fast.(40) > 0.8 && slow.(40) < 0.1);
  (* late: both settled *)
  check_bool "both settle" true (fast.(3999) > 0.99 && slow.(3999) > 0.95)

(* ---------- coupled lines ---------- *)

let crosstalk_peak spec =
  let net = Coupled_lines.generate spec in
  let sys, srcs =
    Mna.stamp_linear
      ~outputs:[ Mna.Node_voltage (Coupled_lines.victim_far_node spec) ]
      net
  in
  let r = Opm.simulate_linear ~grid:(Grid.uniform ~t_end:2e-9 ~m:800) sys srcs in
  snd (Measure.peak r.Sim_result.outputs ~channel:0)

let test_coupled_lines_glitch_bounded () =
  let spec = Coupled_lines.default_spec in
  let peak = crosstalk_peak spec in
  let divider =
    spec.Coupled_lines.cc /. (spec.Coupled_lines.cc +. spec.Coupled_lines.c_seg)
  in
  check_bool "positive glitch" true (peak > 0.01);
  check_bool "below the capacitive divider bound" true (peak < divider)

let test_coupled_lines_monotone_in_coupling () =
  let spec = Coupled_lines.default_spec in
  let p_small = crosstalk_peak { spec with Coupled_lines.cc = 5e-15 } in
  let p_big = crosstalk_peak { spec with Coupled_lines.cc = 60e-15 } in
  check_bool "more coupling, bigger glitch" true (p_big > 2.0 *. p_small)

let test_coupled_lines_victim_decays () =
  (* the glitch is transient: by the end of a long window the victim is
     pulled back to ground by its holder *)
  let spec = Coupled_lines.default_spec in
  let net = Coupled_lines.generate spec in
  let sys, srcs =
    Mna.stamp_linear
      ~outputs:[ Mna.Node_voltage (Coupled_lines.victim_far_node spec) ]
      net
  in
  let r = Opm.simulate_linear ~grid:(Grid.uniform ~t_end:20e-9 ~m:2000) sys srcs in
  let v_end = Measure.final_value r.Sim_result.outputs ~channel:0 in
  check_bool "glitch decays" true (Float.abs v_end < 1e-3)

(* ---------- transmission-line model ---------- *)

let test_tline_shape () =
  let sys = Tline.model () in
  check_int "7 states (paper)" 7 (Descriptor.order sys);
  check_int "2 inputs" 2 (Descriptor.input_count sys);
  check_int "2 outputs" 2 (Descriptor.output_count sys);
  close "alpha half" 0.5 Tline.alpha;
  close "span 2.7 ns" 2.7e-9 Tline.t_end ~tol:1e-20

let test_tline_stability () =
  (* the step response must stay bounded over a long horizon *)
  let sys = Tline.model () in
  let grid = Grid.uniform ~t_end:(10.0 *. Tline.t_end) ~m:256 in
  let r = Opm.simulate_fractional ~grid ~alpha:Tline.alpha sys (Tline.inputs ()) in
  let y = Sim_result.output r 0 in
  check_bool "bounded" true (Vec.norm_inf y < 10.0)

let test_tline_port2_causality () =
  (* the far port responds later and weaker than the driven port *)
  let sys = Tline.model () in
  let grid = Grid.uniform ~t_end:Tline.t_end ~m:64 in
  let r = Opm.simulate_fractional ~grid ~alpha:Tline.alpha sys (Tline.inputs ()) in
  let y1 = Sim_result.output r 0 and y2 = Sim_result.output r 1 in
  check_bool "port 1 leads early" true (y1.(2) > y2.(2));
  check_bool "port 2 wakes up" true (y2.(63) > 0.05)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "circuit"
    [
      ( "netlist",
        [
          t "node registry" test_netlist_nodes;
          t "ground aliases" test_netlist_ground_aliases;
          t "duplicate rejected" test_netlist_duplicate_rejected;
          t "invalid values" test_netlist_invalid_values;
          t "find" test_netlist_find;
        ] );
      ( "parser",
        [
          t "value suffixes" test_parse_value_suffixes;
          t "malformed value" test_parse_value_malformed;
          t "elements" test_parse_elements;
          t "sources" test_parse_sources;
          t "one-shot pulse" test_parse_pulse_oneshot;
          t "error line numbers" test_parse_errors_carry_line_numbers;
          t "file roundtrip" test_parse_file_roundtrip;
          t "fuzz: random text roundtrips" prop_parser_fuzz_text_roundtrip;
          t "fuzz: malformed inputs carry line numbers"
            test_parser_fuzz_malformed_line_numbers;
        ] );
      ( "mna",
        [
          t "RC matrices entrywise" test_mna_rc_matrices;
          t "RC symmetry" test_mna_symmetric_rc_stamps;
          t "inductor branch" test_mna_inductor_branch;
          t "state names" test_mna_state_names;
          t "probe errors" test_mna_probe_errors;
          t "CPE grouping by order" test_mna_cpe_grouping;
          t "stamp_linear rejects CPE" test_mna_stamp_linear_rejects_cpe;
          t "stamp_fractional shapes" test_mna_stamp_fractional_shapes;
        ] );
      ( "unparse",
        [
          t "roundtrip all elements" test_netlist_to_string_roundtrip;
          t "Fn source not printable" test_fn_source_not_printable;
          QCheck_alcotest.to_alcotest prop_random_netlist_roundtrip;
          QCheck_alcotest.to_alcotest prop_random_ladder_opm_matches_trapezoidal;
        ] );
      ( "controlled-sources",
        [
          t "parse G and E lines" test_parse_controlled_sources;
          t "control nodes registered" test_vccs_registers_control_nodes;
          t "vcvs unity follower" test_vcvs_transient_follower;
          t "vccs integrator" test_vccs_integrator;
          t "na2 accepts vccs" test_na2_accepts_vccs;
          t "na2 rejects vcvs" test_na2_rejects_vcvs;
        ] );
      ( "na2",
        [
          t "sizes and stamps" test_na2_sizes_and_stamps;
          t "rejects V sources" test_na2_rejects_vsource;
          t "NA = MNA dynamics" test_na2_equals_mna_dynamics;
        ] );
      ( "generators",
        [
          t "rc ladder structure" test_rc_ladder_structure;
          t "rc ladder DC gain" test_rc_ladder_dc_gain;
          t "power grid counts" test_power_grid_counts;
          t "power grid validation" test_power_grid_validation;
          t "power grid deterministic" test_power_grid_deterministic;
          t "two-time-scale circuit" test_two_time_scale;
        ] );
      ( "coupled-lines",
        [
          t "glitch bounded by divider" test_coupled_lines_glitch_bounded;
          t "monotone in coupling" test_coupled_lines_monotone_in_coupling;
          t "glitch decays" test_coupled_lines_victim_decays;
        ] );
      ( "tline",
        [
          t "paper dimensions" test_tline_shape;
          t "stability" test_tline_stability;
          t "port causality" test_tline_port2_causality;
        ] );
    ]
