(* End-to-end tests of the opm_serve daemon.

   The daemon boots in-process on an ephemeral port and is driven by a
   hand-rolled HTTP client over Unix sockets (keep-alive aware, hard
   receive timeouts so a server hang fails the test instead of wedging
   CI).

   The core property is differential: every byte of every [/solve]
   response must decode to floats bit-identical to the same analysis
   run through [Opm.simulate_multi_term] in-process — the HTTP layer,
   the JSON printer/parser and the compiled-model cache may not
   perturb a single ulp. On top of that, the factor-once contract per
   plant: K concurrent clients sweeping the same circuit with
   different source amplitudes must pay exactly one factorisation
   (asserted through the per-plant stats in [/metrics]).

   Protocol fuzz (seeded, replayable via OPM_PROP_SEED like the parser
   fuzzers in test_circuit.ml) throws malformed, truncated and
   oversized bodies plus raw non-HTTP bytes at the daemon: every case
   must come back as a one-line structured 4xx, never a hang, a crash
   or a 200.

   The fault matrix extends bench resilience to the two server sites
   (accept, request-dispatch): under any injected kind the client sees
   a structured error or a correct answer — never a wrong one. *)

module Json = Opm_obs.Json
module Fault = Opm_robust.Fault
module Grid = Opm_basis.Grid
module Mna = Opm_circuit.Mna
module Parser = Opm_circuit.Parser
module Opm = Opm_core.Opm
module Compiled_model = Opm_core.Compiled_model
module Sim_result = Opm_core.Sim_result
module Waveform = Opm_signal.Waveform
module Model_cache = Opm_serve.Model_cache
module Protocol = Opm_serve.Protocol
module Server = Opm_serve.Server

(* ---------- tiny HTTP client ---------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let connect ?(timeout = 20.0) port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt_float fd SO_RCVTIMEO timeout;
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  fd

type response = { status : int; body : string }

(* Read one Content-Length-framed response off a keep-alive
   connection; raises on timeout (a hung server must fail loudly). *)
let read_response fd =
  let buf = Buffer.create 4096 in
  let tmp = Bytes.create 4096 in
  let read_more () =
    match Unix.read fd tmp 0 4096 with
    | 0 -> failwith "server closed connection mid-response"
    | n -> Buffer.add_subbytes buf tmp 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
        failwith "client receive timeout (server hang?)"
  in
  let head_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec wait_head () =
    match head_end () with
    | Some e -> e
    | None ->
        read_more ();
        wait_head ()
  in
  let body_start = wait_head () in
  let all = Buffer.contents buf in
  let head = String.sub all 0 body_start in
  let status =
    match String.split_on_char ' ' (List.hd (String.split_on_char '\r' head)) with
    | _ :: code :: _ -> int_of_string code
    | _ -> failwith ("malformed status line: " ^ head)
  in
  let content_length =
    let lower = String.lowercase_ascii head in
    let tag = "content-length:" in
    match
      List.find_opt
        (fun l -> String.length l >= String.length tag
                  && String.sub l 0 (String.length tag) = tag)
        (String.split_on_char '\n' lower)
    with
    | Some l ->
        int_of_string
          (String.trim
             (String.sub l (String.length tag) (String.length l - String.length tag)))
    | None -> failwith "response has no Content-Length"
  in
  while Buffer.length buf < body_start + content_length do
    read_more ()
  done;
  let body = String.sub (Buffer.contents buf) body_start content_length in
  { status; body }

let request_on fd ~meth ~path body =
  write_all fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
       meth path (String.length body) body);
  read_response fd

let request ?timeout ~port ~meth ~path body =
  let fd = connect ?timeout port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> request_on fd ~meth ~path body)

(* send raw bytes, read whatever comes back (possibly nothing) *)
let raw_exchange ?(timeout = 20.0) ~port bytes =
  let fd = connect ~timeout port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try write_all fd bytes
       with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ());
      (try Unix.shutdown fd SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      let buf = Buffer.create 1024 in
      let tmp = Bytes.create 4096 in
      let rec loop () =
        match Unix.read fd tmp 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf tmp 0 n;
            loop ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
          ->
            failwith "client receive timeout on raw exchange (server hang?)"
        | exception Unix.Unix_error (ECONNRESET, _, _) -> ()
      in
      loop ();
      Buffer.contents buf)

let with_server ?config f =
  (* SIGPIPE is ignored by Server.start, but arm it here too so a
     failing test that writes to a dead socket reports the assertion,
     not a signal death *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let config =
    match config with
    | Some c -> c
    | None -> { Server.default_config with port = 0 }
  in
  let s = Server.start ~config () in
  Fun.protect ~finally:(fun () -> Server.stop s) (fun () -> f s)

(* ---------- request fixtures ---------- *)

let rc_netlist amp =
  Printf.sprintf "V1 in 0 step(%g)\nR1 in out 1k\nC1 out 0 1u\n.end" amp

let rlc_netlist amp =
  Printf.sprintf "V1 in 0 sin(0 %g 300)\nR1 in a 20\nL1 a out 10m\nC1 out 0 10u\n"
    amp

let cpe_netlist amp =
  Printf.sprintf "I1 0 a %g\nR1 a 0 1k\nP1 a 0 q=1u alpha=0.5\n" amp

let solve_body ?(t_end = 0.005) ?(steps = 48) ?window ?probes netlist =
  let field k v = Printf.sprintf ",%S:%s" k v in
  Printf.sprintf
    "{\"netlist\":%s,\"analysis\":{\"t_end\":%g,\"steps\":%d%s%s}}"
    (Json.to_string (Json.String netlist))
    t_end steps
    (match window with None -> "" | Some w -> field "window" (string_of_int w))
    (match probes with
    | None -> ""
    | Some ps ->
        field "probes"
          (Json.to_string (Json.List (List.map (fun p -> Json.String p) ps))))

(* the reference: same netlist, same analysis, straight through the
   library *)
let expected_outputs ?window ?probes ~t_end ~steps netlist_text =
  let net = Parser.parse_string netlist_text in
  let outputs = Option.map (List.map (fun p -> Mna.Node_voltage p)) probes in
  let sys, sources = Mna.stamp ?outputs net in
  let grid = Grid.uniform ~t_end ~m:steps in
  let r = Opm.simulate_multi_term ?window ~grid sys sources in
  r.Sim_result.outputs

let floats_of_json j =
  match Json.to_list_opt j with
  | Some l ->
      Array.of_list
        (List.map
           (fun x ->
             match Json.to_float_opt x with
             | Some f -> f
             | None -> Alcotest.fail "non-numeric sample in response")
           l)
  | None -> Alcotest.fail "expected a JSON array of floats"

let check_bits what (expected : float array) (got : float array) =
  Alcotest.(check int) (what ^ " length") (Array.length expected)
    (Array.length got);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s[%d]: expected %h, got %h (not bit-identical)" what
          i e got.(i))
    expected

(* assert a solve response matches the in-process reference bit for bit *)
let check_differential ?window ?probes ~t_end ~steps netlist_text resp =
  Alcotest.(check int) "status" 200 resp.status;
  let doc = Json.of_string resp.body in
  let expected = expected_outputs ?window ?probes ~t_end ~steps netlist_text in
  let member k =
    match Json.member k doc with
    | Some v -> v
    | None -> Alcotest.failf "response missing %S" k
  in
  check_bits "times" expected.Waveform.times (floats_of_json (member "times"));
  let channels =
    match Json.to_list_opt (member "outputs") with
    | Some l -> Array.of_list (List.map floats_of_json l)
    | None -> Alcotest.fail "outputs is not a list"
  in
  Alcotest.(check int) "channel count"
    (Array.length expected.Waveform.channels)
    (Array.length channels);
  Array.iteri
    (fun c e -> check_bits (Printf.sprintf "outputs[%d]" c) e channels.(c))
    expected.Waveform.channels

let error_of_body body =
  let doc = Json.of_string body in
  match Json.member "error" doc with
  | Some err ->
      let get k =
        match Json.member k err with
        | Some v -> v
        | None -> Alcotest.failf "error object missing %S in %s" k body
      in
      ( Option.get (Json.to_int_opt (get "status")),
        Option.get (Json.to_string_opt (get "code")),
        Option.get (Json.to_string_opt (get "message")) )
  | None -> Alcotest.failf "expected a structured error body, got %s" body

let check_structured_error resp =
  Alcotest.(check bool) "error status >= 400" true (resp.status >= 400);
  if String.contains resp.body '\n' then
    Alcotest.failf "error body is not one line: %s" resp.body;
  let status, _code, _msg = error_of_body resp.body in
  Alcotest.(check int) "body status matches HTTP status" resp.status status

(* ---------- basic endpoints ---------- *)

let test_health_and_routing () =
  with_server (fun s ->
      let port = Server.port s in
      let health = request ~port ~meth:"GET" ~path:"/health" "" in
      Alcotest.(check int) "health status" 200 health.status;
      let doc = Json.of_string health.body in
      Alcotest.(check (option string))
        "health ok"
        (Some "ok")
        (Option.bind (Json.member "status" doc) Json.to_string_opt);
      check_structured_error (request ~port ~meth:"GET" ~path:"/nope" "");
      let m = request ~port ~meth:"PUT" ~path:"/solve" "" in
      Alcotest.(check int) "405 on PUT /solve" 405 m.status;
      check_structured_error m)

let test_solve_differential_single () =
  with_server (fun s ->
      let port = Server.port s in
      let netlist = rc_netlist 1.0 in
      let body = solve_body ~probes:[ "out" ] netlist in
      let resp = request ~port ~meth:"POST" ~path:"/solve" body in
      check_differential ~probes:[ "out" ] ~t_end:0.005 ~steps:48 netlist resp;
      (* same plant again: served from cache, still bit-identical *)
      let resp2 = request ~port ~meth:"POST" ~path:"/solve" body in
      check_differential ~probes:[ "out" ] ~t_end:0.005 ~steps:48 netlist resp2;
      let doc = Json.of_string resp2.body in
      Alcotest.(check (option bool))
        "second hit cached" (Some true)
        (Option.bind (Json.member "cached" doc) (function
          | Json.Bool b -> Some b
          | _ -> None));
      Alcotest.(check (option int))
        "exactly one factorisation" (Some 1)
        (Option.bind (Json.member "factorisations" doc) Json.to_int_opt))

let test_solve_windowed_differential () =
  with_server (fun s ->
      let port = Server.port s in
      let netlist = rlc_netlist 2.5 in
      let body = solve_body ~steps:64 ~window:16 ~probes:[ "out" ] netlist in
      let resp = request ~port ~meth:"POST" ~path:"/solve" body in
      check_differential ~window:16 ~probes:[ "out" ] ~t_end:0.005 ~steps:64
        netlist resp)

let test_solve_fractional_differential () =
  with_server (fun s ->
      let port = Server.port s in
      let netlist = cpe_netlist 0.001 in
      let body = solve_body ~steps:40 ~probes:[ "a" ] netlist in
      let resp = request ~port ~meth:"POST" ~path:"/solve" body in
      check_differential ~probes:[ "a" ] ~t_end:0.005 ~steps:40 netlist resp)

(* ---------- the serving contract: K concurrent sweeping clients ----------

   K >= 8 clients, three distinct plants between them, each client
   sweeping source amplitudes over one keep-alive connection. Every
   response must be bit-identical to the in-process reference, and
   /metrics must afterwards report exactly one factorisation per
   distinct plant — N clients sweeping one circuit pay one
   factorisation. *)

let test_concurrent_sweep_factor_once () =
  with_server (fun s ->
      let port = Server.port s in
      let plants =
        [|
          (rc_netlist, [ "out" ]);
          (rlc_netlist, [ "out" ]);
          (cpe_netlist, [ "a" ]);
        |]
      in
      let k_clients = 9 and sweeps = 4 in
      let failures = Array.make k_clients None in
      let client c =
        try
          let make_net, probes = plants.(c mod Array.length plants) in
          let fd = connect port in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              for i = 0 to sweeps - 1 do
                (* amplitudes unique per client so the sweep really
                   varies the sources while sharing the plant *)
                let amp = 0.5 +. (0.25 *. float_of_int ((c * sweeps) + i)) in
                let netlist = make_net amp in
                let body = solve_body ~steps:48 ~probes netlist in
                let resp = request_on fd ~meth:"POST" ~path:"/solve" body in
                check_differential ~probes ~t_end:0.005 ~steps:48 netlist resp
              done)
        with e -> failures.(c) <- Some (Printexc.to_string e)
      in
      let threads =
        Array.init k_clients (fun c -> Thread.create client c)
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun c -> function
          | Some msg -> Alcotest.failf "client %d failed: %s" c msg
          | None -> ())
        failures;
      (* per-plant factor-once, via the public metrics endpoint *)
      let m = request ~port ~meth:"GET" ~path:"/metrics" "" in
      Alcotest.(check int) "metrics status" 200 m.status;
      let doc = Json.of_string m.body in
      let plants_json =
        match
          Option.bind
            (Json.member "cache" doc)
            (fun c -> Option.bind (Json.member "plants" c) Json.to_list_opt)
        with
        | Some l -> l
        | None -> Alcotest.fail "metrics missing cache.plants"
      in
      Alcotest.(check int) "three distinct plants" 3 (List.length plants_json);
      List.iter
        (fun p ->
          let fact =
            Option.bind (Json.member "factorisations" p) Json.to_int_opt
          in
          Alcotest.(check (option int))
            "exactly one factorisation per plant" (Some 1) fact)
        plants_json;
      let total_queries =
        List.fold_left
          (fun acc p ->
            acc
            + Option.value ~default:0
                (Option.bind (Json.member "queries" p) Json.to_int_opt))
          0 plants_json
      in
      Alcotest.(check int)
        "every sweep request became a query" (k_clients * sweeps)
        total_queries)

(* ---------- protocol fuzz ---------- *)

let fuzz_base_seed =
  match Sys.getenv_opt "OPM_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 20260806)
  | None -> 20260806

let fuzz_prop ~n f () =
  for k = 0 to n - 1 do
    let seed = fuzz_base_seed + (1013904223 * k) in
    let st = Random.State.make [| 0x5e7e; seed |] in
    try f st
    with e ->
      Alcotest.failf "case %d failed — replay with OPM_PROP_SEED=%d — %s" k
        seed (Printexc.to_string e)
  done

let valid_body () = solve_body ~probes:[ "out" ] (rc_netlist 1.0)

(* malformed /solve bodies: truncations, bit flips, wrong shapes,
   unknown fields, bad netlists, out-of-range analyses *)
let random_bad_body st =
  let v = valid_body () in
  match Random.State.int st 10 with
  | 0 -> String.sub v 0 (Random.State.int st (String.length v))
  | 1 ->
      let b = Bytes.of_string v in
      let i = Random.State.int st (Bytes.length b) in
      Bytes.set b i (Char.chr (Random.State.int st 256));
      Bytes.to_string b
  | 2 -> "[1,2,3]"
  | 3 -> "{\"netlist\": 42, \"analysis\": {\"t_end\": 1, \"steps\": 8}}"
  | 4 -> solve_body ~probes:[ "out" ] "X1 bogus element line\n"
  | 5 -> "{\"netlist\":\"R1 a 0 1k\",\"analysis\":{\"t_end\":-1,\"steps\":8}}"
  | 6 -> "{\"netlist\":\"R1 a 0 1k\",\"analysis\":{\"t_end\":1,\"steps\":0}}"
  | 7 ->
      "{\"netlist\":\"R1 a 0 1k\",\"analysis\":{\"t_end\":1,\"steps\":8,\"surprise\":true}}"
  | 8 ->
      "{\"netlist\":\"R1 a 0 1k\",\"analysis\":{\"t_end\":1,\"steps\":8},\"extra\":{}}"
  | _ ->
      String.init
        (1 + Random.State.int st 64)
        (fun _ -> Char.chr (32 + Random.State.int st 95))

let test_fuzz_malformed_bodies () =
  with_server (fun s ->
      let port = Server.port s in
      fuzz_prop ~n:60
        (fun st ->
          let body = random_bad_body st in
          let resp = request ~port ~meth:"POST" ~path:"/solve" body in
          if resp.status = 200 then
            (* a mutation may accidentally stay a valid request — then
               it must be a *correct* 200, which the differential tests
               cover; here we only require it to parse as the success
               schema *)
            (match Json.member "plant" (Json.of_string resp.body) with
            | Some _ -> ()
            | None -> Alcotest.failf "200 without success schema: %s" resp.body)
          else begin
            if resp.status >= 500 then
              Alcotest.failf "malformed body answered %d (%s)" resp.status
                resp.body;
            check_structured_error resp
          end)
        ();
      (* the daemon must still be fully alive after the barrage *)
      let netlist = rc_netlist 1.0 in
      let resp =
        request ~port ~meth:"POST" ~path:"/solve"
          (solve_body ~probes:[ "out" ] netlist)
      in
      check_differential ~probes:[ "out" ] ~t_end:0.005 ~steps:48 netlist resp)

(* raw non-HTTP bytes and framing violations on the socket *)
let random_raw_bytes st =
  match Random.State.int st 6 with
  | 0 ->
      String.init
        (1 + Random.State.int st 128)
        (fun _ -> Char.chr (Random.State.int st 256))
  | 1 -> "GET\r\n\r\n"
  | 2 -> "POST /solve HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
  | 3 -> "POST /solve HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
  | 4 -> "POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
  | _ -> "no colon header\r\nstill no colon\r\n\r\n"

let test_fuzz_raw_framing () =
  with_server (fun s ->
      let port = Server.port s in
      fuzz_prop ~n:40
        (fun st ->
          let raw = random_raw_bytes st in
          let reply = raw_exchange ~port raw in
          (* any reply must be an HTTP error response with a one-line
             structured JSON body; no reply (server just closed) is
             also acceptable — but never a 200 and never a hang (the
             client timeout turns a hang into a failure) *)
          if reply <> "" then begin
            if String.length reply < 12 || String.sub reply 0 5 <> "HTTP/" then
              Alcotest.failf "non-HTTP reply to raw bytes: %S" reply;
            let status =
              match String.split_on_char ' ' reply with
              | _ :: code :: _ -> ( try int_of_string code with _ -> -1)
              | _ -> -1
            in
            if status < 400 then
              Alcotest.failf "raw garbage answered status %d" status
          end)
        ();
      let h = request ~port ~meth:"GET" ~path:"/health" "" in
      Alcotest.(check int) "alive after framing fuzz" 200 h.status)

let test_oversized_body_413 () =
  let config =
    { Server.default_config with port = 0; max_body = 4096 }
  in
  with_server ~config (fun s ->
      let port = Server.port s in
      let big = String.make 8192 'x' in
      let resp = request ~port ~meth:"POST" ~path:"/solve" big in
      Alcotest.(check int) "413 on oversized body" 413 resp.status;
      check_structured_error resp)

let test_steps_cap_400 () =
  let config = { Server.default_config with port = 0; max_steps = 128 } in
  with_server ~config (fun s ->
      let port = Server.port s in
      let resp =
        request ~port ~meth:"POST" ~path:"/solve"
          (solve_body ~steps:4096 ~probes:[ "out" ] (rc_netlist 1.0))
      in
      Alcotest.(check int) "400 beyond max-steps" 400 resp.status;
      check_structured_error resp)

let test_singular_pencil_422 () =
  with_server (fun s ->
      let port = Server.port s in
      (* two ideal voltage sources in parallel: structurally singular *)
      let netlist = "V1 a 0 step(1)\nV2 a 0 step(2)\nR1 a 0 1k\n" in
      let resp =
        request ~port ~meth:"POST" ~path:"/solve" (solve_body netlist)
      in
      Alcotest.(check int) "422 on singular pencil" 422 resp.status;
      check_structured_error resp)

let test_deadline_503 () =
  with_server (fun s ->
      let port = Server.port s in
      (* a deadline so small the first budget check trips it *)
      let body =
        Printf.sprintf
          "{\"netlist\":%s,\"analysis\":{\"t_end\":0.005,\"steps\":2048,\"window\":64,\"deadline_s\":1e-9}}"
          (Json.to_string (Json.String (rc_netlist 1.0)))
      in
      let resp = request ~port ~meth:"POST" ~path:"/solve" body in
      Alcotest.(check int) "503 on deadline" 503 resp.status;
      let status, code, _ = error_of_body resp.body in
      Alcotest.(check int) "body status" 503 status;
      Alcotest.(check string) "code" "deadline" code)

(* ---------- fault matrix: accept and request-dispatch sites ----------

   Under any injected fault the client sees a structured error or a
   correct answer, never a wrong one. Latency injections must still
   produce the correct answer; other kinds produce a structured 503 at
   the injected request and correct answers afterwards. *)

let test_server_fault_matrix () =
  let netlist = rc_netlist 1.0 in
  let body = solve_body ~probes:[ "out" ] netlist in
  List.iter
    (fun site ->
      List.iter
        (fun kind ->
          Fault.arm { Fault.seed = 20260808; site; kind; nth = 1 };
          Fun.protect ~finally:Fault.disarm (fun () ->
              with_server (fun s ->
                  let port = Server.port s in
                  let label =
                    Printf.sprintf "%s/%s" (Fault.site_to_string site)
                      (Fault.kind_to_string kind)
                  in
                  (* first exchange eats the injection (nth = 1) *)
                  (try
                     let resp =
                       request ~port ~meth:"POST" ~path:"/solve" body
                     in
                     if resp.status = 200 then
                       check_differential ~probes:[ "out" ] ~t_end:0.005
                         ~steps:48 netlist resp
                     else begin
                       check_structured_error resp;
                       let _, code, _ = error_of_body resp.body in
                       Alcotest.(check string)
                         (label ^ " error code") "fault-injected" code
                     end
                   with Failure msg ->
                     (* an accept-site denial may close the socket
                        before the client reads a full response — a
                        dropped connection is a visible failure, not a
                        wrong answer; but a *timeout* is a hang *)
                     if msg = "client receive timeout (server hang?)" then
                       Alcotest.failf "%s: server hung" label);
                  (* after the one-shot plan fired, service is correct *)
                  let resp2 = request ~port ~meth:"POST" ~path:"/solve" body in
                  check_differential ~probes:[ "out" ] ~t_end:0.005 ~steps:48
                    netlist resp2;
                  Alcotest.(check bool)
                    (label ^ " injected exactly once") true
                    (Fault.injected_total () <= 1))))
        Fault.all_kinds)
    [ Fault.Accept; Fault.Request_dispatch ]

(* ---------- per-model factor statistics (regression) ----------

   Before this PR the only factor-reuse statistic was the
   process-global [compiled.factor_reuse] metrics counter, useless for
   per-plant reporting: two live models must account their own hits
   and misses independently. *)

let test_per_model_factor_stats () =
  let grid = Grid.uniform ~t_end:0.005 ~m:32 in
  let stamp text =
    let sys, sources = Mna.stamp (Parser.parse_string text) in
    (Compiled_model.compile ~grid sys, sources)
  in
  let m1, src1 = stamp "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let m2, src2 = stamp "V1 in 0 step(1)\nR1 in a 20\nL1 a out 10m\nC1 out 0 10u\n" in
  for _ = 1 to 3 do
    ignore (Compiled_model.solve m1 src1)
  done;
  ignore (Compiled_model.solve m2 src2);
  Alcotest.(check int) "m1 factorised once" 1 (Compiled_model.factorisations m1);
  Alcotest.(check int) "m2 factorised once" 1 (Compiled_model.factorisations m2);
  Alcotest.(check int) "m1 reuse counts its own queries" 3
    (Compiled_model.factor_reuse m1);
  Alcotest.(check int) "m2 reuse independent of m1" 1
    (Compiled_model.factor_reuse m2)

(* ---------- model cache unit behaviour ---------- *)

let dummy_model () =
  let sys, _ = Mna.stamp (Parser.parse_string "R1 a 0 1k\nC1 a 0 1u\nI1 0 a step(1)\n") in
  Compiled_model.compile ~grid:(Grid.uniform ~t_end:1.0 ~m:8) sys

let test_cache_eviction_bound () =
  let c = Model_cache.create ~capacity:2 () in
  for i = 1 to 5 do
    Model_cache.with_model c
      ~key:(string_of_int i)
      ~compile:dummy_model
      (fun ~cached:_ _ -> ())
  done;
  Alcotest.(check int) "bounded at capacity" 2 (Model_cache.length c);
  Alcotest.(check int) "evictions counted" 3 (Model_cache.evictions c);
  (* LRU: key 5 and 4 resident, 5 hits *)
  Model_cache.with_model c ~key:"5" ~compile:dummy_model (fun ~cached _ ->
      Alcotest.(check bool) "most recent key resident" true cached)

let test_cache_compile_failure_retries () =
  let c = Model_cache.create ~capacity:4 () in
  let attempts = ref 0 in
  (try
     Model_cache.with_model c ~key:"k"
       ~compile:(fun () ->
         incr attempts;
         failwith "boom")
       (fun ~cached:_ _ -> ())
   with Failure _ -> ());
  Alcotest.(check int) "failed placeholder evicted" 0 (Model_cache.length c);
  Model_cache.with_model c ~key:"k"
    ~compile:(fun () ->
      incr attempts;
      dummy_model ())
    (fun ~cached _ ->
      Alcotest.(check bool) "retry recompiles" false cached);
  Alcotest.(check int) "compile ran twice" 2 !attempts

let test_fingerprint_source_invariance () =
  let fp text =
    let sys, _ = Mna.stamp (Parser.parse_string text) in
    Protocol.fingerprint ~sys ~t_end:1e-3 ~steps:64 ~window:None
      ~memory_len:None ~basis:`Bpf
  in
  let a = fp "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let b = fp "* a comment\nV1 in 0 step(7)\nR1 in out 1k\nC1 out 0 1u\n.end" in
  let c = fp "V1 in 0 step(1)\nR1 in out 2k\nC1 out 0 1u\n" in
  Alcotest.(check string) "source-only change shares the plant" a b;
  Alcotest.(check bool) "element change is a new plant" true (a <> c);
  let sys, _ =
    Mna.stamp (Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n")
  in
  let w =
    Protocol.fingerprint ~sys ~t_end:1e-3 ~steps:64 ~window:(Some 16)
      ~memory_len:None ~basis:`Bpf
  in
  Alcotest.(check bool) "window config is part of the key" true (a <> w);
  let sp =
    Protocol.fingerprint ~sys ~t_end:1e-3 ~steps:64 ~window:None
      ~memory_len:None ~basis:`Spectral
  in
  Alcotest.(check bool) "basis is part of the key" true (a <> sp)

let () =
  Alcotest.run "serve"
    [
      ( "endpoints",
        [
          Alcotest.test_case "health and routing" `Quick
            test_health_and_routing;
          Alcotest.test_case "solve differential (dense RC)" `Quick
            test_solve_differential_single;
          Alcotest.test_case "solve differential (windowed RLC)" `Quick
            test_solve_windowed_differential;
          Alcotest.test_case "solve differential (fractional CPE)" `Quick
            test_solve_fractional_differential;
        ] );
      ( "serving contract",
        [
          Alcotest.test_case "concurrent sweep, one factorisation per plant"
            `Quick test_concurrent_sweep_factor_once;
        ] );
      ( "protocol fuzz",
        [
          Alcotest.test_case "malformed bodies are structured 4xx" `Quick
            test_fuzz_malformed_bodies;
          Alcotest.test_case "raw framing garbage" `Quick test_fuzz_raw_framing;
          Alcotest.test_case "oversized body is 413" `Quick
            test_oversized_body_413;
          Alcotest.test_case "steps cap is 400" `Quick test_steps_cap_400;
          Alcotest.test_case "singular pencil is 422" `Quick
            test_singular_pencil_422;
          Alcotest.test_case "deadline breach is 503" `Quick test_deadline_503;
        ] );
      ( "fault matrix",
        [
          Alcotest.test_case "accept/request-dispatch sites" `Quick
            test_server_fault_matrix;
        ] );
      ( "factor stats",
        [
          Alcotest.test_case "per-model counters are independent" `Quick
            test_per_model_factor_stats;
        ] );
      ( "model cache",
        [
          Alcotest.test_case "LRU eviction bound" `Quick
            test_cache_eviction_bound;
          Alcotest.test_case "compile failure retries" `Quick
            test_cache_compile_failure_retries;
          Alcotest.test_case "fingerprint keying" `Quick
            test_fingerprint_source_invariance;
        ] );
    ]
