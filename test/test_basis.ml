(* Tests for the basis layer: grids and operational matrices — the
   mathematical heart of the paper. *)

open Opm_numkit
open Opm_basis

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Grid ---------- *)

let test_grid_uniform () =
  let g = Grid.uniform ~t_end:2.0 ~m:4 in
  check_int "size" 4 (Grid.size g);
  close "t_end" 2.0 (Grid.t_end g);
  let s = Grid.steps g in
  close "step" 0.5 s.(0);
  let b = Grid.boundaries g in
  close "b0" 0.0 b.(0);
  close "b4" 2.0 b.(4);
  let m = Grid.midpoints g in
  close "mid0" 0.25 m.(0);
  close "mid3" 1.75 m.(3)

let test_grid_adaptive () =
  let g = Grid.adaptive [| 0.1; 0.2; 0.7 |] in
  check_int "size" 3 (Grid.size g);
  close "t_end" 1.0 (Grid.t_end g);
  close "mid1" 0.2 (Grid.midpoints g).(1);
  check_bool "not uniform" false (Grid.is_uniform ~tol:1e-9 g);
  check_bool "distinct" true (Grid.has_distinct_steps g)

let test_grid_validation () =
  check_bool "m = 0 rejected" true
    (try
       ignore (Grid.uniform ~t_end:1.0 ~m:0);
       false
     with Invalid_argument _ -> true);
  check_bool "negative step rejected" true
    (try
       ignore (Grid.adaptive [| 0.1; -0.2 |]);
       false
     with Invalid_argument _ -> true)

let test_grid_geometric () =
  let g = Grid.geometric ~t_end:1.0 ~m:5 ~ratio:1.5 in
  close "sums to t_end" 1.0 (Grid.t_end g) ~tol:1e-12;
  let s = Grid.steps g in
  close "ratio" 1.5 (s.(1) /. s.(0)) ~tol:1e-12;
  check_bool "distinct" true (Grid.has_distinct_steps g)

let test_grid_duplicate_detection () =
  check_bool "duplicates detected" false
    (Grid.has_distinct_steps (Grid.adaptive [| 0.1; 0.2; 0.1 |]));
  check_bool "uniform m>1 not distinct" false
    (Grid.has_distinct_steps (Grid.uniform ~t_end:1.0 ~m:3))

(* ---------- Block-pulse projection/reconstruction ---------- *)

let test_bpf_project_constant () =
  let g = Grid.uniform ~t_end:1.0 ~m:8 in
  let c = Block_pulse.project g (fun _ -> 3.0) in
  Array.iter (fun v -> close "constant coeff" 3.0 v ~tol:1e-12) c

let test_bpf_project_linear_exact_average () =
  let g = Grid.uniform ~t_end:1.0 ~m:4 in
  let c = Block_pulse.project g (fun t -> t) in
  (* interval averages of t: (i + 1/2)·h *)
  close "c0" 0.125 c.(0) ~tol:1e-10;
  close "c3" 0.875 c.(3) ~tol:1e-10

let test_bpf_reconstruct () =
  let g = Grid.uniform ~t_end:1.0 ~m:4 in
  let c = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "in interval 0" 1.0 (Block_pulse.reconstruct g c 0.1);
  close "in interval 2" 3.0 (Block_pulse.reconstruct g c 0.6);
  close "boundary belongs right" 2.0 (Block_pulse.reconstruct g c 0.25);
  close "outside" 0.0 (Block_pulse.reconstruct g c 1.5)

(* regression: t = t_end used to fall through the [t >= b.(m)] rejection
   and silently evaluate to 0 *)
let test_bpf_reconstruct_right_endpoint () =
  let g = Grid.uniform ~t_end:1.0 ~m:4 in
  let c = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "exact right endpoint clamps to last interval" 4.0
    (Block_pulse.reconstruct g c 1.0);
  close "just past the end is still outside" 0.0
    (Block_pulse.reconstruct g c (1.0 +. 1e-9));
  let ga = Grid.adaptive [| 0.3; 0.1; 0.6 |] in
  close "adaptive right endpoint" 7.0
    (Block_pulse.reconstruct ga [| 5.0; 6.0; 7.0 |] (Grid.t_end ga));
  (* a single-interval grid: both endpoints map to the only coefficient *)
  let g1 = Grid.uniform ~t_end:2.0 ~m:1 in
  close "m = 1 left" 9.0 (Block_pulse.reconstruct g1 [| 9.0 |] 0.0);
  close "m = 1 right" 9.0 (Block_pulse.reconstruct g1 [| 9.0 |] 2.0)

let test_bpf_project_source_matches_fn () =
  let g = Grid.adaptive [| 0.3; 0.1; 0.6 |] in
  let src = Opm_signal.Source.Sine { amplitude = 1.0; freq_hz = 0.7; phase = 0.1; offset = 0.2 } in
  let exact = Block_pulse.project_source g src in
  let numeric = Block_pulse.project g (Opm_signal.Source.eval src) in
  check_bool "closed form = quadrature" true (Vec.approx_equal ~tol:1e-7 exact numeric)

(* ---------- Operational matrices ---------- *)

let test_integral_matrix_paper_form () =
  (* eq. (4): H has h/2 on the diagonal, h above *)
  let g = Grid.uniform ~t_end:1.0 ~m:4 in
  let h = Block_pulse.integral_matrix g in
  close "diag" 0.125 (Mat.get h 0 0);
  close "upper" 0.25 (Mat.get h 0 2);
  close "lower zero" 0.0 (Mat.get h 2 0)

let test_differential_matrix_paper_form () =
  (* §III-A: D = (2/h)·[1, −2, 2, −2…] on the first row *)
  let g = Grid.uniform ~t_end:1.0 ~m:4 in
  let d = Block_pulse.differential_matrix g in
  let two_over_h = 8.0 in
  close "d00" two_over_h (Mat.get d 0 0);
  close "d01" (-2.0 *. two_over_h) (Mat.get d 0 1);
  close "d02" (2.0 *. two_over_h) (Mat.get d 0 2);
  close "d03" (-2.0 *. two_over_h) (Mat.get d 0 3)

let hd_identity name g =
  let h = Block_pulse.integral_matrix g in
  let d = Block_pulse.differential_matrix g in
  let m = Grid.size g in
  close (name ^ ": HD = I") 0.0 (Mat.max_abs_diff (Mat.mul h d) (Mat.eye m)) ~tol:1e-10;
  close (name ^ ": DH = I") 0.0 (Mat.max_abs_diff (Mat.mul d h) (Mat.eye m)) ~tol:1e-10

let test_hd_inverse_uniform () = hd_identity "uniform" (Grid.uniform ~t_end:2.7 ~m:9)

let test_hd_inverse_adaptive () =
  hd_identity "adaptive" (Grid.adaptive [| 0.2; 0.5; 0.1; 0.4; 0.3 |])

let test_integration_of_constant () =
  (* coefficients of ∫1 = t are Hᵀ·1 (integration acts as c ↦ Hᵀc) *)
  let g = Grid.uniform ~t_end:1.0 ~m:8 in
  let h = Block_pulse.integral_matrix g in
  let ones = Array.make 8 1.0 in
  let integrated = Mat.tmul_vec h ones in
  let mids = Grid.midpoints g in
  Array.iteri
    (fun i t -> close (Printf.sprintf "∫1 at %g" t) t integrated.(i) ~tol:1e-10)
    mids

let test_derivative_of_linear () =
  let g = Grid.uniform ~t_end:1.0 ~m:64 in
  let c = Block_pulse.project g (fun t -> t) in
  let d = Block_pulse.differential_matrix g in
  let dc = Mat.tmul_vec d c in
  (* away from the t = 0 boundary transient, d/dt t = 1 *)
  for i = 4 to 60 do
    close (Printf.sprintf "dc[%d]" i) 1.0 dc.(i) ~tol:1e-6
  done

(* ---------- Fractional operational matrices ---------- *)

let test_fractional_paper_example () =
  (* the paper's eq. (24): D^{3/2} for m = 4 *)
  let g = Grid.uniform ~t_end:4.0 ~m:4 (* h = 1 so (2/h)^{3/2} = 2^{3/2} *) in
  let d32 = Block_pulse.fractional_differential_matrix g 1.5 in
  let scale = 2.0 ** 1.5 in
  close "entry 00" scale (Mat.get d32 0 0) ~tol:1e-12;
  close "entry 01" (-3.0 *. scale) (Mat.get d32 0 1) ~tol:1e-12;
  close "entry 02" (4.5 *. scale) (Mat.get d32 0 2) ~tol:1e-12;
  close "entry 03" (-5.5 *. scale) (Mat.get d32 0 3) ~tol:1e-12;
  (* and the property stated under eq. (24): (D^{3/2})² = D³ *)
  let d = Block_pulse.differential_matrix g in
  close "(D^1.5)² = D³" 0.0
    (Mat.max_abs_diff (Mat.mul d32 d32) (Mat.pow d 3))
    ~tol:1e-9

let test_fractional_alpha_one_is_d () =
  let g = Grid.uniform ~t_end:1.0 ~m:6 in
  close "D^1 = D" 0.0
    (Mat.max_abs_diff
       (Block_pulse.fractional_differential_matrix g 1.0)
       (Block_pulse.differential_matrix g))
    ~tol:1e-9

let test_fractional_alpha_zero_is_identity () =
  let g = Grid.uniform ~t_end:1.0 ~m:5 in
  close "D^0 = I" 0.0
    (Mat.max_abs_diff (Block_pulse.fractional_differential_matrix g 0.0) (Mat.eye 5))

let test_fractional_half_squares_to_d () =
  List.iter
    (fun g ->
      let d12 = Block_pulse.fractional_differential_matrix g 0.5 in
      let d = Block_pulse.differential_matrix g in
      let scale = Mat.norm_inf d in
      check_bool "sqrt property" true
        (Mat.max_abs_diff (Mat.mul d12 d12) d < 1e-9 *. scale))
    [
      Grid.uniform ~t_end:1.0 ~m:8;
      Grid.geometric ~t_end:1.0 ~m:8 ~ratio:1.4;
      Grid.adaptive [| 0.5; 0.25; 0.125; 0.0625 |];
    ]

let prop_fractional_semigroup_uniform =
  QCheck.Test.make ~count:30 ~name:"uniform D^a · D^b = D^{a+b}"
    QCheck.(triple (int_range 2 16) (float_range 0.2 1.5) (float_range 0.2 1.5))
    (fun (m, a, b) ->
      let g = Grid.uniform ~t_end:1.0 ~m in
      let da = Block_pulse.fractional_differential_matrix g a in
      let db = Block_pulse.fractional_differential_matrix g b in
      let dab = Block_pulse.fractional_differential_matrix g (a +. b) in
      Mat.max_abs_diff (Mat.mul da db) dab
      < 1e-8 *. Float.max 1.0 (Mat.norm_inf dab))

let test_fractional_adaptive_confluent_raises () =
  (* two equal steps inside an otherwise adaptive grid: eq. (25)'s
     method needs distinct steps *)
  let g = Grid.adaptive [| 0.1; 0.3; 0.1; 0.5 |] in
  check_bool "raises Confluent_diagonal" true
    (try
       ignore (Block_pulse.fractional_differential_matrix g 0.5);
       false
     with Opm_numkit.Tri.Confluent_diagonal _ -> true)

let test_fractional_adaptive_uniform_dispatch () =
  (* an Adaptive grid with equal steps must match the Uniform result
     (series path), not raise *)
  let gu = Grid.uniform ~t_end:1.0 ~m:6 in
  let ga = Grid.adaptive (Array.make 6 (1.0 /. 6.0)) in
  close "same matrix" 0.0
    (Mat.max_abs_diff
       (Block_pulse.fractional_differential_matrix ga 0.5)
       (Block_pulse.fractional_differential_matrix gu 0.5))
    ~tol:1e-9

let test_fractional_integral_inverse () =
  let g = Grid.uniform ~t_end:2.0 ~m:10 in
  let d = Block_pulse.fractional_differential_matrix g 0.7 in
  let h = Block_pulse.fractional_integral_matrix g 0.7 in
  close "H^α D^α = I" 0.0 (Mat.max_abs_diff (Mat.mul h d) (Mat.eye 10)) ~tol:1e-8

let test_fractional_halfderivative_of_t () =
  (* d^{1/2}/dt^{1/2} t = 2√(t/π) *)
  let g = Grid.uniform ~t_end:1.0 ~m:256 in
  let c = Block_pulse.project g (fun t -> t) in
  let d12 = Block_pulse.fractional_differential_matrix g 0.5 in
  let dc = Mat.tmul_vec d12 c in
  let mids = Grid.midpoints g in
  for i = 10 to 250 do
    let exact = 2.0 *. sqrt (mids.(i) /. Float.pi) in
    check_bool "pointwise" true (Float.abs (dc.(i) -. exact) < 2e-3)
  done

let test_fractional_integral_of_one () =
  (* I^{1/2} 1 = 2√(t/π) as well (Riemann–Liouville) *)
  let g = Grid.uniform ~t_end:1.0 ~m:256 in
  let h12 = Block_pulse.fractional_integral_matrix g 0.5 in
  let ones = Array.make 256 1.0 in
  let ic = Mat.tmul_vec h12 ones in
  let mids = Grid.midpoints g in
  for i = 10 to 250 do
    let exact = 2.0 *. sqrt (mids.(i) /. Float.pi) in
    check_bool "pointwise" true (Float.abs (ic.(i) -. exact) < 2e-3)
  done

let test_adaptive_matrix_closed_form () =
  (* spot-check the closed-form D̃ against direct inversion of H̃ *)
  let g = Grid.adaptive [| 0.15; 0.35; 0.05; 0.45 |] in
  let d = Block_pulse.differential_matrix g in
  let h = Block_pulse.integral_matrix g in
  let d_ref = Opm_numkit.Tri.invert_upper h in
  close "closed form = H⁻¹" 0.0 (Mat.max_abs_diff d d_ref) ~tol:1e-9

(* ---------- Walsh ---------- *)

let test_walsh_hadamard_orthogonal () =
  let h = Walsh.hadamard 8 in
  close "H·Hᵀ = 8I" 0.0
    (Mat.max_abs_diff (Mat.mul h (Mat.transpose h)) (Mat.scale 8.0 (Mat.eye 8)))

let test_walsh_sequency_order () =
  let w = Walsh.walsh_matrix 8 in
  (* sequency (sign-change count) must be nondecreasing down the rows *)
  let rec check i =
    if i >= 7 then ()
    else begin
      check_bool "ordered" true
        (Walsh.sequency_of_row w i <= Walsh.sequency_of_row w (i + 1));
      check (i + 1)
    end
  in
  check 0;
  Alcotest.(check int) "row 0 constant" 0 (Walsh.sequency_of_row w 0);
  Alcotest.(check int) "last row alternates" 7 (Walsh.sequency_of_row w 7)

let test_walsh_fwht_matches_matrix () =
  let st = Random.State.make [| 5 |] in
  let x = Array.init 16 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let h = Walsh.hadamard 16 in
  check_bool "fwht = H·x" true
    (Vec.approx_equal ~tol:1e-10 (Mat.mul_vec h x) (Walsh.fwht x))

let test_walsh_roundtrip () =
  let st = Random.State.make [| 6 |] in
  let x = Array.init 32 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  check_bool "to ∘ from = id" true
    (Vec.approx_equal ~tol:1e-10 x (Walsh.walsh_to_bpf (Walsh.bpf_to_walsh x)))

let test_walsh_operational_consistency () =
  let g = Grid.uniform ~t_end:1.0 ~m:8 in
  let hw = Walsh.integral_matrix g in
  let dw = Walsh.differential_matrix g in
  close "H_W · D_W = I" 0.0 (Mat.max_abs_diff (Mat.mul hw dw) (Mat.eye 8)) ~tol:1e-9;
  (* similarity preserves the fractional square property *)
  let d12 = Walsh.fractional_differential_matrix g 0.5 in
  close "(D_W^{1/2})² = D_W" 0.0 (Mat.max_abs_diff (Mat.mul d12 d12) dw) ~tol:1e-6

let test_walsh_requires_pow2 () =
  check_bool "m = 6 rejected" true
    (try
       ignore (Walsh.walsh_matrix 6);
       false
     with Invalid_argument _ -> true)

let test_walsh_truncate () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let t = Walsh.truncate_spectrum ~keep:2 x in
  close "kept" 2.0 t.(1);
  close "zeroed" 0.0 t.(2)

(* ---------- Haar ---------- *)

let test_haar_rows_orthogonal () =
  let m = 16 in
  let t = Haar.haar_matrix m in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      close
        (Printf.sprintf "⟨row %d, row %d⟩" i j)
        0.0
        (Vec.dot (Mat.row t i) (Mat.row t j))
        ~tol:1e-12
    done
  done

let test_haar_roundtrip () =
  let st = Random.State.make [| 8 |] in
  let x = Array.init 32 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  check_bool "inverse ∘ forward = id" true
    (Vec.approx_equal ~tol:1e-10 x (Haar.inverse_transform (Haar.transform x)))

let test_haar_operational_consistency () =
  let g = Grid.uniform ~t_end:2.0 ~m:16 in
  let hh = Haar.integral_matrix g in
  let dh = Haar.differential_matrix g in
  close "H_H · D_H = I" 0.0 (Mat.max_abs_diff (Mat.mul hh dh) (Mat.eye 16)) ~tol:1e-8

let test_haar_constant_coefficient () =
  (* a constant signal has only the scaling coefficient *)
  let x = Array.make 8 2.5 in
  let c = Haar.transform x in
  close "scaling coeff" 2.5 c.(0) ~tol:1e-12;
  for i = 1 to 7 do
    close (Printf.sprintf "wavelet %d" i) 0.0 c.(i) ~tol:1e-12
  done

(* ---------- Legendre ---------- *)

let test_legendre_integral_row0 () =
  (* ∫₀ᵗ SL₀ = t = (SL₀ + SL₁)/2 on [0,1] *)
  let p = Legendre.integral_matrix ~t_end:1.0 ~m:4 in
  close "P00" 0.5 (Mat.get p 0 0) ~tol:1e-10;
  close "P01" 0.5 (Mat.get p 0 1) ~tol:1e-10;
  close "P02" 0.0 (Mat.get p 0 2) ~tol:1e-10

let test_legendre_project_reconstruct_poly () =
  (* degree-3 polynomial is represented exactly with m >= 4 *)
  let f t = 1.0 +. (2.0 *. t) -. (3.0 *. t *. t) +. (t *. t *. t) in
  let c = Legendre.project ~t_end:1.0 ~m:5 f in
  List.iter
    (fun t ->
      close (Printf.sprintf "at %g" t) (f t)
        (Legendre.reconstruct ~t_end:1.0 ~m:5 c t)
        ~tol:1e-5)
    [ 0.1; 0.4; 0.9 ]

let test_legendre_integration_action () =
  (* coefficient-space integration of SL₁ matches calculus on [0,1]:
     ∫₀ᵗ (2τ−1) dτ = t² − t *)
  let m = 5 in
  let p = Legendre.integral_matrix ~t_end:1.0 ~m in
  let c1 = Array.init m (fun i -> if i = 1 then 1.0 else 0.0) in
  (* row-vector convention: coefficients of ∫ are cᵀP, i.e. Pᵀ·c *)
  let ci = Mat.tmul_vec p c1 in
  List.iter
    (fun t ->
      close
        (Printf.sprintf "∫SL₁ at %g" t)
        ((t *. t) -. t)
        (Legendre.reconstruct ~t_end:1.0 ~m ci t)
        ~tol:1e-9)
    [ 0.2; 0.5; 0.8 ]

(* ---------- Laguerre ---------- *)

let test_laguerre_polynomials () =
  (* L₂(t) = (t² − 4t + 2)/2 *)
  let l2 = Laguerre.polynomial 2 in
  close "L2(0)" 1.0 (Poly.eval l2 0.0) ~tol:1e-12;
  close "L2(1)" (-0.5) (Poly.eval l2 1.0) ~tol:1e-12;
  close "L2(4)" 1.0 (Poly.eval l2 4.0) ~tol:1e-12

let test_laguerre_orthonormal () =
  (* numeric ⟨φ_i, φ_j⟩ on a long truncated axis *)
  let scale = 1.3 in
  let dot i j =
    let g t = Laguerre.eval ~scale i t *. Laguerre.eval ~scale j t in
    let panels = 4000 and t_max = 30.0 in
    let h = t_max /. float_of_int panels in
    let s = ref (g 0.0 +. g t_max) in
    for k = 1 to panels - 1 do
      let w = if k land 1 = 1 then 4.0 else 2.0 in
      s := !s +. (w *. g (float_of_int k *. h))
    done;
    !s *. h /. 3.0
  in
  close "⟨φ2,φ2⟩" 1.0 (dot 2 2) ~tol:1e-6;
  close "⟨φ0,φ3⟩" 0.0 (dot 0 3) ~tol:1e-6

let test_laguerre_project_reconstruct () =
  let scale = 1.0 in
  let f t = exp (-.t) *. (1.0 +. t) in
  let c = Laguerre.project ~scale ~m:12 f in
  List.iter
    (fun t ->
      close (Printf.sprintf "at %g" t) (f t)
        (Laguerre.reconstruct ~scale ~m:12 c t)
        ~tol:1e-6)
    [ 0.2; 1.0; 3.0; 6.0 ]

let test_laguerre_differential_exact () =
  let scale = 0.8 in
  let d = Laguerre.differential_matrix ~scale ~m:6 in
  check_bool "lower triangular" true
    (Mat.is_upper_triangular ~tol:1e-14 (Mat.transpose d));
  (* matrix action vs finite difference for φ₄ *)
  let row = Mat.row d 4 in
  List.iter
    (fun t ->
      let matrix_val =
        Array.to_list row
        |> List.mapi (fun j c -> c *. Laguerre.eval ~scale j t)
        |> List.fold_left ( +. ) 0.0
      in
      let fd =
        (Laguerre.eval ~scale 4 (t +. 1e-6) -. Laguerre.eval ~scale 4 (t -. 1e-6))
        /. 2e-6
      in
      close (Printf.sprintf "dφ₄ at %g" t) fd matrix_val ~tol:1e-5)
    [ 0.5; 2.0 ]

let test_laguerre_integral_decaying_case () =
  (* ∫(φ₀ + φ₁) has zero constant tail: the matrix row is exact *)
  let scale = 1.0 in
  let p = Laguerre.integral_matrix ~scale ~m:8 in
  let coeffs = Array.init 8 (fun i -> if i <= 1 then 1.0 else 0.0) in
  let ic = Mat.tmul_vec p coeffs in
  List.iter
    (fun t ->
      let exact = sqrt 2.0 *. 2.0 *. t *. exp (-.t) in
      let matrix_val =
        Array.to_list ic
        |> List.mapi (fun j c -> c *. Laguerre.eval ~scale j t)
        |> List.fold_left ( +. ) 0.0
      in
      close (Printf.sprintf "∫ at %g" t) exact matrix_val ~tol:1e-9)
    [ 0.4; 1.0; 2.5 ]

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "basis"
    [
      ( "grid",
        [
          t "uniform" test_grid_uniform;
          t "adaptive" test_grid_adaptive;
          t "validation" test_grid_validation;
          t "geometric" test_grid_geometric;
          t "duplicate detection" test_grid_duplicate_detection;
        ] );
      ( "block-pulse",
        [
          t "project constant" test_bpf_project_constant;
          t "project linear" test_bpf_project_linear_exact_average;
          t "reconstruct" test_bpf_reconstruct;
          t "reconstruct right endpoint" test_bpf_reconstruct_right_endpoint;
          t "project source = quadrature" test_bpf_project_source_matches_fn;
        ] );
      ( "operational",
        [
          t "H paper form" test_integral_matrix_paper_form;
          t "D paper form" test_differential_matrix_paper_form;
          t "HD = I uniform" test_hd_inverse_uniform;
          t "HD = I adaptive" test_hd_inverse_adaptive;
          t "∫ constant" test_integration_of_constant;
          t "d/dt linear" test_derivative_of_linear;
          t "adaptive closed form" test_adaptive_matrix_closed_form;
        ] );
      ( "fractional",
        [
          t "paper eq. (24)" test_fractional_paper_example;
          t "α = 1 reduces to D" test_fractional_alpha_one_is_d;
          t "α = 0 is identity" test_fractional_alpha_zero_is_identity;
          t "(D^½)² = D on three grids" test_fractional_half_squares_to_d;
          t "confluent adaptive raises" test_fractional_adaptive_confluent_raises;
          t "equal-step adaptive dispatch" test_fractional_adaptive_uniform_dispatch;
          t "fractional integral inverse" test_fractional_integral_inverse;
          t "d^½ t = 2√(t/π)" test_fractional_halfderivative_of_t;
          t "I^½ 1 = 2√(t/π)" test_fractional_integral_of_one;
          q prop_fractional_semigroup_uniform;
        ] );
      ( "walsh",
        [
          t "hadamard orthogonal" test_walsh_hadamard_orthogonal;
          t "sequency ordering" test_walsh_sequency_order;
          t "fwht = matrix" test_walsh_fwht_matches_matrix;
          t "roundtrip" test_walsh_roundtrip;
          t "operational consistency" test_walsh_operational_consistency;
          t "pow2 required" test_walsh_requires_pow2;
          t "spectrum truncation" test_walsh_truncate;
        ] );
      ( "haar",
        [
          t "rows orthogonal" test_haar_rows_orthogonal;
          t "roundtrip" test_haar_roundtrip;
          t "operational consistency" test_haar_operational_consistency;
          t "constant signal" test_haar_constant_coefficient;
        ] );
      ( "legendre",
        [
          t "integral row 0" test_legendre_integral_row0;
          t "project/reconstruct polynomial" test_legendre_project_reconstruct_poly;
          t "integration action" test_legendre_integration_action;
        ] );
      ( "laguerre",
        [
          t "polynomial values" test_laguerre_polynomials;
          t "orthonormality" test_laguerre_orthonormal;
          t "project/reconstruct" test_laguerre_project_reconstruct;
          t "differentiation exact" test_laguerre_differential_exact;
          t "integration (decaying case)" test_laguerre_integral_decaying_case;
        ] );
    ]
