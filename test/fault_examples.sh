#!/usr/bin/env bash
# Fault-matrix smoke over the example executables: run every example
# under every (site × kind) fault plan, first occurrence, and demand
# the resilience invariant end to end — an injected fault yields
# either a structured error (the process dies printing the registered
# Opm_error/Window.Interrupted form, or the example's own "error:"
# rendering) or a clean recovery (exit 0 with no NaN/Inf anywhere in
# the output). A backtrace from an unstructured exception, a wedged
# process, or a "successful" run emitting non-finite numbers all fail.
#
# The factor site additionally runs at the *second* occurrence: with
# the symbolic/numeric split, every factorisation after the first of a
# given structure is a numeric-only refactorisation replaying a
# recorded analysis, and a fault landing there must behave exactly
# like one at a fresh factorisation — escalate to the strict rung or
# die with a structured error, never a wrong answer.
#
# The plan reaches the solver through OPM_FAULT_PLAN, armed at
# opm_robust initialisation, so the examples need no wiring. Sites an
# example never visits simply don't fire, which leaves the run
# identical to its golden smoke run — that case is covered by the
# exit-0 branch. Seeded and replayable: OPM_PROP_SEED (default
# 20260806) is the plan seed.
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: fault_examples.sh <example.exe>..." >&2
  exit 2
fi

seed=${OPM_PROP_SEED:-20260806}
sites="factor column-solve fft-block window-handoff checkpoint-write pool-dispatch"
kinds="singular nan-poison enospc latency"

status=0
runs=0

# run one example under one plan and apply the resilience invariant
check_plan() {
  exe=$1
  plan=$2
  name=$(basename "$exe" .exe)
  out=$(OPM_FAULT_PLAN="$plan" timeout 60 "$exe" 2>&1)
  code=$?
  runs=$((runs + 1))
  if [ "$code" -eq 0 ]; then
    # clean completion: recovery (or a site this example never
    # reaches) — the delivered waveform must be finite
    if printf '%s' "$out" | grep -Eiqw 'nan|inf'; then
      echo "fault-matrix: $name [$plan] exited 0 with non-finite output:" >&2
      printf '%s\n' "$out" | grep -Eiw 'nan|inf' | head -3 >&2
      status=1
    fi
  elif [ "$code" -ge 124 ]; then
    # 124 = timeout, 128+n = killed by signal (segfault, abort)
    echo "fault-matrix: $name [$plan] died unstructured (status $code)" >&2
    status=1
  else
    # non-zero exit: only acceptable when the failure is the
    # structured kind — the registered exception printers or an
    # example's own error rendering
    if ! printf '%s' "$out" \
        | grep -Eq 'Opm_error\.Error|Window\.Interrupted|error:'; then
      echo "fault-matrix: $name [$plan] failed without a structured error (status $code):" >&2
      printf '%s\n' "$out" | tail -3 >&2
      status=1
    fi
  fi
}

for exe in "$@"; do
  for site in $sites; do
    for kind in $kinds; do
      check_plan "$exe" "$seed:$site:$kind:1"
    done
  done
  # refactor path: second hit of the factor site
  for kind in $kinds; do
    check_plan "$exe" "$seed:factor:$kind:2"
  done
done

if [ "$status" -eq 0 ]; then
  echo "fault-matrix: $runs example runs, all structured errors or clean recoveries (seed $seed)"
fi
exit $status
