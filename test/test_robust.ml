(* Tests for the solver guardrails: structured errors, the condition
   estimator, the fallback cascade, adaptive local grid refinement, and
   the health report. *)

open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_robust

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let random_system seed n =
  let st = Random.State.make [| seed |] in
  let e =
    Mat.init n n (fun r c ->
        (if r = c then 2.0 else 0.0) +. (0.1 *. Random.State.float st 1.0))
  in
  let a =
    Mat.init n n (fun r c ->
        (if r = c then -3.0 else 0.0) +. (0.2 *. Random.State.float st 1.0))
  in
  (e, a)

(* ---------- Guard combinators ---------- *)

let test_guard_finite () =
  check_bool "clean" true (Guard.is_finite [| 0.0; -1.5; 1e300 |]);
  check_bool "nan" false (Guard.is_finite [| 0.0; Float.nan |]);
  check_bool "inf" false (Guard.is_finite [| Float.infinity |]);
  let nans, infs =
    Guard.count_non_finite [| Float.nan; 1.0; Float.neg_infinity; Float.nan |]
  in
  check_int "nans" 2 nans;
  check_int "infs" 1 infs

let test_guard_attempts () =
  let calls = ref 0 in
  let r =
    Guard.attempts ~max:5 (fun i ->
        incr calls;
        if i = 2 then Some i else None)
  in
  check_bool "found on third try" true (r = Some 2);
  check_int "stopped once found" 3 !calls;
  check_bool "exhausted" true (Guard.attempts ~max:3 (fun _ -> None) = None);
  check_bool "max < 1 rejected" true
    (try
       ignore (Guard.attempts ~max:0 (fun _ -> Some ()));
       false
     with Invalid_argument _ -> true)

let test_guard_first_some () =
  let r =
    Guard.first_some
      [ (fun () -> None); (fun () -> Some "b"); (fun () -> Alcotest.fail "c") ]
  in
  check_bool "ladder stops at first Some" true (r = Some "b");
  check_bool "all None" true (Guard.first_some [ (fun () -> None) ] = None);
  check_bool "protect captures" true
    (match Guard.protect (fun () -> failwith "boom") with
    | Error (Failure m) -> m = "boom"
    | _ -> false)

(* ---------- error rendering ---------- *)

let test_error_to_string () =
  let s =
    Opm_error.to_string
      (Opm_error.Singular_pencil
         { column = 7; step = 2; pivot = 1e-15; name = Some "v(out)" })
  in
  check_bool "names the state" true
    (contains s "v(out)");
  check_bool "names the column" true (contains s "7");
  let s =
    Opm_error.to_string
      (Opm_error.Non_finite { stage = "solve-dense"; column = Some 3; nans = 2; infs = 0 })
  in
  check_bool "non-finite stage" true
    (contains s "solve-dense");
  check_bool "registered printer" true
    (Fun.flip contains "parse"
       (Printexc.to_string
          (Opm_error.Error (Opm_error.Parse_error { line = 4; message = "nope" }))))

(* ---------- condition estimation ---------- *)

(* exact 1-norm condition number via the explicit inverse *)
let true_cond1 a =
  let n, _ = Mat.dims a in
  let f = Lu.factor a in
  let inv = Mat.zeros n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = Lu.solve f e in
    for i = 0 to n - 1 do
      Mat.set inv i j col.(i)
    done
  done;
  let norm1 m =
    let best = ref 0.0 in
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s := !s +. Float.abs (Mat.get m i j)
      done;
      if !s > !best then best := !s
    done;
    !best
  in
  norm1 a *. norm1 inv

let references =
  [
    Mat.of_arrays
      [|
        [| 4.0; 1.0; 0.0; 0.0; 0.0 |];
        [| 1.0; 4.0; 1.0; 0.0; 0.0 |];
        [| 0.0; 1.0; 4.0; 1.0; 0.0 |];
        [| 0.0; 0.0; 1.0; 4.0; 1.0 |];
        [| 0.0; 0.0; 0.0; 1.0; 4.0 |];
      |];
    (* geometric diagonal: condition 1e4 *)
    Mat.init 5 5 (fun r c -> if r = c then 10.0 ** float_of_int (r - 2) else 0.0);
    (* Hilbert-flavoured: genuinely ill-conditioned *)
    Mat.init 5 5 (fun r c -> 1.0 /. float_of_int (r + c + 1));
  ]

let test_cond_est_dense () =
  List.iteri
    (fun k a ->
      let kappa = true_cond1 a in
      let est = Lu.cond_est (Lu.factor a) in
      let msg = Printf.sprintf "reference %d (true %g, est %g)" k kappa est in
      check_bool msg true (est <= kappa *. 10.0 && est >= kappa /. 10.0))
    references

let test_cond_est_sparse () =
  List.iteri
    (fun k a ->
      let kappa = true_cond1 a in
      let est = Slu.cond_est (Slu.factor (Csr.of_dense a)) in
      let msg = Printf.sprintf "reference %d (true %g, est %g)" k kappa est in
      check_bool msg true (est <= kappa *. 10.0 && est >= kappa /. 10.0))
    references

let test_cond_est_cached () =
  let f = Lu.factor (List.nth references 0) in
  close "second call identical" 0.0 (Lu.cond_est f -. Lu.cond_est f)

(* ---------- transpose solves (the estimator's workhorse) ---------- *)

let test_solve_transpose () =
  let e, a = random_system 11 6 in
  ignore e;
  let st = Random.State.make [| 12 |] in
  let b = Array.init 6 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let x = Lu.solve_transpose (Lu.factor a) b in
  (* Aᵀx = b *)
  let r = Mat.mul_vec (Mat.transpose a) x in
  Array.iteri (fun i ri -> close "A^T x = b" b.(i) ri ~tol:1e-10) r;
  let xs = Slu.solve_transpose (Slu.factor (Csr.of_dense a)) b in
  Array.iteri (fun i xi -> close "sparse = dense" x.(i) xi ~tol:1e-10) xs

(* ---------- structured singular errors ---------- *)

let test_singular_dense () =
  (* second row of both E and A is zero: the pencil d·E − A has a zero
     row whatever d is, so elimination fails at state index 1 *)
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let grid = Grid.uniform ~t_end:1.0 ~m:4 in
  let d = Block_pulse.differential_matrix grid in
  let bu = Mat.init 2 4 (fun _ _ -> 1.0) in
  match Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () with
  | _ -> Alcotest.fail "expected Singular_pencil"
  | exception Opm_error.Error (Opm_error.Singular_pencil { column; step; _ }) ->
      check_int "failing time column" 0 column;
      check_int "failing state" 1 step

let test_singular_sparse_cascade () =
  (* same singular pencil through the sparse backend: the cascade tries
     strict pivoting, then a dense factorisation, and only then raises —
     with the fallback steps visible in the health report *)
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let grid = Grid.uniform ~t_end:1.0 ~m:4 in
  let d = Block_pulse.differential_matrix grid in
  let bu = Mat.init 2 4 (fun _ _ -> 1.0) in
  let health = Health.create () in
  match
    Engine.solve_sparse ~health
      ~terms:[ (Csr.of_dense e, d) ]
      ~a:(Csr.of_dense a) ~bu ()
  with
  | _ -> Alcotest.fail "expected Singular_pencil"
  | exception Opm_error.Error (Opm_error.Singular_pencil { column; step; _ }) ->
      check_int "failing time column" 0 column;
      check_int "failing state" 1 step;
      check_bool "strict pivoting was tried" true
        (List.exists
           (function Health.Strict_refactor _ -> true | _ -> false)
           (Health.events health))

let test_singular_netlist () =
  (* two parallel voltage sources force contradictory KVL constraints:
     the MNA pencil is structurally singular and the error must identify
     a source-current state *)
  let net = Parser.parse_string "V1 a 0 step(1)\nV2 a 0 step(2)\nR1 a 0 1k\n" in
  let mt, srcs = Mna.stamp net in
  let grid = Grid.uniform ~t_end:1e-3 ~m:8 in
  match Opm.simulate_multi_term ~grid mt srcs with
  | _ -> Alcotest.fail "expected Singular_pencil"
  | exception Opm_error.Error (Opm_error.Singular_pencil { step; _ }) ->
      let state = mt.Multi_term.state_names.(step) in
      check_bool
        (Printf.sprintf "failing state %s is a source current" state)
        true
        (has_prefix "i(" state)

(* ---------- near-singular refinement ---------- *)

let test_near_singular_refinement () =
  (* stiff diagonal pencil: with h = 1/8192 the diagonal block
     diag(2/h + 1, 2/h + 1e13) has a 1-norm condition ≈ 6·10⁸, above
     the 1e8 default limit, so every column must attempt iterative
     refinement (recording the event) while the recovered waveform
     still matches the analytic solution to 1e-8 *)
  let n = 2 in
  let e = Mat.eye n in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| 0.0; -1e13 |] |] in
  let m = 8192 in
  let grid = Grid.uniform ~t_end:1.0 ~m in
  let bu = Mat.init n m (fun _ _ -> 1.0) in
  let health = Health.create () in
  let x =
    Engine.solve_linear_dense ~health ~steps:(Grid.steps grid) ~e ~a ~bu ()
  in
  check_bool "refinement attempted" true
    (List.exists
       (function Health.Refined _ -> true | _ -> false)
       (Health.events health));
  check_bool "condition flagged" true
    (Health.worst_cond health > Health.default_cond_limit);
  (* analytic: ẋ₁ = −x₁ + 1 from 0; the BPF coefficient approximates
     the interval average of 1 − e^{−t} *)
  let h = 1.0 /. float_of_int m in
  for i = 0 to m - 1 do
    let t0 = float_of_int i *. h in
    let avg = 1.0 -. ((Float.exp (-.t0) -. Float.exp (-.(t0 +. h))) /. h) in
    close "x1 matches analytic" avg (Mat.get x 0 i) ~tol:1e-8
  done;
  (* the fast second state sits at its 1e-13 equilibrium throughout *)
  close "x2 equilibrium" 1e-13 (Mat.get x 1 (m - 1)) ~tol:1e-16

(* ---------- guards are bit-identical no-ops when healthy ---------- *)

let test_noop_on_well_conditioned () =
  let e, a = random_system 21 8 in
  let m = 12 in
  let grid = Grid.uniform ~t_end:1.0 ~m in
  let d = Block_pulse.differential_matrix grid in
  let st = Random.State.make [| 22 |] in
  let bu = Mat.init 8 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let health = Health.create () in
  let x_with = Engine.solve_dense ~health ~terms:[ (e, d) ] ~a ~bu () in
  let x_without = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
  close "bit-identical with/without health" 0.0
    (Mat.max_abs_diff x_with x_without);
  check_int "no fallback events" 0 (Health.fallback_count health);
  check_int "no NaNs" 0 (Health.nans health);
  check_int "every column checked" m (Health.columns health);
  check_bool "no warnings" true (Health.warnings health = []);
  let xs_with =
    Engine.solve_sparse ~health:(Health.create ())
      ~terms:[ (Csr.of_dense e, d) ]
      ~a:(Csr.of_dense a) ~bu ()
  in
  let xs_without =
    Engine.solve_sparse ~terms:[ (Csr.of_dense e, d) ] ~a:(Csr.of_dense a) ~bu ()
  in
  close "sparse bit-identical" 0.0 (Mat.max_abs_diff xs_with xs_without)

(* ---------- health report ---------- *)

let test_health_report () =
  let h = Health.create () in
  Health.record_vec h [| 1.0; 2.0 |];
  Health.record_residual h 1e-12;
  Health.record_cond h 42.0;
  check_bool "clean report ok" true
    (Astring.String.is_infix ~affix:"status: ok" (Health.to_string h));
  Health.record_vec h [| Float.nan; Float.infinity |];
  Health.record_event h (Health.Dense_fallback { column = 3 });
  check_int "nan counted" 1 (Health.nans h);
  check_int "inf counted" 1 (Health.infs h);
  check_int "fallback counted" 1 (Health.fallback_count h);
  check_bool "warnings present" true (Health.warnings h <> []);
  check_bool "report carries warning count" true
    (Astring.String.is_infix ~affix:"warning" (Health.to_string h));
  (* residuals: NaN must poison the max, not vanish in a comparison *)
  let h2 = Health.create () in
  Health.record_residual h2 Float.nan;
  check_bool "NaN residual -> infinite max" true
    (Health.max_residual h2 = Float.infinity)

(* ---------- adaptive local grid refinement ---------- *)

let test_adaptive_non_finite () =
  (* source turns NaN after t = 0.1: the driver must halve the step the
     bounded number of times, record each halving, then raise the
     structured error — never feed NaN to the error controller *)
  let sys = Descriptor.scalar ~e:1.0 ~a:(-1.0) ~b:1.0 in
  let poison = Source.Fn (fun t -> if t > 0.1 then Float.nan else 1.0) in
  let health = Health.create () in
  match Adaptive.solve ~health ~t_end:1.0 sys [| poison |] with
  | _ -> Alcotest.fail "expected Non_finite"
  | exception Opm_error.Error (Opm_error.Non_finite { stage; _ }) ->
      Alcotest.(check string) "stage" "adaptive" stage;
      (* halvings accumulate over the whole walk (each burst ends when a
         finite trial resets the counter); the *consecutive* count is
         what is bounded, so the recorded retry ordinals must reach the
         cap exactly once — in the final, fatal burst — and never
         exceed it *)
      let retries =
        List.filter_map
          (function Health.Step_halved { retry; _ } -> Some retry | _ -> None)
          (Health.events health)
      in
      check_bool "halvings recorded" true (retries <> []);
      check_int "cap reached once" 1
        (List.length
           (List.filter (( = ) Adaptive.max_non_finite_retries) retries));
      check_bool "cap never exceeded" true
        (List.for_all (fun r -> r <= Adaptive.max_non_finite_retries) retries)

let test_adaptive_clean_unchanged () =
  (* on a healthy problem the health-instrumented run returns the exact
     same grid and values as the plain one *)
  let sys = Descriptor.scalar ~e:1.0 ~a:(-2.0) ~b:1.0 in
  let src = [| Source.Step { amplitude = 1.0; delay = 0.0 } |] in
  let r1, s1 = Adaptive.solve ~t_end:1.0 sys src in
  let health = Health.create () in
  let r2, s2 = Adaptive.solve ~health ~t_end:1.0 sys src in
  check_int "same accepted steps" s1.Adaptive.accepted s2.Adaptive.accepted;
  close "identical solution" 0.0
    (Mat.max_abs_diff r1.Sim_result.x r2.Sim_result.x);
  check_bool "no halvings recorded" true
    (List.for_all
       (function Health.Step_halved _ -> false | _ -> true)
       (Health.events health))

(* ---------- pivot_tol validation ---------- *)

let test_pivot_tol_validation () =
  let a = Csr.of_dense (Mat.eye 3) in
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "pivot_tol %g rejected" bad)
        true
        (try
           ignore (Slu.factor ~pivot_tol:bad a);
           false
         with Invalid_argument _ -> true))
    [ 0.0; -0.1; 1.5; Float.nan ];
  (* 1.0 = strict partial pivoting is the documented upper edge *)
  ignore (Slu.factor ~pivot_tol:1.0 a)

(* ---------- parser robustness ---------- *)

let check_parse_error text line =
  match Parser.parse_string text with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error { line = l; _ } ->
      check_int "error line" line l

let test_parser_duplicate_designator () =
  (* duplicates are rejected case-insensitively (SPICE convention) *)
  check_parse_error "R1 a 0 1k\nr1 b 0 2k\n" 2;
  check_parse_error "V1 a 0 step(1)\nR1 a b 1k\nv1 b 0 step(2)\n" 3

let test_parser_value_error_line () =
  check_parse_error "R1 a 0 1k\nC1 b 0 zap\n" 2;
  check_parse_error "R1 a 0 0\n" 1 (* non-positive value, still line-tagged *)

(* ---------- sim result carries the collector ---------- *)

let test_sim_result_health () =
  let net = Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let mt, srcs = Mna.stamp net in
  let grid = Grid.uniform ~t_end:1e-3 ~m:16 in
  let health = Health.create () in
  let r = Opm.simulate_multi_term ~health ~grid mt srcs in
  check_bool "collector attached" true
    (match Sim_result.health r with Some h -> h == health | None -> false);
  (match Sim_result.health_report r with
  | Some s -> check_bool "report ok" true (contains s "status: ok")
  | None -> Alcotest.fail "expected a report");
  let r2 = Opm.simulate_multi_term ~grid mt srcs in
  check_bool "no collector by default" true (Sim_result.health r2 = None);
  close "health never changes the waveform" 0.0
    (Mat.max_abs_diff r.Sim_result.x r2.Sim_result.x)

let () =
  Alcotest.run "robust"
    [
      ( "guard",
        [
          Alcotest.test_case "finiteness" `Quick test_guard_finite;
          Alcotest.test_case "attempts" `Quick test_guard_attempts;
          Alcotest.test_case "first_some/protect" `Quick test_guard_first_some;
        ] );
      ( "errors",
        [ Alcotest.test_case "to_string" `Quick test_error_to_string ] );
      ( "cond_est",
        [
          Alcotest.test_case "dense within 10x" `Quick test_cond_est_dense;
          Alcotest.test_case "sparse within 10x" `Quick test_cond_est_sparse;
          Alcotest.test_case "cached" `Quick test_cond_est_cached;
          Alcotest.test_case "transpose solves" `Quick test_solve_transpose;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "singular dense" `Quick test_singular_dense;
          Alcotest.test_case "singular sparse cascade" `Quick
            test_singular_sparse_cascade;
          Alcotest.test_case "singular netlist" `Quick test_singular_netlist;
          Alcotest.test_case "near-singular refinement" `Quick
            test_near_singular_refinement;
          Alcotest.test_case "no-op when well-conditioned" `Quick
            test_noop_on_well_conditioned;
        ] );
      ( "health",
        [
          Alcotest.test_case "report" `Quick test_health_report;
          Alcotest.test_case "sim result carries it" `Quick
            test_sim_result_health;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "non-finite bounded retry" `Quick
            test_adaptive_non_finite;
          Alcotest.test_case "clean run unchanged" `Quick
            test_adaptive_clean_unchanged;
        ] );
      ( "inputs",
        [
          Alcotest.test_case "pivot_tol domain" `Quick test_pivot_tol_validation;
          Alcotest.test_case "duplicate designator" `Quick
            test_parser_duplicate_designator;
          Alcotest.test_case "value error line" `Quick
            test_parser_value_error_line;
        ] );
    ]
