(* Tests for sources, waveforms and the paper's error metrics. *)

open Opm_signal

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)

(* ---------- Source.eval ---------- *)

let test_eval_dc () = close "dc" 2.5 (Source.eval (Source.Dc 2.5) 17.0)

let test_eval_step () =
  let s = Source.Step { amplitude = 3.0; delay = 1.0 } in
  close "before" 0.0 (Source.eval s 0.5);
  close "at" 3.0 (Source.eval s 1.0);
  close "after" 3.0 (Source.eval s 2.0)

let test_eval_pulse_oneshot () =
  let s =
    Source.Pulse
      { low = -1.0; high = 2.0; delay = 1.0; width = 2.0; period = Float.infinity }
  in
  close "before delay" (-1.0) (Source.eval s 0.5);
  close "inside" 2.0 (Source.eval s 2.0);
  close "after" (-1.0) (Source.eval s 4.0)

let test_eval_pulse_periodic () =
  let s =
    Source.Pulse { low = 0.0; high = 1.0; delay = 0.0; width = 1.0; period = 2.0 }
  in
  close "first high" 1.0 (Source.eval s 0.5);
  close "first low" 0.0 (Source.eval s 1.5);
  close "second high" 1.0 (Source.eval s 2.5);
  close "tenth low" 0.0 (Source.eval s 21.5)

let test_eval_sine () =
  let s = Source.Sine { amplitude = 2.0; freq_hz = 0.25; phase = 0.0; offset = 1.0 } in
  close "t=0" 1.0 (Source.eval s 0.0);
  close "quarter period" 3.0 (Source.eval s 1.0) ~tol:1e-12

let test_eval_exp () =
  let s = Source.Exp_decay { amplitude = 4.0; tau = 2.0 } in
  close "t=0" 4.0 (Source.eval s 0.0);
  close "t=2" (4.0 /. Float.exp 1.0) (Source.eval s 2.0) ~tol:1e-12;
  close "negative t" 0.0 (Source.eval s (-1.0))

let test_eval_ramp () =
  let s = Source.Ramp { slope = 2.0; delay = 1.0 } in
  close "before" 0.0 (Source.eval s 0.5);
  close "after" 4.0 (Source.eval s 3.0)

let test_eval_pwl () =
  let s = Source.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  close "interp rise" 1.0 (Source.eval s 0.5);
  close "plateau" 2.0 (Source.eval s 2.0);
  close "interp fall" 1.0 (Source.eval s 3.5);
  close "extrapolate right" 0.0 (Source.eval s 10.0);
  close "extrapolate left" 0.0 (Source.eval s (-1.0))

let test_pwl_validation () =
  check_bool "non-increasing times rejected" true
    (try
       ignore (Source.pwl [ (0.0, 0.0); (0.0, 1.0) ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Source.average (exact interval integrals) ---------- *)

(* numeric reference via Fn (adaptive Simpson) *)
let numeric_average src a b =
  Source.average (Source.Fn (Source.eval src)) a b

let check_average ?(tol = 1e-7) name src a b =
  close name (numeric_average src a b) (Source.average src a b) ~tol

let test_average_step () =
  let s = Source.Step { amplitude = 2.0; delay = 1.0 } in
  close "straddling" 1.0 (Source.average s 0.0 2.0);
  close "fully after" 2.0 (Source.average s 3.0 5.0);
  close "fully before" 0.0 (Source.average s 0.0 0.5)

let test_average_sine_closed_form () =
  let s = Source.Sine { amplitude = 1.0; freq_hz = 1.0; phase = 0.3; offset = 0.5 } in
  check_average "sine vs simpson" s 0.1 0.9

let test_average_pulse_periodic () =
  let s =
    Source.Pulse { low = 0.0; high = 1.0; delay = 0.5; width = 1.0; period = 2.0 }
  in
  (* duty cycle 50%: long-run average 0.5 *)
  close "long-run" 0.5 (Source.average s 0.5 20.5) ~tol:1e-12;
  check_average "partial period" s 0.3 1.7;
  check_average "many periods offset" s 1.1 9.4

let test_average_pwl () =
  let s = Source.pwl [ (0.0, 0.0); (2.0, 4.0) ] in
  close "triangle" 1.0 (Source.average s 0.0 1.0);
  check_average "pwl vs simpson" s 0.2 1.8;
  (* extrapolation region *)
  close "right extrapolation" 4.0 (Source.average s 3.0 5.0)

let test_average_exp () =
  let s = Source.Exp_decay { amplitude = 1.0; tau = 1.0 } in
  check_average "exp vs simpson" s 0.0 2.0;
  close "closed form" (1.0 -. exp (-1.0)) (Source.average s 0.0 1.0) ~tol:1e-12

let test_average_ramp () =
  let s = Source.Ramp { slope = 3.0; delay = 1.0 } in
  check_average "ramp vs simpson" s 0.0 4.0;
  close "pure region" (3.0 *. 0.5) (Source.average s 1.0 2.0) ~tol:1e-12

let test_average_point () =
  let s = Source.Dc 7.0 in
  close "a = b degenerates to eval" 7.0 (Source.average s 2.0 2.0)

let prop_average_additivity =
  QCheck.Test.make ~count:50
    ~name:"source: ∫[a,c] = ∫[a,b] + ∫[b,c] (via averages)"
    QCheck.(triple (float_range 0.0 2.0) (float_range 0.0 2.0) (float_range 0.0 2.0))
    (fun (x, y, z) ->
      let a = Float.min x (Float.min y z)
      and c = Float.max x (Float.max y z) in
      let b = x +. y +. z -. a -. c in
      if c -. a < 1e-6 || b -. a < 1e-9 || c -. b < 1e-9 then true
      else
        let s =
          Source.Pulse { low = 0.2; high = 1.3; delay = 0.4; width = 0.3; period = 0.9 }
        in
        let int_ab = Source.average s a b *. (b -. a) in
        let int_bc = Source.average s b c *. (c -. b) in
        let int_ac = Source.average s a c *. (c -. a) in
        Float.abs (int_ab +. int_bc -. int_ac) < 1e-9)

(* ---------- Waveform ---------- *)

let test_waveform_validation () =
  check_bool "non-increasing times rejected" true
    (try
       ignore (Waveform.make [| 0.0; 0.0 |] [| [| 1.0; 2.0 |] |]);
       false
     with Invalid_argument _ -> true);
  check_bool "ragged channel rejected" true
    (try
       ignore (Waveform.make [| 0.0; 1.0 |] [| [| 1.0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_waveform_labels () =
  let w = Waveform.make ~labels:[| "a"; "b" |] [| 0.0; 1.0 |]
      [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
  in
  check_bool "named lookup" true (Waveform.channel_named w "b" == Waveform.channel w 1);
  check_bool "unknown raises" true
    (try
       ignore (Waveform.channel_named w "zz");
       false
     with Not_found -> true)

let test_waveform_sample_at () =
  let w = Waveform.make [| 0.0; 1.0; 2.0 |] [| [| 0.0; 10.0; 20.0 |] |] in
  close "interior" 5.0 (Waveform.sample_at w 0.5).(0);
  close "exact node" 10.0 (Waveform.sample_at w 1.0).(0);
  close "clamp left" 0.0 (Waveform.sample_at w (-1.0)).(0);
  close "clamp right" 20.0 (Waveform.sample_at w 5.0).(0)

let test_waveform_resample () =
  let w =
    Waveform.of_function [| 0.0; 0.5; 1.0; 1.5; 2.0 |] (fun t -> [| 3.0 *. t |])
  in
  let r = Waveform.resample w [| 0.25; 1.25 |] in
  close "linear exact" 0.75 (Waveform.channel r 0).(0);
  close "linear exact 2" 3.75 (Waveform.channel r 0).(1)

let test_waveform_csv () =
  let w = Waveform.make ~labels:[| "v" |] [| 0.0; 1.0 |] [| [| 1.5; 2.5 |] |] in
  let csv = Waveform.to_csv w in
  check_bool "header" true (String.length csv > 0 && String.sub csv 0 3 = "t,v");
  check_bool "row" true
    (String.split_on_char '\n' csv |> fun lines -> List.nth lines 1 = "0,1.5")

let test_bpf_grid () =
  let g = Waveform.bpf_grid ~t_end:1.0 ~m:4 in
  close "first midpoint" 0.125 g.(0);
  close "last midpoint" 0.875 g.(3)

(* ---------- Measure ---------- *)

(* a sampled first-order step response, τ = 1 *)
let rc_waveform () =
  let times = Array.init 1001 (fun k -> float_of_int k *. 0.01) in
  Waveform.make times [| Array.map (fun t -> 1.0 -. exp (-.t)) times |]

let test_measure_final_and_peak () =
  let w = rc_waveform () in
  close "final" (1.0 -. exp (-10.0)) (Measure.final_value w ~channel:0) ~tol:1e-12;
  let t_peak, v_peak = Measure.peak w ~channel:0 in
  close "peak at the end" 10.0 t_peak;
  close "peak value" (1.0 -. exp (-10.0)) v_peak ~tol:1e-12

let test_measure_crossing () =
  let w = rc_waveform () in
  (* 1 − e^{−t} = 0.5 at t = ln 2 *)
  close "half crossing" (log 2.0)
    (Measure.crossing_time w ~channel:0 ~level:0.5)
    ~tol:1e-3;
  check_bool "never-crossed raises" true
    (try
       ignore (Measure.crossing_time w ~channel:0 ~level:2.0);
       false
     with Not_found -> true)

let test_measure_crossing_direction () =
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  let w = Waveform.make times [| [| 0.0; 1.0; 0.0; 1.0 |] |] in
  close "rising" 0.5
    (Measure.crossing_time ~direction:`Rising w ~channel:0 ~level:0.5);
  close "falling" 1.5
    (Measure.crossing_time ~direction:`Falling w ~channel:0 ~level:0.5)

(* regression: an exact level hit on the very first sample used to be
   returned for every direction, even when `Rising/`Falling should have
   rejected it (no preceding sample to cross from) *)
let test_measure_crossing_first_sample () =
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  let w = Waveform.make times [| [| 0.5; 1.0; 0.2; 0.8 |] |] in
  close "either takes the exact first-sample hit" 0.0
    (Measure.crossing_time ~direction:`Either w ~channel:0 ~level:0.5);
  (* first genuine rising crossing: 0.2 → 0.8 between t = 2 and 3 *)
  close "rising skips the first-sample hit" 2.5
    (Measure.crossing_time ~direction:`Rising w ~channel:0 ~level:0.5);
  (* first genuine falling crossing: 1.0 → 0.2 between t = 1 and 2 *)
  close "falling skips the first-sample hit" 1.625
    (Measure.crossing_time ~direction:`Falling w ~channel:0 ~level:0.5);
  (* monotonically rising from the level: no falling crossing exists *)
  let w_up = Waveform.make times [| [| 0.5; 0.6; 0.7; 0.8 |] |] in
  check_bool "falling on a rising-only record raises" true
    (try
       ignore (Measure.crossing_time ~direction:`Falling w_up ~channel:0 ~level:0.5);
       false
     with Not_found -> true)

let test_measure_rise_time () =
  let w = rc_waveform () in
  (* 10–90 rise of a first-order system = ln 9 · τ *)
  close "ln 9" (log 9.0) (Measure.rise_time w ~channel:0) ~tol:5e-3

let test_measure_overshoot () =
  let w = rc_waveform () in
  close "no overshoot" 0.0 (Measure.overshoot w ~channel:0) ~tol:1e-9;
  (* an underdamped response: x = 1 − e^{−t}(cos 3t + sin(3t)/3) *)
  let times = Array.init 2001 (fun k -> float_of_int k *. 0.01) in
  let w2 =
    Waveform.make times
      [|
        Array.map
          (fun t -> 1.0 -. (exp (-.t) *. (cos (3.0 *. t) +. (sin (3.0 *. t) /. 3.0))))
          times;
      |]
  in
  check_bool "overshoot detected" true (Measure.overshoot w2 ~channel:0 > 0.2)

let test_measure_settling () =
  let w = rc_waveform () in
  (* 2% settling of e^{−t}: t = ln 50 ≈ 3.912 *)
  let t_s = Measure.settling_time ~band:0.02 w ~channel:0 in
  check_bool "near ln 50" true (Float.abs (t_s -. log 50.0) < 0.05)

let test_measure_delay () =
  let times = Array.init 101 (fun k -> float_of_int k *. 0.1) in
  let w =
    Waveform.make times
      [|
        Array.map (fun t -> if t >= 1.0 then 1.0 else 0.0) times;
        Array.map (fun t -> if t >= 3.0 then 1.0 else 0.0) times;
      |]
  in
  let d = Measure.delay_between w ~from_channel:0 ~to_channel:1 ~level:0.5 in
  close "2 s delay" 2.0 d ~tol:0.11

(* ---------- Spectrum ---------- *)

(* an exactly periodic record: y = 1·sin(2π·5t) + 0.1·sin(2π·15t) over
   two fundamental periods *)
let distorted_waveform () =
  let f0 = 5.0 in
  let n = 2048 in
  let t_end = 2.0 /. f0 in
  let times = Array.init n (fun k -> float_of_int k *. t_end /. float_of_int (n - 1)) in
  Waveform.make times
    [|
      Array.map
        (fun t ->
          sin (2.0 *. Float.pi *. f0 *. t)
          +. (0.1 *. sin (2.0 *. Float.pi *. 3.0 *. f0 *. t)))
        times;
    |]

let test_spectrum_harmonic_amplitudes () =
  let w = distorted_waveform () in
  let a = Spectrum.harmonics w ~channel:0 ~fundamental_hz:5.0 ~count:4 in
  close "fundamental" 1.0 a.(0) ~tol:2e-3;
  close "2nd absent" 0.0 a.(1) ~tol:2e-3;
  close "3rd harmonic" 0.1 a.(2) ~tol:2e-3;
  close "4th absent" 0.0 a.(3) ~tol:2e-3

let test_spectrum_thd () =
  let w = distorted_waveform () in
  close "thd = 10%" 0.1 (Spectrum.thd w ~channel:0 ~fundamental_hz:5.0 ()) ~tol:3e-3

let test_spectrum_linear_is_clean () =
  (* a pure sine has ~zero THD *)
  let times = Array.init 1000 (fun k -> float_of_int k /. 999.0) in
  let w =
    Waveform.make times
      [| Array.map (fun t -> 0.7 *. sin (2.0 *. Float.pi *. 4.0 *. t)) times |]
  in
  check_bool "clean" true (Spectrum.thd w ~channel:0 ~fundamental_hz:4.0 () < 1e-3)

let test_spectrum_magnitude_peak () =
  let w = distorted_waveform () in
  let spec = Spectrum.magnitude ~window:`Hann w ~channel:0 in
  (* the largest bin must sit at ~5 Hz *)
  let f_peak, _ =
    Array.fold_left
      (fun (bf, bm) (f, m) -> if m > bm then (f, m) else (bf, bm))
      (0.0, 0.0) spec
  in
  check_bool "peak near f0" true (Float.abs (f_peak -. 5.0) < 1.5)

(* ---------- Error metrics ---------- *)

let test_relative_error_db () =
  let reference = [| 1.0; 0.0; 0.0 |] in
  let y = [| 1.1; 0.0; 0.0 |] in
  (* ‖y−ref‖/‖ref‖ = 0.1 → −20 dB *)
  close "-20 dB" (-20.0) (Error.relative_error_db ~reference y) ~tol:1e-9;
  check_bool "exact match is −∞" true
    (Error.relative_error_db ~reference reference = Float.neg_infinity)

let test_relative_error_zero_ref () =
  check_bool "zero reference gives nan" true
    (Float.is_nan (Error.relative_error ~reference:[| 0.0; 0.0 |] [| 1.0; 1.0 |]))

let test_waveform_error_db () =
  let times = [| 0.0; 1.0; 2.0 |] in
  let reference = Waveform.make times [| [| 1.0; 1.0; 1.0 |] |] in
  let y = Waveform.make times [| [| 1.01; 1.01; 1.01 |] |] in
  close "-40 dB" (-40.0) (Error.waveform_error_db ~reference y) ~tol:1e-6

let test_average_relative_error_db () =
  let times = [| 0.0; 1.0 |] in
  let reference = Waveform.make times [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  let y = Waveform.make times [| [| 1.1; 1.1 |]; [| 2.2; 2.2 |] |] in
  (* both channels at −20 dB → average −20 dB *)
  close "average" (-20.0) (Error.average_relative_error_db ~reference y) ~tol:1e-9

let test_max_abs_error () =
  let times = [| 0.0; 1.0 |] in
  let reference = Waveform.make times [| [| 1.0; 2.0 |] |] in
  let y = Waveform.make times [| [| 1.5; 1.8 |] |] in
  close "max abs" 0.5 (Error.max_abs_error ~reference y)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "signal"
    [
      ( "source-eval",
        [
          t "dc" test_eval_dc;
          t "step" test_eval_step;
          t "pulse one-shot" test_eval_pulse_oneshot;
          t "pulse periodic" test_eval_pulse_periodic;
          t "sine" test_eval_sine;
          t "exp decay" test_eval_exp;
          t "ramp" test_eval_ramp;
          t "pwl" test_eval_pwl;
          t "pwl validation" test_pwl_validation;
        ] );
      ( "source-average",
        [
          t "step" test_average_step;
          t "sine closed form" test_average_sine_closed_form;
          t "pulse periodic" test_average_pulse_periodic;
          t "pwl" test_average_pwl;
          t "exp" test_average_exp;
          t "ramp" test_average_ramp;
          t "degenerate interval" test_average_point;
          q prop_average_additivity;
        ] );
      ( "waveform",
        [
          t "validation" test_waveform_validation;
          t "labels" test_waveform_labels;
          t "sample_at" test_waveform_sample_at;
          t "resample" test_waveform_resample;
          t "csv" test_waveform_csv;
          t "bpf grid" test_bpf_grid;
        ] );
      ( "measure",
        [
          t "final value + peak" test_measure_final_and_peak;
          t "crossing time" test_measure_crossing;
          t "crossing direction" test_measure_crossing_direction;
          t "crossing direction on first sample" test_measure_crossing_first_sample;
          t "rise time" test_measure_rise_time;
          t "overshoot" test_measure_overshoot;
          t "settling time" test_measure_settling;
          t "delay between channels" test_measure_delay;
        ] );
      ( "spectrum",
        [
          t "harmonic amplitudes" test_spectrum_harmonic_amplitudes;
          t "thd" test_spectrum_thd;
          t "pure tone is clean" test_spectrum_linear_is_clean;
          t "fft magnitude peak" test_spectrum_magnitude_peak;
        ] );
      ( "error",
        [
          t "relative error dB" test_relative_error_db;
          t "zero reference" test_relative_error_zero_ref;
          t "waveform error" test_waveform_error_db;
          t "average per-channel" test_average_relative_error_db;
          t "max abs" test_max_abs_error;
        ] );
    ]
