#!/usr/bin/env bash
# Smoke-run every example executable passed as an argument: each must
# exit 0 and must not emit NaN/Inf anywhere in its output. A waveform
# that went non-finite is the classic silent failure mode of an
# unguarded solver — catch it in CI, not in a paper figure.
#
# Golden check: the first 3 and last 3 lines of each example's output
# are additionally diffed against a committed snapshot in
# <golden_dir>/<name>.txt (first argument). That pins the numbers the
# examples print — a solver change that silently shifts a waveform now
# fails `dune runtest` with a readable diff instead of sliding through.
#
# To regenerate the snapshots after an *intended* output change, run
# from the repo root:
#
#   dune build @default
#   OPM_GOLDEN_UPDATE=1 test/smoke_examples.sh test/golden \
#       _build/default/examples/*.exe
#
# then review and commit the updated test/golden/*.txt files.
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: smoke_examples.sh <golden_dir> <example.exe>..." >&2
  exit 2
fi
golden_dir=$1
shift

status=0
for exe in "$@"; do
  out=$("$exe" 2>&1)
  code=$?
  name=$(basename "$exe" .exe)
  if [ "$code" -ne 0 ]; then
    echo "smoke: $name exited with status $code" >&2
    status=1
  fi
  if printf '%s' "$out" | grep -Eiqw 'nan|inf'; then
    echo "smoke: $name produced non-finite output:" >&2
    printf '%s\n' "$out" | grep -Eiw 'nan|inf' | head -5 >&2
    status=1
  fi
  snap=$({ printf '%s\n' "$out" | head -3; printf '%s\n' "$out" | tail -3; })
  gfile="$golden_dir/$name.txt"
  if [ "${OPM_GOLDEN_UPDATE:-0}" = "1" ]; then
    mkdir -p "$golden_dir"
    printf '%s\n' "$snap" > "$gfile"
    echo "smoke: regenerated $gfile"
  elif [ -f "$gfile" ]; then
    if ! printf '%s\n' "$snap" | diff -u "$gfile" - >/dev/null 2>&1; then
      echo "smoke: $name drifted from golden snapshot $gfile:" >&2
      printf '%s\n' "$snap" | diff -u "$gfile" - | head -20 >&2
      echo "smoke: if the change is intended, regenerate with OPM_GOLDEN_UPDATE=1 (see header)" >&2
      status=1
    fi
  else
    echo "smoke: missing golden snapshot $gfile (create with OPM_GOLDEN_UPDATE=1)" >&2
    status=1
  fi
done
exit $status
