#!/usr/bin/env bash
# Smoke-run every example executable passed as an argument: each must
# exit 0 and must not emit NaN/Inf anywhere in its output. A waveform
# that went non-finite is the classic silent failure mode of an
# unguarded solver — catch it in CI, not in a paper figure.
set -u

status=0
for exe in "$@"; do
  out=$("$exe" 2>&1)
  code=$?
  name=$(basename "$exe")
  if [ "$code" -ne 0 ]; then
    echo "smoke: $name exited with status $code" >&2
    status=1
  fi
  if printf '%s' "$out" | grep -Eiqw 'nan|inf'; then
    echo "smoke: $name produced non-finite output:" >&2
    printf '%s\n' "$out" | grep -Eiw 'nan|inf' | head -5 >&2
    status=1
  fi
done
exit $status
