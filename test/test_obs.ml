(* Tests for the observability layer (lib/obs): the JSON printer and
   parser, the metrics registry, span tracing, the merged report — and
   the two contract properties the instrumentation must keep:
   bit-identical solver output when disabled, bounded overhead when
   enabled (the strict < 2% budget is measured by
   `bench/main.exe obs-overhead`; here we only assert a loose bound so
   CI noise cannot flake the suite). *)

open Opm_obs
open Opm_numkit
open Opm_signal
open Opm_basis
open Opm_core
open Opm_circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test starts from a clean, disabled registry *)
let fresh () =
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Metrics.reset ();
  Trace.reset ()

(* ---------- Json ---------- *)

let sample_doc =
  Json.Obj
    [
      ("a", Json.Int 42);
      ("b", Json.Float 1.5);
      ("c", Json.String "hi \"there\"\n");
      ("d", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
      ("e", Json.Obj [ ("nested", Json.List [ Json.Int (-7) ]) ]);
    ]

let test_json_roundtrip () =
  fresh ();
  let s = Json.to_string sample_doc in
  let doc = Json.of_string s in
  check_int "a" 42
    (Option.get (Json.to_int_opt (Option.get (Json.member "a" doc))));
  check_string "c" "hi \"there\"\n"
    (Option.get (Json.to_string_opt (Option.get (Json.member "c" doc))));
  (match Json.member "d" doc with
  | Some (Json.List [ Json.Bool true; Json.Bool false; Json.Null ]) -> ()
  | _ -> Alcotest.fail "list did not round-trip");
  (* round-tripping the printed form must be a fixed point *)
  check_string "fixed point" s (Json.to_string (Json.of_string s))

let test_json_non_finite () =
  fresh ();
  (* NaN/Inf have no JSON representation: they serialise as null, which
     is exactly what bench/validate.ml treats as a poisoned cell *)
  check_string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check_string "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  fresh ();
  let fails s =
    match Json.of_string s with
    | _ -> Alcotest.failf "parsed %S" s
    | exception Json.Parse_error _ -> ()
  in
  fails "{\"a\": }";
  fails "[1, 2";
  fails "tru";
  fails "{\"a\": 1} trailing"

(* ---------- Metrics ---------- *)

let test_counter_gating () =
  fresh ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  check_int "disabled incr is a no-op" 0 (Metrics.counter_value c);
  Metrics.set_enabled true;
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "enabled" 5 (Metrics.counter_value c);
  Metrics.reset ();
  check_int "reset" 0 (Metrics.counter_value c);
  check_bool "same name, same instrument" true
    (c == Metrics.counter "test.counter")

let test_histogram_buckets () =
  fresh ();
  Metrics.set_enabled true;
  let h = Metrics.histogram "test.hist" in
  (* observe each bucket's lower bound plus a nudge: the snapshot must
     report exactly one count per bucket, keyed by that lower bound *)
  for i = 0 to Metrics.bucket_count - 1 do
    Metrics.observe h (Metrics.bucket_lower_bound i *. 1.0000001)
  done;
  check_int "count" Metrics.bucket_count (Metrics.histogram_count h);
  let buckets =
    match
      Json.member "histograms" (Metrics.snapshot ())
      |> Fun.flip Option.bind (Json.member "test.hist")
      |> Fun.flip Option.bind (Json.member "buckets")
    with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no buckets in snapshot"
  in
  check_int "all buckets hit" Metrics.bucket_count (List.length buckets);
  List.iteri
    (fun i entry ->
      match entry with
      | Json.List [ lb; Json.Int 1 ] ->
          let lb = Option.get (Json.to_float_opt lb) in
          if abs_float (lb -. Metrics.bucket_lower_bound i) > 1e-18 then
            Alcotest.failf "bucket %d lower bound %.3g <> %.3g" i lb
              (Metrics.bucket_lower_bound i)
      | _ -> Alcotest.failf "bucket %d malformed" i)
    buckets;
  (* zero and NaN land in the underflow clamp bucket, not a crash *)
  Metrics.observe h 0.0;
  Metrics.observe h Float.nan;
  check_int "clamped" (Metrics.bucket_count + 2) (Metrics.histogram_count h)

let test_timers () =
  fresh ();
  Metrics.set_enabled true;
  let h = Metrics.histogram "test.timer" in
  let r = Metrics.time h (fun () -> 1 + 1) in
  check_int "time returns the thunk's value" 2 r;
  check_int "one observation" 1 (Metrics.histogram_count h);
  let t = ref (Metrics.lap_start ()) in
  for _ = 1 to 3 do
    t := Metrics.lap h !t
  done;
  check_int "three laps" 4 (Metrics.histogram_count h);
  check_bool "sum is finite and non-negative" true
    (Float.is_finite (Metrics.histogram_sum h)
    && Metrics.histogram_sum h >= 0.0)

(* ---------- Trace ---------- *)

let test_trace_spans () =
  fresh ();
  Trace.set_enabled true;
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 7)
        + Trace.with_span "inner" (fun () -> 1))
  in
  check_int "value through spans" 8 r;
  check_int "three spans recorded" 3 (Trace.span_count ());
  let doc = Trace.to_chrome_json () in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents"
  in
  check_int "three events" 3 (List.length events);
  List.iter
    (fun e ->
      (match Json.member "ph" e with
      | Some (Json.String "X") -> ()
      | _ -> Alcotest.fail "ph <> X");
      List.iter
        (fun f ->
          match Json.member f e with
          | Some v when Json.to_float_opt v <> None -> ()
          | _ -> Alcotest.failf "missing numeric %s" f)
        [ "ts"; "dur"; "pid"; "tid" ])
    events;
  let profile = Trace.to_profile_string () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "profile mentions nested path" true (contains profile "outer/inner");
  Trace.reset ();
  check_int "reset drops spans" 0 (Trace.span_count ())

(* ---------- Report ---------- *)

let test_report_merge () =
  fresh ();
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Metrics.incr (Metrics.counter "test.report.counter");
  Trace.with_span "test.report.span" (fun () -> ());
  let doc = Report.make ~run:[ ("cmd", Json.String "unit-test") ] () in
  (match Json.member "schema" doc with
  | Some (Json.String s) -> check_string "schema" Report.schema_version s
  | _ -> Alcotest.fail "missing schema");
  (match
     Json.member "run" doc |> Fun.flip Option.bind (Json.member "cmd")
   with
  | Some (Json.String "unit-test") -> ()
  | _ -> Alcotest.fail "run params not merged");
  (match
     Json.member "metrics" doc
     |> Fun.flip Option.bind (Json.member "counters")
     |> Fun.flip Option.bind (Json.member "test.report.counter")
   with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "metrics snapshot not merged");
  (match
     Json.member "trace" doc |> Fun.flip Option.bind (Json.member "spans")
   with
  | Some (Json.Int n) when n >= 1 -> ()
  | _ -> Alcotest.fail "trace summary not merged");
  (* a report parses back: it is valid JSON *)
  ignore (Json.of_string (Json.to_string doc))

(* ---------- instrumentation contract ---------- *)

let kernel () =
  let input = Source.Step { amplitude = 1.0; delay = 0.0 } in
  let net = Generators.rc_ladder ~sections:6 ~input () in
  let sys, srcs = Mna.stamp_linear net in
  let r =
    Opm.simulate_linear ~grid:(Grid.uniform ~t_end:2e-5 ~m:128) sys srcs
  in
  r.Sim_result.x

let test_bit_identity () =
  fresh ();
  let x_off = kernel () in
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let x_on = kernel () in
  Metrics.set_enabled false;
  Trace.set_enabled false;
  let rows, cols = Mat.dims x_off in
  check_int "dims" rows (fst (Mat.dims x_on));
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if
        Int64.bits_of_float (Mat.get x_off i j)
        <> Int64.bits_of_float (Mat.get x_on i j)
      then
        Alcotest.failf "x(%d,%d) differs bitwise: %h vs %h" i j
          (Mat.get x_off i j) (Mat.get x_on i j)
    done
  done

let test_overhead_loose () =
  fresh ();
  ignore (kernel ());
  (* warm *)
  let time_batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 5 do
      ignore (kernel ())
    done;
    Unix.gettimeofday () -. t0
  in
  let off = time_batch () in
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let on = time_batch () in
  Metrics.set_enabled false;
  Trace.set_enabled false;
  (* loose sanity bound (2×) — the calibrated < 2% budget is checked by
     the interleaved median measurement in `bench/main.exe obs-overhead` *)
  check_bool
    (Printf.sprintf "instrumented run not pathologically slower (%.3f vs %.3f s)"
       on off)
    true
    (on < 2.0 *. off +. 0.05)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite -> null" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter gating + reset" `Quick test_counter_gating;
          Alcotest.test_case "histogram bucket layout" `Quick
            test_histogram_buckets;
          Alcotest.test_case "timers and laps" `Quick test_timers;
        ] );
      ( "trace",
        [ Alcotest.test_case "nested spans + chrome json" `Quick test_trace_spans ]
      );
      ( "report",
        [ Alcotest.test_case "merged document" `Quick test_report_merge ] );
      ( "contract",
        [
          Alcotest.test_case "disabled -> bit-identical" `Quick
            test_bit_identity;
          Alcotest.test_case "enabled -> bounded overhead" `Slow
            test_overhead_loose;
        ] );
    ]
