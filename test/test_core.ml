(* Tests for the OPM solver core: descriptors, the column-by-column
   engine, the high-level simulate functions and the adaptive driver. *)

open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_signal
open Opm_core

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let step = Source.Step { amplitude = 1.0; delay = 0.0 }

let max_err_against f result =
  let y = Sim_result.output result 0 in
  let mids = Grid.midpoints result.Sim_result.grid in
  let err = ref 0.0 in
  Array.iteri (fun i t -> err := Float.max !err (Float.abs (y.(i) -. f t))) mids;
  !err

(* ---------- Descriptor ---------- *)

let test_descriptor_dims () =
  let sys = Descriptor.random_stable ~n:7 ~p:2 ~q:3 () in
  check_int "order" 7 (Descriptor.order sys);
  check_int "inputs" 2 (Descriptor.input_count sys);
  check_int "outputs" 3 (Descriptor.output_count sys)

let test_descriptor_validation () =
  check_bool "B row mismatch rejected" true
    (try
       ignore
         (Descriptor.of_dense ~e:(Mat.eye 2) ~a:(Mat.eye 2) ~b:(Mat.zeros 3 1)
            ~c:(Mat.eye 2) ());
       false
     with Invalid_argument _ -> true);
  check_bool "bad state name count rejected" true
    (try
       ignore
         (Descriptor.of_dense ~state_names:[| "only-one" |] ~e:(Mat.eye 2)
            ~a:(Mat.eye 2) ~b:(Mat.zeros 2 1) ~c:(Mat.eye 2) ());
       false
     with Invalid_argument _ -> true)

let test_descriptor_observe_states () =
  let sys = Descriptor.random_stable ~n:5 ~p:1 ~q:1 () in
  let all = Descriptor.observe_states sys in
  check_int "outputs = states" 5 (Descriptor.output_count all)

let test_descriptor_random_stable_is_stable () =
  (* diagonally dominant negative: simulate and check decay *)
  let sys = Descriptor.random_stable ~seed:7 ~n:8 ~p:1 ~q:1 () in
  let grid = Grid.uniform ~t_end:20.0 ~m:400 in
  let r = Opm.simulate_linear ~grid sys [| Source.Dc 0.0 |] in
  (* zero input from zero state stays zero; drive with a pulse instead *)
  ignore r;
  let r =
    Opm.simulate_linear ~grid sys
      [|
        Source.Pulse
          { low = 0.0; high = 1.0; delay = 0.0; width = 0.5; period = Float.infinity };
      |]
  in
  let y = Sim_result.output r 0 in
  check_bool "decays after the pulse" true
    (Float.abs y.(399) < 1e-6 *. Float.max 1.0 (Vec.norm_inf y))

(* ---------- Multi_term ---------- *)

let test_multi_term_validation () =
  check_bool "empty terms rejected" true
    (try
       ignore (Multi_term.make ~terms:[] ~a:(Csr.eye 2) ~b:(Mat.zeros 2 1) ~c:(Mat.eye 2) ());
       false
     with Invalid_argument _ -> true);
  check_bool "alpha <= 0 rejected" true
    (try
       ignore
         (Multi_term.make ~terms:[ (Csr.eye 2, -0.5) ] ~a:(Csr.eye 2)
            ~b:(Mat.zeros 2 1) ~c:(Mat.eye 2) ());
       false
     with Invalid_argument _ -> true)

let test_multi_term_of_linear () =
  let sys = Descriptor.scalar ~e:2.0 ~a:(-1.0) ~b:1.0 in
  let mt = Multi_term.of_linear sys in
  check_int "one term" 1 (List.length mt.Multi_term.terms);
  close "alpha" 1.0 (Multi_term.max_alpha mt);
  check_int "input order" 0 mt.Multi_term.input_order

let test_multi_term_second_order () =
  let mt =
    Multi_term.second_order ~m2:(Csr.eye 3) ~m1:(Csr.scale 2.0 (Csr.eye 3))
      ~m0:(Csr.scale 5.0 (Csr.eye 3))
      ~b:(Mat.zeros 3 1) ~c:(Mat.eye 3) ()
  in
  close "max alpha" 2.0 (Multi_term.max_alpha mt);
  (* A = −M₀ *)
  close "a sign" (-5.0) (Csr.get mt.Multi_term.a 1 1)

(* ---------- Engine ---------- *)

let random_system seed n =
  let sys = Descriptor.random_stable ~seed ~n ~p:1 ~q:1 () in
  (Descriptor.e_dense sys, Descriptor.a_dense sys)

let test_engine_column_equals_kron () =
  let e, a = random_system 3 5 in
  let m = 9 in
  let grid = Grid.uniform ~t_end:1.0 ~m in
  let d = Block_pulse.differential_matrix grid in
  let st = Random.State.make [| 4 |] in
  let bu = Mat.init 5 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let x1 = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
  let x2 = Engine.solve_dense_kron ~terms:[ (e, d) ] ~a ~bu in
  close "identical" 0.0 (Mat.max_abs_diff x1 x2) ~tol:1e-8

let test_engine_sparse_equals_dense () =
  let e, a = random_system 11 12 in
  let m = 7 in
  let grid = Grid.uniform ~t_end:2.0 ~m in
  let d = Block_pulse.fractional_differential_matrix grid 0.6 in
  let st = Random.State.make [| 5 |] in
  let bu = Mat.init 12 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let xd = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
  let xs =
    Engine.solve_sparse ~terms:[ (Csr.of_dense e, d) ] ~a:(Csr.of_dense a) ~bu ()
  in
  close "identical" 0.0 (Mat.max_abs_diff xd xs) ~tol:1e-9

let test_engine_multi_term_kron () =
  (* two terms: E₂ẍ-like + E₁ẋ-like against the Kronecker oracle *)
  let e2, _ = random_system 21 4 in
  let e1, a = random_system 22 4 in
  let m = 6 in
  let grid = Grid.uniform ~t_end:1.0 ~m in
  let d1 = Block_pulse.differential_matrix grid in
  let d2 = Block_pulse.fractional_differential_matrix grid 2.0 in
  let st = Random.State.make [| 6 |] in
  let bu = Mat.init 4 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let terms = [ (e2, d2); (e1, d1) ] in
  let x1 = Engine.solve_dense ~terms ~a ~bu () in
  let x2 = Engine.solve_dense_kron ~terms ~a ~bu in
  close "identical" 0.0 (Mat.max_abs_diff x1 x2) ~tol:1e-7

let test_engine_residual () =
  (* the solution actually satisfies E X D = A X + BU *)
  let e, a = random_system 31 6 in
  let m = 8 in
  let grid = Grid.geometric ~t_end:1.0 ~m ~ratio:1.3 in
  let d = Block_pulse.differential_matrix grid in
  let st = Random.State.make [| 7 |] in
  let bu = Mat.init 6 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let x = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
  let residual = Mat.sub (Mat.mul (Mat.mul e x) d) (Mat.add (Mat.mul a x) bu) in
  close "residual" 0.0 (Mat.max_abs_diff residual (Mat.zeros 6 m)) ~tol:1e-7

let test_linear_fast_path_equals_generic () =
  (* the §III-A special-pattern recurrence vs the generic triangular
     engine with the explicit D matrix, on uniform and adaptive grids *)
  let e, a = random_system 51 7 in
  List.iter
    (fun grid ->
      let m = Grid.size grid in
      let st = Random.State.make [| 8 |] in
      let bu = Mat.init 7 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
      let d = Block_pulse.differential_matrix grid in
      let x_generic = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
      let x_fast = Engine.solve_linear_dense ~steps:(Grid.steps grid) ~e ~a ~bu () in
      close "fast = generic" 0.0 (Mat.max_abs_diff x_fast x_generic) ~tol:1e-8;
      let x_sparse =
        Engine.solve_linear_sparse ~steps:(Grid.steps grid)
          ~e:(Csr.of_dense e) ~a:(Csr.of_dense a) ~bu ()
      in
      close "sparse fast = dense fast" 0.0
        (Mat.max_abs_diff x_sparse x_fast) ~tol:1e-9)
    [ Grid.uniform ~t_end:2.0 ~m:12; Grid.adaptive [| 0.2; 0.5; 0.1; 0.7; 0.3 |] ]

(* regression: the order-1 fast path now skips the E·salt coupling
   matvec whenever the running alternating sum is exactly zero (column
   0, and any column where the sum cancels to ±0.0 in every entry).
   The skip must be invisible: a straight-line replica of the historical
   recurrence — same pencil, same factorisation, same operation order,
   coupling matvec applied *unconditionally* — must produce bit-identical
   columns, because E·0 = 0 and adding ±0.0 never changes a float. *)
let test_linear_salt_skip_bit_identity () =
  let n = 6 in
  let e, a = random_system 77 n in
  let grid = Grid.uniform ~t_end:1.5 ~m:40 in
  let steps = Grid.steps grid in
  let m = Array.length steps in
  let st = Random.State.make [| 21 |] in
  let bu = Mat.init n m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let reference =
    let x = Mat.zeros n m in
    let salt = Array.make n 0.0 in
    let lu = ref None in
    for i = 0 to m - 1 do
      let h = steps.(i) in
      let rhs = Array.init n (fun r -> Mat.get bu r i) in
      let sign = if i land 1 = 1 then -1.0 else 1.0 in
      let coupling = Mat.mul_vec e salt in
      Vec.axpy (-4.0 /. h *. sign) coupling rhs;
      let f =
        match !lu with
        | Some f -> f
        | None ->
            let f = Lu.factor (Mat.sub (Mat.scale (2.0 /. h) e) a) in
            lu := Some f;
            f
      in
      let xi = Lu.solve f rhs in
      Mat.set_col x i xi;
      Vec.axpy sign xi salt
    done;
    x
  in
  let fast = Engine.solve_linear_dense ~steps ~e ~a ~bu () in
  for i = 0 to m - 1 do
    for r = 0 to n - 1 do
      if Mat.get fast r i <> Mat.get reference r i then
        Alcotest.failf "column %d row %d: %.17g <> %.17g (not bit-identical)"
          i r (Mat.get fast r i) (Mat.get reference r i)
    done
  done

(* regression: the step-size → factorisation cache was an unbounded
   assoc list keyed on the exact float step, so a fully-adaptive grid
   both scanned the whole list per column (O(m²)) and grew without
   bound. The Hashtbl replacement must stay capacity-bounded while
   keeping the fast path exact on a 512-step adaptive grid. *)
let test_factor_cache_bounded () =
  let cache = Engine.Factor_cache.create () in
  let m = 512 in
  let grid = Grid.geometric ~t_end:1.0 ~m ~ratio:1.005 in
  let steps = Grid.steps grid in
  Array.iter
    (fun h ->
      let f = Engine.Factor_cache.find_or_add cache h (fun h -> 2.0 /. h) in
      close "cached value" (2.0 /. h) f ~tol:0.0)
    steps;
  check_bool "cache stays bounded on an all-distinct-step grid" true
    (Engine.Factor_cache.length cache <= Engine.Factor_cache.default_capacity);
  check_int "every distinct step is a miss" m (Engine.Factor_cache.misses cache);
  (* a uniform grid is one miss and m − 1 hits *)
  let uniform = Engine.Factor_cache.create () in
  Array.iter
    (fun h -> ignore (Engine.Factor_cache.find_or_add uniform h (fun h -> h)))
    (Grid.steps (Grid.uniform ~t_end:1.0 ~m));
  check_int "uniform grid factorises once" 1 (Engine.Factor_cache.misses uniform);
  check_int "uniform grid hits the cache" (m - 1) (Engine.Factor_cache.hits uniform);
  check_bool "tiny capacity accepted" true
    (Engine.Factor_cache.length (Engine.Factor_cache.create ~capacity:1 ()) = 0);
  check_bool "capacity 0 rejected" true
    (try
       ignore (Engine.Factor_cache.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let test_linear_fast_path_adaptive_512 () =
  (* end-to-end: the cached fast path on a 512-step fully-adaptive grid
     (every lookup misses and evicts) still matches the generic engine *)
  let e, a = random_system 61 3 in
  let m = 512 in
  let grid = Grid.geometric ~t_end:1.0 ~m ~ratio:1.005 in
  let st = Random.State.make [| 9 |] in
  let bu = Mat.init 3 m (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let d = Block_pulse.differential_matrix grid in
  let x_generic = Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu () in
  let x_fast = Engine.solve_linear_dense ~steps:(Grid.steps grid) ~e ~a ~bu () in
  close "adaptive 512-step fast path = generic" 0.0
    (Mat.max_abs_diff x_fast x_generic) ~tol:1e-6

let test_engine_dimension_check () =
  let e, a = random_system 41 3 in
  let d = Block_pulse.differential_matrix (Grid.uniform ~t_end:1.0 ~m:4) in
  check_bool "bu size mismatch rejected" true
    (try
       ignore (Engine.solve_dense ~terms:[ (e, d) ] ~a ~bu:(Mat.zeros 3 5) ());
       false
     with Invalid_argument _ -> true)

(* ---------- Opm.simulate_linear vs analytic ---------- *)

let rc = Descriptor.scalar ~e:1.0 ~a:(-1.0) ~b:1.0

let test_linear_rc_step () =
  let grid = Grid.uniform ~t_end:5.0 ~m:200 in
  let r = Opm.simulate_linear ~grid rc [| step |] in
  check_bool "max err < 1e-4" true
    (max_err_against (fun t -> 1.0 -. exp (-.t)) r < 1e-4)

let test_linear_rc_sine () =
  (* forced response of ẋ = −x + sin(ωt): exact from phasor + transient *)
  let w = 2.0 in
  let src = Source.Sine { amplitude = 1.0; freq_hz = w /. (2.0 *. Float.pi); phase = 0.0; offset = 0.0 } in
  let grid = Grid.uniform ~t_end:6.0 ~m:600 in
  let r = Opm.simulate_linear ~grid rc [| src |] in
  let exact t =
    (* x = (sin wt − w cos wt + w e^{−t})/(1+w²) *)
    ((sin (w *. t)) -. (w *. cos (w *. t)) +. (w *. exp (-.t))) /. (1.0 +. (w *. w))
  in
  check_bool "max err < 2e-4" true (max_err_against exact r < 2e-4)

let test_linear_dae () =
  (* DAE: x1' = −x1 + u; 0 = x2 − 2·x1 (E singular) *)
  let e = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0; 0.0 |]; [| -2.0; 1.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0 |]; [| 0.0 |] |] in
  let c = Mat.of_arrays [| [| 0.0; 1.0 |] |] in
  let sys = Descriptor.of_dense ~e ~a ~b ~c () in
  let grid = Grid.uniform ~t_end:5.0 ~m:300 in
  let r = Opm.simulate_linear ~grid sys [| step |] in
  check_bool "algebraic variable tracks 2x₁" true
    (max_err_against (fun t -> 2.0 *. (1.0 -. exp (-.t))) r < 2e-4)

let test_linear_convergence_order () =
  (* halving h must shrink the error superlinearly (≈ O(h²) at midpoints) *)
  let err m =
    let grid = Grid.uniform ~t_end:2.0 ~m in
    max_err_against (fun t -> 1.0 -. exp (-.t))
      (Opm.simulate_linear ~grid rc [| step |])
  in
  let e1 = err 50 and e2 = err 100 and e3 = err 200 in
  check_bool "monotone" true (e1 > e2 && e2 > e3);
  check_bool "at least order 1.5" true (e1 /. e2 > 2.8 && e2 /. e3 > 2.8)

let test_linear_two_inputs () =
  (* superposition: response to (u1, u2) = response u1 + response u2 *)
  let sys =
    Descriptor.of_dense
      ~e:(Mat.eye 2)
      ~a:(Mat.of_arrays [| [| -1.0; 0.2 |]; [| 0.1; -2.0 |] |])
      ~b:(Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |])
      ~c:(Mat.eye 2) ()
  in
  let grid = Grid.uniform ~t_end:3.0 ~m:60 in
  let both = Opm.simulate_linear ~grid sys [| step; Source.Dc 0.5 |] in
  let only1 = Opm.simulate_linear ~grid sys [| step; Source.Dc 0.0 |] in
  let only2 = Opm.simulate_linear ~grid sys [| Source.Dc 0.0; Source.Dc 0.5 |] in
  let sum = Mat.add only1.Sim_result.x only2.Sim_result.x in
  close "superposition" 0.0 (Mat.max_abs_diff both.Sim_result.x sum) ~tol:1e-10

let test_linear_source_count_mismatch () =
  let grid = Grid.uniform ~t_end:1.0 ~m:4 in
  check_bool "raises" true
    (try
       ignore (Opm.simulate_linear ~grid rc [| step; step |]);
       false
     with Invalid_argument _ -> true)

(* ---------- fractional ---------- *)

let test_fractional_relaxation_ml () =
  let grid = Grid.uniform ~t_end:2.0 ~m:400 in
  let r = Opm.simulate_fractional ~grid ~alpha:0.5 rc [| step |] in
  check_bool "tracks Mittag-Leffler" true
    (max_err_against (Special.ml_step_response ~alpha:0.5 ~lambda:1.0) r < 1e-2)

let test_fractional_alpha1_equals_linear () =
  let grid = Grid.uniform ~t_end:3.0 ~m:64 in
  let rf = Opm.simulate_fractional ~grid ~alpha:1.0 rc [| step |] in
  let rl = Opm.simulate_linear ~grid rc [| step |] in
  close "identical" 0.0 (Mat.max_abs_diff rf.Sim_result.x rl.Sim_result.x) ~tol:1e-10

let test_fractional_alpha_sweep_monotone_start () =
  (* smaller α responds faster at short times for relaxation *)
  let grid = Grid.uniform ~t_end:1.0 ~m:128 in
  let early alpha =
    let r = Opm.simulate_fractional ~grid ~alpha rc [| step |] in
    (Sim_result.output r 0).(6)
  in
  let a03 = early 0.3 and a06 = early 0.6 and a09 = early 0.9 in
  check_bool "fractional memory effect" true (a03 > a06 && a06 > a09)

let test_fractional_adaptive_grid () =
  (* geometric (distinct-step) grid exercises the Parlett path end-to-end *)
  let grid = Grid.geometric ~t_end:2.0 ~m:24 ~ratio:1.2 in
  let r = Opm.simulate_fractional ~grid ~alpha:0.5 rc [| step |] in
  check_bool "tracks Mittag-Leffler" true
    (max_err_against (Special.ml_step_response ~alpha:0.5 ~lambda:1.0) r < 5e-2)

let test_fractional_convergence () =
  let err m =
    let grid = Grid.uniform ~t_end:2.0 ~m in
    max_err_against
      (Special.ml_step_response ~alpha:0.5 ~lambda:1.0)
      (Opm.simulate_fractional ~grid ~alpha:0.5 rc [| step |])
  in
  let e1 = err 100 and e2 = err 400 in
  check_bool "refines" true (e2 < 0.6 *. e1)

(* ---------- high-order / multi-term ---------- *)

let test_second_order_oscillator () =
  (* ẍ = −x + u, step: x = 1 − cos t *)
  let mt =
    Multi_term.make ~terms:[ (Csr.eye 1, 2.0) ]
      ~a:(Csr.of_dense (Mat.of_arrays [| [| -1.0 |] |]))
      ~b:(Mat.eye 1) ~c:(Mat.eye 1) ()
  in
  let grid = Grid.uniform ~t_end:6.28 ~m:1000 in
  let r = Opm.simulate_multi_term ~grid mt [| step |] in
  check_bool "1 − cos t" true (max_err_against (fun t -> 1.0 -. cos t) r < 1e-4)

let test_damped_oscillator () =
  (* ẍ + 2ζω ẋ + ω² x = ω² u with ζ = 0.5, ω = 2 *)
  let zeta = 0.5 and w = 2.0 in
  let mt =
    Multi_term.second_order ~m2:(Csr.eye 1)
      ~m1:(Csr.scale (2.0 *. zeta *. w) (Csr.eye 1))
      ~m0:(Csr.scale (w *. w) (Csr.eye 1))
      ~b:(Mat.scale (w *. w) (Mat.eye 1))
      ~c:(Mat.eye 1) ()
  in
  let grid = Grid.uniform ~t_end:8.0 ~m:2000 in
  let r = Opm.simulate_multi_term ~grid mt [| step |] in
  let wd = w *. sqrt (1.0 -. (zeta *. zeta)) in
  let exact t =
    1.0
    -. (exp (-.zeta *. w *. t)
       *. (cos (wd *. t) +. (zeta *. w /. wd *. sin (wd *. t))))
  in
  check_bool "underdamped step response" true (max_err_against exact r < 5e-4)

let test_mixed_order_terms () =
  (* ẋ + d^{1/2}x = −x + u has no elementary solution; check engine
     consistency against the Kronecker oracle instead *)
  let m = 8 in
  let grid = Grid.uniform ~t_end:1.0 ~m in
  let d1 = Block_pulse.differential_matrix grid in
  let d12 = Block_pulse.fractional_differential_matrix grid 0.5 in
  let e = Mat.eye 1 and a = Mat.of_arrays [| [| -1.0 |] |] in
  let bu = Mat.init 1 m (fun _ _ -> 1.0) in
  let terms = [ (e, d1); (e, d12) ] in
  let x1 = Engine.solve_dense ~terms ~a ~bu () in
  let x2 = Engine.solve_dense_kron ~terms ~a ~bu in
  close "column = kron" 0.0 (Mat.max_abs_diff x1 x2) ~tol:1e-9

let test_companion_form () =
  (* damped oscillator: OPM on the 2nd-order form vs trapezoidal on the
     companion first-order form *)
  let zeta = 0.4 and w = 3.0 in
  let mt =
    Multi_term.second_order ~m2:(Csr.eye 1)
      ~m1:(Csr.scale (2.0 *. zeta *. w) (Csr.eye 1))
      ~m0:(Csr.scale (w *. w) (Csr.eye 1))
      ~b:(Mat.scale (w *. w) (Mat.eye 1))
      ~c:(Mat.eye 1) ()
  in
  let first = Multi_term.to_first_order mt in
  check_int "doubled unknowns" 2 (Descriptor.order first);
  let t_end = 6.0 in
  let m = 3000 in
  let opm = Opm.simulate_multi_term ~grid:(Grid.uniform ~t_end ~m) mt [| step |] in
  let trap =
    Opm_transient.Stepper.solve ~scheme:Opm_transient.Stepper.Trapezoidal
      ~h:(t_end /. float_of_int m) ~t_end first [| step |]
  in
  check_bool "agrees below −55 dB" true
    (Error.waveform_error_db ~reference:opm.Sim_result.outputs trap < -55.0)

let test_companion_first_order_passthrough () =
  let mt = Multi_term.of_linear rc in
  let back = Multi_term.to_first_order mt in
  check_int "no augmentation" 1 (Descriptor.order back)

let test_companion_rejects_fractional () =
  let mt = Multi_term.of_fractional ~alpha:0.5 rc in
  check_bool "raises" true
    (try
       ignore (Multi_term.to_first_order mt);
       false
     with Invalid_argument _ -> true)

let test_input_derivative_handling () =
  (* ẋ = −x + u̇ with u = ramp(slope 1): u̇ = step, so the response must
     equal the step response *)
  let mt_deriv =
    Multi_term.make ~input_order:1 ~terms:[ (Csr.eye 1, 1.0) ]
      ~a:(Csr.of_dense (Mat.of_arrays [| [| -1.0 |] |]))
      ~b:(Mat.eye 1) ~c:(Mat.eye 1) ()
  in
  let grid = Grid.uniform ~t_end:4.0 ~m:256 in
  let r = Opm.simulate_multi_term ~grid mt_deriv [| Source.Ramp { slope = 1.0; delay = 0.0 } |] in
  check_bool "du/dt of ramp acts like step" true
    (max_err_against (fun t -> 1.0 -. exp (-.t)) r < 2e-2)

(* ---------- initial conditions & integral form ---------- *)

let test_x0_discharge () =
  (* ẋ = −x, x(0) = 1: x = e^{−t} *)
  let grid = Grid.uniform ~t_end:5.0 ~m:400 in
  let r = Opm.simulate_linear ~x0:[| 1.0 |] ~grid rc [| Source.Dc 0.0 |] in
  check_bool "tracks e^{−t}" true (max_err_against (fun t -> exp (-.t)) r < 1e-4)

let test_x0_fractional_discharge () =
  (* d^α x = −x, x(0) = 1: x = E_α(−t^α) *)
  let grid = Grid.uniform ~t_end:2.0 ~m:600 in
  let r =
    Opm.simulate_fractional ~x0:[| 1.0 |] ~grid ~alpha:0.5 rc [| Source.Dc 0.0 |]
  in
  let y = Sim_result.output r 0 in
  let mids = Grid.midpoints grid in
  let err = ref 0.0 in
  Array.iteri
    (fun i t ->
      if i > 5 then
        err :=
          Float.max !err
            (Float.abs (y.(i) -. Special.ml_relaxation ~alpha:0.5 ~lambda:1.0 t)))
    mids;
  check_bool "tracks Mittag-Leffler" true (!err < 2e-3)

let test_x0_superposition () =
  (* response(x0, u) = response(x0, 0) + response(0, u) *)
  let sys = Descriptor.random_stable ~seed:21 ~n:5 ~p:1 ~q:1 () in
  let grid = Grid.uniform ~t_end:1.0 ~m:64 in
  let x0 = Array.init 5 (fun i -> 0.3 *. float_of_int (i - 2)) in
  let both = Opm.simulate_linear ~x0 ~grid sys [| step |] in
  let only_x0 = Opm.simulate_linear ~x0 ~grid sys [| Source.Dc 0.0 |] in
  let only_u = Opm.simulate_linear ~grid sys [| step |] in
  let sum = Mat.add only_x0.Sim_result.x only_u.Sim_result.x in
  (* subtract the doubly-counted x0 offset: both solutions include x0 in
     only_x0, and only_u starts at 0 — the sum double counts nothing *)
  close "superposition" 0.0 (Mat.max_abs_diff both.Sim_result.x sum) ~tol:1e-9

let test_x0_size_check () =
  let grid = Grid.uniform ~t_end:1.0 ~m:4 in
  check_bool "raises" true
    (try
       ignore (Opm.simulate_linear ~x0:[| 1.0; 2.0 |] ~grid rc [| step |]);
       false
     with Invalid_argument _ -> true)

let test_integral_form_equals_differential () =
  let sys = Descriptor.random_stable ~seed:33 ~n:6 ~p:1 ~q:2 () in
  let src = [| Source.Sine { amplitude = 1.0; freq_hz = 0.4; phase = 0.2; offset = 0.1 } |] in
  List.iter
    (fun grid ->
      let ri = Opm.simulate_linear_integral ~grid sys src in
      let rd = Opm.simulate_linear ~grid sys src in
      close "integral = differential" 0.0
        (Mat.max_abs_diff ri.Sim_result.x rd.Sim_result.x)
        ~tol:1e-10)
    [ Grid.uniform ~t_end:3.0 ~m:32; Grid.adaptive [| 0.5; 0.2; 0.8; 0.1 |] ]

let test_integral_form_x0 () =
  let grid = Grid.uniform ~t_end:5.0 ~m:400 in
  let r =
    Opm.simulate_linear_integral ~x0:[| 1.0 |] ~grid rc [| Source.Dc 0.0 |]
  in
  check_bool "discharge via integral form" true
    (max_err_against (fun t -> exp (-.t)) r < 1e-4)

(* Regression for the integral entry point's API seam: it used to take
   no [?backend]/[?health]/[?window], so it silently ran dense and
   outside the health cascade while every differential entry point
   honoured them. The full signature must now hold: sparse agrees with
   dense, the windowed running-sum streaming agrees with the global
   solve (to roundoff — the coupling is exact), and a health collector
   sees every column. *)
let test_integral_form_full_signature () =
  let sys = Descriptor.random_stable ~seed:44 ~n:6 ~p:1 ~q:1 () in
  let src =
    [| Source.Sine { amplitude = 1.0; freq_hz = 0.4; phase = 0.1; offset = 0.2 } |]
  in
  let m = 64 in
  let grid = Grid.uniform ~t_end:3.0 ~m in
  let x0 = Array.init 6 (fun i -> 0.2 *. float_of_int (i - 3)) in
  let dense = Opm.simulate_linear_integral ~backend:`Dense ~x0 ~grid sys src in
  let sparse =
    Opm.simulate_linear_integral ~backend:`Sparse ~x0 ~grid sys src
  in
  close "sparse = dense (integral form)" 0.0
    (Mat.max_abs_diff dense.Sim_result.x sparse.Sim_result.x)
    ~tol:1e-9;
  List.iter
    (fun w ->
      let windowed =
        Opm.simulate_linear_integral ~x0 ~window:w ~grid sys src
      in
      close
        (Printf.sprintf "windowed (w = %d) = global (integral form)" w)
        0.0
        (Mat.max_abs_diff windowed.Sim_result.x dense.Sim_result.x)
        ~tol:1e-10)
    [ 16; 24 (* short last window *) ];
  let health = Opm_robust.Health.create () in
  let r = Opm.simulate_linear_integral ~health ~grid sys src in
  check_int "health sees every integral column" m
    (Opm_robust.Health.columns health);
  check_bool "health report carried on the result" true
    (match r.Sim_result.health with Some h -> h == health | None -> false)

let test_legendre_solver_spectral () =
  (* smooth input: a handful of Legendre coefficients beats many block
     pulses *)
  let src = [| Source.Sine { amplitude = 1.0; freq_hz = 0.4; phase = 0.2; offset = 0.1 } |] in
  let t_end = 5.0 in
  let fine =
    Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m:20000) rc src
  in
  let wl = Legendre_solver.simulate ~t_end ~m:14 ~sample_count:100 rc src in
  let err_leg =
    Error.waveform_error_db
      ~reference:(Waveform.resample fine.Sim_result.outputs wl.Waveform.times)
      wl
  in
  let rb = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m:14) rc src in
  let err_bpf =
    Error.waveform_error_db ~reference:fine.Sim_result.outputs
      rb.Sim_result.outputs
  in
  check_bool
    (Printf.sprintf "legendre %.1f dB far below bpf %.1f dB at m=14" err_leg
       err_bpf)
    true
    (err_leg < err_bpf -. 20.0)

let test_legendre_solver_x0 () =
  let wl =
    Legendre_solver.simulate ~x0:[| 1.0 |] ~t_end:4.0 ~m:16 ~sample_count:60 rc
      [| Source.Dc 0.0 |]
  in
  let y = Waveform.channel wl 0 in
  let err = ref 0.0 in
  Array.iteri
    (fun i t -> err := Float.max !err (Float.abs (y.(i) -. exp (-.t))))
    wl.Waveform.times;
  check_bool "spectral discharge" true (!err < 1e-6)

(* ---------- backends and result packaging ---------- *)

let test_backend_agreement () =
  let sys = Descriptor.random_stable ~seed:11 ~n:20 ~p:2 ~q:2 () in
  let grid = Grid.uniform ~t_end:2.0 ~m:32 in
  let srcs = [| step; Source.Dc 0.25 |] in
  let rd = Opm.simulate_linear ~backend:`Dense ~grid sys srcs in
  let rs = Opm.simulate_linear ~backend:`Sparse ~grid sys srcs in
  close "dense = sparse" 0.0 (Mat.max_abs_diff rd.Sim_result.x rs.Sim_result.x)
    ~tol:1e-10

let test_result_waveform_shape () =
  let grid = Grid.uniform ~t_end:1.0 ~m:16 in
  let r = Opm.simulate_linear ~grid rc [| step |] in
  check_int "samples" 16 (Waveform.sample_count r.Sim_result.outputs);
  check_int "channels" 1 (Waveform.channel_count r.Sim_result.outputs);
  check_int "state channels" 1 (Waveform.channel_count r.Sim_result.states);
  close "times are midpoints" (Grid.midpoints grid).(3)
    r.Sim_result.outputs.Waveform.times.(3)

let test_input_coefficients () =
  let grid = Grid.uniform ~t_end:1.0 ~m:4 in
  let u = Opm.input_coefficients ~grid [| Source.Ramp { slope = 1.0; delay = 0.0 } |] in
  (* coefficients are interval averages of t: (i+1/2)h *)
  close "u0" 0.125 (Mat.get u 0 0) ~tol:1e-12;
  close "u3" 0.875 (Mat.get u 0 3) ~tol:1e-12

(* ---------- adaptive ---------- *)

let test_adaptive_accuracy () =
  let result, _stats = Adaptive.solve ~tol:1e-5 ~t_end:5.0 rc [| step |] in
  check_bool "within tolerance band" true
    (max_err_against (fun t -> 1.0 -. exp (-.t)) result < 1e-4)

let test_adaptive_grows_steps () =
  let result, stats = Adaptive.solve ~tol:1e-4 ~h_init:1e-3 ~t_end:10.0 rc [| step |] in
  let s = Grid.steps result.Sim_result.grid in
  let h_max = Array.fold_left Float.max 0.0 s in
  let h_min = Array.fold_left Float.min Float.infinity s in
  check_bool "step range spans >4x" true (h_max /. h_min >= 4.0);
  check_bool "few factorizations" true (stats.Adaptive.factorizations < 20)

let test_adaptive_covers_span () =
  let result, _ = Adaptive.solve ~tol:1e-4 ~t_end:3.0 rc [| step |] in
  close "steps sum to t_end" 3.0 (Grid.t_end result.Sim_result.grid) ~tol:1e-9

let test_adaptive_matches_uniform () =
  let sys = Descriptor.random_stable ~seed:3 ~n:6 ~p:1 ~q:1 () in
  let result, _ = Adaptive.solve ~tol:1e-7 ~t_end:2.0 sys [| step |] in
  let uniform = Opm.simulate_linear ~grid:(Grid.uniform ~t_end:2.0 ~m:4096) sys [| step |] in
  let err =
    Error.waveform_error_db ~reference:uniform.Sim_result.outputs
      result.Sim_result.outputs
  in
  check_bool "close to dense uniform answer" true (err < -60.0)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "descriptor",
        [
          t "dims" test_descriptor_dims;
          t "validation" test_descriptor_validation;
          t "observe states" test_descriptor_observe_states;
          t "random stable decays" test_descriptor_random_stable_is_stable;
        ] );
      ( "multi-term",
        [
          t "validation" test_multi_term_validation;
          t "of_linear" test_multi_term_of_linear;
          t "second order" test_multi_term_second_order;
        ] );
      ( "engine",
        [
          t "column = kron (paper eq. 15)" test_engine_column_equals_kron;
          t "sparse = dense" test_engine_sparse_equals_dense;
          t "multi-term vs kron" test_engine_multi_term_kron;
          t "residual of matrix equation" test_engine_residual;
          t "linear fast path" test_linear_fast_path_equals_generic;
          t "salt skip bit-identical" test_linear_salt_skip_bit_identity;
          t "factor cache bounded" test_factor_cache_bounded;
          t "fast path on 512-step adaptive grid" test_linear_fast_path_adaptive_512;
          t "dimension check" test_engine_dimension_check;
        ] );
      ( "linear",
        [
          t "RC step vs analytic" test_linear_rc_step;
          t "RC sine vs analytic" test_linear_rc_sine;
          t "DAE algebraic constraint" test_linear_dae;
          t "convergence order" test_linear_convergence_order;
          t "superposition" test_linear_two_inputs;
          t "source count mismatch" test_linear_source_count_mismatch;
        ] );
      ( "fractional",
        [
          t "relaxation vs Mittag-Leffler" test_fractional_relaxation_ml;
          t "α = 1 equals linear" test_fractional_alpha1_equals_linear;
          t "memory effect across α" test_fractional_alpha_sweep_monotone_start;
          t "adaptive grid (Parlett path)" test_fractional_adaptive_grid;
          t "mesh refinement" test_fractional_convergence;
        ] );
      ( "high-order",
        [
          t "harmonic oscillator" test_second_order_oscillator;
          t "damped oscillator" test_damped_oscillator;
          t "mixed integer + fractional" test_mixed_order_terms;
          t "companion form vs OPM" test_companion_form;
          t "companion passthrough" test_companion_first_order_passthrough;
          t "companion rejects fractional" test_companion_rejects_fractional;
          t "input derivative" test_input_derivative_handling;
        ] );
      ( "x0-and-integral-form",
        [
          t "linear discharge" test_x0_discharge;
          t "fractional discharge" test_x0_fractional_discharge;
          t "superposition with x0" test_x0_superposition;
          t "x0 size check" test_x0_size_check;
          t "integral = differential" test_integral_form_equals_differential;
          t "integral form with x0" test_integral_form_x0;
          t "integral form full signature" test_integral_form_full_signature;
          t "legendre spectral accuracy" test_legendre_solver_spectral;
          t "legendre with x0" test_legendre_solver_x0;
        ] );
      ( "api",
        [
          t "backend agreement" test_backend_agreement;
          t "result shape" test_result_waveform_shape;
          t "input coefficients" test_input_coefficients;
        ] );
      ( "adaptive",
        [
          t "accuracy" test_adaptive_accuracy;
          t "grows steps" test_adaptive_grows_steps;
          t "covers span" test_adaptive_covers_span;
          t "matches uniform reference" test_adaptive_matches_uniform;
        ] );
    ]
