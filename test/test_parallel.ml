(* Tests for the domain pool: chunked scheduling, exception
   propagation, and the bit-identical serial/parallel contract of the
   analyses wired onto it. *)

open Opm_numkit
open Opm_basis
open Opm_circuit
open Opm_core
open Opm_analysis
module Pool = Opm_parallel.Pool

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- pool primitives ---------- *)

let test_pool_map () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          check_int "domains" domains (Pool.domains pool);
          let xs = Array.init 100 Fun.id in
          let squares = Pool.map pool (fun x -> x * x) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "map, %d domains" domains)
            (Array.map (fun x -> x * x) xs)
            squares;
          Alcotest.(check (array int)) "empty" [||] (Pool.map pool (fun x -> x) [||])))
    [ 1; 2; 3 ]

let test_pool_parallel_for () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let n = 1000 in
          let out = Array.make n (-1) in
          Pool.parallel_for pool ~n (fun i -> out.(i) <- 2 * i);
          check_bool
            (Printf.sprintf "every index visited once, %d domains" domains)
            true
            (Array.for_all Fun.id (Array.mapi (fun i v -> v = 2 * i) out));
          Pool.parallel_for pool ~n:0 (fun _ -> assert false)))
    [ 1; 2; 4 ]

let test_pool_init_mapi () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (array int))
        "init" (Array.init 37 (fun i -> 3 * i))
        (Pool.init pool 37 (fun i -> 3 * i));
      Alcotest.(check (array int))
        "mapi"
        (Array.mapi (fun i x -> i - x) (Array.make 37 5))
        (Pool.mapi pool (fun i x -> i - x) (Array.make 37 5)))

exception Boom of int

let test_pool_exception () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          check_bool
            (Printf.sprintf "exception reaches caller, %d domains" domains)
            true
            (try
               Pool.parallel_for pool ~n:100 (fun i ->
                   if i = 57 then raise (Boom i));
               false
             with Boom 57 -> true);
          (* the pool survives a failed job *)
          let xs = Pool.init pool 10 Fun.id in
          Alcotest.(check (array int)) "pool reusable after failure"
            (Array.init 10 Fun.id) xs))
    [ 1; 2; 4 ]

let test_pool_nested () =
  (* a nested parallel call from inside a job must run serially rather
     than deadlock on the busy pool *)
  Pool.with_pool ~domains:2 (fun pool ->
      let out = Array.make 16 0.0 in
      Pool.parallel_for pool ~n:16 (fun i ->
          let inner = Pool.map pool (fun x -> float_of_int (x + i)) [| 1; 2; 3 |] in
          out.(i) <- Array.fold_left ( +. ) 0.0 inner);
      Array.iteri
        (fun i v -> close (Printf.sprintf "nested %d" i) (float_of_int ((3 * i) + 6)) v)
        out)

let test_default_domains_override () =
  let saved = Pool.default_domains () in
  Pool.set_default_domains 3;
  check_int "override" 3 (Pool.default_domains ());
  Pool.with_pool (fun pool -> check_int "pool picks override up" 3 (Pool.domains pool));
  Pool.set_default_domains saved

(* ---------- bit-identical serial vs parallel analyses ---------- *)

let ladder_system () =
  let input = Opm_signal.Source.Step { amplitude = 1.0; delay = 0.0 } in
  let net = Generators.rc_ladder ~sections:6 ~input () in
  Mna.stamp_linear ~outputs:[ Mna.Node_voltage "n6" ] net

let test_par_mul_identical () =
  let st = Random.State.make [| 11 |] in
  let a = Mat.init 57 43 (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let b = Mat.init 43 61 (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let serial = Mat.mul a b in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          close
            (Printf.sprintf "par_mul = mul, %d domains" domains)
            0.0
            (Mat.max_abs_diff serial (Mat.par_mul pool a b))
            ~tol:0.0))
    [ 1; 2; 4 ]

let test_ac_sweep_identical () =
  let sys, _ = ladder_system () in
  let sweep pool =
    Ac.sweep ~pool ~omega_min:1e2 ~omega_max:1e8 ~points:33 sys
  in
  let serial = Pool.with_pool ~domains:1 sweep in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = sweep pool in
      List.iter2
        (fun p q ->
          close "omega" p.Ac.omega q.Ac.omega ~tol:0.0;
          close "response bit-identical" 0.0
            (Cmat.max_abs_diff p.Ac.response q.Ac.response)
            ~tol:0.0)
        serial parallel)

let test_param_sweep_identical () =
  let input = Opm_signal.Source.Step { amplitude = 1.0; delay = 0.0 } in
  let evaluate r =
    let net = Generators.rc_ladder ~r ~sections:4 ~input () in
    let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "n4" ] net in
    let grid = Grid.uniform ~t_end:2e-5 ~m:64 in
    let res = Opm.simulate_linear ~grid sys srcs in
    (Sim_result.output res 0).(63)
  in
  let values = Array.init 12 (fun k -> 500.0 +. (250.0 *. float_of_int k)) in
  let serial = Sweep.run evaluate values in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = Sweep.run ~pool evaluate values in
      check_bool "param sweep bit-identical" true
        (Array.for_all2
           (fun (v, m) (v', m') -> v = v' && m = m')
           serial parallel))

let test_monte_carlo_identical () =
  let evaluate x = sin (100.0 *. x) +. (x *. x) in
  let sampler st = Random.State.float st 10.0 in
  let serial = Sweep.monte_carlo ~samples:200 ~sampler evaluate in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = Sweep.monte_carlo ~pool ~samples:200 ~sampler evaluate in
      check_bool "stats identical" true (serial = parallel))

let test_freq_domain_identical () =
  let sys, srcs = ladder_system () in
  let solve pool =
    Opm_transient.Freq_domain.solve ~pool ~n_samples:64 ~alpha:1.0 ~t_end:2e-5
      sys srcs
  in
  let serial = Pool.with_pool ~domains:1 solve in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = solve pool in
      check_bool "fft transient bit-identical" true
        (Opm_signal.Waveform.channel serial 0
        = Opm_signal.Waveform.channel parallel 0))

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          t "map" test_pool_map;
          t "parallel_for" test_pool_parallel_for;
          t "init + mapi" test_pool_init_mapi;
          t "exception propagation" test_pool_exception;
          t "nested parallelism" test_pool_nested;
          t "default override" test_default_domains_override;
        ] );
      ( "determinism",
        [
          t "par_mul" test_par_mul_identical;
          t "ac sweep" test_ac_sweep_identical;
          t "parameter sweep" test_param_sweep_identical;
          t "monte carlo" test_monte_carlo_identical;
          t "freq-domain transient" test_freq_domain_identical;
        ] );
    ]
