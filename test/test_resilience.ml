(* Crash-safety suite: budget/deadline enforcement, checkpoint
   envelope integrity, Guard retry combinators, the seeded fault
   matrix, and the kill/resume differential on the Table-I windowed
   kernel.

   The two solver-level properties mirror the `bench resilience`
   gates at test granularity: (1) every injected fault yields either a
   structured [Opm_error.Error] / [Window.Interrupted] or a correct
   recovery — never a silently wrong answer and never NaN/Inf in a
   returned result; (2) a run killed at any window boundary by an
   injected checkpoint-write ENOSPC and resumed from the surviving
   checkpoint is bit-identical to the uninterrupted run.

   Seeded from OPM_PROP_SEED (default 20260806), same protocol as
   test_props.ml. *)

open Opm_numkit
open Opm_basis
open Opm_core
open Opm_robust

let base_seed =
  match Sys.getenv_opt "OPM_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 20260806)
  | None -> 20260806

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- the Table-I windowed kernel (shared by the solver-level
   tests); m = 256 keeps the FFT history path engaged so the fft-block
   fault site is live ---------- *)

let m = 256
let w = 64
let nwin = (m + w - 1) / w

let solve ?budget ?checkpoint ?resume_from () =
  let sys = Opm_circuit.Tline.model () in
  let srcs = Opm_circuit.Tline.inputs () in
  let grid = Grid.uniform ~t_end:Opm_circuit.Tline.t_end ~m in
  Opm.simulate_fractional ?budget ?checkpoint ~checkpoint_every:1 ?resume_from
    ~window:w ~grid ~alpha:Opm_circuit.Tline.alpha sys srcs

let bits_equal a b =
  let ra, ca = Mat.dims a and rb, cb = Mat.dims b in
  ra = rb && ca = cb
  &&
  try
    for i = 0 to ra - 1 do
      for j = 0 to ca - 1 do
        if
          not
            (Int64.equal
               (Int64.bits_of_float (Mat.get a i j))
               (Int64.bits_of_float (Mat.get b i j)))
        then raise Exit
      done
    done;
    true
  with Exit -> false

let all_finite x =
  let r, c = Mat.dims x in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if not (Float.is_finite (Mat.get x i j)) then raise Exit
      done
    done;
    true
  with Exit -> false

let with_tmp f =
  let path = Filename.temp_file "opm_test_resilience" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------- Budget ---------- *)

let test_budget_create_validation () =
  let raises f =
    match f () with
    | (_ : Budget.t) -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "deadline_s <= 0" true
    (raises (fun () -> Budget.create ~deadline_s:0.0 ()));
  check_bool "max_factors <= 0" true
    (raises (fun () -> Budget.create ~max_factors:0 ()));
  check_bool "max_heap_mb <= 0" true
    (raises (fun () -> Budget.create ~max_heap_mb:(-1.0) ()));
  (* no limits: never trips *)
  let b = Budget.create () in
  for _ = 1 to 100 do
    Budget.check_deadline b ~site:"test";
    Budget.charge_factor b ~site:"test"
  done;
  check_int "checks counted" 100 (Budget.checks b);
  check_int "factors counted" 100 (Budget.factors b)

let test_budget_deadline_trips () =
  let b = Budget.create ~deadline_s:0.001 () in
  Unix.sleepf 0.005;
  (* first check always consults the clock, so the stride never delays
     the very first detection opportunity *)
  match Budget.check_deadline b ~site:"unit" with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Opm_error.Error (Opm_error.Deadline_exceeded { site; _ }) ->
      Alcotest.(check string) "site" "unit" site

let test_budget_deadline_stride () =
  (* between clock reads the check is a pure counter increment: checks
     2..32 must not trip even though the deadline has passed *)
  let b = Budget.create ~deadline_s:0.001 () in
  (try Budget.check_deadline b ~site:"warm" with Opm_error.Error _ -> ());
  Unix.sleepf 0.005;
  for _ = 2 to 32 do
    Budget.check_deadline b ~site:"quiet"
  done;
  (* the 33rd check (1 mod 32) reads the clock again *)
  (match Budget.check_deadline b ~site:"trip" with
  | () -> Alcotest.fail "expected the stride boundary to trip"
  | exception Opm_error.Error (Opm_error.Deadline_exceeded _) -> ());
  (* check_deadline_now ignores the stride *)
  let b2 = Budget.create ~deadline_s:0.001 () in
  (try Budget.check_deadline_now b2 ~site:"x" with Opm_error.Error _ -> ());
  Unix.sleepf 0.005;
  match Budget.check_deadline_now b2 ~site:"now" with
  | () -> Alcotest.fail "check_deadline_now must always read the clock"
  | exception Opm_error.Error (Opm_error.Deadline_exceeded _) -> ()

let test_budget_factor_cap () =
  let b = Budget.create ~max_factors:2 () in
  Budget.charge_factor b ~site:"f";
  Budget.charge_factor b ~site:"f";
  match Budget.charge_factor b ~site:"f" with
  | () -> Alcotest.fail "expected Budget_exhausted"
  | exception
      Opm_error.Error (Opm_error.Budget_exhausted { what; used; limit; _ }) ->
      Alcotest.(check string) "what" "factorisations" what;
      check_int "used" 3 used;
      check_int "limit" 2 limit

let test_budget_heap_cap () =
  let b = Budget.create ~max_heap_mb:1.0 () in
  Budget.charge_bytes b ~site:"h" 500_000;
  check_int "charged" 500_000 (Budget.heap_bytes b);
  (match Budget.charge_bytes b ~site:"h" 800_000 with
  | () -> Alcotest.fail "expected Budget_exhausted"
  | exception Opm_error.Error (Opm_error.Budget_exhausted { what; _ }) ->
      Alcotest.(check string) "what" "heap_bytes" what);
  Budget.release_bytes b 10_000_000;
  check_int "release clamps at zero" 0 (Budget.heap_bytes b);
  check_bool "peak survives release" true (Budget.peak_heap_bytes b > 0)

(* ---------- Checkpoint envelope ---------- *)

let test_checkpoint_float_codec () =
  let special =
    [| 0.0; -0.0; 1.5; -1.0e-300; Float.nan; Float.infinity;
       Float.neg_infinity; Float.min_float; Float.max_float |]
  in
  let back = Checkpoint.decode_floats (Checkpoint.encode_floats special) in
  check_int "length" (Array.length special) (Array.length back);
  Array.iteri
    (fun i v ->
      check_bool
        (Printf.sprintf "element %d bit-exact" i)
        true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float back.(i))))
    special

let test_checkpoint_roundtrip () =
  with_tmp @@ fun path ->
  let payload =
    Opm_obs.Json.Obj
      [
        ("window", Opm_obs.Json.Int 3);
        ("state", Checkpoint.encode_floats [| 1.0; Float.nan; -0.0 |]);
      ]
  in
  Checkpoint.save ~path payload;
  let back = Checkpoint.load ~path in
  check_bool "payload round-trips" true (back = payload);
  check_bool "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"))

let test_checkpoint_corruption () =
  with_tmp @@ fun path ->
  let expect_checkpoint_error what f =
    match f () with
    | (_ : Opm_obs.Json.t) ->
        Alcotest.failf "%s: expected Checkpoint_error" what
    | exception Opm_error.Error (Opm_error.Checkpoint_error _) -> ()
  in
  expect_checkpoint_error "missing file" (fun () ->
      Checkpoint.load ~path:(path ^ ".does-not-exist"));
  Checkpoint.save ~path (Opm_obs.Json.Obj [ ("k", Opm_obs.Json.Int 7) ]);
  (* flip one digit of the stored integer: the envelope checksum no
     longer matches the payload text *)
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let corrupt =
    String.map (fun c -> if c = '7' then '8' else c) text
  in
  let oc = open_out_bin path in
  output_string oc corrupt;
  close_out oc;
  expect_checkpoint_error "checksum mismatch" (fun () ->
      Checkpoint.load ~path);
  (* wrong schema tag *)
  let oc = open_out_bin path in
  output_string oc {|{"schema":"other-v9","version":1,"checksum":"0","payload":{}}|};
  close_out oc;
  expect_checkpoint_error "wrong schema" (fun () -> Checkpoint.load ~path);
  (* unparsable *)
  let oc = open_out_bin path in
  output_string oc "{not json";
  close_out oc;
  expect_checkpoint_error "parse failure" (fun () -> Checkpoint.load ~path)

(* ---------- Guard combinators ---------- *)

let test_guard_retry () =
  (* succeeds on the third call; the failing calls sleep a seeded
     backoff so the schedule is replayable *)
  let calls = ref 0 in
  let v =
    Guard.retry ~attempts:5 ~backoff_s:1e-4 ~seed:base_seed (fun k ->
        incr calls;
        if k < 2 then failwith "transient" else k)
  in
  check_int "returned attempt" 2 v;
  check_int "calls" 3 !calls;
  (* exhaustion re-raises the last exception *)
  let calls = ref 0 in
  (match
     Guard.retry ~attempts:3 ~backoff_s:1e-4 ~seed:base_seed (fun _ ->
         incr calls;
         failwith "always")
   with
  | (_ : int) -> Alcotest.fail "expected exhaustion"
  | exception Failure m -> Alcotest.(check string) "last exn" "always" m);
  check_int "bounded attempts" 3 !calls;
  (* retry_on filters: a non-matching exception propagates on call 1 *)
  let calls = ref 0 in
  (match
     Guard.retry ~attempts:5 ~backoff_s:1e-4 ~seed:base_seed
       ~retry_on:(function Failure _ -> true | _ -> false)
       (fun _ ->
         incr calls;
         raise Exit)
   with
  | (_ : int) -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  check_int "not retried" 1 !calls

let test_guard_with_deadline () =
  match
    Guard.with_deadline ~seconds:0.002 ~site:"unit" (fun check ->
        let t0 = Unix.gettimeofday () in
        while Unix.gettimeofday () -. t0 < 0.1 do
          check ()
        done)
  with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Opm_error.Error (Opm_error.Deadline_exceeded { site; _ }) ->
      Alcotest.(check string) "site" "unit" site

(* ---------- Health artifact bound ---------- *)

let test_health_event_cap () =
  let h = Health.create () in
  let total = Health.event_cap + 88 in
  for c = 1 to total do
    Health.record_event h (Health.Dense_fallback { column = c })
  done;
  check_int "stored is capped" Health.event_cap
    (List.length (Health.events h));
  check_int "all events counted" total (Health.fallback_count h);
  check_int "dropped = overflow" 88 (Health.dropped_events h)

(* ---------- solver-level: budget interrupts carry a resumable
   partial ---------- *)

let test_solve_deadline_interrupts () =
  let budget = Budget.create ~deadline_s:1e-6 () in
  Unix.sleepf 0.002;
  match solve ~budget () with
  | (_ : Sim_result.t) -> Alcotest.fail "expected Window.Interrupted"
  | exception Window.Interrupted { error; completed_windows; _ } -> (
      check_bool "no window completed" true (completed_windows = 0);
      match error with
      | Opm_error.Deadline_exceeded _ -> ()
      | e -> Alcotest.failf "wrong error: %s" (Opm_error.to_string e))

(* ---------- solver-level: the fault matrix (satellite: every
   injected fault is a structured error or a clean recovery) ---------- *)

let test_fault_matrix () =
  Fault.disarm ();
  let reference = (solve ()).Sim_result.x in
  List.iter
    (fun site ->
      List.iter
        (fun kind ->
          let nth = match site with Fault.Factor -> 1 | _ -> 2 in
          let label =
            Printf.sprintf "%s/%s" (Fault.site_to_string site)
              (Fault.kind_to_string kind)
          in
          with_tmp @@ fun ck ->
          Fault.arm { Fault.seed = base_seed; site; kind; nth };
          Fun.protect ~finally:Fault.disarm @@ fun () ->
          match solve ~checkpoint:ck () with
          | r ->
              (* completion is only acceptable when the result is clean:
                 finite everywhere and (if the fault actually fired)
                 equal to the reference within recovery tolerance *)
              check_bool (label ^ ": finite") true (all_finite r.Sim_result.x);
              if Fault.injected_total () > 0 then begin
                let scale = Float.max (Mat.norm_inf reference) 1e-300 in
                let rel =
                  Mat.max_abs_diff r.Sim_result.x reference /. scale
                in
                if not (rel <= 1e-6) then
                  Alcotest.failf "%s: silently wrong answer (rel %.3g)" label
                    rel
              end
          | exception Opm_error.Error _ -> ()
          | exception Window.Interrupted { partial; _ } ->
              check_bool (label ^ ": partial finite") true (all_finite partial)
          | exception e ->
              Alcotest.failf "%s: unstructured exception %s" label
                (Printexc.to_string e))
        Fault.all_kinds)
    Fault.all_sites

(* ---------- solver-level: kill/resume differential (satellite: kill
   at every window boundary, resume, demand bit-identity) ---------- *)

let test_kill_resume_differential () =
  Fault.disarm ();
  let reference = (solve ()).Sim_result.x in
  for k = 1 to nwin do
    with_tmp @@ fun ck ->
    Sys.remove ck;
    (* the k-th checkpoint write dies with an injected ENOSPC, killing
       the run at that window boundary *)
    Fault.arm
      { Fault.seed = base_seed; site = Fault.Checkpoint_write;
        kind = Fault.Enospc; nth = k };
    (match solve ~checkpoint:ck () with
    | (_ : Sim_result.t) ->
        Fault.disarm ();
        Alcotest.failf "boundary %d: expected Window.Interrupted" k
    | exception Window.Interrupted { checkpoint; _ } -> (
        Fault.disarm ();
        match checkpoint with
        | None ->
            (* died on the very first write: nothing to resume from,
               which is the documented cold-restart case *)
            check_int "only the first boundary lacks a checkpoint" 1 k
        | Some path ->
            let resumed = solve ~resume_from:path () in
            if not (bits_equal resumed.Sim_result.x reference) then
              Alcotest.failf
                "boundary %d: resumed run is not bit-identical" k)
    | exception e ->
        Fault.disarm ();
        raise e)
  done

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "create validation" `Quick
            test_budget_create_validation;
          Alcotest.test_case "deadline trips" `Quick
            test_budget_deadline_trips;
          Alcotest.test_case "deadline stride" `Quick
            test_budget_deadline_stride;
          Alcotest.test_case "factor cap" `Quick test_budget_factor_cap;
          Alcotest.test_case "heap cap" `Quick test_budget_heap_cap;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "float codec bit-exact" `Quick
            test_checkpoint_float_codec;
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_checkpoint_corruption;
        ] );
      ( "guard",
        [
          Alcotest.test_case "retry" `Quick test_guard_retry;
          Alcotest.test_case "with_deadline" `Quick test_guard_with_deadline;
        ] );
      ( "health",
        [ Alcotest.test_case "event cap" `Quick test_health_event_cap ] );
      ( "solver",
        [
          Alcotest.test_case "deadline interrupts with partial" `Quick
            test_solve_deadline_interrupts;
          Alcotest.test_case "fault matrix" `Slow test_fault_matrix;
          Alcotest.test_case "kill/resume bit-identity" `Slow
            test_kill_resume_differential;
        ] );
    ]
