open Opm_numkit
open Opm_core

(** Small-signal frequency-domain (AC) analysis of (fractional)
    descriptor systems.

    The transfer matrix of [E d^α x = A x + B u], [y = C x] is
    [G(s) = C (s^α E − A)^{−1} B] evaluated on [s = jω] — the quantity
    the paper's frequency-domain baseline samples; exposing it directly
    gives Bode data and a cross-check between time- and frequency-domain
    solvers (the sine steady state must match the AC gain/phase). *)

type point = {
  omega : float;  (** rad/s *)
  response : Cmat.t;  (** [q×p] complex transfer matrix at this ω *)
}

val transfer : ?alpha:float -> Descriptor.t -> float -> Cmat.t
(** [transfer ~alpha sys omega] is [G(jω)] (default [alpha = 1]).
    Raises [Cmat.Singular] if [jω] hits a pole exactly. *)

val sweep :
  ?pool:Opm_parallel.Pool.t ->
  ?alpha:float ->
  omega_min:float ->
  omega_max:float ->
  points:int ->
  Descriptor.t ->
  point list
(** Logarithmically spaced sweep, [points >= 2],
    [0 < omega_min < omega_max]. The independent per-frequency solves
    run on [pool] (default: the shared {!Opm_parallel.Pool.global}
    pool, sized by [OPM_DOMAINS]); results are bit-identical to the
    serial sweep for any pool size. *)

val gain_db : point -> input:int -> output:int -> float
(** [20·log₁₀ |G_{output,input}(jω)|]. *)

val phase_deg : point -> input:int -> output:int -> float

val bode_csv : input:int -> output:int -> point list -> string
(** "omega,gain_db,phase_deg" rows. *)
