open Opm_numkit
open Opm_sparse
open Opm_core

type point = { omega : float; response : Cmat.t }

let transfer ?(alpha = 1.0) (sys : Descriptor.t) omega =
  let n = Descriptor.order sys in
  let p = Descriptor.input_count sys in
  let q = Descriptor.output_count sys in
  let e = Cmat.of_real (Csr.to_dense sys.Descriptor.e) in
  let a = Cmat.of_real (Csr.to_dense sys.Descriptor.a) in
  let s_alpha = Cmat.jomega_alpha omega alpha in
  let pencil = Cmat.sub (Cmat.scale s_alpha e) a in
  let factor = Cmat.factor pencil in
  let g = Cmat.zeros q p in
  for j = 0 to p - 1 do
    let bj =
      Array.init n (fun r ->
          { Complex.re = Mat.get sys.Descriptor.b r j; im = 0.0 })
    in
    let xj = Cmat.solve_factored factor bj in
    for i = 0 to q - 1 do
      let acc = ref Complex.zero in
      for r = 0 to n - 1 do
        acc :=
          Complex.add !acc
            (Complex.mul
               { Complex.re = Mat.get sys.Descriptor.c i r; im = 0.0 }
               xj.(r))
      done;
      Cmat.set g i j !acc
    done
  done;
  g

let sweep ?pool ?alpha ~omega_min ~omega_max ~points sys =
  if points < 2 then invalid_arg "Ac.sweep: points < 2";
  if omega_min <= 0.0 || omega_max <= omega_min then
    invalid_arg "Ac.sweep: need 0 < omega_min < omega_max";
  let log_min = log10 omega_min and log_max = log10 omega_max in
  let omegas =
    Array.init points (fun k ->
        let frac = float_of_int k /. float_of_int (points - 1) in
        10.0 ** (log_min +. (frac *. (log_max -. log_min))))
  in
  (* every frequency point is an independent factor-and-solve: fan the
     sweep out over the domain pool (bit-identical to the serial loop) *)
  let pool =
    match pool with Some p -> p | None -> Opm_parallel.Pool.global ()
  in
  Array.to_list
    (Opm_parallel.Pool.map pool
       (fun omega -> { omega; response = transfer ?alpha sys omega })
       omegas)

let gain_db pt ~input ~output =
  20.0 *. log10 (Complex.norm (Cmat.get pt.response output input))

let phase_deg pt ~input ~output =
  Complex.arg (Cmat.get pt.response output input) *. 180.0 /. Float.pi

let bode_csv ~input ~output pts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "omega,gain_db,phase_deg\n";
  List.iter
    (fun pt ->
      Buffer.add_string buf
        (Printf.sprintf "%.9g,%.9g,%.9g\n" pt.omega
           (gain_db pt ~input ~output)
           (phase_deg pt ~input ~output)))
    pts;
  Buffer.contents buf
