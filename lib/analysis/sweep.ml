let run ?pool evaluate values =
  let eval v = (v, evaluate v) in
  match pool with
  | None -> Array.map eval values
  | Some p -> Opm_parallel.Pool.map p eval values

let extreme name better pairs =
  if Array.length pairs = 0 then invalid_arg ("Sweep." ^ name ^ ": empty sweep");
  Array.fold_left
    (fun (bv, bm) (v, m) -> if better m bm then (v, m) else (bv, bm))
    pairs.(0) pairs

let argmin pairs = extreme "argmin" ( < ) pairs

let argmax pairs = extreme "argmax" ( > ) pairs

type stats = {
  samples : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  q05 : float;
  median : float;
  q95 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let statistics values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Sweep.statistics: empty array";
  let mean = Array.fold_left ( +. ) 0.0 values /. float_of_int n in
  let var =
    if n = 1 then 0.0
    else
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      /. float_of_int (n - 1)
  in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  {
    samples = n;
    mean;
    std = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    q05 = percentile sorted 0.05;
    median = percentile sorted 0.5;
    q95 = percentile sorted 0.95;
  }

let monte_carlo ?(seed = 42) ?pool ~samples ~sampler evaluate =
  if samples < 1 then invalid_arg "Sweep.monte_carlo: samples < 1";
  let st = Random.State.make [| seed |] in
  (* draw all parameters serially (one shared RNG stream keeps the
     sample set independent of the pool size), then evaluate in
     parallel *)
  let params = Array.init samples (fun _ -> sampler st) in
  let values =
    match pool with
    | None -> Array.map evaluate params
    | Some p -> Opm_parallel.Pool.map p evaluate params
  in
  statistics values

let uniform ~lo ~hi st =
  if hi < lo then invalid_arg "Sweep.uniform: hi < lo";
  lo +. Random.State.float st (hi -. lo)

let gaussian ~mean ~std st =
  let u1 = Float.max 1e-300 (Random.State.float st 1.0) in
  let u2 = Random.State.float st 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
