(** Parameter studies: deterministic sweeps and Monte-Carlo sampling
    over any [parameter → measurement] evaluation (typically: build a
    netlist with the parameter, stamp, simulate, measure).

    Everything is deterministic: Monte-Carlo uses an explicit seed, so
    corner reports are reproducible. *)

val run :
  ?pool:Opm_parallel.Pool.t -> ('a -> float) -> 'a array -> ('a * float) array
(** Evaluate at each parameter value, in order. With [pool] the
    evaluations run in parallel (pass a pool only when [evaluate] is
    pure — most simulate-and-measure closures are); the result array
    order and contents are identical to the serial run. *)

val argmin : ('a * float) array -> 'a * float
(** Raises [Invalid_argument] on an empty sweep. *)

val argmax : ('a * float) array -> 'a * float

type stats = {
  samples : int;
  mean : float;
  std : float;  (** sample standard deviation (n − 1 denominator) *)
  min : float;
  max : float;
  q05 : float;  (** 5th percentile (linear interpolation) *)
  median : float;
  q95 : float;
}

val statistics : float array -> stats
(** Raises [Invalid_argument] on an empty array. *)

val monte_carlo :
  ?seed:int ->
  ?pool:Opm_parallel.Pool.t ->
  samples:int ->
  sampler:(Random.State.t -> 'a) ->
  ('a -> float) ->
  stats
(** Draw [samples] parameters from [sampler] (seeded, default 42),
    evaluate, and summarise. All parameters are drawn first from one
    sequential RNG stream, so the sample set — and hence the statistics
    — are identical whether or not a [pool] parallelises the
    evaluations. *)

val uniform : lo:float -> hi:float -> Random.State.t -> float
(** Convenience samplers for {!monte_carlo}. *)

val gaussian : mean:float -> std:float -> Random.State.t -> float
(** Box–Muller. *)
