(** Waveform measurements — the post-processing vocabulary of circuit
    bench work (rise time, overshoot, settling, delay). All functions
    operate on one channel of a {!Waveform.t}, use linear interpolation
    between samples, and raise [Not_found] when the feature does not
    occur in the record. *)

val final_value : Waveform.t -> channel:int -> float
(** Last sample — the steady state if the record is long enough. *)

val peak : Waveform.t -> channel:int -> float * float
(** [(time, value)] of the maximum absolute excursion. *)

val crossing_time :
  ?direction:[ `Rising | `Falling | `Either ] ->
  Waveform.t ->
  channel:int ->
  level:float ->
  float
(** First time the channel crosses [level] (default [`Either]),
    linearly interpolated. [`Rising] requires the previous sample
    strictly below the level and [`Falling] strictly above; an exact
    hit on the very first sample therefore only satisfies [`Either]. *)

val rise_time :
  ?low_frac:float -> ?high_frac:float -> Waveform.t -> channel:int -> float
(** Time between the [low_frac] and [high_frac] crossings (defaults
    0.1/0.9) of the span from the initial sample to {!final_value}. *)

val overshoot : Waveform.t -> channel:int -> float
(** [(max − final)/|final|] for a rising response (0 if it never
    exceeds the final value). Raises [Invalid_argument] if the final
    value is 0. *)

val settling_time : ?band:float -> Waveform.t -> channel:int -> float
(** Time after which the channel stays within [band] (default 0.02,
    i.e. 2 %) of {!final_value}, relative to the initial-to-final
    span. *)

val delay_between :
  Waveform.t -> from_channel:int -> to_channel:int -> level:float -> float
(** Propagation delay: crossing time of [to_channel] minus crossing
    time of [from_channel] at the same absolute [level]. *)
