let channel_data w ~channel =
  (w.Waveform.times, Waveform.channel w channel)

let final_value w ~channel =
  let _, y = channel_data w ~channel in
  y.(Array.length y - 1)

let peak w ~channel =
  let times, y = channel_data w ~channel in
  let best = ref 0 in
  Array.iteri (fun i v -> if Float.abs v > Float.abs y.(!best) then best := i) y;
  (times.(!best), y.(!best))

let crossing_time ?(direction = `Either) w ~channel ~level =
  let times, y = channel_data w ~channel in
  let n = Array.length y in
  let rec go i =
    if i >= n then raise Not_found
    else begin
      let a = y.(i - 1) -. level and b = y.(i) -. level in
      let crosses =
        match direction with
        | `Rising -> a < 0.0 && b >= 0.0
        | `Falling -> a > 0.0 && b <= 0.0
        | `Either -> a *. b <= 0.0 && a <> b
      in
      if crosses then
        times.(i - 1)
        +. ((times.(i) -. times.(i - 1)) *. (level -. y.(i - 1)) /. (y.(i) -. y.(i - 1)))
      else go (i + 1)
    end
  in
  (* an exact hit on the first sample has no preceding sample, so it
     only counts for `Either — a `Rising/`Falling request must see the
     signal actually come from the required side *)
  match direction with
  | `Either when y.(0) = level -> times.(0)
  | `Either | `Rising | `Falling -> go 1

let rise_time ?(low_frac = 0.1) ?(high_frac = 0.9) w ~channel =
  let _, y = channel_data w ~channel in
  let start = y.(0) and fin = final_value w ~channel in
  let span = fin -. start in
  if span = 0.0 then invalid_arg "Measure.rise_time: flat response";
  let t_low = crossing_time w ~channel ~level:(start +. (low_frac *. span)) in
  let t_high = crossing_time w ~channel ~level:(start +. (high_frac *. span)) in
  t_high -. t_low

let overshoot w ~channel =
  let _, y = channel_data w ~channel in
  let fin = final_value w ~channel in
  if fin = 0.0 then invalid_arg "Measure.overshoot: zero final value";
  let extreme = Array.fold_left Float.max neg_infinity y in
  Float.max 0.0 ((extreme -. fin) /. Float.abs fin)

let settling_time ?(band = 0.02) w ~channel =
  let times, y = channel_data w ~channel in
  let fin = final_value w ~channel in
  let span = Float.abs (fin -. y.(0)) in
  if span = 0.0 then invalid_arg "Measure.settling_time: flat response";
  let tolerance = band *. span in
  (* last index that is OUTSIDE the band *)
  let last_outside = ref (-1) in
  Array.iteri
    (fun i v -> if Float.abs (v -. fin) > tolerance then last_outside := i)
    y;
  if !last_outside < 0 then times.(0)
  else if !last_outside = Array.length y - 1 then raise Not_found
  else times.(!last_outside + 1)

let delay_between w ~from_channel ~to_channel ~level =
  crossing_time w ~channel:to_channel ~level
  -. crossing_time w ~channel:from_channel ~level
