type t =
  | Dc of float
  | Step of { amplitude : float; delay : float }
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      width : float;
      period : float;
    }
  | Sine of { amplitude : float; freq_hz : float; phase : float; offset : float }
  | Exp_decay of { amplitude : float; tau : float }
  | Ramp of { slope : float; delay : float }
  | Pwl of (float * float) list
  | Fn of (float -> float)

let pwl points =
  let rec strictly_increasing = function
    | (t0, _) :: ((t1, _) :: _ as rest) ->
        if t0 >= t1 then invalid_arg "Source.pwl: times must strictly increase"
        else strictly_increasing rest
    | [ _ ] | [] -> ()
  in
  if points = [] then invalid_arg "Source.pwl: empty point list";
  strictly_increasing points;
  Pwl points

let eval_pwl points t =
  let rec go = function
    | [] -> 0.0
    | [ (_, v) ] -> v
    | (t0, v0) :: ((t1, v1) :: _ as rest) ->
        if t < t0 then v0
        else if t <= t1 then v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
        else go rest
  in
  match points with
  | (t0, v0) :: _ when t < t0 -> v0
  | _ -> go points

let pulse_value ~low ~high ~delay ~width ~period t =
  if t < delay then low
  else
    let local =
      if Float.is_finite period && period > 0.0 then
        Float.rem (t -. delay) period
      else t -. delay
    in
    if local < width then high else low

let eval src t =
  match src with
  | Dc v -> v
  | Step { amplitude; delay } -> if t >= delay then amplitude else 0.0
  | Pulse { low; high; delay; width; period } ->
      pulse_value ~low ~high ~delay ~width ~period t
  | Sine { amplitude; freq_hz; phase; offset } ->
      offset +. (amplitude *. sin ((2.0 *. Float.pi *. freq_hz *. t) +. phase))
  | Exp_decay { amplitude; tau } ->
      if t < 0.0 then 0.0 else amplitude *. exp (-.t /. tau)
  | Ramp { slope; delay } -> if t >= delay then slope *. (t -. delay) else 0.0
  | Pwl points -> eval_pwl points t
  | Fn f -> f t

(* adaptive Simpson, used only for the opaque Fn variant; [force] levels
   of subdivision are mandatory so discontinuous integrands (square
   waves) cannot fool the error estimate at the top of the recursion *)
let rec adaptive_simpson f a b fa fm fb whole depth force =
  let m = 0.5 *. (a +. b) in
  let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
  let flm = f lm and frm = f rm in
  let left = (m -. a) /. 6.0 *. (fa +. (4.0 *. flm) +. fm) in
  let right = (b -. m) /. 6.0 *. (fm +. (4.0 *. frm) +. fb) in
  (* a non-finite panel can never satisfy the error test, so without the
     finiteness bail-out a NaN-returning integrand would force the full
     2^depth recursion; propagate the NaN immediately instead *)
  if
    depth <= 0
    || not (Float.is_finite (left +. right))
    || (force <= 0 && Float.abs (left +. right -. whole) < 1e-12)
  then left +. right
  else
    adaptive_simpson f a m fa flm fm left (depth - 1) (force - 1)
    +. adaptive_simpson f m b fm frm fb right (depth - 1) (force - 1)

let integral_fn f a b =
  let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
  let whole = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  adaptive_simpson f a b fa fm fb whole 40 8

(* exact integral of the source over [a, b] *)
let rec integral src a b =
  if b < a then -.integral src b a
  else if a = b then 0.0
  else
    match src with
    | Dc v -> v *. (b -. a)
    | Step { amplitude; delay } ->
        if b <= delay then 0.0
        else amplitude *. (b -. Float.max a delay)
    | Pulse { low; high; delay; width; period } ->
        if b <= delay then low *. (b -. a)
        else if a < delay then
          (low *. (delay -. a))
          +. integral src delay b
        else if Float.is_finite period && period > 0.0 then begin
          (* integrate over whole periods then the remainder *)
          let shift t = t -. delay in
          let one_period = (high *. width) +. (low *. (period -. width)) in
          let frac t =
            (* integral of one period pattern over [0, t], 0 <= t <= period *)
            if t <= width then high *. t
            else (high *. width) +. (low *. (t -. width))
          in
          let cum t =
            (* integral over [delay, delay+t] *)
            let k = floor (t /. period) in
            (k *. one_period) +. frac (t -. (k *. period))
          in
          cum (shift b) -. cum (shift a)
        end
        else begin
          (* one-shot pulse *)
          let hi_start = delay and hi_end = delay +. width in
          let overlap lo hi = Float.max 0.0 (Float.min b hi -. Float.max a lo) in
          (high *. overlap hi_start hi_end)
          +. (low *. ((b -. a) -. overlap hi_start hi_end))
        end
    | Sine { amplitude; freq_hz; phase; offset } ->
        let w = 2.0 *. Float.pi *. freq_hz in
        if w = 0.0 then (offset +. (amplitude *. sin phase)) *. (b -. a)
        else
          (offset *. (b -. a))
          +. (amplitude /. w *. (cos ((w *. a) +. phase) -. cos ((w *. b) +. phase)))
    | Exp_decay { amplitude; tau } ->
        let a' = Float.max a 0.0 in
        if b <= 0.0 then 0.0
        else amplitude *. tau *. (exp (-.a' /. tau) -. exp (-.b /. tau))
    | Ramp { slope; delay } ->
        if b <= delay then 0.0
        else
          let a' = Float.max a delay in
          0.5 *. slope *. (((b -. delay) ** 2.0) -. ((a' -. delay) ** 2.0))
    | Pwl points ->
        (* clip every linear segment to [a, b]; trapezoid areas *)
        let seg_area t0 v0 t1 v1 =
          let lo = Float.max a t0 and hi = Float.min b t1 in
          if hi <= lo then 0.0
          else
            let value t = v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0)) in
            0.5 *. (value lo +. value hi) *. (hi -. lo)
        in
        let rec go acc = function
          | (t0, v0) :: ((t1, v1) :: _ as rest) ->
              go (acc +. seg_area t0 v0 t1 v1) rest
          | [ (t_last, v_last) ] ->
              (* constant extrapolation to the right *)
              if b > t_last then acc +. (v_last *. (b -. Float.max a t_last))
              else acc
          | [] -> acc
        in
        let head_part =
          match points with
          | (t0, v0) :: _ when a < t0 -> v0 *. (Float.min b t0 -. a)
          | _ -> 0.0
        in
        head_part +. go 0.0 points
    | Fn f -> integral_fn f a b

let average src a b =
  if a = b then eval src a else integral src a b /. (b -. a)

let pp ppf = function
  | Dc v -> Format.fprintf ppf "dc(%g)" v
  | Step { amplitude; delay } -> Format.fprintf ppf "step(%g@@%g)" amplitude delay
  | Pulse { low; high; delay; width; period } ->
      Format.fprintf ppf "pulse(%g->%g@@%g,w=%g,T=%g)" low high delay width period
  | Sine { amplitude; freq_hz; phase; offset } ->
      Format.fprintf ppf "sine(A=%g,f=%g,ph=%g,off=%g)" amplitude freq_hz phase offset
  | Exp_decay { amplitude; tau } -> Format.fprintf ppf "exp(%g,tau=%g)" amplitude tau
  | Ramp { slope; delay } -> Format.fprintf ppf "ramp(%g@@%g)" slope delay
  | Pwl points -> Format.fprintf ppf "pwl(%d points)" (List.length points)
  | Fn _ -> Format.fprintf ppf "fn(<opaque>)"
