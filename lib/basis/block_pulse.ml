open Opm_numkit

let project grid f =
  let b = Grid.boundaries grid in
  Array.init (Grid.size grid) (fun i ->
      Opm_signal.Source.average (Opm_signal.Source.Fn f) b.(i) b.(i + 1))

let project_source grid src =
  let b = Grid.boundaries grid in
  Array.init (Grid.size grid) (fun i ->
      Opm_signal.Source.average src b.(i) b.(i + 1))

let reconstruct grid coeffs t =
  let b = Grid.boundaries grid in
  let m = Grid.size grid in
  if Array.length coeffs <> m then
    invalid_arg "Block_pulse.reconstruct: coefficient length mismatch";
  if t < 0.0 || t > b.(m) then 0.0
  else if t >= b.(m) then
    (* clamp the exact right endpoint t = t_end to the last interval so
       evaluating a waveform at the final time is not silently zero *)
    coeffs.(m - 1)
  else begin
    (* binary search for the interval containing t *)
    let lo = ref 0 and hi = ref m in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if b.(mid) <= t then lo := mid else hi := mid
    done;
    coeffs.(!lo)
  end

let integral_matrix grid =
  let s = Grid.steps grid in
  let m = Array.length s in
  Mat.init m m (fun i j ->
      if j = i then 0.5 *. s.(i) else if j > i then s.(i) else 0.0)

let differential_matrix grid =
  let s = Grid.steps grid in
  let m = Array.length s in
  Mat.init m m (fun i j ->
      if j = i then 2.0 /. s.(i)
      else if j > i then
        let sign = if (j - i) land 1 = 1 then -1.0 else 1.0 in
        4.0 *. sign /. s.(j)
      else 0.0)

let integer_power grid k =
  if k = 0 then Mat.eye (Grid.size grid)
  else Mat.pow (differential_matrix grid) k

let uniform_fractional ~t_end ~m alpha =
  let h = t_end /. float_of_int m in
  let rho = Series.one_minus_over_one_plus_pow alpha m in
  (* ρ_{α,m}(Q_m) for the shift matrix Q_m is the upper-triangular
     Toeplitz matrix with ρ's coefficient c_{j−i} at (i, j) *)
  let scale = (2.0 /. h) ** alpha in
  Mat.init m m (fun i j -> if j >= i then scale *. rho.(j - i) else 0.0)

let fractional_differential_matrix grid alpha =
  if alpha < 0.0 then
    invalid_arg "Block_pulse.fractional_differential_matrix: alpha < 0";
  match grid with
  (* the series truncation is exact for integer α too (the binomial
     series terminate), and builds the Toeplitz result in O(m²) instead
     of O(m³) matrix powers *)
  | Grid.Uniform { t_end; m } -> uniform_fractional ~t_end ~m alpha
  | Grid.Adaptive _ when Grid.is_uniform ~tol:1e-12 grid ->
      uniform_fractional ~t_end:(Grid.t_end grid) ~m:(Grid.size grid) alpha
  | Grid.Adaptive _ ->
      if Float.is_integer alpha then integer_power grid (int_of_float alpha)
      else Tri.fractional_power (differential_matrix grid) alpha

let fractional_integral_matrix grid alpha =
  if alpha < 0.0 then
    invalid_arg "Block_pulse.fractional_integral_matrix: alpha < 0";
  if alpha = 0.0 then Mat.eye (Grid.size grid)
  else Tri.invert_upper (fractional_differential_matrix grid alpha)
