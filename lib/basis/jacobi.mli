open Opm_numkit

(** Jacobi-Gauss spectral collocation basis (Zeng & Li, "Fractional
    differentiation matrices with applications").

    Block pulses converge like [O(h²)]; a polynomial collocation basis
    converges spectrally on smooth data, so a few dozen collocation
    points replace thousands of block pulses. This module provides the
    basis-level machinery the spectral solver builds on:

    - Jacobi-Gauss nodes and weights by Golub–Welsch on the three-term
      recurrence (a self-contained symmetric-tridiagonal QL — the
      general eigensolver in {!Opm_numkit.Eig} returns eigenvalues
      only, and Golub–Welsch needs the first eigenvector components);
    - barycentric interpolation and resampling onto arbitrary output
      grids (uniform BPF midpoints included);
    - the classical first-derivative collocation matrix; and
    - the dense fractional differentiation matrix [D^α], built stably
      through the identity

      [RL D^α P̂_k(x) = Γ(k+1)/Γ(k−α+1) · x^{−α} · P_k^{(α,−α)}(2x−1)]

      for the shifted Legendre polynomials [P̂_k], with the Jacobi
      polynomial evaluated by its own three-term recurrence. (Expanding
      into monomials instead cancels catastrophically beyond degree
      ≈ 25 — the 4^k coefficient growth of [P̂_k].)

    Collocation layout: the interpolation node set is
    [{0} ∪ {x_1 < … < x_m}] with [x_i] the [m] Gauss nodes of [(0,
    t_end)]; collocation rows are taken at the Gauss nodes only, so the
    fractional kernel's [x^{−α}] is never evaluated at the origin, and
    the extra node at 0 carries the initial condition: a solution
    interpolant anchored at [z(0) = 0] turns the Riemann–Liouville
    matrix into the Caputo operator under the paper's
    zero-initial-derivative convention. *)

type colloc = {
  t_end : float;
  m : int;  (** number of Gauss collocation points *)
  nodes : float array;  (** the [m] Gauss nodes, ascending, in [(0, t_end)] *)
  all : float array;  (** [{0} ∪ nodes] — the [m + 1] interpolation nodes *)
  bw : float array;  (** barycentric weights of [all] *)
  qw : float array;  (** Gauss quadrature weights on [[0, t_end]] *)
}

val gauss : ?a:float -> ?b:float -> m:int -> unit -> float array * float array
(** [m] Jacobi-Gauss nodes (ascending) and weights for the weight
    [(1−z)^a (1+z)^b] on [[−1, 1]] (default [a = b = 0]: Gauss–
    Legendre), by Golub–Welsch. Raises [Invalid_argument] for [m < 1]
    or [a], [b] ≤ −1, [Failure] if the QL iteration fails to
    converge. *)

val jacobi_eval : a:float -> b:float -> deg:int -> float -> float
(** [P_deg^{(a,b)}(z)] by the three-term recurrence — stable for the
    [a + b = 0] parameter line the fractional matrix uses (degree 1 is
    computed directly; the generic recurrence coefficient degenerates
    there). *)

val collocation : t_end:float -> m:int -> colloc
(** The [{0} ∪ Gauss] collocation layout on [[0, t_end]]. *)

val barycentric_weights : float array -> float array
(** Barycentric weights of a distinct-node set, products scaled by the
    capacity [(max − min)/4] so they neither overflow nor underflow at
    the sizes spectral collocation uses. *)

val interpolate :
  nodes:float array -> bw:float array -> values:float array -> float -> float
(** Second-form barycentric interpolation; exact (no division) when the
    query coincides with a node. *)

val resample_matrix : colloc -> float array -> Mat.t
(** [R] of shape [(len times) × (m+1)]: [R_{kj} = ℓ_j(t_k)], the
    cardinal functions of [colloc.all] evaluated at the output times —
    nodal values map to output samples as [R · v]. *)

val diff_matrix : colloc -> Mat.t
(** Classical first-derivative collocation matrix on [colloc.all],
    shape [(m+1) × (m+1)]: entry [(i, j) = ℓ_j'(t_i)] by the
    barycentric formula with the negated-sum diagonal. *)

val caputo_colloc : colloc -> alpha:float -> Mat.t
(** The [m × m] anchored fractional collocation matrix: entry
    [(i, j) = (D^α ℓ_{j+1})(x_{i+1})] — rows at the Gauss nodes,
    columns over the Gauss-node cardinals (the cardinal of the node at
    0 is dropped, which is exactly the action on an interpolant
    anchored at [z(0) = 0]). For non-integer [α] this is the
    Riemann–Liouville derivative of the anchored interpolant, i.e. the
    Caputo operator of the solver's zero-initial-state convention (all
    initial derivatives 0). Integer [α = q] dispatches to [q] exact
    powers of {!diff_matrix} restricted to the same rows/columns, so
    [caputo_colloc ~alpha:1.0] is bit-identical to {!diff_colloc}.
    Raises [Invalid_argument] for [α ≤ 0]. *)

val diff_colloc : colloc -> Mat.t
(** The classical ([α = 1]) anchored collocation matrix — the
    [m × m] row/column restriction of {!diff_matrix}; the reference
    the [α = 1] reduction of {!caputo_colloc} is bit-checked
    against. *)
