open Opm_numkit

type colloc = {
  t_end : float;
  m : int;
  nodes : float array;
  all : float array;
  bw : float array;
  qw : float array;
}

(* P_deg^{(a,b)}(z) by the three-term recurrence. Degree 1 is computed
   from its closed form: the generic recurrence coefficient
   2n(n+a+b)(2n+a+b−2) vanishes at n = 1 exactly on the a+b = 0 line
   the fractional matrix lives on. *)
let jacobi_eval ~a ~b ~deg z =
  if deg < 0 then invalid_arg "Jacobi.jacobi_eval: negative degree";
  if deg = 0 then 1.0
  else begin
    let ab = a +. b in
    let p1 = ((a -. b) /. 2.0) +. (((ab +. 2.0) /. 2.0) *. z) in
    if deg = 1 then p1
    else begin
      let pm2 = ref 1.0 and pm1 = ref p1 in
      for n = 2 to deg do
        let fn = float_of_int n in
        let t = (2.0 *. fn) +. ab in
        let c1 = 2.0 *. fn *. (fn +. ab) *. (t -. 2.0) in
        let c2 = (t -. 1.0) *. ((a *. a) -. (b *. b)) in
        let c3 = (t -. 2.0) *. (t -. 1.0) *. t in
        let c4 = 2.0 *. (fn +. a -. 1.0) *. (fn +. b -. 1.0) *. t in
        if abs_float c1 < 1e-300 then
          invalid_arg "Jacobi.jacobi_eval: degenerate recurrence parameters";
        let p = (((c2 +. (c3 *. z)) *. !pm1) -. (c4 *. !pm2)) /. c1 in
        pm2 := !pm1;
        pm1 := p
      done;
      !pm1
    end
  end

(* All of P_0..P_deg at one z in a single recurrence pass. Each degree
   performs the same arithmetic as [jacobi_eval] would, so the row is
   bit-identical to deg+1 separate calls while costing O(deg) instead
   of O(deg²) — this is what keeps the Vandermonde/fractional-matrix
   assembly out of the compile-time profile. *)
let jacobi_row ~a ~b ~deg z =
  if deg < 0 then invalid_arg "Jacobi.jacobi_row: negative degree";
  let out = Array.make (deg + 1) 1.0 in
  if deg >= 1 then begin
    let ab = a +. b in
    let p1 = ((a -. b) /. 2.0) +. (((ab +. 2.0) /. 2.0) *. z) in
    out.(1) <- p1;
    let pm2 = ref 1.0 and pm1 = ref p1 in
    for n = 2 to deg do
      let fn = float_of_int n in
      let t = (2.0 *. fn) +. ab in
      let c1 = 2.0 *. fn *. (fn +. ab) *. (t -. 2.0) in
      let c2 = (t -. 1.0) *. ((a *. a) -. (b *. b)) in
      let c3 = (t -. 2.0) *. (t -. 1.0) *. t in
      let c4 = 2.0 *. (fn +. a -. 1.0) *. (fn +. b -. 1.0) *. t in
      if abs_float c1 < 1e-300 then
        invalid_arg "Jacobi.jacobi_row: degenerate recurrence parameters";
      let p = (((c2 +. (c3 *. z)) *. !pm1) -. (c4 *. !pm2)) /. c1 in
      out.(n) <- p;
      pm2 := !pm1;
      pm1 := p
    done
  end;
  out

(* Symmetric tridiagonal eigensolve — implicit-shift QL (EISPACK tql2)
   restricted to accumulating the *first row* of the eigenvector
   matrix, which is all Golub–Welsch needs: the quadrature weight is
   μ₀·v₀² per eigenpair. [d] is the diagonal (length n), [e] the
   subdiagonal (length n−1). Returns unsorted eigenvalues and their
   first eigenvector components. *)
let tridiag_eig d0 e0 =
  let n = Array.length d0 in
  let d = Array.copy d0 in
  let e = Array.make (max n 1) 0.0 in
  Array.blit e0 0 e 0 (n - 1);
  let z = Array.make n 0.0 in
  if n > 0 then z.(0) <- 1.0;
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let finished = ref false in
    while not !finished do
      let m = ref l in
      while
        !m < n - 1
        && abs_float e.(!m)
           > epsilon_float *. (abs_float d.(!m) +. abs_float d.(!m + 1))
      do
        incr m
      done;
      if !m = l then finished := true
      else begin
        incr iter;
        if !iter > 64 then
          failwith "Jacobi.gauss: QL eigensolve did not converge";
        let g0 = (d.(l + 1) -. d.(l)) /. (2.0 *. e.(l)) in
        let r0 = Float.hypot g0 1.0 in
        let sign_r = if g0 >= 0.0 then r0 else -. r0 in
        let g = ref (d.(!m) -. d.(l) +. (e.(l) /. (g0 +. sign_r))) in
        let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
        let i = ref (!m - 1) in
        let broke = ref false in
        while !i >= l && not !broke do
          let f = !s *. e.(!i) in
          let b = !c *. e.(!i) in
          let r = Float.hypot f !g in
          e.(!i + 1) <- r;
          if r = 0.0 then begin
            d.(!i + 1) <- d.(!i + 1) -. !p;
            e.(!m) <- 0.0;
            broke := true
          end
          else begin
            s := f /. r;
            c := !g /. r;
            let g' = d.(!i + 1) -. !p in
            let r' = ((d.(!i) -. g') *. !s) +. (2.0 *. !c *. b) in
            p := !s *. r';
            d.(!i + 1) <- g' +. !p;
            g := (!c *. r') -. b;
            let fz = z.(!i + 1) in
            z.(!i + 1) <- (!s *. z.(!i)) +. (!c *. fz);
            z.(!i) <- (!c *. z.(!i)) -. (!s *. fz);
            decr i
          end
        done;
        if not !broke then begin
          d.(l) <- d.(l) -. !p;
          e.(l) <- !g;
          e.(!m) <- 0.0
        end
      end
    done
  done;
  (d, z)

let gauss ?(a = 0.0) ?(b = 0.0) ~m () =
  if m < 1 then invalid_arg "Jacobi.gauss: m < 1";
  if a <= -1.0 || b <= -1.0 then invalid_arg "Jacobi.gauss: a, b must be > -1";
  let ab = a +. b in
  (* Gautschi's r_jacobi recurrence coefficients for (1−z)^a (1+z)^b *)
  let diag =
    Array.init m (fun n ->
        if n = 0 then (b -. a) /. (ab +. 2.0)
        else
          let fn = float_of_int n in
          ((b *. b) -. (a *. a))
          /. (((2.0 *. fn) +. ab) *. ((2.0 *. fn) +. ab +. 2.0)))
  in
  let beta n =
    if n = 1 then
      4.0 *. (a +. 1.0) *. (b +. 1.0)
      /. ((ab +. 2.0) *. (ab +. 2.0) *. (ab +. 3.0))
    else
      let fn = float_of_int n in
      let t = (2.0 *. fn) +. ab in
      4.0 *. fn *. (fn +. a) *. (fn +. b) *. (fn +. ab)
      /. (t *. t *. (t +. 1.0) *. (t -. 1.0))
  in
  let sub = Array.init (max 0 (m - 1)) (fun i -> sqrt (beta (i + 1))) in
  let evals, z = tridiag_eig diag sub in
  let mu0 =
    (2.0 ** (ab +. 1.0))
    *. exp
         (Special.lgamma (a +. 1.0)
         +. Special.lgamma (b +. 1.0)
         -. Special.lgamma (ab +. 2.0))
  in
  let idx = Array.init m Fun.id in
  Array.sort (fun i j -> compare evals.(i) evals.(j)) idx;
  let nodes = Array.map (fun i -> evals.(i)) idx in
  let weights = Array.map (fun i -> mu0 *. z.(i) *. z.(i)) idx in
  (nodes, weights)

let barycentric_weights x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Jacobi.barycentric_weights: empty node set";
  let lo = Array.fold_left Float.min x.(0) x in
  let hi = Array.fold_left Float.max x.(0) x in
  let cap = if hi > lo then (hi -. lo) /. 4.0 else 1.0 in
  Array.init n (fun j ->
      let p = ref 1.0 in
      for k = 0 to n - 1 do
        if k <> j then begin
          let d = (x.(j) -. x.(k)) /. cap in
          if d = 0.0 then
            invalid_arg "Jacobi.barycentric_weights: repeated node";
          p := !p *. d
        end
      done;
      1.0 /. !p)

let interpolate ~nodes ~bw ~values t =
  let n = Array.length nodes in
  let hit = ref (-1) in
  for j = 0 to n - 1 do
    if t = nodes.(j) then hit := j
  done;
  if !hit >= 0 then values.(!hit)
  else begin
    let num = ref 0.0 and den = ref 0.0 in
    for j = 0 to n - 1 do
      let w = bw.(j) /. (t -. nodes.(j)) in
      num := !num +. (w *. values.(j));
      den := !den +. w
    done;
    !num /. !den
  end

let collocation ~t_end ~m =
  if m < 1 then invalid_arg "Jacobi.collocation: m < 1";
  if not (t_end > 0.0) then invalid_arg "Jacobi.collocation: t_end <= 0";
  let zn, zw = gauss ~m () in
  let nodes = Array.map (fun z -> (z +. 1.0) /. 2.0 *. t_end) zn in
  let qw = Array.map (fun w -> w *. t_end /. 2.0) zw in
  let all = Array.append [| 0.0 |] nodes in
  let bw = barycentric_weights all in
  { t_end; m; nodes; all; bw; qw }

let resample_matrix c times =
  let mm = c.m + 1 in
  let nt = Array.length times in
  let r = Mat.zeros nt mm in
  for k = 0 to nt - 1 do
    let t = times.(k) in
    let hit = ref (-1) in
    for j = 0 to mm - 1 do
      if t = c.all.(j) then hit := j
    done;
    if !hit >= 0 then Mat.set r k !hit 1.0
    else begin
      let den = ref 0.0 in
      for j = 0 to mm - 1 do
        den := !den +. (c.bw.(j) /. (t -. c.all.(j)))
      done;
      for j = 0 to mm - 1 do
        Mat.set r k j (c.bw.(j) /. (t -. c.all.(j)) /. !den)
      done
    end
  done;
  r

let diff_matrix c =
  let mm = c.m + 1 in
  let d = Mat.zeros mm mm in
  for i = 0 to mm - 1 do
    let sum = ref 0.0 in
    for j = 0 to mm - 1 do
      if j <> i then begin
        let v = c.bw.(j) /. c.bw.(i) /. (c.all.(i) -. c.all.(j)) in
        Mat.set d i j v;
        sum := !sum +. v
      end
    done;
    Mat.set d i i (-. !sum)
  done;
  d

let integer_colloc c q =
  let dfull = diff_matrix c in
  let dq = if q = 1 then dfull else Mat.pow dfull q in
  Mat.init c.m c.m (fun i j -> Mat.get dq (i + 1) (j + 1))

let diff_colloc c = integer_colloc c 1

let caputo_colloc c ~alpha =
  if not (alpha > 0.0) then invalid_arg "Jacobi.caputo_colloc: alpha <= 0";
  if Float.is_integer alpha then integer_colloc c (int_of_float alpha)
  else begin
    let mm = c.m + 1 in
    let xs = Array.map (fun t -> t /. c.t_end) c.all in
    (* shifted-Legendre Vandermonde V_{ik} = P̂_k(x_i); Gauss-type nodes
       keep it well conditioned at the degrees spectral collocation
       uses *)
    let v =
      let rows =
        Array.map
          (fun x -> jacobi_row ~a:0.0 ~b:0.0 ~deg:(mm - 1) ((2.0 *. x) -. 1.0))
          xs
      in
      Mat.init mm mm (fun i k -> rows.(i).(k))
    in
    (* W_{ik} = (RL D^α P̂_k)(x_{i+1}) on [0,1], by the stable identity
       RL D^α P̂_k(x) = Γ(k+1)/Γ(k−α+1) · x^{−α} · P_k^{(α,−α)}(2x−1);
       rows at the Gauss nodes only, so x > 0 throughout. The Γ ratio
       depends only on the degree, so it is tabulated once. *)
    let ratio =
      Array.init mm (fun k ->
          let shifted = float_of_int k -. alpha +. 1.0 in
          if shifted > 0.0 then
            exp (Special.lgamma (float_of_int (k + 1)) -. Special.lgamma shifted)
          else
            (* k − α + 1 < 0 (k = 0, α > 1): Γ via reflection *)
            exp (Special.lgamma (float_of_int (k + 1))) /. Special.gamma shifted)
    in
    let w =
      let rows =
        Array.init c.m (fun i ->
            let x = xs.(i + 1) in
            let ps =
              jacobi_row ~a:alpha ~b:(-.alpha) ~deg:(mm - 1)
                ((2.0 *. x) -. 1.0)
            in
            let xa = x ** (-.alpha) in
            Array.init mm (fun k -> ratio.(k) *. xa *. ps.(k)))
      in
      Mat.init c.m mm (fun i k -> rows.(i).(k))
    in
    (* cardinal-basis matrix D = W·V⁻¹ = (V⁻ᵀ·Wᵀ)ᵀ; drop the column of
       the node-0 cardinal (the anchored action) and undo the [0,1]
       time scaling *)
    let lu = Lu.factor (Mat.transpose v) in
    let d_full = Mat.transpose (Lu.solve_mat lu (Mat.transpose w)) in
    let scale = c.t_end ** (-. alpha) in
    Mat.init c.m c.m (fun i j -> scale *. Mat.get d_full i (j + 1))
  end
