open Opm_numkit

(** Block-pulse functions and their operational matrices — the basis the
    paper develops OPM with (§II, §III-B, §IV).

    On a grid with intervals [[t_i, t_{i+1})] the BPF [φ_i] is the
    indicator of interval [i]. A function is represented by its
    interval-average coefficients (eq. 2); integration and
    differentiation act on coefficients through the upper-triangular
    operational matrices [H] and [D = H^{−1}]. *)

val project : Grid.t -> (float -> float) -> Vec.t
(** Coefficients [f_i = (1/h_i) ∫ f] over each interval (adaptive
    Simpson on each interval). *)

val project_source : Grid.t -> Opm_signal.Source.t -> Vec.t
(** Same, but exact (closed-form interval averages) for structured
    sources. *)

val reconstruct : Grid.t -> Vec.t -> float -> float
(** Evaluate the BPF expansion at time [t] ([0] outside [[0, t_end]]).
    The exact right endpoint [t = t_end] is clamped to the last
    interval, so the final time evaluates to the last coefficient
    rather than 0. *)

val integral_matrix : Grid.t -> Mat.t
(** [H]: eq. (4) for uniform grids, eq. (17)'s [H̃] for adaptive ones
    ([H̃_{ii} = h_i/2], [H̃_{ij} = h_i] for [j > i]). *)

val differential_matrix : Grid.t -> Mat.t
(** [D = H^{−1}]: closed form
    [D_{ii} = 2/h_i], [D_{ij} = 4·(−1)^{j−i}/h_j] for [j > i]
    (uniform: eq. (7); adaptive: eq. (25)'s base matrix). *)

val fractional_differential_matrix : Grid.t -> float -> Mat.t
(** [D^α] for [α >= 0].

    - Uniform grid: [(2/h)^α · ρ_{α,m}(Q_m)] by the truncated series of
      [((1−q)/(1+q))^α] (paper eq. 21–23) — exact in the nilpotent
      algebra, works for any [α] including repeated diagonal.
    - Adaptive grid with pairwise distinct steps: Parlett recurrence on
      the triangular [D̃] (the role of the paper's eq. 25
      eigendecomposition).
    - Adaptive grid with repeated steps: raises
      [Tri.Confluent_diagonal]; make steps distinct (e.g.
      {!Grid.geometric}) or use a uniform grid.

    Integer [α] falls back to exact matrix powers. *)

val fractional_integral_matrix : Grid.t -> float -> Mat.t
(** [H^α = (D^α)^{−1}] — the Riemann–Liouville fractional integration
    operator in BPF coordinates. *)
