(* Fixed-size reusable domain pool.

   A pool owns [domains − 1] worker domains plus the submitting caller,
   which participates in every job, so [create ~domains:4] uses exactly
   four domains in steady state. Workers are spawned once and reused
   across jobs — the per-job cost is a mutex/condition handshake, not a
   [Domain.spawn].

   Determinism: [parallel_for] splits the index range into chunks with
   boundaries that depend only on the range and the pool size — never on
   scheduling — and every index writes its own result slot, so a
   parallel run is bit-identical to the serial one. There are no
   reductions and therefore no reassociation of floating-point sums.

   Exceptions raised inside a job are caught per chunk; after every
   chunk has finished, the exception from the lowest-numbered failing
   chunk is re-raised in the submitting domain (again deterministic —
   the same chunk wins regardless of interleaving).

   [domains = 1] is a strict serial fallback: no workers are spawned and
   jobs run inline on the caller. *)

module Metrics = Opm_obs.Metrics
module Fault = Opm_robust.Fault
module Opm_error = Opm_robust.Opm_error

(* observability instruments (no-ops unless metrics are enabled) *)
let m_jobs = Metrics.counter "pool.jobs"
let m_inline_jobs = Metrics.counter "pool.inline_jobs"
let m_chunks = Metrics.counter "pool.chunks"
let h_chunk_seconds = Metrics.histogram "pool.chunk_seconds"
let h_job_wait_seconds = Metrics.histogram "pool.job_wait_seconds"

(* Seeded fault site: fired once per dispatched chunk (pool and inline
   paths alike — the counters are atomic, so worker domains race
   safely). The raised [Fault_injected] travels through the same
   per-chunk error machinery as a genuine job exception, so the
   resilience harness exercises exactly the propagation a real crash
   would take. *)
let fire_dispatch () =
  match Fault.fire Fault.Pool_dispatch with
  | None -> ()
  | Some Fault.Latency -> Fault.latency_sleep ()
  | Some ((Fault.Singular | Fault.Nan_poison | Fault.Enospc) as k) ->
      Opm_error.raise_
        (Opm_error.Fault_injected
           {
             site = Fault.site_to_string Fault.Pool_dispatch;
             kind = Fault.kind_to_string k;
           })

type job = { run : int -> unit; n_chunks : int }

type t = {
  domains : int; (* total domains, including the caller *)
  mutex : Mutex.t;
  work : Condition.t; (* new job available / shutdown *)
  finished : Condition.t; (* all chunks of the current job done *)
  mutable job : job option;
  mutable next_chunk : int;
  mutable done_chunks : int;
  mutable generation : int; (* bumped once per submitted job *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* Re-entrancy guard: a nested [parallel_for] issued from inside a pool
   job (e.g. a parallel matrix product called from a parallel sweep)
   runs serially instead of deadlocking on the busy pool. *)
let inside_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let record_error t chunk e bt =
  Mutex.lock t.mutex;
  (match t.error with
  | Some (c, _, _) when c <= chunk -> ()
  | Some _ | None -> t.error <- Some (chunk, e, bt));
  Mutex.unlock t.mutex

(* Grab and run chunks of the current job until none remain. Called with
   [t.mutex] held; returns with it released. [t.job] may already be
   [None] if a late-waking worker observes a job the caller has fully
   completed and retired — that is a no-op, not an error. *)
let run_chunks t =
  match t.job with
  | None -> Mutex.unlock t.mutex
  | Some job ->
  let rec loop () =
    if t.next_chunk >= job.n_chunks then Mutex.unlock t.mutex
    else begin
      let chunk = t.next_chunk in
      t.next_chunk <- chunk + 1;
      Mutex.unlock t.mutex;
      let saved = Domain.DLS.get inside_job in
      Domain.DLS.set inside_job true;
      Metrics.incr m_chunks;
      (try
         Metrics.time h_chunk_seconds (fun () ->
             fire_dispatch ();
             job.run chunk)
       with e -> record_error t chunk e (Printexc.get_raw_backtrace ()));
      Domain.DLS.set inside_job saved;
      Mutex.lock t.mutex;
      t.done_chunks <- t.done_chunks + 1;
      if t.done_chunks >= job.n_chunks then Condition.broadcast t.finished;
      loop ()
    end
  in
  loop ()

let worker t =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.generation;
      run_chunks t (* releases the mutex *)
    end
  done

(* Warn (once) about a malformed OPM_DOMAINS rather than silently
   picking the hardware count: a typo like "OPM_DOMAINS=eight" or a
   stray "-4" degrades to the safe serial pool so results are still
   reproducible, and the stderr note tells the user why. *)
let env_warned = ref false

let env_domains () =
  match Sys.getenv_opt "OPM_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some (min d 512)
      | Some _ | None ->
          if not !env_warned then begin
            env_warned := true;
            Printf.eprintf
              "opm: warning: OPM_DOMAINS=%S is not a positive integer; \
               running serially\n%!"
              s
          end;
          Some 1)

(* Explicit process-wide override (e.g. a --domains CLI flag); takes
   precedence over OPM_DOMAINS, which takes precedence over the
   hardware count. *)
let override = ref None

let default_domains () =
  match !override with
  | Some d -> d
  | None -> (
      match env_domains () with
      | Some d -> d
      | None -> max 1 (Domain.recommended_domain_count ()))

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      next_chunk = 0;
      done_chunks = 0;
      generation = 0;
      error = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.domains

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Submit a chunked job and participate until it completes. Falls back
   to inline execution when the pool is serial, already busy, or when
   called from inside one of its own jobs. *)
let run_job t ~n_chunks run =
  if n_chunks <= 0 then ()
  else if Array.length t.workers = 0 || Domain.DLS.get inside_job then begin
    Metrics.incr m_inline_jobs;
    for chunk = 0 to n_chunks - 1 do
      fire_dispatch ();
      run chunk
    done
  end
  else begin
    Mutex.lock t.mutex;
    if t.job <> None then begin
      (* another submitter's job is in flight: run inline *)
      Mutex.unlock t.mutex;
      Metrics.incr m_inline_jobs;
      for chunk = 0 to n_chunks - 1 do
        fire_dispatch ();
        run chunk
      done
    end
    else begin
      Metrics.incr m_jobs;
      t.job <- Some { run; n_chunks };
      t.next_chunk <- 0;
      t.done_chunks <- 0;
      t.error <- None;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      run_chunks t (* releases the mutex *);
      Mutex.lock t.mutex;
      (* submitter idle time: blocked on workers after finishing its own
         share of the chunks *)
      Metrics.time h_job_wait_seconds (fun () ->
          while t.done_chunks < n_chunks do
            Condition.wait t.finished t.mutex
          done);
      t.job <- None;
      let err = t.error in
      t.error <- None;
      Mutex.unlock t.mutex;
      match err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* Chunk boundaries depend only on [n] and [n_chunks] — fixed a priori,
   independent of which domain runs which chunk. *)
let chunk_bounds ~n ~n_chunks chunk =
  (chunk * n / n_chunks, (chunk + 1) * n / n_chunks)

let parallel_for t ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative range";
  if n > 0 then
    if Array.length t.workers = 0 || Domain.DLS.get inside_job then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let n_chunks = min n (4 * t.domains) in
      run_job t ~n_chunks (fun chunk ->
          let lo, hi = chunk_bounds ~n ~n_chunks chunk in
          for i = lo to hi - 1 do
            f i
          done)
    end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if Array.length t.workers = 0 || Domain.DLS.get inside_job then
    Array.map f xs
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let mapi t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if Array.length t.workers = 0 || Domain.DLS.get inside_job then
    Array.mapi f xs
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f i xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let init t n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  if n = 0 then [||]
  else if Array.length t.workers = 0 || Domain.DLS.get inside_job then
    Array.init n f
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* Process-wide shared pool                                            *)

let global_pool = ref None
let global_mutex = Mutex.create ()

let global () =
  Mutex.lock global_mutex;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create () in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mutex;
  p

(* Override the default domain count (CLI flag). Tears down the shared
   pool so the next [global ()] picks the new size up. *)
let set_default_domains d =
  if d < 1 then invalid_arg "Pool.set_default_domains: domains < 1";
  override := Some d;
  Mutex.lock global_mutex;
  let old = !global_pool in
  global_pool := None;
  Mutex.unlock global_mutex;
  match old with Some p -> shutdown p | None -> ()

let with_pool ?domains f =
  let p = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
