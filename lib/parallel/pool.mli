(** Fixed-size reusable domain pool for the embarrassingly-parallel
    outer loops of the simulator (AC frequency points, parameter
    sweeps, frequency-domain bins, blocked matrix products).

    A pool of [domains] uses [domains − 1] spawned worker domains plus
    the submitting caller, which always participates. Work is split
    into chunks whose boundaries depend only on the problem size and
    the pool size — never on scheduling — and each index writes its own
    result slot, so every parallel entry point is bit-identical to its
    serial counterpart (no reductions, no reassociation of
    floating-point sums).

    The default pool size is resolved in priority order:
    {!set_default_domains} override, then the [OPM_DOMAINS] environment
    variable, then [Domain.recommended_domain_count ()]. A malformed or
    non-positive [OPM_DOMAINS] value falls back to the serial pool
    (one domain) with a one-time warning on stderr.

    Pools are re-entrancy safe: a nested parallel call issued from
    inside a pool job (or against a busy pool) runs serially instead of
    deadlocking. [domains = 1] spawns no workers and runs everything
    inline. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains − 1] reusable workers.
    Defaults to {!default_domains}. Raises [Invalid_argument] if
    [domains < 1]. *)

val domains : t -> int
(** Total domain count, including the caller. *)

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards. Idempotent. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f i] for every [i] in [[0, n)], split
    into deterministic contiguous chunks. [f] must only write state
    owned by its own index. If any [f i] raises, every chunk still
    completes and the exception of the lowest-numbered failing chunk is
    re-raised in the caller. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; output order matches input order. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

val init : t -> int -> (int -> 'b) -> 'b array
(** Parallel [Array.init]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** Create a pool, run the function, always shut the pool down. *)

val default_domains : unit -> int
(** Current default pool size (override / [OPM_DOMAINS] / hardware). *)

val set_default_domains : int -> unit
(** Process-wide override (e.g. a [--domains] CLI flag); also recreates
    the {!global} pool at the new size on next use. Raises
    [Invalid_argument] if the argument is [< 1]. *)

val global : unit -> t
(** Lazily-created process-wide shared pool at {!default_domains}
    size. Used as the default by the library's parallel call sites. *)
