open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_robust
module Json = Opm_obs.Json
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

type stats = {
  windows : int;
  width : int;
  memory_len : int;
  factor_hits : int;
  factor_misses : int;
  handoff_seconds : float;
}

exception
  Interrupted of {
    error : Opm_error.t;
    partial : Mat.t;
    completed_windows : int;
    checkpoint : string option;
  }

let () =
  Printexc.register_printer (function
    | Interrupted { error; partial; completed_windows; checkpoint } ->
        let _, cols = Mat.dims partial in
        Some
          (Printf.sprintf
             "Window.Interrupted: %s [%d window(s) / %d column(s) completed%s]"
             (Opm_error.to_string error) completed_windows cols
             (match checkpoint with
             | Some p -> Printf.sprintf "; resumable checkpoint at %S" p
             | None -> ""))
    | _ -> None)

(* Window-handoff fault site: Nan_poison corrupts the carried state
   {e after} the window's columns are safely appended (so the NaN must
   surface as a structured error in a later window, never in delivered
   data); Latency sleeps; the other kinds raise Fault_injected. *)
let fault_handoff () =
  match Fault.fire Fault.Window_handoff with
  | None -> false
  | Some Fault.Latency ->
      Fault.latency_sleep ();
      false
  | Some Fault.Nan_poison -> true
  | Some (Fault.Singular | Fault.Enospc) ->
      Opm_error.raise_
        (Opm_error.Fault_injected
           {
             site = Fault.site_to_string Fault.Window_handoff;
             kind =
               (match Fault.armed () with
               | Some p -> Fault.kind_to_string p.kind
               | None -> "unknown");
           })

(* per-term carried state of the general path: the ρ_α = ρ_n ⊛ ρ_β
   split (see run_general below) plus the ring of transformed history
   columns y_t *)
type term_state = {
  coeff : Csr.t;
  scale : float;  (** (2/h)^α *)
  n_int : int;  (** ⌊α⌋ *)
  beta : float;  (** α − ⌊α⌋ *)
  binom : float array;  (** C(n_int, p), p = 0 … n_int *)
  rho_beta : float array;  (** ρ series of the fractional factor *)
  rho_full : float array;  (** ρ series of α itself (window D blocks) *)
  yr : int;  (** y ring size: max(k_eff, n_int, 1) *)
  yring : float array array;  (** y_t at slot t mod yr *)
}

let m_windows = Metrics.counter "window.count"
let m_factor_reuse = Metrics.counter "window.factor_reuse"
let h_handoff = Metrics.histogram "window.handoff_seconds"

(* kept in sync with Opm.pick_backend (Window sits below Opm in the
   dependency order, so the three-line policy is duplicated rather than
   imported) *)
let pick_backend backend n =
  match backend with
  | `Dense -> `Dense
  | `Sparse -> `Sparse
  | `Auto -> if n > 64 then `Sparse else `Dense

(* α = n + β with n = ⌊α⌋: the driver carries the ρ_n (integer) factor
   of the history exactly and truncates only the decaying ρ_β tail, so
   the discarded weight — and hence the error heuristic — lives in the
   fractional factor alone. *)
let split_alpha alpha =
  let n_int = int_of_float (Float.floor alpha) in
  (n_int, alpha -. float_of_int n_int)

let truncation_mass ~alpha ~lags ~memory_len =
  if memory_len < 0 then invalid_arg "Window.truncation_mass: memory_len < 0";
  let _, beta = split_alpha alpha in
  if beta = 0.0 || lags < 1 || memory_len >= lags then 0.0
  else begin
    let rho = Series.one_minus_over_one_plus_pow beta (lags + 1) in
    let total = ref 0.0 in
    let tail = ref 0.0 in
    for j = 1 to lags do
      let a = Float.abs rho.(j) in
      total := !total +. a;
      if j > memory_len then tail := !tail +. a
    done;
    if !total = 0.0 then 0.0 else !tail /. !total
  end

let solve ?(backend = `Auto) ?health ?memory_len ?on_window ?fc_d ?fc_s
    ?series_cache ?budget ?checkpoint ?checkpoint_every ?resume_from
    ~window:w ~grid (sys : Multi_term.t) ~bu =
  Trace.with_span "window.solve" @@ fun () ->
  let m = Grid.size grid in
  let n = Multi_term.order sys in
  if w < 1 then invalid_arg "Window.solve: window width must be >= 1";
  if not (Grid.is_uniform ~tol:1e-12 grid) then
    invalid_arg "Window.solve: windowed streaming requires a uniform grid";
  let bn, bm = Mat.dims bu in
  if bn <> n || bm <> m then
    invalid_arg
      (Printf.sprintf "Window.solve: bu is %d×%d but system/grid need %d×%d"
         bn bm n m);
  let h = Grid.t_end grid /. float_of_int m in
  let k_eff =
    match memory_len with
    | None -> m
    | Some k ->
        if k < 0 then invalid_arg "Window.solve: memory_len < 0";
        min k m
  in
  let w = min w m in
  let nwin = (m + w - 1) / w in
  let backend = pick_backend backend n in
  let cp_every =
    match checkpoint_every with
    | None -> 1
    | Some k ->
        if k < 1 then invalid_arg "Window.solve: checkpoint_every < 1";
        k
  in
  let builder = Sim_result.Builder.create ~n in
  let handoff = ref 0.0 in
  let completed = ref 0 in
  let last_checkpoint = ref None in
  let rpath = Option.value resume_from ~default:"<checkpoint>" in
  let cp_fail path message =
    Opm_error.raise_ (Opm_error.Checkpoint_error { path; message })
  in
  (* The fingerprint ties a checkpoint to everything the resumed run
     must share for bit-identity: dispatch kind, dimensions, effective
     window/memory widths, the exact step and α list (as IEEE-754
     bits), backend, and a digest of the full input matrix. Computed
     lazily — a run with neither checkpointing nor resume never pays
     the O(n·m) digest. *)
  let kind_of_sys =
    match (sys.Multi_term.terms, sys.Multi_term.input_order) with
    | [ { Multi_term.coeff = _; alpha = 1.0 } ], 0 -> "linear"
    | _ -> "general"
  in
  let fingerprint =
    lazy
      (let bu_flat =
         Array.init (n * m) (fun k -> Mat.get bu (k mod n) (k / n))
       in
       let alphas =
         Array.of_list
           (List.map (fun t -> t.Multi_term.alpha) sys.Multi_term.terms)
       in
       Json.Obj
         [
           ("kind", Json.String kind_of_sys);
           ("n", Json.Int n);
           ("m", Json.Int m);
           ("w", Json.Int w);
           ("memory_len", Json.Int k_eff);
           ("h", Checkpoint.encode_floats [| h |]);
           ("alphas", Checkpoint.encode_floats alphas);
           ("input_order", Json.Int sys.Multi_term.input_order);
           ( "backend",
             Json.String
               (match backend with `Dense -> "dense" | `Sparse -> "sparse") );
           ( "bu",
             Json.String
               (Checkpoint.checksum_of_payload (Checkpoint.encode_floats bu_flat))
           );
         ])
  in
  let encode_mat x =
    let xn, xm = Mat.dims x in
    Json.Obj
      [
        ("rows", Json.Int xn);
        ("cols", Json.Int xm);
        ( "data",
          Checkpoint.encode_floats
            (Array.init (xn * xm) (fun k -> Mat.get x (k mod xn) (k / xn))) );
      ]
  in
  let decode_mat j =
    match
      ( Option.bind (Json.member "rows" j) Json.to_int_opt,
        Option.bind (Json.member "cols" j) Json.to_int_opt,
        Json.member "data" j )
    with
    | Some r, Some c, Some d when r >= 0 && c >= 0 ->
        let a =
          try Checkpoint.decode_floats d
          with Invalid_argument msg -> cp_fail rpath msg
        in
        if Array.length a <> r * c then
          cp_fail rpath "prefix data does not match its declared shape";
        Mat.init r c (fun i j -> a.((j * r) + i))
    | _ -> cp_fail rpath "malformed prefix matrix"
  in
  (* ring slots: an untouched slot is a zero-length array *)
  let encode_slots slots =
    Json.List (Array.to_list (Array.map Checkpoint.encode_floats slots))
  in
  let decode_slots ~len j =
    match Json.to_list_opt j with
    | Some l when List.length l = len ->
        Array.of_list
          (List.map
             (fun e ->
               let a =
                 try Checkpoint.decode_floats e
                 with Invalid_argument msg -> cp_fail rpath msg
               in
               if Array.length a <> 0 && Array.length a <> n then
                 cp_fail rpath "ring slot has the wrong length";
               a)
             l)
    | _ -> cp_fail rpath "malformed ring encoding"
  in
  let maybe_checkpoint ~win state =
    match checkpoint with
    | None -> ()
    | Some path ->
        if (win + 1) mod cp_every = 0 || win = nwin - 1 then begin
          let payload =
            Json.Obj
              [
                ("fingerprint", Lazy.force fingerprint);
                ("next_window", Json.Int (win + 1));
                ("handoff", Checkpoint.encode_floats [| !handoff |]);
                ("prefix", encode_mat (Sim_result.Builder.to_mat builder));
                ("state", state ());
              ]
          in
          Checkpoint.save ~path payload;
          last_checkpoint := Some path
        end
  in
  let resume_state =
    match resume_from with
    | None -> None
    | Some path ->
        let payload = Checkpoint.load ~path in
        (match Json.member "fingerprint" payload with
        | Some fp when fp = Lazy.force fingerprint -> ()
        | Some _ ->
            cp_fail path
              "fingerprint mismatch: the checkpoint was written by a run with \
               a different system, grid, window width, memory length, backend \
               or input matrix"
        | None -> cp_fail path "missing fingerprint");
        let next =
          match
            Option.bind (Json.member "next_window" payload) Json.to_int_opt
          with
          | Some v when v >= 0 && v <= nwin -> v
          | _ -> cp_fail path "missing or out-of-range next_window"
        in
        (match Json.member "handoff" payload with
        | Some hj -> (
            match
              try Checkpoint.decode_floats hj with Invalid_argument _ -> [||]
            with
            | [| s |] -> handoff := s
            | _ -> cp_fail path "malformed handoff")
        | None -> cp_fail path "missing handoff");
        let prefix =
          match Json.member "prefix" payload with
          | Some p -> decode_mat p
          | None -> cp_fail path "missing prefix"
        in
        let pn, pm = Mat.dims prefix in
        if pn <> n || pm <> min (next * w) m then
          cp_fail path "prefix shape disagrees with next_window";
        if pm > 0 then Sim_result.Builder.append builder prefix;
        let state =
          match Json.member "state" payload with
          | Some s -> s
          | None -> cp_fail path "missing state"
        in
        completed := next;
        last_checkpoint := Some path;
        Some (next, state)
  in
  let start_win = match resume_state with Some (v, _) -> v | None -> 0 in
  (* caller-owned caches (a compiled model prefactors and pins into
     them) fall back to per-call private ones; the per-call stats below
     are deltas, so shared caches report this call's reuse only *)
  let fc_d =
    match fc_d with Some c -> c | None -> Engine.Factor_cache.create ()
  in
  let fc_s =
    match fc_s with Some c -> c | None -> Engine.Factor_cache.create ()
  in
  let hits0 = Engine.Factor_cache.hits fc_d + Engine.Factor_cache.hits fc_s in
  let misses0 =
    Engine.Factor_cache.misses fc_d + Engine.Factor_cache.misses fc_s
  in
  let series alpha len =
    match series_cache with
    | None -> Series.one_minus_over_one_plus_pow alpha len
    | Some tbl -> (
        match Hashtbl.find_opt tbl (alpha, len) with
        | Some s -> s
        | None ->
            let s = Series.one_minus_over_one_plus_pow alpha len in
            Hashtbl.add tbl (alpha, len) s;
            s)
  in
  let finish_window ~index ~start ~dt x_win =
    handoff := !handoff +. dt;
    Metrics.incr m_windows;
    Metrics.observe h_handoff dt;
    Sim_result.Builder.append builder x_win;
    completed := !completed + 1;
    Option.iter (fun f -> f ~index ~start x_win) on_window
  in
  let budget_window () =
    match budget with
    | None -> ()
    | Some b -> Budget.check_deadline_now b ~site:"window.boundary"
  in
  (* exact order-1 path: carry the O(n) endpoint state across windows
     instead of a history tail (the order-1 ρ weights alternate without
     decay, so truncation would be unsound). The order-1 OPM solve is
     the trapezoidal recursion on endpoint values e_i = 2x_i − e_{i−1};
     substituting z = x − x_off turns a window with incoming endpoint
     x_off into a zero-initial-condition window of the same system with
     bu shifted by A·x_off. *)
  let run_linear e =
    let a = sys.Multi_term.a in
    let e_dense = lazy (Csr.to_dense e) in
    let a_dense = lazy (Csr.to_dense a) in
    let x_off = Array.make n 0.0 in
    (match resume_state with
    | None -> ()
    | Some (_, st) -> (
        match Json.member "x_off" st with
        | Some xj ->
            let a =
              try Checkpoint.decode_floats xj
              with Invalid_argument msg -> cp_fail rpath msg
            in
            if Array.length a <> n then cp_fail rpath "x_off length mismatch";
            Array.blit a 0 x_off 0 n
        | None -> cp_fail rpath "missing x_off state"));
    let state_json () =
      Json.Obj [ ("x_off", Checkpoint.encode_floats x_off) ]
    in
    for win = start_win to nwin - 1 do
      budget_window ();
      let s = win * w in
      let wlen = min w (m - s) in
      Trace.with_span "window" (fun () ->
          let t0 = Unix.gettimeofday () in
          let ax = Csr.mul_vec a x_off in
          let bu_win =
            Mat.init n wlen (fun r l -> Mat.get bu r (s + l) +. ax.(r))
          in
          let dt_pre = Unix.gettimeofday () -. t0 in
          let steps = Array.make wlen h in
          let z =
            match backend with
            | `Sparse ->
                Engine.solve_linear_sparse ?health ~fcache:fc_s
                  ~pin_factors:true ?budget ~steps ~e ~a ~bu:bu_win ()
            | `Dense ->
                Engine.solve_linear_dense ?health ~fcache:fc_d
                  ~pin_factors:true ?budget ~steps ~e:(Lazy.force e_dense)
                  ~a:(Lazy.force a_dense) ~bu:bu_win ()
          in
          let t1 = Unix.gettimeofday () in
          let x_win =
            Mat.init n wlen (fun r l -> Mat.get z r l +. x_off.(r))
          in
          (* window-end endpoint of the z-frame: e'_end = 2 Σ_l (−1)^{wlen−1−l} z_l *)
          for r = 0 to n - 1 do
            let zend = ref 0.0 in
            for l = 0 to wlen - 1 do
              let sign = if (wlen - 1 - l) land 1 = 1 then -1.0 else 1.0 in
              zend := !zend +. (sign *. Mat.get z r l)
            done;
            x_off.(r) <- x_off.(r) +. (2.0 *. !zend)
          done;
          let dt = dt_pre +. (Unix.gettimeofday () -. t1) in
          finish_window ~index:win ~start:s ~dt x_win;
          maybe_checkpoint ~win state_json;
          if fault_handoff () then x_off.(0) <- Float.nan)
    done
  in
  (* general path: the tail of the Toeplitz history becomes a RHS
     correction. ρ_α factors as ρ_n ⊛ ρ_β (n = ⌊α⌋): because
     ((1−q)/(1+q))^n satisfies (1+q)^n·y = (1−q)^n·x, the integer
     factor is an order-n linear recurrence

      Σ_p C(n,p) y_{t−p} = Σ_p (−1)^p C(n,p) x_{t−p}

     whose state is carried across windows {e exactly} — the ρ_n
     weights alternate without decay, so they must never be truncated.
     Only the ρ_β factor (weights decaying like lag^{−(1+β)}) is
     short-memory truncated to the last k_eff transformed columns. *)
  let run_general () =
    let terms = sys.Multi_term.terms in
    let term_data =
      List.map
        (fun { Multi_term.coeff; alpha } ->
          let n_int, beta = split_alpha alpha in
          let binom = Array.make (n_int + 1) 1.0 in
          for p = 1 to n_int do
            binom.(p) <-
              binom.(p - 1)
              *. float_of_int (n_int - p + 1)
              /. float_of_int p
          done;
          let rho_beta = if beta = 0.0 then [||] else series beta m in
          (* y ring keeps the last k_eff transformed columns for the
             ρ_β tail, but never fewer than the n_int recurrence
             boundary values — those are exact carried state *)
          let yr = max (max k_eff n_int) 1 in
          {
            coeff;
            scale = (2.0 /. h) ** alpha;
            n_int;
            beta;
            binom;
            rho_beta;
            rho_full = series alpha m;
            yr;
            yring = Array.make yr [||];
          })
        terms
    in
    let key_salt =
      List.map (fun { Multi_term.alpha; _ } -> alpha) terms @ [ h ]
    in
    let d_win wlen =
      List.map
        (fun ti ->
          Mat.init wlen wlen (fun i j ->
              if j >= i then ti.scale *. ti.rho_full.(j - i) else 0.0))
        term_data
    in
    let d_full = d_win w in
    (* within-window D blocks are Toeplitz by construction (first row
       scale·ρ_α), so each per-window engine call can take the FFT
       history fast path — restricted, like Opm.uniform_toeplitz, to
       non-growing kernels (α ≤ 1): for α > 1 the alternating growing
       ρ_α terms only stay accurate under the naive scan's pairwise
       cancellation order *)
    let fft_safe =
      List.for_all (fun { Multi_term.alpha; _ } -> alpha <= 1.0) terms
    in
    let t_win wlen =
      if fft_safe && Engine.fft_rhs_enabled () then
        Some
          (List.map
             (fun ti -> Array.init wlen (fun l -> ti.scale *. ti.rho_full.(l)))
             term_data)
      else None
    in
    let t_full = t_win w in
    let ilog2 v =
      let r = ref 0 and v = ref v in
      while !v > 1 do
        incr r;
        v := !v lsr 1
      done;
      !r
    in
    let dense_coeffs =
      lazy (List.map (fun { Multi_term.coeff; _ } -> Csr.to_dense coeff) terms)
    in
    let a_dense = lazy (Csr.to_dense sys.Multi_term.a) in
    let max_nint = List.fold_left (fun acc ti -> max acc ti.n_int) 0 term_data in
    let xr = max max_nint 1 in
    let xring = Array.make xr [||] in
    let zero_vec = Array.make n 0.0 in
    (match resume_state with
    | None -> ()
    | Some (_, st) ->
        (match Json.member "xring" st with
        | Some xj ->
            let slots = decode_slots ~len:xr xj in
            Array.blit slots 0 xring 0 xr
        | None -> cp_fail rpath "missing xring state");
        (match Option.map Json.to_list_opt (Json.member "terms" st) with
        | Some (Some l) when List.length l = List.length term_data ->
            List.iter2
              (fun ti tj ->
                match Json.member "yring" tj with
                | Some yj ->
                    let slots = decode_slots ~len:ti.yr yj in
                    Array.blit slots 0 ti.yring 0 ti.yr
                | None -> cp_fail rpath "missing yring state")
              term_data l
        | _ -> cp_fail rpath "malformed per-term state"));
    let state_json () =
      Json.Obj
        [
          ("xring", encode_slots xring);
          ( "terms",
            Json.List
              (List.map
                 (fun ti -> Json.Obj [ ("yring", encode_slots ti.yring) ])
                 term_data) );
        ]
    in
    for win = start_win to nwin - 1 do
      budget_window ();
      let s = win * w in
      let wlen = min w (m - s) in
      Trace.with_span "window" (fun () ->
          let t0 = Unix.gettimeofday () in
          let bu_win = Mat.init n wlen (fun r l -> Mat.get bu r (s + l)) in
          let j0 = max 0 (s - k_eff) in
          if s > 0 then
            List.iter
              (fun ti ->
                (* u_t, t ∈ [s, s+wlen): the pre-window history pushed
                   through the ρ_n transform with in-window x ≡ 0 — the
                   part of the transformed stream the window's own D
                   does not see *)
                let u = Array.make wlen zero_vec in
                for l = 0 to wlen - 1 do
                  let t = s + l in
                  let acc = Array.make n 0.0 in
                  for p = 0 to ti.n_int do
                    let j = t - p in
                    if j < s && j >= 0 then
                      let c =
                        (if p land 1 = 1 then -1.0 else 1.0) *. ti.binom.(p)
                      in
                      Vec.axpy c xring.(j mod xr) acc
                  done;
                  for p = 1 to ti.n_int do
                    let j = t - p in
                    let v =
                      if j >= s then u.(j - s)
                      else if j >= 0 then ti.yring.(j mod ti.yr)
                      else zero_vec
                    in
                    Vec.axpy (-.ti.binom.(p)) v acc
                  done;
                  u.(l) <- acc
                done;
                (* tail correction T_l = scale · Σ_b ρ_β(b) U(t−b),
                   truncated to transformed columns ≥ j0; β = 0 terms
                   collapse to T_l = scale · u_l — exact, no tail *)
                (* the pre-window part Σ_{tt=j0}^{s−1} ρ_β(t−tt)·y(tt)
                   is a middle product: the slice [p_len, p_len+wlen) of
                   the convolution of the ring contents y[j0, s) with
                   the ρ_β prefix. Above a flop threshold (naive is
                   wlen·p_len axpys per row vs two length-fsize
                   transforms) it goes through the shared FFT kernels;
                   the in-window part (at most wlen lags) stays naive
                   either way *)
                let p_len = s - j0 in
                let pre =
                  if ti.beta = 0.0 || p_len = 0 then None
                  else begin
                    let fsize = Fft.next_power_of_two (p_len + wlen) in
                    if
                      Engine.fft_rhs_enabled ()
                      && wlen * p_len >= 4 * fsize * (ilog2 fsize + 1)
                    then begin
                      let klen =
                        min (Array.length ti.rho_beta) (p_len + wlen)
                      in
                      let kernel = Array.sub ti.rho_beta 0 klen in
                      let ys =
                        Array.init n (fun r ->
                            Array.init p_len (fun a ->
                                ti.yring.((j0 + a) mod ti.yr).(r)))
                      in
                      Some (Fft.conv_real_many ys kernel)
                    end
                    else None
                  end
                in
                for l = 0 to wlen - 1 do
                  let t = s + l in
                  let v = Array.make n 0.0 in
                  (if ti.beta = 0.0 then Vec.axpy ti.scale u.(l) v
                   else
                     match pre with
                     | Some cv ->
                         let idx = p_len + l in
                         for r = 0 to n - 1 do
                           let c = cv.(r) in
                           if idx < Array.length c then
                             v.(r) <- ti.scale *. c.(idx)
                         done;
                         for tt = s to t do
                           let c = ti.scale *. ti.rho_beta.(t - tt) in
                           if c <> 0.0 then Vec.axpy c u.(tt - s) v
                         done
                     | None ->
                         for tt = j0 to t do
                           let c = ti.scale *. ti.rho_beta.(t - tt) in
                           if c <> 0.0 then
                             let uv =
                               if tt >= s then u.(tt - s)
                               else ti.yring.(tt mod ti.yr)
                             in
                             Vec.axpy c uv v
                         done);
                  let ev = Csr.mul_vec ti.coeff v in
                  for r = 0 to n - 1 do
                    Mat.update bu_win r l (fun x -> x -. ev.(r))
                  done
                done)
              term_data;
          let dt_pre = Unix.gettimeofday () -. t0 in
          let d = if wlen = w then d_full else d_win wlen in
          let toeplitz = if wlen = w then t_full else t_win wlen in
          let x_win =
            match backend with
            | `Sparse ->
                Engine.solve_sparse ?health ~fcache:fc_s ~key_salt
                  ~pin_factors:true ?toeplitz ~history_len:m ?budget
                  ~terms:
                    (List.map2
                       (fun { Multi_term.coeff; _ } dm -> (coeff, dm))
                       terms d)
                  ~a:sys.Multi_term.a ~bu:bu_win ()
            | `Dense ->
                Engine.solve_dense ?health ~fcache:fc_d ~key_salt
                  ~pin_factors:true ?toeplitz ~history_len:m ?budget
                  ~terms:(List.map2 (fun e dm -> (e, dm)) (Lazy.force dense_coeffs) d)
                  ~a:(Lazy.force a_dense) ~bu:bu_win ()
          in
          let t1 = Unix.gettimeofday () in
          (* advance the carried state: push the window's columns through
             each term's ρ_n recurrence (this time with the real x) and
             into the y rings, then refresh the x ring *)
          let xcols = Array.init wlen (fun l -> Mat.col x_win l) in
          List.iter
            (fun ti ->
              if ti.n_int = 0 then
                for l = 0 to wlen - 1 do
                  ti.yring.((s + l) mod ti.yr) <- xcols.(l)
                done
              else begin
                let ys = Array.make wlen zero_vec in
                for l = 0 to wlen - 1 do
                  let t = s + l in
                  let acc = Array.make n 0.0 in
                  for p = 0 to ti.n_int do
                    let j = t - p in
                    if j >= 0 then
                      let xv =
                        if j >= s then xcols.(j - s) else xring.(j mod xr)
                      in
                      let c =
                        (if p land 1 = 1 then -1.0 else 1.0) *. ti.binom.(p)
                      in
                      Vec.axpy c xv acc
                  done;
                  for p = 1 to ti.n_int do
                    let j = t - p in
                    if j >= 0 then
                      let yv =
                        if j >= s then ys.(j - s)
                        else ti.yring.(j mod ti.yr)
                      in
                      Vec.axpy (-.ti.binom.(p)) yv acc
                  done;
                  ys.(l) <- acc
                done;
                for l = 0 to wlen - 1 do
                  ti.yring.((s + l) mod ti.yr) <- ys.(l)
                done
              end)
            term_data;
          if max_nint > 0 then
            for l = 0 to wlen - 1 do
              xring.((s + l) mod xr) <- xcols.(l)
            done;
          let dt = dt_pre +. (Unix.gettimeofday () -. t1) in
          finish_window ~index:win ~start:s ~dt x_win;
          maybe_checkpoint ~win state_json;
          if fault_handoff () then
            match term_data with
            | ti :: _ ->
                let slot = ti.yring.((s + wlen - 1) mod ti.yr) in
                if Array.length slot > 0 then slot.(0) <- Float.nan
            | [] -> ())
    done
  in
  (* dispatch mirrors Opm.simulate_multi_term so that windowed and
     global runs take the same per-column arithmetic; a budget or
     checkpoint-write breach mid-run surfaces as [Interrupted] carrying
     the completed-window prefix and the last good checkpoint — the
     caller gets a usable result, not nothing *)
  (try
     match (sys.Multi_term.terms, sys.Multi_term.input_order) with
     | [ { Multi_term.coeff = e; alpha = 1.0 } ], 0 -> run_linear e
     | _ -> run_general ()
   with
  | Opm_error.Error
      (( Opm_error.Deadline_exceeded _ | Opm_error.Budget_exhausted _
       | Opm_error.Io_error _ ) as error) ->
      raise
        (Interrupted
           {
             error;
             partial = Sim_result.Builder.to_mat builder;
             completed_windows = !completed;
             checkpoint = !last_checkpoint;
           }));
  let hits =
    Engine.Factor_cache.hits fc_d + Engine.Factor_cache.hits fc_s - hits0
  in
  let misses =
    Engine.Factor_cache.misses fc_d + Engine.Factor_cache.misses fc_s
    - misses0
  in
  Metrics.incr ~by:hits m_factor_reuse;
  ( Sim_result.Builder.to_mat builder,
    {
      windows = nwin;
      width = w;
      memory_len = k_eff;
      factor_hits = hits;
      factor_misses = misses;
      handoff_seconds = !handoff;
    } )
