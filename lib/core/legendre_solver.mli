open Opm_numkit
open Opm_signal

(** Spectral OPM: the integral-form solver in the shifted-Legendre
    polynomial basis (one of the alternative bases of paper §I).

    Block pulses converge like [O(h²)]; for *smooth* inputs a polynomial
    basis converges spectrally — a handful of Legendre coefficients can
    beat hundreds of block pulses. The Legendre integration operational
    matrix is not triangular, so the system is solved through the
    Kronecker form (cost [O((nm)³)]) — worthwhile exactly because [m]
    stays tiny. Discontinuous inputs (steps, pulses) lose the spectral
    rate to Gibbs oscillations; prefer block pulses there.

    The Kronecker operator is formed and factored by
    {!Spectral_solver.Operator} — the same guardrailed primitive behind
    the Jacobi-Gauss collocation backend — so [?health] receives the
    condition estimate and singularities surface as structured
    {!Opm_robust.Opm_error} values, and [?budget] enforces the
    deadline/factor caps, like every other entry point. *)

val simulate :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?x0:Vec.t ->
  t_end:float ->
  m:int ->
  sample_count:int ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Solve [E ẋ = A x + B u], [x(0) = x₀] with [m] Legendre coefficients
    per state and return the outputs [y = C x] evaluated on
    [sample_count] uniformly spaced points of [[0, t_end]]. *)

val state_coefficients :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?x0:Vec.t ->
  t_end:float ->
  m:int ->
  Descriptor.t ->
  Source.t array ->
  Mat.t
(** The raw [n×m] Legendre coefficient matrix of the state. *)
