open Opm_numkit
open Opm_basis
open Opm_signal

(** Factor-once / query-many compiled models.

    [Opm.simulate_*] re-expands the basis, rebuilds [D^α], re-plans the
    FFT convolver and re-factors the pencil on every call — yet none of
    those depend on the sources. The MPC/sweep workload class (OPOM-style
    step-response models, batched serving) solves the {e same} plant
    thousands of times with different inputs, so this module splits the
    work at exactly that line:

    - {b plant-dependent}, done once in {!compile}: BPF expansion
      scaffolding, the operational matrices [D^{α_k}] (O(m²) each), the
      ρ series, the Toeplitz first rows, the
      {!Opm_numkit.Fft.Blocked_conv} plan state (kernel spectra), and
      the factored pencil — inserted {e pinned} into an
      {!Engine.Factor_cache} so the bounded cache can never evict it
      mid-sweep;
    - {b input-dependent}, per {!solve} query: project the sources,
      form [B·U·D^r], and run the engine's column recurrence against
      the cached factors — zero factorisations, O(n·m·log m) per
      query.

    A query is bit-identical to the corresponding one-shot
    [Opm.simulate_*] call (which is itself implemented as
    compile-then-solve), because the prefactored blocks are built by the
    same pencil code the engine would run and looked up under the same
    keys.

    Windowed models delegate queries to {!Window.solve}, sharing the
    factor caches, the ρ-series cache, and the per-window Toeplitz
    machinery across windows {e and} queries.

    Queries are sequential: a compiled model carries mutable per-query
    scratch (the FFT convolver), so one [t] must not be queried from
    two domains concurrently.

    Observability: [compiled.queries] counts queries,
    [compiled.factor_reuse] counts pencil lookups served from the
    model's caches, and each query runs in a ["compiled_solve"] trace
    span ([compile] in a ["compiled.compile"] span). *)

type backend = [ `Auto | `Dense | `Sparse ]

type basis = [ `Bpf | `Spectral ]
(** The discretisation basis: [`Bpf] (default) is the paper's
    block-pulse expansion with its triangular column recurrence;
    [`Spectral] is the Jacobi-Gauss collocation backend of
    {!Spectral_solver} — exponentially convergent on smooth sources, so
    [m ≈ 32] collocation nodes replace thousands of block pulses (see
    DESIGN.md §18 for the when-to-use table and the Gibbs caveat on
    discontinuous sources). *)

type t

val compile :
  ?backend:backend ->
  ?basis:basis ->
  ?health:Opm_robust.Health.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  Multi_term.t ->
  t
(** Precompute everything plant-dependent. [?window]/[?memory_len]
    select the windowed streaming driver for queries (same semantics as
    {!Opm.simulate_multi_term}; [window ≥ m] degenerates to the global
    path). [?health] collects fallback events of the compile-time
    factorisation itself; per-query collection is a {!solve} argument.
    Raises [Invalid_argument] for [window < 1].

    Adaptive grids compile too — the operational matrices are still
    amortised — but skip prefactoring and pinning (one pinned entry per
    distinct step would be unbounded); the first query factors and the
    bounded cache carries the factors to later queries.

    [?basis:`Spectral] compiles the Jacobi-Gauss collocation operator
    instead ([Grid.size grid] becomes the collocation-node count; the
    waveform views stay on the same grid's midpoints). The collocation
    operator is input-independent, so the factor-once/query-many
    contract carries over: exactly one factorisation at compile, every
    query a back-solve. Spectral models are global by construction —
    [?window]/[?memory_len] raise [Invalid_argument], and so do
    adaptive grids. *)

val compile_linear :
  ?backend:backend ->
  ?basis:basis ->
  ?health:Opm_robust.Health.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  Descriptor.t ->
  t
(** [compile] of {!Multi_term.of_linear}. *)

val compile_fractional :
  ?backend:backend ->
  ?basis:basis ->
  ?health:Opm_robust.Health.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  alpha:float ->
  Descriptor.t ->
  t
(** [compile] of {!Multi_term.of_fractional}. *)

val solve :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  ?x0:Vec.t ->
  t ->
  Source.t array ->
  Sim_result.t
(** One query: project [sources], apply the [x₀] substitution, and run
    the column recurrence against the compiled state. Bit-identical to
    the matching one-shot [Opm.simulate_*] call.

    [?budget] enforces the deadline/factor/heap caps cooperatively on
    every plan; [?checkpoint]/[?checkpoint_every]/[?resume_from] are
    forwarded to {!Window.solve} and require a windowed model
    ([Invalid_argument] otherwise — the global paths have no
    window-boundary state to snapshot). A budget breach or
    checkpoint-write failure on a windowed model raises
    {!Window.Interrupted}. *)

val solve_coeffs :
  ?health:Opm_robust.Health.t -> ?budget:Opm_robust.Budget.t -> t -> Mat.t -> Mat.t
(** Raw query: [u] is the [p×m] input-coefficient matrix (already in
    BPF coordinates — see {!input_coefficients}); applies the input
    derivative [U·D^r] when the system has one and returns the raw
    [n×m] state-coefficient matrix (zero initial state, no output
    projection). The step/impulse-response exporters are one-liners on
    top of this. Raises [Invalid_argument] on spectral-basis models:
    their queries sample sources at collocation nodes, there is no BPF
    coefficient layer to inject into. *)

val queries : t -> int
(** Queries answered so far. *)

val factor_reuse : t -> int
(** Pencil lookups served from {e this model's} factor caches — the
    per-plant counterpart of the process-global [compiled.factor_reuse]
    metrics counter (which sums every model in the process and
    therefore cannot attribute reuse to a plant). On a uniform-grid
    model this increments once per query. *)

val factorisations : t -> int
(** Pencil factorisations {e this model} has performed (cache misses of
    its own caches, the compile-time prefactorisation included). A
    healthy uniform-grid model reports [1] for its whole lifetime —
    the factor-once contract a serving layer asserts per plant. *)

val grid : t -> Grid.t

val system : t -> Multi_term.t

val backend : t -> [ `Dense | `Sparse ]
(** The resolved backend ([`Auto] is resolved at compile time). *)

val basis : t -> basis
(** The basis this model was compiled in. *)

(** {2 Shared OPM helpers}

    Implementation home of helpers re-exported by {!Opm} (this module
    sits below it in the dependency order). *)

val input_coefficients : grid:Grid.t -> Source.t array -> Mat.t

val bu_matrix :
  ?deriv:(unit -> Mat.t) -> grid:Grid.t -> Multi_term.t -> Source.t array -> Mat.t

val pick_backend : backend -> int -> [ `Dense | `Sparse ]

val fft_safe_terms : Multi_term.term list -> bool

val uniform_toeplitz :
  grid:Grid.t ->
  terms:Multi_term.term list ->
  ('a * Mat.t) list ->
  float array list option

val shift_by_x0 : Mat.t -> Vec.t -> Mat.t
