open Opm_numkit
open Opm_sparse
open Opm_robust
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

(* observability instruments (no-ops unless metrics/tracing are enabled):
   per-column wall time, column count, and one counter per rung of the
   fallback cascade — the machine-readable shadow of the Health events *)
let m_columns = Metrics.counter "engine.columns"
let m_refine_attempted = Metrics.counter "engine.refine.attempted"
let m_refine_kept = Metrics.counter "engine.refine.kept"
let m_strict_refactor = Metrics.counter "engine.strict_refactor"
let m_dense_fallback = Metrics.counter "engine.dense_fallback"
(* mean per-column wall time, sampled once per 8-column batch: a clock
   read per column would by itself eat the < 2% overhead budget *)
let h_column_seconds = Metrics.histogram "engine.column_seconds"
let m_rhsconv_blocks = Metrics.counter "engine.rhsconv.blocks"
let m_rhsconv_naive = Metrics.counter "engine.rhsconv.naive_cols"

(* ------------------------------------------------------------------ *)
(* FFT history-convolution switch. The Toeplitz fast path reassociates
   the history summation, so its output matches the naive scan to
   roundoff rather than bit-identically; OPM_NO_FFT_RHS (or
   [set_fft_rhs_enabled false], or the CLI's --no-fft-rhs) forces every
   solve back onto the naive path. *)

let fft_rhs_flag = ref None

let fft_rhs_enabled () =
  match !fft_rhs_flag with
  | Some b -> b
  | None ->
      let b =
        match Sys.getenv_opt "OPM_NO_FFT_RHS" with
        | None | Some "" | Some "0" -> true
        | Some _ -> false
      in
      fft_rhs_flag := Some b;
      b

let set_fft_rhs_enabled b = fft_rhs_flag := Some b

let check_terms_dims ~n ~m terms a_rows a_cols =
  if a_rows <> n || a_cols <> n then
    invalid_arg "Engine: A dimension mismatch with BU";
  List.iter
    (fun ((er, ec), (dr, dc)) ->
      if er <> n || ec <> n then invalid_arg "Engine: E_k dimension mismatch";
      if dr <> m || dc <> m then invalid_arg "Engine: D_k dimension mismatch")
    terms

(* ------------------------------------------------------------------ *)
(* Fault-injection sites and budget check-points. Each [Fault.fire] is
   one atomic load when no plan is armed, and each budget hook is one
   [Option] match when no budget is threaded — together they are the
   "disabled path" gated < 2% by [bench resilience]. The kind → effect
   mapping is mechanical so every cell of the site × kind matrix ends
   in either a structured Opm_error or a recovery the cascade already
   knows how to verify (see DESIGN.md §15 for the full table). *)

let fault_injected site =
  Opm_error.raise_
    (Opm_error.Fault_injected
       {
         site = Fault.site_to_string site;
         kind =
           (match Fault.armed () with
           | Some p -> Fault.kind_to_string p.kind
           | None -> "unknown");
       })

(* Factor site, dense backend: Singular is terminal (dense LU already
   pivots strictly); Nan_poison factors an all-NaN pencil, which the
   factoriser rejects as structurally singular — both structured. *)
let fault_factor_dense ~column dmat =
  match Fault.fire Fault.Factor with
  | None -> dmat
  | Some Fault.Latency ->
      Fault.latency_sleep ();
      dmat
  | Some Fault.Singular ->
      Opm_error.raise_
        (Opm_error.Singular_pencil { column; step = 0; pivot = 0.0; name = None })
  | Some Fault.Nan_poison -> Mat.scale Float.nan dmat
  | Some Fault.Enospc -> fault_injected Fault.Factor

(* Column-solve site: Nan_poison overwrites one solution entry (the
   guard cascade must notice and either re-factor or raise Non_finite —
   never let the NaN reach the result matrix). *)
let fault_column ~column x =
  match Fault.fire Fault.Column_solve with
  | None -> x
  | Some Fault.Latency ->
      Fault.latency_sleep ();
      x
  | Some Fault.Nan_poison ->
      let x = Array.copy x in
      if Array.length x > 0 then x.(0) <- Float.nan;
      x
  | Some Fault.Singular ->
      Opm_error.raise_
        (Opm_error.Singular_pencil { column; step = 0; pivot = 0.0; name = None })
  | Some Fault.Enospc -> fault_injected Fault.Column_solve

(* FFT-block site lives here rather than in numkit so the convolver
   stays dependency-free; fired once per history-assembled column. *)
let fault_fft_block () =
  match Fault.fire Fault.Fft_block with
  | None -> false
  | Some Fault.Latency ->
      Fault.latency_sleep ();
      false
  | Some Fault.Nan_poison -> true
  | Some (Fault.Singular | Fault.Enospc) -> fault_injected Fault.Fft_block

let budget_column budget =
  match budget with
  | None -> ()
  | Some b -> Budget.check_deadline b ~site:"engine.column"

let budget_factor ?(bytes = 0) budget =
  match budget with
  | None -> ()
  | Some b -> Budget.charge_factor ~bytes b ~site:"engine.factor"

let diag_key terms i = List.map (fun (_, d) -> Mat.get d i i) terms

let same_key a b = List.for_all2 (fun (x : float) y -> x = y) a b

(* Bounded key → factorisation cache. An assoc list keyed on the exact
   float step is pathological on fully-adaptive grids: every column
   misses, so each lookup scans the whole list (O(m²) total) and the
   list grows without bound. A hashtable gives O(1) lookups and a
   capacity cap bounds the memory; on overflow the cache is reset —
   adaptive grids that miss every time pay exactly one factorisation
   per column either way, while uniform and few-distinct-step grids
   stay fully cached.

   The key is polymorphic. A cache confined to one solve call may key
   on whatever distinguishes the diagonal blocks there (the float step,
   the diagonal coefficients). A cache *shared across solves* — the
   windowed streaming driver, or any process mixing differentiation
   orders on one grid — must key on the full (α₁…α_K, h) identity of
   the pencil, not just the diagonal coefficients: (2/h)^α collides for
   different (α, h) pairs (at h = 2 it is 1.0 for every α), so a
   diagonal-only key would silently reuse the wrong factorisation.
   {!solve_dense}/{!solve_sparse} take that salt via [?key_salt]. *)
module Factor_cache = struct
  type ('k, 'f) t = {
    capacity : int;
    table : ('k, 'f) Hashtbl.t;
    pinned : ('k, 'f) Hashtbl.t;
        (* pinned entries live outside the capacity bound and survive
           the overflow reset: a sweep interleaving many (α, h) keys can
           blow the bounded table away mid-run, and without pinning that
           evicts the one factor every window (or every compiled query)
           is about to ask for again *)
    mutable hits : int;
    mutable misses : int;
  }

  let default_capacity = 64

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Engine.Factor_cache.create: capacity < 1";
    {
      capacity;
      table = Hashtbl.create capacity;
      pinned = Hashtbl.create 4;
      hits = 0;
      misses = 0;
    }

  let length c = Hashtbl.length c.table + Hashtbl.length c.pinned

  let pinned_count c = Hashtbl.length c.pinned

  let hits c = c.hits

  let misses c = c.misses

  let find_or_add ?(pin = false) c h factor =
    match Hashtbl.find_opt c.pinned h with
    | Some f ->
        c.hits <- c.hits + 1;
        f
    | None -> (
        match Hashtbl.find_opt c.table h with
        | Some f ->
            c.hits <- c.hits + 1;
            if pin then begin
              Hashtbl.remove c.table h;
              Hashtbl.add c.pinned h f
            end;
            f
        | None ->
            c.misses <- c.misses + 1;
            let f = factor h in
            if pin then Hashtbl.add c.pinned h f
            else begin
              if Hashtbl.length c.table >= c.capacity then
                Hashtbl.reset c.table;
              Hashtbl.add c.table h f
            end;
            f)
end

(* Diagonal-block lookup shared by {!solve_dense}/{!solve_sparse}: a
   caller-supplied cross-call cache (salted, see {!Factor_cache}) when
   given, else the per-call single-entry cache — consecutive columns of
   one solve share the diagonal coefficients on uniform grids, so one
   entry already captures the within-call reuse. *)
let block_lookup ?(pin = false) ~fcache ~key_salt ~build () =
  match fcache with
  | Some fc ->
      (* per-call single-entry memo in front of the shared cache: on a
         uniform grid every column shares one key, so a whole engine
         call costs exactly one shared-cache access — which makes the
         cross-call hit/miss statistics count engine calls, not
         columns, and keeps per-column polymorphic hashing off the hot
         loop *)
      let memo = ref None in
      fun ~column key ->
        (match !memo with
        | Some (k, b) when same_key k key -> b
        | _ ->
            let b =
              Factor_cache.find_or_add ~pin fc (key_salt @ key) (fun _ ->
                  build ~column key)
            in
            memo := Some (key, b);
            b)
  | None ->
      let cache = ref None in
      fun ~column key ->
        (match !cache with
        | Some (k, b) when same_key k key -> b
        | _ ->
            let b = build ~column key in
            cache := Some (key, b);
            b)

(* Accumulate rhs_i = bu_i + sign·Σ_k E_k (Σ_{j<i} d^{(k)}_{ji} x_j),
   with [apply_e] abstracting dense/sparse E_k·v ([sign] is −1 for the
   differential forms, +1 for the integral form). When [conv] is given
   the history sums come from the blocked FFT convolver (the solved
   columns must have been pushed into it); otherwise the D_k columns are
   scanned naively — that branch is bit-identical to the historical
   engine. *)
let column_rhs ?conv ?(sign = -1.0) ~n ~bu ~terms ~apply_e ~cols i =
  let rhs = Array.init n (fun r -> Mat.get bu r i) in
  (match conv with
  | Some cv ->
      if i > 0 then begin
        let poison = fault_fft_block () in
        List.iteri
          (fun k _ ->
            let hist = Fft.Blocked_conv.history cv ~term:k i in
            (* [history] returns a fresh vector, so poisoning it never
               touches the convolver's internal state *)
            if poison && k = 0 && Array.length hist > 0 then
              hist.(0) <- Float.nan;
            let ev = apply_e k hist in
            Vec.axpy sign ev rhs)
          terms
      end
  | None ->
      List.iteri
        (fun k (_, dmat) ->
          let acc = Array.make n 0.0 in
          let any = ref false in
          for j = 0 to i - 1 do
            let w = Mat.get dmat j i in
            if w <> 0.0 then begin
              any := true;
              Vec.axpy w cols.(j) acc
            end
          done;
          if !any then begin
            let ev = apply_e k acc in
            Vec.axpy sign ev rhs
          end)
        terms);
  rhs

(* Below this horizon length the naive scan wins (or ties within
   noise): the convolver's first dyadic levels are many tiny FFTs whose
   setup cost the short naive tail never amortises. Measured on the
   Table I kernel the crossover sits between m = 128 and m = 256, so
   short horizons keep the scan — which also keeps them bit-identical
   to the historical engine. *)
let fft_rhs_min_m = 256

(* [toeplitz], when given, carries the first row of each (uniform-grid,
   upper-triangular Toeplitz) D_k: entry [l] is the lag-l weight
   d^{(k)}_{j,j+l}. A single-column horizon has no history, so the
   convolver is skipped there.

   The crossover gate compares against [history_len] — the {e effective
   global} history length — rather than the local column count [m]: a
   windowed caller hands the engine wlen-row Toeplitz blocks, and gating
   on wlen alone would keep a 4096-column horizon solved with
   [--window 64] on the naive scan forever, even though the workload as
   a whole is deep enough to amortise the FFT setup many times over.
   One-shot callers leave [history_len] at its default [m].

   [conv_reuse], when its shape matches, is reset and reused instead of
   allocating a fresh convolver — a compiled model carries the
   twiddle/plan state across queries this way. *)
let make_conv ?conv_reuse ?history_len ~toeplitz ~nterms ~n ~m () =
  match toeplitz with
  | None -> None
  | Some rows ->
      if List.length rows <> nterms then
        invalid_arg "Engine: toeplitz term-count mismatch";
      List.iter
        (fun r ->
          if Array.length r <> m then
            invalid_arg "Engine: toeplitz row-length mismatch")
        rows;
      let history_len = max m (Option.value history_len ~default:m) in
      if m > 1 && history_len >= fft_rhs_min_m && fft_rhs_enabled () then
        match conv_reuse with
        | Some cv
          when Fft.Blocked_conv.rows cv = n
               && Fft.Blocked_conv.horizon cv = m
               && Fft.Blocked_conv.nterms cv = nterms ->
            Fft.Blocked_conv.reset cv;
            Some cv
        | Some _ | None ->
            Some
              (Fft.Blocked_conv.create ~kernels:(Array.of_list rows) ~rows:n
                 ~m ())
      else None

(* per-solve convolver bookkeeping for the obs layer *)
let record_conv_metrics ~conv ~m =
  match conv with
  | Some cv -> Metrics.incr ~by:(Fft.Blocked_conv.blocks cv) m_rhsconv_blocks
  | None -> Metrics.incr ~by:m m_rhsconv_naive

(* ------------------------------------------------------------------ *)
(* Fallback cascade                                                    *)

let record_event health e = Option.iter (fun h -> Health.record_event h e) health

(* ‖M x − rhs‖∞ given M·x; NaN entries count as an infinite residual *)
let residual_of ax rhs =
  let r = ref 0.0 in
  for i = 0 to Array.length rhs - 1 do
    let d = ax.(i) -. rhs.(i) in
    if Float.is_nan d then r := Float.infinity
    else begin
      let d = Float.abs d in
      if d > !r then r := d
    end
  done;
  !r

(* One step of iterative refinement on the diagonal block: the refined
   column is kept only when it is finite and strictly reduces the
   residual, so this is a bit-identical no-op whenever the trigger fires
   spuriously. Returns the column and its residual. *)
let refine_column ?health ~column ~solve ~apply x rhs =
  Metrics.incr m_refine_attempted;
  Trace.with_span "refine" @@ fun () ->
  let n = Array.length rhs in
  let ax = apply x in
  let res0 = residual_of ax rhs in
  let r = Array.init n (fun i -> rhs.(i) -. ax.(i)) in
  match Guard.protect (fun () -> solve r) with
  | Error _ ->
      record_event health
        (Health.Refined
           { column; residual_before = res0; residual_after = res0; kept = false });
      (x, res0)
  | Ok dx ->
      let x' = Array.init n (fun i -> x.(i) +. dx.(i)) in
      let res1 = residual_of (apply x') rhs in
      let kept = Guard.is_finite x' && res1 < res0 in
      record_event health
        (Health.Refined
           { column; residual_before = res0; residual_after = res1; kept });
      if kept then begin
        Metrics.incr m_refine_kept;
        (x', res1)
      end
      else (x, res0)

let raise_non_finite ~stage ~column x =
  let nans, infs = Guard.count_non_finite x in
  Opm_error.raise_
    (Opm_error.Non_finite { stage; column = Some column; nans; infs })

(* Post-solve guard shared by both backends: escalate non-finite columns
   through [escalate] (strict pivoting / dense fallback, backend
   specific), then attempt refinement when the factor's condition
   estimate crosses [cond_limit], then book-keep into [health]. On a
   finite, well-conditioned column this returns [x] untouched. *)
let guard_column ?health ~cond_limit ~column ~solve ~apply ~cond ~escalate x
    rhs =
  let x = if Guard.is_finite x then x else escalate x in
  let c = cond () in
  Option.iter (fun h -> Health.record_cond h c) health;
  let x, res =
    if c > cond_limit then
      let x, res = refine_column ?health ~column ~solve ~apply x rhs in
      (x, Some res)
    else (x, None)
  in
  (match health with
  | None -> ()
  | Some h ->
      Health.record_vec h x;
      let res =
        match res with Some r -> r | None -> residual_of (apply x) rhs
      in
      Health.record_residual h res);
  x

(* --- dense blocks --------------------------------------------------- *)

type dense_block = { dmat : Mat.t; dlu : Lu.t }

let dense_block ~column dmat =
  let dmat = fault_factor_dense ~column dmat in
  match Lu.factor dmat with
  | lu -> { dmat; dlu = lu }
  | exception Lu.Singular k ->
      Opm_error.raise_
        (Opm_error.Singular_pencil { column; step = k; pivot = 0.0; name = None })

let solve_col_dense ?health ~cond_limit ~column blk rhs =
  let solve = Lu.solve blk.dlu in
  let apply = Mat.mul_vec blk.dmat in
  let x = fault_column ~column (solve rhs) in
  (* dense LU already pivots strictly, so there is no stronger
     factorisation to escalate to: a non-finite column is terminal *)
  let escalate x = raise_non_finite ~stage:"solve-dense" ~column x in
  guard_column ?health ~cond_limit ~column ~solve ~apply
    ~cond:(fun () -> Lu.cond_est blk.dlu)
    ~escalate x rhs

(* --- sparse blocks -------------------------------------------------- *)

type sparse_factor = Sfac of Slu.t | Dfac of Lu.t

type sparse_block = {
  smat : Csr.t;
  mutable strict_tried : bool;
  mutable sfac : sparse_factor;
}

let sparse_solve blk rhs =
  match blk.sfac with Sfac f -> Slu.solve f rhs | Dfac f -> Lu.solve f rhs

let sparse_cond blk =
  match blk.sfac with Sfac f -> Slu.cond_est f | Dfac f -> Lu.cond_est f

(* escalation rung 3: abandon the sparse factorisation entirely *)
let dense_fallback_factor ?health ~column smat =
  Metrics.incr m_dense_fallback;
  record_event health (Health.Dense_fallback { column });
  match Lu.factor (Csr.to_dense smat) with
  | lu -> Dfac lu
  | exception Lu.Singular k ->
      Opm_error.raise_
        (Opm_error.Singular_pencil { column; step = k; pivot = 0.0; name = None })

(* escalation rung 2: trade fill for stability with strict pivoting *)
let strict_factor ?health ~column smat =
  Metrics.incr m_strict_refactor;
  record_event health (Health.Strict_refactor { column });
  match Slu.factor ~pivot_tol:1.0 smat with
  | f -> Sfac f
  | exception Slu.Singular _ -> dense_fallback_factor ?health ~column smat

let sparse_block ?health ?sym ~column smat =
  (* Factor site, sparse backend: Singular simulates a failed default
     factorisation, driving the strict-pivoting rung — a recovery, not
     an error; Nan_poison poisons the pencil, which rides the cascade
     down to a structured Singular_pencil at the dense rung. *)
  let smat, forced_strict =
    match Fault.fire Fault.Factor with
    | None -> (smat, false)
    | Some Fault.Latency ->
        Fault.latency_sleep ();
        (smat, false)
    | Some Fault.Singular -> (smat, true)
    | Some Fault.Nan_poison -> (Csr.scale Float.nan smat, false)
    | Some Fault.Enospc -> fault_injected Fault.Factor
  in
  (* [sym] carries the symbolic analysis of a previously factored pencil
     with the same sparsity structure: the ⌈m⌉ distinct pencils of one
     OPM solve pay ordering/reach/fill-pattern discovery exactly once,
     with {!Slu.factor_hinted} falling back to a fresh analysis on any
     mismatch or pivot degradation.  The strict rung below stays
     hint-free: strict pivoting re-derives its own pivot sequence. *)
  let default_factor () =
    match sym with
    | Some hint -> Slu.factor_hinted ~hint smat
    | None -> Slu.factor smat
  in
  if forced_strict then
    { smat; strict_tried = true; sfac = strict_factor ?health ~column smat }
  else
    match default_factor () with
    | f -> { smat; strict_tried = false; sfac = Sfac f }
    | exception Slu.Singular _ ->
        { smat; strict_tried = true; sfac = strict_factor ?health ~column smat }

let solve_col_sparse ?health ~cond_limit ~column blk rhs =
  let x = fault_column ~column (sparse_solve blk rhs) in
  (* the escalations mutate [blk], so later columns sharing the cached
     block reuse the strongest factorisation reached so far *)
  let escalate x =
    let x = ref x in
    if (not blk.strict_tried) && not (Guard.is_finite !x) then begin
      blk.strict_tried <- true;
      blk.sfac <- strict_factor ?health ~column blk.smat;
      x := sparse_solve blk rhs
    end;
    (match blk.sfac with
    | Sfac _ when not (Guard.is_finite !x) ->
        blk.sfac <- dense_fallback_factor ?health ~column blk.smat;
        x := sparse_solve blk rhs
    | Sfac _ | Dfac _ -> ());
    if not (Guard.is_finite !x) then
      raise_non_finite ~stage:"solve-sparse" ~column !x;
    !x
  in
  guard_column ?health ~cond_limit ~column
    ~solve:(fun r -> sparse_solve blk r)
    ~apply:(Csr.mul_vec blk.smat)
    ~cond:(fun () -> sparse_cond blk)
    ~escalate x rhs

(* ------------------------------------------------------------------ *)

(* The diagonal-block pencils, shared verbatim between the solvers and
   the {!prefactor_dense}/{!prefactor_sparse} compile-ahead entry
   points so a prefactored block is bit-identical to the one the solve
   loop would have built. [key] is the per-column diagonal coefficient
   list (one per term). *)
let dense_pencil ~es ~a key =
  List.fold_left2
    (fun acc e dii -> Mat.add acc (Mat.scale dii e))
    (Mat.scale (-1.0) a) es key

let sparse_pencil ~es ~a key =
  List.fold_left2
    (fun acc e dii -> Csr.add ~alpha:1.0 ~beta:dii acc e)
    (Csr.scale (-1.0) a) es key

let linear_pencil_dense ~h ~e ~a = Mat.sub (Mat.scale (2.0 /. h) e) a

let linear_pencil_sparse ~h ~e ~a = Csr.add ~alpha:(2.0 /. h) ~beta:(-1.0) e a

let solve_dense ?health ?(cond_limit = Health.default_cond_limit) ?fcache
    ?(key_salt = []) ?(pin_factors = false) ?toeplitz ?history_len ?conv_reuse
    ?budget ~terms ~a ~bu () =
  Trace.with_span "engine.solve_dense" @@ fun () ->
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Mat.dims e, Mat.dims d)) terms)
    (fst (Mat.dims a)) (snd (Mat.dims a));
  let term_mats = Array.of_list (List.map fst terms) in
  let apply_e k v = Mat.mul_vec term_mats.(k) v in
  let conv =
    make_conv ?conv_reuse ?history_len ~toeplitz ~nterms:(List.length terms)
      ~n ~m ()
  in
  let cols = Array.make m [||] in
  let es = List.map fst terms in
  let build ~column key =
    budget_factor ~bytes:(n * n * 8) budget;
    Trace.with_span "factor" (fun () ->
        dense_block ~column (dense_pencil ~es ~a key))
  in
  let lookup = block_lookup ~pin:pin_factors ~fcache ~key_salt ~build () in
  Metrics.incr ~by:m m_columns;
  let t_lap = ref (Metrics.lap_start ()) in
  for i = 0 to m - 1 do
    budget_column budget;
    let rhs = column_rhs ?conv ~n ~bu ~terms ~apply_e ~cols i in
    let blk = lookup ~column:i (diag_key terms i) in
    cols.(i) <- solve_col_dense ?health ~cond_limit ~column:i blk rhs;
    Option.iter (fun cv -> Fft.Blocked_conv.push cv cols.(i)) conv;
    if i land 7 = 7 then
      t_lap := Metrics.lap_mean h_column_seconds 8 !t_lap
  done;
  record_conv_metrics ~conv ~m;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

let solve_sparse ?health ?(cond_limit = Health.default_cond_limit) ?fcache
    ?(key_salt = []) ?(pin_factors = false) ?toeplitz ?history_len ?conv_reuse
    ?budget ?slu_symbolic ~terms ~a ~bu () =
  Trace.with_span "engine.solve_sparse" @@ fun () ->
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Csr.dims e, Mat.dims d)) terms)
    (fst (Csr.dims a)) (snd (Csr.dims a));
  let term_mats = Array.of_list (List.map fst terms) in
  let apply_e k v = Csr.mul_vec term_mats.(k) v in
  let conv =
    make_conv ?conv_reuse ?history_len ~toeplitz ~nterms:(List.length terms)
      ~n ~m ()
  in
  let cols = Array.make m [||] in
  let es = List.map fst terms in
  (* all pencils Σ_k d_kii·E_k − A of one call share one union sparsity
     pattern, so a per-call hint makes every build after the first a
     numeric-only refactorisation *)
  let sym =
    match slu_symbolic with Some r -> r | None -> ref None
  in
  let build ~column key =
    let pencil = sparse_pencil ~es ~a key in
    budget_factor ~bytes:(Csr.nnz pencil * 16) budget;
    Trace.with_span "factor" (fun () ->
        sparse_block ?health ~sym ~column pencil)
  in
  let lookup = block_lookup ~pin:pin_factors ~fcache ~key_salt ~build () in
  Metrics.incr ~by:m m_columns;
  let t_lap = ref (Metrics.lap_start ()) in
  for i = 0 to m - 1 do
    budget_column budget;
    let rhs = column_rhs ?conv ~n ~bu ~terms ~apply_e ~cols i in
    let blk = lookup ~column:i (diag_key terms i) in
    cols.(i) <- solve_col_sparse ?health ~cond_limit ~column:i blk rhs;
    Option.iter (fun cv -> Fft.Blocked_conv.push cv cols.(i)) conv;
    if i land 7 = 7 then
      t_lap := Metrics.lap_mean h_column_seconds 8 !t_lap
  done;
  record_conv_metrics ~conv ~m;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

(* order-1 fast path shared between backends: [solve_col h ~column rhs]
   returns the guarded solution of (2/h·E − A) x = rhs *)
let solve_linear ?budget ~steps ~apply_e ~solve_col ~bu () =
  let n, m = Mat.dims bu in
  if Array.length steps <> m then
    invalid_arg "Engine.solve_linear: step count mismatch";
  let x = Mat.zeros n m in
  let salt = Array.make n 0.0 in
  Metrics.incr ~by:m m_columns;
  let t_lap = ref (Metrics.lap_start ()) in
  for i = 0 to m - 1 do
    budget_column budget;
    let h = steps.(i) in
    let rhs = Array.init n (fun r -> Mat.get bu r i) in
    let sign = if i land 1 = 1 then -1.0 else 1.0 in
    (* salt is exactly zero on column 0 (and after any exact reset): the
       coupling term contributes ±0.0 per entry, which adding to rhs is a
       no-op, so the E·salt matvec can be skipped *)
    if not (Array.for_all (fun v -> v = 0.0) salt) then begin
      let coupling = apply_e salt in
      Vec.axpy (-4.0 /. h *. sign) coupling rhs
    end;
    let xi = solve_col h ~column:i rhs in
    Mat.set_col x i xi;
    Vec.axpy sign xi salt;
    if i land 7 = 7 then
      t_lap := Metrics.lap_mean h_column_seconds 8 !t_lap
  done;
  x

let linear_cache_key ?(key_salt = []) h =
  (* the order-1 fast paths solve (2/h·E − A): α is pinned to 1, but the
     key carries it anyway so a cache shared with other pencils (the
     windowed driver, multi-order processes on one grid) can never
     collide on a coincidental (α, h) pair — e.g. at h = 2 the diagonal
     coefficient (2/h)^α is 1 for every α *)
  key_salt @ [ 1.0; h ]

(* per-call single-entry memo in front of the (possibly shared) step
   cache, mirroring {!block_lookup}: a uniform grid costs one cache
   access per call, so cross-call hit statistics count calls *)
let linear_lookup ~pin ~cache ~factor =
  let memo = ref None in
  fun ~column h ->
    match !memo with
    | Some ((k : float), b) when k = h -> b
    | _ ->
        let b =
          Factor_cache.find_or_add ~pin cache (linear_cache_key h) (fun _ ->
              factor ~column h)
        in
        memo := Some (h, b);
        b

let solve_linear_dense ?health ?(cond_limit = Health.default_cond_limit)
    ?fcache ?(pin_factors = false) ?budget ~steps ~e ~a ~bu () =
  Trace.with_span "engine.solve_linear_dense" @@ fun () ->
  let cache =
    match fcache with Some c -> c | None -> Factor_cache.create ()
  in
  let n = fst (Mat.dims e) in
  let factor ~column h =
    budget_factor ~bytes:(n * n * 8) budget;
    Trace.with_span "factor" (fun () ->
        dense_block ~column (linear_pencil_dense ~h ~e ~a))
  in
  let lookup = linear_lookup ~pin:pin_factors ~cache ~factor in
  let solve_col h ~column rhs =
    solve_col_dense ?health ~cond_limit ~column (lookup ~column h) rhs
  in
  solve_linear ?budget ~steps ~apply_e:(Mat.mul_vec e) ~solve_col ~bu ()

let solve_linear_sparse ?health ?(cond_limit = Health.default_cond_limit)
    ?fcache ?(pin_factors = false) ?budget ?slu_symbolic ~steps ~e ~a ~bu () =
  Trace.with_span "engine.solve_linear_sparse" @@ fun () ->
  let cache =
    match fcache with Some c -> c | None -> Factor_cache.create ()
  in
  let sym =
    match slu_symbolic with Some r -> r | None -> ref None
  in
  let factor ~column h =
    let pencil = linear_pencil_sparse ~h ~e ~a in
    budget_factor ~bytes:(Csr.nnz pencil * 16) budget;
    Trace.with_span "factor" (fun () ->
        sparse_block ?health ~sym ~column pencil)
  in
  let lookup = linear_lookup ~pin:pin_factors ~cache ~factor in
  let solve_col h ~column rhs =
    solve_col_sparse ?health ~cond_limit ~column (lookup ~column h) rhs
  in
  solve_linear ?budget ~steps ~apply_e:(Csr.mul_vec e) ~solve_col ~bu ()

let integral_rhs ~one ~e_x0 ~bu_int =
  let n, m = Mat.dims bu_int in
  if Array.length one <> m then
    invalid_arg "Engine.solve_integral: constant-vector length mismatch";
  if Array.length e_x0 <> n then
    invalid_arg "Engine.solve_integral: x0 length mismatch";
  Mat.init n m (fun r i -> Mat.get bu_int r i +. (e_x0.(r) *. one.(i)))

let check_integral_h ~m h_mat =
  let hr, hc = Mat.dims h_mat in
  if hr <> m || hc <> m then
    invalid_arg "Engine.solve_integral_dense: H dimension mismatch";
  if not (Mat.is_upper_triangular ~tol:0.0 h_mat) then
    invalid_arg
      "Engine.solve_integral_dense: H must be upper triangular (use \
       solve_integral_kron for general bases)"

let solve_integral_dense ?health ?(cond_limit = Health.default_cond_limit)
    ?fcache ?(key_salt = []) ?(pin_factors = false) ?toeplitz ?history_len
    ?budget ~h_mat ~one ~e ~a ~bu_int ~x0 () =
  Trace.with_span "engine.solve_integral_dense" @@ fun () ->
  let n, m = Mat.dims bu_int in
  check_integral_h ~m h_mat;
  let rhs_base = integral_rhs ~one ~e_x0:(Mat.mul_vec e x0) ~bu_int in
  let cols = Array.make m [||] in
  (* the integral form shares the history machinery of the differential
     solvers: rhs_i = bu_i + A Σ_{j<i} H_{ji} x_j, i.e. a single
     [column_rhs] term with E := A and sign +1; on uniform grids H is
     Toeplitz too, so the same FFT convolver applies *)
  let terms = [ (a, h_mat) ] in
  let apply_e _ v = Mat.mul_vec a v in
  let conv = make_conv ?history_len ~toeplitz ~nterms:1 ~n ~m () in
  let build ~column key =
    let hii = List.hd key in
    budget_factor ~bytes:(n * n * 8) budget;
    Trace.with_span "factor" (fun () ->
        dense_block ~column (Mat.sub e (Mat.scale hii a)))
  in
  let lookup = block_lookup ~pin:pin_factors ~fcache ~key_salt ~build () in
  Metrics.incr ~by:m m_columns;
  for i = 0 to m - 1 do
    budget_column budget;
    let rhs =
      column_rhs ?conv ~sign:1.0 ~n ~bu:rhs_base ~terms ~apply_e ~cols i
    in
    let blk = lookup ~column:i [ Mat.get h_mat i i ] in
    cols.(i) <- solve_col_dense ?health ~cond_limit ~column:i blk rhs;
    Option.iter (fun cv -> Fft.Blocked_conv.push cv cols.(i)) conv
  done;
  record_conv_metrics ~conv ~m;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

let solve_integral_sparse ?health ?(cond_limit = Health.default_cond_limit)
    ?fcache ?(key_salt = []) ?(pin_factors = false) ?toeplitz ?history_len
    ?budget ?slu_symbolic ~h_mat ~one ~e ~a ~bu_int ~x0 () =
  Trace.with_span "engine.solve_integral_sparse" @@ fun () ->
  let n, m = Mat.dims bu_int in
  check_integral_h ~m h_mat;
  let rhs_base = integral_rhs ~one ~e_x0:(Csr.mul_vec e x0) ~bu_int in
  let cols = Array.make m [||] in
  let terms = [ ((), h_mat) ] in
  let apply_e _ v = Csr.mul_vec a v in
  let conv = make_conv ?history_len ~toeplitz ~nterms:1 ~n ~m () in
  let sym =
    match slu_symbolic with Some r -> r | None -> ref None
  in
  let build ~column key =
    let hii = List.hd key in
    let pencil = Csr.add ~alpha:1.0 ~beta:(-.hii) e a in
    budget_factor ~bytes:(Csr.nnz pencil * 16) budget;
    Trace.with_span "factor" (fun () ->
        sparse_block ?health ~sym ~column pencil)
  in
  let lookup = block_lookup ~pin:pin_factors ~fcache ~key_salt ~build () in
  Metrics.incr ~by:m m_columns;
  for i = 0 to m - 1 do
    budget_column budget;
    let rhs =
      column_rhs ?conv ~sign:1.0 ~n ~bu:rhs_base ~terms ~apply_e ~cols i
    in
    let blk = lookup ~column:i [ Mat.get h_mat i i ] in
    cols.(i) <- solve_col_sparse ?health ~cond_limit ~column:i blk rhs;
    Option.iter (fun cv -> Fft.Blocked_conv.push cv cols.(i)) conv
  done;
  record_conv_metrics ~conv ~m;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

(* ------------------------------------------------------------------ *)
(* Compile-ahead factorisation. These insert (and pin) the diagonal
   block a subsequent solve will look up, using the same pencil
   builders and the same cache keys — so a query after [prefactor_*]
   performs zero factorisations and returns bit-identical columns. *)

let prefactor_dense fc ~key_salt ~diag ~es ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (key_salt @ diag) (fun _ ->
         Trace.with_span "factor" (fun () ->
             dense_block ~column:0 (dense_pencil ~es ~a diag)))
      : dense_block)

let prefactor_sparse ?health ?slu_symbolic fc ~key_salt ~diag ~es ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (key_salt @ diag) (fun _ ->
         Trace.with_span "factor" (fun () ->
             sparse_block ?health ?sym:slu_symbolic ~column:0
               (sparse_pencil ~es ~a diag)))
      : sparse_block)

let prefactor_linear_dense fc ~h ~e ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (linear_cache_key h) (fun _ ->
         Trace.with_span "factor" (fun () ->
             dense_block ~column:0 (linear_pencil_dense ~h ~e ~a)))
      : dense_block)

let prefactor_linear_sparse ?health ?slu_symbolic fc ~h ~e ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (linear_cache_key h) (fun _ ->
         Trace.with_span "factor" (fun () ->
             sparse_block ?health ?sym:slu_symbolic ~column:0
               (linear_pencil_sparse ~h ~e ~a)))
      : sparse_block)

let prefactor_integral_dense fc ~key_salt ~hii ~e ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (key_salt @ [ hii ]) (fun _ ->
         Trace.with_span "factor" (fun () ->
             dense_block ~column:0 (Mat.sub e (Mat.scale hii a))))
      : dense_block)

let prefactor_integral_sparse ?health ?slu_symbolic fc ~key_salt ~hii ~e ~a =
  ignore
    (Factor_cache.find_or_add ~pin:true fc (key_salt @ [ hii ]) (fun _ ->
         Trace.with_span "factor" (fun () ->
             sparse_block ?health ?sym:slu_symbolic ~column:0
               (Csr.add ~alpha:1.0 ~beta:(-.hii) e a)))
      : sparse_block)

let solve_integral_kron ~h_mat ~one ~e ~a ~bu_int ~x0 =
  let n, m = Mat.dims bu_int in
  let rhs_mat = integral_rhs ~one ~e_x0:(Mat.mul_vec e x0) ~bu_int in
  let big =
    Mat.sub (Mat.kron (Mat.eye m) e) (Mat.kron (Mat.transpose h_mat) a)
  in
  let rhs = Array.init (n * m) (fun k -> Mat.get rhs_mat (k mod n) (k / n)) in
  let sol = Lu.solve_dense big rhs in
  Mat.init n m (fun r c -> sol.((c * n) + r))

let solve_dense_kron ~terms ~a ~bu =
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Mat.dims e, Mat.dims d)) terms)
    (fst (Mat.dims a)) (snd (Mat.dims a));
  (* (Σ_k D_kᵀ ⊗ E_k − I_m ⊗ A) vec(X) = vec(BU), column-major vec *)
  let big =
    List.fold_left
      (fun acc (e, d) -> Mat.add acc (Mat.kron (Mat.transpose d) e))
      (Mat.kron (Mat.eye m) (Mat.scale (-1.0) a))
      terms
  in
  let rhs = Array.init (n * m) (fun k -> Mat.get bu (k mod n) (k / n)) in
  let sol = Lu.solve_dense big rhs in
  Mat.init n m (fun r c -> sol.((c * n) + r))
