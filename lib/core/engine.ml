open Opm_numkit
open Opm_sparse

let check_terms_dims ~n ~m terms a_rows a_cols =
  if a_rows <> n || a_cols <> n then
    invalid_arg "Engine: A dimension mismatch with BU";
  List.iter
    (fun ((er, ec), (dr, dc)) ->
      if er <> n || ec <> n then invalid_arg "Engine: E_k dimension mismatch";
      if dr <> m || dc <> m then invalid_arg "Engine: D_k dimension mismatch")
    terms

let diag_key terms i = List.map (fun (_, d) -> Mat.get d i i) terms

let same_key a b = List.for_all2 (fun (x : float) y -> x = y) a b

(* Accumulate rhs_i = bu_i − Σ_k E_k (Σ_{j<i} d^{(k)}_{ji} x_j), with
   [apply_e] abstracting dense/sparse E_k·v. *)
let column_rhs ~n ~bu ~terms ~apply_e ~cols i =
  let rhs = Array.init n (fun r -> Mat.get bu r i) in
  List.iteri
    (fun k (_, dmat) ->
      let acc = Array.make n 0.0 in
      let any = ref false in
      for j = 0 to i - 1 do
        let w = Mat.get dmat j i in
        if w <> 0.0 then begin
          any := true;
          Vec.axpy w cols.(j) acc
        end
      done;
      if !any then begin
        let ev = apply_e k acc in
        Vec.axpy (-1.0) ev rhs
      end)
    terms;
  rhs

let solve_dense ~terms ~a ~bu =
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Mat.dims e, Mat.dims d)) terms)
    (fst (Mat.dims a)) (snd (Mat.dims a));
  let term_mats = List.map fst terms in
  let apply_e k v = Mat.mul_vec (List.nth term_mats k) v in
  let cols = Array.make m [||] in
  let cache : (float list * Lu.t) option ref = ref None in
  for i = 0 to m - 1 do
    let rhs = column_rhs ~n ~bu ~terms ~apply_e ~cols i in
    let key = diag_key terms i in
    let lu =
      match !cache with
      | Some (k, f) when same_key k key -> f
      | _ ->
          let mat =
            List.fold_left2
              (fun acc (e, _) dii -> Mat.add acc (Mat.scale dii e))
              (Mat.scale (-1.0) a) terms key
          in
          let f = Lu.factor mat in
          cache := Some (key, f);
          f
    in
    cols.(i) <- Lu.solve lu rhs
  done;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

let solve_sparse ~terms ~a ~bu =
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Csr.dims e, Mat.dims d)) terms)
    (fst (Csr.dims a)) (snd (Csr.dims a));
  let term_mats = List.map fst terms in
  let apply_e k v = Csr.mul_vec (List.nth term_mats k) v in
  let cols = Array.make m [||] in
  let cache : (float list * Slu.t) option ref = ref None in
  for i = 0 to m - 1 do
    let rhs = column_rhs ~n ~bu ~terms ~apply_e ~cols i in
    let key = diag_key terms i in
    let slu =
      match !cache with
      | Some (k, f) when same_key k key -> f
      | _ ->
          let mat =
            List.fold_left2
              (fun acc (e, _) dii -> Csr.add ~alpha:1.0 ~beta:dii acc e)
              (Csr.scale (-1.0) a) terms key
          in
          let f = Slu.factor mat in
          cache := Some (key, f);
          f
    in
    cols.(i) <- Slu.solve slu rhs
  done;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

(* order-1 fast path shared between backends: [factor_for h] returns a
   cached solve function for (2/h·E − A) *)
let solve_linear ~steps ~apply_e ~factor_for ~bu =
  let n, m = Mat.dims bu in
  if Array.length steps <> m then
    invalid_arg "Engine.solve_linear: step count mismatch";
  let x = Mat.zeros n m in
  let salt = Array.make n 0.0 in
  for i = 0 to m - 1 do
    let h = steps.(i) in
    let rhs = Array.init n (fun r -> Mat.get bu r i) in
    let sign = if i land 1 = 1 then -1.0 else 1.0 in
    let coupling = apply_e salt in
    Vec.axpy (-4.0 /. h *. sign) coupling rhs;
    let xi = factor_for h rhs in
    Mat.set_col x i xi;
    Vec.axpy sign xi salt
  done;
  x

(* Bounded step-size → factorisation cache. An assoc list keyed on the
   exact float step is pathological on fully-adaptive grids: every
   column misses, so each lookup scans the whole list (O(m²) total) and
   the list grows without bound. A hashtable gives O(1) lookups and a
   capacity cap bounds the memory; on overflow the cache is reset —
   adaptive grids that miss every time pay exactly one factorisation
   per column either way, while uniform and few-distinct-step grids
   stay fully cached. *)
module Factor_cache = struct
  type 'f t = {
    capacity : int;
    table : (float, 'f) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let default_capacity = 64

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Engine.Factor_cache.create: capacity < 1";
    { capacity; table = Hashtbl.create capacity; hits = 0; misses = 0 }

  let length c = Hashtbl.length c.table

  let hits c = c.hits

  let misses c = c.misses

  let find_or_add c h factor =
    match Hashtbl.find_opt c.table h with
    | Some f ->
        c.hits <- c.hits + 1;
        f
    | None ->
        c.misses <- c.misses + 1;
        let f = factor h in
        if Hashtbl.length c.table >= c.capacity then Hashtbl.reset c.table;
        Hashtbl.add c.table h f;
        f
end

let cached_factor ?capacity factor solve =
  let cache = Factor_cache.create ?capacity () in
  fun h rhs -> solve (Factor_cache.find_or_add cache h factor) rhs

let solve_linear_dense ~steps ~e ~a ~bu =
  let factor_for =
    cached_factor
      (fun h -> Lu.factor (Mat.sub (Mat.scale (2.0 /. h) e) a))
      Lu.solve
  in
  solve_linear ~steps ~apply_e:(Mat.mul_vec e) ~factor_for ~bu

let solve_linear_sparse ~steps ~e ~a ~bu =
  let factor_for =
    cached_factor
      (fun h -> Slu.factor (Csr.add ~alpha:(2.0 /. h) ~beta:(-1.0) e a))
      Slu.solve
  in
  solve_linear ~steps ~apply_e:(Csr.mul_vec e) ~factor_for ~bu

let integral_rhs ~one ~e_x0 ~bu_int =
  let n, m = Mat.dims bu_int in
  if Array.length one <> m then
    invalid_arg "Engine.solve_integral: constant-vector length mismatch";
  if Array.length e_x0 <> n then
    invalid_arg "Engine.solve_integral: x0 length mismatch";
  Mat.init n m (fun r i -> Mat.get bu_int r i +. (e_x0.(r) *. one.(i)))

let solve_integral_dense ~h_mat ~one ~e ~a ~bu_int ~x0 =
  let n, m = Mat.dims bu_int in
  let hr, hc = Mat.dims h_mat in
  if hr <> m || hc <> m then
    invalid_arg "Engine.solve_integral_dense: H dimension mismatch";
  if not (Mat.is_upper_triangular ~tol:0.0 h_mat) then
    invalid_arg
      "Engine.solve_integral_dense: H must be upper triangular (use \
       solve_integral_kron for general bases)";
  let rhs_base = integral_rhs ~one ~e_x0:(Mat.mul_vec e x0) ~bu_int in
  let cols = Array.make m [||] in
  let cache : (float * Lu.t) option ref = ref None in
  for i = 0 to m - 1 do
    let rhs = Array.init n (fun r -> Mat.get rhs_base r i) in
    (* + A Σ_{j<i} H_{ji} x_j *)
    let acc = Array.make n 0.0 in
    let any = ref false in
    for j = 0 to i - 1 do
      let w = Mat.get h_mat j i in
      if w <> 0.0 then begin
        any := true;
        Vec.axpy w cols.(j) acc
      end
    done;
    if !any then Vec.axpy 1.0 (Mat.mul_vec a acc) rhs;
    let hii = Mat.get h_mat i i in
    let lu =
      match !cache with
      | Some (k, f) when k = hii -> f
      | _ ->
          let f = Lu.factor (Mat.sub e (Mat.scale hii a)) in
          cache := Some (hii, f);
          f
    in
    cols.(i) <- Lu.solve lu rhs
  done;
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  x

let solve_integral_kron ~h_mat ~one ~e ~a ~bu_int ~x0 =
  let n, m = Mat.dims bu_int in
  let rhs_mat = integral_rhs ~one ~e_x0:(Mat.mul_vec e x0) ~bu_int in
  let big =
    Mat.sub (Mat.kron (Mat.eye m) e) (Mat.kron (Mat.transpose h_mat) a)
  in
  let rhs = Array.init (n * m) (fun k -> Mat.get rhs_mat (k mod n) (k / n)) in
  let sol = Lu.solve_dense big rhs in
  Mat.init n m (fun r c -> sol.((c * n) + r))

let solve_dense_kron ~terms ~a ~bu =
  let n, m = Mat.dims bu in
  check_terms_dims ~n ~m
    (List.map (fun (e, d) -> (Mat.dims e, Mat.dims d)) terms)
    (fst (Mat.dims a)) (snd (Mat.dims a));
  (* (Σ_k D_kᵀ ⊗ E_k − I_m ⊗ A) vec(X) = vec(BU), column-major vec *)
  let big =
    List.fold_left
      (fun acc (e, d) -> Mat.add acc (Mat.kron (Mat.transpose d) e))
      (Mat.kron (Mat.eye m) (Mat.scale (-1.0) a))
      terms
  in
  let rhs = Array.init (n * m) (fun k -> Mat.get bu (k mod n) (k / n)) in
  let sol = Lu.solve_dense big rhs in
  Mat.init n m (fun r c -> sol.((c * n) + r))
