open Opm_numkit
open Opm_sparse
open Opm_robust

(** The OPM linear-matrix-equation kernel.

    Solves the coefficient equation

    [Σ_k E_k · X · D_k = A · X + BU]

    for the [n×m] matrix [X], where every [D_k] is the (upper-triangular)
    operational matrix of the [k]-th differential term. This is the
    paper's eq. (14)/(27) generalised to several terms; because each
    [D_k] is upper triangular, [Dᵀ ⊗ E − I ⊗ A] is block lower
    triangular and [X] is solved column by column (§III-A, §IV):

    [(Σ_k d^{(k)}_{ii} E_k − A) x_i = bu_i − Σ_k E_k Σ_{j<i} d^{(k)}_{ji} x_j]

    When the [d^{(k)}_{ii}] are constant across columns (uniform time
    step) the left-hand matrix is factorised once and reused — that is
    why Table II shows OPM's runtime on par with one-factorisation
    transient schemes.

    {2 Guardrails}

    Every column solve runs behind a fallback cascade. A non-finite
    column escalates — for the sparse backend: re-factor with strict
    partial pivoting ([pivot_tol = 1.0]), then fall back to a dense LU
    of the same block — and a factor whose Hager 1-norm condition
    estimate exceeds [cond_limit] (default
    {!Health.default_cond_limit}) gets one step of iterative
    refinement, kept only when it strictly reduces the residual. On
    well-conditioned inputs every guard is a bit-identical no-op. When
    the cascade is exhausted the solvers raise the structured
    {!Opm_error.Error} ([Singular_pencil] from the factorisations,
    [Non_finite] from the solves) instead of a bare backend exception.
    Pass [?health] to additionally collect per-column NaN/Inf counts,
    the maximum residual [‖(Σ_k d_ii E_k − A) x_i − rhs_i‖∞] (equal,
    column-wise, to [‖Σ_k E_k X D_k − A X − BU‖∞]), the worst condition
    estimate, and the fallback events taken — collection never changes
    the result.

    {2 Fast history convolution}

    The per-column history term [Σ_{j<i} d^{(k)}_{ji} x_j] is the
    [O(n·m²)] hot path. On uniform grids every [D_k] is upper-triangular
    {e Toeplitz} ([d_{j,j+l}] depends only on the lag [l]), so the
    history is a causal convolution of the first-row coefficients with
    the solved-column sequence. Passing [?toeplitz] (one first-row array
    per term) routes it through {!Opm_numkit.Fft.Blocked_conv} —
    [O(n·m·log² m)] — instead of the naive scan. The FFT reassociates
    the summation: results agree with the naive path to ≤ 1e-10
    relative, not bit-identically. {!fft_rhs_enabled} gates the fast
    path globally ([OPM_NO_FFT_RHS], the CLI's [--no-fft-rhs]);
    callers omitting [?toeplitz] (adaptive grids) are unaffected either
    way. *)

val fft_rhs_enabled : unit -> bool
(** Whether the FFT Toeplitz history path may be used. Defaults to
    [true] unless the environment variable [OPM_NO_FFT_RHS] is set to a
    non-empty value other than ["0"]. *)

val set_fft_rhs_enabled : bool -> unit
(** Override the switch for the rest of the process (takes precedence
    over the environment). *)

type dense_block
(** A factorised diagonal block of the dense backend (pencil matrix +
    its LU). *)

type sparse_block
(** A factorised diagonal block of the sparse backend; mutable so the
    fallback cascade can upgrade the factorisation in place. *)

(** Bounded factorisation cache keyed by an arbitrary hashable key
    ([float] step for the order-1 fast paths, salted
    [float list] diagonal-coefficient keys for cross-call sharing). A
    hashtable keyed on the exact key gives O(1) lookups (the former
    assoc list scanned linearly — O(m²) over a fully-adaptive grid —
    and grew without bound); when [capacity] distinct keys are exceeded
    the cache resets, bounding memory while keeping uniform and
    few-distinct-step grids fully cached.

    {b Key discipline.} A cache shared across solve calls must be keyed
    on the full [(α₁…α_K, h)] identity of the pencil, not just the
    diagonal coefficients: [(2/h)^α] coincides for different [(α, h)]
    pairs (at [h = 2] it is [1.0] for {e every} α), so a diagonal-only
    key silently reuses the wrong factorisation when a process mixes
    differentiation orders on one grid. {!solve_dense}/{!solve_sparse}
    prepend the caller's [?key_salt] (the term orders and the step, see
    {!Opm_core.Window}) to every lookup; the order-1 fast paths key on
    [[1.0; h]] — α pinned by construction, but carried in the key so a
    shared cache stays collision-free. *)
module Factor_cache : sig
  type ('k, 'f) t

  val default_capacity : int
  (** 64. *)

  val create : ?capacity:int -> unit -> ('k, 'f) t
  (** Raises [Invalid_argument] if [capacity < 1]. *)

  val find_or_add : ?pin:bool -> ('k, 'f) t -> 'k -> ('k -> 'f) -> 'f
  (** [find_or_add c k factor] returns the cached factorisation for key
      [k], calling [factor k] (and evicting on overflow) on a miss.

      [~pin:true] marks the entry {e pinned}: pinned entries live
      outside the capacity bound and survive the overflow reset, so a
      sweep interleaving more than [capacity] other [(α, h)] keys can
      never evict the hot pencil factor mid-run. Pinning is an upgrade
      — a key already cached unpinned is migrated. Pinned entries are
      expected to be few (the hot pencils of live windows / compiled
      models); they are released only with the cache itself. *)

  val length : ('k, 'f) t -> int
  (** Currently cached entries, pinned included; the unpinned portion
      is always [<= capacity]. *)

  val pinned_count : ('k, 'f) t -> int

  val hits : ('k, 'f) t -> int
  (** Cache accesses served from the table (pinned or not). The solvers
      consult the shared cache once per call — consecutive columns are
      served by a per-call memo — so on uniform grids [hits]/[misses]
      count {e engine calls}, not columns. *)

  val misses : ('k, 'f) t -> int
end

val fft_rhs_min_m : int
(** Minimum effective history length (256) below which the naive scan
    is kept — under the measured crossover the convolver's setup never
    amortises, and short horizons stay bit-identical to the historical
    engine. *)

val solve_dense :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, dense_block) Factor_cache.t ->
  ?key_salt:float list ->
  ?pin_factors:bool ->
  ?toeplitz:float array list ->
  ?history_len:int ->
  ?conv_reuse:Fft.Blocked_conv.t ->
  ?budget:Budget.t ->
  terms:(Mat.t * Mat.t) list ->
  a:Mat.t ->
  bu:Mat.t ->
  unit ->
  Mat.t
(** [terms] are [(E_k, D_k)] pairs. Raises [Invalid_argument] on
    dimension mismatches, {!Opm_error.Error} if a diagonal block is
    singular or a column stays non-finite.

    [?budget] (here and on every [solve_*] below) arms cooperative
    resource enforcement: the wall-clock deadline is checked before
    every column, and each factorisation is charged (with an estimated
    footprint — [n²·8] bytes dense, [nnz·16] sparse) before it runs;
    on breach a structured [Opm_error.Deadline_exceeded] /
    [Budget_exhausted] is raised. Without a budget the hook is one
    [Option] match per column. The engine also carries three
    fault-injection sites ([factor], [column-solve], [fft-block], see
    {i Opm_robust.Fault}); when no plan is armed each site is a single
    atomic load.

    [?fcache] substitutes a caller-owned cross-call cache for the
    per-call one, so repeated solves against the same pencil (the
    windowed streaming driver, compiled models) factorise once; lookups
    are keyed [key_salt @ diagonal coefficients] — pass the term orders
    and step in [key_salt] whenever the cache outlives one call (see
    {!Factor_cache}). [?pin_factors] pins the blocks this call inserts
    or touches in [?fcache], shielding them from capacity eviction.

    [?toeplitz] asserts that each [D_k] is upper-triangular Toeplitz and
    supplies its first row (length [m], one array per term, same order
    as [terms]); the history term then takes the FFT fast path when
    {!fft_rhs_enabled} and the horizon is long enough to amortise it
    ([>= ]{!fft_rhs_min_m}[ ]— below the measured crossover the naive
    scan is kept, bit-identically). The gate compares
    [max m history_len]: a windowed caller solving a long horizon in
    short blocks passes the {e global} horizon as [?history_len] so the
    per-window column count does not mask a workload deep enough to
    amortise the FFT. [?conv_reuse] recycles a previously created
    convolver of matching shape (its kernel spectra — the plan state —
    are kept, its data reset); on shape mismatch a fresh one is
    allocated. Raises [Invalid_argument] when the list length or row
    lengths disagree with [terms]/[m]. *)

val solve_sparse :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, sparse_block) Factor_cache.t ->
  ?key_salt:float list ->
  ?pin_factors:bool ->
  ?toeplitz:float array list ->
  ?history_len:int ->
  ?conv_reuse:Fft.Blocked_conv.t ->
  ?budget:Budget.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  terms:(Csr.t * Mat.t) list ->
  a:Csr.t ->
  bu:Mat.t ->
  unit ->
  Mat.t
(** Same algorithm with sparse [E_k], [A] and the sparse LU backend
    (plus the strict-pivoting and sparse→dense escalation rungs).

    The [⌈m⌉] distinct pencils of one call share one sparsity pattern,
    so the symbolic analysis (ordering, elimination reaches, fill
    pattern) is computed once and replayed numerically for the rest
    ({!Slu.factor_hinted}); [?slu_symbolic] substitutes a caller-owned
    hint ref so the reuse extends across calls sharing [?fcache] — e.g.
    a windowed driver or a compiled model re-solving the same
    structure. The strict-pivoting escalation rung never uses the
    hint. *)

val solve_dense_kron : terms:(Mat.t * Mat.t) list -> a:Mat.t -> bu:Mat.t -> Mat.t
(** Reference implementation that forms the full
    [Σ_k (D_kᵀ ⊗ E_k) − I_m ⊗ A] Kronecker system (the paper's eq. (15))
    and solves it densely — [O((nm)³)]; exists to validate
    {!solve_dense} and to ablate the complexity claim. *)

val solve_linear_dense :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, dense_block) Factor_cache.t ->
  ?pin_factors:bool ->
  ?budget:Budget.t ->
  steps:float array ->
  e:Mat.t ->
  a:Mat.t ->
  bu:Mat.t ->
  unit ->
  Mat.t
(** Order-1 fast path (paper §III-A: for linear systems [D]'s special
    pattern — column [i] is [(2/h_i)] on the diagonal and
    [4(−1)^{i−j}/h_i] above — reduces the per-column history to one
    running alternating sum):

    [(2/h_i·E − A) x_i = bu_i − (4/h_i)·E·(−1)^i·Σ_{j<i} (−1)^j x_j]

    [O(n^β·#distinct steps + n·m)] instead of the generic engine's
    [O(n·m²)]. Never materialises [D]. [?fcache] shares the step →
    factorisation cache across calls (keyed [[1.0; h]], α and step);
    the windowed driver passes one cache for all windows so the pencil
    is factorised exactly once per horizon. *)

val solve_linear_sparse :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, sparse_block) Factor_cache.t ->
  ?pin_factors:bool ->
  ?budget:Budget.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  steps:float array ->
  e:Csr.t ->
  a:Csr.t ->
  bu:Mat.t ->
  unit ->
  Mat.t
(** Sparse-backend version of {!solve_linear_dense}. All step pencils
    [2/h·E − A] share one pattern; [?slu_symbolic] as in
    {!solve_sparse}. *)

(** {1 Integral-form OPM}

    The classical operational-matrix formulation (the lineage of the
    paper's refs [2], [4]): integrating [E ẋ = A x + B u] once gives

    [E·X = A·X·H + B·U·H + (E x₀)·1ᵀ]

    where [H] is the *integration* operational matrix and [1] the
    coefficient vector of the constant-one function in the chosen basis.
    Initial conditions enter for free, and the formulation works for any
    basis with an integration matrix — including polynomial bases whose
    differentiation matrix does not exist (Legendre). *)

val solve_integral_dense :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, dense_block) Factor_cache.t ->
  ?key_salt:float list ->
  ?pin_factors:bool ->
  ?toeplitz:float array list ->
  ?history_len:int ->
  ?budget:Budget.t ->
  h_mat:Mat.t -> one:Vec.t -> e:Mat.t -> a:Mat.t -> bu_int:Mat.t ->
  x0:Vec.t -> unit -> Mat.t
(** Column-by-column solve of the integral form; requires [h_mat] upper
    triangular (block pulses). [bu_int] is [B·U·H] ([n×m]); [one] the
    constant-1 coefficients; each diagonal block is
    [(E − H_{ii}·A)]. [?toeplitz] (a singleton list carrying [H]'s first
    row) engages the same FFT history fast path as {!solve_dense} —
    valid on uniform grids, where [H] is Toeplitz. Columns run behind
    the same fallback cascade as the differential solvers
    ([?health]/[?cond_limit]), and [?fcache]/[?key_salt]/[?pin_factors]/
    [?history_len] behave as in {!solve_dense} (the cache key is the
    diagonal entry [H_{ii}]). *)

val solve_integral_sparse :
  ?health:Health.t ->
  ?cond_limit:float ->
  ?fcache:(float list, sparse_block) Factor_cache.t ->
  ?key_salt:float list ->
  ?pin_factors:bool ->
  ?toeplitz:float array list ->
  ?history_len:int ->
  ?budget:Budget.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  h_mat:Mat.t -> one:Vec.t -> e:Csr.t -> a:Csr.t -> bu_int:Mat.t ->
  x0:Vec.t -> unit -> Mat.t
(** Sparse-backend version of {!solve_integral_dense} (diagonal blocks
    [(E − H_{ii}·A)] in CSR, with the strict-pivoting and sparse→dense
    escalation rungs); [?slu_symbolic] as in {!solve_sparse}. *)

(** {1 Compile-ahead factorisation}

    [prefactor_*] insert — and pin — the diagonal block a subsequent
    solve against the same cache will look up, using the same pencil
    builders and the same cache keys, so the query performs zero
    factorisations and returns bit-identical columns. [~diag] is the
    per-term diagonal-coefficient list of column 0 ([(2/h)^α·ρ_α(0)]
    per term on a uniform grid); [~es] the matching [E_k] list; the
    linear variants key on the step [h], the integral ones on [H]'s
    diagonal entry [hii]. *)

val prefactor_dense :
  (float list, dense_block) Factor_cache.t ->
  key_salt:float list -> diag:float list -> es:Mat.t list -> a:Mat.t -> unit

val prefactor_sparse :
  ?health:Health.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  (float list, sparse_block) Factor_cache.t ->
  key_salt:float list -> diag:float list -> es:Csr.t list -> a:Csr.t -> unit

val prefactor_linear_dense :
  (float list, dense_block) Factor_cache.t ->
  h:float -> e:Mat.t -> a:Mat.t -> unit

val prefactor_linear_sparse :
  ?health:Health.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  (float list, sparse_block) Factor_cache.t ->
  h:float -> e:Csr.t -> a:Csr.t -> unit

val prefactor_integral_dense :
  (float list, dense_block) Factor_cache.t ->
  key_salt:float list -> hii:float -> e:Mat.t -> a:Mat.t -> unit

val prefactor_integral_sparse :
  ?health:Health.t ->
  ?slu_symbolic:Slu.symbolic option ref ->
  (float list, sparse_block) Factor_cache.t ->
  key_salt:float list -> hii:float -> e:Csr.t -> a:Csr.t -> unit

val solve_integral_kron :
  h_mat:Mat.t -> one:Vec.t -> e:Mat.t -> a:Mat.t -> bu_int:Mat.t ->
  x0:Vec.t -> Mat.t
(** Dense Kronecker solve of the same equation,
    [(I_m ⊗ E − Hᵀ ⊗ A) vec(X) = vec(BU·H + E x₀·1ᵀ)] — valid for *any*
    [h_mat] (e.g. the non-triangular Legendre integration matrix). *)
