open Opm_numkit
open Opm_sparse
open Opm_basis
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

type backend = [ `Auto | `Dense | `Sparse ]
type basis = [ `Bpf | `Spectral ]

let m_queries = Metrics.counter "compiled.queries"
let m_factor_reuse = Metrics.counter "compiled.factor_reuse"

let input_coefficients ~grid sources =
  let m = Grid.size grid in
  let p = Array.length sources in
  let u = Mat.zeros p m in
  Array.iteri
    (fun r src ->
      let coeffs = Block_pulse.project_source grid src in
      for i = 0 to m - 1 do
        Mat.set u r i coeffs.(i)
      done)
    sources;
  u

let pick_backend backend n =
  match backend with
  | `Dense -> `Dense
  | `Sparse -> `Sparse
  | `Auto -> if n > 64 then `Sparse else `Dense

(* input derivative d^r u/dt^r acts on coefficients as U · D^r; [deriv]
   lets a compiled model substitute its cached differentiation matrix *)
let apply_input_order ?deriv ~grid (sys : Multi_term.t) u =
  if sys.Multi_term.input_order = 0 then u
  else
    let d =
      match deriv with
      | Some d -> d ()
      | None -> Block_pulse.differential_matrix grid
    in
    let rec apply u k = if k = 0 then u else apply (Mat.mul u d) (k - 1) in
    apply u sys.Multi_term.input_order

let bu_matrix ?deriv ~grid (sys : Multi_term.t) sources =
  Trace.with_span "opm.project_inputs" @@ fun () ->
  let p = Multi_term.input_count sys in
  if Array.length sources <> p then
    invalid_arg
      (Printf.sprintf "Opm: system has %d inputs but %d sources given" p
         (Array.length sources));
  let u = input_coefficients ~grid sources in
  Mat.mul sys.Multi_term.b (apply_input_order ?deriv ~grid sys u)

(* On exactly-uniform grids every operational matrix is upper-triangular
   Toeplitz, so its first row drives the engine's FFT history fast path.
   Extracting the row from the built matrix (rather than recomputing the
   ρ series) keeps the two representations consistent by construction.
   Near-uniform adaptive grids are deliberately excluded: the acceptance
   contract keeps every [Grid.Adaptive] solve bit-identical to the naive
   engine.

   Orders above 1 are excluded too, for accuracy rather than structure:
   |ρ_α(l)| grows like l^{α−1} with alternating sign for α > 1, and the
   naive j-ascending scan sums those terms in an order whose partial
   sums cancel pairwise and stay small. Blockwise FFT reassociation
   forfeits that cancellation, and the marginally-stable high-order
   recurrence then integrates the roundoff (≈5e-4 absolute drift on the
   α = 2 oscillator at m = 1000). Non-growing kernels (α ≤ 1) keep the
   conv/naive agreement within the ≤ 1e-10 contract. *)
let fft_safe_terms terms =
  List.for_all (fun { Multi_term.alpha; _ } -> alpha <= 1.0) terms

let uniform_toeplitz ~grid ~terms dmats =
  match grid with
  | Grid.Uniform _ when Engine.fft_rhs_enabled () && fft_safe_terms terms ->
      let m = Grid.size grid in
      Some (List.map (fun (_, d) -> Array.init m (Mat.get d 0)) dmats)
  | _ -> None

let shift_by_x0 x x0 =
  let n, m = Mat.dims x in
  Mat.init n m (fun r i -> Mat.get x r i +. x0.(r))

(* ------------------------------------------------------------------ *)

(* Everything plant-dependent, computed once at [compile]: the
   operational matrices, the Toeplitz first rows, the FFT convolver
   plan state, and the factored (pinned) pencil. Queries touch only the
   input-dependent RHS. *)
type plan =
  | Spectral of Spectral_solver.t
  | Windowed of { w : int }
  | Linear of { steps : float array; e_s : Csr.t; e_d : Mat.t Lazy.t }
  | General of {
      terms_s : (Csr.t * Mat.t) list;
      terms_d : (Mat.t * Mat.t) list Lazy.t;
      toeplitz : float array list option;
      key_salt : float list;
      conv : Fft.Blocked_conv.t option;
    }

type t = {
  sys : Multi_term.t;
  grid : Grid.t;
  backend : [ `Dense | `Sparse ];
  memory_len : int option;
  uniform : bool;
      (* pinning is gated on uniformity: an adaptive grid would pin one
         entry per distinct step, and the pinned set is unbounded *)
  plan : plan;
  fc_d : (float list, Engine.dense_block) Engine.Factor_cache.t;
  fc_s : (float list, Engine.sparse_block) Engine.Factor_cache.t;
  slu_sym : Slu.symbolic option ref;
      (* one symbolic analysis per model: every sparse pencil this model
         ever factors (prefactor at compile, cache misses at query)
         shares one sparsity structure, so later factorisations replay
         the recorded elimination numerically *)
  series_cache : (float * int, float array) Hashtbl.t;
  a_dense : Mat.t Lazy.t;
  u_deriv : Mat.t Lazy.t;
  mutable queries : int;
}

let grid t = t.grid

let system t = t.sys

let queries t = t.queries

let backend t = t.backend

(* Per-model factor statistics, read from this model's own caches. The
   [compiled.factor_reuse] metrics counter aggregates over every model
   in the process — useless to a server that hosts many plants and
   must report (and test) reuse per plant — whereas the
   [Engine.Factor_cache] hit/miss counters live on the cache records
   themselves, so summing the model's two caches is exactly the
   per-plant view. *)
let factor_reuse t =
  match t.plan with
  | Spectral sp -> Spectral_solver.factor_reuse sp
  | Windowed _ | Linear _ | General _ ->
      Engine.Factor_cache.hits t.fc_d + Engine.Factor_cache.hits t.fc_s

let factorisations t =
  match t.plan with
  | Spectral sp -> Spectral_solver.factorisations sp
  | Windowed _ | Linear _ | General _ ->
      Engine.Factor_cache.misses t.fc_d + Engine.Factor_cache.misses t.fc_s

let basis t =
  match t.plan with
  | Spectral _ -> `Spectral
  | Windowed _ | Linear _ | General _ -> `Bpf

let compile ?(backend = `Auto) ?(basis = `Bpf) ?health ?window ?memory_len
    ~grid (sys : Multi_term.t) =
  Trace.with_span "compiled.compile" @@ fun () ->
  let n = Multi_term.order sys in
  let m = Grid.size grid in
  (match window with
  | Some w when w < 1 -> invalid_arg "Opm: window width must be >= 1"
  | _ -> ());
  match basis with
  | `Spectral ->
      (* the collocation operator has no windowed/streaming form: the
         fractional differentiation matrix is globally dense, and m is
         tiny by design, so there is no history to truncate either *)
      if window <> None then
        invalid_arg "Opm: ?window streaming requires the block-pulse basis";
      if memory_len <> None then
        invalid_arg "Opm: ?memory_len requires the block-pulse basis";
      {
        sys;
        grid;
        backend = pick_backend backend n;
        memory_len = None;
        uniform = true;
        plan = Spectral (Spectral_solver.compile ?health ~grid sys);
        fc_d = Engine.Factor_cache.create ();
        fc_s = Engine.Factor_cache.create ();
        slu_sym = ref None;
        series_cache = Hashtbl.create 1;
        a_dense = lazy (Csr.to_dense sys.Multi_term.a);
        u_deriv = lazy (Block_pulse.differential_matrix grid);
        queries = 0;
      }
  | `Bpf ->
  let backend = pick_backend backend n in
  let uniform =
    match grid with Grid.Uniform _ -> true | Grid.Adaptive _ -> false
  in
  let h = Grid.t_end grid /. float_of_int m in
  let fc_d = Engine.Factor_cache.create () in
  let fc_s = Engine.Factor_cache.create () in
  let slu_sym = ref None in
  let series_cache : (float * int, float array) Hashtbl.t =
    Hashtbl.create 8
  in
  let series alpha len =
    match Hashtbl.find_opt series_cache (alpha, len) with
    | Some s -> s
    | None ->
        let s = Series.one_minus_over_one_plus_pow alpha len in
        Hashtbl.add series_cache (alpha, len) s;
        s
  in
  let a_dense = lazy (Csr.to_dense sys.Multi_term.a) in
  let u_deriv = lazy (Block_pulse.differential_matrix grid) in
  let windowed =
    match window with Some w when w < m -> Some w | _ -> None
  in
  let plan =
    match (windowed, sys.Multi_term.terms, sys.Multi_term.input_order) with
    | Some w, _, _ ->
        (* prefactor the very pencil the Window driver will look up —
           same caches, same keys, same builders. Adaptive grids are
           rejected by Window at query time, so nothing to warm. *)
        if uniform then
          (match (sys.Multi_term.terms, sys.Multi_term.input_order) with
          | [ { Multi_term.coeff = e; alpha = 1.0 } ], 0 -> (
              match backend with
              | `Sparse ->
                  Engine.prefactor_linear_sparse ?health ~slu_symbolic:slu_sym
                    fc_s ~h ~e ~a:sys.Multi_term.a
              | `Dense ->
                  Engine.prefactor_linear_dense fc_d ~h ~e:(Csr.to_dense e)
                    ~a:(Lazy.force a_dense))
          | terms, _ -> (
              let key_salt =
                List.map (fun { Multi_term.alpha; _ } -> alpha) terms @ [ h ]
              in
              let diag =
                List.map
                  (fun { Multi_term.alpha; _ } ->
                    let rho = series alpha m in
                    (2.0 /. h) ** alpha *. rho.(0))
                  terms
              in
              (* warm the β series of the ρ_n ⊛ ρ_β split so queries
                 skip the O(m²) Cauchy products too *)
              List.iter
                (fun { Multi_term.alpha; _ } ->
                  let _, beta = Window.split_alpha alpha in
                  if beta <> 0.0 then ignore (series beta m : float array))
                terms;
              match backend with
              | `Sparse ->
                  Engine.prefactor_sparse ?health ~slu_symbolic:slu_sym fc_s
                    ~key_salt ~diag
                    ~es:(List.map (fun { Multi_term.coeff; _ } -> coeff) terms)
                    ~a:sys.Multi_term.a
              | `Dense ->
                  Engine.prefactor_dense fc_d ~key_salt ~diag
                    ~es:
                      (List.map
                         (fun { Multi_term.coeff; _ } -> Csr.to_dense coeff)
                         terms)
                    ~a:(Lazy.force a_dense)));
        Windowed { w }
    | None, [ { Multi_term.coeff = e; alpha = 1.0 } ], 0 ->
        let steps = Grid.steps grid in
        let e_d = lazy (Csr.to_dense e) in
        if uniform && Array.length steps > 0 then
          (match backend with
          | `Sparse ->
              Engine.prefactor_linear_sparse ?health ~slu_symbolic:slu_sym
                fc_s ~h:steps.(0) ~e ~a:sys.Multi_term.a
          | `Dense ->
              Engine.prefactor_linear_dense fc_d ~h:steps.(0)
                ~e:(Lazy.force e_d) ~a:(Lazy.force a_dense));
        Linear { steps; e_s = e; e_d }
    | None, terms, _ ->
        let dmats =
          Trace.with_span "opm.operational_matrices" @@ fun () ->
          List.map
            (fun { Multi_term.coeff; alpha } ->
              (coeff, Block_pulse.fractional_differential_matrix grid alpha))
            terms
        in
        let toeplitz = uniform_toeplitz ~grid ~terms dmats in
        let key_salt =
          if uniform then
            List.map (fun { Multi_term.alpha; _ } -> alpha) terms @ [ h ]
          else []
        in
        let terms_d =
          lazy (List.map (fun (e, d) -> (Csr.to_dense e, d)) dmats)
        in
        if uniform then
          (let diag = List.map (fun (_, d) -> Mat.get d 0 0) dmats in
           match backend with
           | `Sparse ->
               Engine.prefactor_sparse ?health ~slu_symbolic:slu_sym fc_s
                 ~key_salt ~diag ~es:(List.map fst dmats) ~a:sys.Multi_term.a
           | `Dense ->
               Engine.prefactor_dense fc_d ~key_salt ~diag
                 ~es:(List.map fst (Lazy.force terms_d))
                 ~a:(Lazy.force a_dense));
        let conv =
          match toeplitz with
          | Some rows when m > 1 && m >= Engine.fft_rhs_min_m ->
              Some
                (Fft.Blocked_conv.create ~kernels:(Array.of_list rows) ~rows:n
                   ~m ())
          | _ -> None
        in
        General { terms_s = dmats; terms_d; toeplitz; key_salt; conv }
  in
  {
    sys;
    grid;
    backend;
    memory_len;
    uniform;
    plan;
    fc_d;
    fc_s;
    slu_sym;
    series_cache;
    a_dense;
    u_deriv;
    queries = 0;
  }

let compile_linear ?backend ?basis ?health ?window ?memory_len ~grid sys =
  compile ?backend ?basis ?health ?window ?memory_len ~grid
    (Multi_term.of_linear sys)

let compile_fractional ?backend ?basis ?health ?window ?memory_len ~grid
    ~alpha sys =
  compile ?backend ?basis ?health ?window ?memory_len ~grid
    (Multi_term.of_fractional ~alpha sys)

let solve_bu ?health ?budget ?checkpoint ?checkpoint_every ?resume_from t bu =
  Trace.with_span "compiled_solve" @@ fun () ->
  (match t.plan with
  | Windowed _ -> ()
  | Spectral _ ->
      invalid_arg
        "Compiled_model: spectral-basis models sample sources at the \
         collocation nodes — use solve, not BPF coefficients"
  | Linear _ | General _ ->
      if checkpoint <> None || resume_from <> None then
        invalid_arg
          "Compiled_model.solve: checkpointing requires a windowed model \
           (compile with ?window)");
  t.queries <- t.queries + 1;
  Metrics.incr m_queries;
  let hits0 =
    Engine.Factor_cache.hits t.fc_d + Engine.Factor_cache.hits t.fc_s
  in
  let x =
    match t.plan with
    | Spectral _ -> assert false (* rejected above *)
    | Windowed { w } ->
        let x, _stats =
          Window.solve
            ~backend:(t.backend :> backend)
            ?health ?memory_len:t.memory_len ~fc_d:t.fc_d ~fc_s:t.fc_s
            ~series_cache:t.series_cache ?budget ?checkpoint
            ?checkpoint_every ?resume_from ~window:w ~grid:t.grid t.sys ~bu
        in
        x
    | Linear { steps; e_s; e_d } -> (
        match t.backend with
        | `Sparse ->
            Engine.solve_linear_sparse ?health ~fcache:t.fc_s
              ~pin_factors:t.uniform ?budget ~slu_symbolic:t.slu_sym ~steps
              ~e:e_s ~a:t.sys.Multi_term.a ~bu ()
        | `Dense ->
            Engine.solve_linear_dense ?health ~fcache:t.fc_d
              ~pin_factors:t.uniform ?budget ~steps ~e:(Lazy.force e_d)
              ~a:(Lazy.force t.a_dense) ~bu ())
    | General { terms_s; terms_d; toeplitz; key_salt; conv } -> (
        match t.backend with
        | `Sparse ->
            Engine.solve_sparse ?health ~fcache:t.fc_s ~key_salt
              ~pin_factors:t.uniform ?toeplitz ?conv_reuse:conv ?budget
              ~slu_symbolic:t.slu_sym ~terms:terms_s ~a:t.sys.Multi_term.a
              ~bu ()
        | `Dense ->
            Engine.solve_dense ?health ~fcache:t.fc_d ~key_salt
              ~pin_factors:t.uniform ?toeplitz ?conv_reuse:conv ?budget
              ~terms:(Lazy.force terms_d) ~a:(Lazy.force t.a_dense) ~bu ())
  in
  let hits1 =
    Engine.Factor_cache.hits t.fc_d + Engine.Factor_cache.hits t.fc_s
  in
  Metrics.incr ~by:(hits1 - hits0) m_factor_reuse;
  x

let solve_coeffs ?health ?budget t u =
  let p = Multi_term.input_count t.sys in
  let m = Grid.size t.grid in
  let ur, uc = Mat.dims u in
  if ur <> p || uc <> m then
    invalid_arg
      (Printf.sprintf
         "Compiled_model.solve_coeffs: u is %d×%d but system/grid need %d×%d"
         ur uc p m);
  let u =
    apply_input_order ~deriv:(fun () -> Lazy.force t.u_deriv) ~grid:t.grid
      t.sys u
  in
  solve_bu ?health ?budget t (Mat.mul t.sys.Multi_term.b u)

let solve ?health ?budget ?checkpoint ?checkpoint_every ?resume_from ?x0 t
    sources =
  match t.plan with
  | Spectral sp ->
      if checkpoint <> None || resume_from <> None then
        invalid_arg
          "Compiled_model.solve: checkpointing requires a windowed model \
           (compile with ?window)";
      ignore checkpoint_every;
      t.queries <- t.queries + 1;
      Metrics.incr m_queries;
      let result = Spectral_solver.solve ?health ?budget ?x0 sp sources in
      Metrics.incr m_factor_reuse;
      result
  | Windowed _ | Linear _ | General _ ->
  let bu =
    bu_matrix ~deriv:(fun () -> Lazy.force t.u_deriv) ~grid:t.grid t.sys
      sources
  in
  (* nonzero initial state by substitution z = x − x₀ (the Caputo
     derivative of a constant vanishes for every α > 0, so the
     differential terms are untouched): E d^α z = A z + (B u + A x₀) *)
  let bu, finish =
    match x0 with
    | None -> (bu, Fun.id)
    | Some x0 ->
        if Array.length x0 <> Multi_term.order t.sys then
          invalid_arg "Opm: x0 length mismatch with system order";
        let ax0 = Csr.mul_vec t.sys.Multi_term.a x0 in
        let n, m = Mat.dims bu in
        let bu' = Mat.init n m (fun r i -> Mat.get bu r i +. ax0.(r)) in
        (bu', fun x -> shift_by_x0 x x0)
  in
  let x =
    solve_bu ?health ?budget ?checkpoint ?checkpoint_every ?resume_from t bu
  in
  Sim_result.make ?health ~grid:t.grid ~x:(finish x) ~c:t.sys.Multi_term.c
    ~state_names:t.sys.Multi_term.state_names
    ~output_names:t.sys.Multi_term.output_names ()
