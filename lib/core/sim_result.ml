open Opm_numkit
open Opm_basis
open Opm_signal
module Pool = Opm_parallel.Pool

type t = {
  grid : Grid.t;
  x : Mat.t;
  states : Waveform.t;
  outputs : Waveform.t;
  health : Opm_robust.Health.t option;
}

module Builder = struct
  type builder = {
    n : int;
    mutable rev_blocks : Mat.t list;
    mutable cols : int;
  }

  let create ~n =
    if n < 0 then invalid_arg "Sim_result.Builder.create: n < 0";
    { n; rev_blocks = []; cols = 0 }

  let append b blk =
    let bn, bm = Mat.dims blk in
    if bn <> b.n then
      invalid_arg
        (Printf.sprintf
           "Sim_result.Builder.append: block has %d rows, builder expects %d"
           bn b.n);
    b.rev_blocks <- blk :: b.rev_blocks;
    b.cols <- b.cols + bm

  let cols b = b.cols

  let to_mat b =
    let x = Mat.zeros b.n b.cols in
    let off = ref 0 in
    List.iter
      (fun blk ->
        let _, bm = Mat.dims blk in
        for i = 0 to bm - 1 do
          Mat.set_col x (!off + i) (Mat.col blk i)
        done;
        off := !off + bm)
      (List.rev b.rev_blocks);
    x
end

let make ?health ~grid ~x ~c ~state_names ~output_names () =
  let times = Grid.midpoints grid in
  let n, _m = Mat.dims x in
  let pool = Pool.global () in
  (* per-channel extraction is independent row work: fan it (and the
     C·X output product) out over the domain pool *)
  let states =
    Waveform.make ~labels:state_names times
      (Pool.init pool n (fun i -> Mat.row x i))
  in
  let y = Mat.par_mul pool c x in
  let q, _ = Mat.dims y in
  let outputs =
    Waveform.make ~labels:output_names times
      (Pool.init pool q (fun i -> Mat.row y i))
  in
  { grid; x; states; outputs; health }

let output r i = Waveform.channel r.outputs i

let state r i = Waveform.channel r.states i

let health r = r.health

let health_report ?cond_limit r =
  match r.health with
  | None -> None
  | Some h -> Some (Opm_robust.Health.to_string ?cond_limit h)
