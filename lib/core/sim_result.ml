open Opm_numkit
open Opm_basis
open Opm_signal
module Pool = Opm_parallel.Pool

type t = {
  grid : Grid.t;
  x : Mat.t;
  states : Waveform.t;
  outputs : Waveform.t;
  health : Opm_robust.Health.t option;
}

let make ?health ~grid ~x ~c ~state_names ~output_names () =
  let times = Grid.midpoints grid in
  let n, _m = Mat.dims x in
  let pool = Pool.global () in
  (* per-channel extraction is independent row work: fan it (and the
     C·X output product) out over the domain pool *)
  let states =
    Waveform.make ~labels:state_names times
      (Pool.init pool n (fun i -> Mat.row x i))
  in
  let y = Mat.par_mul pool c x in
  let q, _ = Mat.dims y in
  let outputs =
    Waveform.make ~labels:output_names times
      (Pool.init pool q (fun i -> Mat.row y i))
  in
  { grid; x; states; outputs; health }

let output r i = Waveform.channel r.outputs i

let state r i = Waveform.channel r.states i

let health r = r.health

let health_report ?cond_limit r =
  match r.health with
  | None -> None
  | Some h -> Some (Opm_robust.Health.to_string ?cond_limit h)
