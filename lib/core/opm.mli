open Opm_basis
open Opm_signal

(** The operational-matrix simulation algorithm (the paper's OPM).

    Each entry point expands the inputs in block-pulse functions on the
    given grid, builds the operational matrices [D^{α_k}], solves the
    coefficient equation column by column ({!Engine}) and packages the
    result as waveforms.

    Backend selection: [`Dense] uses dense LU on the diagonal blocks,
    [`Sparse] the sparse GP LU; [`Auto] (default) picks sparse for
    systems larger than 64 states.

    All transient entry points accept [?health], an
    {!Opm_robust.Health.t} collector threaded into the engine's
    fallback cascade (see {!Engine}): NaN/Inf counts, residuals,
    condition estimates and fallback events are recorded into it and
    the filled report is carried on the returned {!Sim_result.t}.
    Collection never changes the computed waveforms.

    Windowed streaming: the transient entry points accept [?window:w],
    which tiles the horizon into [⌈m/w⌉] windows solved by the
    {!Window} driver — one shared pencil factorisation across all
    windows, state handed across boundaries (exact endpoint transfer
    for order-1 systems, history-tail RHS correction otherwise; see
    {!Window}). [?memory_len] truncates the fractional history tail
    (default: full tail = exact). Requires a uniform grid. [w ≥ m] (and
    [?window] omitted) runs the ordinary global solve, so the
    degenerate window is bit-identical to an unwindowed run; raises
    [Invalid_argument] when [w < 1].

    Crash safety: the transient entry points accept [?budget]
    (cooperative deadline/factor/heap enforcement — see
    {!Opm_robust.Budget}) and, on windowed runs, [?checkpoint]/
    [?checkpoint_every]/[?resume_from] (resumable window-boundary
    snapshots — see {!Window.solve}; requesting a checkpoint without
    [?window] raises [Invalid_argument]). A mid-run breach on a windowed
    solve raises {!Window.Interrupted} with the completed prefix. *)

type backend = [ `Auto | `Dense | `Sparse ]

(** Basis selection: the transient entry points accept
    [?basis:`Spectral] to swap the block-pulse expansion for the
    Jacobi-Gauss spectral collocation backend ({!Spectral_solver}).
    [Grid.size grid] then counts collocation nodes — a few dozen
    replace thousands of block pulses on smooth sources (exponential
    vs [O(h²)] convergence), while discontinuous sources are BPF
    territory (Gibbs; see DESIGN.md §18). Spectral runs are global
    dense solves: [?window]/[?memory_len]/checkpointing and adaptive
    grids raise [Invalid_argument]. *)

val simulate_linear :
  ?backend:backend ->
  ?basis:Compiled_model.basis ->
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  ?x0:Opm_numkit.Vec.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  Descriptor.t ->
  Source.t array ->
  Sim_result.t
(** Transient analysis of [E ẋ = A x + B u], [x(0) = x₀] (paper §III;
    default [x₀ = 0]). The source array must have one entry per system
    input. Linear systems take the §III-A fast path: the order-1
    operational matrix's special pattern reduces the per-column history
    to one running sum, so the cost is [O(n^β + n·m)] like one-step
    transient schemes. *)

val simulate_fractional :
  ?backend:backend ->
  ?basis:Compiled_model.basis ->
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  ?x0:Opm_numkit.Vec.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  alpha:float ->
  Descriptor.t ->
  Source.t array ->
  Sim_result.t
(** [E d^α x/dt^α = A x + B u] (paper §IV, eq. 19/27), Caputo
    initialisation at [x₀] (default 0; higher-order initial derivatives
    are taken as zero). On adaptive grids the steps must be pairwise
    distinct (paper eq. 25); see
    {!Block_pulse.fractional_differential_matrix}. *)

val simulate_multi_term :
  ?backend:backend ->
  ?basis:Compiled_model.basis ->
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  ?x0:Opm_numkit.Vec.t ->
  ?window:int ->
  ?memory_len:int ->
  grid:Grid.t ->
  Multi_term.t ->
  Source.t array ->
  Sim_result.t
(** General engine: high-order systems (Table II's second-order NA
    model) and multi-term FDEs (e.g. circuits mixing capacitors with
    fractional CPEs). *)

val simulate_linear_kron :
  grid:Grid.t -> Descriptor.t -> Source.t array -> Sim_result.t
(** Ablation variant solving the full Kronecker system of eq. (15)
    instead of going column by column. Numerically identical, much
    slower; dense only. *)

val simulate_linear_integral :
  ?backend:backend ->
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?x0:Opm_numkit.Vec.t ->
  ?window:int ->
  grid:Grid.t ->
  Descriptor.t ->
  Source.t array ->
  Sim_result.t
(** Integral-form OPM (see {!Engine.solve_integral_dense}): integrates
    the system once and solves [E X = A X H + B U H + E x₀ 1ᵀ]. Agrees
    with {!simulate_linear} to within discretisation error; exists
    because the formulation generalises to bases without a
    differentiation matrix and carries initial conditions natively.

    Accepts the same [?backend]/[?health] contract as the differential
    entry points — the columns run behind the full fallback cascade, so
    [opm_sim --check] reports on this path too. [?window] streams the
    horizon in [⌈m/w⌉] windows (uniform grids only): the integral
    history weight is constant [h], so the pre-window coupling is the
    running sum [A·h·Σ_{j<s} x_j] — O(n) carried state, {e exact} (no
    truncation), one pinned pencil factorisation shared by all
    windows. *)

val input_coefficients : grid:Grid.t -> Source.t array -> Opm_numkit.Mat.t
(** BPF coefficient matrix [U] ([p×m], eq. 11) of the inputs — exposed
    for custom drivers and tests. *)
