open Opm_numkit
open Opm_basis
open Opm_signal

let state_coefficients ?health ?budget ?x0 ~t_end ~m (sys : Descriptor.t)
    sources =
  if m <= 0 then invalid_arg "Legendre_solver: m <= 0";
  let n = Descriptor.order sys in
  let p = Descriptor.input_count sys in
  if Array.length sources <> p then
    invalid_arg "Legendre_solver: source count mismatch";
  let x0 = Option.value x0 ~default:(Vec.zeros n) in
  if Array.length x0 <> n then invalid_arg "Legendre_solver: x0 length";
  (* input projection: one row of Legendre coefficients per source *)
  let u = Mat.zeros p m in
  Array.iteri
    (fun r src ->
      let coeffs = Legendre.project ~t_end ~m (Source.eval src) in
      for i = 0 to m - 1 do
        Mat.set u r i coeffs.(i)
      done)
    sources;
  let h_mat = Legendre.integral_matrix ~t_end ~m in
  let bu_int = Mat.mul (Mat.mul sys.Descriptor.b u) h_mat in
  (* E X = A X H + B U H + (E x₀)·e₀ᵀ (constant 1 = SL₀), i.e. the
     two-term dense pencil E·X·I − A·X·H = RHS of the shared Kronecker
     operator — same matrix solve_integral_kron used to assemble, but
     factored through the guardrailed primitive *)
  let op =
    Spectral_solver.Operator.make ?health ?budget ~n ~m
      [
        (Descriptor.e_dense sys, Mat.eye m);
        (Mat.scale (-1.0) (Descriptor.a_dense sys), h_mat);
      ]
  in
  let e_x0 = Mat.mul_vec (Descriptor.e_dense sys) x0 in
  let rhs =
    Mat.init n m (fun r i ->
        Mat.get bu_int r i +. if i = 0 then e_x0.(r) else 0.0)
  in
  Spectral_solver.Operator.solve ?health ?budget op rhs

let simulate ?health ?budget ?x0 ~t_end ~m ~sample_count (sys : Descriptor.t)
    sources =
  if sample_count < 2 then invalid_arg "Legendre_solver: sample_count < 2";
  let x = state_coefficients ?health ?budget ?x0 ~t_end ~m sys sources in
  let q = Descriptor.output_count sys in
  let y = Mat.mul sys.Descriptor.c x in
  let times = Vec.linspace 0.0 t_end sample_count in
  let channels =
    Array.init q (fun r ->
        let coeffs = Mat.row y r in
        Array.map (fun t -> Legendre.reconstruct ~t_end ~m coeffs t) times)
  in
  Waveform.make ~labels:sys.Descriptor.output_names times channels
