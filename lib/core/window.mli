open Opm_numkit

(** Windowed streaming OPM driver.

    Splits a uniform horizon of [m] intervals into [⌈m/w⌉] windows of
    [w] columns (the last possibly shorter) and solves each window with
    the ordinary {!Engine} column machinery. On a uniform grid every
    diagonal block of the pencil is the same matrix, so one
    {!Engine.Factor_cache} shared across all windows factorises it
    exactly once for the whole horizon — the per-window solves are pure
    triangular substitutions, and the working set of a window is
    O(n·(w + K)) instead of the global solve's O(n·m).

    {2 State handoff}

    Because [D^α] is upper-triangular Toeplitz on a uniform grid
    ([d_{ji} = (2/h)^α · ρ_{i−j}]), the coupling of window columns to
    columns before the window is a pure RHS term: for global column
    [i = s + l] of a window starting at [s],

    [bu'_l = bu_i − Σ_k E_k Σ_{j=max(0, s−K)}^{s−1} (2/h)^{α_k} ρ^{(k)}_{i−j} x_j]

    With the full tail ([K = m], the default) this is algebraically the
    global column recurrence re-bracketed, so the windowed solve equals
    the global one for {e every} order, integer or fractional, up to
    the rounding introduced by regrouping the sum (≈1e-15 rel per
    handoff).

    [~memory_len] truncates the tail to the last [K] columns — the
    short-memory principle — but naive truncation of [ρ_α] is only
    sound for [0 < α < 1]: the [ρ] weights of [α ≥ 1] alternate without
    decay ([α = 1] is exactly [1, −2, 2, −2, …]), so the driver factors
    each order as [α = n + β] with [n = ⌊α⌋] and splits
    [ρ_α = ρ_n ⊛ ρ_β]. The integer factor is the order-[n] linear
    recurrence [Σ_p C(n,p) y_{t−p} = Σ_p (−1)^p C(n,p) x_{t−p}]
    (because [((1−q)/(1+q))^n] satisfies [(1+q)^n y = (1−q)^n x]) whose
    [O(n·n_states)] boundary state is carried across windows {e
    exactly}; only the fractional factor [ρ_β], whose weights decay
    like [lag^{−(1+β)}], is truncated to the last [K] transformed
    columns. Consequences: integer orders are exact for {e any}
    [memory_len] (including 0), and a truncated fractional solve
    commits a relative error empirically below {!truncation_mass} of
    the [β] series.

    Single-term order-1 systems skip all of this for a cheaper exact
    path matching the {!Engine} §III-A fast solver: per window,
    substitute [z = x − x_off] ([x_off] = the endpoint state entering
    the window), solve the zero-initial-condition window, and advance
    [x_off ← x_off + 2 Σ_l (−1)^{w−1−l} z_l] (the BPF endpoint
    recursion [e_i = 2x_i − e_{i−1}]); O(n) carried state, exact even
    for singular [E] (MNA/DAE systems).

    Observability: each window runs in a ["window"] trace span;
    [window.count] counts windows, [window.factor_reuse] counts
    factorisations served from the shared cache, and
    [window.handoff_seconds] observes per-window handoff time. *)

type stats = {
  windows : int;  (** number of windows solved, [⌈m/w⌉] *)
  width : int;  (** requested window width [w] *)
  memory_len : int;  (** effective history length [K] *)
  factor_hits : int;
      (** pencil-factor lookups served from the shared cache {e during
          this call} — one per window after the first on a uniform
          grid, i.e. [⌈m/w⌉ − 1] (each engine call consults the shared
          cache once; its columns are served by a per-call memo). A
          caller-supplied prefactored cache makes every window a hit. *)
  factor_misses : int;  (** factorisations actually computed this call *)
  handoff_seconds : float;
      (** total wall time spent on cross-window state handoff (history
          tail RHS corrections, endpoint transfer, ring updates) *)
}

val split_alpha : float -> int * float
(** [split_alpha α = (⌊α⌋, α − ⌊α⌋)] — the integer/fractional split the
    driver carries exactly / truncates. Exposed so compile-ahead
    callers ({!Compiled_model}) can precompute the very [ρ_β] series
    this driver will look up. *)

val truncation_mass :
  alpha:float -> lags:int -> memory_len:int -> float
(** [truncation_mass ~alpha ~lags ~memory_len] =
    [Σ_{K < j ≤ lags} |ρ_j| / Σ_{1 ≤ j ≤ lags} |ρ_j|] for the ρ-series
    of the {e fractional factor} [β = α − ⌊α⌋] (the only part the
    driver truncates; see the handoff notes above) — the fraction of
    total history weight a [memory_len = K] truncation discards over a
    horizon with [lags] ([= m − 1]) reachable lags. [0.] for integer
    [α] (carried exactly) and whenever nothing is truncated; the
    windowed-vs-global relative error of a truncated solve is
    empirically below this mass (see [test/test_window.ml]). *)

exception
  Interrupted of {
    error : Opm_robust.Opm_error.t;
        (** the breach: [Deadline_exceeded], [Budget_exhausted], or an
            [Io_error] from a checkpoint write *)
    partial : Mat.t;
        (** every completed window's columns, [n × (completed·w)] — a
            usable prefix of the horizon, never a partially solved
            window *)
    completed_windows : int;
    checkpoint : string option;
        (** path of the last checkpoint successfully written this run
            (or restored from), if any — pass it back as [~resume_from]
            to continue *)
  }
(** Raised by {!solve} when a {!Opm_robust.Budget} breach or a
    checkpoint-write failure interrupts a run at a window or column
    boundary. The in-flight window is discarded; everything before it is
    in [partial]. *)

val solve :
  ?backend:[ `Auto | `Dense | `Sparse ] ->
  ?health:Opm_robust.Health.t ->
  ?memory_len:int ->
  ?on_window:(index:int -> start:int -> Mat.t -> unit) ->
  ?fc_d:(float list, Engine.dense_block) Engine.Factor_cache.t ->
  ?fc_s:(float list, Engine.sparse_block) Engine.Factor_cache.t ->
  ?series_cache:(float * int, float array) Hashtbl.t ->
  ?budget:Opm_robust.Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  window:int ->
  grid:Opm_basis.Grid.t ->
  Multi_term.t ->
  bu:Mat.t ->
  Mat.t * stats
(** [solve ~window:w ~grid sys ~bu] solves the coefficient equation for
    [sys] against the precomputed [n×m] forcing matrix [bu] (see
    {!Opm.simulate_multi_term}, which builds [bu] — including the
    [x₀] substitution — and delegates here when [?window] is given),
    streaming window by window. Returns the full coefficient matrix
    plus the streaming {!stats}.

    [?memory_len] bounds the fractional history tail (default: full
    horizon = exact); it is ignored by the exact order-1 path.
    [?on_window] is called after each window with its index, starting
    column, and the [n×wlen] solved block — the streaming hook for
    consumers that do not want the assembled horizon.

    [?fc_d]/[?fc_s] substitute caller-owned factor caches for the
    per-call private ones: a compiled model ({!Compiled_model}) passes
    prefactored, pinned caches so no query factorises anything, and the
    driver itself pins the entries it inserts (the bounded cache can
    never evict the hot pencil mid-run, whatever else shares the
    cache). [?series_cache] memoises the O(m²) [ρ] series by
    [(α, length)] across calls. The per-window engine calls pass the
    global horizon as the FFT-gate history length, so long horizons
    keep the Toeplitz fast path even when [w] is far below the
    crossover.

    The [stats] hits/misses are deltas over this call when the caches
    are shared.

    {2 Crash safety}

    [?budget] threads a {!Opm_robust.Budget} through the run: the
    wall-clock deadline is checked at every window boundary (site
    ["window.boundary"]) and, via the engine, at every column (site
    ["engine.column"]); factorisation count and heap-byte caps are
    charged where pencils are built. A breach raises {!Interrupted}
    carrying the completed-window prefix.

    [?checkpoint] writes a resumable snapshot (schema
    ["opm-checkpoint-v1"], see {!Opm_robust.Checkpoint}) after every
    [?checkpoint_every]-th window (default 1) and after the final one.
    The payload holds the cross-window handoff state — the order-1
    endpoint vector or the integer-recurrence rings — plus the solved
    column prefix and a fingerprint of (system kind, [n], [m], [w],
    effective memory length, [h], the [α] list, input order, backend,
    and a digest of [bu]). Writes are atomic (tmp + rename), so the file
    on disk is always a complete, checksummed envelope.

    [?resume_from] loads such a snapshot and continues from its
    [next_window]; the fingerprint must match the current call exactly
    (structural equality) or [Checkpoint_error] is raised. A resumed run
    is bit-identical to the uninterrupted one — the restored state is
    hex-encoded IEEE-754 bits, not decimal round-trips. [?on_window] is
    {e not} re-fired for windows restored from the snapshot.

    Raises [Invalid_argument] when [window < 1], [memory_len < 0],
    [checkpoint_every < 1], the grid is not uniform, or [bu] disagrees
    with the system order and grid size. [window ≥ m] degenerates to a
    single window covering the horizon. *)
