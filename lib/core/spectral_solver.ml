open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_signal
module Health = Opm_robust.Health
module Budget = Opm_robust.Budget
module Opm_error = Opm_robust.Opm_error
module Trace = Opm_obs.Trace

module Operator = struct
  type t = { n : int; m : int; lu : Lu.t; cond : float }

  let make ?health ?budget ?cond_limit:_ ~n ~m terms =
    Trace.with_span "spectral.factor" @@ fun () ->
    let nm = n * m in
    (match budget with
    | Some bgt ->
        Budget.check_deadline_now bgt ~site:"spectral.factor";
        Budget.charge_factor ~bytes:(nm * nm * 8) bgt ~site:"spectral.factor"
    | None -> ());
    let op = Mat.zeros nm nm in
    let od = op.Mat.data in
    List.iter
      (fun (cmat, mmat) ->
        let cr, cc = Mat.dims cmat and mr, mc = Mat.dims mmat in
        if cr <> n || cc <> n || mr <> m || mc <> m then
          invalid_arg "Spectral_solver.Operator: term dimension mismatch";
        let cd = cmat.Mat.data and md = mmat.Mat.data in
        (* op += M_kᵀ ⊗ C_k in the column-stacked vec convention:
           entry ((i·n+r), (j·n+s)) += M_{ji} · C_{rs}; flat indices
           with hoisted row bases — this scatter runs once per compile
           but is m²n² wide, so accessor-call overhead is visible *)
        for i = 0 to m - 1 do
          for j = 0 to m - 1 do
            let mji = Array.unsafe_get md ((j * m) + i) in
            if mji <> 0.0 then
              for r = 0 to n - 1 do
                let rowbase = ((((i * n) + r) * nm) + (j * n)) in
                let crow = r * n in
                for s = 0 to n - 1 do
                  let idx = rowbase + s in
                  Array.unsafe_set od idx
                    (Array.unsafe_get od idx
                    +. (mji *. Array.unsafe_get cd (crow + s)))
                done
              done
          done
        done)
      terms;
    let lu =
      try Lu.factor op
      with Lu.Singular k ->
        (* vec index k = i·n + r: time column i, state row r *)
        Opm_error.raise_
          (Opm_error.Singular_pencil
             { column = k / n; step = k mod n; pivot = 0.0; name = None })
    in
    let cond = Lu.cond_est lu in
    (match health with Some h -> Health.record_cond h cond | None -> ());
    { n; m; lu; cond }

  let cond t = t.cond

  let solve ?health ?budget t rhs =
    (match budget with
    | Some bgt -> Budget.check_deadline bgt ~site:"spectral.solve"
    | None -> ());
    let rr, rc = Mat.dims rhs in
    if rr <> t.n || rc <> t.m then
      invalid_arg "Spectral_solver.Operator.solve: rhs dimension mismatch";
    let nm = t.n * t.m in
    let b = Array.make nm 0.0 in
    for i = 0 to t.m - 1 do
      for r = 0 to t.n - 1 do
        b.((i * t.n) + r) <- Mat.get rhs r i
      done
    done;
    let xv = Lu.solve t.lu b in
    (match health with Some h -> Health.record_vec h xv | None -> ());
    let nans = ref 0 and infs = ref 0 in
    Array.iter
      (fun v ->
        if Float.is_nan v then incr nans
        else if not (Float.is_finite v) then incr infs)
      xv;
    if !nans > 0 || !infs > 0 then
      Opm_error.raise_
        (Opm_error.Non_finite
           { stage = "spectral"; column = None; nans = !nans; infs = !infs });
    Mat.init t.n t.m (fun r i -> xv.((i * t.n) + r))
end

type t = {
  sys : Multi_term.t;
  grid : Grid.t;
  colloc : Jacobi.colloc;
  op : Operator.t;
  resample : Mat.t;  (* (Grid.size) × (m+1): midpoint evaluation *)
  dfull : Mat.t Lazy.t;  (* (m+1)² classical derivative for input_order *)
  mutable reuse : int;
}

let colloc t = t.colloc

let grid t = t.grid

let factorisations _ = 1

let factor_reuse t = t.reuse

let compile ?health ?budget ?cond_limit ~grid (sys : Multi_term.t) =
  Trace.with_span "spectral.compile" @@ fun () ->
  (match grid with
  | Grid.Uniform _ -> ()
  | Grid.Adaptive _ ->
      invalid_arg "Opm: the spectral basis requires a uniform grid");
  let n = Multi_term.order sys in
  let m = Grid.size grid in
  let colloc = Jacobi.collocation ~t_end:(Grid.t_end grid) ~m in
  let terms =
    (Trace.with_span "spectral.matrices" @@ fun () ->
     List.map
       (fun { Multi_term.coeff; alpha } ->
         ( Csr.to_dense coeff,
           Mat.transpose (Jacobi.caputo_colloc colloc ~alpha) ))
       sys.Multi_term.terms)
    @ [ (Mat.scale (-1.0) (Csr.to_dense sys.Multi_term.a), Mat.eye m) ]
  in
  let op = Operator.make ?health ?budget ?cond_limit ~n ~m terms in
  let resample = Jacobi.resample_matrix colloc (Grid.midpoints grid) in
  {
    sys;
    grid;
    colloc;
    op;
    resample;
    dfull = lazy (Jacobi.diff_matrix colloc);
    reuse = 0;
  }

(* Collocation samples the sources at the nodes — no projection
   integrals. The input derivative of [input_order = r] systems is r
   applications of the exact classical differentiation matrix on the
   full node set (values at nodes → derivative values at nodes). *)
let bu_nodal t sources =
  Trace.with_span "spectral.sample_inputs" @@ fun () ->
  let p = Multi_term.input_count t.sys in
  if Array.length sources <> p then
    invalid_arg
      (Printf.sprintf "Opm: system has %d inputs but %d sources given" p
         (Array.length sources));
  let mm = t.colloc.Jacobi.m + 1 in
  let u =
    Mat.init p mm (fun r j -> Source.eval sources.(r) t.colloc.Jacobi.all.(j))
  in
  let u =
    if t.sys.Multi_term.input_order = 0 then u
    else begin
      let dt = Mat.transpose (Lazy.force t.dfull) in
      let rec go u k = if k = 0 then u else go (Mat.mul u dt) (k - 1) in
      go u t.sys.Multi_term.input_order
    end
  in
  let ug = Mat.init p t.colloc.Jacobi.m (fun r i -> Mat.get u r (i + 1)) in
  Mat.mul t.sys.Multi_term.b ug

let solve_z ?health ?budget t bu =
  t.reuse <- t.reuse + 1;
  Operator.solve ?health ?budget t.op bu

let solve_nodal ?health ?budget t sources =
  solve_z ?health ?budget t (bu_nodal t sources)

let anchored t z =
  let n, mz = Mat.dims z in
  if mz <> t.colloc.Jacobi.m then
    invalid_arg "Spectral_solver: nodal value count mismatch";
  Mat.init n (mz + 1) (fun r j -> if j = 0 then 0.0 else Mat.get z r (j - 1))

let sample t z times =
  let r = Jacobi.resample_matrix t.colloc times in
  Mat.mul (anchored t z) (Mat.transpose r)

let solve ?health ?budget ?x0 t sources =
  Trace.with_span "spectral.solve" @@ fun () ->
  let n = Multi_term.order t.sys in
  let m = t.colloc.Jacobi.m in
  let bu = bu_nodal t sources in
  (* z = x − x₀: the collocation operator annihilates constants under
     the zero-initial-derivative convention, so only the RHS sees x₀ *)
  let bu =
    match x0 with
    | None -> bu
    | Some x0 ->
        if Array.length x0 <> n then
          invalid_arg "Opm: x0 length mismatch with system order";
        let ax0 = Csr.mul_vec t.sys.Multi_term.a x0 in
        Mat.init n m (fun r i -> Mat.get bu r i +. ax0.(r))
  in
  let z = solve_z ?health ?budget t bu in
  let x_mid = Mat.mul (anchored t z) (Mat.transpose t.resample) in
  let x_mid =
    match x0 with
    | None -> x_mid
    | Some x0 ->
        let rows, cols = Mat.dims x_mid in
        Mat.init rows cols (fun r i -> Mat.get x_mid r i +. x0.(r))
  in
  Sim_result.make ?health ~grid:t.grid ~x:x_mid ~c:t.sys.Multi_term.c
    ~state_names:t.sys.Multi_term.state_names
    ~output_names:t.sys.Multi_term.output_names ()
