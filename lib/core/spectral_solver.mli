open Opm_numkit
open Opm_basis
open Opm_signal

(** Spectral Jacobi-Gauss collocation solver for the multi-term pencil

    [Σ_k E_k · d^{α_k} x / dt^{α_k} = A x + B d^r u/dt^r]

    in the [{0} ∪ Gauss] collocation basis of {!Opm_basis.Jacobi}: the
    state is represented by its values at [m] Gauss nodes (anchored at
    [x(0) = x₀] through the extra node at 0), the fractional
    derivatives act as dense [m × m] collocation matrices, and the
    coupled system is solved through its Kronecker form

    [[Σ_k (D^{α_k} ⊗ E_k) − I_m ⊗ A] vec(X) = vec(B·U)]

    factored {e once} with {!Opm_numkit.Lu} — [O((nm)³)], worthwhile
    exactly because spectral [m] stays tiny (a few dozen nodes replace
    thousands of block pulses on smooth sources). Guardrails from
    [lib/robust] apply: the factorisation records a Hager/Higham
    condition estimate into [?health], raises structured
    [Opm_error.Singular_pencil]/[Non_finite] errors, and charges
    [?budget] for the factorisation and deadline.

    Inputs are {e sampled} at the collocation nodes (no projection
    integrals); the input derivative of [input_order = r] systems is
    applied [r] times via the exact classical differentiation matrix on
    the full node set.

    The collocation operator is input-dependent nowhere, so
    factor-once/query-many works unchanged: {!compile} factors,
    {!solve} queries reuse the factors — {!factorisations} stays 1 for
    the model's lifetime.

    Sharp edges (see DESIGN.md §18): the grid must be uniform ([m] is
    the number of collocation nodes, outputs are sampled at the [m]
    BPF midpoints of the same grid), and discontinuous sources lose
    the spectral rate to Gibbs oscillations — block pulses are the
    right basis there. *)

(** The shared dense Kronecker-operator primitive: factor
    [Σ_k (M_kᵀ ⊗ C_k)] once, then solve [Σ_k C_k X M_k = R] for many
    right-hand sides. Also the engine of the Legendre integral-form
    solver ({!Legendre_solver}), whose integration matrix is dense
    non-triangular too. *)
module Operator : sig
  type t

  val make :
    ?health:Opm_robust.Health.t ->
    ?budget:Opm_robust.Budget.t ->
    ?cond_limit:float ->
    n:int ->
    m:int ->
    (Mat.t * Mat.t) list ->
    t
  (** [make ~n ~m terms] with [terms = [(C_k, M_k); …]] ([C_k] is
      [n × n], [M_k] is [m × m]) forms and factors
      [Σ_k (M_kᵀ ⊗ C_k)]. Raises structured
      [Opm_error.Singular_pencil] when the operator is singular;
      records the condition estimate into [?health]; charges [?budget]
      one factorisation of [(nm)²] floats. *)

  val solve :
    ?health:Opm_robust.Health.t ->
    ?budget:Opm_robust.Budget.t ->
    t ->
    Mat.t ->
    Mat.t
  (** Solve [Σ_k C_k X M_k = R] for the [n × m] right-hand side [R]
      against the cached factors — zero factorisations per call.
      Raises structured [Opm_error.Non_finite] if the solution
      contains NaN/Inf. *)

  val cond : t -> float
  (** The cached Hager/Higham condition estimate of the factored
      operator. *)
end

type t

val compile :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?cond_limit:float ->
  grid:Grid.t ->
  Multi_term.t ->
  t
(** Build the collocation layout, the [D^{α_k}] matrices and the
    factored Kronecker operator — everything input-independent.
    [Grid.size grid] is the number of collocation nodes. Raises
    [Invalid_argument] on adaptive grids. *)

val solve :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?x0:Vec.t ->
  t ->
  Source.t array ->
  Sim_result.t
(** One query: sample the sources at the nodes, apply the
    [z = x − x₀] substitution (the operator annihilates constants
    under the zero-initial-derivative convention, so only the
    right-hand side sees [x₀]), back-solve against the compiled
    factors, and resample the interpolant onto the grid midpoints for
    the {!Sim_result} waveform views. *)

val solve_nodal :
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  t ->
  Source.t array ->
  Mat.t
(** Raw query with zero initial state: the [n × m] state values at the
    Gauss collocation nodes (no resampling, no output projection). *)

val sample : t -> Mat.t -> float array -> Mat.t
(** [sample t z times] evaluates the anchored interpolant through the
    nodal values [z] ([n × m], zero at [t = 0]) at arbitrary [times] —
    the spectral-accuracy way to compare against references on grids
    much finer than [m] (linear waveform resampling would drown the
    spectral error in interpolation error). *)

val colloc : t -> Jacobi.colloc

val grid : t -> Grid.t

val factorisations : t -> int
(** Always 1: the compile-time factorisation. *)

val factor_reuse : t -> int
(** Queries served from the compiled factors (one per {!solve}/
    {!solve_nodal}). *)
