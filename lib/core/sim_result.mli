open Opm_numkit
open Opm_basis
open Opm_signal

(** Result of an OPM simulation: the raw BPF coefficient matrix plus
    waveform views of states and outputs sampled at the grid
    midpoints (the natural evaluation points of a BPF expansion). *)

type t = {
  grid : Grid.t;
  x : Mat.t;  (** [n×m] BPF coefficients of the state *)
  states : Waveform.t;
  outputs : Waveform.t;
  health : Opm_robust.Health.t option;
      (** the collector the solve was run with, when one was passed *)
}

(** Incremental assembly of the coefficient matrix from column blocks —
    the windowed streaming driver ({!Window}) appends each solved
    window instead of allocating (and zero-filling) the whole horizon
    up front. Blocks are kept by reference until {!Builder.to_mat}, so
    a caller that only streams windows through [?on_window] and never
    materialises the result keeps an O(n·w) working set. *)
module Builder : sig
  type builder

  val create : n:int -> builder
  (** Builder for an [n]-row coefficient matrix with 0 columns so far. *)

  val append : builder -> Mat.t -> unit
  (** Append a block of columns. Raises [Invalid_argument] when the
      block's row count differs from [n]. *)

  val cols : builder -> int
  (** Total columns appended so far. *)

  val to_mat : builder -> Mat.t
  (** Concatenate the appended blocks left to right. *)
end

val make :
  ?health:Opm_robust.Health.t ->
  grid:Grid.t ->
  x:Mat.t ->
  c:Mat.t ->
  state_names:string array ->
  output_names:string array ->
  unit ->
  t

val output : t -> int -> Vec.t
(** Row [i] of the output waveform. *)

val state : t -> int -> Vec.t

val health : t -> Opm_robust.Health.t option

val health_report : ?cond_limit:float -> t -> string option
(** Rendered {!Opm_robust.Health.to_string} of the carried collector. *)
