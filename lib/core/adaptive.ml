open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_robust
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

(* observability instruments (no-ops unless metrics are enabled) *)
let m_accepted = Metrics.counter "adaptive.steps.accepted"
let m_rejected = Metrics.counter "adaptive.steps.rejected"
let m_halved = Metrics.counter "adaptive.steps.halved"

type stats = {
  accepted : int;
  rejected : int;
  factorizations : int;
}

(* state of the incremental column recurrence:
   rhs_i = B·ū_i − (4/h_i)·E·(−1)^i·salt, where salt = Σ_{j<i} (−1)^j x_j *)
type walk = {
  mutable t : float;
  mutable index : int;  (* column index i *)
  mutable salt : Vec.t;  (* alternating sum of accepted columns *)
}

(* consecutive halvings allowed when a trial step comes back NaN/Inf
   before the driver gives up with a structured error *)
let max_non_finite_retries = 3

let solve ?(tol = 1e-4) ?health ?budget ?h_init ?h_min ?h_max ~t_end
    (sys : Descriptor.t) sources =
  Trace.with_span "adaptive.solve" @@ fun () ->
  if t_end <= 0.0 then invalid_arg "Adaptive.solve: t_end <= 0";
  let n = Descriptor.order sys in
  let p = Descriptor.input_count sys in
  if Array.length sources <> p then
    invalid_arg "Adaptive.solve: source count mismatch";
  let h_init = Option.value h_init ~default:(t_end /. 100.0) in
  let h_min = Option.value h_min ~default:(t_end *. 1e-9) in
  let h_max = Option.value h_max ~default:(t_end /. 4.0) in
  let e = Descriptor.e_dense sys and a = Descriptor.a_dense sys in
  let factorizations = ref 0 in
  (* small cache keyed by the step length: repeated h values (e.g. after
     the controller settles) reuse their factorisation *)
  let cache : (float * Lu.t) list ref = ref [] in
  let factor_for h =
    match List.assoc_opt h !cache with
    | Some f -> f
    | None ->
        (match budget with
        | Some b ->
            Budget.charge_factor ~bytes:(n * n * 8) b ~site:"adaptive.factor"
        | None -> ());
        let m = Mat.sub (Mat.scale (2.0 /. h) e) a in
        let f =
          match Lu.factor m with
          | f -> f
          | exception Lu.Singular k ->
              Opm_error.raise_
                (Opm_error.Singular_pencil
                   { column = 0; step = k; pivot = 0.0; name = None })
        in
        incr factorizations;
        cache := (h, f) :: List.filteri (fun i _ -> i < 7) !cache;
        f
  in
  let bu_avg t0 t1 =
    (* B · (interval average of u) *)
    let u = Array.map (fun src -> Source.average src t0 t1) sources in
    Mat.mul_vec sys.Descriptor.b u
  in
  (* one OPM column with step h from walk state w (not mutated) *)
  let column ~index ~salt ~t h =
    let rhs = bu_avg t (t +. h) in
    (* subtract (4/h)·E·(−1)^index·salt *)
    let sign = if index land 1 = 1 then -1.0 else 1.0 in
    let coupling = Mat.mul_vec e salt in
    Vec.axpy (-4.0 /. h *. sign) coupling rhs;
    Lu.solve (factor_for h) rhs
  in
  let advance_salt ~index ~salt x =
    (* salt' = salt + (−1)^index · x *)
    let s = Vec.copy salt in
    Vec.axpy (if index land 1 = 1 then -1.0 else 1.0) x s;
    s
  in
  let w = { t = 0.0; index = 0; salt = Vec.zeros n } in
  let steps = ref [] and cols = ref [] in
  let accepted = ref 0 and rejected = ref 0 in
  let h = ref (Float.min h_init h_max) in
  (* consecutive non-finite trials at the current location *)
  let nf_retries = ref 0 in
  while w.t < t_end -. (1e-12 *. t_end) do
    (match budget with
    | Some b -> Budget.check_deadline_now b ~site:"adaptive.step"
    | None -> ());
    let h_trial = Float.min !h (t_end -. w.t) in
    (* full step *)
    let x_full = column ~index:w.index ~salt:w.salt ~t:w.t h_trial in
    (* two half steps *)
    let hh = 0.5 *. h_trial in
    let x_h1 = column ~index:w.index ~salt:w.salt ~t:w.t hh in
    let salt' = advance_salt ~index:w.index ~salt:w.salt x_h1 in
    let x_h2 =
      column ~index:(w.index + 1) ~salt:salt' ~t:(w.t +. hh) hh
    in
    if
      not
        (Guard.is_finite x_full && Guard.is_finite x_h1
        && Guard.is_finite x_h2)
    then begin
      (* a poisoned trial must not reach the error estimate (NaN
         comparisons would silently reject forever): refine the local
         grid — halve the step — a bounded number of times, then give
         up with a structured error instead of propagating garbage *)
      incr nf_retries;
      Metrics.incr m_halved;
      if !nf_retries > max_non_finite_retries then begin
        let worst =
          List.find (fun v -> not (Guard.is_finite v))
            [ x_full; x_h1; x_h2 ]
        in
        let nans, infs = Guard.count_non_finite worst in
        Opm_error.raise_
          (Opm_error.Non_finite
             { stage = "adaptive"; column = Some w.index; nans; infs })
      end;
      Option.iter
        (fun hl ->
          Health.record_event hl
            (Health.Step_halved { t = w.t; h = hh; retry = !nf_retries }))
        health;
      incr rejected;
      h := Float.max h_min hh
    end
    else begin
      nf_retries := 0;
      (* both solutions estimate the same quantity — the BPF average of x
         over [t, t+h] — as x_full and (x_h1 + x_h2)/2; their difference
         is the Richardson local-error estimate *)
      let x_halves = Vec.scale 0.5 (Vec.add x_h1 x_h2) in
      let scale =
        Float.max 1.0 (Float.max (Vec.norm_inf x_full) (Vec.norm_inf x_h2))
      in
      let err = Vec.max_abs_diff x_full x_halves /. scale in
      if err <= tol || h_trial <= h_min *. 1.000001 then begin
        if err > tol then
          Logs.warn (fun k ->
              k "Adaptive.solve: step %g at t=%g accepted above tolerance (err %g)"
                h_trial w.t err);
        (* accept the two half-step columns (the more accurate solution) *)
        steps := hh :: hh :: !steps;
        cols := x_h2 :: x_h1 :: !cols;
        (match health with
        | None -> ()
        | Some hl ->
            Health.record_vec hl x_h1;
            Health.record_vec hl x_h2);
        w.t <- w.t +. h_trial;
        w.index <- w.index + 2;
        w.salt <- advance_salt ~index:(w.index - 1) ~salt:salt' x_h2;
        incr accepted;
        (* grow the step when comfortably inside the tolerance; steps move
           by factors of two only, so the LU cache keyed on h gets hits *)
        let growth = 0.9 *. ((tol /. Float.max err 1e-300) ** 0.5) in
        if growth >= 2.0 && 2.0 *. h_trial <= h_max then h := 2.0 *. h_trial
        else h := h_trial
      end
      else begin
        incr rejected;
        if h_trial <= h_min *. 1.000001 then
          failwith "Adaptive.solve: tolerance unreachable at minimum step";
        h := Float.max h_min (0.5 *. h_trial)
      end
    end
  done;
  Metrics.incr ~by:!accepted m_accepted;
  Metrics.incr ~by:!rejected m_rejected;
  let steps = Array.of_list (List.rev !steps) in
  let cols = Array.of_list (List.rev !cols) in
  let m = Array.length steps in
  let grid = Grid.adaptive steps in
  let x = Mat.zeros n m in
  Array.iteri (fun i col -> Mat.set_col x i col) cols;
  let result =
    Sim_result.make ?health ~grid ~x ~c:sys.Descriptor.c
      ~state_names:sys.Descriptor.state_names
      ~output_names:sys.Descriptor.output_names ()
  in
  (result, { accepted = m; rejected = !rejected; factorizations = !factorizations })
