open Opm_signal

(** Adaptive time-step OPM (paper §III-B).

    With per-interval steps [h_i] the differential matrix column [i]
    depends only on [h_i] (eq. 25's closed form:
    [D̃_{ii} = 2/h_i], [D̃_{ji} = 4(−1)^{i−j}/h_i] for [j < i]), so the
    column-by-column solve extends *incrementally*: appending a step
    never changes earlier columns. The driver exploits this to choose
    each [h_i] on the fly — the paper's "error control mechanism" —
    by comparing a full step against two half steps and applying a
    standard step-size controller.

    Linear first-order systems only ([E ẋ = A x + B u]); fractional
    systems on a *prescribed* adaptive grid are handled by
    {!Opm.simulate_fractional} instead (their operational matrix
    couples all steps, so on-the-fly extension is not possible). *)

type stats = {
  accepted : int;  (** accepted steps (= final grid size) *)
  rejected : int;  (** rejected trial steps *)
  factorizations : int;  (** distinct diagonal-block factorisations *)
}

val max_non_finite_retries : int
(** 3 — consecutive step halvings allowed when a trial produces NaN/Inf
    before {!solve} raises [Opm_robust.Opm_error.Error (Non_finite _)]. *)

val solve :
  ?tol:float ->
  ?health:Opm_robust.Health.t ->
  ?budget:Opm_robust.Budget.t ->
  ?h_init:float ->
  ?h_min:float ->
  ?h_max:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Sim_result.t * stats
(** [tol] is the per-step local error tolerance relative to the state
    scale (default [1e-4]). [h_init] defaults to [t_end/100]; [h_min]
    to [t_end·1e-9]; [h_max] to [t_end/4]. Raises [Failure] if the
    controller hits [h_min] without meeting [tol].

    A trial step whose solution contains NaN/Inf is never fed to the
    error estimate (whose NaN comparisons would reject forever):
    the step is halved — local grid refinement — up to
    {!max_non_finite_retries} consecutive times, each halving recorded
    as a [Step_halved] event in [health]; on exhaustion
    [Opm_robust.Opm_error.Error (Non_finite _)] is raised. A singular
    trial pencil raises the structured [Singular_pencil] error.

    [?budget] checks the wall-clock deadline before every trial step
    (site ["adaptive.step"]) and charges each distinct diagonal-block
    factorisation against the factor/heap caps (site
    ["adaptive.factor"]); a breach raises the structured
    [Deadline_exceeded]/[Budget_exhausted] error. *)
