open Opm_numkit
open Opm_sparse
open Opm_basis
module Trace = Opm_obs.Trace

type backend = [ `Auto | `Dense | `Sparse ]

let input_coefficients ~grid sources =
  let m = Grid.size grid in
  let p = Array.length sources in
  let u = Mat.zeros p m in
  Array.iteri
    (fun r src ->
      let coeffs = Block_pulse.project_source grid src in
      for i = 0 to m - 1 do
        Mat.set u r i coeffs.(i)
      done)
    sources;
  u

let pick_backend backend n =
  match backend with
  | `Dense -> `Dense
  | `Sparse -> `Sparse
  | `Auto -> if n > 64 then `Sparse else `Dense

let bu_matrix ~grid (sys : Multi_term.t) sources =
  Trace.with_span "opm.project_inputs" @@ fun () ->
  let p = Multi_term.input_count sys in
  if Array.length sources <> p then
    invalid_arg
      (Printf.sprintf "Opm: system has %d inputs but %d sources given" p
         (Array.length sources));
  let u = input_coefficients ~grid sources in
  let u =
    (* input derivative d^r u/dt^r acts on coefficients as U · D^r *)
    if sys.Multi_term.input_order = 0 then u
    else
      let d = Block_pulse.differential_matrix grid in
      let rec apply u k = if k = 0 then u else apply (Mat.mul u d) (k - 1) in
      apply u sys.Multi_term.input_order
  in
  Mat.mul sys.Multi_term.b u

(* On exactly-uniform grids every operational matrix is upper-triangular
   Toeplitz, so its first row drives the engine's FFT history fast path.
   Extracting the row from the built matrix (rather than recomputing the
   ρ series) keeps the two representations consistent by construction.
   Near-uniform adaptive grids are deliberately excluded: the acceptance
   contract keeps every [Grid.Adaptive] solve bit-identical to the naive
   engine.

   Orders above 1 are excluded too, for accuracy rather than structure:
   |ρ_α(l)| grows like l^{α−1} with alternating sign for α > 1, and the
   naive j-ascending scan sums those terms in an order whose partial
   sums cancel pairwise and stay small. Blockwise FFT reassociation
   forfeits that cancellation, and the marginally-stable high-order
   recurrence then integrates the roundoff (≈5e-4 absolute drift on the
   α = 2 oscillator at m = 1000). Non-growing kernels (α ≤ 1) keep the
   conv/naive agreement within the ≤ 1e-10 contract. *)
let fft_safe_terms terms =
  List.for_all (fun { Multi_term.alpha; _ } -> alpha <= 1.0) terms

let uniform_toeplitz ~grid ~terms dmats =
  match grid with
  | Grid.Uniform _ when Engine.fft_rhs_enabled () && fft_safe_terms terms ->
      let m = Grid.size grid in
      Some (List.map (fun (_, d) -> Array.init m (Mat.get d 0)) dmats)
  | _ -> None

let solve_multi_term_general ?health ~backend ~grid (sys : Multi_term.t) ~bu =
  let n = Multi_term.order sys in
  let dmats =
    Trace.with_span "opm.operational_matrices" @@ fun () ->
    List.map
      (fun { Multi_term.coeff; alpha } ->
        (coeff, Block_pulse.fractional_differential_matrix grid alpha))
      sys.Multi_term.terms
  in
  let toeplitz = uniform_toeplitz ~grid ~terms:sys.Multi_term.terms dmats in
  match pick_backend backend n with
  | `Sparse ->
      Engine.solve_sparse ?health ?toeplitz ~terms:dmats ~a:sys.Multi_term.a
        ~bu ()
  | `Dense ->
      let terms = List.map (fun (e, d) -> (Csr.to_dense e, d)) dmats in
      Engine.solve_dense ?health ?toeplitz ~terms
        ~a:(Csr.to_dense sys.Multi_term.a) ~bu ()

let shift_by_x0 x x0 =
  let n, m = Mat.dims x in
  Mat.init n m (fun r i -> Mat.get x r i +. x0.(r))

let simulate_multi_term ?(backend = `Auto) ?health ?x0 ?window ?memory_len
    ~grid (sys : Multi_term.t) sources =
  Trace.with_span "opm.simulate" @@ fun () ->
  let n = Multi_term.order sys in
  let bu = bu_matrix ~grid sys sources in
  (* nonzero initial state by substitution z = x − x₀ (the Caputo
     derivative of a constant vanishes for every α > 0, so the
     differential terms are untouched): E d^α z = A z + (B u + A x₀) *)
  let bu, finish =
    match x0 with
    | None -> (bu, Fun.id)
    | Some x0 ->
        if Array.length x0 <> n then
          invalid_arg "Opm: x0 length mismatch with system order";
        let ax0 = Csr.mul_vec sys.Multi_term.a x0 in
        let m = Grid.size grid in
        let bu' = Mat.init n m (fun r i -> Mat.get bu r i +. ax0.(r)) in
        (bu', fun x -> shift_by_x0 x x0)
  in
  let pack x =
    Sim_result.make ?health ~grid ~x:(finish x) ~c:sys.Multi_term.c
      ~state_names:sys.Multi_term.state_names
      ~output_names:sys.Multi_term.output_names ()
  in
  (* windowed streaming: delegate to the Window driver only for a
     genuine split (w < m); w ≥ m degenerates to the global path below,
     which keeps the w = m case bit-identical to an unwindowed run *)
  match window with
  | Some w when w < 1 -> invalid_arg "Opm: window width must be >= 1"
  | Some w when w < Grid.size grid ->
      let x, _stats =
        Window.solve ~backend ?health ?memory_len ~window:w ~grid sys ~bu
      in
      pack x
  | _ -> (
  (* paper §III-A: the order-1 matrix D has a special pattern that turns
     the per-column history into one running alternating sum; dispatch to
     that fast path when the system is plain linear *)
  match (sys.Multi_term.terms, sys.Multi_term.input_order) with
  | [ { Multi_term.coeff = e; alpha = 1.0 } ], 0 ->
      let steps = Grid.steps grid in
      let x =
        match pick_backend backend n with
        | `Sparse ->
            Engine.solve_linear_sparse ?health ~steps ~e ~a:sys.Multi_term.a
              ~bu ()
        | `Dense ->
            Engine.solve_linear_dense ?health ~steps ~e:(Csr.to_dense e)
              ~a:(Csr.to_dense sys.Multi_term.a) ~bu ()
      in
      pack x
  | _ -> pack (solve_multi_term_general ?health ~backend ~grid sys ~bu))

let simulate_fractional ?backend ?health ?x0 ?window ?memory_len ~grid ~alpha
    sys sources =
  simulate_multi_term ?backend ?health ?x0 ?window ?memory_len ~grid
    (Multi_term.of_fractional ~alpha sys)
    sources

let simulate_linear ?backend ?health ?x0 ?window ?memory_len ~grid sys sources
    =
  simulate_multi_term ?backend ?health ?x0 ?window ?memory_len ~grid
    (Multi_term.of_linear sys) sources

let simulate_linear_kron ~grid (sys : Descriptor.t) sources =
  let mt = Multi_term.of_linear sys in
  let bu = bu_matrix ~grid mt sources in
  let d = Block_pulse.differential_matrix grid in
  let x =
    Engine.solve_dense_kron
      ~terms:[ (Descriptor.e_dense sys, d) ]
      ~a:(Descriptor.a_dense sys) ~bu
  in
  Sim_result.make ~grid ~x ~c:sys.Descriptor.c
    ~state_names:sys.Descriptor.state_names
    ~output_names:sys.Descriptor.output_names ()

let simulate_linear_integral ?x0 ~grid (sys : Descriptor.t) sources =
  let mt = Multi_term.of_linear sys in
  let bu = bu_matrix ~grid mt sources in
  let m = Grid.size grid in
  let n = Descriptor.order sys in
  let h_mat = Block_pulse.integral_matrix grid in
  let bu_int = Mat.mul bu h_mat in
  let x0 = Option.value x0 ~default:(Vec.zeros n) in
  (* uniform-grid H is Toeplitz (first row [h/2; h; h; …]), so the
     integral form shares the FFT history fast path *)
  let toeplitz =
    match grid with
    | Grid.Uniform _ when Engine.fft_rhs_enabled () ->
        Some [ Array.init m (Mat.get h_mat 0) ]
    | _ -> None
  in
  let x =
    Engine.solve_integral_dense ?toeplitz ~h_mat ~one:(Array.make m 1.0)
      ~e:(Descriptor.e_dense sys) ~a:(Descriptor.a_dense sys) ~bu_int ~x0 ()
  in
  Sim_result.make ~grid ~x ~c:sys.Descriptor.c
    ~state_names:sys.Descriptor.state_names
    ~output_names:sys.Descriptor.output_names ()
