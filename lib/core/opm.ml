open Opm_numkit
open Opm_sparse
open Opm_basis
module Trace = Opm_obs.Trace

type backend = [ `Auto | `Dense | `Sparse ]

(* the input-projection / backend-policy / Toeplitz helpers live in
   Compiled_model (which sits below Opm so the one-shot paths can be
   compile-then-solve); re-exported here for existing callers *)
let input_coefficients = Compiled_model.input_coefficients

let pick_backend = Compiled_model.pick_backend

let bu_matrix ~grid sys sources = Compiled_model.bu_matrix ~grid sys sources

(* One-shot simulation is literally compile-then-solve: every
   plant-dependent artefact (operational matrices, Toeplitz rows, FFT
   plan, pinned pencil factor) is built by [compile] exactly as the
   historical one-shot path built it, so cold behaviour is
   bit-identical while sweep callers can hold on to the compiled model
   and pay the setup once. *)
let simulate_multi_term ?(backend = `Auto) ?basis ?health ?budget ?checkpoint
    ?checkpoint_every ?resume_from ?x0 ?window ?memory_len ~grid
    (sys : Multi_term.t) sources =
  Trace.with_span "opm.simulate" @@ fun () ->
  let t =
    Compiled_model.compile ~backend ?basis ?health ?window ?memory_len ~grid
      sys
  in
  Compiled_model.solve ?health ?budget ?checkpoint ?checkpoint_every
    ?resume_from ?x0 t sources

let simulate_fractional ?backend ?basis ?health ?budget ?checkpoint
    ?checkpoint_every ?resume_from ?x0 ?window ?memory_len ~grid ~alpha sys
    sources =
  simulate_multi_term ?backend ?basis ?health ?budget ?checkpoint
    ?checkpoint_every ?resume_from ?x0 ?window ?memory_len ~grid
    (Multi_term.of_fractional ~alpha sys)
    sources

let simulate_linear ?backend ?basis ?health ?budget ?checkpoint
    ?checkpoint_every ?resume_from ?x0 ?window ?memory_len ~grid sys sources =
  simulate_multi_term ?backend ?basis ?health ?budget ?checkpoint
    ?checkpoint_every ?resume_from ?x0 ?window ?memory_len ~grid
    (Multi_term.of_linear sys) sources

let simulate_linear_kron ~grid (sys : Descriptor.t) sources =
  let mt = Multi_term.of_linear sys in
  let bu = bu_matrix ~grid mt sources in
  let d = Block_pulse.differential_matrix grid in
  let x =
    Engine.solve_dense_kron
      ~terms:[ (Descriptor.e_dense sys, d) ]
      ~a:(Descriptor.a_dense sys) ~bu
  in
  Sim_result.make ~grid ~x ~c:sys.Descriptor.c
    ~state_names:sys.Descriptor.state_names
    ~output_names:sys.Descriptor.output_names ()

let simulate_linear_integral ?(backend = `Auto) ?health ?budget ?x0 ?window
    ~grid (sys : Descriptor.t) sources =
  Trace.with_span "opm.simulate_integral" @@ fun () ->
  let mt = Multi_term.of_linear sys in
  let bu = bu_matrix ~grid mt sources in
  let m = Grid.size grid in
  let n = Descriptor.order sys in
  let h_mat = Block_pulse.integral_matrix grid in
  let bu_int = Mat.mul bu h_mat in
  let x0 = Option.value x0 ~default:(Vec.zeros n) in
  if Array.length x0 <> n then
    invalid_arg "Opm: x0 length mismatch with system order";
  let backend = pick_backend backend n in
  (* uniform-grid H is Toeplitz (first row [h/2; h; h; …]), so the
     integral form shares the FFT history fast path *)
  let toeplitz_of w =
    match grid with
    | Grid.Uniform _ when Engine.fft_rhs_enabled () ->
        Some [ Array.init w (Mat.get h_mat 0) ]
    | _ -> None
  in
  let global () =
    let one = Array.make m 1.0 in
    match backend with
    | `Dense ->
        Engine.solve_integral_dense ?health ?toeplitz:(toeplitz_of m) ?budget
          ~h_mat ~one ~e:(Descriptor.e_dense sys) ~a:(Descriptor.a_dense sys)
          ~bu_int ~x0 ()
    | `Sparse ->
        Engine.solve_integral_sparse ?health ?toeplitz:(toeplitz_of m) ?budget
          ~h_mat ~one ~e:sys.Descriptor.e ~a:sys.Descriptor.a ~bu_int ~x0 ()
  in
  (* Windowed streaming of the integral form. On a uniform grid the
     history weights are constant — H_{ji} = h for every j < i — so the
     pre-window coupling of every column in a window starting at [s] is
     the same vector A·(h·Σ_{j<s} x_j): an O(n) running sum carried
     across windows *exactly* (no truncation question arises, unlike
     the fractional differential tails). Each window is then a fresh
     integral solve over its own wlen×wlen H block with the coupling
     folded into bu, sharing one pinned pencil factorisation through
     the caches. *)
  let windowed w =
    if not (Grid.is_uniform ~tol:1e-12 grid) then
      invalid_arg "Opm: windowed integral solve requires a uniform grid";
    let h = Grid.t_end grid /. float_of_int m in
    let fc_d = Engine.Factor_cache.create () in
    let fc_s = Engine.Factor_cache.create () in
    let e_d = lazy (Descriptor.e_dense sys) in
    let a_d = lazy (Descriptor.a_dense sys) in
    let builder = Sim_result.Builder.create ~n in
    let nwin = (m + w - 1) / w in
    (* running sum h·Σ_{j<s} x_j, the carried integral state *)
    let s_pre = Array.make n 0.0 in
    for win = 0 to nwin - 1 do
      (match budget with
      | Some b -> Opm_robust.Budget.check_deadline_now b ~site:"window.boundary"
      | None -> ());
      let s = win * w in
      let wlen = min w (m - s) in
      Trace.with_span "window" @@ fun () ->
      let a_spre =
        match backend with
        | `Dense -> Mat.mul_vec (Lazy.force a_d) s_pre
        | `Sparse -> Csr.mul_vec sys.Descriptor.a s_pre
      in
      let bu_win =
        Mat.init n wlen (fun r l -> Mat.get bu_int r (s + l) +. a_spre.(r))
      in
      let h_win =
        Mat.init wlen wlen (fun i j ->
            if j < i then 0.0 else if j = i then h /. 2.0 else h)
      in
      let toeplitz =
        match toeplitz_of wlen with
        | Some _ ->
            Some
              [
                Array.init wlen (fun l ->
                    if l = 0 then h /. 2.0 else h);
              ]
        | None -> None
      in
      let one = Array.make wlen 1.0 in
      let x_win =
        match backend with
        | `Dense ->
            Engine.solve_integral_dense ?health ~fcache:fc_d
              ~pin_factors:true ?toeplitz ~history_len:m ?budget ~h_mat:h_win
              ~one ~e:(Lazy.force e_d) ~a:(Lazy.force a_d) ~bu_int:bu_win ~x0
              ()
        | `Sparse ->
            Engine.solve_integral_sparse ?health ~fcache:fc_s
              ~pin_factors:true ?toeplitz ~history_len:m ?budget ~h_mat:h_win
              ~one ~e:sys.Descriptor.e ~a:sys.Descriptor.a ~bu_int:bu_win ~x0
              ()
      in
      for l = 0 to wlen - 1 do
        for r = 0 to n - 1 do
          s_pre.(r) <- s_pre.(r) +. (h *. Mat.get x_win r l)
        done
      done;
      Sim_result.Builder.append builder x_win
    done;
    Sim_result.Builder.to_mat builder
  in
  let x =
    match window with
    | Some w when w < 1 -> invalid_arg "Opm: window width must be >= 1"
    | Some w when w < m -> windowed w
    | _ -> global ()
  in
  Sim_result.make ?health ~grid ~x ~c:sys.Descriptor.c
    ~state_names:sys.Descriptor.state_names
    ~output_names:sys.Descriptor.output_names ()
