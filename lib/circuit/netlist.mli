open Opm_signal

(** Circuit netlists.

    Nodes are referred to by name; ["0"] and ["gnd"] are the ground
    node. Elements cover the paper's system classes: R/L/C for ordinary
    RLC circuits, independent sources with arbitrary waveforms, and the
    constant-phase element (CPE, a "fractional capacitor" with branch
    relation [i = Q · d^α v / dt^α]) — the circuit-level origin of
    fractional differential models such as supercapacitors and lossy
    transmission lines. *)

type element =
  | Resistor of float  (** ohms *)
  | Capacitor of float  (** farads *)
  | Inductor of float  (** henries *)
  | Cpe of { q : float; alpha : float }
      (** constant-phase element: [i = q · d^α v/dt^α], [0 < alpha] *)
  | Voltage_source of Source.t
  | Current_source of Source.t
      (** positive current flows from the + node through the source to
        the − node (SPICE convention) *)
  | Vccs of { gm : float; ctrl_plus : string; ctrl_minus : string }
      (** SPICE G element: current [gm·(v(ctrl+) − v(ctrl−))] from the
        + node through the source to the − node *)
  | Vcvs of { gain : float; ctrl_plus : string; ctrl_minus : string }
      (** SPICE E element:
        [v(+) − v(−) = gain·(v(ctrl+) − v(ctrl−))]; adds a branch
        current like an independent voltage source *)

type instance = {
  name : string;  (** unique designator, e.g. "R1" *)
  plus : string;  (** + node *)
  minus : string;  (** − node *)
  element : element;
}

type t
(** A mutable netlist under construction (the usual EDA builder
    pattern: stamp elements in, then extract matrices). *)

val create : unit -> t

val add : t -> instance -> unit
(** Raises [Invalid_argument] on duplicate designators (compared
    case-insensitively, matching SPICE convention), non-positive
    R/L/C/CPE values, or a ground-to-ground connection. *)

val of_list : instance list -> t

val instances : t -> instance list
(** In insertion order. *)

val node_names : t -> string array
(** Non-ground nodes, in first-appearance order. *)

val node_index : t -> string -> int option
(** Index into {!node_names}; [None] for ground. *)

val node_count : t -> int

val is_ground : string -> bool

val find : t -> string -> instance option

val cardinality : t -> int
(** Number of element instances. *)

(** Constructors for the common elements (node order: plus, minus). *)

val r : string -> string -> string -> float -> instance
val c : string -> string -> string -> float -> instance
val l : string -> string -> string -> float -> instance
val cpe : string -> string -> string -> q:float -> alpha:float -> instance
val v : string -> string -> string -> Source.t -> instance
val i : string -> string -> string -> Source.t -> instance

val vccs :
  string -> string -> string -> ctrl:string * string -> gm:float -> instance

val vcvs :
  string -> string -> string -> ctrl:string * string -> gain:float -> instance

val instance_to_line : instance -> string
(** One netlist line in the {!Parser} grammar. [Fn] sources cannot be
    printed and raise [Invalid_argument]. *)

val to_string : t -> string
(** The whole netlist in parser syntax (ends with [".end"]). Parsing
    the output reproduces the netlist (see the roundtrip tests). *)
