open Opm_signal

(** 3-D RLC power-grid generator — the Table II workload.

    An [nx × ny × nz] lattice of nodes: in-plane lattice edges are
    resistive wire segments, inter-layer edges are inductive vias, every
    node has a decoupling [C] to ground, and switching blocks draw
    pulse-train currents at tap nodes on the bottom layer. The paper's
    instance has 75 K nodes (second-order NA model) / 110 K MNA
    unknowns (nodes + inductor currents); ours is scale-parametric with
    the same structure and the same NA-vs-MNA size relationship.

    Defaults follow typical on-chip grid per-segment values:
    [r = 10 mΩ] (wires), [l = 0.1 pH] (vias), [c = 1 pF] (decap),
    load pulses of 1 mA with 100 ps period. *)

type spec = {
  nx : int;
  ny : int;
  nz : int;
  r : float;  (** segment resistance, Ω *)
  l : float;  (** segment inductance, H *)
  c : float;  (** per-node decap, F *)
  load_count : int;  (** number of switching-current taps *)
  load : Source.t;  (** waveform drawn by each tap *)
}

val default_spec : spec
(** [12 × 12 × 4] grid (576 nodes), 8 loads. *)

val paper_spec : spec
(** The Table II instance: [194 × 194 × 2] grid — 75 272 nodes
    (second-order NA, the paper's "75 K") and 112 908 MNA unknowns
    ("110 K") — with 64 switching loads. *)

val node_name : x:int -> y:int -> z:int -> string

val generate : spec -> Netlist.t
(** Deterministic: loads are spread over the bottom layer on a fixed
    stride. Raises [Invalid_argument] for non-positive dimensions or
    [load_count > nx·ny]. *)

val mna_unknowns : spec -> int
(** Size of the first-order MNA model (nodes + inductor branches) —
    Table II's "110 K". *)

val na_unknowns : spec -> int
(** Size of the second-order NA model (nodes) — Table II's "75 K". *)
