open Opm_signal

type element =
  | Resistor of float
  | Capacitor of float
  | Inductor of float
  | Cpe of { q : float; alpha : float }
  | Voltage_source of Source.t
  | Current_source of Source.t
  | Vccs of { gm : float; ctrl_plus : string; ctrl_minus : string }
  | Vcvs of { gain : float; ctrl_plus : string; ctrl_minus : string }

type instance = {
  name : string;
  plus : string;
  minus : string;
  element : element;
}

type t = {
  mutable rev_instances : instance list;
  names : (string, unit) Hashtbl.t;
  mutable rev_nodes : string list;
  node_indices : (string, int) Hashtbl.t;
}

let create () =
  {
    rev_instances = [];
    names = Hashtbl.create 64;
    rev_nodes = [];
    node_indices = Hashtbl.create 64;
  }

let is_ground name =
  match String.lowercase_ascii name with "0" | "gnd" -> true | _ -> false

let validate inst =
  let positive what x =
    if x <= 0.0 || not (Float.is_finite x) then
      invalid_arg
        (Printf.sprintf "Netlist.add: %s: %s must be positive (got %g)"
           inst.name what x)
  in
  let finite what x =
    if not (Float.is_finite x) then
      invalid_arg
        (Printf.sprintf "Netlist.add: %s: %s must be finite" inst.name what)
  in
  (match inst.element with
  | Resistor r -> positive "resistance" r
  | Capacitor c -> positive "capacitance" c
  | Inductor l -> positive "inductance" l
  | Cpe { q; alpha } ->
      positive "CPE coefficient" q;
      positive "CPE order" alpha
  | Vccs { gm; _ } -> finite "transconductance" gm
  | Vcvs { gain; _ } -> finite "gain" gain
  | Voltage_source _ | Current_source _ -> ());
  if is_ground inst.plus && is_ground inst.minus then
    invalid_arg
      (Printf.sprintf "Netlist.add: %s connects ground to ground" inst.name)

let add t inst =
  validate inst;
  (* SPICE designators are case-insensitive: "r1" and "R1" name the same
     element, so key the duplicate check on the folded form *)
  let key = String.lowercase_ascii inst.name in
  if Hashtbl.mem t.names key then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate designator %s" inst.name);
  Hashtbl.add t.names key ();
  let register node =
    if (not (is_ground node)) && not (Hashtbl.mem t.node_indices node) then begin
      Hashtbl.add t.node_indices node (Hashtbl.length t.node_indices);
      t.rev_nodes <- node :: t.rev_nodes
    end
  in
  register inst.plus;
  register inst.minus;
  (match inst.element with
  | Vccs { ctrl_plus; ctrl_minus; _ } | Vcvs { ctrl_plus; ctrl_minus; _ } ->
      register ctrl_plus;
      register ctrl_minus
  | Resistor _ | Capacitor _ | Inductor _ | Cpe _ | Voltage_source _
  | Current_source _ -> ());
  t.rev_instances <- inst :: t.rev_instances

let of_list insts =
  let t = create () in
  List.iter (add t) insts;
  t

let instances t = List.rev t.rev_instances

let node_names t = Array.of_list (List.rev t.rev_nodes)

let node_index t name =
  if is_ground name then None else Hashtbl.find_opt t.node_indices name

let node_count t = Hashtbl.length t.node_indices

let find t name =
  List.find_opt (fun inst -> inst.name = name) t.rev_instances

let cardinality t = List.length t.rev_instances

let r name plus minus value = { name; plus; minus; element = Resistor value }
let c name plus minus value = { name; plus; minus; element = Capacitor value }
let l name plus minus value = { name; plus; minus; element = Inductor value }

let cpe name plus minus ~q ~alpha =
  { name; plus; minus; element = Cpe { q; alpha } }

let v name plus minus src = { name; plus; minus; element = Voltage_source src }
let i name plus minus src = { name; plus; minus; element = Current_source src }

let vccs name plus minus ~ctrl:(ctrl_plus, ctrl_minus) ~gm =
  { name; plus; minus; element = Vccs { gm; ctrl_plus; ctrl_minus } }

let vcvs name plus minus ~ctrl:(ctrl_plus, ctrl_minus) ~gain =
  { name; plus; minus; element = Vcvs { gain; ctrl_plus; ctrl_minus } }

let source_to_string = function
  | Source.Dc v -> Printf.sprintf "dc %.17g" v
  | Source.Step { amplitude; delay } ->
      Printf.sprintf "step(%.17g, %.17g)" amplitude delay
  | Source.Pulse { low; high; delay; width; period } ->
      let period = if Float.is_finite period then period else 0.0 in
      Printf.sprintf "pulse(%.17g %.17g %.17g %.17g %.17g)" low high delay
        width period
  | Source.Sine { amplitude; freq_hz; phase; offset } ->
      Printf.sprintf "sin(%.17g %.17g %.17g %.17g)" offset amplitude freq_hz
        phase
  | Source.Exp_decay { amplitude; tau } ->
      Printf.sprintf "exp(%.17g %.17g)" amplitude tau
  | Source.Ramp { slope; delay } -> Printf.sprintf "ramp(%.17g %.17g)" slope delay
  | Source.Pwl points ->
      let pts =
        List.map (fun (t, v) -> Printf.sprintf "%.17g %.17g" t v) points
      in
      Printf.sprintf "pwl(%s)" (String.concat ", " pts)
  | Source.Fn _ ->
      invalid_arg "Netlist.instance_to_line: Fn sources have no syntax"

let instance_to_line inst =
  let { name; plus; minus; element } = inst in
  match element with
  | Resistor r -> Printf.sprintf "%s %s %s %.17g" name plus minus r
  | Capacitor c -> Printf.sprintf "%s %s %s %.17g" name plus minus c
  | Inductor l -> Printf.sprintf "%s %s %s %.17g" name plus minus l
  | Cpe { q; alpha } ->
      Printf.sprintf "%s %s %s q=%.17g alpha=%.17g" name plus minus q alpha
  | Voltage_source s ->
      Printf.sprintf "%s %s %s %s" name plus minus (source_to_string s)
  | Current_source s ->
      Printf.sprintf "%s %s %s %s" name plus minus (source_to_string s)
  | Vccs { gm; ctrl_plus; ctrl_minus } ->
      Printf.sprintf "%s %s %s %s %s %.17g" name plus minus ctrl_plus
        ctrl_minus gm
  | Vcvs { gain; ctrl_plus; ctrl_minus } ->
      Printf.sprintf "%s %s %s %s %s %.17g" name plus minus ctrl_plus
        ctrl_minus gain

let to_string t =
  let lines = List.map instance_to_line (instances t) in
  String.concat "\n" (lines @ [ ".end"; "" ])
