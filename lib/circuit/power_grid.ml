open Opm_signal

type spec = {
  nx : int;
  ny : int;
  nz : int;
  r : float;
  l : float;
  c : float;
  load_count : int;
  load : Source.t;
}

let default_spec =
  {
    nx = 12;
    ny = 12;
    nz = 4;
    r = 10e-3;
    l = 0.1e-12;
    c = 1e-12;
    load_count = 8;
    load =
      Source.Pulse
        { low = 0.0; high = 1e-3; delay = 20e-12; width = 50e-12; period = 100e-12 };
  }

let paper_spec =
  (* 194 × 194 × 2 → 75 272 nodes (NA, "75 K") and 75 272 + 37 636 =
     112 908 MNA unknowns ("110 K"): the Table II instance sizes *)
  { default_spec with nx = 194; ny = 194; nz = 2; load_count = 64 }

let node_name ~x ~y ~z = Printf.sprintf "n%d_%d_%d" x y z

let validate spec =
  if spec.nx <= 0 || spec.ny <= 0 || spec.nz <= 0 then
    invalid_arg "Power_grid.generate: non-positive dimension";
  if spec.load_count < 0 || spec.load_count > spec.nx * spec.ny then
    invalid_arg "Power_grid.generate: load_count out of range"

let inductor_count spec = spec.nx * spec.ny * (spec.nz - 1)

let generate spec =
  validate spec;
  let net = Netlist.create () in
  let { nx; ny; nz; r; l; c; load_count; load } = spec in
  (* in-plane wire segments are resistive; inter-layer vias inductive *)
  let res = ref 0 and ind = ref 0 in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let here = node_name ~x ~y ~z in
        Netlist.add net (Netlist.c (Printf.sprintf "C%d_%d_%d" x y z) here "0" c);
        if x + 1 < nx then begin
          incr res;
          Netlist.add net
            (Netlist.r (Printf.sprintf "R%d" !res) here (node_name ~x:(x + 1) ~y ~z) r)
        end;
        if y + 1 < ny then begin
          incr res;
          Netlist.add net
            (Netlist.r (Printf.sprintf "R%d" !res) here (node_name ~x ~y:(y + 1) ~z) r)
        end;
        if z + 1 < nz then begin
          incr ind;
          Netlist.add net
            (Netlist.l (Printf.sprintf "L%d" !ind) here (node_name ~x ~y ~z:(z + 1)) l)
        end
      done
    done
  done;
  (* switching loads spread across the bottom layer *)
  if load_count > 0 then begin
    let total = nx * ny in
    let stride = Float.max 1.0 (float_of_int total /. float_of_int load_count) in
    for k = 0 to load_count - 1 do
      let flat = int_of_float (float_of_int k *. stride) in
      let x = flat mod nx and y = flat / nx mod ny in
      Netlist.add net
        (Netlist.i (Printf.sprintf "Iload%d" k) (node_name ~x ~y ~z:0) "0" load)
    done
  end;
  net

let mna_unknowns spec =
  validate spec;
  (spec.nx * spec.ny * spec.nz) + inductor_count spec

let na_unknowns spec =
  validate spec;
  spec.nx * spec.ny * spec.nz
