open Opm_signal

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let suffix_table =
  [
    ("meg", 1e6);
    ("t", 1e12);
    ("g", 1e9);
    ("k", 1e3);
    ("m", 1e-3);
    ("u", 1e-6);
    ("n", 1e-9);
    ("p", 1e-12);
    ("f", 1e-15);
  ]

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then failwith "Parser.parse_value: empty value";
  let try_suffix (suffix, mult) =
    let ls = String.length s and lx = String.length suffix in
    if ls > lx && String.sub s (ls - lx) lx = suffix then
      let head = String.sub s 0 (ls - lx) in
      match float_of_string_opt head with
      | Some v -> Some (v *. mult)
      | None -> None
    else None
  in
  match float_of_string_opt s with
  | Some v -> v
  | None -> (
      match List.find_map try_suffix suffix_table with
      | Some v -> v
      | None -> failwith (Printf.sprintf "Parser.parse_value: cannot parse %S" s))

(* split "fn(a b, c)" into tokens, keeping parenthesised groups whole *)
let tokenize line_no s =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | '(' ->
          incr depth;
          Buffer.add_char buf ch
      | ')' ->
          decr depth;
          if !depth < 0 then fail line_no "unbalanced ')'";
          Buffer.add_char buf ch
      | ' ' | '\t' | ',' when !depth = 0 -> flush ()
      | _ -> Buffer.add_char buf ch)
    s;
  if !depth <> 0 then fail line_no "unbalanced '('";
  flush ();
  List.rev !tokens

let numbers_in line_no s =
  (* arguments inside parens, space- or comma-separated *)
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match parse_value tok with
           | v -> Some v
           | exception Failure m -> fail line_no "%s" m)

let parse_call line_no token =
  (* "name(args)" -> (name, args-numbers); bare values -> ("", [v]) *)
  match String.index_opt token '(' with
  | None -> None
  | Some i ->
      if token.[String.length token - 1] <> ')' then
        fail line_no "malformed source call %S" token;
      let name = String.lowercase_ascii (String.sub token 0 i) in
      let args = String.sub token (i + 1) (String.length token - i - 2) in
      Some (name, numbers_in line_no args)

let parse_source line_no tokens =
  match tokens with
  | [] -> fail line_no "missing source specification"
  | [ tok ] -> (
      match parse_call line_no tok with
      | None -> (
          match parse_value tok with
          | v -> Source.Dc v
          | exception Failure m -> fail line_no "%s" m)
      | Some (fn, args) -> (
          match (fn, args) with
          | "step", [ amplitude ] -> Source.Step { amplitude; delay = 0.0 }
          | "step", [ amplitude; delay ] -> Source.Step { amplitude; delay }
          | "pulse", [ low; high; delay; width; period ] ->
              let period = if period = 0.0 then Float.infinity else period in
              Source.Pulse { low; high; delay; width; period }
          | "sin", [ offset; amplitude; freq_hz ] ->
              Source.Sine { amplitude; freq_hz; phase = 0.0; offset }
          | "sin", [ offset; amplitude; freq_hz; phase ] ->
              Source.Sine { amplitude; freq_hz; phase; offset }
          | "exp", [ amplitude; tau ] -> Source.Exp_decay { amplitude; tau }
          | "ramp", [ slope ] -> Source.Ramp { slope; delay = 0.0 }
          | "ramp", [ slope; delay ] -> Source.Ramp { slope; delay }
          | "pwl", args ->
              if List.length args < 2 || List.length args mod 2 <> 0 then
                fail line_no "pwl needs an even number of arguments";
              let rec pairs = function
                | t :: v :: rest -> (t, v) :: pairs rest
                | [] -> []
                | [ _ ] -> assert false
              in
              (try Source.pwl (pairs args)
               with Invalid_argument m -> fail line_no "%s" m)
          | _ ->
              fail line_no "unknown source %s with %d argument(s)" fn
                (List.length args)))
  | "dc" :: rest -> (
      match rest with
      | [ tok ] -> (
          match parse_value tok with
          | v -> Source.Dc v
          | exception Failure m -> fail line_no "%s" m)
      | _ -> fail line_no "dc takes one value")
  | _ -> fail line_no "cannot parse source specification"

let parse_keyed line_no key tok =
  (* "q=1u" *)
  match String.split_on_char '=' tok with
  | [ k; v ] when String.lowercase_ascii k = key -> (
      match parse_value v with
      | x -> x
      | exception Failure m -> fail line_no "%s" m)
  | _ -> fail line_no "expected %s=<value>, got %S" key tok

let parse_line line_no line =
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '*' then None
  else if String.lowercase_ascii trimmed = ".end" then None
  else begin
    match tokenize line_no trimmed with
    | name :: plus :: minus :: rest -> (
        let kind = Char.lowercase_ascii name.[0] in
        let value_arg () =
          match rest with
          | [ tok ] -> (
              match parse_value tok with
              | v -> v
              | exception Failure m -> fail line_no "%s" m)
          | _ -> fail line_no "%s expects exactly one value" name
        in
        match kind with
        | 'r' -> Some (Netlist.r name plus minus (value_arg ()))
        | 'c' -> Some (Netlist.c name plus minus (value_arg ()))
        | 'l' -> Some (Netlist.l name plus minus (value_arg ()))
        | 'p' -> (
            match rest with
            | [ qtok; atok ] ->
                let q = parse_keyed line_no "q" qtok in
                let alpha = parse_keyed line_no "alpha" atok in
                Some (Netlist.cpe name plus minus ~q ~alpha)
            | _ -> fail line_no "CPE syntax: P<name> n+ n- q=<v> alpha=<v>")
        | 'v' -> Some (Netlist.v name plus minus (parse_source line_no rest))
        | 'i' -> Some (Netlist.i name plus minus (parse_source line_no rest))
        | 'g' -> (
            match rest with
            | [ cp; cm; gm ] -> (
                match parse_value gm with
                | gm -> Some (Netlist.vccs name plus minus ~ctrl:(cp, cm) ~gm)
                | exception Failure m -> fail line_no "%s" m)
            | _ -> fail line_no "VCCS syntax: G<name> n+ n- nc+ nc- <gm>")
        | 'e' -> (
            match rest with
            | [ cp; cm; gain ] -> (
                match parse_value gain with
                | gain ->
                    Some (Netlist.vcvs name plus minus ~ctrl:(cp, cm) ~gain)
                | exception Failure m -> fail line_no "%s" m)
            | _ -> fail line_no "VCVS syntax: E<name> n+ n- nc+ nc- <gain>")
        | _ -> fail line_no "unknown element type %C" name.[0])
    | _ -> fail line_no "element line needs a designator and two nodes"
  end

let parse_string text =
  let net = Netlist.create () in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         (* safety net: no bare [Failure] (e.g. from a value parser) may
            escape without its 1-based line number attached *)
         match
           try parse_line (i + 1) line
           with Failure m -> fail (i + 1) "%s" m
         with
         | Some inst -> (
             try Netlist.add net inst
             with Invalid_argument m | Failure m -> fail (i + 1) "%s" m)
         | None -> ());
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
