(** SPICE-flavoured netlist parser.

    Grammar (one element per line, case-insensitive designator prefix):

    {v
    * comment                      ; also "; comment"
    R<name> <n+> <n-> <value>
    C<name> <n+> <n-> <value>
    L<name> <n+> <n-> <value>
    P<name> <n+> <n-> q=<value> alpha=<value>      ; CPE
    V<name> <n+> <n-> <source>
    I<name> <n+> <n-> <source>
    G<name> <n+> <n-> <nc+> <nc-> <gm>             ; VCCS
    E<name> <n+> <n-> <nc+> <nc-> <gain>           ; VCVS
    .end                           ; optional terminator
    v}

    [<value>] accepts engineering suffixes
    [f p n u m k meg g t] (e.g. [1k], [2.2u], [10meg]).

    [<source>] is one of:
    - a bare value or [dc <value>] — constant;
    - [step(<amp>[, <delay>])];
    - [pulse(<low> <high> <delay> <width> <period>)]
      ([period = 0] means one-shot);
    - [sin(<offset> <amp> <freq_hz> [<phase>])];
    - [exp(<amp> <tau>)];
    - [ramp(<slope> [<delay>])];
    - [pwl(<t1> <v1> <t2> <v2> …)].

    Inside parentheses, arguments may be separated by spaces or
    commas. *)

exception Parse_error of { line : int; message : string }

val parse_value : string -> float
(** Engineering-notation number. Raises [Failure] on malformed input. *)

val parse_string : string -> Netlist.t
(** Raises {!Parse_error} with a 1-based line number on any malformed
    line — malformed values, unknown elements, and netlist-level
    rejections (duplicate designators, non-positive element values)
    are all reported this way; no bare [Failure] escapes. *)

val parse_file : string -> Netlist.t
