open Opm_signal

(** Parametric circuit generators used by the examples, tests and the
    benchmark workloads. *)

val rc_ladder :
  ?r:float -> ?c:float -> sections:int -> input:Source.t -> unit -> Netlist.t
(** Classic RC ladder: [V_in — R — n1 — R — n2 … ], each internal node
    with [C] to ground. Defaults [r = 1 kΩ], [c = 1 nF]. The input is a
    voltage source at node ["in"]. *)

val rc_two_time_scale :
  ?tau_fast:float -> ?tau_slow:float -> input:Source.t -> unit -> Netlist.t
(** Two cascaded RC stages with time constants [tau_fast ≪ tau_slow]
    (defaults 1 µs and 100 µs) — the stiff benchmark for the adaptive
    step ablation. *)

val random_rlc : ?seed:int -> nodes:int -> input:Source.t -> unit -> Netlist.t
(** Random passive RLC network for differential testing, deterministic
    in [seed] (default 0): a resistor chain over [nodes] nodes with a
    capacitor to ground at {e every} node, a load resistor, and a few
    seed-dependent extra couplings (cross resistors, inductors to
    ground). Driven by a current source into node ["n1"], so the
    stamped [E] is always invertible — the generated systems are
    accepted by {!Opm_transient.Exact_lti} — and all elements are
    positive and passive, so they are stable. Element values are
    log-uniform: R ∈ [0.5, 10] kΩ, C ∈ [0.5, 2] nF, L ∈ [0.1, 1] mH. *)

val cpe_charging :
  ?r:float -> ?q:float -> ?alpha:float -> input:Source.t -> unit -> Netlist.t
(** Supercapacitor-style charging circuit: voltage source, series
    resistor, CPE to ground (defaults [r = 1 kΩ], [q = 1 µF·s^{α−1}],
    [α = 0.5]). Its node equation is the scalar relaxation FDE whose
    exact solution is a Mittag-Leffler function. *)
