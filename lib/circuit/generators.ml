
let rc_ladder ?(r = 1e3) ?(c = 1e-9) ~sections ~input () =
  if sections <= 0 then invalid_arg "Generators.rc_ladder: sections <= 0";
  let net = Netlist.create () in
  Netlist.add net (Netlist.v "Vin" "in" "0" input);
  let node k = if k = 0 then "in" else Printf.sprintf "n%d" k in
  for k = 1 to sections do
    Netlist.add net (Netlist.r (Printf.sprintf "R%d" k) (node (k - 1)) (node k) r);
    Netlist.add net (Netlist.c (Printf.sprintf "C%d" k) (node k) "0" c)
  done;
  net

let rc_two_time_scale ?(tau_fast = 1e-6) ?(tau_slow = 1e-4) ~input () =
  let r1 = 1e3 in
  let c1 = tau_fast /. r1 in
  (* large second stage decoupled through a big resistor *)
  let r2 = 1e5 in
  let c2 = tau_slow /. r2 in
  Netlist.of_list
    [
      Netlist.v "Vin" "in" "0" input;
      Netlist.r "R1" "in" "fast" r1;
      Netlist.c "C1" "fast" "0" c1;
      Netlist.r "R2" "fast" "slow" r2;
      Netlist.c "C2" "slow" "0" c2;
    ]

let random_rlc ?(seed = 0) ~nodes ~input () =
  if nodes <= 0 then invalid_arg "Generators.random_rlc: nodes <= 0";
  let st = Random.State.make [| 0x52c1; seed |] in
  let log_uniform lo hi = lo *. ((hi /. lo) ** Random.State.float st 1.0) in
  let node k = Printf.sprintf "n%d" k in
  let net = Netlist.create () in
  (* a current-source drive keeps the MNA E matrix free of the
     algebraic constraint row a voltage source would add *)
  Netlist.add net (Netlist.i "Iin" (node 1) "0" input);
  for k = 1 to nodes do
    (* every node gets a capacitor to ground, so the node block of E is
       diagonally positive and E stays invertible (Exact_lti-safe) *)
    Netlist.add net
      (Netlist.c (Printf.sprintf "C%d" k) (node k) "0" (log_uniform 0.5e-9 2e-9));
    if k > 1 then
      Netlist.add net
        (Netlist.r
           (Printf.sprintf "R%d" k)
           (node (k - 1))
           (node k)
           (log_uniform 500.0 2000.0))
  done;
  (* load to ground bounds the DC gain *)
  Netlist.add net (Netlist.r "Rload" (node nodes) "0" (log_uniform 500.0 2000.0));
  (* random extra couplings: cross resistors, and sometimes an inductor
     to ground (kept slow so its LC resonance is well resolved, and
     damped through the resistive chain) — only positive passive
     elements, so the network is stable by construction *)
  let extras = max 1 (nodes / 2) in
  for x = 1 to extras do
    let a = 1 + Random.State.int st nodes in
    let b = 1 + Random.State.int st nodes in
    if a <> b then
      Netlist.add net
        (Netlist.r (Printf.sprintf "RX%d" x) (node a) (node b)
           (log_uniform 1e3 1e4));
    if Random.State.float st 1.0 < 0.3 then
      Netlist.add net
        (Netlist.l (Printf.sprintf "LX%d" x)
           (node (1 + Random.State.int st nodes))
           "0"
           (log_uniform 1e-4 1e-3))
  done;
  net

let cpe_charging ?(r = 1e3) ?(q = 1e-6) ?(alpha = 0.5) ~input () =
  Netlist.of_list
    [
      Netlist.v "Vin" "in" "0" input;
      Netlist.r "R1" "in" "out" r;
      Netlist.cpe "P1" "out" "0" ~q ~alpha;
    ]
