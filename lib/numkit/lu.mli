(** Dense LU factorisation with partial pivoting.

    Factors a square matrix as [P A = L U] where [P] is a row permutation,
    [L] unit lower triangular and [U] upper triangular. The factorisation
    is stored packed (L strictly below the diagonal, U on and above) plus
    the pivot permutation, so one factorisation can be reused for many
    right-hand sides — the pattern OPM's column-by-column solver relies
    on when the time step is constant. *)

type t

exception Singular of int
(** [Singular k] — a zero (or numerically negligible) pivot was met at
    elimination step [k]; the matrix is singular to working precision. *)

val factor : Mat.t -> t
(** Raises [Invalid_argument] if the matrix is not square and
    {!Singular} if it is singular. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b] for the factored [A]. *)

val solve_transpose : t -> Vec.t -> Vec.t
(** [solve_transpose lu b] solves [Aᵀ x = b] from the same factors
    ([A = P⁻¹LU ⇒ Aᵀ = UᵀLᵀP]); needed by the 1-norm condition
    estimator. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve with a matrix right-hand side (column by column). *)

val det : t -> float

val solve_dense : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val inverse : Mat.t -> Mat.t

val cond_estimate : Mat.t -> float
(** Rough condition-number estimate [‖A‖∞ · ‖A⁻¹‖∞] (forms the inverse;
    intended for diagnostics on small systems, not hot paths). *)

val inv_norm1_est :
  n:int -> solve:(Vec.t -> Vec.t) -> solve_t:(Vec.t -> Vec.t) -> float
(** Hager/Higham estimate of [‖M⁻¹‖₁] for any operator given as a pair
    of black-box solves with [M] and [Mᵀ] (at most 5 of each). Shared by
    the dense and sparse [cond_est]. *)

val cond_est : t -> float
(** Hager/Higham 1-norm condition estimate [‖A‖₁ · est(‖A⁻¹‖₁)] from
    the existing factors — a handful of triangular solves, no inverse.
    Typically within a small factor of the true [κ₁(A)] (it is a lower
    bound on [‖A⁻¹‖₁] by construction). The estimate is computed on
    first call and cached on the factor, so cached factorisations
    (e.g. {i Engine.Factor_cache} entries) carry their estimate for
    free thereafter. *)
