type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let eye n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let get a i j = a.data.((i * a.cols) + j)

let set a i j x = a.data.((i * a.cols) + j) <- x

let update a i j f =
  let k = (i * a.cols) + j in
  a.data.(k) <- f a.data.(k)

let diag_of a =
  let n = min a.rows a.cols in
  Array.init n (fun i -> get a i i)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let to_arrays a =
  Array.init a.rows (fun i -> Array.init a.cols (fun j -> get a i j))

let dims a = (a.rows, a.cols)

let copy a = { a with data = Array.copy a.data }

let transpose a = init a.cols a.rows (fun i j -> get a j i)

let row a i = Array.init a.cols (fun j -> get a i j)

let col a j = Array.init a.rows (fun i -> get a i j)

let set_col a j v =
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: bad length";
  for i = 0 to a.rows - 1 do
    set a i j v.(i)
  done

let map f a = { a with data = Array.map f a.data }

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s a = map (fun x -> s *. x) a

(* ikj loop order keeps the inner accesses contiguous in row-major data;
   shared row-range kernel for the serial and parallel products *)
let mul_rows a b c lo hi =
  for i = lo to hi - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done

let check_mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols)

let mul a b =
  check_mul a b;
  let c = zeros a.rows b.cols in
  mul_rows a b c 0 a.rows;
  c

(* Row-blocked parallel product. Each domain owns a contiguous block of
   output rows and runs the identical serial kernel over it, so the
   result is bit-identical to [mul] for any pool size. *)
let par_mul pool a b =
  check_mul a b;
  let c = zeros a.rows b.cols in
  (* below ~64k flops the handshake costs more than the product *)
  if a.rows * a.cols * b.cols < 65536 then mul_rows a b c 0 a.rows
  else
    Opm_parallel.Pool.parallel_for pool ~n:a.rows (fun i ->
        mul_rows a b c i (i + 1));
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (get a i j *. x.(j))
      done;
      !s)

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (get a i j *. xi)
      done
  done;
  y

let kron a b =
  init (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      get a (i / b.rows) (j / b.cols) *. get b (i mod b.rows) (j mod b.cols))

let rec pow a k =
  if k < 0 then invalid_arg "Mat.pow: negative exponent"
  else if a.rows <> a.cols then invalid_arg "Mat.pow: non-square"
  else if k = 0 then eye a.rows
  else if k = 1 then copy a
  else
    let half = pow a (k / 2) in
    let sq = mul half half in
    if k mod 2 = 0 then sq else mul sq a

let shift_nilpotent m = init m m (fun i j -> if j = i + 1 then 1.0 else 0.0)

let frobenius_norm a =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a.data)

let norm_inf a =
  let best = ref 0.0 in
  for i = 0 to a.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to a.cols - 1 do
      s := !s +. Float.abs (get a i j)
    done;
    best := Float.max !best !s
  done;
  !best

let max_abs_diff a b =
  check_same "max_abs_diff" a b;
  let m = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    m := Float.max !m (Float.abs (a.data.(k) -. b.data.(k)))
  done;
  !m

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol

let is_upper_triangular ?(tol = 0.0) a =
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = 0 to min (i - 1) (a.cols - 1) do
      if Float.abs (get a i j) > tol then ok := false
    done
  done;
  !ok

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%10.4g" (get a i j)
    done;
    Format.fprintf ppf "@]";
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
