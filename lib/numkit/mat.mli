(** Dense row-major matrices of floats.

    The representation is a record carrying the dimensions and a flat
    [float array] in row-major order. Mutating accessors are provided for
    the hot loops of the factorisations; every algebraic operation
    ([add], [mul], …) allocates a fresh matrix. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> float -> t

val zeros : int -> int -> t

val eye : int -> t
(** Identity matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val diag_of : t -> Vec.t
(** Diagonal of a matrix (length [min rows cols]). *)

val of_arrays : float array array -> t
(** Rows given as arrays; all rows must have equal length. *)

val to_arrays : t -> float array array

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit

val dims : t -> int * int

val copy : t -> t

val transpose : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val set_col : t -> int -> Vec.t -> unit

val map : (float -> float) -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on inner-dimension
    mismatch. *)

val par_mul : Opm_parallel.Pool.t -> t -> t -> t
(** Row-blocked parallel matrix product: bit-identical to {!mul} for
    any pool size (each output row is computed by the same serial
    kernel). Falls back to the serial product below ~64k flops. *)

val mul_vec : t -> Vec.t -> Vec.t

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x] is [transpose a * x] without forming the transpose. *)

val kron : t -> t -> t
(** Kronecker product [a ⊗ b]. *)

val pow : t -> int -> t
(** Non-negative integer matrix power by repeated squaring. *)

val shift_nilpotent : int -> t
(** [shift_nilpotent m] is the index-[m] nilpotent matrix [Q_m] of the
    paper's eq. (6): ones on the first superdiagonal, zero elsewhere. *)

val frobenius_norm : t -> float

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val max_abs_diff : t -> t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val is_upper_triangular : ?tol:float -> t -> bool

val pp : Format.formatter -> t -> unit
