(** Discrete Fourier transforms.

    Radix-2 Cooley–Tukey for power-of-two lengths and Bluestein's chirp-z
    algorithm for arbitrary lengths (Table I's "FFT-2" uses 100 frequency
    samples, which is not a power of two). Conventions:
    forward [X_k = Σ_n x_n e^{-2πi kn/N}], inverse divides by [N]. *)

val is_power_of_two : int -> bool

val fft : Complex.t array -> Complex.t array
(** Forward DFT of any length ([length >= 1]). Power-of-two inputs take
    the radix-2 path; others go through Bluestein. *)

val ifft : Complex.t array -> Complex.t array
(** Inverse DFT (normalised by [1/N]). *)

val dft_naive : Complex.t array -> Complex.t array
(** O(N²) reference implementation, used by the tests as the oracle. *)

val fft_real : float array -> Complex.t array
(** Forward DFT of a real signal. *)

val frequencies : int -> float -> float array
(** [frequencies n dt] are the angular frequencies [ω_k] (rad/s) matching
    the DFT bin layout for [n] samples spaced [dt] apart: bins
    [0 … n/2] map to [2πk/(n·dt)] and the upper bins to the negative
    frequencies [2π(k−n)/(n·dt)]. *)

val next_power_of_two : int -> int
(** Smallest power of two [>= max 1 n]. *)

val conv_real : float array -> float array -> float array
(** [conv_real a b] is the full linear convolution of two real signals,
    [c.(d) = Σ_j a.(j)·b.(d−j)], length [|a| + |b| − 1] (or [[||]] when
    either input is empty). Computed via power-of-two–padded split-format
    FFTs: O((|a|+|b|) log (|a|+|b|)). *)

val conv_real_many : float array array -> float array -> float array array
(** [conv_real_many xs kernel] convolves each row of [xs] (all rows the
    same length) with the shared real [kernel], amortising the kernel
    transform and packing row pairs into single complex transforms.
    Row [r] of the result is [conv_real xs.(r) kernel]. *)

(** Blocked online ("relaxed") convolution for causal history sums.

    Computes [y(i) = Σ_{l≥1} k(l)·x(i−l)] online, where column [x(i)]
    only becomes known {e after} [y(i)] has been consumed (the OPM solver
    uses the history term to produce the next column). Lags below [base]
    are summed naively at query time; lags in [[B, 2B)] for each dyadic
    block size [B = base·2^ℓ] are batch-convolved by FFT whenever the
    push count reaches a multiple of [B], into a per-column accumulator.
    Work is O(m log² m) per row per kernel over the whole horizon.

    FFT reassociates the summation, so results match the naive sum to
    roundoff (≤ 1e-10 relative in practice), not bit-identically. *)
module Blocked_conv : sig
  type t

  val create :
    ?base:int -> kernels:float array array -> rows:int -> m:int -> unit -> t
  (** [create ~kernels ~rows ~m ()] prepares a convolver for [rows]
      state rows over an [m]-column horizon. [kernels.(k).(l)] is the
      lag-[l] coefficient of term [k] (lag 0 is never consumed — history
      is strictly causal). [base] (default 32) is the naive-tail width
      and the smallest FFT block size; it must be a power of two ≥ 2.
      Kernel spectra for every dyadic level are precomputed here. *)

  val push : t -> float array -> unit
  (** Append the next column (length [rows]); raises [Invalid_argument]
      past the horizon. Triggers block convolutions at multiples of the
      block sizes (row pairs share one forward/inverse transform; the
      row-pair loop is dispatched over [Opm_parallel.Pool] above a flop
      threshold, and flushes run under a ["rhs_conv"] trace span). *)

  val history : t -> term:int -> int -> float array
  (** [history t ~term i] is the length-[rows] vector
      [Σ_{1 ≤ l ≤ i} kernels.(term).(l)·x(i−l)] — the accumulated block
      contributions plus the short naive tail. Requires [i <= pushed t];
      typically called at [i = pushed t], just before solving column
      [i]. *)

  val pushed : t -> int
  (** Columns pushed so far. *)

  val blocks : t -> int
  (** FFT block convolutions performed so far (observability). *)

  val rows : t -> int
  (** State dimension the convolver was created for. *)

  val horizon : t -> int
  (** Column horizon [m] the convolver was created for. *)

  val nterms : t -> int
  (** Number of kernels (terms). *)

  val reset : t -> unit
  (** Rewind to the pushed-nothing state so the convolver can serve
      another query over the same kernels: clears the column store, the
      accumulators and the [blocks] count, but keeps the precomputed
      kernel spectra — the expensive part of {!create}. The kernels
      themselves are shared, not copied, so they must not change
      between queries. *)
end
