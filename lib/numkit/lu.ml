module Metrics = Opm_obs.Metrics

(* observability instruments (no-ops unless metrics are enabled) *)
let m_factor = Metrics.counter "lu.factor"
let m_solve = Metrics.counter "lu.solve"
let h_factor_seconds = Metrics.histogram "lu.factor_seconds"
let g_cond_est = Metrics.gauge "lu.cond_est"

type t = {
  lu : Mat.t;
  piv : int array;
  sign : float;
  norm1 : float;  (* ‖A‖₁ of the factored matrix, for cond_est *)
  mutable cond1 : float option;  (* cached Hager estimate *)
}

exception Singular of int

let mat_norm1 a =
  let n, m = Mat.dims a in
  let d = a.Mat.data in
  let best = ref 0.0 in
  for j = 0 to m - 1 do
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. Float.abs (Array.unsafe_get d ((i * m) + j))
    done;
    if !s > !best then best := !s
  done;
  !best

(* The elimination below works on the flat row-major [data] array with
   hoisted row offsets and unchecked accesses: the O(n³) inner loop is
   this library's hottest path (the spectral collocation operator is a
   dense nm × nm pencil), and going through [Mat.get]/[Mat.set] costs
   an un-inlined call plus two bounds checks per flop. The operation
   order is exactly the classical k-outer scan, so results are
   bit-identical to the accessor-based version this replaces. *)
let factor a =
  Metrics.incr m_factor;
  Metrics.time h_factor_seconds @@ fun () ->
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.factor: non-square matrix";
  let norm1 = mat_norm1 a in
  let lu = Mat.copy a in
  let d = lu.Mat.data in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let rk = k * n in
    (* partial pivoting: pick the largest magnitude in column k below row k *)
    let p = ref k in
    let best = ref (Float.abs (Array.unsafe_get d (rk + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Array.unsafe_get d ((i * n) + k)) in
      if v > !best then begin
        p := i;
        best := v
      end
    done;
    if !p <> k then begin
      let rp = !p * n in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get d (rk + j) in
        Array.unsafe_set d (rk + j) (Array.unsafe_get d (rp + j));
        Array.unsafe_set d (rp + j) tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tmp;
      sign := -. !sign
    end;
    let pivot = Array.unsafe_get d (rk + k) in
    if Float.abs pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let ri = i * n in
      let f = Array.unsafe_get d (ri + k) /. pivot in
      Array.unsafe_set d (ri + k) f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          Array.unsafe_set d (ri + j)
            (Array.unsafe_get d (ri + j)
            -. (f *. Array.unsafe_get d (rk + j)))
        done
    done
  done;
  { lu; piv; sign = !sign; norm1; cond1 = None }

let solve { lu; piv; _ } b =
  Metrics.incr m_solve;
  let n, _ = Mat.dims lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let d = lu.Mat.data in
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* forward substitution with unit lower triangle *)
  for i = 1 to n - 1 do
    let ri = i * n in
    let s = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get d (ri + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !s
  done;
  (* back substitution with upper triangle *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let s = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get d (ri + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!s /. Array.unsafe_get d (ri + i))
  done;
  x

let solve_transpose { lu; piv; _ } b =
  let n, _ = Mat.dims lu in
  if Array.length b <> n then
    invalid_arg "Lu.solve_transpose: dimension mismatch";
  let d = lu.Mat.data in
  (* A = P⁻¹LU, so Aᵀ x = b is Uᵀ z = b, Lᵀ w = z, x(piv(i)) = w(i) *)
  let z = Array.copy b in
  for i = 0 to n - 1 do
    let s = ref (Array.unsafe_get z i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get d ((j * n) + i) *. Array.unsafe_get z j)
    done;
    Array.unsafe_set z i (!s /. Array.unsafe_get d ((i * n) + i))
  done;
  for i = n - 1 downto 0 do
    let s = ref (Array.unsafe_get z i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get d ((j * n) + i) *. Array.unsafe_get z j)
    done;
    Array.unsafe_set z i !s
  done;
  let x = Array.make n 0.0 in
  Array.iteri (fun i p -> x.(p) <- z.(i)) piv;
  x

let solve_mat lu b =
  let n, _ = Mat.dims lu.lu in
  let _, cols = Mat.dims b in
  let x = Mat.zeros n cols in
  for j = 0 to cols - 1 do
    Mat.set_col x j (solve lu (Mat.col b j))
  done;
  x

let det { lu; sign; _ } =
  let n, _ = Mat.dims lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let solve_dense a b = solve (factor a) b

let inverse a =
  let n, _ = Mat.dims a in
  solve_mat (factor a) (Mat.eye n)

let cond_estimate a = Mat.norm_inf a *. Mat.norm_inf (inverse a)

(* Hager/Higham power iteration on ‖A⁻¹‖₁ using one solve with A and one
   with Aᵀ per step (Higham, "FORTRAN codes for estimating the matrix
   one-norm", Algorithm 2.4 without the extra-vector safeguard). *)
let inv_norm1_est ~n ~solve ~solve_t =
  if n = 0 then 0.0
  else begin
    let norm1 v = Array.fold_left (fun a x -> a +. Float.abs x) 0.0 v in
    let x = ref (Array.make n (1.0 /. float_of_int n)) in
    let est = ref 0.0 in
    let finished = ref false in
    let iter = ref 0 in
    while (not !finished) && !iter < 5 do
      incr iter;
      let y = solve !x in
      let e = norm1 y in
      if not (Float.is_finite e) then begin
        est := Float.infinity;
        finished := true
      end
      else begin
        if e > !est then est := e;
        let xi = Array.map (fun v -> if v >= 0.0 then 1.0 else -1.0) y in
        let z = solve_t xi in
        let j = ref 0 in
        for i = 1 to n - 1 do
          if Float.abs z.(i) > Float.abs z.(!j) then j := i
        done;
        let zx = ref 0.0 in
        for i = 0 to n - 1 do
          zx := !zx +. (z.(i) *. !x.(i))
        done;
        if Float.abs z.(!j) <= !zx then finished := true
        else begin
          let ej = Array.make n 0.0 in
          ej.(!j) <- 1.0;
          x := ej
        end
      end
    done;
    !est
  end

let cond_est f =
  match f.cond1 with
  | Some c -> c
  | None ->
      let n, _ = Mat.dims f.lu in
      let inv =
        inv_norm1_est ~n ~solve:(solve f) ~solve_t:(solve_transpose f)
      in
      let c = f.norm1 *. inv in
      f.cond1 <- Some c;
      Metrics.set_gauge g_cond_est c;
      c
