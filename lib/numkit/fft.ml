let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* iterative radix-2 Cooley–Tukey with bit-reversal permutation;
   sign = -1 for the forward transform, +1 for the inverse (unnormalised) *)
let radix2 sign x =
  let n = Array.length x in
  let y = Array.copy x in
  (* bit-reversal permutation *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = y.(i) in
      y.(i) <- y.(!j);
      y.(!j) <- tmp
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wlen = { Complex.re = cos ang; im = sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to (!len / 2) - 1 do
        let u = y.(!i + k) in
        let v = Complex.mul y.(!i + k + (!len / 2)) !w in
        y.(!i + k) <- Complex.add u v;
        y.(!i + k + (!len / 2)) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done;
  y

let dft_naive x =
  let n = Array.length x in
  Array.init n (fun k ->
      let s = ref Complex.zero in
      for j = 0 to n - 1 do
        let ang = -2.0 *. Float.pi *. float_of_int (k * j mod n) /. float_of_int n in
        s := Complex.add !s (Complex.mul x.(j) { Complex.re = cos ang; im = sin ang })
      done;
      !s)

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Bluestein's algorithm: a DFT of arbitrary length N as a circular
   convolution of length >= 2N-1, performed with the radix-2 FFT *)
let bluestein x =
  let n = Array.length x in
  let m = next_power_of_two ((2 * n) - 1) in
  let chirp k =
    (* e^{-i π k² / N}; reduce k² mod 2N to avoid precision loss *)
    let k2 = k * k mod (2 * n) in
    let ang = -.Float.pi *. float_of_int k2 /. float_of_int n in
    { Complex.re = cos ang; im = sin ang }
  in
  let a = Array.make m Complex.zero in
  for k = 0 to n - 1 do
    a.(k) <- Complex.mul x.(k) (chirp k)
  done;
  let b = Array.make m Complex.zero in
  b.(0) <- Complex.conj (chirp 0);
  for k = 1 to n - 1 do
    let c = Complex.conj (chirp k) in
    b.(k) <- c;
    b.(m - k) <- c
  done;
  let fa = radix2 (-1.0) a and fb = radix2 (-1.0) b in
  let prod = Array.init m (fun i -> Complex.mul fa.(i) fb.(i)) in
  let conv = radix2 1.0 prod in
  let scale = 1.0 /. float_of_int m in
  Array.init n (fun k ->
      Complex.mul (chirp k)
        { Complex.re = conv.(k).Complex.re *. scale; im = conv.(k).Complex.im *. scale })

let fft x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Fft.fft: empty input";
  if n = 1 then Array.copy x
  else if is_power_of_two n then radix2 (-1.0) x
  else bluestein x

let ifft x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Fft.ifft: empty input";
  let conj = Array.map Complex.conj x in
  let y = fft conj in
  let scale = 1.0 /. float_of_int n in
  Array.map (fun c -> { Complex.re = c.Complex.re *. scale; im = -.c.Complex.im *. scale }) y

let fft_real x = fft (Array.map (fun re -> { Complex.re; im = 0.0 }) x)

(* ------------------------------------------------------------------ *)
(* Split-format real convolution kernels.

   The Complex-based entry points above serve the spectrum /
   frequency-domain callers; the convolution engine below runs inside
   the per-column solver hot path, where an array of boxed Complex.t
   records costs an allocation per butterfly. These kernels work in
   place on separate re/im float arrays (flat, unboxed) instead. *)

let radix2_split sign re im =
  let n = Array.length re in
  (* bit-reversal permutation *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- t;
      let t = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len lsr 1 in
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = !i to !i + half - 1 do
        let ur = re.(k) and ui = im.(k) in
        let xr = re.(k + half) and xi = im.(k + half) in
        let vr = (xr *. !cr) -. (xi *. !ci) in
        let vi = (xr *. !ci) +. (xi *. !cr) in
        re.(k) <- ur +. vr;
        im.(k) <- ui +. vi;
        re.(k + half) <- ur -. vr;
        im.(k + half) <- ui -. vi;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done

let log2i n =
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* DFT of a real kernel zero-padded to [size] (power of two), split
   format *)
let kernel_spectrum kernel size =
  let kr = Array.make size 0.0 and ki = Array.make size 0.0 in
  Array.blit kernel 0 kr 0 (min (Array.length kernel) size);
  radix2_split (-1.0) kr ki;
  (kr, ki)

let conv_real_many xs kernel =
  let rows = Array.length xs in
  if rows = 0 then [||]
  else begin
    let lx = Array.length xs.(0) in
    Array.iter
      (fun x ->
        if Array.length x <> lx then
          invalid_arg "Fft.conv_real_many: ragged input rows")
      xs;
    let lk = Array.length kernel in
    if lx = 0 || lk = 0 then Array.make rows [||]
    else begin
      let n = lx + lk - 1 in
      let size = next_power_of_two n in
      let kr, ki = kernel_spectrum kernel size in
      let out = Array.make rows [||] in
      let scale = 1.0 /. float_of_int size in
      (* two rows per transform: for a real kernel,
         (a + ib) ⊛ k = (a ⊛ k) + i·(b ⊛ k), so the re channel carries
         row 2p and the im channel row 2p+1 through one forward and one
         inverse FFT *)
      for p = 0 to ((rows + 1) / 2) - 1 do
        let r0 = 2 * p in
        let r1 = r0 + 1 in
        let zr = Array.make size 0.0 and zi = Array.make size 0.0 in
        Array.blit xs.(r0) 0 zr 0 lx;
        if r1 < rows then Array.blit xs.(r1) 0 zi 0 lx;
        radix2_split (-1.0) zr zi;
        for t = 0 to size - 1 do
          let vr = (zr.(t) *. kr.(t)) -. (zi.(t) *. ki.(t)) in
          let vi = (zr.(t) *. ki.(t)) +. (zi.(t) *. kr.(t)) in
          zr.(t) <- vr;
          zi.(t) <- vi
        done;
        radix2_split 1.0 zr zi;
        out.(r0) <- Array.init n (fun t -> zr.(t) *. scale);
        if r1 < rows then out.(r1) <- Array.init n (fun t -> zi.(t) *. scale)
      done;
      out
    end
  end

let conv_real a b =
  if Array.length a = 0 || Array.length b = 0 then [||]
  else (conv_real_many [| a |] b).(0)

(* ------------------------------------------------------------------ *)
(* Blocked online ("relaxed") convolution.

   Computes the causal history sums y(i) = Σ_{l≥1} k(l)·x(i−l) online:
   x(i) becomes known only after y(i) has been consumed (the solver
   uses y(i) to *produce* x(i)). Lags are partitioned dyadically:

   - lags 1 … base−1 are summed naively from the stored columns at
     query time (the "in-block naive tail");
   - lags in [B, 2B) for each block size B = base·2^ℓ are handled in
     batch: every time the push count reaches a multiple of B, the
     just-finished block x[p−B, p) is convolved with the kernel's lag
     slice k[B, 2B) by FFT and scattered into an accumulator over the
     target columns [p, p+2B−1).

   A lag-l pair (j, i = j+l) with l ≥ base belongs to exactly one level
   (2^⌊log2 l⌋ rounded into the ladder), and its block at that level
   completes at p = (⌊j/B⌋+1)·B ≤ j + B ≤ j + l = i — i.e. before
   column i is queried — so the accumulator is always complete at
   consumption time. Total work is O(m log² m) per row instead of the
   naive O(m²). Blocks that never complete inside the horizon would
   only have targeted columns ≥ m, so they are simply never flushed. *)

module Blocked_conv = struct
  type t = {
    base : int;  (** naive-tail width; power of two *)
    m : int;  (** horizon (column count) *)
    rows : int;  (** state dimension *)
    kernels : float array array;  (** per-term lag coefficients; index = lag *)
    khat : (float array * float array) option array array;
        (** [khat.(lvl).(k)]: split DFT (length 2B) of kernel [k]'s lag
            slice [[B, min(2B, lags))]; [None] when the slice is empty *)
    nlevels : int;
    cols : float array array;  (** rows × m pushed values *)
    acc : float array array array;  (** term × row × column contributions *)
    mutable pushed : int;
    mutable blocks : int;  (** FFT block convolutions performed (obs) *)
  }

  let default_base = 32

  let create ?(base = default_base) ~kernels ~rows ~m () =
    if base < 2 || not (is_power_of_two base) then
      invalid_arg "Fft.Blocked_conv.create: base must be a power of two >= 2";
    if rows < 1 then invalid_arg "Fft.Blocked_conv.create: rows < 1";
    if m < 1 then invalid_arg "Fft.Blocked_conv.create: m < 1";
    let nterms = Array.length kernels in
    if nterms = 0 then invalid_arg "Fft.Blocked_conv.create: no kernels";
    let nlevels =
      let rec go l = if base lsl l < m then go (l + 1) else l in
      go 0
    in
    let khat =
      Array.init nlevels (fun lvl ->
          let b = base lsl lvl in
          Array.map
            (fun kernel ->
              let hi = min (2 * b) (Array.length kernel) in
              if hi <= b then None
              else begin
                let kr = Array.make (2 * b) 0.0 in
                let ki = Array.make (2 * b) 0.0 in
                Array.blit kernel b kr 0 (hi - b);
                radix2_split (-1.0) kr ki;
                Some (kr, ki)
              end)
            kernels)
    in
    {
      base;
      m;
      rows;
      kernels;
      khat;
      nlevels;
      cols = Array.make_matrix rows m 0.0;
      acc = Array.init nterms (fun _ -> Array.make_matrix rows m 0.0);
      pushed = 0;
      blocks = 0;
    }

  let pushed t = t.pushed

  let blocks t = t.blocks

  let rows t = t.rows

  let horizon t = t.m

  let nterms t = Array.length t.kernels

  (* Rewind for the next query: zero the pushed columns and the
     accumulators, keep the kernel spectra (the expensive part of
     [create]). Only the first [pushed] columns of [cols] ever held
     data, but [acc] receives scattered future-column contributions
     from flushed blocks, so it is cleared in full. *)
  let reset t =
    let p = t.pushed in
    for r = 0 to t.rows - 1 do
      Array.fill t.cols.(r) 0 p 0.0
    done;
    Array.iter (fun term -> Array.iter (fun row -> Array.fill row 0 t.m 0.0) term) t.acc;
    t.pushed <- 0;
    t.blocks <- 0

  (* one finished block at level [lvl] ending at column [p] *)
  let flush_block t lvl p =
    let b = t.base lsl lvl in
    let b2 = 2 * b in
    let nterms = Array.length t.kernels in
    let scale = 1.0 /. float_of_int b2 in
    (* target columns p+d, d ∈ [0, 2B−1) ∩ [0, m−p) *)
    let hi = min (b2 - 1) (t.m - p) in
    if hi > 0 && Array.exists Option.is_some t.khat.(lvl) then begin
      let pair pr =
        let r0 = 2 * pr in
        let r1 = r0 + 1 in
        let zr = Array.make b2 0.0 and zi = Array.make b2 0.0 in
        Array.blit t.cols.(r0) (p - b) zr 0 b;
        if r1 < t.rows then Array.blit t.cols.(r1) (p - b) zi 0 b;
        radix2_split (-1.0) zr zi;
        for k = 0 to nterms - 1 do
          match t.khat.(lvl).(k) with
          | None -> ()
          | Some (kr, ki) ->
              let wr = Array.make b2 0.0 and wi = Array.make b2 0.0 in
              for u = 0 to b2 - 1 do
                wr.(u) <- (zr.(u) *. kr.(u)) -. (zi.(u) *. ki.(u));
                wi.(u) <- (zr.(u) *. ki.(u)) +. (zi.(u) *. kr.(u))
              done;
              radix2_split 1.0 wr wi;
              let a0 = t.acc.(k).(r0) in
              for d = 0 to hi - 1 do
                a0.(p + d) <- a0.(p + d) +. (wr.(d) *. scale)
              done;
              if r1 < t.rows then begin
                let a1 = t.acc.(k).(r1) in
                for d = 0 to hi - 1 do
                  a1.(p + d) <- a1.(p + d) +. (wi.(d) *. scale)
                done
              end
        done
      in
      let npairs = (t.rows + 1) / 2 in
      (* each row pair writes only its own acc rows, so the dispatch is
         deterministic; below ~64k flops the pool handshake costs more
         than the transforms *)
      let flops = npairs * (nterms + 1) * b2 * (log2i b2 + 1) * 5 in
      if npairs > 1 && flops >= 65536 then
        Opm_parallel.Pool.parallel_for
          (Opm_parallel.Pool.global ())
          ~n:npairs pair
      else
        for pr = 0 to npairs - 1 do
          pair pr
        done;
      t.blocks <- t.blocks + 1
    end

  let push t x =
    if t.pushed >= t.m then
      invalid_arg "Fft.Blocked_conv.push: horizon exceeded";
    if Array.length x <> t.rows then
      invalid_arg "Fft.Blocked_conv.push: row-count mismatch";
    let p0 = t.pushed in
    for r = 0 to t.rows - 1 do
      t.cols.(r).(p0) <- x.(r)
    done;
    t.pushed <- p0 + 1;
    let p = p0 + 1 in
    if p < t.m && p mod t.base = 0 then
      Opm_obs.Trace.with_span "rhs_conv" @@ fun () ->
      for lvl = 0 to t.nlevels - 1 do
        if p mod (t.base lsl lvl) = 0 then flush_block t lvl p
      done

  let history t ~term i =
    if i > t.pushed then
      invalid_arg "Fft.Blocked_conv.history: column not pushed yet";
    let kernel = t.kernels.(term) in
    let lmax = min (min (t.base - 1) i) (Array.length kernel - 1) in
    let acc = t.acc.(term) in
    Array.init t.rows (fun r ->
        let row = t.cols.(r) in
        let s = ref (if i < t.m then acc.(r).(i) else 0.0) in
        for l = 1 to lmax do
          s := !s +. (kernel.(l) *. row.(i - l))
        done;
        !s)
end

let frequencies n dt =
  let base = 2.0 *. Float.pi /. (float_of_int n *. dt) in
  Array.init n (fun k ->
      if 2 * k <= n then base *. float_of_int k
      else base *. float_of_int (k - n))
