open Opm_signal
open Opm_core

(** Frequency-domain (FFT) solver for fractional descriptor systems —
    the comparison method of the paper's Table I ("FFT-1" with 8
    samples, "FFT-2" with 100).

    Implemented as the damped-contour numerical Laplace inversion of
    the paper's references (Bellman, Davies–Martin, Gómez–Uribe): the
    input is multiplied by [e^{−σt}] and sampled on [[0, T)],
    transformed with the FFT, the transfer relation
    [(s^α E − A) X(s) = B U(s)] is solved with a complex LU on the
    contour [s = σ + jω_k], and the inverse FFT plus [e^{+σt}]
    recovers the response. The damping suppresses the DFT's periodic
    wrap-around (the raw [σ = 0] variant diverges on step inputs); the
    method still — as the paper stresses — pays for complex
    arithmetic, and its accuracy is controlled only indirectly by the
    sample count. *)

val solve :
  ?pool:Opm_parallel.Pool.t ->
  ?damping:float ->
  n_samples:int ->
  alpha:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Output waveform at the [n_samples] sample instants [t_k = k·T/N].
    [damping] is the contour abscissa [σ] (default [3/T]; [0] recovers
    the textbook pure-FFT method). The independent per-bin contour
    solves run on [pool] (default: the shared
    {!Opm_parallel.Pool.global} pool) with bit-identical results.
    Raises [Invalid_argument] for [n_samples < 2], negative damping, or
    a source-count mismatch. *)
