open Opm_numkit
open Opm_sparse
open Opm_signal
open Opm_core
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

(* observability instruments (no-ops unless metrics are enabled) *)
let m_steps = Metrics.counter "grunwald.steps"

let weights ~alpha k =
  let w = Array.make (k + 1) 1.0 in
  for j = 1 to k do
    w.(j) <- w.(j - 1) *. (1.0 -. ((alpha +. 1.0) /. float_of_int j))
  done;
  w

let solve ?memory_length ~h ~alpha ~t_end (sys : Descriptor.t) sources =
  Trace.with_span "grunwald.solve" @@ fun () ->
  if h <= 0.0 || t_end <= 0.0 then invalid_arg "Grunwald.solve: bad arguments";
  if Array.length sources <> Descriptor.input_count sys then
    invalid_arg "Grunwald.solve: source count mismatch";
  (match memory_length with
  | Some l when l < 1 -> invalid_arg "Grunwald.solve: memory_length < 1"
  | Some _ | None -> ());
  let n = Descriptor.order sys in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  Metrics.incr ~by:steps m_steps;
  let w = weights ~alpha steps in
  let ha = h ** -.alpha in
  let e = sys.Descriptor.e and a = sys.Descriptor.a in
  let lhs = Csr.add ~alpha:ha ~beta:(-1.0) e a in
  let f = Slu.factor lhs in
  (* −h^{−α}·E is loop-invariant: build it once instead of re-scaling
     the CSR matrix at every time step *)
  let neg_ha_e = Csr.scale (-.ha) e in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. h) in
  let xs = Array.make (steps + 1) (Vec.zeros n) in
  for k = 1 to steps do
    let hist = Vec.zeros n in
    let depth = match memory_length with Some l -> min l k | None -> k in
    for j = 1 to depth do
      Vec.axpy w.(j) xs.(k - j) hist
    done;
    let rhs = Csr.mul_vec neg_ha_e hist in
    let u = Array.map (fun src -> Source.eval src times.(k)) sources in
    Vec.axpy 1.0 (Mat.mul_vec sys.Descriptor.b u) rhs;
    xs.(k) <- Slu.solve f rhs
  done;
  let q = Descriptor.output_count sys in
  let channels =
    Array.init q (fun i ->
        Array.map (fun x -> Vec.dot (Mat.row sys.Descriptor.c i) x) xs)
  in
  Waveform.make ~labels:sys.Descriptor.output_names times channels
