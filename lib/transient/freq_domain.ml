open Opm_numkit
open Opm_sparse
open Opm_signal
open Opm_core

(* principal branch of s^α *)
let cpow s alpha =
  if s = Complex.zero then if alpha = 0.0 then Complex.one else Complex.zero
  else Complex.exp (Complex.mul { Complex.re = alpha; im = 0.0 } (Complex.log s))

let solve ?pool ?damping ~n_samples ~alpha ~t_end (sys : Descriptor.t) sources =
  if n_samples < 2 then invalid_arg "Freq_domain.solve: n_samples < 2";
  if t_end <= 0.0 then invalid_arg "Freq_domain.solve: t_end <= 0";
  let p = Descriptor.input_count sys in
  if Array.length sources <> p then
    invalid_arg "Freq_domain.solve: source count mismatch";
  let sigma =
    match damping with
    | Some s ->
        if s < 0.0 then invalid_arg "Freq_domain.solve: damping < 0";
        s
    | None -> 3.0 /. t_end
  in
  let n = Descriptor.order sys in
  let q = Descriptor.output_count sys in
  let dt = t_end /. float_of_int n_samples in
  let times = Array.init n_samples (fun k -> float_of_int k *. dt) in
  (* damped input samples: u(t)·e^{−σt}, one FFT per input channel *)
  let spectra =
    Array.map
      (fun src ->
        Fft.fft_real
          (Array.map (fun t -> Source.eval src t *. exp (-.sigma *. t)) times))
      sources
  in
  let omegas = Fft.frequencies n_samples dt in
  let e = Cmat.of_real (Csr.to_dense sys.Descriptor.e) in
  let a = Cmat.of_real (Csr.to_dense sys.Descriptor.a) in
  let b = sys.Descriptor.b and c = sys.Descriptor.c in
  let pool =
    match pool with Some p -> p | None -> Opm_parallel.Pool.global ()
  in
  (* response spectrum on the line s = σ + jω; each frequency bin is an
     independent factor-and-solve writing only column k, so the bins fan
     out over the domain pool with bit-identical results *)
  let x_spec = Array.init n (fun _ -> Array.make n_samples Complex.zero) in
  Opm_parallel.Pool.parallel_for pool ~n:n_samples (fun k ->
      let s = { Complex.re = sigma; im = omegas.(k) } in
      let lhs = Cmat.sub (Cmat.scale (cpow s alpha) e) a in
      let rhs =
        Array.init n (fun r ->
            let acc = ref Complex.zero in
            for j = 0 to p - 1 do
              acc :=
                Complex.add !acc
                  (Complex.mul
                     { Complex.re = Mat.get b r j; im = 0.0 }
                     spectra.(j).(k))
            done;
            !acc)
      in
      let xk =
        try Cmat.solve lhs rhs with
        | Cmat.Singular _ ->
            (* singular pencil exactly on the contour: skip the bin *)
            Array.make n Complex.zero
      in
      for r = 0 to n - 1 do
        x_spec.(r).(k) <- xk.(r)
      done);
  (* back to time domain; undo the damping (one IFFT per state row) *)
  let x_time = Opm_parallel.Pool.map pool Fft.ifft x_spec in
  let channels =
    Array.init q (fun i ->
        Array.init n_samples (fun k ->
            let acc = ref 0.0 in
            for r = 0 to n - 1 do
              acc := !acc +. (Mat.get c i r *. x_time.(r).(k).Complex.re)
            done;
            !acc *. exp (sigma *. times.(k))))
  in
  Waveform.make ~labels:sys.Descriptor.output_names times channels
