open Opm_numkit
open Opm_sparse
open Opm_signal
open Opm_core
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

(* observability instruments (no-ops unless metrics are enabled) *)
let m_steps = Metrics.counter "stepper.steps"

type scheme = Backward_euler | Trapezoidal | Gear2

let scheme_name = function
  | Backward_euler -> "backward-Euler"
  | Trapezoidal -> "trapezoidal"
  | Gear2 -> "Gear (BDF2)"

let check_args ~h ~t_end (sys : Descriptor.t) sources =
  if h <= 0.0 then invalid_arg "Stepper.solve: h <= 0";
  if t_end <= 0.0 then invalid_arg "Stepper.solve: t_end <= 0";
  if Array.length sources <> Descriptor.input_count sys then
    invalid_arg "Stepper.solve: source count mismatch"

let eval_inputs sources t = Array.map (fun src -> Source.eval src t) sources

(* advance with x(0) = 0; returns (times, states as columns) *)
let run ~scheme ~h ~t_end (sys : Descriptor.t) sources =
  Trace.with_span "stepper.run" @@ fun () ->
  let n = Descriptor.order sys in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  Metrics.incr ~by:steps m_steps;
  let e = sys.Descriptor.e and a = sys.Descriptor.a in
  let b = sys.Descriptor.b in
  let bu t = Mat.mul_vec b (eval_inputs sources t) in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. h) in
  let xs = Array.make (steps + 1) (Vec.zeros n) in
  (match scheme with
  | Backward_euler ->
      (* (E/h − A) x_k = (E/h) x_{k−1} + B u_k *)
      let lhs = Csr.add ~alpha:(1.0 /. h) ~beta:(-1.0) e a in
      let f = Slu.factor lhs in
      for k = 1 to steps do
        let rhs = Csr.mul_vec (Csr.scale (1.0 /. h) e) xs.(k - 1) in
        Vec.axpy 1.0 (bu times.(k)) rhs;
        xs.(k) <- Slu.solve f rhs
      done
  | Trapezoidal ->
      (* (E/h − A/2) x_k = (E/h + A/2) x_{k−1} + B (u_k + u_{k−1})/2 *)
      let lhs = Csr.add ~alpha:(1.0 /. h) ~beta:(-0.5) e a in
      let rhs_mat = Csr.add ~alpha:(1.0 /. h) ~beta:0.5 e a in
      let f = Slu.factor lhs in
      for k = 1 to steps do
        let rhs = Csr.mul_vec rhs_mat xs.(k - 1) in
        let u_mid = Vec.scale 0.5 (Vec.add (bu times.(k)) (bu times.(k - 1))) in
        Vec.axpy 1.0 u_mid rhs;
        xs.(k) <- Slu.solve f rhs
      done
  | Gear2 ->
      (* (3E/(2h) − A) x_k = (E/h)(2 x_{k−1} − x_{k−2}/2) + B u_k;
         first step backward Euler *)
      let lhs2 = Csr.add ~alpha:(1.5 /. h) ~beta:(-1.0) e a in
      let f2 = Slu.factor lhs2 in
      let lhs1 = Csr.add ~alpha:(1.0 /. h) ~beta:(-1.0) e a in
      let f1 = Slu.factor lhs1 in
      for k = 1 to steps do
        if k = 1 then begin
          let rhs = Csr.mul_vec (Csr.scale (1.0 /. h) e) xs.(0) in
          Vec.axpy 1.0 (bu times.(k)) rhs;
          xs.(k) <- Slu.solve f1 rhs
        end
        else begin
          let hist =
            Vec.sub
              (Vec.scale (2.0 /. h) xs.(k - 1))
              (Vec.scale (0.5 /. h) xs.(k - 2))
          in
          let rhs = Csr.mul_vec e hist in
          Vec.axpy 1.0 (bu times.(k)) rhs;
          xs.(k) <- Slu.solve f2 rhs
        end
      done);
  (times, xs)

let waveform_of ~c ~labels times xs =
  let q, _n = Mat.dims c in
  let channels =
    Array.init q (fun i ->
        Array.map (fun x -> Vec.dot (Mat.row c i) x) xs)
  in
  Waveform.make ~labels times channels

let solve ~scheme ~h ~t_end sys sources =
  check_args ~h ~t_end sys sources;
  let times, xs = run ~scheme ~h ~t_end sys sources in
  waveform_of ~c:sys.Descriptor.c ~labels:sys.Descriptor.output_names times xs

let solve_states ~scheme ~h ~t_end sys sources =
  check_args ~h ~t_end sys sources;
  let times, xs = run ~scheme ~h ~t_end sys sources in
  let n = Descriptor.order sys in
  waveform_of ~c:(Mat.eye n) ~labels:sys.Descriptor.state_names times xs
