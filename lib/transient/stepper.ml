open Opm_numkit
open Opm_sparse
open Opm_signal
open Opm_core
module Metrics = Opm_obs.Metrics
module Trace = Opm_obs.Trace

(* observability instruments (no-ops unless metrics are enabled) *)
let m_steps = Metrics.counter "stepper.steps"

type scheme = Backward_euler | Trapezoidal | Gear2

let scheme_name = function
  | Backward_euler -> "backward-Euler"
  | Trapezoidal -> "trapezoidal"
  | Gear2 -> "Gear (BDF2)"

let check_args ~h ~t_end (sys : Descriptor.t) sources =
  if h <= 0.0 then invalid_arg "Stepper.solve: h <= 0";
  if t_end <= 0.0 then invalid_arg "Stepper.solve: t_end <= 0";
  if Array.length sources <> Descriptor.input_count sys then
    invalid_arg "Stepper.solve: source count mismatch"

let eval_inputs sources t = Array.map (fun src -> Source.eval src t) sources

(* advance with x(0) = 0, streaming: only the one (two for Gear) most
   recent state vectors are live — [record k x] observes each state as
   it is produced, so a paper-scale run (n ≈ 10⁵, thousands of steps)
   costs O(n) state memory instead of O(n·steps).

   [?symbolic] shares one sparse symbolic analysis across every
   iteration-matrix factorisation reached through it: the schemes'
   pencils all have the union pattern of E and A, so Gear's two
   matrices — and the other schemes' pencils when a caller passes one
   hint across schemes, as the Table II bench does — pay ordering and
   reach discovery once ({!Slu.factor_hinted}). *)
let run ?symbolic ~scheme ~h ~t_end ~record (sys : Descriptor.t) sources =
  Trace.with_span "stepper.run" @@ fun () ->
  let n = Descriptor.order sys in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  Metrics.incr ~by:steps m_steps;
  let e = sys.Descriptor.e and a = sys.Descriptor.a in
  let b = sys.Descriptor.b in
  let bu t = Mat.mul_vec b (eval_inputs sources t) in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. h) in
  let hint = match symbolic with Some r -> r | None -> ref None in
  let factor lhs = Slu.factor_hinted ~hint lhs in
  record 0 (Vec.zeros n);
  (match scheme with
  | Backward_euler ->
      (* (E/h − A) x_k = (E/h) x_{k−1} + B u_k *)
      let lhs = Csr.add ~alpha:(1.0 /. h) ~beta:(-1.0) e a in
      let f = factor lhs in
      let e_h = Csr.scale (1.0 /. h) e in
      let x = ref (Vec.zeros n) in
      for k = 1 to steps do
        let rhs = Csr.mul_vec e_h !x in
        Vec.axpy 1.0 (bu times.(k)) rhs;
        x := Slu.solve f rhs;
        record k !x
      done
  | Trapezoidal ->
      (* (E/h − A/2) x_k = (E/h + A/2) x_{k−1} + B (u_k + u_{k−1})/2 *)
      let lhs = Csr.add ~alpha:(1.0 /. h) ~beta:(-0.5) e a in
      let rhs_mat = Csr.add ~alpha:(1.0 /. h) ~beta:0.5 e a in
      let f = factor lhs in
      let x = ref (Vec.zeros n) in
      for k = 1 to steps do
        let rhs = Csr.mul_vec rhs_mat !x in
        let u_mid = Vec.scale 0.5 (Vec.add (bu times.(k)) (bu times.(k - 1))) in
        Vec.axpy 1.0 u_mid rhs;
        x := Slu.solve f rhs;
        record k !x
      done
  | Gear2 ->
      (* (3E/(2h) − A) x_k = (E/h)(2 x_{k−1} − x_{k−2}/2) + B u_k;
         first step backward Euler *)
      let lhs2 = Csr.add ~alpha:(1.5 /. h) ~beta:(-1.0) e a in
      let f2 = factor lhs2 in
      let lhs1 = Csr.add ~alpha:(1.0 /. h) ~beta:(-1.0) e a in
      let f1 = factor lhs1 in
      let x1 = ref (Vec.zeros n) (* x_{k−1} *) in
      let x2 = ref (Vec.zeros n) (* x_{k−2} *) in
      for k = 1 to steps do
        if k = 1 then begin
          let rhs = Csr.mul_vec (Csr.scale (1.0 /. h) e) !x1 in
          Vec.axpy 1.0 (bu times.(k)) rhs;
          x2 := !x1;
          x1 := Slu.solve f1 rhs;
          record k !x1
        end
        else begin
          let hist =
            Vec.sub (Vec.scale (2.0 /. h) !x1) (Vec.scale (0.5 /. h) !x2)
          in
          let rhs = Csr.mul_vec e hist in
          Vec.axpy 1.0 (bu times.(k)) rhs;
          x2 := !x1;
          x1 := Slu.solve f2 rhs;
          record k !x1
        end
      done);
  times

let solve ?symbolic ~scheme ~h ~t_end sys sources =
  check_args ~h ~t_end sys sources;
  let c = sys.Descriptor.c in
  let q, _n = Mat.dims c in
  let c_rows = Array.init q (Mat.row c) in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  let channels = Array.init q (fun _ -> Array.make (steps + 1) 0.0) in
  let record k x =
    for i = 0 to q - 1 do
      channels.(i).(k) <- Vec.dot c_rows.(i) x
    done
  in
  let times = run ?symbolic ~scheme ~h ~t_end ~record sys sources in
  Waveform.make ~labels:sys.Descriptor.output_names times channels

let solve_states ?symbolic ~scheme ~h ~t_end sys sources =
  check_args ~h ~t_end sys sources;
  let n = Descriptor.order sys in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  let channels = Array.init n (fun _ -> Array.make (steps + 1) 0.0) in
  let record k x =
    for i = 0 to n - 1 do
      channels.(i).(k) <- x.(i)
    done
  in
  let times = run ?symbolic ~scheme ~h ~t_end ~record sys sources in
  Waveform.make ~labels:sys.Descriptor.state_names times channels
