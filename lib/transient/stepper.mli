open Opm_sparse
open Opm_signal
open Opm_core

(** Shared machinery of the classical one/two-step implicit transient
    methods the paper benchmarks OPM against (Table II): backward
    Euler, trapezoidal rule and Gear's method (BDF2).

    Each scheme advances [E ẋ = A x + B u] with a fixed step [h] from
    [x(0) = 0] and factorises its iteration matrix exactly once —
    matching the complexity regime OPM is compared to. The run is
    streaming: only the most recent state vector (two for Gear) is
    live, so paper-scale grids (n ≈ 10⁵, thousands of steps) cost
    O(n) state memory. *)

type scheme = Backward_euler | Trapezoidal | Gear2

val scheme_name : scheme -> string

val solve :
  ?symbolic:Slu.symbolic option ref ->
  scheme:scheme ->
  h:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Output waveform [y = C x] sampled at [t_k = k·h], [k = 0 … ⌈T/h⌉].
    Gear's first step falls back to backward Euler. Raises
    [Invalid_argument] on non-positive [h] or [t_end], or if the source
    count does not match the system's inputs.

    [?symbolic] shares one sparse symbolic analysis across every
    iteration matrix factored through it: all schemes' pencils carry
    the union sparsity pattern of [E] and [A], so Gear's two matrices
    — and runs of {e different} schemes on the same system when the
    caller passes one hint throughout — pay the symbolic work once
    ({!Slu.factor_hinted}). *)

val solve_states :
  ?symbolic:Slu.symbolic option ref ->
  scheme:scheme ->
  h:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Same but observing all state variables (ignores [C]). *)
