(* opm-serve-v1 wire protocol: strict request validation (closed field
   vocabulary — a typo'd analysis field must not silently simulate the
   default), plant fingerprinting over the *stamped* system, and the
   error taxonomy → HTTP status mapping. *)

open Opm_circuit
module Json = Opm_obs.Json
module Checkpoint = Opm_robust.Checkpoint
module Opm_error = Opm_robust.Opm_error

exception Reject of { status : int; code : string; message : string }

let reject status code fmt =
  Printf.ksprintf
    (fun message -> raise (Reject { status; code; message }))
    fmt

type analysis = {
  t_end : float;
  steps : int;
  window : int option;
  memory_len : int option;
  probes : string list option;
  deadline_s : float option;
  basis : Opm_core.Compiled_model.basis;
}

type parsed = { netlist : Netlist.t; analysis : analysis }

let analysis_fields =
  [ "t_end"; "steps"; "window"; "memory_len"; "probes"; "deadline_s"; "basis" ]

let parse_request ?(max_steps = 200_000) body =
  let doc =
    try Json.of_string body
    with Json.Parse_error { pos; message } ->
      reject 400 "json" "request body is not valid JSON (byte %d: %s)" pos
        message
  in
  (match doc with
  | Json.Obj kvs ->
      List.iter
        (fun (k, _) ->
          if k <> "netlist" && k <> "analysis" then
            reject 400 "request" "unknown top-level field %S" k)
        kvs
  | _ -> reject 400 "request" "request body must be a JSON object");
  let netlist_text =
    match Json.member "netlist" doc with
    | Some (Json.String s) -> s
    | Some _ -> reject 400 "request" "\"netlist\" must be a string"
    | None -> reject 400 "request" "missing field \"netlist\""
  in
  let fields =
    match Json.member "analysis" doc with
    | Some (Json.Obj kvs) -> kvs
    | Some _ -> reject 400 "request" "\"analysis\" must be an object"
    | None -> reject 400 "request" "missing field \"analysis\""
  in
  List.iter
    (fun (k, _) ->
      if not (List.mem k analysis_fields) then
        reject 400 "request" "unknown analysis field %S" k)
    fields;
  let field k = List.assoc_opt k fields in
  let t_end =
    match field "t_end" with
    | None -> reject 400 "request" "missing analysis field \"t_end\""
    | Some v -> (
        match Json.to_float_opt v with
        | Some x when Float.is_finite x && x > 0.0 -> x
        | _ -> reject 400 "request" "\"t_end\" must be a finite number > 0")
  in
  let steps =
    match field "steps" with
    | None -> reject 400 "request" "missing analysis field \"steps\""
    | Some v -> (
        match Json.to_int_opt v with
        | Some n when n >= 1 && n <= max_steps -> n
        | Some n ->
            reject 400 "request" "\"steps\" = %d outside [1, %d]" n max_steps
        | None -> reject 400 "request" "\"steps\" must be an integer")
  in
  let opt_pos_int k =
    match field k with
    | None -> None
    | Some v -> (
        match Json.to_int_opt v with
        | Some n when n >= 1 -> Some n
        | _ -> reject 400 "request" "%S must be an integer >= 1" k)
  in
  let window = opt_pos_int "window" in
  let memory_len = opt_pos_int "memory_len" in
  if memory_len <> None && window = None then
    reject 400 "request" "\"memory_len\" requires \"window\"";
  let probes =
    match field "probes" with
    | None -> None
    | Some v -> (
        match Json.to_list_opt v with
        | Some l ->
            Some
              (List.map
                 (fun x ->
                   match Json.to_string_opt x with
                   | Some s when s <> "" -> s
                   | _ ->
                       reject 400 "request"
                         "\"probes\" must be a list of non-empty node names")
                 l)
        | None -> reject 400 "request" "\"probes\" must be a list of node names")
  in
  let deadline_s =
    match field "deadline_s" with
    | None -> None
    | Some v -> (
        match Json.to_float_opt v with
        | Some x when Float.is_finite x && x > 0.0 -> Some x
        | _ -> reject 400 "request" "\"deadline_s\" must be a number > 0")
  in
  let basis =
    match field "basis" with
    | None -> `Bpf
    | Some (Json.String "bpf") -> `Bpf
    | Some (Json.String "spectral") -> `Spectral
    | Some _ ->
        reject 400 "request" "\"basis\" must be \"bpf\" or \"spectral\""
  in
  if basis = `Spectral && window <> None then
    reject 400 "request"
      "\"window\" requires the block-pulse basis (spectral models are global)";
  let netlist =
    try Parser.parse_string netlist_text
    with Parser.Parse_error { line; message } ->
      reject 400 "netlist" "netlist line %d: %s" line message
  in
  {
    netlist;
    analysis = { t_end; steps; window; memory_len; probes; deadline_s; basis };
  }

let probe_outputs a =
  Option.map (List.map (fun n -> Mna.Node_voltage n)) a.probes

(* Fingerprint the *stamped* system, floats bit-exact as IEEE-754 hex
   (Checkpoint.encode_floats): netlist text that stamps identically —
   comments, element order, source-waveform-only edits — must share
   one compiled model, and nothing that changes the pencil, the
   projection or the grid may collide. *)

let csr_payload m =
  let open Opm_sparse in
  let r, c = Csr.dims m in
  let idx = ref [] and vals = ref [] in
  Csr.iter
    (fun i j v ->
      idx := Json.Int ((i * c) + j) :: !idx;
      vals := v :: !vals)
    m;
  Json.Obj
    [
      ("r", Json.Int r);
      ("c", Json.Int c);
      ("idx", Json.List (List.rev !idx));
      ("val", Checkpoint.encode_floats (Array.of_list (List.rev !vals)));
    ]

let mat_payload m =
  let open Opm_numkit in
  let r, c = Mat.dims m in
  let vals = Array.init (r * c) (fun k -> Mat.get m (k / c) (k mod c)) in
  Json.Obj
    [ ("r", Json.Int r); ("c", Json.Int c); ("val", Checkpoint.encode_floats vals) ]

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let fingerprint ~sys ~t_end ~steps ~window ~memory_len ~basis =
  let open Opm_core.Multi_term in
  let names a = Json.List (Array.to_list (Array.map (fun s -> Json.String s) a)) in
  let payload =
    Json.Obj
      [
        ("schema", Json.String "opm-serve-plant-v1");
        ( "terms",
          Json.List
            (List.map
               (fun { coeff; alpha } ->
                 Json.Obj
                   [
                     ("alpha", Checkpoint.encode_floats [| alpha |]);
                     ("coeff", csr_payload coeff);
                   ])
               sys.terms) );
        ("a", csr_payload sys.a);
        ("b", mat_payload sys.b);
        ("c", mat_payload sys.c);
        ("input_order", Json.Int sys.input_order);
        ("state_names", names sys.state_names);
        ("output_names", names sys.output_names);
        ("t_end", Checkpoint.encode_floats [| t_end |]);
        ("steps", Json.Int steps);
        ("window", opt_int window);
        ("memory_len", opt_int memory_len);
        (* spectral and BPF compiles of the same plant share every field
           above — the basis must split the cache key *)
        ( "basis",
          Json.String
            (match basis with `Bpf -> "bpf" | `Spectral -> "spectral") );
      ]
  in
  Checkpoint.checksum_of_payload payload

let status_of_error (e : Opm_error.t) =
  match e with
  | Parse_error _ -> (400, "netlist")
  | Singular_pencil _ -> (422, "singular-pencil")
  | Non_finite _ -> (422, "non-finite")
  | Ill_conditioned _ -> (422, "ill-conditioned")
  | Deadline_exceeded _ -> (503, "deadline")
  | Budget_exhausted _ -> (503, "budget")
  | Resource_limit _ -> (503, "resource-limit")
  | Io_error _ -> (500, "io")
  | Checkpoint_error _ -> (500, "checkpoint")
  | Fault_injected _ -> (500, "fault-injected")

let error_body ~status ~code ~message =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "opm-serve-v1");
         ( "error",
           Json.Obj
             [
               ("status", Json.Int status);
               ("code", Json.String code);
               ("message", Json.String message);
             ] );
       ])

let ok_body ~plant ~cached ~factorisations ~factor_reuse ~queries ~outputs =
  let open Opm_signal in
  let floats a = Json.List (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "opm-serve-v1");
         ("plant", Json.String plant);
         ("cached", Json.Bool cached);
         ("factorisations", Json.Int factorisations);
         ("factor_reuse", Json.Int factor_reuse);
         ("queries", Json.Int queries);
         ("times", floats outputs.Waveform.times);
         ( "labels",
           Json.List
             (Array.to_list
                (Array.map (fun s -> Json.String s) outputs.Waveform.labels)) );
         ( "outputs",
           Json.List
             (Array.to_list (Array.map floats outputs.Waveform.channels)) );
       ])
