(** The [opm_serve] daemon: simulation as a service.

    A hand-rolled HTTP/1.1 server (stdlib + [Unix] + [Thread], no
    dependencies) that accepts netlist-plus-analysis requests as JSON,
    parses and validates them with the circuit parser's error taxonomy,
    dispatches simulations as {!Opm_core.Compiled_model} queries, and
    shares one compiled model per plant across requests through a
    bounded {!Model_cache} — N clients sweeping the same circuit pay
    exactly one factorisation.

    Endpoints:
    - [GET /health] — liveness: uptime, request count, cache occupancy;
    - [GET /metrics] — the process metrics snapshot
      ({!Opm_obs.Metrics.snapshot}) plus per-plant cache statistics
      ({!Model_cache.stats_json}) and fault-injection counters;
    - [POST /solve] — one simulation ({!Protocol} request/response).

    Error mapping: request/netlist parse errors are 400, a well-formed
    request whose pencil is singular or produces non-finite output is
    422, a tripped per-request {!Opm_robust.Budget} deadline is 503,
    unknown paths/methods are 404/405, framing violations carry their
    {!Http.Error} status. Every error response is a one-line
    structured JSON body — a client never sees a hang, a raw
    exception, or a silently wrong answer.

    Fault injection: the accept loop fires the
    {!Opm_robust.Fault.Accept} site per connection and the request
    loop fires {!Opm_robust.Fault.Request_dispatch} per parsed
    request. An injected [Latency] delays and proceeds to the correct
    answer; any other kind becomes a structured 503
    ([code = "fault-injected"]) — the serving extension of the
    resilience invariant (structured error or correct answer, never a
    wrong one).

    Threading: one accept thread plus one thread per live connection
    (keep-alive, so a sweeping client holds one). Queries against one
    plant are serialised by the cache's entry lock; distinct plants
    solve concurrently, and the underlying engine may additionally
    fan out columns on the shared {!Opm_parallel.Pool}. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] = ephemeral (read back with {!port}) *)
  backlog : int;
  max_header : int;  (** request-head byte cap (431 beyond) *)
  max_body : int;  (** request-body byte cap (413 beyond) *)
  max_steps : int;  (** grid-size cap per request (400 beyond) *)
  cache_capacity : int;  (** resident compiled plants *)
  deadline_s : float option;
      (** default per-request wall-clock budget; a request's own
          [deadline_s] overrides *)
  read_timeout_s : float;  (** idle-socket receive timeout (408) *)
}

val default_config : config
(** [127.0.0.1:8080], 16 KiB head, 1 MiB body, 200_000 steps,
    16 plants, no default deadline, 30 s read timeout. *)

type t

val start : ?config:config -> unit -> t
(** Bind, listen, and spawn the accept thread. Enables metrics
    collection (the [/metrics] endpoint reports live counters) and
    ignores [SIGPIPE] process-wide (a peer hanging up mid-response
    must not kill the daemon). Raises [Unix.Unix_error] if the
    address cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port = 0]. *)

val cache : t -> Model_cache.t

val requests : t -> int
(** Requests parsed so far (all endpoints). *)

val stop : t -> unit
(** Close the listening socket, join the accept thread, and wait
    (bounded) for in-flight connection threads to drain. Idempotent. *)
