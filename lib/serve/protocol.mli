open Opm_circuit

(** The [opm-serve-v1] wire protocol: request parsing/validation, plant
    fingerprinting, and the structured-error → HTTP-status mapping.

    A [/solve] request body is

    {[ { "netlist":  "<netlist source>",
         "analysis": { "t_end": 1e-3, "steps": 512,
                       "window": 128, "memory_len": 64,
                       "probes": ["out"], "deadline_s": 2.0,
                       "basis": "spectral" } } ]}

    with [window]/[memory_len]/[probes]/[deadline_s]/[basis] optional
    and the field vocabulary closed — unknown fields are rejected, so a
    typo'd sweep fails loudly instead of silently simulating the
    default. [basis] is ["bpf"] (default) or ["spectral"] (Jacobi-Gauss
    collocation — [steps] becomes the collocation-node count; rejects
    [window]).
    Netlist syntax and element semantics are delegated to
    {!Opm_circuit.Parser} and reported with its line numbers; every
    rejection is a one-line structured JSON error.

    Responses carry floats printed by {!Opm_obs.Json} (shortest decimal
    that round-trips, [%.17g] fallback), so a client parsing the JSON
    recovers bit-identical values to an in-process [Opm.simulate_*]
    call — the property the serving differential test asserts. *)

exception Reject of { status : int; code : string; message : string }
(** A request-level rejection: [status] is the HTTP status to answer
    with, [code] a stable machine-readable token (["json"],
    ["request"], ["netlist"], …). *)

type analysis = {
  t_end : float;
  steps : int;
  window : int option;
  memory_len : int option;
  probes : string list option;  (** node names; [None] = all nodes *)
  deadline_s : float option;  (** per-request wall-clock budget *)
  basis : Opm_core.Compiled_model.basis;  (** discretisation basis *)
}

type parsed = { netlist : Netlist.t; analysis : analysis }

val parse_request : ?max_steps:int -> string -> parsed
(** Parse and validate one [/solve] body. Raises {!Reject} (status 400)
    on malformed JSON, unknown/ill-typed/missing fields, out-of-range
    values ([steps] is capped at [max_steps], default 200_000 — the
    grid is the server's memory bound) or a netlist syntax error. *)

val probe_outputs : analysis -> Mna.probe list option
(** The [?outputs] argument for {!Mna.stamp} ([None] when the request
    left probes at the default). *)

val fingerprint :
  sys:Opm_core.Multi_term.t ->
  t_end:float ->
  steps:int ->
  window:int option ->
  memory_len:int option ->
  basis:Opm_core.Compiled_model.basis ->
  string
(** Plant cache key: FNV-1a-64 checksum (16 hex digits) over the
    {e stamped} system — term αs and coefficient sparsity/values
    bit-exact via IEEE-754 hex, [A]/[B]/[C], input order, names — plus
    the grid, window and basis configuration (spectral and BPF compiles
    of the same plant must never collide). Keying on the stamped pencil
    rather than the netlist text means two textually different
    netlists that stamp to the same system (comments, source-waveform
    changes, element order) share one compiled model, which is what
    makes "N clients sweeping one circuit pay one factorisation"
    true for sweeps that vary only the sources. *)

val status_of_error : Opm_robust.Opm_error.t -> int * string
(** Solve-time error → [(status, code)]: parse errors 400; singular /
    non-finite / ill-conditioned pencils 422 (the request is
    well-formed but unprocessable); deadline / budget / resource
    exhaustion 503 (retryable with a bigger budget); I/O, checkpoint
    and injected faults 500. *)

val error_body : status:int -> code:string -> message:string -> string
(** One-line [{"schema":"opm-serve-v1","error":{status,code,message}}]. *)

val ok_body :
  plant:string ->
  cached:bool ->
  factorisations:int ->
  factor_reuse:int ->
  queries:int ->
  outputs:Opm_signal.Waveform.t ->
  string
(** Success body: schema tag, plant fingerprint, cache disposition,
    per-plant factor statistics and the output waveform
    ([times]/[labels]/[outputs] per channel). *)
