(** Minimal HTTP/1.1 framing over [Unix] file descriptors.

    The serving layer is zero-dependency like the rest of the tree
    (stdlib + unix only, in the spirit of [Opm_obs.Json]), so it
    carries its own HTTP support: enough to read netlist-plus-analysis
    requests and write JSON responses — request-line + headers +
    [Content-Length]-framed bodies, keep-alive, and hard size limits so
    a malformed or hostile peer can never make the daemon allocate
    unboundedly or hang.

    Parsing is deliberately strict: anything outside the framing subset
    raises {!Error} with the HTTP status the server should answer with
    (400 malformed, 408 idle timeout, 411 missing length, 413 oversized
    body, 431 oversized head, 501 chunked bodies). Both CRLF and bare
    LF line endings are accepted. *)

exception Error of { status : int; message : string }
(** A framing violation, carrying the status to respond with. *)

type request = {
  meth : string;  (** request method, uppercased (["POST"]) *)
  target : string;  (** request target as sent (["/solve"]) *)
  version : string;  (** ["HTTP/1.1"] / ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** in arrival order; names lowercased, values trimmed *)
  body : string;  (** [Content-Length] bytes (possibly empty) *)
}

val header : request -> string -> string option
(** Case-insensitive header lookup (first occurrence). *)

val wants_close : request -> bool
(** Whether the peer asked to close after this exchange
    ([Connection: close], or HTTP/1.0 without [keep-alive]). *)

type conn
(** Buffered read state of one connection — carries bytes already read
    past the previous request so pipelined keep-alive requests are not
    lost. *)

val conn : Unix.file_descr -> conn

val read_request :
  ?max_header:int -> ?max_body:int -> conn -> request option
(** Read one request. [None] on a clean end-of-stream before any byte
    of a new request (the peer closed an idle keep-alive connection).
    Raises {!Error} on any framing violation, a body larger than
    [max_body] (default 1 MiB; status 413), a head larger than
    [max_header] (default 16 KiB; status 431) or a read timeout
    (status 408, from a [SO_RCVTIMEO] the server armed). *)

val reason : int -> string
(** Canonical reason phrase (["Unprocessable Entity"] for 422, …). *)

val write_response :
  Unix.file_descr ->
  status:int ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  ?close:bool ->
  body:string ->
  unit ->
  unit
(** Write a complete response ([Content-Length] framing; default
    content type [application/json]; [?close] adds
    [Connection: close]). Raises [Unix.Unix_error] if the peer is
    gone — callers treat that as a closed connection, never as a
    server failure. *)
