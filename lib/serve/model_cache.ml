(* Bounded plant cache: table mutex for membership/eviction, one mutex
   per entry for compile-once and for serialising queries against the
   model's sequential scratch. Lock order is table → entry, never the
   reverse. *)

module Compiled_model = Opm_core.Compiled_model
module Json = Opm_obs.Json

type entry = {
  key : string;
  lock : Mutex.t;
  mutable model : Compiled_model.t option;  (* None while compiling *)
  mutable refs : int;  (* in-flight requests pinning this entry *)
  mutable last_used : int;  (* LRU clock stamp *)
  mutable requests : int;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 16) () =
  if capacity < 1 then
    invalid_arg "Model_cache.create: capacity must be >= 1";
  {
    capacity;
    mu = Mutex.create ();
    table = Hashtbl.create 32;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Drop least-recently-used idle entries until within capacity. Pinned
   entries (refs > 0) are never evicted — a burst of distinct in-flight
   plants may transiently exceed capacity, same policy as
   Engine.Factor_cache pinning. Called with [t.mu] held. *)
let evict_to_capacity t =
  let continue = ref true in
  while Hashtbl.length t.table > t.capacity && !continue do
    let victim = ref None in
    Hashtbl.iter
      (fun _ e ->
        if e.refs = 0 then
          match !victim with
          | Some v when v.last_used <= e.last_used -> ()
          | _ -> victim := Some e)
      t.table;
    match !victim with
    | None -> continue := false
    | Some e ->
        Hashtbl.remove t.table e.key;
        t.evictions <- t.evictions + 1
  done

let unpin t entry =
  locked t.mu (fun () -> entry.refs <- entry.refs - 1)

(* A compile failure must not leave a model-less placeholder that later
   requests treat as "someone is compiling": remove it so they retry.
   A concurrent request may already hold a pin on the placeholder; it
   will observe [model = None] under the entry lock and recompile. *)
let drop_failed t entry =
  locked t.mu (fun () ->
      entry.refs <- entry.refs - 1;
      match Hashtbl.find_opt t.table entry.key with
      | Some e when e == entry -> Hashtbl.remove t.table entry.key
      | _ -> ())

let with_model t ~key ~compile f =
  let entry =
    locked t.mu (fun () ->
        let e =
          match Hashtbl.find_opt t.table key with
          | Some e ->
              t.hits <- t.hits + 1;
              e
          | None ->
              t.misses <- t.misses + 1;
              let e =
                {
                  key;
                  lock = Mutex.create ();
                  model = None;
                  refs = 0;
                  last_used = 0;
                  requests = 0;
                }
              in
              Hashtbl.replace t.table key e;
              e
        in
        e.refs <- e.refs + 1;
        t.clock <- t.clock + 1;
        e.last_used <- t.clock;
        e.requests <- e.requests + 1;
        evict_to_capacity t;
        e)
  in
  Mutex.lock entry.lock;
  let model, cached =
    match entry.model with
    | Some m -> (m, true)
    | None -> (
        match compile () with
        | m ->
            entry.model <- Some m;
            (m, false)
        | exception e ->
            Mutex.unlock entry.lock;
            drop_failed t entry;
            raise e)
  in
  match f ~cached model with
  | result ->
      Mutex.unlock entry.lock;
      unpin t entry;
      result
  | exception e ->
      Mutex.unlock entry.lock;
      unpin t entry;
      raise e

let length t = locked t.mu (fun () -> Hashtbl.length t.table)

let pinned t =
  locked t.mu (fun () ->
      Hashtbl.fold (fun _ e n -> if e.refs > 0 then n + 1 else n) t.table 0)

let hits t = locked t.mu (fun () -> t.hits)
let misses t = locked t.mu (fun () -> t.misses)
let evictions t = locked t.mu (fun () -> t.evictions)

let stats_json t =
  locked t.mu (fun () ->
      let plants =
        Hashtbl.fold
          (fun key e acc ->
            let model_stats =
              match e.model with
              | None -> []
              | Some m ->
                  [
                    ("queries", Json.Int (Compiled_model.queries m));
                    ( "factorisations",
                      Json.Int (Compiled_model.factorisations m) );
                    ("factor_reuse", Json.Int (Compiled_model.factor_reuse m));
                  ]
            in
            Json.Obj
              (("plant", Json.String key)
              :: ("requests", Json.Int e.requests)
              :: model_stats)
            :: acc)
          t.table []
      in
      Json.Obj
        [
          ("capacity", Json.Int t.capacity);
          ("length", Json.Int (Hashtbl.length t.table));
          ( "pinned",
            Json.Int
              (Hashtbl.fold
                 (fun _ e n -> if e.refs > 0 then n + 1 else n)
                 t.table 0) );
          ("hits", Json.Int t.hits);
          ("misses", Json.Int t.misses);
          ("evictions", Json.Int t.evictions);
          ("plants", Json.List plants);
        ])
