(* Hand-rolled HTTP/1.1 framing: request-line + headers +
   Content-Length bodies, keep-alive, hard size limits. Everything a
   hostile peer can send maps to [Error] with a concrete status —
   never a hang (reads are bounded by the caller's SO_RCVTIMEO and by
   max_header/max_body) and never an unbounded allocation. *)

exception Error of { status : int; message : string }

let fail status fmt =
  Printf.ksprintf (fun message -> raise (Error { status; message })) fmt

type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let wants_close req =
  match Option.map String.lowercase_ascii (header req "connection") with
  | Some "close" -> true
  | Some "keep-alive" -> false
  | _ -> String.equal req.version "HTTP/1.0"

(* Buffered connection state: [pending] holds bytes already read past
   the previous request so pipelined keep-alive requests survive. *)
type conn = {
  fd : Unix.file_descr;
  mutable pending : string;
}

let conn fd = { fd; pending = "" }

let chunk = 4096

(* One [Unix.read], mapping a receive timeout (armed by the server via
   SO_RCVTIMEO) to a 408 instead of surfacing EAGAIN to callers. *)
let read_chunk c buf =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
      fail 408 "timed out waiting for request bytes"
  | exception Unix.Unix_error (EINTR, _, _) -> 0

(* Find "\n\n" or "\n\r\n" from [from] (tolerating CR before the first
   LF); return (head_end, body_start). *)
let find_head_end s from =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] <> '\n' then go (i + 1)
    else
      let j = i + 1 in
      if j < n && s.[j] = '\n' then Some (i, j + 1)
      else if j + 1 < n && s.[j] = '\r' && s.[j + 1] = '\n' then
        Some (i, j + 2)
      else go (i + 1)
  in
  go (max from 0)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when meth <> "" && target <> ""
         && String.length version > 5
         && String.sub version 0 5 = "HTTP/" ->
      (String.uppercase_ascii meth, target, version)
  | _ -> fail 400 "malformed request line %S" (String.escaped line)

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> fail 400 "malformed header line %S" (String.escaped line)
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (name, value)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> fail 400 "empty request head"
  | request_line :: header_lines ->
      let meth, target, version = parse_request_line (strip_cr request_line) in
      let headers =
        List.filter_map
          (fun line ->
            let line = strip_cr line in
            if line = "" then None else Some (parse_header_line line))
          header_lines
      in
      (meth, target, version, headers)

let body_length headers =
  match List.assoc_opt "transfer-encoding" headers with
  | Some _ -> fail 501 "chunked transfer encoding is not supported"
  | None -> (
      match List.assoc_opt "content-length" headers with
      | None -> 0
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> n
          | _ -> fail 400 "malformed Content-Length %S" (String.escaped v)))

let read_request ?(max_header = 16 * 1024) ?(max_body = 1024 * 1024) c =
  (* Accumulate until the blank line; [scanned] avoids rescanning the
     prefix on every chunk. *)
  let buf = Buffer.create chunk in
  Buffer.add_string buf c.pending;
  c.pending <- "";
  let tmp = Bytes.create chunk in
  let head_split = ref (find_head_end (Buffer.contents buf) 0) in
  let eof = ref false in
  while !head_split = None && not !eof do
    if Buffer.length buf > max_header then
      fail 431 "request head exceeds %d bytes" max_header;
    let n = read_chunk c tmp in
    if n = 0 then eof := true
    else begin
      let scanned = Buffer.length buf in
      Buffer.add_subbytes buf tmp 0 n;
      (* restart 2 bytes back: the terminator may straddle the chunk *)
      head_split := find_head_end (Buffer.contents buf) (scanned - 2)
    end
  done;
  match !head_split with
  | None ->
      if Buffer.length buf = 0 then None (* clean close between requests *)
      else fail 400 "connection closed mid-request head"
  | Some (head_end, body_start) ->
      let all = Buffer.contents buf in
      if head_end > max_header then
        fail 431 "request head exceeds %d bytes" max_header;
      let head = String.sub all 0 head_end in
      let meth, target, version, headers = parse_head head in
      let want = body_length headers in
      if want > max_body then fail 413 "request body exceeds %d bytes" max_body;
      let body = Buffer.create (min want chunk) in
      let avail = String.length all - body_start in
      let take = min avail want in
      Buffer.add_substring body all body_start take;
      (* bytes beyond this request belong to the next one *)
      c.pending <- String.sub all (body_start + take) (avail - take);
      while Buffer.length body < want do
        let n = read_chunk c tmp in
        if n = 0 then fail 400 "connection closed mid-request body";
        let take = min n (want - Buffer.length body) in
        Buffer.add_subbytes body tmp 0 take;
        if take < n then
          c.pending <- c.pending ^ Bytes.sub_string tmp take (n - take)
      done;
      Some { meth; target; version; headers; body = Buffer.contents body }

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | c -> if c < 400 then "OK" else "Error"

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_response fd ~status ?(content_type = "application/json")
    ?(extra_headers = []) ?(close = false) ~body () =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  if close then Buffer.add_string buf "Connection: close\r\n";
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)
