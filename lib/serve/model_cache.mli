(** Bounded cross-request cache of compiled plants.

    The whole point of serving OPM models is that the expensive,
    source-independent half of a simulation — basis expansion,
    operational matrices, FFT plan, pencil factorisation — is done once
    per {e plant} ({!Opm_core.Compiled_model.compile}) and every request
    is a cheap query. This cache realises that across requests: entries
    are keyed by the {!Protocol.fingerprint} of the stamped system plus
    grid/window configuration, so N clients sweeping the same circuit
    with different sources share exactly one compiled model and pay
    exactly one factorisation (asserted per-plant via
    {!Opm_core.Compiled_model.factorisations}).

    Concurrency contract: each entry carries its own mutex. A cold key
    inserts a placeholder under the table lock and compiles under the
    entry lock, so two simultaneous cold requests for one plant compile
    once (the second blocks, then queries). Queries also run under the
    entry lock — a compiled model's query scratch is sequential —
    while different plants solve fully in parallel.

    Capacity is bounded: beyond [capacity] plants the least-recently
    used {e idle} entry is evicted. In-flight entries are pinned by
    their reference count and never evicted mid-request; pinned entries
    may transiently push the table over capacity (the same policy as
    [Engine.Factor_cache]). A compile failure removes the placeholder
    so later requests retry instead of inheriting a poisoned entry. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 16 plants. Raises [Invalid_argument] if
    [capacity < 1]. *)

val with_model :
  t ->
  key:string ->
  compile:(unit -> Opm_core.Compiled_model.t) ->
  (cached:bool -> Opm_core.Compiled_model.t -> 'a) ->
  'a
(** Run one request against the plant [key]: pin the entry, compile it
    if this request is the first ([cached] tells the callback whether
    it reused an existing model), run the callback under the entry
    lock, unpin. Exceptions from [compile] evict the placeholder and
    re-raise; exceptions from the callback unpin and re-raise. *)

val length : t -> int
(** Plants currently resident. *)

val pinned : t -> int
(** Entries with in-flight requests right now. *)

val hits : t -> int
(** Requests that found their plant resident. *)

val misses : t -> int
(** Requests that had to compile. *)

val evictions : t -> int

val stats_json : t -> Opm_obs.Json.t
(** [{capacity, length, pinned, hits, misses, evictions, plants}] with
    one [{plant, requests, queries, factorisations, factor_reuse}]
    row per resident entry — the per-plant factor statistics the
    [/metrics] endpoint exposes. *)
