(* The opm_serve daemon: accept thread + one thread per keep-alive
   connection, requests dispatched as Compiled_model queries against
   the shared plant cache. Every failure path funnels into one
   structured-JSON response helper — a client can observe a 4xx/5xx
   body or a correct answer, never a raw exception, a hang, or a
   silently wrong result (the serving extension of the resilience
   invariant, exercised by the Accept/Request_dispatch fault sites). *)

module Fault = Opm_robust.Fault
module Budget = Opm_robust.Budget
module Opm_error = Opm_robust.Opm_error
module Compiled_model = Opm_core.Compiled_model
module Window = Opm_core.Window
module Sim_result = Opm_core.Sim_result
module Grid = Opm_basis.Grid
module Mna = Opm_circuit.Mna
module Json = Opm_obs.Json
module Metrics = Opm_obs.Metrics

type config = {
  host : string;
  port : int;
  backlog : int;
  max_header : int;
  max_body : int;
  max_steps : int;
  cache_capacity : int;
  deadline_s : float option;
  read_timeout_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    backlog = 64;
    max_header = 16 * 1024;
    max_body = 1024 * 1024;
    max_steps = 200_000;
    cache_capacity = 16;
    deadline_s = None;
    read_timeout_s = 30.0;
  }

type t = {
  cfg : config;
  sock : Unix.file_descr;
  bound_port : int;
  cache : Model_cache.t;
  running : bool Atomic.t;
  active : int Atomic.t;
  request_count : int Atomic.t;
  started : float;
  conns_mu : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
  mutable stopped : bool;
}

let m_requests = Metrics.counter "serve.requests"
let m_2xx = Metrics.counter "serve.responses_2xx"
let m_4xx = Metrics.counter "serve.responses_4xx"
let m_5xx = Metrics.counter "serve.responses_5xx"
let m_solve = Metrics.counter "serve.solve"
let m_faults = Metrics.counter "serve.faults_injected"
let h_request = Metrics.histogram "serve.request_seconds"

let count_status status =
  if status < 400 then Metrics.incr m_2xx
  else if status < 500 then Metrics.incr m_4xx
  else Metrics.incr m_5xx

(* Best-effort response write: the peer may be gone (EPIPE with SIGPIPE
   ignored, ECONNRESET) — that ends the connection, not the daemon. *)
let respond fd ~status ?close ~body () =
  count_status status;
  try
    Http.write_response fd ~status ?close ~body ();
    true
  with Unix.Unix_error _ -> false

let reject_of_exn = function
  | Protocol.Reject { status; code; message } -> Some (status, code, message)
  | Opm_error.Error e ->
      let status, code = Protocol.status_of_error e in
      Some (status, code, Opm_error.to_string e)
  | Window.Interrupted { error; _ } ->
      let status, code = Protocol.status_of_error error in
      Some (status, code, Opm_error.to_string error)
  | Invalid_argument msg -> Some (400, "request", msg)
  | _ -> None

(* ---- endpoint bodies ---- *)

let health_body t =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "opm-serve-v1");
         ("status", Json.String "ok");
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
         ("requests", Json.Int (Atomic.get t.request_count));
         ("active_connections", Json.Int (Atomic.get t.active));
         ("plants", Json.Int (Model_cache.length t.cache));
         ("pinned", Json.Int (Model_cache.pinned t.cache));
       ])

let metrics_body t =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "opm-serve-v1");
         ( "server",
           Json.Obj
             [
               ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
               ("requests", Json.Int (Atomic.get t.request_count));
               ("active_connections", Json.Int (Atomic.get t.active));
             ] );
         ("cache", Model_cache.stats_json t.cache);
         ("fault", Fault.stats_json ());
         ("metrics", Metrics.snapshot ());
       ])

let handle_solve t body =
  Metrics.incr m_solve;
  let parsed = Protocol.parse_request ~max_steps:t.cfg.max_steps body in
  let a = parsed.Protocol.analysis in
  let sys, sources =
    try Mna.stamp ?outputs:(Protocol.probe_outputs a) parsed.Protocol.netlist
    with Invalid_argument message ->
      raise (Protocol.Reject { status = 400; code = "request"; message })
  in
  let key =
    Protocol.fingerprint ~sys ~t_end:a.t_end ~steps:a.steps ~window:a.window
      ~memory_len:a.memory_len ~basis:a.basis
  in
  let deadline_s =
    match a.deadline_s with Some _ as d -> d | None -> t.cfg.deadline_s
  in
  let budget = Option.map (fun d -> Budget.create ~deadline_s:d ()) deadline_s in
  Model_cache.with_model t.cache ~key
    ~compile:(fun () ->
      let grid = Grid.uniform ~t_end:a.t_end ~m:a.steps in
      Compiled_model.compile ~basis:a.basis ?window:a.window
        ?memory_len:a.memory_len ~grid sys)
    (fun ~cached model ->
      let result = Compiled_model.solve ?budget model sources in
      Protocol.ok_body ~plant:key ~cached
        ~factorisations:(Compiled_model.factorisations model)
        ~factor_reuse:(Compiled_model.factor_reuse model)
        ~queries:(Compiled_model.queries model)
        ~outputs:result.Sim_result.outputs)

(* strip any query string before matching the path *)
let path_of_target target =
  match String.index_opt target '?' with
  | Some i -> String.sub target 0 i
  | None -> target

let route t (req : Http.request) =
  match (req.meth, path_of_target req.target) with
  | ("GET" | "HEAD"), "/health" -> (200, health_body t)
  | ("GET" | "HEAD"), "/metrics" -> (200, metrics_body t)
  | "POST", "/solve" -> (
      match handle_solve t req.body with
      | body -> (200, body)
      | exception e -> (
          match reject_of_exn e with
          | Some (status, code, message) ->
              (status, Protocol.error_body ~status ~code ~message)
          | None ->
              ( 500,
                Protocol.error_body ~status:500 ~code:"internal"
                  ~message:(Printexc.to_string e) )))
  | _, ("/health" | "/metrics" | "/solve") ->
      ( 405,
        Protocol.error_body ~status:405 ~code:"method"
          ~message:
            (Printf.sprintf "%s does not accept %s" (path_of_target req.target)
               req.meth) )
  | _, path ->
      ( 404,
        Protocol.error_body ~status:404 ~code:"path"
          ~message:(Printf.sprintf "no such endpoint %S" path) )

(* ---- connection lifecycle ---- *)

let register_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_mu

let unregister_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.conns_mu

let handle_conn t fd =
  (try Unix.setsockopt_float fd SO_RCVTIMEO t.cfg.read_timeout_s
   with Unix.Unix_error _ -> ());
  let conn = Http.conn fd in
  let closing = ref false in
  (try
     while (not !closing) && Atomic.get t.running do
       match
         Http.read_request ~max_header:t.cfg.max_header
           ~max_body:t.cfg.max_body conn
       with
       | None -> closing := true
       | exception Http.Error { status; message } ->
           (* framing violation: structured one-liner, then close — the
              byte stream is unsynchronised so keep-alive is over *)
           ignore
             (respond fd ~status ~close:true
                ~body:(Protocol.error_body ~status ~code:"http" ~message)
                ());
           closing := true
       | Some req ->
           Atomic.incr t.request_count;
           Metrics.incr m_requests;
           let t0 = Metrics.lap_start () in
           if Http.wants_close req then closing := true;
           let injected =
             match Fault.fire Request_dispatch with
             | None -> false
             | Some Latency ->
                 Fault.latency_sleep ();
                 false
             | Some kind ->
                 (* no mechanical simulation at this site: refuse the
                    request with a structured 503 rather than risk
                    answering wrongly *)
                 Metrics.incr m_faults;
                 ignore
                   (respond fd ~status:503
                      ~body:
                        (Protocol.error_body ~status:503 ~code:"fault-injected"
                           ~message:
                             (Printf.sprintf "injected %s at request-dispatch"
                                (Fault.kind_to_string kind)))
                      ());
                 true
           in
           if not injected then begin
             let status, body = route t req in
             if not (respond fd ~status ~close:!closing ~body ()) then
               closing := true
           end;
           ignore (Metrics.lap h_request t0)
     done
   with _ -> ());
  unregister_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr t.active

let deny_conn fd kind =
  Metrics.incr m_faults;
  (try
     Http.write_response fd ~status:503 ~close:true
       ~body:
         (Protocol.error_body ~status:503 ~code:"fault-injected"
            ~message:(Printf.sprintf "injected %s at accept" (Fault.kind_to_string kind)))
       ()
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_conn t fd =
  Atomic.incr t.active;
  register_conn t fd;
  ignore (Thread.create (fun () -> handle_conn t fd) ())

let accept_loop t =
  let continue = ref true in
  while !continue && Atomic.get t.running do
    match Unix.accept t.sock with
    | fd, _ -> (
        match Fault.fire Accept with
        | None -> spawn_conn t fd
        | Some Latency ->
            Fault.latency_sleep ();
            spawn_conn t fd
        | Some kind -> deny_conn fd kind)
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* listening socket closed (stop) or unusable: exit the loop *)
        continue := false
  done

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ | (exception Not_found) ->
          invalid_arg (Printf.sprintf "opm_serve: cannot resolve host %S" host))

let start ?(config = default_config) () =
  (* a peer hanging up mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Metrics.set_enabled true;
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt sock SO_REUSEADDR true;
  (try Unix.bind sock (ADDR_INET (resolve_host config.host, config.port))
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock config.backlog;
  let bound_port =
    match Unix.getsockname sock with
    | ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      cfg = config;
      sock;
      bound_port;
      cache = Model_cache.create ~capacity:config.cache_capacity ();
      running = Atomic.make true;
      active = Atomic.make 0;
      request_count = Atomic.make 0;
      started = Unix.gettimeofday ();
      conns_mu = Mutex.create ();
      conns = [];
      accept_thread = None;
      stopped = false;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let port t = t.bound_port
let cache t = t.cache
let requests t = Atomic.get t.request_count

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.running false;
    (* closing the listener pops the accept loop out of [accept] *)
    (try Unix.shutdown t.sock SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* shut down live connections so blocked reads see EOF now instead
       of after the receive timeout *)
    Mutex.lock t.conns_mu;
    let live = t.conns in
    Mutex.unlock t.conns_mu;
    List.iter
      (fun fd -> try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Atomic.get t.active > 0 && Unix.gettimeofday () < deadline do
      Thread.yield ();
      Unix.sleepf 0.002
    done
  end
