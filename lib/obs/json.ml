type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest decimal that round-trips; JSON has no NaN/Inf, so those
   degrade to null and the schema validator rejects them downstream *)
let float_to buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else begin
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    Buffer.add_string buf s
  end

let rec print ~indent ~level buf v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c = Buffer.add_char buf c in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let items ~close_char xs emit =
    match xs with
    | [] -> Buffer.add_char buf close_char
    | _ ->
        newline ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            if indent then pad (level + 1);
            emit x)
          xs;
        newline ();
        if indent then pad level;
        Buffer.add_char buf close_char
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to buf x
  | String s -> escape_to buf s
  | List xs ->
      sep_open '[';
      items ~close_char:']' xs (print ~indent ~level:(level + 1) buf)
  | Obj kvs ->
      sep_open '{';
      items ~close_char:'}' kvs (fun (k, v) ->
          escape_to buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          print ~indent ~level:(level + 1) buf v)

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  print ~indent ~level:0 buf v;
  Buffer.contents buf

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel ?indent oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)

exception Parse_error of { pos : int; message : string }

type state = { s : string; mutable pos : int }

let fail st message = raise (Parse_error { pos = st.pos; message })

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf (Option.get (peek st));
            advance st;
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
            let hex = String.sub st.s st.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail st "invalid \\u escape"
            in
            st.pos <- st.pos + 4;
            (* ASCII decodes exactly; anything wider degrades to '?' *)
            Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
            go ()
        | Some c -> fail st (Printf.sprintf "invalid escape \\%c" c)
        | None -> fail st "unterminated escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  let has c = String.contains text c in
  if (not (has '.')) && (not (has 'e')) && not (has 'E') then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail st (Printf.sprintf "invalid number %S" text))
  else
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let elems = ref [] in
        let rec items () =
          let v = parse_value st in
          elems := v :: !elems;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items ()
          | Some ']' -> advance st
          | _ -> fail st "expected , or ] in array"
        in
        items ();
        List (List.rev !elems)
      end
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> fail st (Printf.sprintf "trailing garbage starting at %c" c));
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
