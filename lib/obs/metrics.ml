let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* lock-free update of a float cell *)
let rec update_float cell f =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (f old)) then update_float cell f

type counter = { c_name : string; count : int Atomic.t }

type gauge = {
  g_name : string;
  last : float Atomic.t;
  g_min : float Atomic.t;
  g_max : float Atomic.t;
}

(* 5 buckets per decade over [1e-9, 1e3) plus one clamp bucket at each
   end: bucket 0 catches values below 1e-9 (including 0), bucket 61
   values of 1e3 and above *)
let buckets_per_decade = 5

let decade_lo = -9

let decade_hi = 3

let bucket_count = ((decade_hi - decade_lo) * buckets_per_decade) + 2

let bucket_lower_bound i =
  if i <= 0 then 0.0
  else
    10.0
    ** (float_of_int decade_lo
       +. (float_of_int (i - 1) /. float_of_int buckets_per_decade))

(* hot-path bucket lookup: binary search over the precomputed bounds
   (6 cache-hot comparisons) instead of a libm log10 per observation;
   by construction it agrees exactly with [bucket_lower_bound] at the
   boundaries *)
let bounds = Array.init bucket_count bucket_lower_bound

let bucket_of v =
  if not (v > 1e-9) (* catches <= 1e-9, NaN *) then 0
  else begin
    (* largest i with bounds.(i) <= v *)
    let lo = ref 1 and hi = ref (bucket_count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if bounds.(mid) <= v then lo := mid else hi := mid - 1
    done;
    !lo
  end

(* no separate count cell: the total is the sum of the bucket counts,
   recovered at read time — one fewer atomic RMW per observation *)
type histogram = {
  h_name : string;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array;
}

type instrument = C of counter | G of gauge | H of histogram

(* The registry mutex guards only instrument creation and snapshotting —
   recording never takes it. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let find_or_create name make =
  Mutex.lock registry_mutex;
  let i =
    match Hashtbl.find_opt registry name with
    | Some i -> i
    | None ->
        let i = make () in
        Hashtbl.add registry name i;
        i
  in
  Mutex.unlock registry_mutex;
  i

let counter name =
  match
    find_or_create name (fun () -> C { c_name = name; count = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let incr ?(by = 1) c =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.count by)

let counter_value c = Atomic.get c.count

let gauge name =
  match
    find_or_create name (fun () ->
        G
          {
            g_name = name;
            last = Atomic.make Float.nan;
            g_min = Atomic.make Float.infinity;
            g_max = Atomic.make Float.neg_infinity;
          })
  with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let set_gauge g v =
  if Atomic.get enabled_flag then begin
    Atomic.set g.last v;
    update_float g.g_min (fun old -> Float.min old v);
    update_float g.g_max (fun old -> Float.max old v)
  end

let gauge_last g = Atomic.get g.last

let gauge_max g = Atomic.get g.g_max

let histogram name =
  match
    find_or_create name (fun () ->
        H
          {
            h_name = name;
            h_sum = Atomic.make 0.0;
            h_min = Atomic.make Float.infinity;
            h_max = Atomic.make Float.neg_infinity;
            h_buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
          })
  with
  | H h -> h
  | C _ | G _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let observe h v =
  if Atomic.get enabled_flag then begin
    update_float h.h_sum (fun old -> old +. v);
    (* fast path: min/max rarely move once warm, so check with a plain
       load before paying for a CAS loop *)
    if not (v >= Atomic.get h.h_min) then
      update_float h.h_min (fun old -> Float.min old v);
    if not (v <= Atomic.get h.h_max) then
      update_float h.h_max (fun old -> Float.max old v);
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)
  end

let time h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    observe h (Unix.gettimeofday () -. t0);
    r
  end

(* chained per-iteration timing: one clock read per lap instead of the
   two [time] needs, for instruments sitting inside hot loops *)
let lap_start () = if Atomic.get enabled_flag then Unix.gettimeofday () else 0.0

let lap h t_prev =
  if not (Atomic.get enabled_flag) then t_prev
  else begin
    let t = Unix.gettimeofday () in
    observe h (t -. t_prev);
    t
  end

(* sampled lap: one clock read per [k]-iteration batch, observing the
   batch mean — for loops whose bodies are so short that a clock read
   per iteration would itself break the overhead budget *)
let lap_mean h k t_prev =
  if not (Atomic.get enabled_flag) then t_prev
  else begin
    let t = Unix.gettimeofday () in
    observe h ((t -. t_prev) /. float_of_int k);
    t
  end

let histogram_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.h_buckets

let histogram_sum h = Atomic.get h.h_sum

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c.count 0
      | G g ->
          Atomic.set g.last Float.nan;
          Atomic.set g.g_min Float.infinity;
          Atomic.set g.g_max Float.neg_infinity
      | H h ->
          Atomic.set h.h_sum 0.0;
          Atomic.set h.h_min Float.infinity;
          Atomic.set h.h_max Float.neg_infinity;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    registry;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let sorted_instruments () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all

(* bucket-resolution quantile: the upper bound of the bucket where the
   cumulative count crosses q *)
let quantile_est counts total q =
  if total = 0 then Float.nan
  else begin
    let target = Float.of_int total *. q in
    let acc = ref 0 in
    let result = ref (bucket_lower_bound (bucket_count - 1)) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if float_of_int !acc >= target then begin
             result := bucket_lower_bound (i + 1);
             raise Exit
           end)
         counts
     with Exit -> ());
    !result
  end

let hist_json h =
  let counts = Array.map Atomic.get h.h_buckets in
  let total = Array.fold_left ( + ) 0 counts in
  let buckets =
    Array.to_list counts
    |> List.mapi (fun i c ->
           if c = 0 then None
           else Some (Json.List [ Json.Float (bucket_lower_bound i); Json.Int c ]))
    |> List.filter_map Fun.id
  in
  Json.Obj
    [
      ("count", Json.Int total);
      ("sum", Json.Float (if total = 0 then 0.0 else Atomic.get h.h_sum));
      ("min", if total = 0 then Json.Null else Json.Float (Atomic.get h.h_min));
      ("max", if total = 0 then Json.Null else Json.Float (Atomic.get h.h_max));
      ( "mean",
        if total = 0 then Json.Null
        else Json.Float (Atomic.get h.h_sum /. float_of_int total) );
      ("p50", Json.Float (quantile_est counts total 0.5));
      ("p90", Json.Float (quantile_est counts total 0.9));
      ("p99", Json.Float (quantile_est counts total 0.99));
      ("buckets", Json.List buckets);
    ]

let snapshot () =
  let all = sorted_instruments () in
  let pick f = List.filter_map f all in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, C c -> Some (name, Json.Int (Atomic.get c.count))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function
            | name, G g ->
                Some
                  ( name,
                    Json.Obj
                      [
                        ("last", Json.Float (Atomic.get g.last));
                        ("min", Json.Float (Atomic.get g.g_min));
                        ("max", Json.Float (Atomic.get g.g_max));
                      ] )
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | name, H h -> Some (name, hist_json h)
            | _ -> None)) );
    ]

let to_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name (Atomic.get c.count))
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s last %.6g  min %.6g  max %.6g\n" name
               (Atomic.get g.last) (Atomic.get g.g_min) (Atomic.get g.g_max))
      | H h ->
          let n = histogram_count h in
          if n = 0 then Buffer.add_string buf (Printf.sprintf "%-40s (empty)\n" name)
          else
            Buffer.add_string buf
              (Printf.sprintf "%-40s n %d  sum %.6g  mean %.6g  min %.6g  max %.6g\n"
                 name n (Atomic.get h.h_sum)
                 (Atomic.get h.h_sum /. float_of_int n)
                 (Atomic.get h.h_min) (Atomic.get h.h_max)))
    (sorted_instruments ());
  Buffer.contents buf
