let schema_version = "opm-report-v1"

let make ?health ?resilience ?(run = []) () =
  let trace =
    let n = Trace.span_count () in
    if n = 0 then Json.Obj [ ("spans", Json.Int 0) ]
    else
      Json.Obj
        [
          ("spans", Json.Int n);
          ("profile", Json.String (Trace.to_profile_string ()));
        ]
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("run", Json.Obj run);
      ("metrics", Metrics.snapshot ());
      ("trace", trace);
      ("health", Option.value health ~default:Json.Null);
      ("resilience", Option.value resilience ~default:Json.Null);
    ]
