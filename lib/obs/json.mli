(** Minimal JSON tree, printer and parser.

    The observability layer is zero-dependency by design (stdlib + unix
    only), so it carries its own JSON support: enough to emit metrics
    snapshots, Chrome trace files and benchmark tables, and to parse
    them back for schema validation in CI.

    Non-finite floats have no JSON representation; {!to_string} prints
    them as [null]. Downstream schema validators treat a [null] where a
    number is required as a hard failure — that is how NaN/Inf poisoning
    of a benchmark table is caught (see [bench/validate.ml]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with 2-space
    indentation (stable key order — objects print in construction
    order). *)

val to_channel : ?indent:bool -> out_channel -> t -> unit

val to_file : ?indent:bool -> string -> t -> unit
(** Writes the document followed by a trailing newline. *)

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** Recursive-descent parser for the JSON subset this module prints
    (full standard JSON minus [\uXXXX] surrogate pairs, which decode to
    ['?']). Numbers parse as [Int] when they are exact integers without
    exponent/fraction, [Float] otherwise. Raises {!Parse_error}. *)

val of_file : string -> t

(** {2 Accessors} — total functions returning [option]; validators
    build on these. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_list_opt : t -> t list option

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; everything else is [None] — in
    particular [Null] (a serialised NaN/Inf) is [None]. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option
