let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

type span = {
  name : string;
  path : string;  (* "parent/child/…" including [name] *)
  t0 : float;  (* Unix.gettimeofday at span start *)
  dur : float;  (* seconds *)
  tid : int;  (* recording domain *)
}

(* completed spans, newest first *)
let spans : span list ref = ref []

let spans_mutex = Mutex.create ()

(* per-domain stack of open span paths *)
let open_path : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let reset () =
  Mutex.lock spans_mutex;
  spans := [];
  Mutex.unlock spans_mutex

let record s =
  Mutex.lock spans_mutex;
  spans := s :: !spans;
  Mutex.unlock spans_mutex

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get open_path in
    let path =
      match stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    Domain.DLS.set open_path (path :: stack);
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Unix.gettimeofday () -. t0 in
        Domain.DLS.set open_path stack;
        record
          {
            name;
            path;
            t0;
            dur;
            tid = (Domain.self () :> int);
          })
      f
  end

let snapshot_spans () =
  Mutex.lock spans_mutex;
  let s = !spans in
  Mutex.unlock spans_mutex;
  List.rev s

let span_count () =
  Mutex.lock spans_mutex;
  let n = List.length !spans in
  Mutex.unlock spans_mutex;
  n

let to_chrome_json () =
  let all = snapshot_spans () in
  let base =
    List.fold_left (fun acc s -> Float.min acc s.t0) Float.infinity all
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String "opm");
            ("ph", Json.String "X");
            ("ts", Json.Float ((s.t0 -. base) *. 1e6));
            ("dur", Json.Float (s.dur *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.tid);
            ("args", Json.Obj [ ("path", Json.String s.path) ]);
          ])
      all
  in
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_profile_string () =
  let all = snapshot_spans () in
  (* aggregate totals and call counts by path *)
  let agg : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt agg s.path with
      | Some (total, calls) ->
          total := !total +. s.dur;
          incr calls
      | None -> Hashtbl.add agg s.path (ref s.dur, ref 1))
    all;
  (* self time: subtract each span's duration from its parent's total *)
  let child_time : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match String.rindex_opt s.path '/' with
      | None -> ()
      | Some i ->
          let parent = String.sub s.path 0 i in
          (match Hashtbl.find_opt child_time parent with
          | Some t -> t := !t +. s.dur
          | None -> Hashtbl.add child_time parent (ref s.dur)))
    all;
  let rows =
    Hashtbl.fold
      (fun path (total, calls) acc ->
        let children =
          match Hashtbl.find_opt child_time path with
          | Some t -> !t
          | None -> 0.0
        in
        (path, !total, !calls, Float.max 0.0 (!total -. children)) :: acc)
      agg []
    |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %8s %12s %12s %12s\n" "span" "calls" "total"
       "mean" "self");
  let pp t =
    if t < 1e-3 then Printf.sprintf "%.1f us" (t *. 1e6)
    else if t < 1.0 then Printf.sprintf "%.2f ms" (t *. 1e3)
    else Printf.sprintf "%.3f s" t
  in
  List.iter
    (fun (path, total, calls, self) ->
      Buffer.add_string buf
        (Printf.sprintf "%-44s %8d %12s %12s %12s\n" path calls (pp total)
           (pp (total /. float_of_int calls))
           (pp self)))
    rows;
  Buffer.contents buf
