(** Process-wide metrics registry: named counters, gauges, log-bucketed
    histograms and wall-clock timers.

    Instruments are created once (typically at module initialisation)
    and are safe to record into from any domain — counters and
    histogram buckets are [Atomic]s, gauges use a CAS loop, so there is
    no lock on the hot path.

    Recording is gated on one process-wide flag, {b off by default}:
    with metrics disabled every recording call is a single atomic load
    and an early return, so instrumented code paths stay bit-identical
    and effectively free (the overhead budget for the fully
    instrumented Table I kernel is < 2%, see [test/test_obs.ml]).
    Instrument {e creation} is not gated — a [counter] handle obtained
    while disabled records normally once metrics are enabled. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered instrument (counts, sums, buckets, gauges).
    The registry itself — the set of instrument names — is kept. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create by name; the same name always returns the same
    instrument, whatever module asks. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** {2 Gauges} — last/min/max of a sampled quantity (condition
    estimates, fill-in, pool sizes). *)

type gauge

val gauge : string -> gauge

val set_gauge : gauge -> float -> unit

val gauge_last : gauge -> float
(** [nan] when never set. *)

val gauge_max : gauge -> float

(** {2 Histograms} — fixed log-scale buckets, 5 per decade from 1e-9 to
    1e3 (62 buckets including the two clamp ends). The layout is fixed
    so snapshots from different runs merge bucket-by-bucket. *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk; when metrics are enabled, additionally observe its
    wall-clock duration in seconds. The thunk's exceptions pass
    through untimed. *)

val lap_start : unit -> float
(** Timestamp opening a chain of {!lap} calls ([0.] when disabled). *)

val lap : histogram -> float -> float
(** [lap h t_prev] observes the elapsed time since [t_prev] and returns
    the new timestamp — one clock read per loop iteration, where
    wrapping the body in {!time} would cost two. Disabled: returns
    [t_prev], observes nothing. *)

val lap_mean : histogram -> int -> float -> float
(** [lap_mean h k t_prev] observes [(now − t_prev) / k] — the mean of
    the [k] iterations since [t_prev] — and returns the new timestamp.
    Sampling variant of {!lap} for loops short enough that even one
    clock read per iteration is measurable overhead. *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val bucket_count : int
(** Number of buckets ([62]). *)

val bucket_lower_bound : int -> float
(** Inclusive lower bound of bucket [i]; bucket 0 is the underflow
    clamp ([lower bound 0]). *)

(** {2 Export} *)

val snapshot : unit -> Json.t
(** [{"counters": {name: n, …}, "gauges": {name: {last, min, max}, …},
     "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
     buckets: [[lower_bound, count], …]}, …}}] — histogram [buckets]
    lists only non-empty buckets; quantiles are bucket-resolution
    estimates. *)

val to_text : unit -> string
(** Flat human-readable dump, one instrument per line, sorted by
    name. *)
