(** One merged JSON document per run: metrics snapshot, trace profile,
    solver health, and caller-supplied run parameters.

    [Report] sits at the top of the observability layer: {!Metrics} and
    {!Trace} contribute their live state, the solver's
    {i Opm_robust.Health} report arrives pre-serialised (as [Json.t],
    via [Health.to_json] — the dependency points from [robust] to
    [obs], not the other way), and the caller adds whatever identifies
    the run (command line, model sizes, method names). *)

val schema_version : string
(** ["opm-report-v1"] — the value of the document's ["schema"] field. *)

val make :
  ?health:Json.t ->
  ?resilience:Json.t ->
  ?run:(string * Json.t) list ->
  unit ->
  Json.t
(** [{"schema": "opm-report-v1", "run": {…}, "metrics": {…},
     "trace": {"spans": n, "profile": "…"}, "health": {…} | null,
     "resilience": {…} | null}].
    The metrics snapshot is taken at call time; the trace profile is
    included only when spans were recorded. [resilience] arrives
    pre-serialised like [health] (built by the driver from
    [Opm_robust.Fault.stats_json]/[Budget.to_json] plus checkpoint lap
    timings — the dependency points from [robust] to [obs]). *)
