(** Nested wall-clock span tracing.

    Spans nest per domain (a domain-local stack tracks the open path),
    so tracing is safe under the {i Opm_parallel} pool: each worker's
    spans carry its own thread id in the export. Completed spans
    accumulate in a process-wide buffer.

    Like {!Metrics}, tracing is gated on one flag, {b off by default}:
    a disabled {!with_span} runs the thunk directly — no clock reads,
    no allocation beyond the closure — so instrumented code stays
    bit-identical and cheap when off.

    Two exports:
    - {!to_chrome_json}: the Chrome [trace_event] format (complete
      ["ph": "X"] events), loadable in [chrome://tracing] / Perfetto;
    - {!to_profile_string}: a flat text profile aggregated by span
      path (calls, total, mean, self time). *)

val enabled : unit -> bool

val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans (open span stacks are per-domain and not
    touched — do not call from inside an open span). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span named [name], nested
    under the innermost open span of the calling domain. The span is
    recorded even when [f] raises. Disabled: exactly [f ()]. *)

val span_count : unit -> int
(** Completed spans currently buffered. *)

val to_chrome_json : unit -> Json.t
(** [{"traceEvents": [{name, cat, ph, ts, dur, pid, tid}, …],
     "displayTimeUnit": "ms"}] — [ts]/[dur] in microseconds, [ts]
    relative to the first recorded span; [tid] is the recording
    domain's id. *)

val to_profile_string : unit -> string
(** One line per distinct span path (["a/b/c"]), sorted by total time:
    call count, total, mean, and self time (total minus the time spent
    in child spans). *)
