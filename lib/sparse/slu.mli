open Opm_numkit

(** Sparse LU factorisation (Gilbert–Peierls left-looking algorithm with
    threshold pivoting) with a symbolic/numeric split.

    This is the [O(n^β)] "matrix-vector solving" primitive of the paper's
    complexity analysis (§IV): circuit matrices [E, A] have [O(n)]
    nonzeros, and OPM factors [d_ii·E − A] once per distinct diagonal
    entry of the operational matrix, then back-solves per column.

    Each column of the factors is computed by a sparse triangular solve
    whose nonzero pattern is found by depth-first search on the graph of
    the already-computed [L] (the classic GP reach), so the work is
    proportional to arithmetic operations, not to [n].

    Fill is controlled three ways: a symmetric fill-reducing reordering
    ({!Amd} at paper scale, {!Rcm} for small bandwidth-friendly systems,
    picked by the [`Auto] heuristic); *threshold* pivoting — the
    diagonal candidate is kept whenever its magnitude is within
    [pivot_tol] of the column maximum, so the fill-reducing order
    survives; otherwise the column maximum is chosen (stability first);
    and KLU-style *row equilibration* — the factors internally hold
    [R·A] with [R = diag(1/max|row|)], so a badly scaled pencil (an
    inductor-current row's [L/h] next to ±1 incidence entries) still
    keeps its diagonal pivots. Solves compensate for [R], so the API
    is exactly [A x = b]; the scale is recomputed from the values on
    every {!refactor}, preserving the bit-identity contract.

    The [⌈m⌉] pencils [d_ii·E − A] of one OPM solve share one sparsity
    pattern and differ only in values, so the symbolic work — ordering,
    elimination reaches, fill pattern — is computed once by {!analyze}
    and replayed numerically by {!refactor}. A [refactor] on the very
    values that were analyzed reproduces the fresh factorisation bit for
    bit (same operations in the same order). Factor storage is Bigarray
    ([int32] indices, [float64] values), off the OCaml heap, so
    paper-scale fill (tens of millions of entries at n ≈ 100K) adds no
    GC scan pressure. *)

type t
(** A numeric factorisation; immutable once built (the cached condition
    estimate aside), so concurrent back-solves are safe. *)

type symbolic
(** The value-independent part of a factorisation: ordering, pivot
    sequence, fill patterns, elimination schedule, and the scatter map
    back into the analyzed matrix's value array. *)

type ordering = [ `Amd | `Auto | `Natural | `Rcm ]
(** [`Auto] (the default) picks {!Amd} above a few hundred unknowns and
    {!Rcm} below, where bandwidth ordering's locality wins. *)

exception Singular of int
(** Numerically zero pivot column, reported in the *original* (not
    fill-reduced) ordering so callers can name the offending unknown —
    under [`Amd] and [`Rcm] alike. *)

exception Unstable of int
(** Raised by {!refactor} when the recorded pivot of the named unknown
    (original ordering) has become too small relative to its column —
    the pattern still matches but the values need a fresh {!analyze}. *)

exception Pattern_mismatch
(** Raised by {!refactor} when the matrix's sparsity pattern differs
    from the analyzed one. *)

val analyze : ?ordering:ordering -> ?pivot_tol:float -> Csr.t -> symbolic * t
(** Full factorisation returning both the reusable symbolic object and
    the numeric factors for the given values. Defaults
    [ordering = `Auto], [pivot_tol = 0.1].

    [pivot_tol] must lie in [(0, 1]]: it is the fraction of the column
    maximum a diagonal candidate must reach to be kept, so [1.0] means
    the column maximum always wins — strict partial pivoting, maximum
    stability, no regard for fill — and values near 0 keep the
    fill-reducing order at the cost of stability. Raises
    [Invalid_argument] on non-square input or a [pivot_tol] outside
    [(0, 1]]; raises {!Singular} when no acceptable pivot exists. *)

val refactor : ?stability_tol:float -> symbolic -> Csr.t -> t
(** Numeric-only refactorisation of a matrix with the *exact* sparsity
    pattern that was analyzed (verified; {!Pattern_mismatch} otherwise).
    Replays the recorded elimination schedule with the new values —
    no ordering, no reach DFS, no pattern discovery — so one symbolic
    analysis serves every pencil of a solve. On the values that were
    analyzed the result is bit-identical to the fresh factorisation.

    The pivot sequence is fixed by the analysis, so each pivot is
    re-checked against the new values: {!Singular} if its column is
    numerically zero, {!Unstable} if the pivot magnitude falls below
    [stability_tol] (default [0.01], must be within [[0, 1]]) times the
    column maximum. Either way no factor with a poisoned pivot is ever
    returned. *)

val factor : ?ordering:ordering -> ?pivot_tol:float -> Csr.t -> t
(** [analyze] without keeping the symbolic part. *)

val factor_b : ?ordering:ordering -> ?pivot_tol:float -> Bcsr.t -> t
(** {!factor} reading Bigarray-backed storage: the numeric scatter pulls
    values straight from the [float64] Bigarray (no copy), so the
    factorisation agrees with [factor (Bcsr.to_csr b)] bit for bit. *)

val factor_hinted :
  ?ordering:ordering ->
  ?pivot_tol:float ->
  ?stability_tol:float ->
  hint:symbolic option ref ->
  Csr.t ->
  t
(** Factor-with-reuse: try {!refactor} against [!hint], and on [None],
    {!Pattern_mismatch}, {!Unstable} or {!Singular} fall back to a fresh
    {!analyze}, storing its symbolic object back into [hint]. The hint
    ref makes reuse *explicit* — callers that must stay bit-identical
    across runs (e.g. serial-vs-parallel sweeps) keep separate hints. *)

val symbolic_of : t -> symbolic
(** The symbolic object a factorisation was built from (or produced). *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] reusing the factorisation. *)

val solve_many : ?pool:Opm_parallel.Pool.t -> t -> Vec.t array -> Vec.t array
(** Batched independent back-solves, domain-sharded on an
    {!Opm_parallel.Pool} (default the global pool). The factors are
    immutable and every solve owns its scratch, so the result is
    bit-identical to [Array.map (solve f)] in any pool size. *)

val solve_transpose : t -> Vec.t -> Vec.t
(** Solve [Aᵀ x = b] from the same factors (needed by {!cond_est}). *)

val cond_est : t -> float
(** Hager/Higham 1-norm condition estimate [‖A‖₁ · est(‖A⁻¹‖₁)] — a
    handful of triangular solves on the existing factors. Computed on
    first call, then cached on the factor, so cached factorisations
    carry their estimate for free. *)

val solve_dense : Csr.t -> Vec.t -> Vec.t
(** One-shot convenience. *)

val nnz_factors : t -> int
(** Fill-in diagnostic: nonzeros of [L] + [U]. *)
