open Opm_numkit

(** Sparse LU factorisation (Gilbert–Peierls left-looking algorithm with
    partial pivoting).

    This is the [O(n^β)] "matrix-vector solving" primitive of the paper's
    complexity analysis (§IV): circuit matrices [E, A] have [O(n)]
    nonzeros, and OPM factors [d_ii·E − A] once per distinct diagonal
    entry of the operational matrix, then back-solves per column.

    Each column of the factors is computed by a sparse triangular solve
    whose nonzero pattern is found by depth-first search on the graph of
    the already-computed [L] (the classic GP reach), so the work is
    proportional to arithmetic operations, not to [n].

    Fill is controlled two ways: a symmetric {!Rcm} reordering applied
    before the factorisation (default), and *threshold* pivoting — the
    diagonal candidate is kept whenever its magnitude is within
    [pivot_tol] of the column maximum, so the fill-reducing order
    survives; otherwise the column maximum is chosen (stability first). *)

type t

exception Singular of int
(** Numerically zero pivot column, reported in the *original* (not
    fill-reduced) ordering so callers can name the offending unknown. *)

val factor : ?ordering:[ `Rcm | `Natural ] -> ?pivot_tol:float -> Csr.t -> t
(** Default [ordering = `Rcm], [pivot_tol = 0.1].

    [pivot_tol] must lie in [(0, 1]]: it is the fraction of the column
    maximum a diagonal candidate must reach to be kept, so [1.0] means
    the column maximum always wins — strict partial pivoting, maximum
    stability, no regard for fill — and values near 0 keep the
    fill-reducing order at the cost of stability. Raises
    [Invalid_argument] on non-square input or a [pivot_tol] outside
    [(0, 1]]; raises {!Singular} when no acceptable pivot exists. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] reusing the factorisation. *)

val solve_transpose : t -> Vec.t -> Vec.t
(** Solve [Aᵀ x = b] from the same factors (needed by {!cond_est}). *)

val cond_est : t -> float
(** Hager/Higham 1-norm condition estimate [‖A‖₁ · est(‖A⁻¹‖₁)] — a
    handful of triangular solves on the existing factors. Computed on
    first call, then cached on the factor, so cached factorisations
    carry their estimate for free. *)

val solve_dense : Csr.t -> Vec.t -> Vec.t
(** One-shot convenience. *)

val nnz_factors : t -> int
(** Fill-in diagnostic: nonzeros of [L] + [U]. *)
