open Opm_numkit

(** Bigarray-backed CSR storage: [int32] structure and [float64] values
    held off the OCaml heap, so paper-scale pencils (n ≈ 100K, nnz in
    the millions) contribute nothing to GC scan work.

    Every operation mirrors the arithmetic of the array-backed {!Csr}
    op term for term in the same order, so results agree with {!Csr}
    to the last bit — a contract the differential tests enforce. *)

type int_ba = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  rows : int;
  cols : int;
  row_ptr : int_ba;
  col_ind : int_ba;
  values : float_ba;
}

val of_csr : Csr.t -> t
val to_csr : t -> Csr.t

val dims : t -> int * int
val nnz : t -> int

val mul_vec : t -> Vec.t -> Vec.t
(** [A x]; bit-identical to {!Csr.mul_vec} on the same matrix. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [Aᵀ x]; bit-identical to {!Csr.tmul_vec}. *)

val scale : float -> t -> t
val add : ?alpha:float -> ?beta:float -> t -> t -> t
(** [add ~alpha ~beta a b = alpha·a + beta·b] over the union pattern,
    keeping exact zeros, like {!Csr.add}. *)
