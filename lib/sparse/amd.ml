(* Approximate-minimum-degree ordering, a port of the cs_amd quotient-graph
   algorithm (Davis, "Direct Methods for Sparse Linear Systems", CSparse).
   Works on the symmetrized pattern A + Aᵀ with the diagonal dropped, so it
   accepts the same unsymmetric circuit pencils as {!Rcm}.

   The quotient graph lives in one integer workspace [ci] with elbow room
   t = cnz + cnz/5 + 2n; eliminated pivots become *elements* whose adjacency
   lists are compacted in place, with garbage collection when the elbow room
   runs out. Degrees are approximate (Amestoy/Davis/Duff bounds), dense rows
   are deferred to a placeholder element [n], mass elimination and hash-based
   supervariable detection collapse indistinguishable nodes, and the final
   permutation is a post-order of the assembly tree. *)

let flip i = -i - 2
(* flip is an involution with flip (-1) = -1, used to tag absorbed objects *)

let wclear mark lemax w n =
  if mark < 2 || mark + lemax < 0 then begin
    for k = 0 to n - 1 do
      if w.(k) <> 0 then w.(k) <- 1
    done;
    2
  end
  else mark

(* iterative depth-first post-order over the assembly tree stored as
   child lists (head/next); emits into [post] starting at position [k] *)
let tdfs root k head next post stack =
  let k = ref k in
  let top = ref 0 in
  stack.(0) <- root;
  while !top >= 0 do
    let p = stack.(!top) in
    let i = head.(p) in
    if i = -1 then begin
      decr top;
      post.(!k) <- p;
      incr k
    end
    else begin
      head.(p) <- next.(i);
      incr top;
      stack.(!top) <- i
    end
  done;
  !k

let ordering a =
  let n, m = Csr.dims a in
  if n <> m then invalid_arg "Amd.ordering: non-square matrix";
  if n = 0 then [||]
  else begin
    (* pattern of A + Aᵀ without the diagonal, in one flat workspace *)
    let pat = Csr.add a (Csr.transpose a) in
    let cnz0 = ref 0 in
    for i = 0 to n - 1 do
      for k = pat.Csr.row_ptr.(i) to pat.Csr.row_ptr.(i + 1) - 1 do
        if pat.Csr.col_ind.(k) <> i then incr cnz0
      done
    done;
    let cnz0 = !cnz0 in
    let nzmax = cnz0 + (cnz0 / 5) + (2 * n) in
    let cp = Array.make (n + 1) 0 in
    let ci = Array.make (max 1 nzmax) 0 in
    let pos = ref 0 in
    for i = 0 to n - 1 do
      cp.(i) <- !pos;
      for k = pat.Csr.row_ptr.(i) to pat.Csr.row_ptr.(i + 1) - 1 do
        let j = pat.Csr.col_ind.(k) in
        if j <> i then begin
          ci.(!pos) <- j;
          incr pos
        end
      done
    done;
    cp.(n) <- !pos;
    let cnz = ref !pos in
    let dense =
      min (n - 2) (max 16 (int_of_float (10.0 *. sqrt (float_of_int n))))
    in
    (* quotient-graph state, one slot per node plus the placeholder [n] *)
    let len = Array.make (n + 1) 0 in
    let nv = Array.make (n + 1) 1 in
    let next = Array.make (n + 1) (-1) in
    let head = Array.make (n + 1) (-1) in
    let elen = Array.make (n + 1) 0 in
    let degree = Array.make (n + 1) 0 in
    let w = Array.make (n + 1) 1 in
    let hhead = Array.make (n + 1) (-1) in
    let last = Array.make (n + 1) (-1) in
    for k = 0 to n - 1 do
      len.(k) <- cp.(k + 1) - cp.(k)
    done;
    len.(n) <- 0;
    for i = 0 to n do
      degree.(i) <- len.(i)
    done;
    let mark = ref (wclear 0 0 w n) in
    elen.(n) <- -2;
    cp.(n) <- -1;
    w.(n) <- 0;
    let nel = ref 0 in
    (* initial degree lists: empty nodes retire immediately, dense nodes
       are absorbed into the placeholder element and ordered last *)
    for i = 0 to n - 1 do
      let d = degree.(i) in
      if d = 0 then begin
        elen.(i) <- -2;
        incr nel;
        cp.(i) <- -1;
        w.(i) <- 0
      end
      else if d > dense then begin
        nv.(i) <- 0;
        elen.(i) <- -1;
        incr nel;
        cp.(i) <- flip n;
        nv.(n) <- nv.(n) + 1
      end
      else begin
        if head.(d) <> -1 then last.(head.(d)) <- i;
        next.(i) <- head.(d);
        head.(d) <- i
      end
    done;
    let mindeg = ref 0 in
    let lemax = ref 0 in
    while !nel < n do
      (* select a pivot of minimum approximate degree *)
      let k = ref (-1) in
      let scanning = ref true in
      while !scanning do
        if !mindeg < n then begin
          k := head.(!mindeg);
          if !k = -1 then incr mindeg else scanning := false
        end
        else scanning := false
      done;
      let k = !k in
      if next.(k) <> -1 then last.(next.(k)) <- -1;
      head.(!mindeg) <- next.(k);
      let elenk = elen.(k) in
      let nvk = ref nv.(k) in
      nel := !nel + !nvk;
      (* garbage-collect [ci] when the elbow room is exhausted *)
      if elenk > 0 && !cnz + !mindeg >= nzmax then begin
        for j = 0 to n - 1 do
          let p = cp.(j) in
          if p >= 0 then begin
            cp.(j) <- ci.(p);
            ci.(p) <- flip j
          end
        done;
        let q = ref 0 and p = ref 0 in
        while !p < !cnz do
          let j = flip ci.(!p) in
          incr p;
          if j >= 0 then begin
            ci.(!q) <- cp.(j);
            cp.(j) <- !q;
            incr q;
            for _ = 0 to len.(j) - 2 do
              ci.(!q) <- ci.(!p);
              incr q;
              incr p
            done
          end
        done;
        cnz := !q
      end;
      (* construct element Lk from k's element list and node list *)
      let dk = ref 0 in
      nv.(k) <- - !nvk;
      let p = ref cp.(k) in
      let pk1 = if elenk = 0 then !p else !cnz in
      let pk2 = ref pk1 in
      for k1 = 1 to elenk + 1 do
        let e, pj0, ln =
          if k1 > elenk then (k, !p, len.(k) - elenk)
          else begin
            let e = ci.(!p) in
            incr p;
            (e, cp.(e), len.(e))
          end
        in
        let pj = ref pj0 in
        for _ = 1 to ln do
          let i = ci.(!pj) in
          incr pj;
          let nvi = nv.(i) in
          if nvi > 0 then begin
            dk := !dk + nvi;
            nv.(i) <- -nvi;
            ci.(!pk2) <- i;
            incr pk2;
            if next.(i) <> -1 then last.(next.(i)) <- last.(i);
            if last.(i) <> -1 then next.(last.(i)) <- next.(i)
            else head.(degree.(i)) <- next.(i)
          end
        done;
        if e <> k then begin
          cp.(e) <- flip k;
          w.(e) <- 0
        end
      done;
      if elenk <> 0 then cnz := !pk2;
      degree.(k) <- !dk;
      cp.(k) <- pk1;
      len.(k) <- !pk2 - pk1;
      elen.(k) <- -2;
      (* scan 1: approximate |Le \ Lk| for each element adjacent to Lk *)
      mark := wclear !mark !lemax w n;
      for pk = pk1 to !pk2 - 1 do
        let i = ci.(pk) in
        let eln = elen.(i) in
        if eln > 0 then begin
          let nvi = -nv.(i) in
          let wnvi = !mark - nvi in
          for p = cp.(i) to cp.(i) + eln - 1 do
            let e = ci.(p) in
            if w.(e) >= !mark then w.(e) <- w.(e) - nvi
            else if w.(e) <> 0 then w.(e) <- degree.(e) + wnvi
          done
        end
      done;
      (* scan 2: approximate external degrees, aggressive absorption,
         mass elimination, and hashing for supervariable detection *)
      for pk = pk1 to !pk2 - 1 do
        let i = ci.(pk) in
        let p1 = cp.(i) in
        let p2 = p1 + elen.(i) - 1 in
        let pn = ref p1 in
        let h = ref 0 and d = ref 0 in
        for p = p1 to p2 do
          let e = ci.(p) in
          if w.(e) <> 0 then begin
            let dext = w.(e) - !mark in
            if dext > 0 then begin
              d := !d + dext;
              ci.(!pn) <- e;
              incr pn;
              h := !h + e
            end
            else begin
              cp.(e) <- flip k;
              w.(e) <- 0
            end
          end
        done;
        elen.(i) <- !pn - p1 + 1;
        let p3 = !pn in
        let p4 = p1 + len.(i) in
        for p = p2 + 1 to p4 - 1 do
          let j = ci.(p) in
          let nvj = nv.(j) in
          if nvj > 0 then begin
            d := !d + nvj;
            ci.(!pn) <- j;
            incr pn;
            h := !h + j
          end
        done;
        if !d = 0 then begin
          (* mass elimination: i is indistinguishable from the pivot *)
          cp.(i) <- flip k;
          let nvi = -nv.(i) in
          dk := !dk - nvi;
          nvk := !nvk + nvi;
          nel := !nel + nvi;
          nv.(i) <- 0;
          elen.(i) <- -1
        end
        else begin
          degree.(i) <- min degree.(i) !d;
          ci.(!pn) <- ci.(p3);
          ci.(p3) <- ci.(p1);
          ci.(p1) <- k;
          len.(i) <- !pn - p1 + 1;
          let h = !h mod n in
          next.(i) <- hhead.(h);
          hhead.(h) <- i;
          last.(i) <- h
        end
      done;
      degree.(k) <- !dk;
      lemax := max !lemax !dk;
      mark := wclear (!mark + !lemax) !lemax w n;
      (* supervariable detection: nodes hashing together with identical
         adjacency are merged *)
      for pk = pk1 to !pk2 - 1 do
        let i0 = ci.(pk) in
        if nv.(i0) < 0 then begin
          let h = last.(i0) in
          let i = ref hhead.(h) in
          hhead.(h) <- -1;
          let continue_bucket = ref true in
          while !continue_bucket do
            if !i <> -1 && next.(!i) <> -1 then begin
              let ic = !i in
              let ln = len.(ic) in
              let eln = elen.(ic) in
              for p = cp.(ic) + 1 to cp.(ic) + ln - 1 do
                w.(ci.(p)) <- !mark
              done;
              let jlast = ref ic in
              let j = ref next.(ic) in
              while !j <> -1 do
                let jj = !j in
                let ok = ref (len.(jj) = ln && elen.(jj) = eln) in
                let p = ref (cp.(jj) + 1) in
                while !ok && !p <= cp.(jj) + ln - 1 do
                  if w.(ci.(!p)) <> !mark then ok := false;
                  incr p
                done;
                if !ok then begin
                  cp.(jj) <- flip ic;
                  nv.(ic) <- nv.(ic) + nv.(jj);
                  nv.(jj) <- 0;
                  elen.(jj) <- -1;
                  j := next.(jj);
                  next.(!jlast) <- !j
                end
                else begin
                  jlast := jj;
                  j := next.(jj)
                end
              done;
              i := next.(ic);
              incr mark
            end
            else continue_bucket := false
          done
        end
      done;
      (* finalize Lk: compact surviving nodes and refile them by degree *)
      let p = ref pk1 in
      for pk = pk1 to !pk2 - 1 do
        let i = ci.(pk) in
        let nvi = -nv.(i) in
        if nvi > 0 then begin
          nv.(i) <- nvi;
          let d = min (degree.(i) + !dk - nvi) (n - !nel - nvi) in
          if head.(d) <> -1 then last.(head.(d)) <- i;
          next.(i) <- head.(d);
          last.(i) <- -1;
          head.(d) <- i;
          mindeg := min !mindeg d;
          degree.(i) <- d;
          ci.(!p) <- i;
          incr p
        end
      done;
      nv.(k) <- !nvk;
      len.(k) <- !p - pk1;
      if len.(k) = 0 then begin
        cp.(k) <- -1;
        w.(k) <- 0
      end;
      if elenk <> 0 then cnz := !p
    done;
    (* post-order the assembly tree: flip parents back, build child
       lists (nodes first, then elements, both high-to-low so lists come
       out ascending), and DFS from every root in ascending order *)
    for i = 0 to n - 1 do
      cp.(i) <- flip cp.(i)
    done;
    for j = 0 to n do
      head.(j) <- -1
    done;
    for j = n downto 0 do
      if nv.(j) <= 0 then begin
        next.(j) <- head.(cp.(j));
        head.(cp.(j)) <- j
      end
    done;
    for e = n downto 0 do
      if nv.(e) > 0 && cp.(e) <> -1 then begin
        next.(e) <- head.(cp.(e));
        head.(cp.(e)) <- e
      end
    done;
    let post = Array.make (n + 1) 0 in
    let stack = Array.make (n + 1) 0 in
    let emitted = ref 0 in
    for i = 0 to n do
      if cp.(i) = -1 then emitted := tdfs i !emitted head next post stack
    done;
    (* the placeholder element n is always emitted last, so the first n
       entries are the permutation over the real nodes *)
    Array.sub post 0 n
  end
