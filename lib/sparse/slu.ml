open Opm_numkit
module Metrics = Opm_obs.Metrics
module Pool = Opm_parallel.Pool
module Ba = Bigarray

(* observability instruments (no-ops unless metrics are enabled) *)
let m_factor = Metrics.counter "slu.factor"
let m_solve = Metrics.counter "slu.solve"
let m_analyze = Metrics.counter "slu.analyze"
let m_reuse = Metrics.counter "slu.symbolic_reuse"
let h_factor_seconds = Metrics.histogram "slu.factor_seconds"
let g_fill_nnz = Metrics.gauge "slu.fill_nnz"
let g_fill_ratio = Metrics.gauge "slu.fill_ratio"
let g_cond_est = Metrics.gauge "slu.cond_est"

exception Singular of int
exception Unstable of int
exception Pattern_mismatch

type ordering = [ `Amd | `Auto | `Natural | `Rcm ]

type int_ba = Bcsr.int_ba
type float_ba = Bcsr.float_ba

let geti (a : int_ba) k = Int32.to_int (Ba.Array1.unsafe_get a k)
let getf (a : float_ba) k : float = Ba.Array1.unsafe_get a k

(* growable Bigarray buffer: the fill pattern is unknown up front, so
   factor columns are appended here and trimmed to exact size at the
   end; the payload never touches the OCaml heap *)
module Gbuf = struct
  type ('a, 'b) t = {
    mutable ba : ('a, 'b, Ba.c_layout) Ba.Array1.t;
    mutable len : int;
  }

  let create kind = { ba = Ba.Array1.create kind Ba.c_layout 256; len = 0 }

  let push b v =
    let cap = Ba.Array1.dim b.ba in
    if b.len >= cap then begin
      let nba = Ba.Array1.create (Ba.Array1.kind b.ba) Ba.c_layout (2 * cap) in
      Ba.Array1.blit b.ba (Ba.Array1.sub nba 0 cap);
      b.ba <- nba
    end;
    Ba.Array1.unsafe_set b.ba b.len v;
    b.len <- b.len + 1

  let trim b =
    let out = Ba.Array1.create (Ba.Array1.kind b.ba) Ba.c_layout b.len in
    Ba.Array1.blit (Ba.Array1.sub b.ba 0 b.len) out;
    out
end

(* Everything value-independent about a factorisation: the fill
   ordering, the pivot permutation, the L/U fill patterns, the recorded
   elimination schedule per column, and the scatter map from the
   caller's CSR value array into permuted CSC columns. [refactor]
   replays all of it against new values. *)
type symbolic = {
  sn : int;
  sym : int array option;  (* fill-reducing ordering, new -> old *)
  pinv : int array;  (* permuted row -> pivot position *)
  perm : int array;  (* pivot position -> permuted row *)
  l_ptr : int array;  (* n+1 column pointers into l_idx *)
  l_idx : int_ba;  (* strictly-below-pivot rows, analysis order *)
  u_ptr : int array;
  u_idx : int_ba;  (* pivot positions ascending, diagonal (= j) last *)
  elim_ptr : int array;
  elim : int_ba;  (* pivotal columns per column, elimination order *)
  at_ptr : int array;  (* permuted CSC of the analyzed pattern *)
  at_idx : int array;  (* permuted row of each CSC entry *)
  at_src : int array;  (* index of that entry in the caller's values *)
  p_rows : int;  (* analyzed pattern, for refactor verification *)
  p_row_ptr : int array;
  p_col_ind : int array;
}

type t = {
  s : symbolic;
  l_val : float_ba;  (** L, scaled by 1/pivot, parallel to [s.l_idx] *)
  u_val : float_ba;  (** U in pivot coordinates, parallel to [s.u_idx] *)
  rscale : float_ba;
      (** row equilibration, permuted rows: the factors hold [R·A] with
          [R = diag(1/max|row|)]; solves scale [b] by [R] to compensate *)
  norm1 : float;  (** ‖A‖₁ of the factored matrix (unscaled), for cond_est *)
  mutable cond1 : float option;  (** cached Hager estimate *)
}

let symbolic_of f = f.s
let nnz_factors f = f.s.l_ptr.(f.s.sn) + f.s.u_ptr.(f.s.sn)

let note_fill f nnz_a =
  let fill = nnz_factors f in
  Metrics.set_gauge g_fill_nnz (float_of_int fill);
  if nnz_a > 0 then
    Metrics.set_gauge g_fill_ratio (float_of_int fill /. float_of_int nnz_a)

let check_pivot_tol pivot_tol =
  if not (pivot_tol > 0.0 && pivot_tol <= 1.0) then
    invalid_arg
      (Printf.sprintf "Slu.factor: pivot_tol %g outside (0, 1]" pivot_tol)

let resolve_ordering ordering n =
  match ordering with
  | `Auto -> if n > 512 then `Amd else `Rcm
  | (`Amd | `Rcm | `Natural) as o -> o

(* depth-first search from [start] through the columns of L restricted
   to pivotal rows; emits vertices in post-order onto [stack]. The
   explicit vertex/cursor stacks avoid recursion and allocation. *)
let reach ~pinv ~l_ptr ~(l_idx : int_ba) ~marked ~mark ~stack ~top ~dfs_v
    ~dfs_c start =
  if marked.(start) <> mark then begin
    marked.(start) <- mark;
    dfs_v.(0) <- start;
    dfs_c.(0) <- 0;
    let depth = ref 0 in
    while !depth >= 0 do
      let v = dfs_v.(!depth) in
      let k = pinv.(v) in
      let base = if k >= 0 then l_ptr.(k) else 0 in
      let lim = if k >= 0 then l_ptr.(k + 1) else 0 in
      let c = dfs_c.(!depth) in
      if base + c < lim then begin
        let child = geti l_idx (base + c) in
        dfs_c.(!depth) <- c + 1;
        if marked.(child) <> mark then begin
          marked.(child) <- mark;
          incr depth;
          dfs_v.(!depth) <- child;
          dfs_c.(!depth) <- 0
        end
      end
      else begin
        stack.(!top) <- v;
        incr top;
        decr depth
      end
    done
  end

(* Gilbert–Peierls left-looking factorisation with threshold pivoting,
   recording the symbolic structure as it goes. [row_ptr]/[col_ind]
   describe the input pattern in original coordinates, [val_at] fetches
   a value by its index in the caller's value storage, and [pat] is a
   CSR view of the same pattern used only to compute the ordering. *)
let analyze_core ~ordering ~pivot_tol ~n ~row_ptr ~col_ind ~val_at ~pat
    ~norm1 =
  let sym =
    match resolve_ordering ordering n with
    | `Natural -> None
    | `Rcm -> Some (Rcm.ordering pat)
    | `Amd -> Some (Amd.ordering pat)
  in
  (* permuted CSC with source indices: entry (i, j) of A lands in column
     psym(j) as row psym(i), remembering where its value lives *)
  let psym =
    match sym with None -> Array.init n Fun.id | Some p -> Rcm.inverse p
  in
  let nnz = row_ptr.(n) in
  let at_ptr = Array.make (n + 1) 0 in
  let at_idx = Array.make nnz 0 in
  let at_src = Array.make nnz 0 in
  for i = 0 to n - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j' = psym.(col_ind.(k)) in
      at_ptr.(j' + 1) <- at_ptr.(j' + 1) + 1
    done
  done;
  for j = 1 to n do
    at_ptr.(j) <- at_ptr.(j) + at_ptr.(j - 1)
  done;
  let cursor = Array.copy at_ptr in
  for i = 0 to n - 1 do
    let i' = psym.(i) in
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j' = psym.(col_ind.(k)) in
      at_idx.(cursor.(j')) <- i';
      at_src.(cursor.(j')) <- k;
      cursor.(j') <- cursor.(j') + 1
    done
  done;
  (* KLU-style row equilibration: factor R·A with R = diag(1/max|row|).
     Badly scaled rows — e.g. inductor-current rows of an MNA pencil,
     where L/h sits next to ±1 incidence entries — would otherwise lose
     their diagonal to threshold pivoting and destroy the fill-reducing
     order. The scale is recomputed from the values on every refactor
     (identically, preserving bit-for-bit replay); solves undo it. *)
  let rscale = Ba.Array1.create Ba.float64 Ba.c_layout n in
  Ba.Array1.fill rscale 1.0;
  for i = 0 to n - 1 do
    let m = ref 0.0 in
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let a = Float.abs (val_at k) in
      if a > !m then m := a
    done;
    if !m > 0.0 then Ba.Array1.set rscale psym.(i) (1.0 /. !m)
  done;
  let l_ptr = Array.make (n + 1) 0 in
  let u_ptr = Array.make (n + 1) 0 in
  let elim_ptr = Array.make (n + 1) 0 in
  let lb_idx = Gbuf.create Ba.int32 in
  let lb_val = Gbuf.create Ba.float64 in
  let ub_idx = Gbuf.create Ba.int32 in
  let ub_val = Gbuf.create Ba.float64 in
  let eb = Gbuf.create Ba.int32 in
  let pinv = Array.make n (-1) in
  let perm = Array.make n (-1) in
  let x = Array.make n 0.0 in
  let marked = Array.make n (-1) in
  let stack = Array.make n 0 in
  let dfs_v = Array.make n 0 in
  let dfs_c = Array.make n 0 in
  let u_pos = Array.make n 0 in
  for j = 0 to n - 1 do
    (* symbolic: union of reaches from the pattern of column j *)
    let top = ref 0 in
    for k = at_ptr.(j) to at_ptr.(j + 1) - 1 do
      reach ~pinv ~l_ptr ~l_idx:lb_idx.Gbuf.ba ~marked ~mark:j ~stack ~top
        ~dfs_v ~dfs_c at_idx.(k)
    done;
    let count = !top in
    (* numeric: scatter the column, then eliminate in topological order
       (reverse post-order), recording the pivotal columns touched *)
    for k = at_ptr.(j) to at_ptr.(j + 1) - 1 do
      let i' = at_idx.(k) in
      x.(i') <- val_at at_src.(k) *. getf rscale i'
    done;
    for s = count - 1 downto 0 do
      let v = stack.(s) in
      let k = pinv.(v) in
      if k >= 0 then begin
        Gbuf.push eb (Int32.of_int k);
        let xv = x.(v) in
        if xv <> 0.0 then
          for t = l_ptr.(k) to l_ptr.(k + 1) - 1 do
            let r = geti lb_idx.Gbuf.ba t in
            x.(r) <- x.(r) -. (getf lb_val.Gbuf.ba t *. xv)
          done
      end
    done;
    (* partition into U rows (already pivotal) and pivot candidates *)
    let ucount = ref 0 in
    let best = ref (-1) and best_mag = ref 0.0 in
    let diag_val = ref 0.0 and diag_present = ref false in
    for s = 0 to count - 1 do
      let v = stack.(s) in
      if pinv.(v) >= 0 then begin
        u_pos.(!ucount) <- pinv.(v);
        incr ucount
      end
      else begin
        let xv = x.(v) in
        if v = j then begin
          diag_val := xv;
          diag_present := true
        end;
        if Float.abs xv > !best_mag then begin
          best_mag := Float.abs xv;
          best := v
        end
      end
    done;
    if !best < 0 || !best_mag < 1e-300 then
      (* report the column in the *original* ordering so callers can
         name the offending unknown *)
      raise (Singular (match sym with Some p -> p.(j) | None -> j));
    (* threshold pivoting: keep the diagonal when it is big enough *)
    let pivot_row =
      if !diag_present && Float.abs !diag_val >= pivot_tol *. !best_mag then j
      else !best
    in
    let piv = x.(pivot_row) in
    (* L column: candidates except the pivot, divided by the pivot *)
    for s = 0 to count - 1 do
      let v = stack.(s) in
      if pinv.(v) < 0 && v <> pivot_row then begin
        Gbuf.push lb_idx (Int32.of_int v);
        Gbuf.push lb_val (x.(v) /. piv)
      end
    done;
    (* U column: pivotal entries sorted by position, diagonal last *)
    let upos = Array.sub u_pos 0 !ucount in
    Array.sort compare upos;
    for t = 0 to !ucount - 1 do
      Gbuf.push ub_idx (Int32.of_int upos.(t));
      Gbuf.push ub_val x.(perm.(upos.(t)))
    done;
    Gbuf.push ub_idx (Int32.of_int j);
    Gbuf.push ub_val piv;
    for s = 0 to count - 1 do
      x.(stack.(s)) <- 0.0
    done;
    pinv.(pivot_row) <- j;
    perm.(j) <- pivot_row;
    l_ptr.(j + 1) <- lb_idx.Gbuf.len;
    u_ptr.(j + 1) <- ub_idx.Gbuf.len;
    elim_ptr.(j + 1) <- eb.Gbuf.len
  done;
  let s =
    {
      sn = n;
      sym;
      pinv;
      perm;
      l_ptr;
      l_idx = Gbuf.trim lb_idx;
      u_ptr;
      u_idx = Gbuf.trim ub_idx;
      elim_ptr;
      elim = Gbuf.trim eb;
      at_ptr;
      at_idx;
      at_src;
      p_rows = n;
      p_row_ptr = row_ptr;
      p_col_ind = col_ind;
    }
  in
  let f =
    { s; l_val = Gbuf.trim lb_val; u_val = Gbuf.trim ub_val; rscale; norm1;
      cond1 = None }
  in
  (s, f)

let csr_norm1 a =
  let _, m = Csr.dims a in
  let sums = Array.make m 0.0 in
  Csr.iter (fun _ j v -> sums.(j) <- sums.(j) +. Float.abs v) a;
  Array.fold_left Float.max 0.0 sums

let analyze ?(ordering = `Auto) ?(pivot_tol = 0.1) (a : Csr.t) =
  check_pivot_tol pivot_tol;
  let n, m = Csr.dims a in
  if n <> m then invalid_arg "Slu.factor: non-square matrix";
  Metrics.incr m_analyze;
  Metrics.incr m_factor;
  Metrics.time h_factor_seconds @@ fun () ->
  let norm1 = csr_norm1 a in
  let s, f =
    analyze_core ~ordering ~pivot_tol ~n ~row_ptr:a.Csr.row_ptr
      ~col_ind:a.Csr.col_ind
      ~val_at:(fun k -> a.Csr.values.(k))
      ~pat:a ~norm1
  in
  note_fill f (Csr.nnz a);
  (s, f)

let factor ?ordering ?pivot_tol a = snd (analyze ?ordering ?pivot_tol a)

let factor_b ?(ordering = `Auto) ?(pivot_tol = 0.1) (b : Bcsr.t) =
  check_pivot_tol pivot_tol;
  let n, m = Bcsr.dims b in
  if n <> m then invalid_arg "Slu.factor: non-square matrix";
  Metrics.incr m_analyze;
  Metrics.incr m_factor;
  Metrics.time h_factor_seconds @@ fun () ->
  let nnz = Bcsr.nnz b in
  let row_ptr =
    Array.init (n + 1) (fun i -> Int32.to_int (Ba.Array1.get b.Bcsr.row_ptr i))
  in
  let col_ind =
    Array.init nnz (fun k -> Int32.to_int (Ba.Array1.get b.Bcsr.col_ind k))
  in
  (* pattern-only CSR view for the ordering; the numeric scatter reads
     the Bigarray values directly, no float copy is made *)
  let pat =
    { Csr.rows = n; cols = n; row_ptr; col_ind; values = Array.make nnz 1.0 }
  in
  let sums = Array.make n 0.0 in
  for k = 0 to nnz - 1 do
    let j = col_ind.(k) in
    sums.(j) <- sums.(j) +. Float.abs (Ba.Array1.get b.Bcsr.values k)
  done;
  let norm1 = Array.fold_left Float.max 0.0 sums in
  let _, f =
    analyze_core ~ordering ~pivot_tol ~n ~row_ptr ~col_ind
      ~val_at:(fun k -> Ba.Array1.get b.Bcsr.values k)
      ~pat ~norm1
  in
  note_fill f nnz;
  f

let pattern_matches s (a : Csr.t) =
  let same_ints (x : int array) (y : int array) =
    x == y
    || Array.length x = Array.length y
       &&
       let ok = ref true in
       (try
          for k = 0 to Array.length x - 1 do
            if x.(k) <> y.(k) then begin
              ok := false;
              raise Exit
            end
          done
        with Exit -> ());
       !ok
  in
  a.Csr.rows = s.p_rows
  && a.Csr.cols = s.p_rows
  && Array.length a.Csr.col_ind = Array.length s.p_col_ind
  && same_ints a.Csr.row_ptr s.p_row_ptr
  && same_ints a.Csr.col_ind s.p_col_ind

let refactor ?(stability_tol = 0.01) s (a : Csr.t) =
  if not (stability_tol >= 0.0 && stability_tol <= 1.0) then
    invalid_arg
      (Printf.sprintf "Slu.refactor: stability_tol %g outside [0, 1]"
         stability_tol);
  if not (pattern_matches s a) then raise Pattern_mismatch;
  Metrics.incr m_factor;
  Metrics.time h_factor_seconds @@ fun () ->
  let n = s.sn in
  let norm1 = csr_norm1 a in
  let values = a.Csr.values in
  let l_val = Ba.Array1.create Ba.float64 Ba.c_layout s.l_ptr.(n) in
  let u_val = Ba.Array1.create Ba.float64 Ba.c_layout s.u_ptr.(n) in
  let x = Array.make n 0.0 in
  let orig j = match s.sym with Some p -> p.(j) | None -> j in
  (* row equilibration recomputed from the new values, exactly as the
     analysis did, so a refactor on the analyzed values stays
     bit-identical to the fresh factorisation *)
  let rscale = Ba.Array1.create Ba.float64 Ba.c_layout n in
  Ba.Array1.fill rscale 1.0;
  for j' = 0 to n - 1 do
    let i = orig j' in
    let m = ref 0.0 in
    for k = s.p_row_ptr.(i) to s.p_row_ptr.(i + 1) - 1 do
      let a = Float.abs values.(k) in
      if a > !m then m := a
    done;
    if !m > 0.0 then Ba.Array1.set rscale j' (1.0 /. !m)
  done;
  for j = 0 to n - 1 do
    (* replay of the analysis column, arithmetic in the same order:
       scatter, eliminate along the recorded schedule, divide *)
    for k = s.at_ptr.(j) to s.at_ptr.(j + 1) - 1 do
      let i' = s.at_idx.(k) in
      x.(i') <- values.(s.at_src.(k)) *. getf rscale i'
    done;
    for t = s.elim_ptr.(j) to s.elim_ptr.(j + 1) - 1 do
      let k = geti s.elim t in
      let xv = x.(s.perm.(k)) in
      if xv <> 0.0 then
        for q = s.l_ptr.(k) to s.l_ptr.(k + 1) - 1 do
          let r = geti s.l_idx q in
          x.(r) <- x.(r) -. (getf l_val q *. xv)
        done
    done;
    (* the pivot is fixed by the analysis; verify it is still usable
       against the new values before committing to it *)
    let pivot_row = s.perm.(j) in
    let piv = x.(pivot_row) in
    let best_mag = ref (Float.abs piv) in
    for q = s.l_ptr.(j) to s.l_ptr.(j + 1) - 1 do
      let m = Float.abs x.(geti s.l_idx q) in
      if m > !best_mag then best_mag := m
    done;
    if !best_mag < 1e-300 then raise (Singular (orig j));
    if Float.abs piv < 1e-300 || Float.abs piv < stability_tol *. !best_mag
    then raise (Unstable (orig j));
    for q = s.l_ptr.(j) to s.l_ptr.(j + 1) - 1 do
      Ba.Array1.unsafe_set l_val q (x.(geti s.l_idx q) /. piv)
    done;
    for t = s.u_ptr.(j) to s.u_ptr.(j + 1) - 2 do
      Ba.Array1.unsafe_set u_val t x.(s.perm.(geti s.u_idx t))
    done;
    Ba.Array1.unsafe_set u_val (s.u_ptr.(j + 1) - 1) piv;
    (* reset the scratch: U rows, L rows, and the pivot row cover the
       whole reach of this column *)
    for t = s.u_ptr.(j) to s.u_ptr.(j + 1) - 2 do
      x.(s.perm.(geti s.u_idx t)) <- 0.0
    done;
    for q = s.l_ptr.(j) to s.l_ptr.(j + 1) - 1 do
      x.(geti s.l_idx q) <- 0.0
    done;
    x.(pivot_row) <- 0.0
  done;
  Metrics.incr m_reuse;
  { s; l_val; u_val; rscale; norm1; cond1 = None }

let factor_hinted ?ordering ?pivot_tol ?stability_tol ~hint a =
  let fresh () =
    let s, f = analyze ?ordering ?pivot_tol a in
    hint := Some s;
    f
  in
  match !hint with
  | None -> fresh ()
  | Some s -> (
      match refactor ?stability_tol s a with
      | f -> f
      | exception (Pattern_mismatch | Unstable _ | Singular _) -> fresh ())

let solve_inner f b =
  (* forward: L y = P (R b) — the factors hold R·A, so the rhs is
     equilibrated first; the L updates reference permuted row ids, so
     the elimination runs on a scratch copy indexed by rows while y
     collects the values in pivot order *)
  let s = f.s in
  let n = s.sn in
  let y = Array.make n 0.0 in
  let xr = Array.make n 0.0 in
  for i = 0 to n - 1 do
    xr.(i) <- b.(i) *. getf f.rscale i
  done;
  for k = 0 to n - 1 do
    let row = s.perm.(k) in
    let xv = xr.(row) in
    y.(k) <- xv;
    if xv <> 0.0 then
      for t = s.l_ptr.(k) to s.l_ptr.(k + 1) - 1 do
        let r = geti s.l_idx t in
        xr.(r) <- xr.(r) -. (getf f.l_val t *. xv)
      done
  done;
  (* backward: U x = y, with U stored by columns (diagonal last) *)
  let x = y in
  for j = n - 1 downto 0 do
    let lo = s.u_ptr.(j) and hi = s.u_ptr.(j + 1) in
    let diag = getf f.u_val (hi - 1) in
    let xj = x.(j) /. diag in
    x.(j) <- xj;
    if xj <> 0.0 then
      for t = lo to hi - 2 do
        let p = geti s.u_idx t in
        x.(p) <- x.(p) -. (getf f.u_val t *. xj)
      done
  done;
  x

let solve_unlogged f b =
  if Array.length b <> f.s.sn then invalid_arg "Slu.solve: dimension mismatch";
  match f.s.sym with
  | None -> solve_inner f b
  | Some p ->
      (* A' = P A Pᵀ with (Pz)(i) = z(p(i)): solve A'(Px) = Pb *)
      let b' = Array.init f.s.sn (fun i -> b.(p.(i))) in
      let x' = solve_inner f b' in
      let x = Array.make f.s.sn 0.0 in
      Array.iteri (fun i v -> x.(p.(i)) <- v) x';
      x

let solve f b =
  Metrics.incr m_solve;
  solve_unlogged f b

let solve_many ?pool f bs =
  Metrics.incr ~by:(Array.length bs) m_solve;
  let p = match pool with Some p -> p | None -> Pool.global () in
  Pool.map p (solve_unlogged f) bs

(* Aᵀ x = b from the same factors: the factors hold M = R·A' with
   M = P⁻¹LU (rows permuted, columns in natural order), and
   A'ᵀ = Mᵀ R⁻¹, so solve Mᵀ w = b then return x = R w. Uᵀ z = b runs
   forward over the U columns (column j of U is row j of Uᵀ, diagonal
   stored last), Lᵀ w = z runs backward using L's entries
   L(pinv(idx), k), and finally x(perm(k)) = rscale(perm(k))·w(k). *)
let solve_transpose_inner f b =
  let s = f.s in
  let n = s.sn in
  let z = Array.copy b in
  for j = 0 to n - 1 do
    let lo = s.u_ptr.(j) and hi = s.u_ptr.(j + 1) in
    let acc = ref z.(j) in
    for t = lo to hi - 2 do
      acc := !acc -. (getf f.u_val t *. z.(geti s.u_idx t))
    done;
    z.(j) <- !acc /. getf f.u_val (hi - 1)
  done;
  for k = n - 1 downto 0 do
    let acc = ref z.(k) in
    for t = s.l_ptr.(k) to s.l_ptr.(k + 1) - 1 do
      acc := !acc -. (getf f.l_val t *. z.(s.pinv.(geti s.l_idx t)))
    done;
    z.(k) <- !acc
  done;
  let x = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let row = s.perm.(k) in
    x.(row) <- z.(k) *. getf f.rscale row
  done;
  x

let solve_transpose f b =
  if Array.length b <> f.s.sn then
    invalid_arg "Slu.solve_transpose: dimension mismatch";
  match f.s.sym with
  | None -> solve_transpose_inner f b
  | Some p ->
      (* A' = P A Pᵀ ⇒ A'ᵀ = P Aᵀ Pᵀ: same permutation sandwich as solve *)
      let b' = Array.init f.s.sn (fun i -> b.(p.(i))) in
      let x' = solve_transpose_inner f b' in
      let x = Array.make f.s.sn 0.0 in
      Array.iteri (fun i v -> x.(p.(i)) <- v) x';
      x

let cond_est f =
  match f.cond1 with
  | Some c -> c
  | None ->
      let inv =
        Lu.inv_norm1_est ~n:f.s.sn ~solve:(solve f)
          ~solve_t:(solve_transpose f)
      in
      let c = f.norm1 *. inv in
      f.cond1 <- Some c;
      Metrics.set_gauge g_cond_est c;
      c

let solve_dense a b = solve (factor a) b
