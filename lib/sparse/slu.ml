open Opm_numkit
module Metrics = Opm_obs.Metrics

(* observability instruments (no-ops unless metrics are enabled) *)
let m_factor = Metrics.counter "slu.factor"
let m_solve = Metrics.counter "slu.solve"
let h_factor_seconds = Metrics.histogram "slu.factor_seconds"
let g_fill_nnz = Metrics.gauge "slu.fill_nnz"
let g_cond_est = Metrics.gauge "slu.cond_est"

exception Singular of int

(* factor columns stored as parallel index/value arrays *)
type col = { idx : int array; vals : float array }

type t = {
  n : int;
  l_cols : col array;  (** strictly-below-pivot part, scaled by 1/pivot *)
  u_cols : col array;  (** at-or-above-pivot part in pivot coordinates,
                           including the diagonal as the last entry *)
  pinv : int array;  (** row -> pivot position *)
  perm : int array;  (** pivot position -> row *)
  sym : int array option;  (** fill-reducing symmetric permutation
                               (new -> old), when one was applied *)
  norm1 : float;  (** ‖A‖₁ of the factored matrix, for cond_est *)
  mutable cond1 : float option;  (** cached Hager estimate *)
}

let nnz_factors f =
  Array.fold_left (fun acc c -> acc + Array.length c.idx) 0 f.l_cols
  + Array.fold_left (fun acc c -> acc + Array.length c.idx) 0 f.u_cols

(* depth-first search from [start] through the columns of L restricted to
   pivotal rows; emits vertices in post-order onto [stack] *)
let reach ~pinv ~l_cols ~marked ~mark ~stack ~top start =
  let work = Stack.create () in
  if marked.(start) <> mark then begin
    marked.(start) <- mark;
    Stack.push (start, ref 0) work
  end;
  while not (Stack.is_empty work) do
    let v, child = Stack.top work in
    let k = pinv.(v) in
    let children = if k >= 0 then l_cols.(k).idx else [||] in
    if !child < Array.length children then begin
      let c = children.(!child) in
      incr child;
      if marked.(c) <> mark then begin
        marked.(c) <- mark;
        Stack.push (c, ref 0) work
      end
    end
    else begin
      ignore (Stack.pop work);
      stack.(!top) <- v;
      incr top
    end
  done

(* Gilbert–Peierls left-looking factorisation with threshold pivoting:
   the diagonal candidate is taken whenever it is within [pivot_tol] of
   the largest candidate, preserving the (fill-reducing) ordering. *)
let factor_ordered ~pivot_tol a sym =
  let n, m = Csr.dims a in
  if n <> m then invalid_arg "Slu.factor: non-square matrix";
  (* column access: work on Aᵀ in CSR = A in CSC *)
  let at = Csr.transpose a in
  let l_cols = Array.make n { idx = [||]; vals = [||] } in
  let u_cols = Array.make n { idx = [||]; vals = [||] } in
  let pinv = Array.make n (-1) in
  let perm = Array.make n (-1) in
  let x = Array.make n 0.0 in
  let marked = Array.make n (-1) in
  let stack = Array.make n 0 in
  for j = 0 to n - 1 do
    (* symbolic: union of reaches from the pattern of A(:,j) *)
    let top = ref 0 in
    let row_start = at.Csr.row_ptr.(j) and row_end = at.Csr.row_ptr.(j + 1) in
    for k = row_start to row_end - 1 do
      reach ~pinv ~l_cols ~marked ~mark:j ~stack ~top at.Csr.col_ind.(k)
    done;
    let count = !top in
    (* numeric: scatter A(:,j), then eliminate in topological order
       (reverse post-order) *)
    for k = row_start to row_end - 1 do
      x.(at.Csr.col_ind.(k)) <- at.Csr.values.(k)
    done;
    for s = count - 1 downto 0 do
      let v = stack.(s) in
      let k = pinv.(v) in
      if k >= 0 then begin
        let xv = x.(v) in
        if xv <> 0.0 then begin
          let lc = l_cols.(k) in
          for t = 0 to Array.length lc.idx - 1 do
            x.(lc.idx.(t)) <- x.(lc.idx.(t)) -. (lc.vals.(t) *. xv)
          done
        end
      end
    done;
    (* partition into U part (pivotal rows) and candidate pivot rows *)
    let u_idx = ref [] and u_vals = ref [] and u_len = ref 0 in
    let cand_idx = ref [] and cand_vals = ref [] in
    let best = ref (-1) and best_mag = ref 0.0 in
    let diag_val = ref 0.0 and diag_present = ref false in
    for s = 0 to count - 1 do
      let v = stack.(s) in
      let xv = x.(v) in
      if pinv.(v) >= 0 then begin
        u_idx := pinv.(v) :: !u_idx;
        u_vals := xv :: !u_vals;
        incr u_len
      end
      else begin
        cand_idx := v :: !cand_idx;
        cand_vals := xv :: !cand_vals;
        if v = j then begin
          diag_val := xv;
          diag_present := true
        end;
        if Float.abs xv > !best_mag then begin
          best_mag := Float.abs xv;
          best := v
        end
      end;
      x.(v) <- 0.0
    done;
    if !best < 0 || !best_mag < 1e-300 then
      (* report the column in the *original* ordering so callers can name
         the offending unknown *)
      raise (Singular (match sym with Some p -> p.(j) | None -> j));
    (* threshold pivoting: keep the diagonal when it is big enough *)
    let pivot_row =
      if !diag_present && Float.abs !diag_val >= pivot_tol *. !best_mag then j
      else !best
    in
    let pivot_val = ref 0.0 in
    (* L column: candidates except the pivot, divided by the pivot *)
    let l_idx = ref [] and l_vals = ref [] in
    List.iter2
      (fun v xv ->
        if v = pivot_row then pivot_val := xv
        else begin
          l_idx := v :: !l_idx;
          l_vals := xv :: !l_vals
        end)
      !cand_idx !cand_vals;
    let piv = !pivot_val in
    l_cols.(j) <-
      {
        idx = Array.of_list !l_idx;
        vals = Array.of_list (List.map (fun v -> v /. piv) !l_vals);
      };
    (* U column: pivotal entries sorted by pivot position, diagonal last *)
    let pairs = List.combine !u_idx !u_vals in
    let pairs = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
    let u_n = !u_len + 1 in
    let ui = Array.make u_n 0 and uv = Array.make u_n 0.0 in
    List.iteri
      (fun t (p, v) ->
        ui.(t) <- p;
        uv.(t) <- v)
      pairs;
    ui.(u_n - 1) <- j;
    uv.(u_n - 1) <- piv;
    u_cols.(j) <- { idx = ui; vals = uv };
    pinv.(pivot_row) <- j;
    perm.(j) <- pivot_row
  done;
  { n; l_cols; u_cols; pinv; perm; sym; norm1 = 0.0; cond1 = None }

let csr_norm1 a =
  let _, m = Csr.dims a in
  let sums = Array.make m 0.0 in
  Csr.iter (fun _ j v -> sums.(j) <- sums.(j) +. Float.abs v) a;
  Array.fold_left Float.max 0.0 sums

let factor ?(ordering = `Rcm) ?(pivot_tol = 0.1) a =
  if not (pivot_tol > 0.0 && pivot_tol <= 1.0) then
    invalid_arg
      (Printf.sprintf "Slu.factor: pivot_tol %g outside (0, 1]" pivot_tol);
  Metrics.incr m_factor;
  Metrics.time h_factor_seconds @@ fun () ->
  let norm1 = csr_norm1 a in
  let f =
    match ordering with
    | `Natural -> factor_ordered ~pivot_tol a None
    | `Rcm ->
        let p = Rcm.ordering a in
        let a' = Rcm.permute_symmetric a p in
        factor_ordered ~pivot_tol a' (Some p)
  in
  Metrics.set_gauge g_fill_nnz (float_of_int (nnz_factors f));
  { f with norm1 }

let solve_inner f b =
  (* forward: L y = P b; the L updates reference original row ids, so the
     elimination runs on a scratch copy indexed by rows while y collects
     the values in pivot order *)
  let y = Array.make f.n 0.0 in
  let xr = Array.copy b in
  for k = 0 to f.n - 1 do
    let row = f.perm.(k) in
    let xv = xr.(row) in
    y.(k) <- xv;
    if xv <> 0.0 then begin
      let lc = f.l_cols.(k) in
      for t = 0 to Array.length lc.idx - 1 do
        xr.(lc.idx.(t)) <- xr.(lc.idx.(t)) -. (lc.vals.(t) *. xv)
      done
    end
  done;
  (* backward: U x = y, with U stored by columns (diagonal last) *)
  let x = y in
  for j = f.n - 1 downto 0 do
    let uc = f.u_cols.(j) in
    let u_n = Array.length uc.idx in
    let diag = uc.vals.(u_n - 1) in
    let xj = x.(j) /. diag in
    x.(j) <- xj;
    if xj <> 0.0 then
      for t = 0 to u_n - 2 do
        x.(uc.idx.(t)) <- x.(uc.idx.(t)) -. (uc.vals.(t) *. xj)
      done
  done;
  x

let solve f b =
  Metrics.incr m_solve;
  if Array.length b <> f.n then invalid_arg "Slu.solve: dimension mismatch";
  match f.sym with
  | None -> solve_inner f b
  | Some p ->
      (* A' = P A Pᵀ with (Pz)(i) = z(p(i)): solve A'(Px) = Pb *)
      let b' = Array.init f.n (fun i -> b.(p.(i))) in
      let x' = solve_inner f b' in
      let x = Array.make f.n 0.0 in
      Array.iteri (fun i v -> x.(p.(i)) <- v) x';
      x

(* Aᵀ x = b from the same factors: with A = P⁻¹LU (rows permuted, columns
   in natural order), Uᵀ z = b runs forward over the U columns (column j
   of U is row j of Uᵀ, diagonal stored last), Lᵀ w = z runs backward
   using L's entries L(pinv(idx), k), and finally x(perm(k)) = w(k). *)
let solve_transpose_inner f b =
  let z = Array.copy b in
  for j = 0 to f.n - 1 do
    let uc = f.u_cols.(j) in
    let u_n = Array.length uc.idx in
    let s = ref z.(j) in
    for t = 0 to u_n - 2 do
      s := !s -. (uc.vals.(t) *. z.(uc.idx.(t)))
    done;
    z.(j) <- !s /. uc.vals.(u_n - 1)
  done;
  for k = f.n - 1 downto 0 do
    let lc = f.l_cols.(k) in
    let s = ref z.(k) in
    for t = 0 to Array.length lc.idx - 1 do
      s := !s -. (lc.vals.(t) *. z.(f.pinv.(lc.idx.(t))))
    done;
    z.(k) <- !s
  done;
  let x = Array.make f.n 0.0 in
  for k = 0 to f.n - 1 do
    x.(f.perm.(k)) <- z.(k)
  done;
  x

let solve_transpose f b =
  if Array.length b <> f.n then
    invalid_arg "Slu.solve_transpose: dimension mismatch";
  match f.sym with
  | None -> solve_transpose_inner f b
  | Some p ->
      (* A' = P A Pᵀ ⇒ A'ᵀ = P Aᵀ Pᵀ: same permutation sandwich as solve *)
      let b' = Array.init f.n (fun i -> b.(p.(i))) in
      let x' = solve_transpose_inner f b' in
      let x = Array.make f.n 0.0 in
      Array.iteri (fun i v -> x.(p.(i)) <- v) x';
      x

let cond_est f =
  match f.cond1 with
  | Some c -> c
  | None ->
      let inv =
        Lu.inv_norm1_est ~n:f.n ~solve:(solve f) ~solve_t:(solve_transpose f)
      in
      let c = f.norm1 *. inv in
      f.cond1 <- Some c;
      Metrics.set_gauge g_cond_est c;
      c

let solve_dense a b = solve (factor a) b
