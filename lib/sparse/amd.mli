(** Approximate-minimum-degree fill-reducing ordering (quotient-graph
    AMD with aggressive absorption, mass elimination and supervariable
    detection, after Amestoy–Davis–Duff as realised in CSparse).

    Operates on the symmetrized pattern [A + Aᵀ] with the diagonal
    dropped, so unsymmetric circuit pencils are accepted directly. On
    the paper's 3-D power-grid pencils AMD fill grows far slower with
    [n] than {!Rcm} bandwidth ordering, which is what makes the
    n ≈ 100K Table II sizes factorable in memory. *)

val ordering : Csr.t -> int array
(** [ordering a] returns a fill-reducing permutation [p] (new → old:
    position [i] of the reordered matrix holds original row/column
    [p.(i)]), the same convention as {!Rcm.ordering}, so the result
    feeds {!Rcm.permute_symmetric} unchanged. Raises [Invalid_argument]
    on non-square input. Deterministic: identical patterns yield
    identical permutations. *)
