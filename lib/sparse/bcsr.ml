module Ba = Bigarray

(* Bigarray-backed CSR: int32 structure + float64 values live outside the
   OCaml heap, so a 100K×100K pencil adds nothing to the GC's scan work.
   Every kernel mirrors the arithmetic of the array-backed {!Csr} op
   term for term, in the same order, so results agree to the last bit —
   the differential test in test_sparse relies on that. *)

type int_ba = (int32, Ba.int32_elt, Ba.c_layout) Ba.Array1.t
type float_ba = (float, Ba.float64_elt, Ba.c_layout) Ba.Array1.t

type t = {
  rows : int;
  cols : int;
  row_ptr : int_ba;
  col_ind : int_ba;
  values : float_ba;
}

let iba n = Ba.Array1.create Ba.int32 Ba.c_layout (max n 0)
let fba n = Ba.Array1.create Ba.float64 Ba.c_layout (max n 0)
let geti (a : int_ba) k = Int32.to_int (Ba.Array1.unsafe_get a k)

let dims a = (a.rows, a.cols)
let nnz a = Ba.Array1.dim a.values

let of_csr (a : Csr.t) =
  let n = Csr.nnz a in
  let row_ptr = iba (a.Csr.rows + 1) in
  let col_ind = iba n in
  let values = fba n in
  for i = 0 to a.Csr.rows do
    Ba.Array1.set row_ptr i (Int32.of_int a.Csr.row_ptr.(i))
  done;
  for k = 0 to n - 1 do
    Ba.Array1.set col_ind k (Int32.of_int a.Csr.col_ind.(k));
    Ba.Array1.set values k a.Csr.values.(k)
  done;
  { rows = a.Csr.rows; cols = a.Csr.cols; row_ptr; col_ind; values }

let to_csr a =
  let n = nnz a in
  {
    Csr.rows = a.rows;
    cols = a.cols;
    row_ptr = Array.init (a.rows + 1) (fun i -> geti a.row_ptr i);
    col_ind = Array.init n (fun k -> geti a.col_ind k);
    values = Array.init n (fun k -> Ba.Array1.get a.values k);
  }

let mul_vec a x =
  if Array.length x <> a.cols then
    invalid_arg "Bcsr.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for k = geti a.row_ptr i to geti a.row_ptr (i + 1) - 1 do
        s := !s +. (Ba.Array1.unsafe_get a.values k *. x.(geti a.col_ind k))
      done;
      !s)

let tmul_vec a x =
  if Array.length x <> a.rows then
    invalid_arg "Bcsr.tmul_vec: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = geti a.row_ptr i to geti a.row_ptr (i + 1) - 1 do
        let j = geti a.col_ind k in
        y.(j) <- y.(j) +. (Ba.Array1.unsafe_get a.values k *. xi)
      done
  done;
  y

let scale s a =
  let n = nnz a in
  let values = fba n in
  for k = 0 to n - 1 do
    Ba.Array1.set values k (s *. Ba.Array1.get a.values k)
  done;
  { a with values }

let add ?(alpha = 1.0) ?(beta = 1.0) a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Bcsr.add: dimension mismatch";
  (* two passes: size the union pattern, then fill — same merge walk and
     the same combination arithmetic as Csr.add *)
  let count = ref 0 in
  for i = 0 to a.rows - 1 do
    let ka = ref (geti a.row_ptr i) and kb = ref (geti b.row_ptr i) in
    let ea = geti a.row_ptr (i + 1) and eb = geti b.row_ptr (i + 1) in
    while !ka < ea || !kb < eb do
      (if !ka < ea && (!kb >= eb || geti a.col_ind !ka < geti b.col_ind !kb)
       then incr ka
       else if
         !kb < eb && (!ka >= ea || geti b.col_ind !kb < geti a.col_ind !ka)
       then incr kb
       else begin
         incr ka;
         incr kb
       end);
      incr count
    done
  done;
  let row_ptr = iba (a.rows + 1) in
  let col_ind = iba !count in
  let values = fba !count in
  let pos = ref 0 in
  Ba.Array1.set row_ptr 0 0l;
  for i = 0 to a.rows - 1 do
    let ka = ref (geti a.row_ptr i) and kb = ref (geti b.row_ptr i) in
    let ea = geti a.row_ptr (i + 1) and eb = geti b.row_ptr (i + 1) in
    while !ka < ea || !kb < eb do
      if !ka < ea && (!kb >= eb || geti a.col_ind !ka < geti b.col_ind !kb)
      then begin
        Ba.Array1.set col_ind !pos (Ba.Array1.get a.col_ind !ka);
        Ba.Array1.set values !pos (alpha *. Ba.Array1.get a.values !ka);
        incr ka;
        incr pos
      end
      else if
        !kb < eb && (!ka >= ea || geti b.col_ind !kb < geti a.col_ind !ka)
      then begin
        Ba.Array1.set col_ind !pos (Ba.Array1.get b.col_ind !kb);
        Ba.Array1.set values !pos (beta *. Ba.Array1.get b.values !kb);
        incr kb;
        incr pos
      end
      else begin
        Ba.Array1.set col_ind !pos (Ba.Array1.get a.col_ind !ka);
        Ba.Array1.set values !pos
          ((alpha *. Ba.Array1.get a.values !ka)
          +. (beta *. Ba.Array1.get b.values !kb));
        incr ka;
        incr kb;
        incr pos
      end
    done;
    Ba.Array1.set row_ptr (i + 1) (Int32.of_int !pos)
  done;
  { rows = a.rows; cols = a.cols; row_ptr; col_ind; values }
