(* Seeded fault-injection harness.

   One global plan (armed programmatically or from OPM_FAULT_PLAN)
   names a site, a fault kind and the 1-based occurrence at which it
   fires. Instrumented sites in the solve path call [fire] and
   interpret the returned kind mechanically (fail the factor, poison a
   vector, raise a simulated ENOSPC, sleep). Counters are atomic
   because the pool-dispatch site fires from worker domains. When no
   plan is armed [fire] is a single atomic load. *)

type site =
  | Factor
  | Column_solve
  | Fft_block
  | Window_handoff
  | Checkpoint_write
  | Pool_dispatch
  | Accept
  | Request_dispatch

type kind = Singular | Nan_poison | Enospc | Latency

type plan = { seed : int; site : site; kind : kind; nth : int }

let nsites = 8

let site_index = function
  | Factor -> 0
  | Column_solve -> 1
  | Fft_block -> 2
  | Window_handoff -> 3
  | Checkpoint_write -> 4
  | Pool_dispatch -> 5
  | Accept -> 6
  | Request_dispatch -> 7

let all_sites =
  [ Factor; Column_solve; Fft_block; Window_handoff; Checkpoint_write;
    Pool_dispatch; Accept; Request_dispatch ]

let all_kinds = [ Singular; Nan_poison; Enospc; Latency ]

let site_to_string = function
  | Factor -> "factor"
  | Column_solve -> "column-solve"
  | Fft_block -> "fft-block"
  | Window_handoff -> "window-handoff"
  | Checkpoint_write -> "checkpoint-write"
  | Pool_dispatch -> "pool-dispatch"
  | Accept -> "accept"
  | Request_dispatch -> "request-dispatch"

let site_of_string = function
  | "factor" -> Some Factor
  | "column-solve" -> Some Column_solve
  | "fft-block" -> Some Fft_block
  | "window-handoff" -> Some Window_handoff
  | "checkpoint-write" -> Some Checkpoint_write
  | "pool-dispatch" -> Some Pool_dispatch
  | "accept" -> Some Accept
  | "request-dispatch" -> Some Request_dispatch
  | _ -> None

let kind_to_string = function
  | Singular -> "singular"
  | Nan_poison -> "nan-poison"
  | Enospc -> "enospc"
  | Latency -> "latency"

let kind_of_string = function
  | "singular" -> Some Singular
  | "nan-poison" -> Some Nan_poison
  | "enospc" -> Some Enospc
  | "latency" -> Some Latency
  | _ -> None

(* splitmix64 finaliser: the only randomness in the harness, so a plan
   is replayable from its integer seed alone *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let mix_int seed salt =
  Int64.to_int
    (Int64.logand
       (mix64 (Int64.of_int ((seed * 0x9e3779b9) + salt)))
       0x7fffffffL)

let kind_of_seed seed =
  List.nth all_kinds (mix_int seed 1 mod List.length all_kinds)

let plan_of_string s =
  match String.split_on_char ':' s with
  | [ seed; site; nth ] -> (
      match (int_of_string_opt seed, site_of_string site, int_of_string_opt nth)
      with
      | Some seed, Some site, Some nth when nth >= 1 ->
          Ok { seed; site; kind = kind_of_seed seed; nth }
      | _ ->
          Error
            (Printf.sprintf
               "malformed fault plan %S (expected seed:site:nth with nth >= 1)"
               s))
  | [ seed; site; kind; nth ] -> (
      match
        ( int_of_string_opt seed,
          site_of_string site,
          kind_of_string kind,
          int_of_string_opt nth )
      with
      | Some seed, Some site, Some kind, Some nth when nth >= 1 ->
          Ok { seed; site; kind; nth }
      | _ ->
          Error
            (Printf.sprintf
               "malformed fault plan %S (expected seed:site:kind:nth with \
                nth >= 1)"
               s))
  | _ ->
      Error
        (Printf.sprintf
           "malformed fault plan %S (expected seed:site[:kind]:nth)" s)

let plan_to_string p =
  Printf.sprintf "%d:%s:%s:%d" p.seed (site_to_string p.site)
    (kind_to_string p.kind) p.nth

let armed_plan : plan option Atomic.t = Atomic.make None
let occurrences = Array.init nsites (fun _ -> Atomic.make 0)
let injected = Array.init nsites (fun _ -> Atomic.make 0)

let reset_counters () =
  Array.iter (fun a -> Atomic.set a 0) occurrences;
  Array.iter (fun a -> Atomic.set a 0) injected

let arm p =
  reset_counters ();
  Atomic.set armed_plan (Some p)

let disarm () =
  Atomic.set armed_plan None;
  reset_counters ()

let armed () = Atomic.get armed_plan

let arm_from_env () =
  match Sys.getenv_opt "OPM_FAULT_PLAN" with
  | None | Some "" -> Ok false
  | Some s -> (
      match plan_of_string s with
      | Ok p ->
          arm p;
          Ok true
      | Error _ as e -> e)

(* Arm from the environment at library initialisation so *any* binary
   linking opm_robust — the examples, the tests, opm_sim — honours
   OPM_FAULT_PLAN without per-program wiring (the example-level fault
   matrix in CI depends on this). A malformed plan warns instead of
   aborting: library init is no place to exit, and opm_sim
   re-validates the variable with a proper usage error. *)
let () =
  match arm_from_env () with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "opm: OPM_FAULT_PLAN ignored: %s\n%!" msg

let fire site =
  match Atomic.get armed_plan with
  | None -> None
  | Some p when p.site <> site -> None
  | Some p ->
      let i = site_index site in
      let k = 1 + Atomic.fetch_and_add occurrences.(i) 1 in
      if k = p.nth then begin
        Atomic.incr injected.(i);
        Some p.kind
      end
      else None

let latency_sleep () =
  let seed = match Atomic.get armed_plan with Some p -> p.seed | None -> 0 in
  (* deterministic 1–5 ms: long enough to perturb timing-sensitive
     code, short enough for a 24-cell bench matrix *)
  let ms = 1 + (mix_int seed 2 mod 5) in
  Unix.sleepf (float_of_int ms /. 1000.0)

let injected_total () =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 injected

let stats_json () =
  let open Opm_obs in
  let per_site get =
    Json.Obj
      (List.map
         (fun s ->
           (site_to_string s, Json.Int (Atomic.get (get (site_index s)))))
         all_sites)
  in
  Json.Obj
    [
      ( "armed",
        match armed () with
        | None -> Json.Null
        | Some p -> Json.String (plan_to_string p) );
      ("occurrences", per_site (Array.get occurrences));
      ("injected", per_site (Array.get injected));
      ("injected_total", Json.Int (injected_total ()));
    ]
