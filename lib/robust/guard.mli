(** Bounded-retry combinators and finiteness checks.

    These are the small, allocation-free primitives the fallback
    cascades are written with: "try this, then that", "retry at most
    [max] times", "is this vector clean". They never loop unboundedly
    and never swallow an exception they were not asked to. *)

val is_finite : float array -> bool
(** Every entry is neither NaN nor infinite. *)

val count_non_finite : float array -> int * int
(** [(nans, infs)] entry counts. *)

val attempts : max:int -> (int -> 'a option) -> 'a option
(** [attempts ~max f] calls [f 0], [f 1], … until one returns [Some]
    or [max] calls have been made. [f] receives the 0-based attempt
    number. Raises [Invalid_argument] if [max < 1]. *)

val first_some : (unit -> 'a option) list -> 'a option
(** Run an escalation ladder: evaluate each thunk in order, return the
    first [Some]. *)

val protect : (unit -> 'a) -> ('a, exn) result
(** Capture any exception as a value (for cascades that must try the
    next rung even when the previous one raised). *)
