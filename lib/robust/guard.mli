(** Bounded-retry combinators and finiteness checks.

    These are the small, allocation-free primitives the fallback
    cascades are written with: "try this, then that", "retry at most
    [max] times", "is this vector clean". They never loop unboundedly
    and never swallow an exception they were not asked to. *)

val is_finite : float array -> bool
(** Every entry is neither NaN nor infinite. *)

val count_non_finite : float array -> int * int
(** [(nans, infs)] entry counts. *)

val attempts : max:int -> (int -> 'a option) -> 'a option
(** [attempts ~max f] calls [f 0], [f 1], … until one returns [Some]
    or [max] calls have been made. [f] receives the 0-based attempt
    number. Raises [Invalid_argument] if [max < 1]. *)

val first_some : (unit -> 'a option) list -> 'a option
(** Run an escalation ladder: evaluate each thunk in order, return the
    first [Some]. *)

val protect : (unit -> 'a) -> ('a, exn) result
(** Capture any exception as a value (for cascades that must try the
    next rung even when the previous one raised). *)

val with_deadline : seconds:float -> site:string -> ((unit -> unit) -> 'a) -> 'a
(** [with_deadline ~seconds ~site f] runs [f check], where [check ()]
    raises [Opm_error.Deadline_exceeded] once the wall clock has moved
    more than [seconds] past entry. Enforcement is cooperative: [f]
    decides where the check-points are (nothing is preempted), so a
    loop that never calls [check] is never interrupted. Raises
    [Invalid_argument] if [seconds <= 0]. *)

val retry :
  ?attempts:int ->
  ?backoff_s:float ->
  ?factor:float ->
  ?jitter:float ->
  ?seed:int ->
  ?retry_on:(exn -> bool) ->
  (int -> 'a) ->
  'a
(** [retry f] calls [f 0]; on exception it sleeps an exponential
    backoff and retries with [f 1], [f 2], … up to [attempts] (default
    3) total calls, re-raising the last exception. The [k]-th delay is
    [backoff_s · factor^k] (defaults 0.01 s, ×2) scaled by a jitter
    factor drawn {e deterministically} from [seed] (splitmix64) in
    [1 ± jitter] (default ±10%) — two runs with the same seed sleep
    identical schedules, so retrying code stays replayable.
    [retry_on] (default: everything) filters which exceptions are
    retried; others propagate immediately. *)
