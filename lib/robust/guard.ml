let is_finite v =
  let ok = ref true in
  for i = 0 to Array.length v - 1 do
    if not (Float.is_finite v.(i)) then ok := false
  done;
  !ok

let count_non_finite v =
  let nans = ref 0 and infs = ref 0 in
  Array.iter
    (fun x ->
      if Float.is_nan x then incr nans
      else if not (Float.is_finite x) then incr infs)
    v;
  (!nans, !infs)

let attempts ~max f =
  if max < 1 then invalid_arg "Guard.attempts: max < 1";
  let rec go k = if k >= max then None else
    match f k with Some _ as r -> r | None -> go (k + 1)
  in
  go 0

let rec first_some = function
  | [] -> None
  | f :: rest -> ( match f () with Some _ as r -> r | None -> first_some rest)

let protect f = match f () with x -> Ok x | exception e -> Error e

let with_deadline ~seconds ~site f =
  if not (seconds > 0.0) then invalid_arg "Guard.with_deadline: seconds <= 0";
  let t0 = Unix.gettimeofday () in
  let check () =
    let elapsed_s = Unix.gettimeofday () -. t0 in
    if elapsed_s > seconds then
      Opm_error.raise_
        (Opm_error.Deadline_exceeded { site; elapsed_s; deadline_s = seconds })
  in
  f check

(* splitmix64 finaliser — deterministic jitter replayable from [seed] *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let unit_float seed k =
  let bits = mix64 (Int64.of_int ((seed * 0x9e3779b9) + k + 1)) in
  Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1p-53

let retry ?(attempts = 3) ?(backoff_s = 0.01) ?(factor = 2.0) ?(jitter = 0.1)
    ?(seed = 0) ?(retry_on = fun _ -> true) f =
  if attempts < 1 then invalid_arg "Guard.retry: attempts < 1";
  if backoff_s < 0.0 then invalid_arg "Guard.retry: backoff_s < 0";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Guard.retry: jitter outside [0, 1]";
  let rec go k =
    match f k with
    | x -> x
    | exception e when k + 1 < attempts && retry_on e ->
        let base = backoff_s *. (factor ** float_of_int k) in
        (* jitter scales the delay by a seeded factor in [1-j, 1+j] *)
        let delay = base *. (1.0 +. (jitter *. ((2.0 *. unit_float seed k) -. 1.0))) in
        if delay > 0.0 then Unix.sleepf delay;
        go (k + 1)
  in
  go 0
