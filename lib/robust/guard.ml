let is_finite v =
  let ok = ref true in
  for i = 0 to Array.length v - 1 do
    if not (Float.is_finite v.(i)) then ok := false
  done;
  !ok

let count_non_finite v =
  let nans = ref 0 and infs = ref 0 in
  Array.iter
    (fun x ->
      if Float.is_nan x then incr nans
      else if not (Float.is_finite x) then incr infs)
    v;
  (!nans, !infs)

let attempts ~max f =
  if max < 1 then invalid_arg "Guard.attempts: max < 1";
  let rec go k = if k >= max then None else
    match f k with Some _ as r -> r | None -> go (k + 1)
  in
  go 0

let rec first_some = function
  | [] -> None
  | f :: rest -> ( match f () with Some _ as r -> r | None -> first_some rest)

let protect f = match f () with x -> Ok x | exception e -> Error e
