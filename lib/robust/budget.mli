(** Cooperative deadline and resource budgets.

    A [Budget.t] is a mutable context a caller threads through
    [Engine]/[Window]/[Adaptive]/[Compiled_model] (as [?budget]). The
    solve path calls {!check_deadline} at column/window/step
    granularity and {!charge_factor}/{!charge_bytes} wherever it
    allocates or factorises; on breach a structured
    [Opm_error.Deadline_exceeded] / [Opm_error.Budget_exhausted] is
    raised at the next check-point. Enforcement is cooperative — a
    breach is noticed at the granularity of the checks, never by
    preemption — so the solution prefix computed before the breach is
    always internally consistent and (in the windowed driver)
    delivered to the caller together with a resumable checkpoint.

    When no budget is passed the solve paths skip every check; the
    disabled-path cost is one [Option] match per column (gated < 2%
    on the Table I kernel by [bench resilience]). *)

type t

val create :
  ?deadline_s:float -> ?max_factors:int -> ?max_heap_mb:float -> unit -> t
(** [create ()] with no limits never trips; each limit is optional.
    [deadline_s] is a wall-clock allowance measured from [create].
    [max_heap_mb] bounds the *estimated* resident matrix heap: sites
    that allocate factors/matrices charge their size and the running
    total is compared against this bound (it is an accounting
    estimate, not an OS resident-set probe). Raises [Invalid_argument]
    on non-positive limits. *)

val check_deadline : t -> site:string -> unit
(** Raise [Opm_error.Deadline_exceeded] if the wall clock has passed
    the deadline; [site] names the cooperative check-point. Intended
    for hot (per-column) call sites: the clock is consulted on the
    first and every 32nd check, so the detection latency is at most 32
    columns while the per-check cost stays at a counter increment. *)

val check_deadline_now : t -> site:string -> unit
(** Like {!check_deadline} but always reads the clock — for coarse
    call sites (window boundaries, adaptive trial steps). *)

val charge_factor : ?bytes:int -> t -> site:string -> unit
(** Count one factorisation (and optionally its estimated footprint);
    raise [Opm_error.Budget_exhausted] if the cap is exceeded. *)

val charge_bytes : t -> site:string -> int -> unit
(** Add [n] bytes to the resident-heap estimate and check the cap. *)

val release_bytes : t -> int -> unit
(** Subtract bytes when an accounted allocation is dropped (e.g. a
    factor-cache eviction); clamps at zero. *)

val elapsed_s : t -> float
val factors : t -> int
val heap_bytes : t -> int
val peak_heap_bytes : t -> int

val checks : t -> int
(** Number of deadline checks performed (observability). *)

val to_json : t -> Opm_obs.Json.t
(** Snapshot for the report's [resilience] section. *)
