type t =
  | Singular_pencil of {
      column : int;
      step : int;
      pivot : float;
      name : string option;
    }
  | Non_finite of {
      stage : string;
      column : int option;
      nans : int;
      infs : int;
    }
  | Ill_conditioned of { cond : float; limit : float; column : int option }
  | Parse_error of { line : int; message : string }
  | Resource_limit of { what : string; limit : int }
  | Deadline_exceeded of { site : string; elapsed_s : float; deadline_s : float }
  | Budget_exhausted of { what : string; used : int; limit : int; site : string }
  | Io_error of { path : string; message : string }
  | Checkpoint_error of { path : string; message : string }
  | Fault_injected of { site : string; kind : string }

exception Error of t

let raise_ e = raise (Error e)

let column_suffix = function
  | None -> ""
  | Some c -> Printf.sprintf " (time column %d)" c

let to_string = function
  | Singular_pencil { column; step; pivot; name } ->
      let who =
        match name with
        | Some n -> Printf.sprintf "state %S (index %d)" n step
        | None -> Printf.sprintf "elimination step %d" step
      in
      Printf.sprintf
        "singular pencil: no acceptable pivot at %s while solving time \
         column %d (best candidate %.3g) — the circuit has a redundant or \
         contradictory constraint (e.g. a shorted/duplicated voltage source \
         or a floating subcircuit)"
        who column pivot
  | Non_finite { stage; column; nans; infs } ->
      Printf.sprintf
        "non-finite result in stage %S%s: %d NaN and %d Inf entries survived \
         every fallback" stage (column_suffix column) nans infs
  | Ill_conditioned { cond; limit; column } ->
      Printf.sprintf
        "ill-conditioned system%s: 1-norm condition estimate %.3g exceeds \
         limit %.3g" (column_suffix column) cond limit
  | Parse_error { line; message } ->
      Printf.sprintf "parse error at line %d: %s" line message
  | Resource_limit { what; limit } ->
      Printf.sprintf "resource limit: %s exceeded its bound of %d" what limit
  | Deadline_exceeded { site; elapsed_s; deadline_s } ->
      Printf.sprintf
        "deadline exceeded at %s: %.3f s elapsed against a %.3f s budget \
         (partial results up to the last completed window are available)"
        site elapsed_s deadline_s
  | Budget_exhausted { what; used; limit; site } ->
      Printf.sprintf "budget exhausted at %s: %s used %d of %d allowed" site
        what used limit
  | Io_error { path; message } ->
      Printf.sprintf "i/o error on %S: %s" path message
  | Checkpoint_error { path; message } ->
      Printf.sprintf "checkpoint error on %S: %s" path message
  | Fault_injected { site; kind } ->
      Printf.sprintf "injected fault fired at site %s (kind %s)" site kind

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Opm_error.Error: " ^ to_string e)
    | _ -> None)
