type event =
  | Refined of {
      column : int;
      residual_before : float;
      residual_after : float;
      kept : bool;
    }
  | Strict_refactor of { column : int }
  | Dense_fallback of { column : int }
  | Step_halved of { t : float; h : float; retry : int }

let event_to_string = function
  | Refined { column; residual_before; residual_after; kept } ->
      Printf.sprintf
        "iterative refinement on column %d: residual %.3g -> %.3g (%s)" column
        residual_before residual_after
        (if kept then "kept" else "discarded")
  | Strict_refactor { column } ->
      Printf.sprintf
        "column %d: re-factored with strict partial pivoting (pivot_tol = 1)"
        column
  | Dense_fallback { column } ->
      Printf.sprintf "column %d: sparse factorisation fell back to dense LU"
        column
  | Step_halved { t; h; retry } ->
      Printf.sprintf
        "adaptive: non-finite trial at t=%g, step halved to %g (retry %d)" t h
        retry

type t = {
  mutable columns : int;
  mutable nans : int;
  mutable infs : int;
  mutable max_residual : float;
  mutable worst_cond : float;
  mutable rev_events : event list;
}

let create () =
  {
    columns = 0;
    nans = 0;
    infs = 0;
    max_residual = 0.0;
    worst_cond = 0.0;
    rev_events = [];
  }

let record_vec t v =
  t.columns <- t.columns + 1;
  let nans, infs = Guard.count_non_finite v in
  t.nans <- t.nans + nans;
  t.infs <- t.infs + infs

let record_residual t r =
  (* a NaN residual must not be lost to [Float.max]'s NaN handling *)
  if Float.is_nan r then t.max_residual <- Float.infinity
  else if r > t.max_residual then t.max_residual <- r

let record_cond t c = if c > t.worst_cond then t.worst_cond <- c

let record_event t e = t.rev_events <- e :: t.rev_events

let columns t = t.columns
let nans t = t.nans
let infs t = t.infs
let max_residual t = t.max_residual
let worst_cond t = t.worst_cond
let events t = List.rev t.rev_events
let fallback_count t = List.length t.rev_events

let default_cond_limit = 1e8

let warnings ?(cond_limit = default_cond_limit) t =
  let w = ref [] in
  let add fmt = Printf.ksprintf (fun s -> w := s :: !w) fmt in
  if t.nans > 0 || t.infs > 0 then
    add "%d NaN and %d Inf entries in the solution" t.nans t.infs;
  if t.worst_cond > cond_limit then
    add "worst condition estimate %.3g exceeds %.3g — expect %.0f-digit loss"
      t.worst_cond cond_limit
      (Float.min 16.0 (Float.max 0.0 (Float.log10 t.worst_cond)));
  if t.rev_events <> [] then
    add "%d fallback event(s) taken (run was recoverable, not clean)"
      (List.length t.rev_events);
  List.rev !w

let event_to_json e =
  let open Opm_obs in
  match e with
  | Refined { column; residual_before; residual_after; kept } ->
      Json.Obj
        [
          ("kind", Json.String "refined");
          ("column", Json.Int column);
          ("residual_before", Json.Float residual_before);
          ("residual_after", Json.Float residual_after);
          ("kept", Json.Bool kept);
        ]
  | Strict_refactor { column } ->
      Json.Obj
        [ ("kind", Json.String "strict_refactor"); ("column", Json.Int column) ]
  | Dense_fallback { column } ->
      Json.Obj
        [ ("kind", Json.String "dense_fallback"); ("column", Json.Int column) ]
  | Step_halved { t; h; retry } ->
      Json.Obj
        [
          ("kind", Json.String "step_halved");
          ("t", Json.Float t);
          ("h", Json.Float h);
          ("retry", Json.Int retry);
        ]

let to_json ?cond_limit t =
  let open Opm_obs in
  Json.Obj
    [
      ("columns", Json.Int t.columns);
      ("nans", Json.Int t.nans);
      ("infs", Json.Int t.infs);
      ("max_residual", Json.Float t.max_residual);
      ("worst_cond", Json.Float t.worst_cond);
      ("events", Json.List (List.map event_to_json (events t)));
      ( "warnings",
        Json.List (List.map (fun w -> Json.String w) (warnings ?cond_limit t))
      );
    ]

let to_string ?cond_limit t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "simulation health report";
  line "  columns checked:      %d" t.columns;
  line "  non-finite entries:   %d NaN, %d Inf" t.nans t.infs;
  line "  max column residual:  %.6g" t.max_residual;
  line "  worst cond estimate:  %.6g" t.worst_cond;
  line "  fallback events:      %d" (List.length t.rev_events);
  List.iter (fun e -> line "    - %s" (event_to_string e)) (events t);
  (match warnings ?cond_limit t with
  | [] -> line "status: ok"
  | ws ->
      line "status: %d warning(s)" (List.length ws);
      List.iter (fun w -> line "  warning: %s" w) ws);
  Buffer.contents b
