type event =
  | Refined of {
      column : int;
      residual_before : float;
      residual_after : float;
      kept : bool;
    }
  | Strict_refactor of { column : int }
  | Dense_fallback of { column : int }
  | Step_halved of { t : float; h : float; retry : int }

let event_to_string = function
  | Refined { column; residual_before; residual_after; kept } ->
      Printf.sprintf
        "iterative refinement on column %d: residual %.3g -> %.3g (%s)" column
        residual_before residual_after
        (if kept then "kept" else "discarded")
  | Strict_refactor { column } ->
      Printf.sprintf
        "column %d: re-factored with strict partial pivoting (pivot_tol = 1)"
        column
  | Dense_fallback { column } ->
      Printf.sprintf "column %d: sparse factorisation fell back to dense LU"
        column
  | Step_halved { t; h; retry } ->
      Printf.sprintf
        "adaptive: non-finite trial at t=%g, step halved to %g (retry %d)" t h
        retry

type t = {
  mutable columns : int;
  mutable nans : int;
  mutable infs : int;
  mutable max_residual : float;
  mutable worst_cond : float;
  mutable rev_events : event list;
  mutable stored_events : int;
  mutable total_events : int;
}

(* bounded-artifact discipline: a pathological 100K-column run keeps a
   fixed-size event buffer plus counters, never an unbounded list *)
let event_cap = 512

let create () =
  {
    columns = 0;
    nans = 0;
    infs = 0;
    max_residual = 0.0;
    worst_cond = 0.0;
    rev_events = [];
    stored_events = 0;
    total_events = 0;
  }

let record_vec t v =
  t.columns <- t.columns + 1;
  let nans, infs = Guard.count_non_finite v in
  t.nans <- t.nans + nans;
  t.infs <- t.infs + infs

let record_residual t r =
  (* a NaN residual must not be lost to [Float.max]'s NaN handling *)
  if Float.is_nan r then t.max_residual <- Float.infinity
  else if r > t.max_residual then t.max_residual <- r

let record_cond t c = if c > t.worst_cond then t.worst_cond <- c

let record_event t e =
  t.total_events <- t.total_events + 1;
  if t.stored_events < event_cap then begin
    t.rev_events <- e :: t.rev_events;
    t.stored_events <- t.stored_events + 1
  end

let columns t = t.columns
let nans t = t.nans
let infs t = t.infs
let max_residual t = t.max_residual
let worst_cond t = t.worst_cond
let events t = List.rev t.rev_events
let fallback_count t = t.total_events
let dropped_events t = t.total_events - t.stored_events

(* collapse runs of identical renderings into (line, count) pairs, so a
   column-per-column fallback storm prints once with a multiplier *)
let group_consecutive strings =
  List.fold_left
    (fun acc s ->
      match acc with
      | (s', k) :: rest when String.equal s s' -> (s', k + 1) :: rest
      | _ -> (s, 1) :: acc)
    [] strings
  |> List.rev

let counted (s, k) = if k = 1 then s else Printf.sprintf "%s ×%d" s k

let default_cond_limit = 1e8

let warnings ?(cond_limit = default_cond_limit) t =
  let w = ref [] in
  let add fmt = Printf.ksprintf (fun s -> w := s :: !w) fmt in
  if t.nans > 0 || t.infs > 0 then
    add "%d NaN and %d Inf entries in the solution" t.nans t.infs;
  if t.worst_cond > cond_limit then
    add "worst condition estimate %.3g exceeds %.3g — expect %.0f-digit loss"
      t.worst_cond cond_limit
      (Float.min 16.0 (Float.max 0.0 (Float.log10 t.worst_cond)));
  if t.total_events > 0 then
    add "%d fallback event(s) taken (run was recoverable, not clean)"
      t.total_events;
  if dropped_events t > 0 then
    add "event buffer capped at %d: %d further event(s) counted but not stored"
      event_cap (dropped_events t);
  List.map counted (group_consecutive (List.rev !w))

let event_to_json e =
  let open Opm_obs in
  match e with
  | Refined { column; residual_before; residual_after; kept } ->
      Json.Obj
        [
          ("kind", Json.String "refined");
          ("column", Json.Int column);
          ("residual_before", Json.Float residual_before);
          ("residual_after", Json.Float residual_after);
          ("kept", Json.Bool kept);
        ]
  | Strict_refactor { column } ->
      Json.Obj
        [ ("kind", Json.String "strict_refactor"); ("column", Json.Int column) ]
  | Dense_fallback { column } ->
      Json.Obj
        [ ("kind", Json.String "dense_fallback"); ("column", Json.Int column) ]
  | Step_halved { t; h; retry } ->
      Json.Obj
        [
          ("kind", Json.String "step_halved");
          ("t", Json.Float t);
          ("h", Json.Float h);
          ("retry", Json.Int retry);
        ]

let to_json ?cond_limit t =
  let open Opm_obs in
  Json.Obj
    [
      ("columns", Json.Int t.columns);
      ("nans", Json.Int t.nans);
      ("infs", Json.Int t.infs);
      ("max_residual", Json.Float t.max_residual);
      ("worst_cond", Json.Float t.worst_cond);
      ("total_events", Json.Int t.total_events);
      ("dropped_events", Json.Int (dropped_events t));
      ("events", Json.List (List.map event_to_json (events t)));
      ( "warnings",
        Json.List (List.map (fun w -> Json.String w) (warnings ?cond_limit t))
      );
    ]

let to_string ?cond_limit t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "simulation health report";
  line "  columns checked:      %d" t.columns;
  line "  non-finite entries:   %d NaN, %d Inf" t.nans t.infs;
  line "  max column residual:  %.6g" t.max_residual;
  line "  worst cond estimate:  %.6g" t.worst_cond;
  line "  fallback events:      %d" t.total_events;
  List.iter
    (fun g -> line "    - %s" (counted g))
    (group_consecutive (List.map event_to_string (events t)));
  if dropped_events t > 0 then
    line "    … %d more event(s) beyond the %d-entry cap (counted, not stored)"
      (dropped_events t) event_cap;
  (match warnings ?cond_limit t with
  | [] -> line "status: ok"
  | ws ->
      line "status: %d warning(s)" (List.length ws);
      List.iter (fun w -> line "  warning: %s" w) ws);
  Buffer.contents b
