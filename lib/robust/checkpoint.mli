(** Versioned, checksummed, atomically-written checkpoint files.

    This module owns the on-disk envelope only; the *payload* is an
    opaque [Opm_obs.Json] value built by the owner of the state
    ([Window.solve] serialises its cross-window handoff state here —
    the matrix types live above this library). Envelope format:

    {v
    { "schema": "opm-checkpoint-v1", "version": 1,
      "checksum": "<fnv1a-64 hex of the compact payload text>",
      "payload": { ... } }
    v}

    {!save} writes to [path ^ ".tmp"] then renames, so an interrupted
    write (crash, injected ENOSPC) leaves the previous checkpoint
    intact — the property the kill/resume differential test relies
    on. {!load} verifies schema, version and checksum and raises
    structured [Opm_error.Checkpoint_error] on any mismatch.

    Float state must round-trip bit-exactly (a resumed run is
    bit-identical to an uninterrupted one), so array payloads are
    encoded as IEEE-754 bits in hex via {!encode_floats} — JSON
    decimal text cannot represent NaN/Inf and would tempt lossy
    round-trips. *)

val schema : string
(** ["opm-checkpoint-v1"]. *)

val version : int

val encode_floats : float array -> Opm_obs.Json.t
(** 16 lowercase hex digits per element (IEEE-754 bits, big-endian
    digit order); round-trips every bit pattern including NaN/Inf. *)

val decode_floats : Opm_obs.Json.t -> float array
(** Inverse of {!encode_floats}; raises [Invalid_argument] on
    malformed input (callers wrap into [Checkpoint_error]). *)

val checksum_of_payload : Opm_obs.Json.t -> string
(** FNV-1a 64-bit over the compact serialisation, as 16 hex digits. *)

val save : path:string -> Opm_obs.Json.t -> unit
(** Atomic write (tmp + rename) of the enveloped payload. Raises
    [Opm_error.Io_error] on filesystem failure. This is the
    [Checkpoint_write] fault-injection site: an armed [Enospc] raises
    the structured error {e before} touching the file, [Latency]
    sleeps, other kinds raise [Fault_injected]. Observability:
    [checkpoint.writes] counter and [checkpoint.write_seconds] lap
    histogram. *)

val load : path:string -> Opm_obs.Json.t
(** Parse, verify schema/version/checksum, return the payload. Raises
    [Opm_error.Checkpoint_error] on a missing, unparsable, wrong-
    version or corrupt file. *)
