(* Cooperative resource budget: wall-clock deadline, factorisation
   count, and a resident-heap estimate charged by the allocating code.
   All checks are explicit calls placed at column/window/step
   granularity by the solve path — nothing here preempts anything. *)

type t = {
  created : float;
  deadline : float option; (* absolute Unix time *)
  deadline_s : float option; (* original relative budget, for messages *)
  max_factors : int option;
  max_heap_bytes : int option;
  mutable factors : int;
  mutable heap_bytes : int;
  mutable peak_heap_bytes : int;
  mutable checks : int;
}

let create ?deadline_s ?max_factors ?max_heap_mb () =
  (match deadline_s with
  | Some d when d <= 0.0 -> invalid_arg "Budget.create: deadline_s <= 0"
  | _ -> ());
  (match max_factors with
  | Some k when k <= 0 -> invalid_arg "Budget.create: max_factors <= 0"
  | _ -> ());
  (match max_heap_mb with
  | Some mb when mb <= 0.0 -> invalid_arg "Budget.create: max_heap_mb <= 0"
  | _ -> ());
  let now = Unix.gettimeofday () in
  {
    created = now;
    deadline = Option.map (fun d -> now +. d) deadline_s;
    deadline_s;
    max_factors;
    max_heap_bytes =
      Option.map (fun mb -> int_of_float (mb *. 1024.0 *. 1024.0)) max_heap_mb;
    factors = 0;
    heap_bytes = 0;
    peak_heap_bytes = 0;
    checks = 0;
  }

let elapsed_s t = Unix.gettimeofday () -. t.created

(* Column-granularity call sites check at microsecond cadence while the
   deadline is seconds-scale, so reading the clock on every check would
   dominate the cost of the check itself. Consult it every [stride]-th
   call (plus the first, so short deadlines on long columns still trip
   promptly); coarse call sites (window/step boundaries) use
   [check_deadline_now] and always read the clock. *)
let deadline_stride = 32

let trip t ~site now =
  Opm_error.raise_
    (Opm_error.Deadline_exceeded
       {
         site;
         elapsed_s = now -. t.created;
         deadline_s =
           Option.value t.deadline_s
             ~default:
               (match t.deadline with
               | Some d -> d -. t.created
               | None -> 0.0);
       })

let check_deadline_now t ~site =
  t.checks <- t.checks + 1;
  match t.deadline with
  | None -> ()
  | Some d ->
      let now = Unix.gettimeofday () in
      if now > d then trip t ~site now

let check_deadline t ~site =
  t.checks <- t.checks + 1;
  match t.deadline with
  | None -> ()
  | Some d ->
      if t.checks mod deadline_stride = 1 then begin
        let now = Unix.gettimeofday () in
        if now > d then trip t ~site now
      end

let charge_bytes t ~site n =
  if n > 0 then begin
    t.heap_bytes <- t.heap_bytes + n;
    if t.heap_bytes > t.peak_heap_bytes then t.peak_heap_bytes <- t.heap_bytes;
    match t.max_heap_bytes with
    | Some limit when t.heap_bytes > limit ->
        Opm_error.raise_
          (Opm_error.Budget_exhausted
             { what = "heap_bytes"; used = t.heap_bytes; limit; site })
    | _ -> ()
  end

let release_bytes t n =
  if n > 0 then t.heap_bytes <- max 0 (t.heap_bytes - n)

let charge_factor ?(bytes = 0) t ~site =
  t.factors <- t.factors + 1;
  (match t.max_factors with
  | Some limit when t.factors > limit ->
      Opm_error.raise_
        (Opm_error.Budget_exhausted
           { what = "factorisations"; used = t.factors; limit; site })
  | _ -> ());
  charge_bytes t ~site bytes

let factors t = t.factors
let heap_bytes t = t.heap_bytes
let peak_heap_bytes t = t.peak_heap_bytes
let checks t = t.checks

let to_json t =
  let open Opm_obs in
  let opt_int = function None -> Json.Null | Some v -> Json.Int v in
  let opt_float = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("deadline_s", opt_float t.deadline_s);
      ("elapsed_s", Json.Float (elapsed_s t));
      ("max_factors", opt_int t.max_factors);
      ("factors", Json.Int t.factors);
      ("max_heap_bytes", opt_int t.max_heap_bytes);
      ("heap_bytes", Json.Int t.heap_bytes);
      ("peak_heap_bytes", Json.Int t.peak_heap_bytes);
      ("checks", Json.Int t.checks);
    ]
