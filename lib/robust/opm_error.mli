(** Structured errors for the solve path.

    Every guarded failure mode of the simulator is a constructor here,
    so drivers ([bin/opm_sim], tests, services embedding the library)
    can react to *what* failed — which column of the coefficient
    equation, at which escalation stage, with what pivot magnitude —
    instead of pattern-matching on a [Failure] string. The engine only
    raises {!Error} after its fallback cascade (iterative refinement →
    strict pivoting → sparse→dense) is exhausted. *)

type t =
  | Singular_pencil of {
      column : int;  (** time column of the coefficient equation *)
      step : int;  (** elimination step / matrix column that ran out of
                       pivots (a state index for the MNA pencil) *)
      pivot : float;  (** magnitude of the best rejected pivot *)
      name : string option;  (** state name for [step], when known *)
    }
      (** No acceptable pivot while factorising [d_ii·E − A], even with
          strict partial pivoting and a dense fallback. *)
  | Non_finite of {
      stage : string;  (** e.g. ["solve"], ["adaptive"], ["output"] *)
      column : int option;  (** offending time column, when known *)
      nans : int;
      infs : int;
    }
      (** A result vector contained NaN/Inf after every fallback. *)
  | Ill_conditioned of {
      cond : float;  (** 1-norm condition estimate *)
      limit : float;  (** threshold that was exceeded *)
      column : int option;
    }
      (** Reserved for strict modes that promote a condition warning to
          an error; the engine itself only warns. *)
  | Parse_error of { line : int; message : string }
      (** Netlist syntax error (mirror of [Circuit.Parser.Parse_error]
          for uniform rendering). *)
  | Resource_limit of { what : string; limit : int }
      (** A bounded retry loop hit its cap, e.g. adaptive local grid
          refinement. *)
  | Deadline_exceeded of {
      site : string;  (** cooperative check-point that noticed, e.g.
                          ["engine.column"] or ["window.boundary"] *)
      elapsed_s : float;
      deadline_s : float;
    }
      (** A {!Budget} wall-clock deadline passed. The windowed driver
          re-raises this wrapped in [Window.Interrupted] carrying the
          usable solution prefix and the last checkpoint path. *)
  | Budget_exhausted of {
      what : string;  (** ["factorisations"] or ["heap_bytes"] *)
      used : int;
      limit : int;
      site : string;
    }  (** A countable {!Budget} resource ran out. *)
  | Io_error of { path : string; message : string }
      (** A filesystem operation (checkpoint write, report export)
          failed — includes simulated ENOSPC from fault injection. *)
  | Checkpoint_error of { path : string; message : string }
      (** A checkpoint file failed to load: missing, unparsable, wrong
          schema/version, checksum mismatch, or fingerprint conflict
          with the run being resumed. *)
  | Fault_injected of { site : string; kind : string }
      (** An armed {!Fault} plan fired a kind the site has no natural
          mechanical simulation for; always a structured failure, never
          a silent wrong answer. *)

exception Error of t

val raise_ : t -> 'a
(** [raise_ e] raises [Error e]. *)

val to_string : t -> string
(** One-line human-readable rendering. *)
