(** Simulation health report.

    A mutable collector threaded (optionally) through the solve path.
    The engine records, per column: NaN/Inf counts, the residual
    [‖(Σ_k d_ii E_k − A) x_i − rhs_i‖∞] (whose column-wise maximum
    equals [‖Σ_k E_k X D_k − A X − BU‖∞] for the triangular solvers),
    the worst 1-norm condition estimate seen on any diagonal-block
    factor, and every fallback the cascade took. Collection is
    observational: passing a collector never changes the computed
    solution (the cascade runs with or without one). *)

type event =
  | Refined of {
      column : int;
      residual_before : float;
      residual_after : float;
      kept : bool;  (** refined column kept (residual improved) *)
    }  (** one step of iterative refinement was attempted *)
  | Strict_refactor of { column : int }
      (** sparse diagonal block re-factored with [pivot_tol = 1.0] *)
  | Dense_fallback of { column : int }
      (** sparse factorisation abandoned for a dense LU *)
  | Step_halved of { t : float; h : float; retry : int }
      (** adaptive driver halved a step that produced non-finite values *)

val event_to_string : event -> string

type t

val create : unit -> t

(** {2 Recording (engine side)} *)

val record_vec : t -> float array -> unit
(** Count the NaN/Inf entries of a result column. *)

val record_residual : t -> float -> unit

val record_cond : t -> float -> unit

val record_event : t -> event -> unit

(** {2 Reading (driver side)} *)

val columns : t -> int
(** Result columns checked so far (one {!record_vec} each). *)

val nans : t -> int

val infs : t -> int

val max_residual : t -> float
(** [0.] when no residual was recorded. *)

val worst_cond : t -> float
(** [0.] when no factor was estimated. *)

val events : t -> event list
(** In chronological order; at most {!event_cap} entries are stored
    (bounded-artifact discipline — events past the cap are counted but
    dropped, so a pathological 100K-column fallback storm cannot OOM
    the collector). *)

val fallback_count : t -> int
(** Total events recorded, {e including} those dropped past the cap. *)

val event_cap : int
(** Fixed storage bound on {!events} (512). *)

val dropped_events : t -> int
(** Events recorded beyond the cap ([fallback_count - stored]). *)

val default_cond_limit : float
(** [1e8] — above this 1-norm condition estimate the engine attempts
    one step of iterative refinement and the report flags a warning. *)

val warnings : ?cond_limit:float -> t -> string list
(** Empty iff the run was clean: finite everywhere, no fallback events,
    worst condition estimate below [cond_limit]
    (default {!default_cond_limit}). *)

val to_string : ?cond_limit:float -> t -> string
(** Multi-line report: counters first, then fallback events, then
    warnings (or ["status: ok"]). *)

val to_json : ?cond_limit:float -> t -> Opm_obs.Json.t
(** The same report as a JSON object
    [{columns, nans, infs, max_residual, worst_cond, events, warnings}]
    — the ["health"] block of an {i Opm_obs.Report} document. A clean
    run has empty [events] and [warnings]. *)
