(* Versioned, checksummed checkpoint envelope.

   The payload is an opaque Json value built by the owner of the state
   (Window.solve builds the cross-window handoff payload — the Csr/Mat
   types live above this library). This module owns the envelope:

     { "schema": "opm-checkpoint-v1", "version": 1,
       "checksum": "<fnv1a64 hex of compact payload>",
       "payload": {...} }

   Writes are atomic (tmp file + rename) so a crash mid-write leaves
   the previous checkpoint intact; loads verify schema, version and
   checksum and raise structured Opm_error.Checkpoint_error on any
   mismatch. Float state must be encoded with encode_floats /
   decode_floats (IEEE-754 bits as hex), which round-trips NaN/Inf and
   every payload bit exactly — Json prints non-finite floats as null,
   and decimal round-trips would break the bit-identity contract. *)

module Json = Opm_obs.Json
module Metrics = Opm_obs.Metrics

let schema = "opm-checkpoint-v1"
let version = 1

let write_seconds = Metrics.histogram "checkpoint.write_seconds"
let writes = Metrics.counter "checkpoint.writes"
let loads = Metrics.counter "checkpoint.loads"

(* FNV-1a, 64-bit *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let hex_of_float x =
  Printf.sprintf "%016Lx" (Int64.bits_of_float x)

let encode_floats v =
  let b = Buffer.create (16 * Array.length v) in
  Array.iter (fun x -> Buffer.add_string b (hex_of_float x)) v;
  Json.String (Buffer.contents b)

let decode_floats j =
  match j with
  | Json.String s when String.length s mod 16 = 0 ->
      Array.init
        (String.length s / 16)
        (fun i ->
          match Int64.of_string_opt ("0x" ^ String.sub s (i * 16) 16) with
          | Some bits -> Int64.float_of_bits bits
          | None -> invalid_arg "Checkpoint.decode_floats: non-hex digit")
  | _ -> invalid_arg "Checkpoint.decode_floats: expected a hex string"

let checksum_of_payload payload = fnv1a64 (Json.to_string payload)

let io_error path message =
  Opm_error.raise_ (Opm_error.Io_error { path; message })

let save ~path payload =
  let t0 = Metrics.lap_start () in
  (match Fault.fire Fault.Checkpoint_write with
  | Some Fault.Enospc ->
      io_error path "No space left on device (injected ENOSPC)"
  | Some Fault.Latency -> Fault.latency_sleep ()
  | Some (Fault.Singular | Fault.Nan_poison) ->
      Opm_error.raise_
        (Opm_error.Fault_injected
           {
             site = Fault.site_to_string Fault.Checkpoint_write;
             kind =
               (match Fault.armed () with
               | Some p -> Fault.kind_to_string p.kind
               | None -> "unknown");
           })
  | None -> ());
  let doc =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("version", Json.Int version);
        ("checksum", Json.String (checksum_of_payload payload));
        ("payload", payload);
      ]
  in
  let tmp = path ^ ".tmp" in
  (try Json.to_file tmp doc with Sys_error m -> io_error tmp m);
  (try Sys.rename tmp path
   with Sys_error m ->
     (try Sys.remove tmp with Sys_error _ -> ());
     io_error path m);
  Metrics.incr writes;
  ignore (Metrics.lap write_seconds t0)

let cp_error path message =
  Opm_error.raise_ (Opm_error.Checkpoint_error { path; message })

let load ~path =
  Metrics.incr loads;
  let doc =
    try Json.of_file path with
    | Sys_error m -> cp_error path m
    | Json.Parse_error { pos; message } ->
        cp_error path (Printf.sprintf "parse error at offset %d: %s" pos message)
  in
  (match Json.member "schema" doc with
  | Some (Json.String s) when s = schema -> ()
  | Some (Json.String s) ->
      cp_error path (Printf.sprintf "schema %S, expected %S" s schema)
  | _ -> cp_error path "missing schema field");
  (match Option.map Json.to_int_opt (Json.member "version" doc) with
  | Some (Some v) when v = version -> ()
  | Some (Some v) ->
      cp_error path
        (Printf.sprintf "version %d not supported (this build reads %d)" v
           version)
  | _ -> cp_error path "missing version field");
  let stored =
    match Option.map Json.to_string_opt (Json.member "checksum" doc) with
    | Some (Some c) -> c
    | _ -> cp_error path "missing checksum field"
  in
  let payload =
    match Json.member "payload" doc with
    | Some p -> p
    | None -> cp_error path "missing payload field"
  in
  let actual = checksum_of_payload payload in
  if not (String.equal stored actual) then
    cp_error path
      (Printf.sprintf "checksum mismatch: stored %s, computed %s (corrupt or \
                       truncated file)" stored actual);
  payload
