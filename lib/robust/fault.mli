(** Seeded, deterministic fault injection.

    A single global {!plan} (armed programmatically with {!arm} or
    from the [OPM_FAULT_PLAN] environment variable) describes one
    fault: at which instrumented {!site}, of which {!kind}, on which
    1-based occurrence ([nth]) of that site. Instrumented code calls
    [fire site] at each occurrence and interprets a returned kind
    mechanically — e.g. the engine's factor site simulates a pivot
    failure for [Singular] (exercising the strict-refactor recovery),
    the column-solve site overwrites a solution entry with NaN for
    [Nan_poison] (exercising the non-finite cascade), the checkpoint
    writer raises a simulated ENOSPC, and [Latency] sleeps a seeded
    1–5 ms. Kinds with no natural mechanical simulation at a site are
    raised as structured [Opm_error.Fault_injected] — the invariant,
    asserted by [bench resilience] over the full site × kind matrix,
    is that an injected fault always yields a structured error or a
    correct recovery, never a silently wrong answer.

    The plan string is [seed:site:nth] (kind derived deterministically
    from the seed) or [seed:site:kind:nth] (explicit). Sites:
    [factor], [column-solve], [fft-block], [window-handoff],
    [checkpoint-write], [pool-dispatch], [accept], [request-dispatch].
    Kinds: [singular], [nan-poison], [enospc], [latency].

    When no plan is armed, [fire] is one atomic load — the
    disabled-path overhead gated by [bench resilience]. Counters are
    atomic; the pool-dispatch site fires from worker domains and the
    two server sites from the daemon's accept/connection threads. *)

type site =
  | Factor  (** pencil factorisation (dense LU / sparse LU) *)
  | Column_solve  (** per-column triangular solve *)
  | Fft_block  (** FFT blocked-convolution history query *)
  | Window_handoff  (** cross-window state carry in [Window.solve] *)
  | Checkpoint_write  (** atomic checkpoint file write *)
  | Pool_dispatch  (** parallel-pool chunk dispatch *)
  | Accept  (** [opm_serve] connection accept *)
  | Request_dispatch  (** [opm_serve] parsed-request dispatch *)

type kind = Singular | Nan_poison | Enospc | Latency

type plan = { seed : int; site : site; kind : kind; nth : int }

val all_sites : site list
val all_kinds : kind list

val site_to_string : site -> string
val site_of_string : string -> site option
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val plan_of_string : string -> (plan, string) result
(** Parse [seed:site:nth] or [seed:site:kind:nth]; [nth] is 1-based. *)

val plan_to_string : plan -> string

val arm : plan -> unit
(** Install the plan and reset all occurrence counters. *)

val disarm : unit -> unit

val armed : unit -> plan option

val arm_from_env : unit -> (bool, string) result
(** Arm from [OPM_FAULT_PLAN] if set; [Ok true] when a plan was armed,
    [Ok false] when the variable is unset/empty, [Error msg] when it
    is malformed. *)

val fire : site -> kind option
(** Count one occurrence of [site]; return the armed kind iff this is
    the plan's [nth] occurrence of the plan's site. [None] always when
    disarmed. *)

val latency_sleep : unit -> unit
(** Sleep the plan's seeded 1–5 ms latency (call on [Some Latency]). *)

val injected_total : unit -> int
(** Faults actually fired since the last [arm]/[disarm]. *)

val stats_json : unit -> Opm_obs.Json.t
(** [{armed, occurrences, injected, injected_total}] for the report's
    [resilience] section. *)
