(** Dense nonsymmetric eigenvalues.

    Classic two-stage reduction: similarity transformation to upper
    Hessenberg form (stabilised elementary eliminations) followed by the
    Francis implicit double-shift QR iteration, so complex-conjugate
    pairs come out without complex arithmetic. This powers the pole
    analysis of stamped circuits ({!Opm_analysis.Poles}) and the
    stability checks in the tests.

    Eigen{i vectors} are not computed — OPM never needs them (that is
    rather the point of the paper: fractional powers of the operational
    matrix are taken through series/Parlett, not eigendecomposition,
    when eigenvectors are deficient). *)

exception No_convergence of int
(** QR failed to deflate an eigenvalue within the iteration budget; the
    payload is the stuck index. Practically unreachable for the
    balanced circuit matrices this library produces. *)

val hessenberg : Mat.t -> Mat.t
(** Similarity-equivalent upper Hessenberg form (entries below the first
    subdiagonal are exactly zero). Raises [Invalid_argument] on
    non-square input. *)

val eigenvalues : Mat.t -> Complex.t array
(** All [n] eigenvalues, unordered; conjugate pairs appear adjacently. *)

val spectral_abscissa : Mat.t -> float
(** [max Re λ] — negative iff the matrix is Hurwitz-stable. *)
