(** Discrete Fourier transforms.

    Radix-2 Cooley–Tukey for power-of-two lengths and Bluestein's chirp-z
    algorithm for arbitrary lengths (Table I's "FFT-2" uses 100 frequency
    samples, which is not a power of two). Conventions:
    forward [X_k = Σ_n x_n e^{-2πi kn/N}], inverse divides by [N]. *)

val is_power_of_two : int -> bool

val fft : Complex.t array -> Complex.t array
(** Forward DFT of any length ([length >= 1]). Power-of-two inputs take
    the radix-2 path; others go through Bluestein. *)

val ifft : Complex.t array -> Complex.t array
(** Inverse DFT (normalised by [1/N]). *)

val dft_naive : Complex.t array -> Complex.t array
(** O(N²) reference implementation, used by the tests as the oracle. *)

val fft_real : float array -> Complex.t array
(** Forward DFT of a real signal. *)

val frequencies : int -> float -> float array
(** [frequencies n dt] are the angular frequencies [ω_k] (rad/s) matching
    the DFT bin layout for [n] samples spaced [dt] apart: bins
    [0 … n/2] map to [2πk/(n·dt)] and the upper bins to the negative
    frequencies [2π(k−n)/(n·dt)]. *)
