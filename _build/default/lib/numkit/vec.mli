(** Dense vectors of floats.

    A vector is a plain [float array]; this module gathers the numerical
    helpers the rest of the library needs (BLAS-1 style operations, norms,
    comparisons with tolerances). All functions are pure unless suffixed
    with [_inplace]. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val zeros : int -> t

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive. [n >= 2]. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Raises [Invalid_argument] on dimension mismatch. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)] without the intermediate. *)

val max_abs_diff : t -> t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [tol]
    (default [1e-9]); also requires equal dimensions. *)

val pp : Format.formatter -> t -> unit
