type t = { lu : Mat.t; piv : int array; sign : float }

exception Singular of int

let factor a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.factor: non-square matrix";
  let lu = Mat.copy a in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivoting: pick the largest magnitude in column k below row k *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !p j);
        Mat.set lu !p j tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; piv; sign = !sign }

let solve { lu; piv; _ } b =
  let n, _ = Mat.dims lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* forward substitution with unit lower triangle *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution with upper triangle *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !s /. Mat.get lu i i
  done;
  x

let solve_mat lu b =
  let n, _ = Mat.dims lu.lu in
  let _, cols = Mat.dims b in
  let x = Mat.zeros n cols in
  for j = 0 to cols - 1 do
    Mat.set_col x j (solve lu (Mat.col b j))
  done;
  x

let det { lu; sign; _ } =
  let n, _ = Mat.dims lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let solve_dense a b = solve (factor a) b

let inverse a =
  let n, _ = Mat.dims a in
  solve_mat (factor a) (Mat.eye n)

let cond_estimate a = Mat.norm_inf a *. Mat.norm_inf (inverse a)
