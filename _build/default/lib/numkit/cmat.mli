(** Dense complex matrices and a complex LU solver.

    The frequency-domain baseline of the paper (Table I's FFT-1/FFT-2)
    solves [((jω)^α E − A) X(jω) = B U(jω)] at every sampled frequency —
    a complex linear system per sample. This module provides exactly the
    kernels that needs, over [Stdlib.Complex]. *)

type t = { rows : int; cols : int; data : Complex.t array }

val zeros : int -> int -> t

val eye : int -> t

val init : int -> int -> (int -> int -> Complex.t) -> t

val of_real : Mat.t -> t

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val dims : t -> int * int

val copy : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : Complex.t -> t -> t

val mul : t -> t -> t

val mul_vec : t -> Complex.t array -> Complex.t array

val max_abs_diff : t -> t -> float

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** Gaussian elimination with partial pivoting, one-shot. *)

type factor

val factor : t -> factor

val solve_factored : factor -> Complex.t array -> Complex.t array

val jomega_alpha : float -> float -> Complex.t
(** [jomega_alpha omega alpha] is the principal branch of [(jω)^α]:
    [|ω|^α · exp(i · α · (π/2) · sign ω)] (and [0^α = 0] for [α > 0],
    [1] for [α = 0]). This is the fractional Laplace variable evaluated
    on the imaginary axis, as used by the FFT method for FDEs. *)
