(** Matrix exponential by scaling-and-squaring with Padé approximation.

    Powers the exact-discretisation reference solver
    ({!Opm_transient.Exact_lti}) that the convergence tests measure OPM
    and the classical schemes against: for piecewise-constant inputs the
    LTI update [x⁺ = e^{Ah} x + A^{−1}(e^{Ah} − I)B ū] is exact, so any
    remaining difference is purely the method under test. *)

val expm : Mat.t -> Mat.t
(** [e^A] via the degree-13 Padé approximant with scaling and squaring
    (the standard Higham recipe, simplified to a single Padé order with
    norm-based scaling). Raises [Invalid_argument] on non-square
    input. *)

val phi1 : Mat.t -> Mat.t
(** [φ₁(A) = A^{−1}(e^A − I) = Σ A^k/(k+1)!] — computed without
    inverting [A] (works for singular [A]), via the same Padé/squaring
    machinery applied to an augmented matrix. *)
