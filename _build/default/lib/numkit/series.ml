type t = float array

let truncate n c =
  Array.init n (fun k -> if k < Array.length c then c.(k) else 0.0)

let mul a b =
  let n = min (Array.length a) (Array.length b) in
  Array.init n (fun k ->
      let s = ref 0.0 in
      for i = 0 to k do
        s := !s +. (a.(i) *. b.(k - i))
      done;
      !s)

let binomial_series alpha n =
  let c = Array.make n 0.0 in
  if n > 0 then begin
    c.(0) <- 1.0;
    (* C(α,k) = C(α,k−1) · (α−k+1)/k *)
    for k = 1 to n - 1 do
      c.(k) <- c.(k - 1) *. (alpha -. float_of_int (k - 1)) /. float_of_int k
    done
  end;
  c

let one_minus_over_one_plus_pow alpha n =
  (* (1−q)^α · (1+q)^{−α}: two binomial series, Cauchy-multiplied *)
  let minus = binomial_series alpha n in
  let num = Array.mapi (fun k c -> if k land 1 = 1 then -.c else c) minus in
  let den = binomial_series (-.alpha) n in
  mul num den

let eval_nilpotent c q =
  let n, m = Mat.dims q in
  if n <> m then invalid_arg "Series.eval_nilpotent: non-square matrix";
  let len = Array.length c in
  if len = 0 then Mat.zeros n n
  else begin
    let acc = ref (Mat.scale c.(len - 1) (Mat.eye n)) in
    for k = len - 2 downto 0 do
      acc := Mat.add (Mat.mul !acc q) (Mat.scale c.(k) (Mat.eye n))
    done;
    !acc
  end

let eval c x = Array.fold_right (fun ck acc -> (acc *. x) +. ck) c 0.0
