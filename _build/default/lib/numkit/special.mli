(** Special functions used as analytic references for fractional systems.

    The textbook solution of the scalar relaxation FDE
    [d^α x/dt^α = −λ x + …] involves the Mittag-Leffler function
    [E_{α,β}]; the tests validate the OPM fractional solver against it.
    The gamma function is also needed by the Grünwald–Letnikov baseline
    weights. *)

val lgamma : float -> float
(** Log-gamma for [x > 0] (Lanczos approximation, ~15 significant
    digits). *)

val gamma : float -> float
(** Gamma on the real line, via the reflection formula for [x <= 0].
    Returns [nan] on non-positive integers. *)

val erf : float -> float

val erfc : float -> float
(** Complementary error function via the regularised incomplete gamma
    functions (full double precision). *)

val gammp : float -> float -> float
(** Regularised lower incomplete gamma [P(a, x)], [a > 0], [x >= 0]. *)

val gammq : float -> float -> float
(** Regularised upper incomplete gamma [Q(a, x) = 1 − P(a, x)]. *)

val mittag_leffler : ?beta:float -> alpha:float -> float -> float
(** [mittag_leffler ~alpha z] is [E_{α,β}(z) = Σ_k z^k / Γ(αk + β)]
    (default [β = 1]), for real [z]. Power series with compensated
    summation for moderate [|z|]; asymptotic expansion for large negative
    arguments with [0 < α < 1]. Raises [Invalid_argument] for
    [alpha <= 0]. *)

val ml_relaxation : alpha:float -> lambda:float -> float -> float
(** [ml_relaxation ~alpha ~lambda t] is [E_α(−λ t^α)] — the solution of
    [d^α x/dt^α = −λ x], [x(0) = 1] (Caputo, zero history). *)

val ml_step_response : alpha:float -> lambda:float -> float -> float
(** Solution of [d^α x/dt^α = −λ x + λ·1(t)], [x(0) = 0]:
    [1 − E_α(−λ t^α)]. The fractional analogue of the RC step
    response. *)
