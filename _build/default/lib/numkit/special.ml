(* Lanczos approximation, g = 7, 9 coefficients (Boost/GSL standard set) *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let lgamma x =
  if x <= 0.0 then invalid_arg "Special.lgamma: requires x > 0";
  if x < 0.5 then
    (* reflection to keep the Lanczos sum in its accurate range *)
    log (Float.pi /. sin (Float.pi *. x))
    -. (let y = 1.0 -. x in
        let s = ref lanczos_coefficients.(0) in
        for i = 1 to 8 do
          s := !s +. (lanczos_coefficients.(i) /. (y +. float_of_int i -. 1.0))
        done;
        let t = y +. lanczos_g -. 0.5 in
        (0.5 *. log (2.0 *. Float.pi)) +. ((y -. 0.5) *. log t) -. t +. log !s)
  else
    let s = ref lanczos_coefficients.(0) in
    for i = 1 to 8 do
      s := !s +. (lanczos_coefficients.(i) /. (x +. float_of_int i -. 1.0))
    done;
    let t = x +. lanczos_g -. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x -. 0.5) *. log t) -. t +. log !s

let gamma x =
  if x > 0.0 then exp (lgamma x)
  else if Float.is_integer x then Float.nan
  else
    (* Γ(x) Γ(1−x) = π / sin(πx) *)
    Float.pi /. (sin (Float.pi *. x) *. exp (lgamma (1.0 -. x)))

(* regularised incomplete gamma: series for x < a+1, continued fraction
   otherwise (Numerical Recipes gser/gcf) *)
let gammp_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < 1000 do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. 1e-16 then continue_ := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. lgamma a)

let gammq_cf a x =
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue_ = ref true in
  while !continue_ && !i < 1000 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < 1e-16 then continue_ := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. lgamma a) *. !h

let gammp a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Special.gammp: bad arguments";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gammp_series a x
  else 1.0 -. gammq_cf a x

let gammq a x = 1.0 -. gammp a x

let erf x =
  if x >= 0.0 then gammp 0.5 (x *. x) else -.gammp 0.5 (x *. x)

let erfc x = if x >= 0.0 then gammq 0.5 (x *. x) else 2.0 -. gammq 0.5 (x *. x)

let lgamma_abs g =
  (* log |Γ(g)|, any non-pole g *)
  if g > 0.0 then lgamma g
  else log (Float.abs (Float.pi /. sin (Float.pi *. g))) -. lgamma (1.0 -. g)

(* E_{α,β}(z) by its power series with Kahan summation; the terms
   z^k / Γ(αk+β) are computed in log space to dodge overflow *)
let ml_series ~alpha ~beta z =
  let max_terms = 500 in
  let sum = ref 0.0 and comp = ref 0.0 in
  let add v =
    let y = v -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  in
  let log_abs_z = if z = 0.0 then neg_infinity else log (Float.abs z) in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < max_terms do
    let fk = float_of_int !k in
    let g = alpha *. fk +. beta in
    let term =
      if g <= 0.0 && Float.is_integer g then 0.0 (* 1/Γ at a pole is 0 *)
      else begin
        let log_mag = (fk *. log_abs_z) -. lgamma_abs g in
        let mag = if !k = 0 && z = 0.0 then 1.0 /. gamma beta else exp log_mag in
        let gamma_sign = if gamma g < 0.0 then -1.0 else 1.0 in
        let z_sign = if z < 0.0 && !k land 1 = 1 then -1.0 else 1.0 in
        z_sign *. gamma_sign *. mag
      end
    in
    add term;
    if !k > 4 && Float.abs term < 1e-17 *. Float.max 1.0 (Float.abs !sum) then
      continue_ := false;
    incr k
  done;
  !sum

(* asymptotic expansion for z → −∞, 0 < α < 2:
   E_{α,β}(z) ≈ − Σ_{k=1}^{K} z^{−k} / Γ(β − αk) *)
let ml_asymptotic ~alpha ~beta z =
  let kmax = 50 in
  let sum = ref 0.0 in
  let prev = ref infinity in
  (try
     for k = 1 to kmax do
       let g = beta -. (alpha *. float_of_int k) in
       let inv_gamma =
         if Float.is_integer g && g <= 0.0 then 0.0 else 1.0 /. gamma g
       in
       let term = -.inv_gamma *. (z ** float_of_int (-k)) in
       if Float.abs term > !prev then raise Exit;
       prev := Float.abs term;
       sum := !sum +. term
     done
   with Exit -> ());
  !sum

let mittag_leffler ?(beta = 1.0) ~alpha z =
  if alpha <= 0.0 then invalid_arg "Special.mittag_leffler: alpha <= 0";
  (* the power series for negative z cancels like exp(|z|^{1/α}); switch
     to the asymptotic expansion before that eats the double precision *)
  let cancellation = if z < 0.0 then Float.abs z ** (1.0 /. alpha) else 0.0 in
  if z < 0.0 && alpha < 2.0 && cancellation > 20.0 then
    ml_asymptotic ~alpha ~beta z
  else ml_series ~alpha ~beta z

let ml_relaxation ~alpha ~lambda t =
  if t < 0.0 then invalid_arg "Special.ml_relaxation: t < 0";
  if t = 0.0 then 1.0 else mittag_leffler ~alpha (-.lambda *. (t ** alpha))

let ml_step_response ~alpha ~lambda t = 1.0 -. ml_relaxation ~alpha ~lambda t
