(* Padé(13) coefficients for exp (Higham 2005) *)
let pade13 =
  [|
    64764752532480000.0;
    32382376266240000.0;
    7771770303897600.0;
    1187353796428800.0;
    129060195264000.0;
    10559470521600.0;
    670442572800.0;
    33522128640.0;
    1323241920.0;
    40840800.0;
    960960.0;
    16380.0;
    182.0;
    1.0;
  |]

let expm a =
  let n, n' = Mat.dims a in
  if n <> n' then invalid_arg "Expm.expm: non-square matrix";
  (* scale so that ‖A/2^s‖ is comfortably inside the Padé(13) region *)
  let norm = Mat.norm_inf a in
  let s =
    if norm <= 5.4 then 0
    else int_of_float (ceil (Float.log2 (norm /. 5.4)))
  in
  let a = Mat.scale (1.0 /. (2.0 ** float_of_int s)) a in
  let a2 = Mat.mul a a in
  let a4 = Mat.mul a2 a2 in
  let a6 = Mat.mul a2 a4 in
  let b = pade13 in
  let eye = Mat.eye n in
  (* u = A·(A6·(b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I) *)
  let inner_u =
    Mat.add
      (Mat.mul a6
         (Mat.add
            (Mat.add (Mat.scale b.(13) a6) (Mat.scale b.(11) a4))
            (Mat.scale b.(9) a2)))
      (Mat.add
         (Mat.add (Mat.scale b.(7) a6) (Mat.scale b.(5) a4))
         (Mat.add (Mat.scale b.(3) a2) (Mat.scale b.(1) eye)))
  in
  let u = Mat.mul a inner_u in
  (* v = A6·(b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I *)
  let v =
    Mat.add
      (Mat.mul a6
         (Mat.add
            (Mat.add (Mat.scale b.(12) a6) (Mat.scale b.(10) a4))
            (Mat.scale b.(8) a2)))
      (Mat.add
         (Mat.add (Mat.scale b.(6) a6) (Mat.scale b.(4) a4))
         (Mat.add (Mat.scale b.(2) a2) (Mat.scale b.(0) eye)))
  in
  (* (V − U) X = (V + U) *)
  let x = ref (Lu.solve_mat (Lu.factor (Mat.sub v u)) (Mat.add v u)) in
  for _ = 1 to s do
    x := Mat.mul !x !x
  done;
  !x

let phi1 a =
  let n, n' = Mat.dims a in
  if n <> n' then invalid_arg "Expm.phi1: non-square matrix";
  (* exp [[A, I]; [0, 0]] = [[e^A, φ₁(A)]; [0, I]] *)
  let aug =
    Mat.init (2 * n) (2 * n) (fun i j ->
        if i < n && j < n then Mat.get a i j
        else if i < n && j - n = i then 1.0
        else 0.0)
  in
  let e = expm aug in
  Mat.init n n (fun i j -> Mat.get e i (j + n))
