lib/numkit/fft.mli: Complex
