lib/numkit/tri.ml: Array Float Mat
