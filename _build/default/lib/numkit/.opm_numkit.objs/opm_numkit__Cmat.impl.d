lib/numkit/cmat.ml: Array Complex Float Mat
