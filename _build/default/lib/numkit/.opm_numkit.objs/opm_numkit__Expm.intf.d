lib/numkit/expm.mli: Mat
