lib/numkit/special.ml: Array Float
