lib/numkit/lu.mli: Mat Vec
