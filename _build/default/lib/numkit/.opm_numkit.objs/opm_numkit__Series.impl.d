lib/numkit/series.ml: Array Mat
