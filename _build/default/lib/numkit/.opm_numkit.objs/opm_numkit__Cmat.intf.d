lib/numkit/cmat.mli: Complex Mat
