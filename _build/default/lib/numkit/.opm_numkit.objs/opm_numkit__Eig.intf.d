lib/numkit/eig.mli: Complex Mat
