lib/numkit/expm.ml: Array Float Lu Mat
