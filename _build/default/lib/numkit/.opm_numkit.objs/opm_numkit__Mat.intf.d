lib/numkit/mat.mli: Format Vec
