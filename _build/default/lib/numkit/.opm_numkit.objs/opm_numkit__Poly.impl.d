lib/numkit/poly.ml: Array Format
