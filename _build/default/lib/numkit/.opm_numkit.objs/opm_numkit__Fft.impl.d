lib/numkit/fft.ml: Array Complex Float
