lib/numkit/vec.mli: Format
