lib/numkit/lu.ml: Array Float Mat
