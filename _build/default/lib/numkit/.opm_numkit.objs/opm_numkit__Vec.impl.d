lib/numkit/vec.ml: Array Float Format Printf
