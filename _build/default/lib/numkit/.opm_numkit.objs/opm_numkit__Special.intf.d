lib/numkit/special.mli:
