lib/numkit/tri.mli: Mat Vec
