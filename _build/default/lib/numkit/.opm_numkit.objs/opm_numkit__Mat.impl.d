lib/numkit/mat.ml: Array Float Format Printf
