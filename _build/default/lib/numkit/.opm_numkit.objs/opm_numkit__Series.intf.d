lib/numkit/series.mli: Mat
