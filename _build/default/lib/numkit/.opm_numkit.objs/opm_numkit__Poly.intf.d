lib/numkit/poly.mli: Format
