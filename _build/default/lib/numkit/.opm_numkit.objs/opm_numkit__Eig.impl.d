lib/numkit/eig.ml: Array Complex Float Mat
