(** Truncated formal power series.

    The paper's fractional differential matrix is
    [D^α = (2/h)^α · ρ_{α,m}(Q_m)] where [ρ_{α,m}] is the degree-[m−1]
    truncation of [((1−q)/(1+q))^α] (eq. 21–23). Since [Q_m^m = 0], the
    truncation is *exact* in the matrix algebra. A series is stored as a
    coefficient array [c.(k)] of [q^k], lowest degree first; arithmetic
    keeps the common truncation length. *)

type t = float array

val truncate : int -> t -> t
(** Keep the first [n] coefficients, padding with zeros if shorter. *)

val mul : t -> t -> t
(** Cauchy product truncated to [min] of the operand lengths. *)

val binomial_series : float -> int -> t
(** [binomial_series alpha n] are the first [n] coefficients of
    [(1 + q)^α = Σ_k C(α,k) q^k] with generalised binomial coefficients. *)

val one_minus_over_one_plus_pow : float -> int -> t
(** [one_minus_over_one_plus_pow alpha n] are the first [n] coefficients
    of [((1−q)/(1+q))^α] — the paper's [ρ_{α,m}] without the [(2/h)^α]
    prefactor. For [α = 3/2], [n = 4] this yields [1; −3; 4.5; −5.5]
    (paper eq. 23). *)

val eval_nilpotent : t -> Mat.t -> Mat.t
(** [eval_nilpotent c q] is [Σ_k c.(k) · q^k] by Horner's rule — exact
    when [q] is nilpotent of index ≤ [Array.length c]. *)

val eval : t -> float -> float
(** Scalar Horner evaluation. *)
