(** Triangular-matrix algorithms.

    Every operational matrix in OPM ([H], [D], [D^α], their adaptive-step
    variants) is upper triangular, so the library leans on dedicated
    triangular kernels: substitution solves, inversion, and the Parlett
    recurrence for matrix functions — the tool behind the paper's
    eigendecomposition-based [D̃^α] of eq. (25) (valid when all diagonal
    entries are pairwise distinct, i.e. no two adaptive steps equal). *)

exception Singular of int
(** Zero diagonal entry at the given index. *)

exception Confluent_diagonal of int * int
(** {!parlett} found two (numerically) equal diagonal entries; the
    recurrence divides by their difference. The payload is the offending
    index pair. *)

val solve_upper : Mat.t -> Vec.t -> Vec.t
(** Back substitution [U x = b]. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** Forward substitution [L x = b] (general lower triangular, not
    necessarily unit diagonal). *)

val invert_upper : Mat.t -> Mat.t

val parlett : (float -> float) -> Mat.t -> Mat.t
(** [parlett f t] evaluates the matrix function [f(T)] of an upper
    triangular [T] with pairwise distinct diagonal by the Parlett
    recurrence (from the commutation [T F = F T]):
    [F_ii = f(T_ii)],
    [F_ij = (T_ij (F_jj − F_ii) + Σ_{i<k<j} (T_ik F_kj − F_ik T_kj)) / (T_jj − T_ii)].
    Raises {!Confluent_diagonal} when the diagonal is not separated. *)

val fractional_power : Mat.t -> float -> Mat.t
(** [fractional_power t alpha] is [parlett (fun x -> x ** alpha) t];
    intended for triangular matrices with positive distinct diagonal. *)
