exception Singular of int
exception Confluent_diagonal of int * int

let check_square name a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg ("Tri." ^ name ^ ": non-square matrix");
  n

let solve_upper u b =
  let n = check_square "solve_upper" u in
  if Array.length b <> n then invalid_arg "Tri.solve_upper: dimension mismatch";
  let x = Array.copy b in
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get u i j *. x.(j))
    done;
    let d = Mat.get u i i in
    if d = 0.0 then raise (Singular i);
    x.(i) <- !s /. d
  done;
  x

let solve_lower l b =
  let n = check_square "solve_lower" l in
  if Array.length b <> n then invalid_arg "Tri.solve_lower: dimension mismatch";
  let x = Array.copy b in
  for i = 0 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get l i j *. x.(j))
    done;
    let d = Mat.get l i i in
    if d = 0.0 then raise (Singular i);
    x.(i) <- !s /. d
  done;
  x

let invert_upper u =
  let n = check_square "invert_upper" u in
  let inv = Mat.zeros n n in
  (* column j of the inverse solves U x = e_j; exploit that x vanishes
     below index j *)
  for j = 0 to n - 1 do
    let d = Mat.get u j j in
    if d = 0.0 then raise (Singular j);
    Mat.set inv j j (1.0 /. d);
    for i = j - 1 downto 0 do
      let s = ref 0.0 in
      for k = i + 1 to j do
        s := !s +. (Mat.get u i k *. Mat.get inv k j)
      done;
      let dii = Mat.get u i i in
      if dii = 0.0 then raise (Singular i);
      Mat.set inv i j (-. !s /. dii)
    done
  done;
  inv

let parlett f t =
  let n = check_square "parlett" t in
  let fm = Mat.zeros n n in
  for i = 0 to n - 1 do
    Mat.set fm i i (f (Mat.get t i i))
  done;
  (* sweep superdiagonals outward so every F_ik, F_kj needed is ready *)
  for sd = 1 to n - 1 do
    for i = 0 to n - 1 - sd do
      let j = i + sd in
      let tii = Mat.get t i i and tjj = Mat.get t j j in
      let denom = tjj -. tii in
      let scale = Float.max (Float.abs tii) (Float.abs tjj) in
      if Float.abs denom <= 1e-12 *. Float.max scale 1.0 then
        raise (Confluent_diagonal (i, j));
      let s = ref (Mat.get t i j *. (Mat.get fm j j -. Mat.get fm i i)) in
      for k = i + 1 to j - 1 do
        s :=
          !s
          +. (Mat.get t i k *. Mat.get fm k j)
          -. (Mat.get fm i k *. Mat.get t k j)
      done;
      Mat.set fm i j (!s /. denom)
    done
  done;
  fm

let fractional_power t alpha = parlett (fun x -> x ** alpha) t
