exception No_convergence of int

(* reduction to upper Hessenberg form by stabilised elementary
   similarity transformations (the classic "elmhes") *)
let hessenberg a =
  let n, n' = Mat.dims a in
  if n <> n' then invalid_arg "Eig.hessenberg: non-square matrix";
  let h = Mat.copy a in
  for m = 1 to n - 2 do
    (* pivot: largest magnitude in column m−1 at or below row m *)
    let piv = ref m in
    for i = m + 1 to n - 1 do
      if Float.abs (Mat.get h i (m - 1)) > Float.abs (Mat.get h !piv (m - 1))
      then piv := i
    done;
    let x = Mat.get h !piv (m - 1) in
    if !piv <> m then begin
      (* swap rows and columns piv <-> m (similarity) *)
      for j = m - 1 to n - 1 do
        let tmp = Mat.get h !piv j in
        Mat.set h !piv j (Mat.get h m j);
        Mat.set h m j tmp
      done;
      for i = 0 to n - 1 do
        let tmp = Mat.get h i !piv in
        Mat.set h i !piv (Mat.get h i m);
        Mat.set h i m tmp
      done
    end;
    if x <> 0.0 then
      for i = m + 1 to n - 1 do
        let y = Mat.get h i (m - 1) /. x in
        if y <> 0.0 then begin
          (* row i −= y · row m *)
          for j = m - 1 to n - 1 do
            Mat.set h i j (Mat.get h i j -. (y *. Mat.get h m j))
          done;
          (* column m += y · column i *)
          for k = 0 to n - 1 do
            Mat.set h k m (Mat.get h k m +. (y *. Mat.get h k i))
          done
        end
      done
  done;
  (* zero the numerical junk below the subdiagonal *)
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      Mat.set h i j 0.0
    done
  done;
  h

(* Francis implicit double-shift QR on an upper Hessenberg matrix — a
   faithful port of the classic "hqr" (Wilkinson/EISPACK lineage); the
   comments follow successive similarity transforms on 2–3 row/column
   slabs, so line-by-line commentary would only obscure the invariants:
   see Golub & Van Loan §7.5 for the derivation. 1-based scratch array
   to keep the port reviewable against the reference. *)
let hqr hess =
  let n, _ = Mat.dims hess in
  if n = 0 then [||]
  else begin
    let a = Array.make_matrix (n + 1) (n + 1) 0.0 in
    for i = 1 to n do
      for j = 1 to n do
        a.(i).(j) <- Mat.get hess (i - 1) (j - 1)
      done
    done;
    let wr = Array.make (n + 1) 0.0 and wi = Array.make (n + 1) 0.0 in
    let sign a b = if b >= 0.0 then Float.abs a else -.Float.abs a in
    let anorm = ref 0.0 in
    for i = 1 to n do
      for j = max (i - 1) 1 to n do
        anorm := !anorm +. Float.abs a.(i).(j)
      done
    done;
    let nn = ref n in
    let t = ref 0.0 in
    while !nn >= 1 do
      let its = ref 0 in
      let continue_inner = ref true in
      while !continue_inner do
        (* look for a single small subdiagonal element *)
        let l = ref !nn in
        (try
           while !l >= 2 do
             let s =
               Float.abs a.(!l - 1).(!l - 1) +. Float.abs a.(!l).(!l)
             in
             let s = if s = 0.0 then !anorm else s in
             if Float.abs a.(!l).(!l - 1) +. s = s then begin
               a.(!l).(!l - 1) <- 0.0;
               raise Exit
             end;
             decr l
           done
         with Exit -> ());
        let x = ref a.(!nn).(!nn) in
        if !l = !nn then begin
          wr.(!nn) <- !x +. !t;
          wi.(!nn) <- 0.0;
          decr nn;
          continue_inner := false
        end
        else begin
          let y = ref a.(!nn - 1).(!nn - 1) in
          let w = ref (a.(!nn).(!nn - 1) *. a.(!nn - 1).(!nn)) in
          if !l = !nn - 1 then begin
            let p = 0.5 *. (!y -. !x) in
            let q = (p *. p) +. !w in
            let z = sqrt (Float.abs q) in
            x := !x +. !t;
            if q >= 0.0 then begin
              let z = p +. sign z p in
              wr.(!nn - 1) <- !x +. z;
              wr.(!nn) <- wr.(!nn - 1);
              if z <> 0.0 then wr.(!nn) <- !x -. (!w /. z);
              wi.(!nn - 1) <- 0.0;
              wi.(!nn) <- 0.0
            end
            else begin
              wr.(!nn - 1) <- !x +. p;
              wr.(!nn) <- !x +. p;
              wi.(!nn) <- z;
              wi.(!nn - 1) <- -.z
            end;
            nn := !nn - 2;
            continue_inner := false
          end
          else begin
            if !its = 30 then raise (No_convergence !nn);
            if !its = 10 || !its = 20 then begin
              t := !t +. !x;
              for i = 1 to !nn do
                a.(i).(i) <- a.(i).(i) -. !x
              done;
              let s =
                Float.abs a.(!nn).(!nn - 1) +. Float.abs a.(!nn - 1).(!nn - 2)
              in
              x := 0.75 *. s;
              y := !x;
              w := -0.4375 *. s *. s
            end;
            incr its;
            let p = ref 0.0 and q = ref 0.0 and r = ref 0.0 in
            let m = ref (!nn - 2) in
            (try
               while !m >= !l do
                 let z = a.(!m).(!m) in
                 let rr = !x -. z in
                 let ss = !y -. z in
                 p :=
                   (((rr *. ss) -. !w) /. a.(!m + 1).(!m)) +. a.(!m).(!m + 1);
                 q := a.(!m + 1).(!m + 1) -. z -. rr -. ss;
                 r := a.(!m + 2).(!m + 1);
                 let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
                 p := !p /. s;
                 q := !q /. s;
                 r := !r /. s;
                 if !m = !l then raise Exit;
                 let u = Float.abs a.(!m).(!m - 1) *. (Float.abs !q +. Float.abs !r) in
                 let v =
                   Float.abs !p
                   *. (Float.abs a.(!m - 1).(!m - 1)
                      +. Float.abs z
                      +. Float.abs a.(!m + 1).(!m + 1))
                 in
                 if u +. v = v then raise Exit;
                 decr m
               done
             with Exit -> ());
            for i = !m + 2 to !nn do
              a.(i).(i - 2) <- 0.0;
              if i <> !m + 2 then a.(i).(i - 3) <- 0.0
            done;
            for k = !m to !nn - 1 do
              if k <> !m then begin
                p := a.(k).(k - 1);
                q := a.(k + 1).(k - 1);
                r := 0.0;
                if k <> !nn - 1 then r := a.(k + 2).(k - 1);
                x := Float.abs !p +. Float.abs !q +. Float.abs !r;
                if !x <> 0.0 then begin
                  p := !p /. !x;
                  q := !q /. !x;
                  r := !r /. !x
                end
              end;
              let s = sign (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p in
              if s <> 0.0 then begin
                if k = !m then begin
                  if !l <> !m then a.(k).(k - 1) <- -.a.(k).(k - 1)
                end
                else a.(k).(k - 1) <- -.s *. !x;
                p := !p +. s;
                x := !p /. s;
                y := !q /. s;
                let z = !r /. s in
                q := !q /. !p;
                r := !r /. !p;
                for j = k to !nn do
                  let pj = ref (a.(k).(j) +. (!q *. a.(k + 1).(j))) in
                  if k <> !nn - 1 then begin
                    pj := !pj +. (!r *. a.(k + 2).(j));
                    a.(k + 2).(j) <- a.(k + 2).(j) -. (!pj *. z)
                  end;
                  a.(k + 1).(j) <- a.(k + 1).(j) -. (!pj *. !y);
                  a.(k).(j) <- a.(k).(j) -. (!pj *. !x)
                done;
                let mmin = min !nn (k + 3) in
                for i = !l to mmin do
                  let pi =
                    ref ((!x *. a.(i).(k)) +. (!y *. a.(i).(k + 1)))
                  in
                  if k <> !nn - 1 then begin
                    pi := !pi +. (z *. a.(i).(k + 2));
                    a.(i).(k + 2) <- a.(i).(k + 2) -. (!pi *. !r)
                  end;
                  a.(i).(k + 1) <- a.(i).(k + 1) -. (!pi *. !q);
                  a.(i).(k) <- a.(i).(k) -. !pi
                done
              end
            done
          end
        end
      done
    done;
    Array.init n (fun i -> { Complex.re = wr.(i + 1); im = wi.(i + 1) })
  end

let eigenvalues a = hqr (hessenberg a)

let spectral_abscissa a =
  Array.fold_left
    (fun acc z -> Float.max acc z.Complex.re)
    neg_infinity (eigenvalues a)
