(** Real polynomials, lowest degree first.

    Used for characteristic polynomials of small test systems and for the
    quadrature rules in the basis projections. The zero polynomial is the
    empty array (or any all-zero array); [degree] of it is [-1]. *)

type t = float array

val normalize : t -> t
(** Drop trailing (high-degree) zero coefficients. *)

val degree : t -> int

val add : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t

val eval : t -> float -> float

val derive : t -> t

val integrate : t -> t
(** Antiderivative with zero constant term. *)

val definite_integral : t -> float -> float -> float

val legendre : int -> t
(** [legendre n] is the Legendre polynomial [P_n] on [[-1, 1]] from the
    three-term recurrence. *)

val shifted_legendre : int -> t
(** [shifted_legendre n] is [P_n(2x − 1)], orthogonal on [[0, 1]] — the
    basis family the paper lists as an alternative to BPFs. *)

val pp : Format.formatter -> t -> unit
