let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* iterative radix-2 Cooley–Tukey with bit-reversal permutation;
   sign = -1 for the forward transform, +1 for the inverse (unnormalised) *)
let radix2 sign x =
  let n = Array.length x in
  let y = Array.copy x in
  (* bit-reversal permutation *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = y.(i) in
      y.(i) <- y.(!j);
      y.(!j) <- tmp
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wlen = { Complex.re = cos ang; im = sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to (!len / 2) - 1 do
        let u = y.(!i + k) in
        let v = Complex.mul y.(!i + k + (!len / 2)) !w in
        y.(!i + k) <- Complex.add u v;
        y.(!i + k + (!len / 2)) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done;
  y

let dft_naive x =
  let n = Array.length x in
  Array.init n (fun k ->
      let s = ref Complex.zero in
      for j = 0 to n - 1 do
        let ang = -2.0 *. Float.pi *. float_of_int (k * j mod n) /. float_of_int n in
        s := Complex.add !s (Complex.mul x.(j) { Complex.re = cos ang; im = sin ang })
      done;
      !s)

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Bluestein's algorithm: a DFT of arbitrary length N as a circular
   convolution of length >= 2N-1, performed with the radix-2 FFT *)
let bluestein x =
  let n = Array.length x in
  let m = next_power_of_two ((2 * n) - 1) in
  let chirp k =
    (* e^{-i π k² / N}; reduce k² mod 2N to avoid precision loss *)
    let k2 = k * k mod (2 * n) in
    let ang = -.Float.pi *. float_of_int k2 /. float_of_int n in
    { Complex.re = cos ang; im = sin ang }
  in
  let a = Array.make m Complex.zero in
  for k = 0 to n - 1 do
    a.(k) <- Complex.mul x.(k) (chirp k)
  done;
  let b = Array.make m Complex.zero in
  b.(0) <- Complex.conj (chirp 0);
  for k = 1 to n - 1 do
    let c = Complex.conj (chirp k) in
    b.(k) <- c;
    b.(m - k) <- c
  done;
  let fa = radix2 (-1.0) a and fb = radix2 (-1.0) b in
  let prod = Array.init m (fun i -> Complex.mul fa.(i) fb.(i)) in
  let conv = radix2 1.0 prod in
  let scale = 1.0 /. float_of_int m in
  Array.init n (fun k ->
      Complex.mul (chirp k)
        { Complex.re = conv.(k).Complex.re *. scale; im = conv.(k).Complex.im *. scale })

let fft x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Fft.fft: empty input";
  if n = 1 then Array.copy x
  else if is_power_of_two n then radix2 (-1.0) x
  else bluestein x

let ifft x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Fft.ifft: empty input";
  let conj = Array.map Complex.conj x in
  let y = fft conj in
  let scale = 1.0 /. float_of_int n in
  Array.map (fun c -> { Complex.re = c.Complex.re *. scale; im = -.c.Complex.im *. scale }) y

let fft_real x = fft (Array.map (fun re -> { Complex.re; im = 0.0 }) x)

let frequencies n dt =
  let base = 2.0 *. Float.pi /. (float_of_int n *. dt) in
  Array.init n (fun k ->
      if 2 * k <= n then base *. float_of_int k
      else base *. float_of_int (k - n))
