type t = { rows : int; cols : int; data : Complex.t array }

let zeros rows cols = { rows; cols; data = Array.make (rows * cols) Complex.zero }

let init rows cols f =
  let data = Array.make (rows * cols) Complex.zero in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let eye n = init n n (fun i j -> if i = j then Complex.one else Complex.zero)

let of_real a =
  let rows, cols = Mat.dims a in
  init rows cols (fun i j -> { Complex.re = Mat.get a i j; im = 0.0 })

let get a i j = a.data.((i * a.cols) + j)

let set a i j x = a.data.((i * a.cols) + j) <- x

let dims a = (a.rows, a.cols)

let copy a = { a with data = Array.copy a.data }

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Cmat." ^ name ^ ": dimension mismatch")

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> Complex.add a.data.(k) b.data.(k)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> Complex.sub a.data.(k) b.data.(k)) }

let scale s a = { a with data = Array.map (Complex.mul s) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul: inner dimension mismatch";
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> Complex.zero then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            Complex.add c.data.((i * c.cols) + j) (Complex.mul aik (get b k j))
        done
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref Complex.zero in
      for j = 0 to a.cols - 1 do
        s := Complex.add !s (Complex.mul (get a i j) x.(j))
      done;
      !s)

let max_abs_diff a b =
  check_same "max_abs_diff" a b;
  let m = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    m := Float.max !m (Complex.norm (Complex.sub a.data.(k) b.data.(k)))
  done;
  !m

exception Singular of int

type factor = { lu : t; piv : int array }

let factor a =
  let n, m = dims a in
  if n <> m then invalid_arg "Cmat.factor: non-square matrix";
  let lu = copy a in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get lu i k) > Complex.norm (get lu !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = get lu k j in
        set lu k j (get lu !p j);
        set lu !p j tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tmp
    end;
    let pivot = get lu k k in
    if Complex.norm pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = Complex.div (get lu i k) pivot in
      set lu i k f;
      if f <> Complex.zero then
        for j = k + 1 to n - 1 do
          set lu i j (Complex.sub (get lu i j) (Complex.mul f (get lu k j)))
        done
    done
  done;
  { lu; piv }

let solve_factored { lu; piv } b =
  let n, _ = dims lu in
  if Array.length b <> n then invalid_arg "Cmat.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := Complex.sub !s (Complex.mul (get lu i j) x.(j))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul (get lu i j) x.(j))
    done;
    x.(i) <- Complex.div !s (get lu i i)
  done;
  x

let solve a b = solve_factored (factor a) b

let jomega_alpha omega alpha =
  if omega = 0.0 then
    if alpha = 0.0 then Complex.one else Complex.zero
  else
    let magnitude = Float.abs omega ** alpha in
    let phase = alpha *. (Float.pi /. 2.0) *. (if omega > 0.0 then 1.0 else -1.0) in
    { Complex.re = magnitude *. cos phase; im = magnitude *. sin phase }
