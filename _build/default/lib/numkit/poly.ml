type t = float array

let normalize p =
  let d = ref (Array.length p - 1) in
  while !d >= 0 && p.(!d) = 0.0 do
    decr d
  done;
  Array.sub p 0 (!d + 1)

let degree p = Array.length (normalize p) - 1

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let coeff p k = if k < Array.length p then p.(k) else 0.0 in
  Array.init n (fun k -> coeff a k +. coeff b k)

let scale s p = Array.map (fun c -> s *. c) p

let mul a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let c = Array.make (na + nb - 1) 0.0 in
    for i = 0 to na - 1 do
      for j = 0 to nb - 1 do
        c.(i + j) <- c.(i + j) +. (a.(i) *. b.(j))
      done
    done;
    c
  end

let eval p x = Array.fold_right (fun c acc -> (acc *. x) +. c) p 0.0

let derive p =
  if Array.length p <= 1 then [||]
  else Array.init (Array.length p - 1) (fun k -> float_of_int (k + 1) *. p.(k + 1))

let integrate p =
  Array.init
    (Array.length p + 1)
    (fun k -> if k = 0 then 0.0 else p.(k - 1) /. float_of_int k)

let definite_integral p a b =
  let q = integrate p in
  eval q b -. eval q a

let legendre n =
  if n < 0 then invalid_arg "Poly.legendre: negative order";
  let rec go k pk pk1 =
    (* pk = P_k, pk1 = P_{k-1}; recurrence
       (k+1) P_{k+1} = (2k+1) x P_k − k P_{k-1} *)
    if k = n then pk
    else
      let fk = float_of_int k in
      let x_pk = mul [| 0.0; 1.0 |] pk in
      let next =
        add
          (scale ((2.0 *. fk) +. 1.0) x_pk)
          (scale (-.fk) pk1)
      in
      go (k + 1) (scale (1.0 /. (fk +. 1.0)) next) pk
  in
  if n = 0 then [| 1.0 |] else go 1 [| 0.0; 1.0 |] [| 1.0 |]

let shifted_legendre n =
  (* compose P_n with 2x − 1 by Horner on polynomials *)
  let p = legendre n in
  let lin = [| -1.0; 2.0 |] in
  Array.fold_right (fun c acc -> add (mul acc lin) [| c |]) p [||]

let pp ppf p =
  let p = normalize p in
  if Array.length p = 0 then Format.fprintf ppf "0"
  else
    Array.iteri
      (fun k c ->
        if k > 0 then Format.fprintf ppf " + ";
        Format.fprintf ppf "%g·x^%d" c k)
      p
