(** Frequency-domain views of sampled waveforms.

    Harmonic amplitudes are extracted by direct correlation against
    [e^{−j2πkf₀t}] over the waveform's span (not FFT bins), so they are
    leakage-free whenever the record holds an integer number of
    fundamental periods — the right tool for distortion measurements on
    simulated steady-state waveforms. A windowed FFT magnitude view is
    provided for exploratory spectra. *)

val harmonic_amplitude :
  Waveform.t -> channel:int -> freq_hz:float -> float
(** Amplitude of the [freq_hz] component (peak, not RMS), by trapezoid-
    weighted correlation over the full record. *)

val harmonics :
  Waveform.t -> channel:int -> fundamental_hz:float -> count:int -> float array
(** Amplitudes of harmonics [1·f₀ … count·f₀]. *)

val thd : Waveform.t -> channel:int -> fundamental_hz:float -> ?count:int -> unit -> float
(** Total harmonic distortion
    [√(Σ_{k=2}^{count} A_k²)/A₁] (default [count = 10]). Raises
    [Invalid_argument] when the fundamental amplitude is zero. *)

val magnitude :
  ?window:[ `Rect | `Hann ] ->
  Waveform.t ->
  channel:int ->
  (float * float) array
(** FFT magnitude spectrum [(f_Hz, |Y|)] up to Nyquist, after
    resampling the channel onto a uniform power-of-two grid.
    [`Hann] (default) tapers leakage for non-periodic records. *)
