(** Sampled multi-channel waveforms — the result type of every simulator
    in this library.

    A waveform holds a strictly increasing time grid and one row per
    channel (output or state variable), sampled on that grid. OPM's BPF
    solution is piecewise constant; time-steppers produce point samples;
    both are represented the same way so the error metrics can compare
    them. *)

type t = {
  times : float array;  (** sample instants, strictly increasing *)
  channels : float array array;  (** [channels.(c).(k)] at [times.(k)] *)
  labels : string array;  (** one label per channel *)
}

val make : ?labels:string array -> float array -> float array array -> t
(** Validates that every channel has the same length as [times] and that
    times strictly increase. Default labels are ["y0", "y1", …]. *)

val channel_count : t -> int

val sample_count : t -> int

val channel : t -> int -> float array

val channel_named : t -> string -> float array
(** Raises [Not_found] for an unknown label. *)

val of_function : ?labels:string array -> float array -> (float -> float array) -> t
(** Sample a vector function of time on the grid. *)

val sample_at : t -> float -> float array
(** Linear interpolation between samples; constant extrapolation
    outside. *)

val resample : t -> float array -> t
(** Interpolate every channel onto a new grid. *)

val map_channels : (float array -> float array) -> t -> t

val bpf_grid : t_end:float -> m:int -> float array
(** Midpoints of the [m] BPF intervals of [[0, t_end)] — the natural
    grid on which to compare a BPF expansion with a reference. *)

val to_csv : t -> string

val print_csv : ?oc:out_channel -> t -> unit
