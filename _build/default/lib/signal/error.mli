(** Accuracy metrics of the paper's evaluation.

    Table I uses the global relative error of eq. (30):
    [err = 20 log10 (‖y − y_ref‖₂ / ‖y_ref‖₂)] (in dB, more negative is
    better). Table II reports an "average relative error", which we take
    as the mean over channels of the per-channel eq.-(30) metric. *)

val relative_error_db : reference:float array -> float array -> float
(** Eq. (30) on a single channel. Returns [neg_infinity] when the signals
    match exactly and [nan] when the reference is identically zero. *)

val relative_error : reference:float array -> float array -> float
(** Same, as a plain ratio (not dB). *)

val waveform_error_db : reference:Waveform.t -> Waveform.t -> float
(** Eq. (30) over all channels at once (stacked 2-norm). The test
    waveform is resampled onto the reference grid first. *)

val average_relative_error_db : reference:Waveform.t -> Waveform.t -> float
(** Table II metric: mean of the per-channel dB errors. *)

val max_abs_error : reference:Waveform.t -> Waveform.t -> float
