(** Time-domain excitation sources.

    A source is semantically a function of time; the variants keep enough
    structure for the netlist parser to print them back and for the BPF
    projection to integrate them exactly where possible. *)

type t =
  | Dc of float  (** constant *)
  | Step of { amplitude : float; delay : float }
      (** [amplitude · 1(t − delay)] *)
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      width : float;
      period : float;
    }  (** periodic rectangular pulse; [period = infinity] for one-shot *)
  | Sine of { amplitude : float; freq_hz : float; phase : float; offset : float }
  | Exp_decay of { amplitude : float; tau : float }
      (** [amplitude · e^{−t/τ}] *)
  | Ramp of { slope : float; delay : float }
  | Pwl of (float * float) list
      (** piecewise-linear (time, value) points, strictly increasing
        times; constant extrapolation outside *)
  | Fn of (float -> float)  (** escape hatch *)

val eval : t -> float -> float
(** Value at time [t]. *)

val average : t -> float -> float -> float
(** [average src a b] is [1/(b−a) ∫_a^b src]. Closed form for every
    structured variant; adaptive Simpson for [Fn]. This is the exact BPF
    coefficient rule of the paper's eq. (2). *)

val pwl : (float * float) list -> t
(** Validated PWL constructor: raises [Invalid_argument] unless times are
    strictly increasing. *)

val pp : Format.formatter -> t -> unit
