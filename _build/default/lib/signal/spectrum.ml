open Opm_numkit

let harmonic_amplitude w ~channel ~freq_hz =
  let times = w.Waveform.times in
  let y = Waveform.channel w channel in
  let n = Array.length times in
  if n < 4 then invalid_arg "Spectrum.harmonic_amplitude: too few samples";
  let span = times.(n - 1) -. times.(0) in
  let omega = 2.0 *. Float.pi *. freq_hz in
  (* trapezoid-weighted correlation: (2/T)∫ y e^{−jωt} dt *)
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to n - 2 do
    let dt = times.(k + 1) -. times.(k) in
    let f t v = (v *. cos (omega *. t), -.(v *. sin (omega *. t))) in
    let r0, i0 = f times.(k) y.(k) in
    let r1, i1 = f times.(k + 1) y.(k + 1) in
    re := !re +. (0.5 *. dt *. (r0 +. r1));
    im := !im +. (0.5 *. dt *. (i0 +. i1))
  done;
  2.0 /. span *. sqrt ((!re *. !re) +. (!im *. !im))

let harmonics w ~channel ~fundamental_hz ~count =
  if count < 1 then invalid_arg "Spectrum.harmonics: count < 1";
  Array.init count (fun k ->
      harmonic_amplitude w ~channel
        ~freq_hz:(float_of_int (k + 1) *. fundamental_hz))

let thd w ~channel ~fundamental_hz ?(count = 10) () =
  let a = harmonics w ~channel ~fundamental_hz ~count in
  if a.(0) = 0.0 then invalid_arg "Spectrum.thd: zero fundamental";
  let upper = ref 0.0 in
  for k = 1 to count - 1 do
    upper := !upper +. (a.(k) *. a.(k))
  done;
  sqrt !upper /. a.(0)

let magnitude ?(window = `Hann) w ~channel =
  let times = w.Waveform.times in
  let n_raw = Array.length times in
  if n_raw < 4 then invalid_arg "Spectrum.magnitude: too few samples";
  (* resample to the next power of two ≥ the raw sample count *)
  let n =
    let rec up p = if p >= n_raw then p else up (2 * p) in
    up 64
  in
  let t0 = times.(0) and t1 = times.(n_raw - 1) in
  let dt = (t1 -. t0) /. float_of_int (n - 1) in
  let grid = Array.init n (fun k -> t0 +. (float_of_int k *. dt)) in
  let resampled = Waveform.resample w grid in
  let y = Waveform.channel resampled channel in
  let windowed =
    Array.mapi
      (fun k v ->
        match window with
        | `Rect -> v
        | `Hann ->
            let c =
              0.5 *. (1.0 -. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int (n - 1)))
            in
            v *. c)
      y
  in
  let spec = Fft.fft_real windowed in
  let scale = 2.0 /. float_of_int n in
  Array.init ((n / 2) + 1) (fun k ->
      (float_of_int k /. (float_of_int n *. dt), scale *. Complex.norm spec.(k)))
