lib/signal/waveform.mli:
