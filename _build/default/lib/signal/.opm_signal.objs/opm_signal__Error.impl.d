lib/signal/error.ml: Array Float Opm_numkit Vec Waveform
