lib/signal/source.ml: Float Format List
