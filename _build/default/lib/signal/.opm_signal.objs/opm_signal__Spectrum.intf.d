lib/signal/spectrum.mli: Waveform
