lib/signal/error.mli: Waveform
