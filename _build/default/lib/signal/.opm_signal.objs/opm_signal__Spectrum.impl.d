lib/signal/spectrum.ml: Array Complex Fft Float Opm_numkit Waveform
