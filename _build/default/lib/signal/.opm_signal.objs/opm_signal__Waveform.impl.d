lib/signal/waveform.ml: Array Buffer Printf
