lib/signal/source.mli: Format
