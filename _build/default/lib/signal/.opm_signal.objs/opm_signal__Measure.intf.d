lib/signal/measure.mli: Waveform
