lib/signal/measure.ml: Array Float Waveform
