type t = {
  times : float array;
  channels : float array array;
  labels : string array;
}

let make ?labels times channels =
  let n = Array.length times in
  for k = 1 to n - 1 do
    if times.(k) <= times.(k - 1) then
      invalid_arg "Waveform.make: times must strictly increase"
  done;
  Array.iteri
    (fun c ch ->
      if Array.length ch <> n then
        invalid_arg
          (Printf.sprintf "Waveform.make: channel %d has %d samples, expected %d"
             c (Array.length ch) n))
    channels;
  let labels =
    match labels with
    | Some l ->
        if Array.length l <> Array.length channels then
          invalid_arg "Waveform.make: label count mismatch";
        l
    | None -> Array.init (Array.length channels) (Printf.sprintf "y%d")
  in
  { times; channels; labels }

let channel_count w = Array.length w.channels

let sample_count w = Array.length w.times

let channel w c = w.channels.(c)

let channel_named w name =
  let rec find i =
    if i >= Array.length w.labels then raise Not_found
    else if w.labels.(i) = name then w.channels.(i)
    else find (i + 1)
  in
  find 0

let of_function ?labels times f =
  let n = Array.length times in
  if n = 0 then invalid_arg "Waveform.of_function: empty grid";
  let first = f times.(0) in
  let channels = Array.map (fun v -> Array.make n v) first in
  for k = 1 to n - 1 do
    let v = f times.(k) in
    Array.iteri (fun c x -> channels.(c).(k) <- x) v
  done;
  make ?labels times channels

let interp times values t =
  let n = Array.length times in
  if t <= times.(0) then values.(0)
  else if t >= times.(n - 1) then values.(n - 1)
  else begin
    (* binary search for the bracketing interval *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if times.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = times.(!lo) and t1 = times.(!hi) in
    let v0 = values.(!lo) and v1 = values.(!hi) in
    v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let sample_at w t = Array.map (fun ch -> interp w.times ch t) w.channels

let resample w new_times =
  let channels =
    Array.map (fun ch -> Array.map (fun t -> interp w.times ch t) new_times) w.channels
  in
  make ~labels:w.labels new_times channels

let map_channels f w = make ~labels:w.labels w.times (Array.map f w.channels)

let bpf_grid ~t_end ~m =
  if m <= 0 then invalid_arg "Waveform.bpf_grid: m <= 0";
  let h = t_end /. float_of_int m in
  Array.init m (fun i -> (float_of_int i +. 0.5) *. h)

let to_csv w =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t";
  Array.iter (fun l -> Buffer.add_char buf ','; Buffer.add_string buf l) w.labels;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun k t ->
      Buffer.add_string buf (Printf.sprintf "%.9g" t);
      Array.iter
        (fun ch -> Buffer.add_string buf (Printf.sprintf ",%.9g" ch.(k)))
        w.channels;
      Buffer.add_char buf '\n')
    w.times;
  Buffer.contents buf

let print_csv ?(oc = stdout) w = output_string oc (to_csv w)
