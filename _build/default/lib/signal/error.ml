open Opm_numkit

let relative_error ~reference y =
  if Array.length reference <> Array.length y then
    invalid_arg "Error.relative_error: length mismatch";
  let denom = Vec.norm2 reference in
  if denom = 0.0 then Float.nan else Vec.dist2 y reference /. denom

let relative_error_db ~reference y =
  let r = relative_error ~reference y in
  if r = 0.0 then Float.neg_infinity else 20.0 *. log10 r

let stack w = Array.concat (Array.to_list w.Waveform.channels)

let waveform_error_db ~reference y =
  let y' = Waveform.resample y reference.Waveform.times in
  relative_error_db ~reference:(stack reference) (stack y')

let average_relative_error_db ~reference y =
  let y' = Waveform.resample y reference.Waveform.times in
  let n = Waveform.channel_count reference in
  if n = 0 then invalid_arg "Error.average_relative_error_db: no channels";
  let sum = ref 0.0 in
  for c = 0 to n - 1 do
    sum :=
      !sum
      +. relative_error_db ~reference:(Waveform.channel reference c)
           (Waveform.channel y' c)
  done;
  !sum /. float_of_int n

let max_abs_error ~reference y =
  let y' = Waveform.resample y reference.Waveform.times in
  let m = ref 0.0 in
  for c = 0 to Waveform.channel_count reference - 1 do
    m :=
      Float.max !m
        (Vec.max_abs_diff (Waveform.channel reference c) (Waveform.channel y' c))
  done;
  !m
