open Opm_signal

(** Capacitively coupled interconnect pair — the classic crosstalk
    workload (aggressor/victim RC lines with coupling capacitors at
    every section).

    Both lines are π-model RC chains; section [k] of the aggressor
    couples to section [k] of the victim through [cc]. The aggressor is
    driven by the given source, the victim's driver holds it at 0
    through [r_drv], and the far ends carry load capacitors. Node
    names: [a0…a<n>] (aggressor), [v0…v<n>] (victim). *)

type spec = {
  sections : int;
  r_seg : float;  (** per-section wire resistance, Ω *)
  c_seg : float;  (** per-section ground capacitance, F *)
  cc : float;  (** per-section coupling capacitance, F *)
  r_drv : float;  (** aggressor driver output resistance, Ω *)
  r_drv_victim : float;  (** victim driver (holder) resistance, Ω *)
  c_load : float;  (** receiver load, F *)
  aggressor : Source.t;
}

val default_spec : spec
(** 8 sections, 50 Ω/section, 20 fF ground + 30 fF coupling per section
    (coupling-dominated — worst case), 100 Ω drivers on both lines,
    10 fF loads, 1 V aggressor step. *)

val generate : spec -> Netlist.t

val victim_far_node : spec -> string
(** Where to probe the crosstalk glitch. *)

val aggressor_far_node : spec -> string
