open Opm_core

(** Modified nodal analysis.

    Stamps a netlist into the descriptor form the paper simulates:

    [E₁ ẋ + Σ_α E_α d^α x/dt^α = A x + B u],   [y = C x]

    with state vector [x = (node voltages, inductor currents,
    voltage-source currents)]. Capacitors stamp into [E₁]; constant-
    phase elements stamp their [q] into the [E_α] of their order [α]
    (one extra term per distinct CPE order, grouped automatically);
    resistors stamp [−1/R] into [A]; inductor and voltage-source
    branches add current variables and their defining rows ([E] rows
    for [L], algebraic rows for [V] — the DAE case of the paper).

    Inputs [u] are the independent sources in order of appearance.
    Sign conventions (SPICE): positive source current flows from the
    [+] node through the source to the [−] node. *)

type probe =
  | Node_voltage of string
  | Branch_current of string  (** an inductor or voltage source *)
  | State of int  (** raw state index *)

val stamp : ?outputs:probe list -> Netlist.t -> Multi_term.t * Opm_signal.Source.t array
(** General stamping; handles any mix of R/L/C/CPE/V/I. Default
    outputs: every node voltage. Raises [Invalid_argument] for probes
    that do not exist. *)

val stamp_linear :
  ?outputs:probe list -> Netlist.t -> Descriptor.t * Opm_signal.Source.t array
(** Stamping restricted to R/L/C/V/I (first-order descriptor, paper
    eq. 9). Raises [Invalid_argument] if the netlist contains a CPE. *)

val stamp_fractional :
  ?outputs:probe list ->
  Netlist.t ->
  (Descriptor.t * float * Opm_signal.Source.t array) option
(** When the netlist's only dynamic elements are CPEs of one common
    order [α] (plus resistors and sources), return the single-term
    fractional descriptor [(sys, α, sources)] of paper eq. (19);
    [None] if the netlist does not have that shape. *)

val state_names : Netlist.t -> string array
(** ["v(node)" …; "i(L…)" …; "i(V…)" …] in stamping order. *)
