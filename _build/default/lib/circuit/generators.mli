open Opm_signal

(** Parametric circuit generators used by the examples, tests and the
    benchmark workloads. *)

val rc_ladder :
  ?r:float -> ?c:float -> sections:int -> input:Source.t -> unit -> Netlist.t
(** Classic RC ladder: [V_in — R — n1 — R — n2 … ], each internal node
    with [C] to ground. Defaults [r = 1 kΩ], [c = 1 nF]. The input is a
    voltage source at node ["in"]. *)

val rc_two_time_scale :
  ?tau_fast:float -> ?tau_slow:float -> input:Source.t -> unit -> Netlist.t
(** Two cascaded RC stages with time constants [tau_fast ≪ tau_slow]
    (defaults 1 µs and 100 µs) — the stiff benchmark for the adaptive
    step ablation. *)

val cpe_charging :
  ?r:float -> ?q:float -> ?alpha:float -> input:Source.t -> unit -> Netlist.t
(** Supercapacitor-style charging circuit: voltage source, series
    resistor, CPE to ground (defaults [r = 1 kΩ], [q = 1 µF·s^{α−1}],
    [α = 0.5]). Its node equation is the scalar relaxation FDE whose
    exact solution is a Mittag-Leffler function. *)
