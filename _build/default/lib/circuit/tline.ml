open Opm_numkit
open Opm_core
open Opm_signal

let order = 7

let alpha = 0.5

let t_end = 2.7e-9

(* Seven RC sections of a lossy line, half-order form. The section time
   constant tau = r·c sets the speed; with T = 2.7 ns we pick tau so the
   step response traverses most of its transient inside the window. *)
let model () =
  let n = order in
  let tau = 0.1e-9 in
  (* E = sqrt(tau)·I: the half-order operator carries s^{1/2}, so the
     natural scaling is tau^{alpha} *)
  let e = Mat.scale (sqrt tau) (Mat.eye n) in
  (* tridiagonal diffusion coupling with port loading at both ends *)
  let a =
    Mat.init n n (fun i j ->
        if i = j then if i = 0 || i = n - 1 then -1.5 else -2.0
        else if abs (i - j) = 1 then 1.0
        else 0.0)
  in
  let b = Mat.zeros n 2 in
  Mat.set b 0 0 1.0;
  Mat.set b (n - 1) 1 1.0;
  let c = Mat.zeros 2 n in
  Mat.set c 0 0 1.0;
  Mat.set c 1 (n - 1) 1.0;
  let state_names = Array.init n (Printf.sprintf "v%d") in
  Descriptor.of_dense ~state_names
    ~output_names:[| "y_port1"; "y_port2" |]
    ~e ~a ~b ~c ()

let inputs () = [| Source.Step { amplitude = 1.0; delay = 0.0 }; Source.Dc 0.0 |]
