
let rc_ladder ?(r = 1e3) ?(c = 1e-9) ~sections ~input () =
  if sections <= 0 then invalid_arg "Generators.rc_ladder: sections <= 0";
  let net = Netlist.create () in
  Netlist.add net (Netlist.v "Vin" "in" "0" input);
  let node k = if k = 0 then "in" else Printf.sprintf "n%d" k in
  for k = 1 to sections do
    Netlist.add net (Netlist.r (Printf.sprintf "R%d" k) (node (k - 1)) (node k) r);
    Netlist.add net (Netlist.c (Printf.sprintf "C%d" k) (node k) "0" c)
  done;
  net

let rc_two_time_scale ?(tau_fast = 1e-6) ?(tau_slow = 1e-4) ~input () =
  let r1 = 1e3 in
  let c1 = tau_fast /. r1 in
  (* large second stage decoupled through a big resistor *)
  let r2 = 1e5 in
  let c2 = tau_slow /. r2 in
  Netlist.of_list
    [
      Netlist.v "Vin" "in" "0" input;
      Netlist.r "R1" "in" "fast" r1;
      Netlist.c "C1" "fast" "0" c1;
      Netlist.r "R2" "fast" "slow" r2;
      Netlist.c "C2" "slow" "0" c2;
    ]

let cpe_charging ?(r = 1e3) ?(q = 1e-6) ?(alpha = 0.5) ~input () =
  Netlist.of_list
    [
      Netlist.v "Vin" "in" "0" input;
      Netlist.r "R1" "in" "out" r;
      Netlist.cpe "P1" "out" "0" ~q ~alpha;
    ]
