lib/circuit/generators.mli: Netlist Opm_signal Source
