lib/circuit/netlist.mli: Opm_signal Source
