lib/circuit/tline.mli: Descriptor Opm_core Opm_signal Source
