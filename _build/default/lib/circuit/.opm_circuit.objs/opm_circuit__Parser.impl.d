lib/circuit/parser.ml: Buffer Char Float List Netlist Opm_signal Printf Source String
