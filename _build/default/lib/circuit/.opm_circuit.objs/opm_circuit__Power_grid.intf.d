lib/circuit/power_grid.mli: Netlist Opm_signal Source
