lib/circuit/na2.ml: Array Coo List Mat Mna Multi_term Netlist Opm_core Opm_numkit Opm_sparse Printf
