lib/circuit/power_grid.ml: Float Netlist Opm_signal Printf Source
