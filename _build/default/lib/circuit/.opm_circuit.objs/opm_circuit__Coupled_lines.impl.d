lib/circuit/coupled_lines.ml: Netlist Opm_signal Printf Source
