lib/circuit/mna.ml: Array Coo Csr Descriptor Hashtbl List Mat Multi_term Netlist Opm_core Opm_numkit Opm_sparse Printf
