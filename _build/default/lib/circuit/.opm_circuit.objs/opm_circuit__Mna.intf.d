lib/circuit/mna.mli: Descriptor Multi_term Netlist Opm_core Opm_signal
