lib/circuit/na2.mli: Mna Multi_term Netlist Opm_core Opm_signal
