lib/circuit/generators.ml: Netlist Printf
