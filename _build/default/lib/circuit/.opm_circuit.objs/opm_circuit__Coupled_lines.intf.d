lib/circuit/coupled_lines.mli: Netlist Opm_signal Source
