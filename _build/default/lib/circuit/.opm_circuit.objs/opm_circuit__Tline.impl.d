lib/circuit/tline.ml: Array Descriptor Mat Opm_core Opm_numkit Opm_signal Printf Source
