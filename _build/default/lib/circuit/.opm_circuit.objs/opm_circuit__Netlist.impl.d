lib/circuit/netlist.ml: Array Float Hashtbl List Opm_signal Printf Source String
