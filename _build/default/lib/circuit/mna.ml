open Opm_numkit
open Opm_sparse
open Opm_core

type probe =
  | Node_voltage of string
  | Branch_current of string
  | State of int

(* branch elements that carry a current state, in netlist order *)
let current_branches net =
  List.filter
    (fun inst ->
      match inst.Netlist.element with
      | Netlist.Inductor _ | Netlist.Voltage_source _ | Netlist.Vcvs _ -> true
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Cpe _
      | Netlist.Current_source _ | Netlist.Vccs _ -> false)
    (Netlist.instances net)

let state_names net =
  let nodes = Array.map (Printf.sprintf "v(%s)") (Netlist.node_names net) in
  let branches =
    List.map
      (fun inst -> Printf.sprintf "i(%s)" inst.Netlist.name)
      (current_branches net)
  in
  Array.append nodes (Array.of_list branches)

let sources_of net =
  List.filter_map
    (fun inst ->
      match inst.Netlist.element with
      | Netlist.Voltage_source s | Netlist.Current_source s -> Some s
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
      | Netlist.Cpe _ | Netlist.Vccs _ | Netlist.Vcvs _ -> None)
    (Netlist.instances net)

let stamp ?outputs net =
  let n_nodes = Netlist.node_count net in
  let branches = current_branches net in
  let n = n_nodes + List.length branches in
  let branch_index =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun k inst -> Hashtbl.add tbl inst.Netlist.name (n_nodes + k))
      branches;
    tbl
  in
  let node inst_name which name =
    match Netlist.node_index net name with
    | Some k -> Some k
    | None ->
        if Netlist.is_ground name then None
        else
          invalid_arg
            (Printf.sprintf "Mna.stamp: %s: unknown %s node %s" inst_name which
               name)
  in
  let e1 = Coo.create ~rows:n ~cols:n in
  (* one extra E per distinct fractional order *)
  let e_frac : (float, Coo.t) Hashtbl.t = Hashtbl.create 4 in
  let e_of_alpha alpha =
    match Hashtbl.find_opt e_frac alpha with
    | Some coo -> coo
    | None ->
        let coo = Coo.create ~rows:n ~cols:n in
        Hashtbl.add e_frac alpha coo;
        coo
  in
  let a = Coo.create ~rows:n ~cols:n in
  let srcs = sources_of net in
  let p = List.length srcs in
  let b = Mat.zeros n p in
  (* stamp a conductance-like pair pattern into a COO target *)
  let stamp_pair coo np nm value =
    (match np with Some i -> Coo.add coo i i value | None -> ());
    (match nm with Some i -> Coo.add coo i i value | None -> ());
    match (np, nm) with
    | Some i, Some j ->
        Coo.add coo i j (-.value);
        Coo.add coo j i (-.value)
    | Some _, None | None, Some _ | None, None -> ()
  in
  let src_counter = ref 0 in
  let each inst =
    let np = node inst.Netlist.name "+" inst.Netlist.plus in
    let nm = node inst.Netlist.name "-" inst.Netlist.minus in
    match inst.Netlist.element with
    | Netlist.Resistor r -> stamp_pair a np nm (-1.0 /. r)
    | Netlist.Capacitor c -> stamp_pair e1 np nm c
    | Netlist.Cpe { q; alpha } ->
        if alpha = 1.0 then stamp_pair e1 np nm q
        else stamp_pair (e_of_alpha alpha) np nm q
    | Netlist.Inductor l ->
        let row = Hashtbl.find branch_index inst.Netlist.name in
        (* branch equation: L di/dt = v+ − v− *)
        Coo.add e1 row row l;
        (match np with Some i -> Coo.add a row i 1.0 | None -> ());
        (match nm with Some i -> Coo.add a row i (-1.0) | None -> ());
        (* KCL: current i leaves the + node, enters the − node *)
        (match np with Some i -> Coo.add a i row (-1.0) | None -> ());
        (match nm with Some i -> Coo.add a i row 1.0 | None -> ())
    | Netlist.Voltage_source _ ->
        let row = Hashtbl.find branch_index inst.Netlist.name in
        let k = !src_counter in
        incr src_counter;
        (* algebraic row: 0 = v+ − v− − V(t) *)
        (match np with Some i -> Coo.add a row i 1.0 | None -> ());
        (match nm with Some i -> Coo.add a row i (-1.0) | None -> ());
        Mat.set b row k (-1.0);
        (match np with Some i -> Coo.add a i row (-1.0) | None -> ());
        (match nm with Some i -> Coo.add a i row 1.0 | None -> ())
    | Netlist.Current_source _ ->
        let k = !src_counter in
        incr src_counter;
        (* current u flows + → −: extracts u at +, injects at − *)
        (match np with Some i -> Mat.set b i k (Mat.get b i k -. 1.0) | None -> ());
        (match nm with Some i -> Mat.set b i k (Mat.get b i k +. 1.0) | None -> ())
    | Netlist.Vccs { gm; ctrl_plus; ctrl_minus } ->
        (* current gm·(v(c+) − v(c−)) leaves the + node *)
        let cp = node inst.Netlist.name "ctrl+" ctrl_plus in
        let cm = node inst.Netlist.name "ctrl-" ctrl_minus in
        let kcl node_idx sign =
          match node_idx with
          | None -> ()
          | Some i ->
              (match cp with Some j -> Coo.add a i j (-.sign *. gm) | None -> ());
              (match cm with Some j -> Coo.add a i j (sign *. gm) | None -> ())
        in
        kcl np 1.0;
        kcl nm (-1.0)
    | Netlist.Vcvs { gain; ctrl_plus; ctrl_minus } ->
        let row = Hashtbl.find branch_index inst.Netlist.name in
        let cp = node inst.Netlist.name "ctrl+" ctrl_plus in
        let cm = node inst.Netlist.name "ctrl-" ctrl_minus in
        (* algebraic row: 0 = v+ − v− − gain·(v(c+) − v(c−)) *)
        (match np with Some i -> Coo.add a row i 1.0 | None -> ());
        (match nm with Some i -> Coo.add a row i (-1.0) | None -> ());
        (match cp with Some i -> Coo.add a row i (-.gain) | None -> ());
        (match cm with Some i -> Coo.add a row i gain | None -> ());
        (* branch current in the KCL rows, as for a voltage source *)
        (match np with Some i -> Coo.add a i row (-1.0) | None -> ());
        (match nm with Some i -> Coo.add a i row 1.0 | None -> ())
  in
  List.iter each (Netlist.instances net);
  let names = state_names net in
  let probe_row = function
    | State i ->
        if i < 0 || i >= n then invalid_arg "Mna.stamp: state index out of range";
        (i, names.(i))
    | Node_voltage name -> (
        match Netlist.node_index net name with
        | Some i -> (i, Printf.sprintf "v(%s)" name)
        | None ->
            invalid_arg (Printf.sprintf "Mna.stamp: unknown output node %s" name))
    | Branch_current name -> (
        match Hashtbl.find_opt branch_index name with
        | Some i -> (i, Printf.sprintf "i(%s)" name)
        | None ->
            invalid_arg
              (Printf.sprintf "Mna.stamp: %s carries no current state" name))
  in
  let probes =
    match outputs with
    | Some ps -> List.map probe_row ps
    | None ->
        Array.to_list
          (Array.mapi
             (fun i node -> (i, Printf.sprintf "v(%s)" node))
             (Netlist.node_names net))
  in
  let q = List.length probes in
  let c = Mat.zeros q n in
  List.iteri (fun r (i, _) -> Mat.set c r i 1.0) probes;
  let output_names = Array.of_list (List.map snd probes) in
  let frac_terms =
    Hashtbl.fold (fun alpha coo acc -> (Coo.to_csr coo, alpha) :: acc) e_frac []
    |> List.sort (fun (_, a1) (_, a2) -> compare a1 a2)
  in
  let terms = (Coo.to_csr e1, 1.0) :: frac_terms in
  let sys =
    Multi_term.make ~state_names:names ~output_names ~terms ~a:(Coo.to_csr a)
      ~b ~c ()
  in
  (sys, Array.of_list srcs)

let has_cpe net =
  List.exists
    (fun inst ->
      match inst.Netlist.element with
      | Netlist.Cpe _ -> true
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
      | Netlist.Voltage_source _ | Netlist.Current_source _
      | Netlist.Vccs _ | Netlist.Vcvs _ -> false)
    (Netlist.instances net)

let stamp_linear ?outputs net =
  if has_cpe net then
    invalid_arg "Mna.stamp_linear: netlist contains a CPE; use stamp";
  let mt, srcs = stamp ?outputs net in
  match mt.Multi_term.terms with
  | [ { Multi_term.coeff; alpha } ] when alpha = 1.0 ->
      ( Descriptor.make ~state_names:mt.Multi_term.state_names
          ~output_names:mt.Multi_term.output_names ~e:coeff ~a:mt.Multi_term.a
          ~b:mt.Multi_term.b ~c:mt.Multi_term.c (),
        srcs )
  | _ -> assert false

let stamp_fractional ?outputs net =
  let dynamic_orders =
    List.filter_map
      (fun inst ->
        match inst.Netlist.element with
        | Netlist.Cpe { alpha; _ } -> Some alpha
        | Netlist.Capacitor _ | Netlist.Inductor _ -> Some 1.0
        | Netlist.Resistor _ | Netlist.Voltage_source _
        | Netlist.Current_source _ | Netlist.Vccs _ | Netlist.Vcvs _ -> None)
      (Netlist.instances net)
  in
  match List.sort_uniq compare dynamic_orders with
  | [ alpha ] when alpha <> 1.0 ->
      let mt, srcs = stamp ?outputs net in
      (* terms = [(E1 = empty, 1.0); (Eα, α)] — drop the empty E1 *)
      let non_empty =
        List.filter
          (fun { Multi_term.coeff; _ } -> Csr.nnz coeff > 0)
          mt.Multi_term.terms
      in
      (match non_empty with
      | [ { Multi_term.coeff; alpha = a } ] when a = alpha ->
          Some
            ( Descriptor.make ~state_names:mt.Multi_term.state_names
                ~output_names:mt.Multi_term.output_names ~e:coeff
                ~a:mt.Multi_term.a ~b:mt.Multi_term.b ~c:mt.Multi_term.c (),
              alpha,
              srcs )
      | _ -> None)
  | _ -> None
