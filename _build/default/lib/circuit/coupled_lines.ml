open Opm_signal

type spec = {
  sections : int;
  r_seg : float;
  c_seg : float;
  cc : float;
  r_drv : float;
  r_drv_victim : float;
  c_load : float;
  aggressor : Source.t;
}

let default_spec =
  {
    sections = 8;
    r_seg = 50.0;
    c_seg = 20e-15;
    cc = 30e-15;
    r_drv = 100.0;
    r_drv_victim = 100.0;
    c_load = 10e-15;
    aggressor = Source.Step { amplitude = 1.0; delay = 0.0 };
  }

let node prefix k = Printf.sprintf "%s%d" prefix k

let victim_far_node spec = node "v" spec.sections

let aggressor_far_node spec = node "a" spec.sections

let generate spec =
  if spec.sections <= 0 then invalid_arg "Coupled_lines.generate: sections <= 0";
  let net = Netlist.create () in
  (* drivers *)
  Netlist.add net (Netlist.v "Vagg" "agg_src" "0" spec.aggressor);
  Netlist.add net (Netlist.r "Rdrv_a" "agg_src" (node "a" 0) spec.r_drv);
  Netlist.add net (Netlist.v "Vvic" "vic_src" "0" (Source.Dc 0.0));
  Netlist.add net (Netlist.r "Rdrv_v" "vic_src" (node "v" 0) spec.r_drv_victim);
  for k = 0 to spec.sections - 1 do
    Netlist.add net
      (Netlist.r (Printf.sprintf "Ra%d" k) (node "a" k) (node "a" (k + 1))
         spec.r_seg);
    Netlist.add net
      (Netlist.r (Printf.sprintf "Rv%d" k) (node "v" k) (node "v" (k + 1))
         spec.r_seg);
    Netlist.add net
      (Netlist.c (Printf.sprintf "Ca%d" k) (node "a" (k + 1)) "0" spec.c_seg);
    Netlist.add net
      (Netlist.c (Printf.sprintf "Cv%d" k) (node "v" (k + 1)) "0" spec.c_seg);
    Netlist.add net
      (Netlist.c
         (Printf.sprintf "Cc%d" k)
         (node "a" (k + 1))
         (node "v" (k + 1))
         spec.cc)
  done;
  Netlist.add net
    (Netlist.c "Cload_a" (aggressor_far_node spec) "0" spec.c_load);
  Netlist.add net (Netlist.c "Cload_v" (victim_far_node spec) "0" spec.c_load);
  net
