open Opm_numkit
open Opm_sparse
open Opm_core

let stamp ?outputs net =
  let n = Netlist.node_count net in
  let c = Coo.create ~rows:n ~cols:n in
  let g = Coo.create ~rows:n ~cols:n in
  let gamma = Coo.create ~rows:n ~cols:n in
  let srcs = ref [] in
  let stamp_pair coo np nm value =
    (match np with Some i -> Coo.add coo i i value | None -> ());
    (match nm with Some i -> Coo.add coo i i value | None -> ());
    match (np, nm) with
    | Some i, Some j ->
        Coo.add coo i j (-.value);
        Coo.add coo j i (-.value)
    | Some _, None | None, Some _ | None, None -> ()
  in
  let b_entries = ref [] in
  let src_count = ref 0 in
  let each inst =
    let np = Netlist.node_index net inst.Netlist.plus in
    let nm = Netlist.node_index net inst.Netlist.minus in
    match inst.Netlist.element with
    | Netlist.Resistor r -> stamp_pair g np nm (1.0 /. r)
    | Netlist.Capacitor cv -> stamp_pair c np nm cv
    | Netlist.Inductor l -> stamp_pair gamma np nm (1.0 /. l)
    | Netlist.Current_source s ->
        let k = !src_count in
        incr src_count;
        srcs := s :: !srcs;
        (match np with Some i -> b_entries := (i, k, -1.0) :: !b_entries | None -> ());
        (match nm with Some i -> b_entries := (i, k, 1.0) :: !b_entries | None -> ())
    | Netlist.Voltage_source _ ->
        invalid_arg
          (Printf.sprintf
             "Na2.stamp: %s: voltage sources are not expressible in \
              second-order NA; use Mna.stamp"
             inst.Netlist.name)
    | Netlist.Cpe _ ->
        invalid_arg
          (Printf.sprintf "Na2.stamp: %s: CPEs need Mna.stamp" inst.Netlist.name)
    | Netlist.Vccs { gm; ctrl_plus; ctrl_minus } ->
        (* resistive-like, fits NA directly (non-symmetric G stamp) *)
        let cp = Netlist.node_index net ctrl_plus in
        let cm = Netlist.node_index net ctrl_minus in
        let kcl node_idx sign =
          match node_idx with
          | None -> ()
          | Some i ->
              (match cp with Some j -> Coo.add g i j (sign *. gm) | None -> ());
              (match cm with Some j -> Coo.add g i j (-.sign *. gm) | None -> ())
        in
        kcl np 1.0;
        kcl nm (-1.0)
    | Netlist.Vcvs _ ->
        invalid_arg
          (Printf.sprintf
             "Na2.stamp: %s: VCVS adds a branch current; use Mna.stamp"
             inst.Netlist.name)
  in
  List.iter each (Netlist.instances net);
  let p = !src_count in
  let b = Mat.zeros n p in
  List.iter (fun (i, k, v) -> Mat.set b i k (Mat.get b i k +. v)) !b_entries;
  let names = Array.map (Printf.sprintf "v(%s)") (Netlist.node_names net) in
  let probes =
    match outputs with
    | Some ps ->
        List.map
          (fun probe ->
            match probe with
            | Mna.Node_voltage name -> (
                match Netlist.node_index net name with
                | Some i -> (i, Printf.sprintf "v(%s)" name)
                | None ->
                    invalid_arg
                      (Printf.sprintf "Na2.stamp: unknown output node %s" name))
            | Mna.State i ->
                if i < 0 || i >= n then
                  invalid_arg "Na2.stamp: state index out of range";
                (i, names.(i))
            | Mna.Branch_current _ ->
                invalid_arg
                  "Na2.stamp: branch currents are not states of the NA model")
          ps
    | None ->
        Array.to_list (Array.mapi (fun i name -> (i, name)) names)
  in
  let q = List.length probes in
  let cmat = Mat.zeros q n in
  List.iteri (fun r (i, _) -> Mat.set cmat r i 1.0) probes;
  let output_names = Array.of_list (List.map snd probes) in
  let sys =
    Multi_term.second_order ~input_order:1 ~state_names:names ~output_names
      ~m2:(Coo.to_csr c) ~m1:(Coo.to_csr g) ~m0:(Coo.to_csr gamma)
      ~b ~c:cmat ()
  in
  (sys, Array.of_list (List.rev !srcs))
