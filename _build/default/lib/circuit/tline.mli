open Opm_core
open Opm_signal

(** Fractional transmission-line model — the Table I workload.

    The paper's example is a 7-state, 2-input/2-output half-order
    ([α = 1/2]) descriptor model from the fractional transmission-line
    literature ([Baleanu et al. 2010], [Yanzhu & Dingyu 2007]); the
    concrete matrices are not published. We substitute a synthetic
    model with the same provenance and shape: a lossy line is a
    diffusion medium (per-length [r·c] dynamics), and diffusion is
    exactly where half-order operators arise — the input impedance of a
    semi-infinite RC line is [√(r/(c·s))]. Discretising the line into 7
    sections and taking the half-order form gives

    [E · d^{1/2} v / dt^{1/2} = A v + B u],  [y = C v]

    with [E = τ^{1/2}·I] (section time-constant scaling), [A] the
    tridiagonal section-coupling matrix, and [B], [C] selecting the two
    port nodes. Dimensions, fractional order, simulation span
    ([0, 2.7 ns)) and step count ([m = 8]) match the paper exactly, so
    the identical code paths (fractional operational matrix, column
    solve, complex-arithmetic FFT baseline) are exercised. *)

val order : int
(** 7 — the paper's state count. *)

val alpha : float
(** 1/2. *)

val t_end : float
(** 2.7 ns. *)

val model : unit -> Descriptor.t
(** The synthetic 7-state, 2-port fractional descriptor model. *)

val inputs : unit -> Source.t array
(** The Table I excitation: a 1 V step into port 1 at [t = 0], port 2
    quiet. *)
