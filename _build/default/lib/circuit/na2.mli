open Opm_core

(** Second-order nodal analysis (the paper's Table II "NA" model).

    For an RLC network driven by current sources only, nodal analysis
    with inductor currents eliminated gives

    [C v̇ + G v + Γ ∫₀ᵗ v dτ = i(t)]

    where [Γ] is the inductive-susceptance stamp [1/L]; differentiating
    once yields the second-order model the paper simulates with OPM:

    [C v̈ + G v̇ + Γ v = di/dt]   (size = node count, vs. node + branch
    count for the MNA DAE — the 75 K vs 110 K of Table II).

    The derivative on the right-hand side is exact in OPM coordinates
    (coefficients multiply by the operational matrix [D], see
    {!Multi_term.t.input_order}). *)

val stamp :
  ?outputs:Mna.probe list ->
  Netlist.t ->
  Multi_term.t * Opm_signal.Source.t array
(** Raises [Invalid_argument] if the netlist contains voltage sources
    or CPEs (use {!Mna.stamp} for those). Probes must be node
    voltages. *)
