lib/transient/stepper.ml: Array Csr Descriptor Mat Opm_core Opm_numkit Opm_signal Opm_sparse Slu Source Vec Waveform
