lib/transient/freq_domain.ml: Array Cmat Complex Csr Descriptor Fft Mat Opm_core Opm_numkit Opm_signal Opm_sparse Source Waveform
