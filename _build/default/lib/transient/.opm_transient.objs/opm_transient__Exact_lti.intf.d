lib/transient/exact_lti.mli: Descriptor Opm_core Opm_numkit Opm_signal Source Waveform
