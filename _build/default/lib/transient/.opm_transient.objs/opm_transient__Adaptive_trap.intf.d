lib/transient/adaptive_trap.mli: Descriptor Opm_core Opm_signal Source Waveform
