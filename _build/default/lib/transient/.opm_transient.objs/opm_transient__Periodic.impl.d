lib/transient/periodic.ml: Array Descriptor Exact_lti Expm Lu Mat Opm_core Opm_numkit Opm_signal Vec
