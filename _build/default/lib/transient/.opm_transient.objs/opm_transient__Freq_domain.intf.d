lib/transient/freq_domain.mli: Descriptor Opm_core Opm_signal Source Waveform
