lib/transient/grunwald.mli: Descriptor Opm_core Opm_signal Source Waveform
