lib/transient/stepper.mli: Descriptor Opm_core Opm_signal Source Waveform
