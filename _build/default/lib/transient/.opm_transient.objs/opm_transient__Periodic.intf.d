lib/transient/periodic.mli: Descriptor Opm_core Opm_numkit Opm_signal Source Waveform
