lib/transient/exact_lti.ml: Array Descriptor Expm Lu Mat Opm_core Opm_numkit Opm_signal Option Source Vec Waveform
