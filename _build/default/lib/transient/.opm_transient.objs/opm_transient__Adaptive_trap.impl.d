lib/transient/adaptive_trap.ml: Array Descriptor Float List Lu Mat Opm_core Opm_numkit Opm_signal Option Source Vec Waveform
