open Opm_numkit
open Opm_signal
open Opm_core

type stats = {
  accepted : int;
  rejected : int;
  factorizations : int;
}

let solve ?(tol = 1e-4) ?h_init ?h_min ?h_max ~t_end (sys : Descriptor.t)
    sources =
  if t_end <= 0.0 then invalid_arg "Adaptive_trap.solve: t_end <= 0";
  let n = Descriptor.order sys in
  if Array.length sources <> Descriptor.input_count sys then
    invalid_arg "Adaptive_trap.solve: source count mismatch";
  let h_init = Option.value h_init ~default:(t_end /. 100.0) in
  let h_min = Option.value h_min ~default:(t_end *. 1e-9) in
  let h_max = Option.value h_max ~default:(t_end /. 4.0) in
  let e = Descriptor.e_dense sys and a = Descriptor.a_dense sys in
  let b = sys.Descriptor.b in
  let factorizations = ref 0 in
  let cache : (float * (Lu.t * Mat.t)) list ref = ref [] in
  (* one trapezoidal step needs (E/h − A/2)⁻¹ and (E/h + A/2) *)
  let ops_for h =
    match List.assoc_opt h !cache with
    | Some ops -> ops
    | None ->
        let lhs = Mat.sub (Mat.scale (1.0 /. h) e) (Mat.scale 0.5 a) in
        let rhs = Mat.add (Mat.scale (1.0 /. h) e) (Mat.scale 0.5 a) in
        let ops = (Lu.factor lhs, rhs) in
        incr factorizations;
        cache := (h, ops) :: List.filteri (fun i _ -> i < 7) !cache;
        ops
  in
  let bu t = Mat.mul_vec b (Array.map (fun src -> Source.eval src t) sources) in
  (* backward Euler for the very first step: the zero initial state is
     in general inconsistent with the algebraic constraints of a DAE
     (e.g. a voltage source stepping at t = 0), and the trapezoidal
     rule carries that inconsistency as an undamped ±2 oscillation of
     the algebraic variables; one BE step projects onto the consistent
     manifold — the standard simulator practice *)
  let be_cache : (float * Lu.t) list ref = ref [] in
  let be_step x t h =
    let lu =
      match List.assoc_opt h !be_cache with
      | Some f -> f
      | None ->
          let f = Lu.factor (Mat.sub (Mat.scale (1.0 /. h) e) a) in
          incr factorizations;
          be_cache := (h, f) :: !be_cache;
          f
    in
    let rhs = Mat.mul_vec (Mat.scale (1.0 /. h) e) x in
    Vec.axpy 1.0 (bu (t +. h)) rhs;
    Lu.solve lu rhs
  in
  let trap_step x t h =
    let lu, rhs_mat = ops_for h in
    let rhs = Mat.mul_vec rhs_mat x in
    Vec.axpy 0.5 (bu t) rhs;
    Vec.axpy 0.5 (bu (t +. h)) rhs;
    Lu.solve lu rhs
  in
  let step x t h = if t = 0.0 then be_step x t h else trap_step x t h in
  let times = ref [ 0.0 ] and states = ref [ Vec.zeros n ] in
  let t = ref 0.0 and x = ref (Vec.zeros n) in
  let h = ref (Float.min h_init h_max) in
  let accepted = ref 0 and rejected = ref 0 in
  while !t < t_end -. (1e-12 *. t_end) do
    let h_trial = Float.min !h (t_end -. !t) in
    let x_full = step !x !t h_trial in
    let hh = 0.5 *. h_trial in
    let x_h1 = step !x !t hh in
    let x_h2 = step x_h1 (!t +. hh) hh in
    let scale =
      Float.max 1.0 (Float.max (Vec.norm_inf x_full) (Vec.norm_inf x_h2))
    in
    (* trapezoidal is order 2: the pair differs by ~3/4 of the full
       step's local error *)
    let err = Vec.max_abs_diff x_full x_h2 /. scale in
    if err <= tol || h_trial <= h_min *. 1.000001 then begin
      times := (!t +. h_trial) :: (!t +. hh) :: !times;
      states := x_h2 :: x_h1 :: !states;
      t := !t +. h_trial;
      x := x_h2;
      incr accepted;
      let growth = 0.9 *. ((tol /. Float.max err 1e-300) ** (1.0 /. 3.0)) in
      if growth >= 2.0 && 2.0 *. h_trial <= h_max then h := 2.0 *. h_trial
      else h := h_trial
    end
    else begin
      incr rejected;
      if h_trial <= h_min *. 1.000001 then
        failwith "Adaptive_trap.solve: tolerance unreachable at minimum step";
      h := Float.max h_min (0.5 *. h_trial)
    end
  done;
  let times = Array.of_list (List.rev !times) in
  let states = Array.of_list (List.rev !states) in
  let q = Descriptor.output_count sys in
  let channels =
    Array.init q (fun i ->
        Array.map (fun xv -> Vec.dot (Mat.row sys.Descriptor.c i) xv) states)
  in
  let waveform =
    Waveform.make ~labels:sys.Descriptor.output_names times channels
  in
  ( waveform,
    {
      accepted = Array.length times - 1;
      rejected = !rejected;
      factorizations = !factorizations;
    } )
