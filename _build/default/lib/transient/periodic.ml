open Opm_numkit
open Opm_core

let transition ~period ~steps_per_period (sys : Descriptor.t) sources =
  if period <= 0.0 || steps_per_period < 1 then
    invalid_arg "Periodic: bad period/steps";
  let n = Descriptor.order sys in
  let e_lu = Lu.factor (Descriptor.e_dense sys) in
  let a' = Lu.solve_mat e_lu (Descriptor.a_dense sys) in
  let b' = Lu.solve_mat e_lu sys.Descriptor.b in
  let h = period /. float_of_int steps_per_period in
  let ah = Mat.scale h a' in
  let phi = Expm.expm ah in
  let gamma = Mat.scale h (Mat.mul (Expm.phi1 ah) b') in
  (* one-period map: x(T) = Φ_T x(0) + d, accumulated step by step *)
  let phi_total = ref (Mat.eye n) in
  let d = ref (Vec.zeros n) in
  for k = 0 to steps_per_period - 1 do
    let t0 = float_of_int k *. h in
    let u_avg =
      Array.map
        (fun src -> Opm_signal.Source.average src t0 (t0 +. h))
        sources
    in
    d := Vec.add (Mat.mul_vec phi !d) (Mat.mul_vec gamma u_avg);
    phi_total := Mat.mul phi !phi_total
  done;
  (!phi_total, !d)

let steady_initial_state ~period ~steps_per_period sys sources =
  if Array.length sources <> Descriptor.input_count sys then
    invalid_arg "Periodic: source count mismatch";
  let phi_total, d = transition ~period ~steps_per_period sys sources in
  let n = Descriptor.order sys in
  Lu.solve_dense (Mat.sub (Mat.eye n) phi_total) d

let solve ~periods ~period ~steps_per_period sys sources =
  if periods < 1 then invalid_arg "Periodic.solve: periods < 1";
  let x0 = steady_initial_state ~period ~steps_per_period sys sources in
  let h = period /. float_of_int steps_per_period in
  Exact_lti.solve ~x0 ~h ~t_end:(float_of_int periods *. period) sys sources
