open Opm_signal
open Opm_core

(** Periodic steady-state analysis (the "shooting" method, closed-form
    for LTI systems).

    For [E ẋ = A x + B u] with invertible [E] and a [T]-periodic input,
    the steady-state initial condition solves the periodicity equation
    [x(T) = x(0)]: with the exact one-period transition
    [x(T) = Φ x(0) + d] ([Φ = e^{A'T}], [d] = forced response from 0),

    [x_ss(0) = (I − Φ)^{−1} d].

    One linear solve replaces simulating many periods of transient
    decay — the standard way to get driven steady states (ripple,
    distortion measurements) without waiting out the slowest pole. *)

val steady_initial_state :
  period:float -> steps_per_period:int -> Descriptor.t -> Source.t array -> Opm_numkit.Vec.t
(** The periodic initial condition. The input is treated as piecewise
    constant at its interval averages over [steps_per_period] slices
    (exact for inputs that are piecewise constant on that grid; a
    quadrature approximation otherwise). Raises
    [Opm_numkit.Lu.Singular] for singular [E] or a system with a pole
    at an exact multiple of the drive frequency. *)

val solve :
  periods:int ->
  period:float ->
  steps_per_period:int ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** The steady-state response over [periods] periods, starting from
    {!steady_initial_state} — the first sample is already in steady
    state. *)
