open Opm_signal
open Opm_core

(** Exact discretisation of LTI ODE systems.

    For [E ẋ = A x + B u] with *invertible* [E] and an input held at
    its interval average, the update

    [x_{k+1} = e^{A'h} x_k + h·φ₁(A'h)·B' ū_k]   ([A' = E^{−1}A],
    [B' = E^{−1}B], [φ₁(z) = (e^z − 1)/z])

    is exact — no time-discretisation error at the sample points at
    all. This is the gold-standard reference for convergence studies of
    OPM and the classical schemes: whatever differs is the method's own
    error, not the reference's. DAEs (singular [E]) are rejected — use
    a fine trapezoidal reference there. *)

val solve :
  ?x0:Opm_numkit.Vec.t ->
  h:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Output waveform at [t_k = k·h]. Raises
    [Opm_numkit.Lu.Singular] when [E] is singular. The input is
    averaged exactly over each interval ({!Source.average}), matching
    OPM's block-pulse projection. *)
