open Opm_numkit
open Opm_signal
open Opm_core

let solve ?x0 ~h ~t_end (sys : Descriptor.t) sources =
  if h <= 0.0 || t_end <= 0.0 then invalid_arg "Exact_lti.solve: bad arguments";
  let n = Descriptor.order sys in
  let p = Descriptor.input_count sys in
  if Array.length sources <> p then
    invalid_arg "Exact_lti.solve: source count mismatch";
  let x0 = Option.value x0 ~default:(Vec.zeros n) in
  let e_lu = Lu.factor (Descriptor.e_dense sys) in
  let a' = Lu.solve_mat e_lu (Descriptor.a_dense sys) in
  let b' = Lu.solve_mat e_lu sys.Descriptor.b in
  let ah = Mat.scale h a' in
  let phi0 = Expm.expm ah in
  let gamma = Mat.scale h (Mat.mul (Expm.phi1 ah) b') in
  let steps = int_of_float (ceil ((t_end /. h) -. 1e-9)) in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. h) in
  let xs = Array.make (steps + 1) x0 in
  for k = 1 to steps do
    let u_avg =
      Array.map (fun src -> Source.average src times.(k - 1) times.(k)) sources
    in
    xs.(k) <- Vec.add (Mat.mul_vec phi0 xs.(k - 1)) (Mat.mul_vec gamma u_avg)
  done;
  let q = Descriptor.output_count sys in
  let channels =
    Array.init q (fun i ->
        Array.map (fun x -> Vec.dot (Mat.row sys.Descriptor.c i) x) xs)
  in
  Waveform.make ~labels:sys.Descriptor.output_names times channels
