open Opm_signal
open Opm_core

(** Adaptive-step trapezoidal rule — the classical counterpart of
    {!Opm_core.Adaptive}, so the paper's §III-B claim ("adaptive time
    step … with lower runtime") can be benchmarked against a classical
    scheme given the same error-control machinery: step-doubling
    Richardson estimate, accept the half-step pair, move the step by
    factors of two so the LU cache keyed on the step keeps hitting. *)

type stats = {
  accepted : int;  (** accepted half-steps (= samples − 1) *)
  rejected : int;
  factorizations : int;
}

val solve :
  ?tol:float ->
  ?h_init:float ->
  ?h_min:float ->
  ?h_max:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t * stats
(** Output waveform on the accepted (non-uniform) time points, starting
    at [t = 0] with [x(0) = 0]. Defaults match
    {!Opm_core.Adaptive.solve}. *)
