open Opm_signal
open Opm_core

(** Grünwald–Letnikov fractional time-stepper — an additional
    time-domain baseline for FDEs (not in the paper's comparison, but
    the standard finite-difference answer to fractional derivatives;
    included to put OPM's Table I accuracy in context).

    Approximates [d^α x/dt^α ≈ h^{−α} Σ_{j=0}^{k} w_j x_{k−j}] with the
    binomial weights [w_0 = 1], [w_j = w_{j−1}·(1 − (α+1)/j)]. Each step
    solves [(h^{−α} E − A) x_k = B u_k − h^{−α} E Σ_{j≥1} w_j x_{k−j}];
    one factorisation, but the history sum makes the total cost
    [O(n·N²)] — the quadratic-in-steps cost OPM avoids. *)

val weights : alpha:float -> int -> float array
(** First [k+1] GL binomial weights. *)

val solve :
  ?memory_length:int ->
  h:float ->
  alpha:float ->
  t_end:float ->
  Descriptor.t ->
  Source.t array ->
  Waveform.t
(** Output waveform at [t_k = k·h], zero initial history.

    [memory_length] enables Podlubny's *short-memory principle*: only
    the most recent [L] history terms enter the convolution, cutting the
    cost from [O(n·N²)] to [O(n·N·L)] at the price of a bias that decays
    like [L^{−α}] (the GL weights have a heavy [j^{−α−1}] tail — exactly
    the long-memory property that makes FDEs expensive, and that OPM
    sidesteps by paying [O(m)] dense-triangular column work instead).
    Default: full memory. *)
