open Opm_numkit

(** Haar wavelet basis (another of the paper's alternative bases, §I).

    The [m = 2^k] Haar functions on [[0, t_end)] — scaling function plus
    dyadic wavelets — are, like Walsh functions, an orthogonal ±-valued
    combination of BPFs, so operational matrices transport by the same
    similarity [H_H = T H_B T^{−1}]. Haar's locality makes the truncated
    expansion adapt to sharp local features, complementing Walsh's
    global sequency ordering. *)

val haar_matrix : int -> Mat.t
(** Rows are the (unnormalised, ±1/0-valued) Haar functions sampled on
    the [m] intervals; row 0 is constant 1. [m] must be a power of
    two. *)

val transform : Vec.t -> Vec.t
(** Fast Haar analysis: BPF coefficients → Haar coefficients
    (with the normalisation making {!inverse_transform} exact). *)

val inverse_transform : Vec.t -> Vec.t

val integral_matrix : Grid.t -> Mat.t

val differential_matrix : Grid.t -> Mat.t

val fractional_differential_matrix : Grid.t -> float -> Mat.t
