open Opm_numkit

let check_pow2 name m =
  if m <= 0 || m land (m - 1) <> 0 then
    invalid_arg (Printf.sprintf "Walsh.%s: %d is not a power of two" name m)

let rec hadamard m =
  check_pow2 "hadamard" m;
  if m = 1 then Mat.eye 1
  else
    let half = hadamard (m / 2) in
    Mat.init m m (fun i j ->
        let v = Mat.get half (i mod (m / 2)) (j mod (m / 2)) in
        if i >= m / 2 && j >= m / 2 then -.v else v)

let sequency_of_row w i =
  let _, cols = Mat.dims w in
  let changes = ref 0 in
  for j = 1 to cols - 1 do
    if Mat.get w i j *. Mat.get w i (j - 1) < 0.0 then incr changes
  done;
  !changes

let walsh_matrix m =
  check_pow2 "walsh_matrix" m;
  let h = hadamard m in
  let order = Array.init m Fun.id in
  Array.sort (fun a b -> compare (sequency_of_row h a) (sequency_of_row h b)) order;
  Mat.init m m (fun i j -> Mat.get h order.(i) j)

let fwht x =
  let m = Array.length x in
  check_pow2 "fwht" m;
  let y = Array.copy x in
  let len = ref 1 in
  while !len < m do
    let i = ref 0 in
    while !i < m do
      for k = !i to !i + !len - 1 do
        let a = y.(k) and b = y.(k + !len) in
        y.(k) <- a +. b;
        y.(k + !len) <- a -. b
      done;
      i := !i + (2 * !len)
    done;
    len := !len * 2
  done;
  y

let bpf_to_walsh c =
  let m = Array.length c in
  let w = walsh_matrix m in
  Vec.scale (1.0 /. float_of_int m) (Mat.mul_vec w c)

let walsh_to_bpf c =
  let m = Array.length c in
  let w = walsh_matrix m in
  Mat.tmul_vec w c

let similarity grid op =
  let m = Grid.size grid in
  check_pow2 "operational matrix" m;
  if not (Grid.is_uniform ~tol:1e-12 grid) then
    invalid_arg "Walsh: operational matrices require a uniform grid";
  let w = walsh_matrix m in
  let w_inv = Mat.scale (1.0 /. float_of_int m) (Mat.transpose w) in
  Mat.mul (Mat.mul w op) w_inv

let integral_matrix grid = similarity grid (Block_pulse.integral_matrix grid)

let differential_matrix grid =
  similarity grid (Block_pulse.differential_matrix grid)

let fractional_differential_matrix grid alpha =
  similarity grid (Block_pulse.fractional_differential_matrix grid alpha)

let truncate_spectrum ~keep c =
  Array.mapi (fun i v -> if i < keep then v else 0.0) c
