(** Time grids for the operational-matrix method.

    A grid divides the simulation span [[0, t_end)] into [m] intervals —
    uniform ([h = t_end / m], paper §II) or adaptive with per-interval
    steps [h_0 … h_{m−1}] (paper §III-B, eq. 16). *)

type t =
  | Uniform of { t_end : float; m : int }
  | Adaptive of { steps : float array }

val uniform : t_end:float -> m:int -> t
(** Raises [Invalid_argument] unless [t_end > 0] and [m > 0]. *)

val adaptive : float array -> t
(** Raises [Invalid_argument] unless all steps are positive. *)

val size : t -> int
(** Number of intervals [m]. *)

val t_end : t -> float

val steps : t -> float array
(** Per-interval step lengths (length [m]). *)

val boundaries : t -> float array
(** Interval boundaries [t_0 = 0 < t_1 < … < t_m = t_end]
    (length [m + 1]). *)

val midpoints : t -> float array
(** Interval midpoints (length [m]) — the natural plot grid for a BPF
    expansion. *)

val is_uniform : ?tol:float -> t -> bool

val has_distinct_steps : ?tol:float -> t -> bool
(** Whether all steps are pairwise distinct — the condition under which
    the adaptive fractional matrix of paper eq. (25) can be computed by a
    diagonal-separated method (we use the Parlett recurrence). *)

val geometric : t_end:float -> m:int -> ratio:float -> t
(** Adaptive grid with steps in geometric progression summing to
    [t_end]; [ratio ≠ 1] gives pairwise distinct steps. *)
