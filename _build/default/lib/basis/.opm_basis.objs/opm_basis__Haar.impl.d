lib/basis/haar.ml: Array Block_pulse Float Grid Mat Opm_numkit Printf
