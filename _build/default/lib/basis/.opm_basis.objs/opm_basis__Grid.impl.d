lib/basis/grid.ml: Array Float
