lib/basis/legendre.mli: Mat Opm_numkit Poly Vec
