lib/basis/legendre.ml: Array Mat Opm_numkit Poly
