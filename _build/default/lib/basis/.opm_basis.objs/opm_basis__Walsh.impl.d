lib/basis/walsh.ml: Array Block_pulse Fun Grid Mat Opm_numkit Printf Vec
