lib/basis/haar.mli: Grid Mat Opm_numkit Vec
