lib/basis/grid.mli:
