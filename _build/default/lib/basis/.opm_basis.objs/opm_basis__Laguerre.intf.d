lib/basis/laguerre.mli: Mat Opm_numkit Poly Vec
