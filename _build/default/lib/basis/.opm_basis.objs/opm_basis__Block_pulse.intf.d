lib/basis/block_pulse.mli: Grid Mat Opm_numkit Opm_signal Vec
