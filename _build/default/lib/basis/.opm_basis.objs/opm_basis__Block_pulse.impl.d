lib/basis/block_pulse.ml: Array Float Grid Mat Opm_numkit Opm_signal Series Tri
