lib/basis/walsh.mli: Grid Mat Opm_numkit Vec
