lib/basis/laguerre.ml: Array Mat Opm_numkit Option Poly
