type t =
  | Uniform of { t_end : float; m : int }
  | Adaptive of { steps : float array }

let uniform ~t_end ~m =
  if t_end <= 0.0 then invalid_arg "Grid.uniform: t_end <= 0";
  if m <= 0 then invalid_arg "Grid.uniform: m <= 0";
  Uniform { t_end; m }

let adaptive steps =
  if Array.length steps = 0 then invalid_arg "Grid.adaptive: no steps";
  Array.iter (fun h -> if h <= 0.0 then invalid_arg "Grid.adaptive: step <= 0") steps;
  Adaptive { steps }

let size = function
  | Uniform { m; _ } -> m
  | Adaptive { steps } -> Array.length steps

let t_end = function
  | Uniform { t_end; _ } -> t_end
  | Adaptive { steps } -> Array.fold_left ( +. ) 0.0 steps

let steps = function
  | Uniform { t_end; m } -> Array.make m (t_end /. float_of_int m)
  | Adaptive { steps } -> Array.copy steps

let boundaries g =
  let s = steps g in
  let m = Array.length s in
  let b = Array.make (m + 1) 0.0 in
  for i = 0 to m - 1 do
    b.(i + 1) <- b.(i) +. s.(i)
  done;
  b

let midpoints g =
  let b = boundaries g in
  Array.init (Array.length b - 1) (fun i -> 0.5 *. (b.(i) +. b.(i + 1)))

let is_uniform ?(tol = 0.0) = function
  | Uniform _ -> true
  | Adaptive { steps } ->
      let h0 = steps.(0) in
      Array.for_all (fun h -> Float.abs (h -. h0) <= tol *. h0) steps

let has_distinct_steps ?(tol = 1e-12) g =
  match g with
  | Uniform { m; _ } -> m = 1
  | Adaptive { steps } ->
      let sorted = Array.copy steps in
      Array.sort compare sorted;
      let ok = ref true in
      for i = 1 to Array.length sorted - 1 do
        if sorted.(i) -. sorted.(i - 1) <= tol *. sorted.(i) then ok := false
      done;
      !ok

let geometric ~t_end ~m ~ratio =
  if t_end <= 0.0 || m <= 0 || ratio <= 0.0 then
    invalid_arg "Grid.geometric: bad arguments";
  if ratio = 1.0 then uniform ~t_end ~m
  else begin
    (* h_i = h0 · ratio^i with Σ h_i = t_end *)
    let geom_sum = (1.0 -. (ratio ** float_of_int m)) /. (1.0 -. ratio) in
    let h0 = t_end /. geom_sum in
    adaptive (Array.init m (fun i -> h0 *. (ratio ** float_of_int i)))
  end
