open Opm_numkit

let check_pow2 name m =
  if m <= 0 || m land (m - 1) <> 0 then
    invalid_arg (Printf.sprintf "Haar.%s: %d is not a power of two" name m)

let haar_matrix m =
  check_pow2 "haar_matrix" m;
  let t = Mat.zeros m m in
  for j = 0 to m - 1 do
    Mat.set t 0 j 1.0
  done;
  (* row index 2^p + q (q = 0 … 2^p − 1): wavelet at scale p, shift q *)
  let row = ref 1 in
  let p = ref 0 in
  while !row < m do
    let scale = 1 lsl !p in
    (* width of the support in intervals *)
    let width = m / scale in
    for q = 0 to scale - 1 do
      if !row < m then begin
        let start = q * width in
        for j = start to start + (width / 2) - 1 do
          Mat.set t !row j 1.0
        done;
        for j = start + (width / 2) to start + width - 1 do
          Mat.set t !row j (-1.0)
        done;
        incr row
      end
    done;
    incr p
  done;
  t

(* rows of haar_matrix are orthogonal with squared norms m, m, m/2, m/2,
   m/4 … ; the inverse is Tᵀ · diag(1/‖row‖²) *)
let row_sq_norm m i =
  if i = 0 then float_of_int m
  else
    let p = int_of_float (Float.log2 (float_of_int i)) in
    float_of_int m /. float_of_int (1 lsl p)

let transform c =
  let m = Array.length c in
  check_pow2 "transform" m;
  let t = haar_matrix m in
  let y = Mat.mul_vec t c in
  Array.mapi (fun i v -> v /. row_sq_norm m i) y

let inverse_transform c =
  let m = Array.length c in
  check_pow2 "inverse_transform" m;
  let t = haar_matrix m in
  Mat.tmul_vec t c

let similarity grid op =
  let m = Grid.size grid in
  check_pow2 "operational matrix" m;
  if not (Grid.is_uniform ~tol:1e-12 grid) then
    invalid_arg "Haar: operational matrices require a uniform grid";
  let t = haar_matrix m in
  let t_inv =
    Mat.init m m (fun i j -> Mat.get t j i /. row_sq_norm m j)
  in
  Mat.mul (Mat.mul t op) t_inv

let integral_matrix grid = similarity grid (Block_pulse.integral_matrix grid)

let differential_matrix grid =
  similarity grid (Block_pulse.differential_matrix grid)

let fractional_differential_matrix grid alpha =
  similarity grid (Block_pulse.fractional_differential_matrix grid alpha)
