open Opm_numkit

(** Shifted Legendre polynomial basis (listed among the paper's
    alternative bases, §I).

    The shifted Legendre polynomials [SL_i(t) = P_i(2t/T − 1)] are
    orthogonal on [[0, T)] with [∫ SL_i SL_j = T δ_ij/(2i+1)].
    Integration maps polynomials to polynomials, so its operational
    matrix is computed *exactly* from the polynomial algebra in
    {!Opm_numkit.Poly}. Unlike BPF/Walsh/Haar there is no exact
    differentiation matrix acting within a fixed degree bound (the
    integration matrix is singular), so this module provides the
    integration operator and projections — the classical
    "integrated-form" OPM variant. *)

val basis : t_end:float -> m:int -> Poly.t array
(** The [m] polynomials [SL_0 … SL_{m−1}] on [[0, t_end)]. *)

val project : t_end:float -> m:int -> (float -> float) -> Vec.t
(** Orthogonal projection coefficients via Gauss–Legendre-free exact
    formula for polynomial inputs and composite Simpson otherwise. *)

val reconstruct : t_end:float -> m:int -> Vec.t -> float -> float

val integral_matrix : t_end:float -> m:int -> Mat.t
(** [P] with [∫₀ᵗ SL_i = Σ_j P_{ij} SL_j(t)] exactly for [j < m]
    (the degree-[m] tail of [∫ SL_{m−1}] is orthogonally projected
    out). *)
