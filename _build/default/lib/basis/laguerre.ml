open Opm_numkit

let polynomial n =
  if n < 0 then invalid_arg "Laguerre.polynomial: negative order";
  (* (i+1) L_{i+1} = (2i+1 − t) L_i − i L_{i−1} *)
  let rec go i li li1 =
    if i = n then li
    else
      let fi = float_of_int i in
      let next =
        Poly.scale
          (1.0 /. (fi +. 1.0))
          (Poly.add
             (Poly.mul [| (2.0 *. fi) +. 1.0; -1.0 |] li)
             (Poly.scale (-.fi) li1))
      in
      go (i + 1) next li
  in
  if n = 0 then [| 1.0 |] else go 1 [| 1.0; -1.0 |] [| 1.0 |]

let eval ~scale i t =
  if scale <= 0.0 then invalid_arg "Laguerre.eval: scale <= 0";
  let u = 2.0 *. scale *. t in
  sqrt (2.0 *. scale) *. Poly.eval (polynomial i) u *. exp (-.scale *. t)

(* antiderivative of q(u)·e^{−u/2} in the same form:
   d/du (p·e^{−u/2}) = (p' − p/2)·e^{−u/2} = q·e^{−u/2}
   ⇒ p = −2q + 2p', reached by iterating from p = −2q *)
let exp_antiderivative q =
  let rec fix p k =
    if k = 0 then p
    else fix (Poly.add (Poly.scale (-2.0) q) (Poly.scale 2.0 (Poly.derive p))) (k - 1)
  in
  fix (Poly.scale (-2.0) q) (Array.length q + 1)

(* ∫₀^∞ poly(u)·e^{−u} du = Σ_k c_k · k! *)
let weighted_moment p =
  let acc = ref 0.0 and fact = ref 1.0 in
  Array.iteri
    (fun k c ->
      if k > 0 then fact := !fact *. float_of_int k;
      acc := !acc +. (c *. !fact))
    p;
  !acc

(* ∫₀^∞ L_j(u)·e^{−u/2} du = 2·(−1)^j *)
let half_weight_moment j = if j land 1 = 0 then 2.0 else -2.0

let differential_matrix ~scale ~m =
  if scale <= 0.0 || m <= 0 then invalid_arg "Laguerre.differential_matrix";
  Mat.init m m (fun i j ->
      if j = i then -.scale
      else if j < i then -2.0 *. scale
      else 0.0)

let integral_matrix ~scale ~m =
  if scale <= 0.0 || m <= 0 then invalid_arg "Laguerre.integral_matrix";
  (* work in u = 2pt coordinates where the basis is L_i(u)e^{−u/2};
     ∫₀ᵗ φ_i dτ = (1/2p)·∫₀ᵘ L_i(v)e^{−v/2} dv
                = (1/2p)·(a_i(u)e^{−u/2} − a_i(0)) with a_i from
     exp_antiderivative; expand back:
     coefficient on φ_j: ∫₀^∞ (…)·L_j e^{−u/2} du
                = ∫ a_i L_j e^{−u} − a_i(0)·2(−1)^j *)
  Mat.init m m (fun i j ->
      let a_i = exp_antiderivative (polynomial i) in
      let product = weighted_moment (Poly.mul a_i (polynomial j)) in
      let tail = Poly.eval a_i 0.0 *. half_weight_moment j in
      (product -. tail) /. (2.0 *. scale))

let project ?t_max ~scale ~m f =
  if scale <= 0.0 || m <= 0 then invalid_arg "Laguerre.project";
  let t_max = Option.value t_max ~default:(40.0 /. (2.0 *. scale)) in
  let panels = 4096 in
  let h = t_max /. float_of_int panels in
  Array.init m (fun i ->
      let g t = f t *. eval ~scale i t in
      let sum = ref (g 0.0 +. g t_max) in
      for k = 1 to panels - 1 do
        let w = if k land 1 = 1 then 4.0 else 2.0 in
        sum := !sum +. (w *. g (float_of_int k *. h))
      done;
      !sum *. h /. 3.0)

let reconstruct ~scale ~m c t =
  if Array.length c <> m then invalid_arg "Laguerre.reconstruct";
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    acc := !acc +. (c.(i) *. eval ~scale i t)
  done;
  !acc
