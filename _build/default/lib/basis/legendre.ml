open Opm_numkit

let basis ~t_end ~m =
  if m <= 0 || t_end <= 0.0 then invalid_arg "Legendre.basis: bad arguments";
  Array.init m (fun i ->
      (* compose shifted Legendre on [0,1] with t/t_end *)
      let p = Poly.shifted_legendre i in
      Array.mapi (fun k c -> c /. (t_end ** float_of_int k)) p)

let inner ~t_end p q =
  (* ∫_0^T p q dt, exact *)
  Poly.definite_integral (Poly.mul p q) 0.0 t_end

let sq_norm ~t_end i = t_end /. ((2.0 *. float_of_int i) +. 1.0)

let project ~t_end ~m f =
  let b = basis ~t_end ~m in
  Array.init m (fun i ->
      (* composite Simpson over [0, t_end] of f·SL_i *)
      let g t = f t *. Poly.eval b.(i) t in
      let panels = 256 in
      let h = t_end /. float_of_int panels in
      let sum = ref (g 0.0 +. g t_end) in
      for k = 1 to panels - 1 do
        let w = if k land 1 = 1 then 4.0 else 2.0 in
        sum := !sum +. (w *. g (float_of_int k *. h))
      done;
      let integral = !sum *. h /. 3.0 in
      integral /. sq_norm ~t_end i)

let reconstruct ~t_end ~m c t =
  let b = basis ~t_end ~m in
  let s = ref 0.0 in
  for i = 0 to m - 1 do
    s := !s +. (c.(i) *. Poly.eval b.(i) t)
  done;
  !s

let integral_matrix ~t_end ~m =
  let b = basis ~t_end ~m in
  Mat.init m m (fun i j ->
      let anti = Poly.integrate b.(i) in
      inner ~t_end anti b.(j) /. sq_norm ~t_end j)
