open Opm_numkit

(** Walsh functions — the paper's first-listed alternative basis (§I):
    "a set of low- to high-frequency basis functions … if we are only
    interested in the overall trend of the response waveforms, Walsh
    function is a better choice."

    Walsh functions on a uniform [m = 2^k] grid are ±1 combinations of
    BPFs; in matrix form [Φ_W = W Φ_B] where [W] is the (sequency-
    ordered) Hadamard matrix. Operational matrices transport by
    similarity: [H_W = W H_B W^{−1}] with [W^{−1} = Wᵀ/m = W/m]. *)

val hadamard : int -> Mat.t
(** Natural (Hadamard-ordered) ±1 matrix of size [m = 2^k].
    Raises [Invalid_argument] unless [m] is a power of two. *)

val walsh_matrix : int -> Mat.t
(** Sequency-ordered Walsh matrix (rows sorted by sign-change count). *)

val fwht : Vec.t -> Vec.t
(** Fast Walsh–Hadamard transform (natural order, unnormalised):
    [y = hadamard m · x] in [O(m log m)]. *)

val sequency_of_row : Mat.t -> int -> int
(** Number of sign changes in a row (its "frequency"). *)

val bpf_to_walsh : Vec.t -> Vec.t
(** Coefficient change of basis: if [f = c_Bᵀ Φ_B] then
    [f = c_Wᵀ Φ_W] with [c_W = (1/m) W c_B] (sequency order). *)

val walsh_to_bpf : Vec.t -> Vec.t
(** Inverse change of basis: [c_B = Wᵀ c_W]. *)

val integral_matrix : Grid.t -> Mat.t
(** [H_W = W H_B W^{−1}] on a uniform power-of-two grid. *)

val differential_matrix : Grid.t -> Mat.t

val fractional_differential_matrix : Grid.t -> float -> Mat.t

val truncate_spectrum : keep:int -> Vec.t -> Vec.t
(** Zero all Walsh coefficients above sequency index [keep − 1]: the
    low-pass "overall trend" filter the paper motivates Walsh with. *)
