open Opm_numkit

(** Laguerre-function basis (the last of the paper's §I alternative
    bases).

    The Laguerre functions [φ_i(t) = √(2p) · L_i(2pt) · e^{−pt}] are
    orthonormal on the *semi-infinite* axis [[0, ∞)] — the natural basis
    for decaying transients without a fixed simulation horizon. [p > 0]
    is the time-scale parameter; responses whose time constants are
    near [1/(2p)] need the fewest coefficients.

    The integration operational matrix is computed exactly from the
    Laguerre polynomial algebra (antiderivatives of [poly·e^{−t/2}] stay
    in that form; the leftover constant re-expands with the known
    moments [∫₀^∞ L_j e^{−t/2} dt = 2(−1)^j]).

    This module provides Laguerre functions as an *analysis* basis
    (projection, reconstruction, exact differentiation). Building an
    OPM-style solver on it is deliberately out of scope: the
    differential matrix is lower triangular, so the column solve runs
    backwards and amplifies the homogeneous modes catastrophically (we
    measured [10^20] blow-up at [m = 32]), and the integral form needs
    the expansion of the constant, which is not square-integrable on
    [[0, ∞)]. Stabilising either needs extra machinery (e.g. tau
    methods) beyond the paper's scope. *)

val polynomial : int -> Poly.t
(** The Laguerre polynomial [L_i] from the three-term recurrence. *)

val eval : scale:float -> int -> float -> float
(** [eval ~scale i t] is the orthonormal basis function [φ_i(t)]. *)

val project : ?t_max:float -> scale:float -> m:int -> (float -> float) -> Vec.t
(** Projection coefficients [c_i = ∫₀^∞ f φ_i] (the basis is
    orthonormal) by composite Simpson truncated at [t_max] (default
    [40/(2p)], where the weight has decayed to [e^{−20}]). *)

val reconstruct : scale:float -> m:int -> Vec.t -> float -> float

val differential_matrix : scale:float -> m:int -> Mat.t
(** [D] with [dφ_i/dt = Σ_j D_{ij} φ_j] — *exact* and lower triangular:
    [D_{ii} = −p], [D_{ij} = −2p] for [j < i] (from
    [L_i' = −Σ_{k<i} L_k]). The Laguerre mirror image of the BPF
    situation: here differentiation is the structured operator and
    integration the approximate one. *)

val integral_matrix : scale:float -> m:int -> Mat.t
(** [P] with [∫₀ᵗ φ_i ≈ Σ_j P_{ij} φ_j]: the [L²]-optimal projection of
    the integral. Exact whenever the integral decays (zero constant
    tail, e.g. [∫(φ_0 + φ_1)]); when the integral tends to a nonzero
    constant the row converges only in the [L²] (weak) sense, because
    constants are not square-integrable on [[0, ∞)]. *)
