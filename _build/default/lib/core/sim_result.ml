open Opm_numkit
open Opm_basis
open Opm_signal

type t = {
  grid : Grid.t;
  x : Mat.t;
  states : Waveform.t;
  outputs : Waveform.t;
}

let make ~grid ~x ~c ~state_names ~output_names =
  let times = Grid.midpoints grid in
  let n, _m = Mat.dims x in
  let states =
    Waveform.make ~labels:state_names times (Array.init n (fun i -> Mat.row x i))
  in
  let y = Mat.mul c x in
  let q, _ = Mat.dims y in
  let outputs =
    Waveform.make ~labels:output_names times (Array.init q (fun i -> Mat.row y i))
  in
  { grid; x; states; outputs }

let output r i = Waveform.channel r.outputs i

let state r i = Waveform.channel r.states i
