lib/core/engine.mli: Csr Mat Opm_numkit Opm_sparse Vec
