lib/core/engine.ml: Array Csr List Lu Mat Opm_numkit Opm_sparse Slu Vec
