lib/core/descriptor.mli: Csr Mat Opm_numkit Opm_sparse
