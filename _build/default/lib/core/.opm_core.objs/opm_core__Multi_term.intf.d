lib/core/multi_term.mli: Csr Descriptor Mat Opm_numkit Opm_sparse
