lib/core/opm.ml: Array Block_pulse Csr Descriptor Engine Fun Grid List Mat Multi_term Opm_basis Opm_numkit Opm_sparse Option Printf Sim_result Vec
