lib/core/legendre_solver.ml: Array Descriptor Engine Legendre Mat Opm_basis Opm_numkit Opm_signal Option Source Vec Waveform
