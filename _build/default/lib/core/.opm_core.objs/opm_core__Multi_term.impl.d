lib/core/multi_term.ml: Array Coo Csr Descriptor Float List Mat Opm_numkit Opm_sparse Option Printf
