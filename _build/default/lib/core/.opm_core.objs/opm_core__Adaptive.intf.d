lib/core/adaptive.mli: Descriptor Opm_signal Sim_result Source
