lib/core/sim_result.ml: Array Grid Mat Opm_basis Opm_numkit Opm_signal Waveform
