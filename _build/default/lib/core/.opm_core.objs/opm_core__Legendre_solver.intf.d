lib/core/legendre_solver.mli: Descriptor Mat Opm_numkit Opm_signal Source Vec Waveform
