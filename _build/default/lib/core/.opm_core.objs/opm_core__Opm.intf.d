lib/core/opm.mli: Descriptor Grid Multi_term Opm_basis Opm_numkit Opm_signal Sim_result Source
