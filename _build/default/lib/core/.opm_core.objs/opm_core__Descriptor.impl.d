lib/core/descriptor.ml: Array Csr Float Mat Opm_numkit Opm_sparse Printf Random
