lib/core/adaptive.ml: Array Descriptor Float Grid List Logs Lu Mat Opm_basis Opm_numkit Opm_signal Option Sim_result Source Vec
