lib/core/sim_result.mli: Grid Mat Opm_basis Opm_numkit Opm_signal Vec Waveform
