open Opm_numkit
open Opm_sparse

(** Multi-term (fractional) differential systems

    [Σ_k E_k · d^{α_k} x / dt^{α_k} = A x + B · d^r u / dt^r],  [y = C x].

    This generalises every system class in the paper:
    - ODE/DAE (§III): one term, [α = 1];
    - fractional (§IV, eq. 19): one term, fractional [α];
    - high-order (§IV, "special cases of FDEs"): terms with integer
      orders, e.g. the second-order NA power-grid model of Table II
      ([M₂ ẍ + M₁ ẋ = A x + B u̇] with [r = 1], since nodal analysis
      drives the grid with the *derivative* of the load currents). *)

type term = { coeff : Csr.t; alpha : float }

type t = {
  terms : term list;  (** left-hand differential terms, [alpha > 0] *)
  a : Csr.t;  (** right-hand state coupling *)
  b : Mat.t;
  c : Mat.t;
  input_order : int;  (** [r]: the input enters as [d^r u/dt^r] *)
  state_names : string array;
  output_names : string array;
}

val make :
  ?input_order:int ->
  ?state_names:string array ->
  ?output_names:string array ->
  terms:(Csr.t * float) list ->
  a:Csr.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  t
(** Validates dimensions, [input_order >= 0] (default [0]) and that each
    [alpha > 0]. *)

val of_linear : Descriptor.t -> t
(** [E ẋ = A x + B u] as a one-term system. *)

val of_fractional : alpha:float -> Descriptor.t -> t
(** [E d^α x = A x + B u]. *)

val second_order :
  ?input_order:int ->
  ?state_names:string array ->
  ?output_names:string array ->
  m2:Csr.t ->
  m1:Csr.t ->
  m0:Csr.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  t
(** [M₂ ẍ + M₁ ẋ + M₀ x = B d^r u/dt^r] — note [M₀] moves to the right
    as [A = −M₀]. *)

val order : t -> int

val input_count : t -> int

val output_count : t -> int

val max_alpha : t -> float

val to_first_order : t -> Descriptor.t
(** Companion (first-order) realisation of an *integer-order* system
    with orders ⊆ {1, 2} and [input_order = 0]:

    [E₂ ẍ + E₁ ẋ = A x + B u]  becomes, with [v = ẋ],

    [[I 0; 0 E₂] d/dt [x; v] = [0 I; A −E₁] [x; v] + [0; B] u].

    This is how classical transient schemes consume a high-order model
    (at the price of doubling the unknown count — exactly the
    NA-vs-MNA trade-off of the paper's Table II); OPM instead simulates
    the high-order form directly. A pure order-1 system converts
    without augmentation. Raises [Invalid_argument] for fractional or
    higher orders, or a differentiated input. *)
