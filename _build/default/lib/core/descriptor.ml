open Opm_numkit
open Opm_sparse

type t = {
  e : Csr.t;
  a : Csr.t;
  b : Mat.t;
  c : Mat.t;
  state_names : string array;
  output_names : string array;
}

let make ?state_names ?output_names ~e ~a ~b ~c () =
  let n, n' = Csr.dims e in
  if n <> n' then invalid_arg "Descriptor.make: E not square";
  let na, na' = Csr.dims a in
  if na <> n || na' <> n then invalid_arg "Descriptor.make: A dims mismatch E";
  let nb, _p = Mat.dims b in
  if nb <> n then invalid_arg "Descriptor.make: B row count mismatch";
  let q, nc = Mat.dims c in
  if nc <> n then invalid_arg "Descriptor.make: C column count mismatch";
  let state_names =
    match state_names with
    | Some s ->
        if Array.length s <> n then invalid_arg "Descriptor.make: state name count";
        s
    | None -> Array.init n (Printf.sprintf "x%d")
  in
  let output_names =
    match output_names with
    | Some s ->
        if Array.length s <> q then
          invalid_arg "Descriptor.make: output name count";
        s
    | None -> Array.init q (Printf.sprintf "y%d")
  in
  { e; a; b; c; state_names; output_names }

let of_dense ?state_names ?output_names ~e ~a ~b ~c () =
  make ?state_names ?output_names ~e:(Csr.of_dense e) ~a:(Csr.of_dense a) ~b ~c ()

let order sys = fst (Csr.dims sys.e)

let input_count sys = snd (Mat.dims sys.b)

let output_count sys = fst (Mat.dims sys.c)

let e_dense sys = Csr.to_dense sys.e

let a_dense sys = Csr.to_dense sys.a

let observe_states sys =
  let n = order sys in
  { sys with c = Mat.eye n; output_names = Array.copy sys.state_names }

let scalar ~e ~a ~b =
  of_dense
    ~e:(Mat.of_arrays [| [| e |] |])
    ~a:(Mat.of_arrays [| [| a |] |])
    ~b:(Mat.of_arrays [| [| b |] |])
    ~c:(Mat.eye 1) ()

let random_stable ?(seed = 42) ~n ~p ~q () =
  let st = Random.State.make [| seed |] in
  let a =
    Mat.init n n (fun i j ->
        if i = j then 0.0 else Random.State.float st 2.0 -. 1.0)
  in
  (* make each diagonal dominate its row so the spectrum is in the left
     half plane *)
  for i = 0 to n - 1 do
    let row_sum = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then row_sum := !row_sum +. Float.abs (Mat.get a i j)
    done;
    Mat.set a i i (-. !row_sum -. 1.0 -. Random.State.float st 1.0)
  done;
  let b = Mat.init n p (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let c = Mat.init q n (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  of_dense ~e:(Mat.eye n) ~a ~b ~c ()
