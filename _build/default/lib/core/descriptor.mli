open Opm_numkit
open Opm_sparse

(** Descriptor state-space systems
    [E · d^α x/dt^α = A x + B u], [y = C x] — the system class of the
    paper (eq. 9 with [α = 1], eq. 19 for fractional [α]).

    [E] may be singular (a DAE, e.g. from MNA with voltage sources).
    [E] and [A] are kept sparse because circuit matrices have [O(n)]
    nonzeros — that is what gives OPM its [O(n^β m)] complexity; [B]
    and [C] are dense but narrow ([p] inputs, [q] outputs). *)

type t = {
  e : Csr.t;  (** [n×n] *)
  a : Csr.t;  (** [n×n] *)
  b : Mat.t;  (** [n×p] *)
  c : Mat.t;  (** [q×n] *)
  state_names : string array;  (** length [n] *)
  output_names : string array;  (** length [q] *)
}

val make :
  ?state_names:string array ->
  ?output_names:string array ->
  e:Csr.t ->
  a:Csr.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  t
(** Validates all dimensions. Default names are ["x%d"] / ["y%d"]. *)

val of_dense :
  ?state_names:string array ->
  ?output_names:string array ->
  e:Mat.t ->
  a:Mat.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  t

val order : t -> int
(** State dimension [n]. *)

val input_count : t -> int

val output_count : t -> int

val e_dense : t -> Mat.t

val a_dense : t -> Mat.t

val observe_states : t -> t
(** Replace [C] by the identity: observe every state variable. *)

val scalar : e:float -> a:float -> b:float -> t
(** 1-state system [e·d^α x = a·x + b·u], [y = x] — handy in tests. *)

val random_stable : ?seed:int -> n:int -> p:int -> q:int -> unit -> t
(** Random dense system with [E = I] and [A] strictly diagonally
    dominant negative — a stable ODE for ablation benchmarks. *)
