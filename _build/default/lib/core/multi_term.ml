open Opm_numkit
open Opm_sparse

type term = { coeff : Csr.t; alpha : float }

type t = {
  terms : term list;
  a : Csr.t;
  b : Mat.t;
  c : Mat.t;
  input_order : int;
  state_names : string array;
  output_names : string array;
}

let make ?(input_order = 0) ?state_names ?output_names ~terms ~a ~b ~c () =
  if terms = [] then invalid_arg "Multi_term.make: no differential terms";
  if input_order < 0 then invalid_arg "Multi_term.make: input_order < 0";
  let n, n' = Csr.dims a in
  if n <> n' then invalid_arg "Multi_term.make: A not square";
  List.iter
    (fun (coeff, alpha) ->
      if alpha <= 0.0 then invalid_arg "Multi_term.make: term alpha <= 0";
      if Csr.dims coeff <> (n, n) then
        invalid_arg "Multi_term.make: term dimension mismatch")
    terms;
  let nb, _ = Mat.dims b in
  if nb <> n then invalid_arg "Multi_term.make: B row count mismatch";
  let q, nc = Mat.dims c in
  if nc <> n then invalid_arg "Multi_term.make: C column count mismatch";
  let state_names =
    match state_names with
    | Some s ->
        if Array.length s <> n then invalid_arg "Multi_term.make: state names";
        s
    | None -> Array.init n (Printf.sprintf "x%d")
  in
  let output_names =
    match output_names with
    | Some s ->
        if Array.length s <> q then invalid_arg "Multi_term.make: output names";
        s
    | None -> Array.init q (Printf.sprintf "y%d")
  in
  {
    terms = List.map (fun (coeff, alpha) -> { coeff; alpha }) terms;
    a;
    b;
    c;
    input_order;
    state_names;
    output_names;
  }

let of_fractional ~alpha (d : Descriptor.t) =
  make
    ~state_names:d.Descriptor.state_names
    ~output_names:d.Descriptor.output_names
    ~terms:[ (d.Descriptor.e, alpha) ]
    ~a:d.Descriptor.a ~b:d.Descriptor.b ~c:d.Descriptor.c ()

let of_linear d = of_fractional ~alpha:1.0 d

let second_order ?input_order ?state_names ?output_names ~m2 ~m1 ~m0 ~b ~c () =
  make ?input_order ?state_names ?output_names
    ~terms:[ (m2, 2.0); (m1, 1.0) ]
    ~a:(Csr.scale (-1.0) m0)
    ~b ~c ()

let order sys = fst (Csr.dims sys.a)

let input_count sys = snd (Mat.dims sys.b)

let output_count sys = fst (Mat.dims sys.c)

let max_alpha sys =
  List.fold_left (fun acc t -> Float.max acc t.alpha) 0.0 sys.terms

let to_first_order sys =
  if sys.input_order <> 0 then
    invalid_arg "Multi_term.to_first_order: differentiated input";
  let n = order sys in
  let find_order target =
    List.filter (fun t -> t.alpha = target) sys.terms
    |> List.fold_left
         (fun acc t ->
           match acc with
           | None -> Some t.coeff
           | Some prev -> Some (Csr.add prev t.coeff))
         None
  in
  List.iter
    (fun t ->
      if t.alpha <> 1.0 && t.alpha <> 2.0 then
        invalid_arg
          (Printf.sprintf
             "Multi_term.to_first_order: order %g is not in {1, 2}" t.alpha))
    sys.terms;
  let e1 = find_order 1.0 in
  match find_order 2.0 with
  | None ->
      (* already first order *)
      let e =
        match e1 with Some m -> m | None -> Csr.zero ~rows:n ~cols:n
      in
      Descriptor.make ~state_names:sys.state_names
        ~output_names:sys.output_names ~e ~a:sys.a ~b:sys.b ~c:sys.c ()
  | Some e2 ->
      let e1 = Option.value e1 ~default:(Csr.zero ~rows:n ~cols:n) in
      let coo_e = Coo.create ~rows:(2 * n) ~cols:(2 * n) in
      for i = 0 to n - 1 do
        Coo.add coo_e i i 1.0
      done;
      Csr.iter (fun i j v -> Coo.add coo_e (n + i) (n + j) v) e2;
      let coo_a = Coo.create ~rows:(2 * n) ~cols:(2 * n) in
      for i = 0 to n - 1 do
        Coo.add coo_a i (n + i) 1.0
      done;
      Csr.iter (fun i j v -> Coo.add coo_a (n + i) j v) sys.a;
      Csr.iter (fun i j v -> Coo.add coo_a (n + i) (n + j) (-.v)) e1;
      let p = input_count sys in
      let b = Mat.zeros (2 * n) p in
      for i = 0 to n - 1 do
        for j = 0 to p - 1 do
          Mat.set b (n + i) j (Mat.get sys.b i j)
        done
      done;
      let q = output_count sys in
      let c = Mat.zeros q (2 * n) in
      for i = 0 to q - 1 do
        for j = 0 to n - 1 do
          Mat.set c i j (Mat.get sys.c i j)
        done
      done;
      let state_names =
        Array.append sys.state_names
          (Array.map (Printf.sprintf "d/dt %s") sys.state_names)
      in
      Descriptor.make ~state_names ~output_names:sys.output_names
        ~e:(Coo.to_csr coo_e) ~a:(Coo.to_csr coo_a) ~b ~c ()
