open Opm_numkit
open Opm_basis
open Opm_signal

(** Result of an OPM simulation: the raw BPF coefficient matrix plus
    waveform views of states and outputs sampled at the grid
    midpoints (the natural evaluation points of a BPF expansion). *)

type t = {
  grid : Grid.t;
  x : Mat.t;  (** [n×m] BPF coefficients of the state *)
  states : Waveform.t;
  outputs : Waveform.t;
}

val make :
  grid:Grid.t ->
  x:Mat.t ->
  c:Mat.t ->
  state_names:string array ->
  output_names:string array ->
  t

val output : t -> int -> Vec.t
(** Row [i] of the output waveform. *)

val state : t -> int -> Vec.t
