open Opm_numkit

(** Sparse LU factorisation (Gilbert–Peierls left-looking algorithm with
    partial pivoting).

    This is the [O(n^β)] "matrix-vector solving" primitive of the paper's
    complexity analysis (§IV): circuit matrices [E, A] have [O(n)]
    nonzeros, and OPM factors [d_ii·E − A] once per distinct diagonal
    entry of the operational matrix, then back-solves per column.

    Each column of the factors is computed by a sparse triangular solve
    whose nonzero pattern is found by depth-first search on the graph of
    the already-computed [L] (the classic GP reach), so the work is
    proportional to arithmetic operations, not to [n].

    Fill is controlled two ways: a symmetric {!Rcm} reordering applied
    before the factorisation (default), and *threshold* pivoting — the
    diagonal candidate is kept whenever its magnitude is within
    [pivot_tol] of the column maximum, so the fill-reducing order
    survives; otherwise the column maximum is chosen (stability first). *)

type t

exception Singular of int
(** Numerically zero pivot column. *)

val factor : ?ordering:[ `Rcm | `Natural ] -> ?pivot_tol:float -> Csr.t -> t
(** Default [ordering = `Rcm], [pivot_tol = 0.1]. [pivot_tol = 1.0]
    recovers strict partial pivoting. Raises [Invalid_argument] on
    non-square input, {!Singular} when no acceptable pivot exists. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] reusing the factorisation. *)

val solve_dense : Csr.t -> Vec.t -> Vec.t
(** One-shot convenience. *)

val nnz_factors : t -> int
(** Fill-in diagnostic: nonzeros of [L] + [U]. *)
