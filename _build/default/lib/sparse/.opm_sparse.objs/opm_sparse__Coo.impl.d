lib/sparse/coo.ml: Array Csr Fun List Mat Opm_numkit Printf
