lib/sparse/slu.ml: Array Csr Float List Rcm Stack
