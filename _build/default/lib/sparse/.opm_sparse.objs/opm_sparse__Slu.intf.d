lib/sparse/slu.mli: Csr Opm_numkit Vec
