lib/sparse/coo.mli: Csr Mat Opm_numkit
