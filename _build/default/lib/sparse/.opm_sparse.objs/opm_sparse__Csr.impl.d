lib/sparse/csr.ml: Array Float Fun List Mat Opm_numkit
