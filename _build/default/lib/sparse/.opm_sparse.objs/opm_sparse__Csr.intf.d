lib/sparse/csr.mli: Mat Opm_numkit Vec
