lib/sparse/rcm.ml: Array Coo Csr List
