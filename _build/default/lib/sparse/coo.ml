open Opm_numkit

type t = {
  rows : int;
  cols : int;
  mutable ri : int array;
  mutable ci : int array;
  mutable vs : float array;
  mutable len : int;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { rows; cols; ri = Array.make 16 0; ci = Array.make 16 0; vs = Array.make 16 0.0; len = 0 }

let grow t =
  let cap = Array.length t.ri in
  let ncap = max 16 (2 * cap) in
  let copy_into a zero =
    let b = Array.make ncap zero in
    Array.blit a 0 b 0 t.len;
    b
  in
  t.ri <- copy_into t.ri 0;
  t.ci <- copy_into t.ci 0;
  t.vs <- copy_into t.vs 0.0

let add t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Coo.add: (%d, %d) out of bounds for %dx%d" i j t.rows t.cols);
  if t.len = Array.length t.ri then grow t;
  t.ri.(t.len) <- i;
  t.ci.(t.len) <- j;
  t.vs.(t.len) <- v;
  t.len <- t.len + 1

let rows t = t.rows

let cols t = t.cols

let entry_count t = t.len

let to_csr t =
  (* sort triplets by (row, col), then merge duplicates *)
  let idx = Array.init t.len Fun.id in
  Array.sort
    (fun a b ->
      let c = compare t.ri.(a) t.ri.(b) in
      if c <> 0 then c else compare t.ci.(a) t.ci.(b))
    idx;
  let row_ptr = Array.make (t.rows + 1) 0 in
  let col_acc = ref [] and val_acc = ref [] and total = ref 0 in
  let k = ref 0 in
  for i = 0 to t.rows - 1 do
    let row_cols = ref [] and row_vals = ref [] in
    while !k < t.len && t.ri.(idx.(!k)) = i do
      let j = t.ci.(idx.(!k)) in
      let v = ref 0.0 in
      while !k < t.len && t.ri.(idx.(!k)) = i && t.ci.(idx.(!k)) = j do
        v := !v +. t.vs.(idx.(!k));
        incr k
      done;
      if !v <> 0.0 then begin
        row_cols := j :: !row_cols;
        row_vals := !v :: !row_vals;
        incr total
      end
    done;
    col_acc := List.rev !row_cols :: !col_acc;
    val_acc := List.rev !row_vals :: !val_acc;
    row_ptr.(i + 1) <- !total
  done;
  let col_ind = Array.make !total 0 and values = Array.make !total 0.0 in
  let pos = ref 0 in
  List.iter2
    (fun cs vs ->
      List.iter2
        (fun c v ->
          col_ind.(!pos) <- c;
          values.(!pos) <- v;
          incr pos)
        cs vs)
    (List.rev !col_acc) (List.rev !val_acc);
  { Csr.rows = t.rows; cols = t.cols; row_ptr; col_ind; values }

let of_dense d =
  let r, c = Mat.dims d in
  let t = create ~rows:r ~cols:c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      let v = Mat.get d i j in
      if v <> 0.0 then add t i j v
    done
  done;
  t
