let symmetrized_adjacency a =
  let n, m = Csr.dims a in
  if n <> m then invalid_arg "Rcm.ordering: non-square matrix";
  let at = Csr.transpose a in
  let pat = Csr.add a at in
  (* adjacency lists excluding the diagonal *)
  Array.init n (fun i ->
      let row = ref [] in
      for k = pat.Csr.row_ptr.(i) to pat.Csr.row_ptr.(i + 1) - 1 do
        let j = pat.Csr.col_ind.(k) in
        if j <> i then row := j :: !row
      done;
      Array.of_list (List.rev !row))

let ordering a =
  let adj = symmetrized_adjacency a in
  let n = Array.length adj in
  let degree = Array.map Array.length adj in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let push v =
    visited.(v) <- true;
    order.(!pos) <- v;
    incr pos
  in
  (* BFS queue as growing indices into [order] *)
  let rec component () =
    if !pos < n then begin
      (* start a new component from an unvisited min-degree vertex *)
      let start = ref (-1) in
      for v = n - 1 downto 0 do
        if (not visited.(v)) && (!start < 0 || degree.(v) < degree.(!start))
        then start := v
      done;
      let head = ref !pos in
      push !start;
      while !head < !pos do
        let v = order.(!head) in
        incr head;
        let neighbours =
          Array.to_list adj.(v)
          |> List.filter (fun u -> not visited.(u))
          |> List.sort_uniq (fun a b ->
                 let c = compare degree.(a) degree.(b) in
                 if c <> 0 then c else compare a b)
        in
        List.iter push neighbours
      done;
      component ()
    end
  in
  component ();
  (* reverse for RCM *)
  Array.init n (fun i -> order.(n - 1 - i))

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let permute_symmetric a p =
  let n, m = Csr.dims a in
  if n <> m then invalid_arg "Rcm.permute_symmetric: non-square matrix";
  if Array.length p <> n then invalid_arg "Rcm.permute_symmetric: bad permutation";
  let pinv = inverse p in
  let coo = Coo.create ~rows:n ~cols:n in
  Csr.iter (fun i j v -> Coo.add coo pinv.(i) pinv.(j) v) a;
  Coo.to_csr coo

let bandwidth a =
  let bw = ref 0 in
  Csr.iter (fun i j _ -> bw := max !bw (abs (i - j))) a;
  !bw
