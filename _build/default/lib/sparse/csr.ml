open Opm_numkit

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_ind : int array;
  values : float array;
}

let nnz a = Array.length a.values

let dims a = (a.rows, a.cols)

let zero ~rows ~cols =
  { rows; cols; row_ptr = Array.make (rows + 1) 0; col_ind = [||]; values = [||] }

let eye n =
  {
    rows = n;
    cols = n;
    row_ptr = Array.init (n + 1) Fun.id;
    col_ind = Array.init n Fun.id;
    values = Array.make n 1.0;
  }

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Csr.get: out of bounds";
  let lo = ref a.row_ptr.(i) and hi = ref (a.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.col_ind.(mid) in
    if c = j then begin
      result := a.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec a x =
  if Array.length x <> a.cols then invalid_arg "Csr.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        s := !s +. (a.values.(k) *. x.(a.col_ind.(k)))
      done;
      !s)

let tmul_vec a x =
  if Array.length x <> a.rows then invalid_arg "Csr.tmul_vec: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        y.(a.col_ind.(k)) <- y.(a.col_ind.(k)) +. (a.values.(k) *. xi)
      done
  done;
  y

let transpose a =
  let n = nnz a in
  let row_ptr = Array.make (a.cols + 1) 0 in
  for k = 0 to n - 1 do
    row_ptr.(a.col_ind.(k) + 1) <- row_ptr.(a.col_ind.(k) + 1) + 1
  done;
  for j = 1 to a.cols do
    row_ptr.(j) <- row_ptr.(j) + row_ptr.(j - 1)
  done;
  let col_ind = Array.make n 0 and values = Array.make n 0.0 in
  let cursor = Array.copy row_ptr in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.col_ind.(k) in
      col_ind.(cursor.(j)) <- i;
      values.(cursor.(j)) <- a.values.(k);
      cursor.(j) <- cursor.(j) + 1
    done
  done;
  { rows = a.cols; cols = a.rows; row_ptr; col_ind; values }

let scale s a = { a with values = Array.map (fun v -> s *. v) a.values }

let map f a = { a with values = Array.map f a.values }

let add ?(alpha = 1.0) ?(beta = 1.0) a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Csr.add: dimension mismatch";
  let row_ptr = Array.make (a.rows + 1) 0 in
  let col_acc = ref [] and val_acc = ref [] and total = ref 0 in
  for i = 0 to a.rows - 1 do
    (* merge the two sorted rows *)
    let ka = ref a.row_ptr.(i) and kb = ref b.row_ptr.(i) in
    let ea = a.row_ptr.(i + 1) and eb = b.row_ptr.(i + 1) in
    let row_cols = ref [] and row_vals = ref [] and count = ref 0 in
    let push c v =
      row_cols := c :: !row_cols;
      row_vals := v :: !row_vals;
      incr count
    in
    while !ka < ea || !kb < eb do
      if !ka < ea && (!kb >= eb || a.col_ind.(!ka) < b.col_ind.(!kb)) then begin
        push a.col_ind.(!ka) (alpha *. a.values.(!ka));
        incr ka
      end
      else if !kb < eb && (!ka >= ea || b.col_ind.(!kb) < a.col_ind.(!ka)) then begin
        push b.col_ind.(!kb) (beta *. b.values.(!kb));
        incr kb
      end
      else begin
        push a.col_ind.(!ka) ((alpha *. a.values.(!ka)) +. (beta *. b.values.(!kb)));
        incr ka;
        incr kb
      end
    done;
    col_acc := List.rev !row_cols :: !col_acc;
    val_acc := List.rev !row_vals :: !val_acc;
    total := !total + !count;
    row_ptr.(i + 1) <- !total
  done;
  let col_ind = Array.make !total 0 and values = Array.make !total 0.0 in
  let k = ref 0 in
  List.iter2
    (fun cs vs ->
      List.iter2
        (fun c v ->
          col_ind.(!k) <- c;
          values.(!k) <- v;
          incr k)
        cs vs)
    (List.rev !col_acc) (List.rev !val_acc);
  { rows = a.rows; cols = a.cols; row_ptr; col_ind; values }

let to_dense a =
  let d = Mat.zeros a.rows a.cols in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Mat.set d i a.col_ind.(k) a.values.(k)
    done
  done;
  d

let of_dense ?(tol = 0.0) d =
  let rows, cols = Mat.dims d in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_acc = ref [] and val_acc = ref [] and total = ref 0 in
  for i = 0 to rows - 1 do
    let row_cols = ref [] and row_vals = ref [] in
    for j = cols - 1 downto 0 do
      let v = Mat.get d i j in
      if Float.abs v > tol then begin
        row_cols := j :: !row_cols;
        row_vals := v :: !row_vals;
        incr total
      end
    done;
    col_acc := !row_cols :: !col_acc;
    val_acc := !row_vals :: !val_acc;
    row_ptr.(i + 1) <- !total
  done;
  let col_ind = Array.make !total 0 and values = Array.make !total 0.0 in
  let k = ref 0 in
  List.iter2
    (fun cs vs ->
      List.iter2
        (fun c v ->
          col_ind.(!k) <- c;
          values.(!k) <- v;
          incr k)
        cs vs)
    (List.rev !col_acc) (List.rev !val_acc);
  { rows; cols; row_ptr; col_ind; values }

let iter f a =
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      f i a.col_ind.(k) a.values.(k)
    done
  done

let max_abs_diff a b =
  let d = add ~alpha:1.0 ~beta:(-1.0) a b in
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 d.values
