open Opm_numkit

(** Compressed sparse row matrices (immutable). *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_ind : int array;  (** length [nnz], column indices, sorted per row *)
  values : float array;  (** length [nnz] *)
}

val nnz : t -> int

val dims : t -> int * int

val zero : rows:int -> cols:int -> t

val eye : int -> t

val get : t -> int -> int -> float
(** Binary search within the row; [0.] for structural zeros. *)

val mul_vec : t -> Vec.t -> Vec.t

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x = aᵀ x] without materialising the transpose. *)

val transpose : t -> t

val scale : float -> t -> t

val add : ?alpha:float -> ?beta:float -> t -> t -> t
(** [add ~alpha ~beta a b = alpha·a + beta·b] (defaults 1.0); symbolic
    union of the patterns. *)

val map : (float -> float) -> t -> t
(** Map over stored values (pattern unchanged). Zero results are kept. *)

val to_dense : t -> Mat.t

val of_dense : ?tol:float -> Mat.t -> t
(** Entries with [|v| <= tol] (default 0.) become structural zeros. *)

val iter : (int -> int -> float -> unit) -> t -> unit

val max_abs_diff : t -> t -> float
(** Over the union pattern (works for different patterns). *)
