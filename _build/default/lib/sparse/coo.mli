open Opm_numkit

(** Coordinate-format builder for sparse matrices.

    The MNA stamping code accumulates element stamps as (row, col, value)
    triplets; duplicates are summed on conversion — exactly SPICE's
    "stamping" semantics. *)

type t

val create : rows:int -> cols:int -> t

val add : t -> int -> int -> float -> unit
(** [add t i j v] accumulates [v] at [(i, j)]. Bounds-checked. *)

val rows : t -> int

val cols : t -> int

val entry_count : t -> int
(** Number of triplets added so far (before duplicate merging). *)

val to_csr : t -> Csr.t
(** Sort, merge duplicates (summing), drop explicit zeros. *)

val of_dense : Mat.t -> t
