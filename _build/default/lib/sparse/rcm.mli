(** Reverse Cuthill–McKee fill-reducing ordering.

    Circuit matrices factor with dramatically less fill when rows and
    columns are permuted to cluster the nonzeros near the diagonal;
    RCM does that by a degree-ordered breadth-first traversal of the
    symmetrised sparsity graph, reversed. MNA matrices in particular
    need it: the convention of appending branch-current rows after all
    node rows scatters the coupling far off the diagonal. *)

val ordering : Csr.t -> int array
(** [ordering a] is a permutation [p] (new position → old index) for
    the square matrix [a], computed on the pattern of [a + aᵀ].
    Disconnected components are each started from a minimum-degree
    vertex. Raises [Invalid_argument] on non-square input. *)

val permute_symmetric : Csr.t -> int array -> Csr.t
(** [permute_symmetric a p] is [a'] with [a'_{ij} = a_{p(i) p(j)}]. *)

val inverse : int array -> int array
(** Inverse permutation. *)

val bandwidth : Csr.t -> int
(** Maximum distance of a nonzero from the diagonal — the quantity RCM
    shrinks (diagnostic). *)
