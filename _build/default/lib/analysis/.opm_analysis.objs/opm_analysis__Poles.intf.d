lib/analysis/poles.mli: Complex Descriptor Opm_core
