lib/analysis/sweep.ml: Array Float Random
