lib/analysis/sweep.mli: Random
