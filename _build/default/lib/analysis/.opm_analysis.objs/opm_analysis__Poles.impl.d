lib/analysis/poles.ml: Array Complex Descriptor Eig Float List Lu Mat Opm_core Opm_numkit
