lib/analysis/ac.mli: Cmat Descriptor Opm_core Opm_numkit
