lib/analysis/dc.mli: Descriptor Mat Opm_core Opm_numkit Vec
