lib/analysis/dc.ml: Array Descriptor Mat Opm_core Opm_numkit Opm_sparse Slu Vec
