lib/analysis/ac.ml: Array Buffer Cmat Complex Csr Descriptor Float List Mat Opm_core Opm_numkit Opm_sparse Printf
