(** Parameter studies: deterministic sweeps and Monte-Carlo sampling
    over any [parameter → measurement] evaluation (typically: build a
    netlist with the parameter, stamp, simulate, measure).

    Everything is deterministic: Monte-Carlo uses an explicit seed, so
    corner reports are reproducible. *)

val run : ('a -> float) -> 'a array -> ('a * float) array
(** Evaluate at each parameter value, in order. *)

val argmin : ('a * float) array -> 'a * float
(** Raises [Invalid_argument] on an empty sweep. *)

val argmax : ('a * float) array -> 'a * float

type stats = {
  samples : int;
  mean : float;
  std : float;  (** sample standard deviation (n − 1 denominator) *)
  min : float;
  max : float;
  q05 : float;  (** 5th percentile (linear interpolation) *)
  median : float;
  q95 : float;
}

val statistics : float array -> stats
(** Raises [Invalid_argument] on an empty array. *)

val monte_carlo :
  ?seed:int ->
  samples:int ->
  sampler:(Random.State.t -> 'a) ->
  ('a -> float) ->
  stats
(** Draw [samples] parameters from [sampler] (seeded, default 42),
    evaluate, and summarise. *)

val uniform : lo:float -> hi:float -> Random.State.t -> float
(** Convenience samplers for {!monte_carlo}. *)

val gaussian : mean:float -> std:float -> Random.State.t -> float
(** Box–Muller. *)
