open Opm_numkit
open Opm_core

let of_descriptor ?(shift = 1.0) (sys : Descriptor.t) =
  let e = Descriptor.e_dense sys in
  let a = Descriptor.a_dense sys in
  (* mu = (A − σE)^{−1} E has eigenvalues 1/(λ − σ) over finite
     generalised eigenvalues λ of (A, E), 0 for infinite ones *)
  let pencil = Mat.sub a (Mat.scale shift e) in
  let lu = Lu.factor pencil in
  let m = Lu.solve_mat lu e in
  let mus = Eig.eigenvalues m in
  let mu_max =
    Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0.0 mus
  in
  let threshold = 1e-9 *. Float.max mu_max 1e-300 in
  mus
  |> Array.to_list
  |> List.filter_map (fun mu ->
         if Complex.norm mu <= threshold then None
         else
           Some
             (Complex.add (Complex.div Complex.one mu)
                { Complex.re = shift; im = 0.0 }))
  |> Array.of_list

let is_stable ?shift ?(margin = 0.0) sys =
  Array.for_all
    (fun z -> z.Complex.re <= -.margin)
    (of_descriptor ?shift sys)

let dominant ?shift sys =
  let poles = of_descriptor ?shift sys in
  if Array.length poles = 0 then raise Not_found;
  Array.fold_left
    (fun best z -> if z.Complex.re > best.Complex.re then z else best)
    poles.(0) poles

let fractional_stability_angle ~alpha z =
  Float.abs (Complex.arg z) > alpha *. Float.pi /. 2.0
