open Opm_numkit
open Opm_core

(** DC operating point.

    The steady state of [E d^α x = A x + B u] under constant input
    [u₀] has [d^α x = 0], hence [x_dc = −A^{−1} B u₀]. For circuit
    MNA systems this is the classical DC solve (capacitors open,
    inductors shorted, which is exactly what dropping the [E] term
    does). *)

val operating_point : Descriptor.t -> u0:Vec.t -> Vec.t
(** Raises [Invalid_argument] on input-size mismatch and
    {!Opm_sparse.Slu.Singular} if the system has no unique DC solution
    (e.g. a floating node or a pure integrator). *)

val outputs_at : Descriptor.t -> u0:Vec.t -> Vec.t
(** [C · operating_point]. *)

val dc_gain : Descriptor.t -> Mat.t
(** [−C A^{−1} B] — the zero-frequency transfer matrix, column per
    input. *)
