open Opm_core

(** Pole (natural-frequency) analysis of descriptor systems.

    For [E ẋ = A x + B u] with invertible [E] the poles are the
    eigenvalues of [E^{−1}A]. For a singular [E] (MNA with voltage
    sources, i.e. a DAE) the finite poles are recovered by shifting:
    [λ] is a finite generalised eigenvalue of [(A, E)] iff
    [μ = 1/(λ − σ)] is an eigenvalue of [(A − σE)^{−1} E] for any shift
    [σ] that is not itself a pole; infinite poles map to [μ = 0] and are
    discarded. *)

val of_descriptor : ?shift:float -> Descriptor.t -> Complex.t array
(** Finite poles (rad/s). [shift] is the spectral shift [σ] used for
    singular pencils (default 1.0; raise it above the system's fastest
    pole magnitude if a [Singular] escape occurs). Eigenvalues with
    [|μ|] below [1e-9·max|μ|] are treated as infinite and dropped. *)

val is_stable : ?shift:float -> ?margin:float -> Descriptor.t -> bool
(** All finite poles satisfy [Re λ <= −margin] (default [margin = 0]). *)

val dominant : ?shift:float -> Descriptor.t -> Complex.t
(** Finite pole with the largest real part (slowest / least stable).
    Raises [Not_found] if every pole is at infinity. *)

val fractional_stability_angle : alpha:float -> Complex.t -> bool
(** Matignon's criterion for the fractional system
    [d^α x = A x]: the mode [λ] is stable iff [|arg λ| > α·π/2].
    Apply to each pole of the [α]-order system. *)
