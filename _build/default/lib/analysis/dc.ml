open Opm_numkit
open Opm_sparse
open Opm_core

let operating_point (sys : Descriptor.t) ~u0 =
  let p = Descriptor.input_count sys in
  if Array.length u0 <> p then invalid_arg "Dc.operating_point: u0 size";
  let rhs = Vec.scale (-1.0) (Mat.mul_vec sys.Descriptor.b u0) in
  Slu.solve_dense sys.Descriptor.a rhs

let outputs_at sys ~u0 =
  Mat.mul_vec sys.Descriptor.c (operating_point sys ~u0)

let dc_gain (sys : Descriptor.t) =
  let p = Descriptor.input_count sys in
  let q = Descriptor.output_count sys in
  let f = Slu.factor sys.Descriptor.a in
  let g = Mat.zeros q p in
  for j = 0 to p - 1 do
    let bj = Array.init (Descriptor.order sys) (fun r -> Mat.get sys.Descriptor.b r j) in
    let xj = Vec.scale (-1.0) (Slu.solve f bj) in
    Mat.set_col g j (Mat.mul_vec sys.Descriptor.c xj)
  done;
  g
