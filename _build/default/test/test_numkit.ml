(* Unit and property tests for the numerical substrate. *)

open Opm_numkit

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)

(* ---------- Vec ---------- *)

let test_vec_basics () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  close "dot" 14.0 (Vec.dot v v);
  close "norm2" (sqrt 14.0) (Vec.norm2 v);
  close "norm_inf" 3.0 (Vec.norm_inf v);
  let w = Vec.scale 2.0 v in
  close "scale" 6.0 w.(2);
  close "dist2" (Vec.norm2 v) (Vec.dist2 w v)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; -1.0 ] in
  let y = Vec.of_list [ 10.0; 10.0 ] in
  Vec.axpy 3.0 x y;
  close "axpy 0" 13.0 y.(0);
  close "axpy 1" 7.0 y.(1)

let test_vec_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Vec.dim v);
  close "first" 0.0 v.(0);
  close "mid" 0.5 v.(2);
  close "last" 1.0 v.(4)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* ---------- Mat ---------- *)

let test_mat_mul_identity () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((3 * i) + j)) in
  check_bool "A·I = A" true (Mat.approx_equal (Mat.mul a (Mat.eye 4)) a);
  check_bool "I·A = A" true (Mat.approx_equal (Mat.mul (Mat.eye 4) a) a)

let test_mat_mul_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  close "c00" 19.0 (Mat.get c 0 0);
  close "c01" 22.0 (Mat.get c 0 1);
  close "c10" 43.0 (Mat.get c 1 0);
  close "c11" 50.0 (Mat.get c 1 1)

let test_mat_transpose () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  close "entry" (Mat.get a 1 2) (Mat.get t 2 1)

let test_mat_kron_dims () =
  let a = Mat.init 2 3 (fun i j -> float_of_int (i + j)) in
  let b = Mat.init 4 5 (fun i j -> float_of_int (i * j)) in
  Alcotest.(check (pair int int)) "kron dims" (8, 15) (Mat.dims (Mat.kron a b))

let test_mat_kron_mixed_product () =
  (* (A⊗B)(C⊗D) = (AC)⊗(BD) *)
  let mk seed n = Mat.init n n (fun i j -> sin (float_of_int ((seed * i) + j))) in
  let a = mk 3 2 and b = mk 5 3 and c = mk 7 2 and d = mk 11 3 in
  let lhs = Mat.mul (Mat.kron a b) (Mat.kron c d) in
  let rhs = Mat.kron (Mat.mul a c) (Mat.mul b d) in
  check_bool "mixed product" true (Mat.approx_equal ~tol:1e-12 lhs rhs)

let test_mat_pow () =
  let q = Mat.shift_nilpotent 4 in
  check_bool "Q^4 = 0" true (Mat.approx_equal (Mat.pow q 4) (Mat.zeros 4 4));
  check_bool "Q^0 = I" true (Mat.approx_equal (Mat.pow q 0) (Mat.eye 4));
  close "Q^2 entry" 1.0 (Mat.get (Mat.pow q 2) 0 2);
  close "Q^2 other" 0.0 (Mat.get (Mat.pow q 2) 0 1)

let test_mat_tmul_vec () =
  let a = Mat.init 3 4 (fun i j -> float_of_int ((i * 4) + j)) in
  let x = [| 1.0; -2.0; 3.0 |] in
  let expected = Mat.mul_vec (Mat.transpose a) x in
  check_bool "tmul = transpose mul" true
    (Vec.approx_equal expected (Mat.tmul_vec a x))

let test_mat_triangular_pred () =
  let u = Mat.init 3 3 (fun i j -> if j >= i then 1.0 else 0.0) in
  check_bool "upper" true (Mat.is_upper_triangular u);
  Mat.set u 2 0 0.5;
  check_bool "not upper" false (Mat.is_upper_triangular u)

(* ---------- Lu ---------- *)

let test_lu_solve_known () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve_dense a [| 5.0; 10.0 |] in
  close "x0" 1.0 x.(0);
  close "x1" 3.0 x.(1)

let test_lu_det () =
  let a = Mat.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  close "diag det" 6.0 (Lu.det (Lu.factor a));
  (* swap rows: determinant flips sign *)
  let b = Mat.of_arrays [| [| 0.0; 3.0 |]; [| 2.0; 0.0 |] |] in
  close "swap det" (-6.0) (Lu.det (Lu.factor b))

let test_lu_inverse () =
  let a =
    Mat.init 5 5 (fun i j ->
        if i = j then 3.0 else 1.0 /. float_of_int (1 + i + j))
  in
  let ai = Lu.inverse a in
  check_bool "A·A⁻¹ = I" true
    (Mat.approx_equal ~tol:1e-12 (Mat.mul a ai) (Mat.eye 5))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_bool "raises Singular" true
    (try
       ignore (Lu.factor a);
       false
     with Lu.Singular _ -> true)

let test_lu_needs_pivoting () =
  (* zero top-left pivot forces a row swap *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_dense a [| 2.0; 3.0 |] in
  close "x0" 3.0 x.(0);
  close "x1" 2.0 x.(1)

let prop_lu_residual =
  QCheck.Test.make ~count:50 ~name:"lu: random systems solve to tiny residual"
    QCheck.(pair (int_range 1 12) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let a =
        Mat.init n n (fun i j ->
            (if i = j then float_of_int n else 0.0)
            +. Random.State.float st 2.0 -. 1.0)
      in
      let b = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let x = Lu.solve_dense a b in
      let r = Vec.sub (Mat.mul_vec a x) b in
      Vec.norm2 r < 1e-8)

(* ---------- Tri ---------- *)

let upper_of seed n =
  let st = Random.State.make [| seed |] in
  Mat.init n n (fun i j ->
      if j < i then 0.0
      else if j = i then 1.0 +. Random.State.float st 3.0
      else Random.State.float st 2.0 -. 1.0)

let test_tri_solve_upper () =
  let u = upper_of 1 6 in
  let b = Array.init 6 (fun i -> float_of_int (i + 1)) in
  let x = Tri.solve_upper u b in
  check_bool "residual" true (Vec.approx_equal ~tol:1e-10 (Mat.mul_vec u x) b)

let test_tri_solve_lower () =
  let l = Mat.transpose (upper_of 2 6) in
  let b = Array.init 6 (fun i -> cos (float_of_int i)) in
  let x = Tri.solve_lower l b in
  check_bool "residual" true (Vec.approx_equal ~tol:1e-10 (Mat.mul_vec l x) b)

let test_tri_invert_upper () =
  let u = upper_of 3 8 in
  let inv = Tri.invert_upper u in
  check_bool "U·U⁻¹ = I" true
    (Mat.approx_equal ~tol:1e-10 (Mat.mul u inv) (Mat.eye 8));
  check_bool "inverse upper" true (Mat.is_upper_triangular ~tol:1e-14 inv)

let test_tri_singular_exn () =
  let u = Mat.zeros 3 3 in
  check_bool "raises" true
    (try
       ignore (Tri.solve_upper u [| 1.0; 1.0; 1.0 |]);
       false
     with Tri.Singular _ -> true)

let distinct_diag_upper seed n =
  let st = Random.State.make [| seed |] in
  Mat.init n n (fun i j ->
      if j < i then 0.0
      else if j = i then 1.0 +. float_of_int i +. Random.State.float st 0.5
      else Random.State.float st 2.0 -. 1.0)

let test_parlett_square () =
  let t = distinct_diag_upper 4 7 in
  let s = Tri.parlett sqrt t in
  check_bool "sqrt(T)² = T" true (Mat.approx_equal ~tol:1e-9 (Mat.mul s s) t)

let test_parlett_identity_function () =
  let t = distinct_diag_upper 5 6 in
  check_bool "f = id" true (Mat.approx_equal ~tol:1e-12 (Tri.parlett Fun.id t) t)

let test_parlett_exp_commutes () =
  (* f(T) commutes with T for any matrix function *)
  let t = distinct_diag_upper 6 6 in
  let f = Tri.parlett exp t in
  check_bool "T·f(T) = f(T)·T" true
    (Mat.approx_equal ~tol:1e-8 (Mat.mul t f) (Mat.mul f t))

let test_parlett_confluent () =
  let t = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 0.0; 2.0 |] |] in
  check_bool "raises Confluent_diagonal" true
    (try
       ignore (Tri.parlett sqrt t);
       false
     with Tri.Confluent_diagonal _ -> true)

let prop_parlett_power_addition =
  QCheck.Test.make ~count:30
    ~name:"parlett: T^a · T^b = T^{a+b} for triangular distinct-diag T"
    QCheck.(triple (int_range 2 8) (float_range 0.1 1.4) (float_range 0.1 1.4))
    (fun (n, a, b) ->
      let t = distinct_diag_upper (n + 17) n in
      let ta = Tri.fractional_power t a in
      let tb = Tri.fractional_power t b in
      let tab = Tri.fractional_power t (a +. b) in
      Mat.max_abs_diff (Mat.mul ta tb) tab < (1e-6 *. Mat.norm_inf tab) +. 1e-8)

(* ---------- Eig ---------- *)

let sort_complex e =
  let l = Array.to_list e in
  List.sort
    (fun a b ->
      let c = compare a.Complex.re b.Complex.re in
      if c <> 0 then c else compare a.Complex.im b.Complex.im)
    l

let test_eig_diagonal () =
  let e = sort_complex (Eig.eigenvalues (Mat.diag [| 3.0; -1.0; 7.0 |])) in
  match e with
  | [ a; b; c ] ->
      close "λ1" (-1.0) a.Complex.re;
      close "λ2" 3.0 b.Complex.re;
      close "λ3" 7.0 c.Complex.re;
      List.iter (fun z -> close "real" 0.0 z.Complex.im) e
  | _ -> Alcotest.fail "expected 3 eigenvalues"

let test_eig_rotation () =
  (* [[0,−1],[1,0]] has eigenvalues ±i *)
  let r = Mat.of_arrays [| [| 0.0; -1.0 |]; [| 1.0; 0.0 |] |] in
  match sort_complex (Eig.eigenvalues r) with
  | [ a; b ] ->
      close "−i" (-1.0) a.Complex.im ~tol:1e-12;
      close "+i" 1.0 b.Complex.im ~tol:1e-12;
      close "re 0" 0.0 a.Complex.re ~tol:1e-12
  | _ -> Alcotest.fail "expected 2 eigenvalues"

let test_eig_companion_roots () =
  (* companion of (x−1)(x−2)(x−3)(x+0.5) *)
  let coeffs = [| -3.0; -0.5; 8.0; -5.5 |] in
  let comp =
    Mat.init 4 4 (fun i j ->
        if j = 3 then -.coeffs.(i) else if i = j + 1 then 1.0 else 0.0)
  in
  match sort_complex (Eig.eigenvalues comp) with
  | [ a; b; c; d ] ->
      close "−0.5" (-0.5) a.Complex.re ~tol:1e-9;
      close "1" 1.0 b.Complex.re ~tol:1e-9;
      close "2" 2.0 c.Complex.re ~tol:1e-9;
      close "3" 3.0 d.Complex.re ~tol:1e-9
  | _ -> Alcotest.fail "expected 4 roots"

let test_eig_hessenberg_form () =
  let st = Random.State.make [| 12 |] in
  let a = Mat.init 8 8 (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
  let h = Eig.hessenberg a in
  let ok = ref true in
  for i = 2 to 7 do
    for j = 0 to i - 2 do
      if Mat.get h i j <> 0.0 then ok := false
    done
  done;
  check_bool "hessenberg pattern" true !ok;
  (* similarity preserves the trace *)
  let tr m =
    let s = ref 0.0 in
    for i = 0 to 7 do
      s := !s +. Mat.get m i i
    done;
    !s
  in
  close "trace preserved" (tr a) (tr h) ~tol:1e-10

let prop_eig_trace_det =
  QCheck.Test.make ~count:25
    ~name:"eig: Σλ = trace and Πλ = det on random matrices"
    QCheck.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let a =
        Mat.init n n (fun i j ->
            (if i = j then 3.0 else 0.0) +. Random.State.float st 2.0 -. 1.0)
      in
      let e = Eig.eigenvalues a in
      let tr = ref 0.0 in
      for i = 0 to n - 1 do
        tr := !tr +. Mat.get a i i
      done;
      let sum = Array.fold_left (fun acc z -> acc +. z.Complex.re) 0.0 e in
      let prod = Array.fold_left Complex.mul Complex.one e in
      let det = Lu.det (Lu.factor a) in
      Float.abs (sum -. !tr) < 1e-7 *. Float.max 1.0 (Float.abs !tr)
      && Float.abs (prod.Complex.re -. det) < 1e-6 *. Float.max 1.0 (Float.abs det)
      && Float.abs prod.Complex.im < 1e-6 *. Float.max 1.0 (Float.abs det))

let test_spectral_abscissa () =
  let a = Mat.of_arrays [| [| -2.0; 1.0 |]; [| 0.0; -5.0 |] |] in
  close "max Re" (-2.0) (Eig.spectral_abscissa a) ~tol:1e-10

(* ---------- Expm ---------- *)

let test_expm_rotation () =
  (* exp of a rotation generator is the rotation matrix *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| -1.0; 0.0 |] |] in
  let e = Expm.expm a in
  close "cos" (cos 1.0) (Mat.get e 0 0) ~tol:1e-13;
  close "sin" (sin 1.0) (Mat.get e 0 1) ~tol:1e-13

let test_expm_scaling_branch () =
  (* large norm exercises the squaring phase *)
  let e = Expm.expm (Mat.scale 30.0 (Mat.eye 2)) in
  close "e^30" (exp 30.0) (Mat.get e 0 0) ~tol:(1e-9 *. exp 30.0)

let test_expm_zero () =
  check_bool "e^0 = I" true
    (Mat.approx_equal ~tol:1e-14 (Expm.expm (Mat.zeros 3 3)) (Mat.eye 3))

let prop_expm_inverse =
  QCheck.Test.make ~count:25 ~name:"expm: e^A · e^{−A} = I"
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let a = Mat.init n n (fun _ _ -> Random.State.float st 4.0 -. 2.0) in
      let prod = Mat.mul (Expm.expm a) (Expm.expm (Mat.scale (-1.0) a)) in
      Mat.max_abs_diff prod (Mat.eye n) < 1e-9)

let prop_expm_trace_det =
  QCheck.Test.make ~count:25 ~name:"expm: det e^A = e^{tr A}"
    QCheck.(pair (int_range 1 7) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed + 5 |] in
      let a = Mat.init n n (fun _ _ -> Random.State.float st 2.0 -. 1.0) in
      let tr = ref 0.0 in
      for i = 0 to n - 1 do
        tr := !tr +. Mat.get a i i
      done;
      let det = Lu.det (Lu.factor (Expm.expm a)) in
      Float.abs (det -. exp !tr) < 1e-9 *. Float.max 1.0 (exp !tr))

let test_phi1_values () =
  close "phi1 scalar" ((exp 2.0 -. 1.0) /. 2.0)
    (Mat.get (Expm.phi1 (Mat.of_arrays [| [| 2.0 |] |])) 0 0)
    ~tol:1e-12;
  close "phi1 of 0" 1.0 (Mat.get (Expm.phi1 (Mat.zeros 1 1)) 0 0) ~tol:1e-13;
  (* identity A·φ₁(A) = e^A − I, including for singular A *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let lhs = Mat.mul a (Expm.phi1 a) in
  let rhs = Mat.sub (Expm.expm a) (Mat.eye 2) in
  check_bool "A·φ₁(A) = e^A − I (nilpotent A)" true
    (Mat.approx_equal ~tol:1e-13 lhs rhs)

(* ---------- Cmat ---------- *)

let ccomplex re im = { Complex.re; im }

let test_cmat_solve () =
  let a =
    Cmat.init 3 3 (fun i j ->
        if i = j then ccomplex 3.0 1.0 else ccomplex 0.3 (-0.2))
  in
  let b = Array.init 3 (fun i -> ccomplex (float_of_int i) 1.0) in
  let x = Cmat.solve a b in
  let r = Cmat.mul_vec a x in
  let err = ref 0.0 in
  Array.iteri
    (fun i v -> err := Float.max !err (Complex.norm (Complex.sub v b.(i))))
    r;
  close "residual" 0.0 !err ~tol:1e-12

let test_cmat_factor_reuse () =
  let a =
    Cmat.init 2 2 (fun i j -> ccomplex (float_of_int ((2 * i) + j + 1)) 0.5)
  in
  let f = Cmat.factor a in
  let b1 = [| Complex.one; Complex.zero |] in
  let b2 = [| Complex.zero; Complex.one |] in
  let x1 = Cmat.solve_factored f b1 and x2 = Cmat.solve_factored f b2 in
  let y1 = Cmat.solve a b1 and y2 = Cmat.solve a b2 in
  let d a b =
    Array.fold_left Float.max 0.0
      (Array.mapi (fun i v -> Complex.norm (Complex.sub v b.(i))) a)
  in
  close "reuse 1" 0.0 (d x1 y1) ~tol:1e-14;
  close "reuse 2" 0.0 (d x2 y2) ~tol:1e-14

let test_jomega_alpha () =
  (* (jω)^1 = jω *)
  let v = Cmat.jomega_alpha 2.0 1.0 in
  close "re" 0.0 v.Complex.re ~tol:1e-12;
  close "im" 2.0 v.Complex.im ~tol:1e-12;
  (* (jω)^{1/2} at ω = 1: e^{iπ/4} *)
  let h = Cmat.jomega_alpha 1.0 0.5 in
  close "re half" (cos (Float.pi /. 4.0)) h.Complex.re ~tol:1e-12;
  close "im half" (sin (Float.pi /. 4.0)) h.Complex.im ~tol:1e-12;
  (* negative ω conjugates *)
  let hm = Cmat.jomega_alpha (-1.0) 0.5 in
  close "conj" (-.h.Complex.im) hm.Complex.im ~tol:1e-12

(* ---------- Fft ---------- *)

let random_signal seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      ccomplex (Random.State.float st 2.0 -. 1.0) (Random.State.float st 2.0 -. 1.0))

let spectral_diff a b =
  Array.fold_left Float.max 0.0
    (Array.mapi (fun i v -> Complex.norm (Complex.sub v b.(i))) a)

let test_fft_matches_naive_pow2 () =
  let x = random_signal 1 32 in
  close "radix-2 vs naive" 0.0
    (spectral_diff (Fft.fft x) (Fft.dft_naive x))
    ~tol:1e-10

let test_fft_matches_naive_arbitrary () =
  List.iter
    (fun n ->
      let x = random_signal n n in
      close
        (Printf.sprintf "bluestein n=%d" n)
        0.0
        (spectral_diff (Fft.fft x) (Fft.dft_naive x))
        ~tol:1e-9)
    [ 3; 7; 12; 100; 101 ]

let test_fft_roundtrip () =
  List.iter
    (fun n ->
      let x = random_signal (n + 5) n in
      close
        (Printf.sprintf "ifft∘fft n=%d" n)
        0.0
        (spectral_diff (Fft.ifft (Fft.fft x)) x)
        ~tol:1e-10)
    [ 8; 50; 64; 100 ]

let test_fft_dc () =
  let x = Array.make 16 Complex.one in
  let y = Fft.fft x in
  close "DC bin" 16.0 y.(0).Complex.re;
  close "bin 1" 0.0 (Complex.norm y.(1)) ~tol:1e-12

let test_fft_parseval () =
  let x = random_signal 9 64 in
  let y = Fft.fft x in
  let energy v = Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 v in
  close "parseval" (64.0 *. energy x) (energy y) ~tol:1e-6

let test_fft_frequencies () =
  let f = Fft.frequencies 8 0.5 in
  close "bin 0" 0.0 f.(0);
  close "bin 1" (2.0 *. Float.pi /. 4.0) f.(1) ~tol:1e-12;
  check_bool "upper bins negative" true (f.(7) < 0.0);
  close "symmetry" (-.f.(1)) f.(7) ~tol:1e-12

(* ---------- Series ---------- *)

let test_series_binomial_integer () =
  (* (1+q)^3 = 1 + 3q + 3q² + q³ *)
  let c = Series.binomial_series 3.0 6 in
  close "c0" 1.0 c.(0);
  close "c1" 3.0 c.(1);
  close "c2" 3.0 c.(2);
  close "c3" 1.0 c.(3);
  close "c4" 0.0 c.(4)

let test_series_paper_rho () =
  (* the paper's eq. (23): ρ_{3/2,4} = 1 − 3q + 4.5q² − 5.5q³ *)
  let c = Series.one_minus_over_one_plus_pow 1.5 4 in
  close "c0" 1.0 c.(0);
  close "c1" (-3.0) c.(1);
  close "c2" 4.5 c.(2);
  close "c3" (-5.5) c.(3)

let test_series_alpha_one () =
  (* ((1−q)/(1+q))^1 = 1 − 2q + 2q² − 2q³ … *)
  let c = Series.one_minus_over_one_plus_pow 1.0 5 in
  close "c0" 1.0 c.(0);
  close "c1" (-2.0) c.(1);
  close "c2" 2.0 c.(2);
  close "c3" (-2.0) c.(3);
  close "c4" 2.0 c.(4)

let prop_series_power_addition =
  QCheck.Test.make ~count:50
    ~name:"series: ρ_α · ρ_β = ρ_{α+β} (truncated Cauchy product)"
    QCheck.(pair (float_range 0.1 2.0) (float_range 0.1 2.0))
    (fun (a, b) ->
      let n = 10 in
      let pa = Series.one_minus_over_one_plus_pow a n in
      let pb = Series.one_minus_over_one_plus_pow b n in
      let pab = Series.one_minus_over_one_plus_pow (a +. b) n in
      let prod = Series.mul pa pb in
      Array.for_all2
        (fun x y -> Float.abs (x -. y) < 1e-7 *. (1.0 +. Float.abs y))
        prod pab)

let test_series_eval_nilpotent () =
  let q = Mat.shift_nilpotent 4 in
  let c = [| 1.0; -3.0; 4.5; -5.5 |] in
  let m = Series.eval_nilpotent c q in
  (* Toeplitz structure: row 0 = coefficients *)
  close "m00" 1.0 (Mat.get m 0 0);
  close "m01" (-3.0) (Mat.get m 0 1);
  close "m03" (-5.5) (Mat.get m 0 3);
  close "m12" (-3.0) (Mat.get m 1 2);
  close "m10" 0.0 (Mat.get m 1 0)

let test_series_eval_scalar () =
  (* 2 + 3x + 4x² at x = −3: 2 − 9 + 36 = 29 *)
  close "horner" 29.0 (Series.eval [| 2.0; 3.0; 4.0 |] (-3.0)) ~tol:1e-12

(* ---------- Poly ---------- *)

let test_poly_mul_eval () =
  let p = [| 1.0; 2.0 |] (* 1 + 2x *)
  and q = [| -1.0; 1.0 |] (* x − 1 *) in
  let r = Poly.mul p q in
  close "eval"
    ((1.0 +. (2.0 *. 0.7)) *. (0.7 -. 1.0))
    (Poly.eval r 0.7) ~tol:1e-12

let test_poly_derive_integrate () =
  let p = [| 5.0; 0.0; 3.0 |] in
  let back = Poly.derive (Poly.integrate p) in
  check_bool "d/dx ∘ ∫ = id" true
    (Array.for_all2
       (fun a b -> Float.abs (a -. b) < 1e-12)
       (Poly.normalize back) (Poly.normalize p))

let test_poly_definite_integral () =
  (* ∫₀¹ x² = 1/3 *)
  close "x² integral" (1.0 /. 3.0)
    (Poly.definite_integral [| 0.0; 0.0; 1.0 |] 0.0 1.0)
    ~tol:1e-12

let test_poly_legendre_values () =
  (* P_n(1) = 1 for all n *)
  List.iter
    (fun n ->
      close
        (Printf.sprintf "P_%d(1)" n)
        1.0
        (Poly.eval (Poly.legendre n) 1.0)
        ~tol:1e-9)
    [ 0; 1; 2; 3; 4; 5 ];
  (* P_2(x) = (3x² − 1)/2 *)
  close "P2(0)" (-0.5) (Poly.eval (Poly.legendre 2) 0.0) ~tol:1e-12

let test_poly_legendre_orthogonal () =
  let p3 = Poly.legendre 3 and p5 = Poly.legendre 5 in
  close "⟨P3,P5⟩ = 0" 0.0
    (Poly.definite_integral (Poly.mul p3 p5) (-1.0) 1.0)
    ~tol:1e-10;
  (* ‖P_n‖² = 2/(2n+1) *)
  close "‖P3‖²" (2.0 /. 7.0)
    (Poly.definite_integral (Poly.mul p3 p3) (-1.0) 1.0)
    ~tol:1e-10

let test_poly_shifted_legendre () =
  (* shifted: orthogonal on [0,1], SL_n(1) = 1 *)
  let sl4 = Poly.shifted_legendre 4 in
  close "SL4(1)" 1.0 (Poly.eval sl4 1.0) ~tol:1e-9;
  let sl2 = Poly.shifted_legendre 2 in
  close "⟨SL2,SL4⟩" 0.0
    (Poly.definite_integral (Poly.mul sl2 sl4) 0.0 1.0)
    ~tol:1e-10

(* ---------- Special ---------- *)

let test_gamma_values () =
  close "Γ(1)" 1.0 (Special.gamma 1.0) ~tol:1e-12;
  close "Γ(5)" 24.0 (Special.gamma 5.0) ~tol:1e-9;
  close "Γ(1/2)" (sqrt Float.pi) (Special.gamma 0.5) ~tol:1e-12;
  close "Γ(3/2)" (0.5 *. sqrt Float.pi) (Special.gamma 1.5) ~tol:1e-12;
  (* reflection: Γ(−1/2) = −2√π *)
  close "Γ(−1/2)" (-2.0 *. sqrt Float.pi) (Special.gamma (-0.5)) ~tol:1e-10

let test_lgamma_recurrence () =
  (* ln Γ(x+1) = ln Γ(x) + ln x *)
  List.iter
    (fun x ->
      close
        (Printf.sprintf "recurrence at %g" x)
        (Special.lgamma x +. log x)
        (Special.lgamma (x +. 1.0))
        ~tol:1e-10)
    [ 0.3; 1.7; 4.2; 10.5 ]

let test_erf_values () =
  close "erf(0)" 0.0 (Special.erf 0.0) ~tol:1e-14;
  close "erf(1)" 0.8427007929497149 (Special.erf 1.0) ~tol:1e-10;
  close "erf(−1)" (-0.8427007929497149) (Special.erf (-1.0)) ~tol:1e-10;
  close "erfc(1)" (1.0 -. 0.8427007929497149) (Special.erfc 1.0) ~tol:1e-10;
  close "erf+erfc" 1.0 (Special.erf 2.3 +. Special.erfc 2.3) ~tol:1e-12

let test_gammp_gammq () =
  close "P + Q = 1" 1.0 (Special.gammp 2.5 1.7 +. Special.gammq 2.5 1.7) ~tol:1e-12;
  (* P(1, x) = 1 − e^{−x} *)
  close "P(1,2)" (1.0 -. exp (-2.0)) (Special.gammp 1.0 2.0) ~tol:1e-10

let test_mittag_leffler_exp () =
  (* E_1(z) = e^z *)
  List.iter
    (fun z ->
      close
        (Printf.sprintf "E_1(%g)" z)
        (exp z)
        (Special.mittag_leffler ~alpha:1.0 z)
        ~tol:(1e-10 *. Float.max 1.0 (exp z)))
    [ -5.0; -1.0; 0.0; 1.0; 3.0 ]

let test_mittag_leffler_half () =
  (* E_{1/2}(−x) = e^{x²} erfc(x) *)
  List.iter
    (fun x ->
      close
        (Printf.sprintf "E_0.5(−%g)" x)
        (exp (x *. x) *. Special.erfc x)
        (Special.mittag_leffler ~alpha:0.5 (-.x))
        ~tol:1e-6)
    [ 0.1; 0.5; 1.0; 2.0; 4.0 ]

let test_mittag_leffler_two () =
  (* E_2(−x²) = cos x *)
  List.iter
    (fun x ->
      close
        (Printf.sprintf "E_2(−%g²)" x)
        (cos x)
        (Special.mittag_leffler ~alpha:2.0 (-.(x *. x)))
        ~tol:1e-8)
    [ 0.5; 1.0; 2.0; 3.0 ]

let test_mittag_leffler_asymptotic_tail () =
  (* deep negative: E_{1/2}(−x) ≈ 1/(x√π) *)
  let x = 50.0 in
  close "tail"
    (1.0 /. (x *. sqrt Float.pi))
    (Special.mittag_leffler ~alpha:0.5 (-.x))
    ~tol:1e-5

let test_ml_step_response () =
  close "t=0" 0.0 (Special.ml_step_response ~alpha:0.7 ~lambda:2.0 0.0) ~tol:1e-12;
  (* monotone increasing towards 1 for relaxation *)
  let a = Special.ml_step_response ~alpha:0.7 ~lambda:2.0 0.5 in
  let b = Special.ml_step_response ~alpha:0.7 ~lambda:2.0 5.0 in
  check_bool "monotone" true (a < b && b < 1.0)

let prop_ml_beta_recurrence =
  QCheck.Test.make ~count:40
    ~name:"mittag-leffler: E_{α,β}(z) = z·E_{α,α+β}(z) + 1/Γ(β)"
    QCheck.(pair (float_range 0.3 1.8) (float_range (-4.0) 4.0))
    (fun (alpha, z) ->
      let beta = 1.0 in
      let lhs = Special.mittag_leffler ~alpha ~beta z in
      let rhs =
        (z *. Special.mittag_leffler ~alpha ~beta:(alpha +. beta) z)
        +. (1.0 /. Special.gamma beta)
      in
      Float.abs (lhs -. rhs) < 1e-7 *. Float.max 1.0 (Float.abs lhs))

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "numkit"
    [
      ( "vec",
        [
          t "basics" test_vec_basics;
          t "axpy" test_vec_axpy;
          t "linspace" test_vec_linspace;
          t "dimension mismatch" test_vec_mismatch;
        ] );
      ( "mat",
        [
          t "mul identity" test_mat_mul_identity;
          t "mul known" test_mat_mul_known;
          t "transpose" test_mat_transpose;
          t "kron dims" test_mat_kron_dims;
          t "kron mixed product" test_mat_kron_mixed_product;
          t "nilpotent powers" test_mat_pow;
          t "tmul_vec" test_mat_tmul_vec;
          t "triangular predicate" test_mat_triangular_pred;
        ] );
      ( "lu",
        [
          t "solve known" test_lu_solve_known;
          t "determinant" test_lu_det;
          t "inverse" test_lu_inverse;
          t "singular raises" test_lu_singular;
          t "pivoting" test_lu_needs_pivoting;
          q prop_lu_residual;
        ] );
      ( "tri",
        [
          t "solve upper" test_tri_solve_upper;
          t "solve lower" test_tri_solve_lower;
          t "invert upper" test_tri_invert_upper;
          t "singular raises" test_tri_singular_exn;
          t "parlett sqrt squares back" test_parlett_square;
          t "parlett identity" test_parlett_identity_function;
          t "parlett exp commutes" test_parlett_exp_commutes;
          t "parlett confluent raises" test_parlett_confluent;
          q prop_parlett_power_addition;
        ] );
      ( "eig",
        [
          t "diagonal" test_eig_diagonal;
          t "rotation ±i" test_eig_rotation;
          t "companion roots" test_eig_companion_roots;
          t "hessenberg form" test_eig_hessenberg_form;
          t "spectral abscissa" test_spectral_abscissa;
          q prop_eig_trace_det;
        ] );
      ( "expm",
        [
          t "rotation" test_expm_rotation;
          t "scaling branch" test_expm_scaling_branch;
          t "zero matrix" test_expm_zero;
          t "phi1 values" test_phi1_values;
          q prop_expm_inverse;
          q prop_expm_trace_det;
        ] );
      ( "cmat",
        [
          t "solve" test_cmat_solve;
          t "factor reuse" test_cmat_factor_reuse;
          t "jomega_alpha" test_jomega_alpha;
        ] );
      ( "fft",
        [
          t "radix-2 vs naive" test_fft_matches_naive_pow2;
          t "bluestein vs naive" test_fft_matches_naive_arbitrary;
          t "roundtrip" test_fft_roundtrip;
          t "dc bin" test_fft_dc;
          t "parseval" test_fft_parseval;
          t "frequency layout" test_fft_frequencies;
        ] );
      ( "series",
        [
          t "binomial integer" test_series_binomial_integer;
          t "paper rho_{3/2,4}" test_series_paper_rho;
          t "alpha = 1" test_series_alpha_one;
          t "eval nilpotent toeplitz" test_series_eval_nilpotent;
          t "eval scalar" test_series_eval_scalar;
          q prop_series_power_addition;
        ] );
      ( "poly",
        [
          t "mul + eval" test_poly_mul_eval;
          t "derive ∘ integrate" test_poly_derive_integrate;
          t "definite integral" test_poly_definite_integral;
          t "legendre values" test_poly_legendre_values;
          t "legendre orthogonality" test_poly_legendre_orthogonal;
          t "shifted legendre" test_poly_shifted_legendre;
        ] );
      ( "special",
        [
          t "gamma values" test_gamma_values;
          t "lgamma recurrence" test_lgamma_recurrence;
          t "erf values" test_erf_values;
          t "incomplete gamma" test_gammp_gammq;
          t "mittag-leffler α=1" test_mittag_leffler_exp;
          t "mittag-leffler α=1/2" test_mittag_leffler_half;
          t "mittag-leffler α=2" test_mittag_leffler_two;
          t "mittag-leffler tail" test_mittag_leffler_asymptotic_tail;
          t "ml step response" test_ml_step_response;
          q prop_ml_beta_recurrence;
        ] );
    ]
