(* End-to-end integration tests: netlist text → parse → stamp → simulate
   → compare against analytic solutions and across methods. These cover
   the complete pipelines the paper's two experiments use. *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_transient

let check_bool = Alcotest.(check bool)


(* ---------- netlist-to-waveform pipelines ---------- *)

let test_rc_netlist_all_methods_agree () =
  let net = Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  let t_end = 5e-3 in
  let tau = 1e-3 in
  let exact t = 1.0 -. exp (-.t /. tau) in
  let check name w bound =
    let y = Waveform.channel w 0 in
    let err = ref 0.0 in
    Array.iteri
      (fun i t -> if t > 0.0 then err := Float.max !err (Float.abs (y.(i) -. exact t)))
      w.Waveform.times;
    check_bool name true (!err < bound)
  in
  let grid = Grid.uniform ~t_end ~m:500 in
  let opm = Opm.simulate_linear ~grid sys srcs in
  check "opm" opm.Sim_result.outputs 1e-4;
  check "trapezoidal"
    (Stepper.solve ~scheme:Stepper.Trapezoidal ~h:(t_end /. 500.0) ~t_end sys srcs)
    1e-4;
  check "gear"
    (Stepper.solve ~scheme:Stepper.Gear2 ~h:(t_end /. 500.0) ~t_end sys srcs)
    1e-3;
  check "backward euler"
    (Stepper.solve ~scheme:Stepper.Backward_euler ~h:(t_end /. 500.0) ~t_end sys srcs)
    1e-2;
  let adaptive, _ = Adaptive.solve ~tol:1e-6 ~t_end sys srcs in
  check "adaptive opm" adaptive.Sim_result.outputs 1e-4

let test_cpe_netlist_vs_mittag_leffler () =
  let net =
    Parser.parse_string
      "V1 in 0 step(1)\nR1 in out 100\nP1 out 0 q=1m alpha=0.5\n"
  in
  match Mna.stamp_fractional ~outputs:[ Mna.Node_voltage "out" ] net with
  | None -> Alcotest.fail "expected fractional netlist"
  | Some (sys, alpha, srcs) ->
      let lambda = 1.0 /. (100.0 *. 1e-3) (* 1/(RQ) = 10 *) in
      let t_end = 2.0 in
      let grid = Grid.uniform ~t_end ~m:800 in
      let r = Opm.simulate_fractional ~grid ~alpha sys srcs in
      let y = Sim_result.output r 0 in
      let mids = Grid.midpoints grid in
      let err = ref 0.0 in
      Array.iteri
        (fun i t ->
          if i > 10 then
            err :=
              Float.max !err
                (Float.abs (y.(i) -. Special.ml_step_response ~alpha ~lambda t)))
        mids;
      check_bool "netlist → FDE → Mittag-Leffler" true (!err < 5e-3)

let test_lc_tank_energy () =
  (* lossless LC tank rung by a current pulse keeps oscillating *)
  let net =
    Parser.parse_string
      "I1 top 0 pulse(0 1m 0 10n 0)\nC1 top 0 1n\nL1 top 0 1u\n"
  in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "top" ] net in
  let grid = Grid.uniform ~t_end:1e-6 ~m:4000 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let y = Sim_result.output r 0 in
  (* oscillation persists: late amplitude within 10% of the peak *)
  let peak = Vec.norm_inf y in
  let late = Array.sub y 3600 400 in
  check_bool "undamped" true (Vec.norm_inf late > 0.9 *. peak);
  (* period = 2π√(LC) ≈ 199 ns: count zero crossings over 1 µs ≈ 10 *)
  let crossings = ref 0 in
  for i = 1 to Array.length y - 1 do
    if y.(i - 1) *. y.(i) < 0.0 then incr crossings
  done;
  check_bool "frequency right" true (!crossings >= 8 && !crossings <= 12)

let test_table1_pipeline () =
  (* the full Table I pipeline: OPM m=8 and both FFT baselines produce
     finite waveforms with the documented accuracy ordering *)
  let sys = Tline.model () in
  let srcs = Tline.inputs () in
  let grid = Grid.uniform ~t_end:Tline.t_end ~m:8 in
  let opm = Opm.simulate_fractional ~grid ~alpha:Tline.alpha sys srcs in
  let fft1 = Freq_domain.solve ~n_samples:8 ~alpha:Tline.alpha ~t_end:Tline.t_end sys srcs in
  let fft2 = Freq_domain.solve ~n_samples:100 ~alpha:Tline.alpha ~t_end:Tline.t_end sys srcs in
  let e1 = Error.waveform_error_db ~reference:opm.Sim_result.outputs fft1 in
  let e2 = Error.waveform_error_db ~reference:opm.Sim_result.outputs fft2 in
  check_bool "errors finite" true (Float.is_finite e1 && Float.is_finite e2);
  check_bool "FFT-2 more accurate than FFT-1 (paper Table I shape)" true (e2 < e1)

let test_table2_pipeline () =
  (* the full Table II pipeline on a small grid: OPM on the second-order
     NA model vs the three classical schemes on the MNA DAE *)
  let spec = { Power_grid.default_spec with nx = 4; ny = 4; nz = 2; load_count = 2 } in
  let net = Power_grid.generate spec in
  let probe = [ Mna.Node_voltage (Power_grid.node_name ~x:0 ~y:0 ~z:0) ] in
  let na, srcs_na = Na2.stamp ~outputs:probe net in
  let mna, srcs_mna = Mna.stamp_linear ~outputs:probe net in
  let t_end = 1e-9 and h = 10e-12 in
  let m = int_of_float (t_end /. h) in
  let opm = Opm.simulate_multi_term ~grid:(Grid.uniform ~t_end ~m) na srcs_na in
  (* high-accuracy reference: trapezoidal at h/20 *)
  let reference =
    Stepper.solve ~scheme:Stepper.Trapezoidal ~h:(h /. 20.0) ~t_end mna srcs_mna
  in
  let err_of w = Error.waveform_error_db ~reference w in
  let e_opm = err_of opm.Sim_result.outputs in
  let e_trap = err_of (Stepper.solve ~scheme:Stepper.Trapezoidal ~h ~t_end mna srcs_mna) in
  let e_gear = err_of (Stepper.solve ~scheme:Stepper.Gear2 ~h ~t_end mna srcs_mna) in
  let e_be = err_of (Stepper.solve ~scheme:Stepper.Backward_euler ~h ~t_end mna srcs_mna) in
  (* Table II shape: b-Euler clearly worst; OPM in the same accuracy
     class as the second-order schemes *)
  check_bool "b-Euler worst" true (e_be > e_trap && e_be > e_gear);
  check_bool "OPM competitive" true (e_opm < e_be)

let test_be_step_refinement_shape () =
  (* Table II's backward-Euler rows: error must improve as h shrinks *)
  let spec = { Power_grid.default_spec with nx = 3; ny = 3; nz = 2; load_count = 2 } in
  let net = Power_grid.generate spec in
  let probe = [ Mna.Node_voltage (Power_grid.node_name ~x:0 ~y:0 ~z:0) ] in
  let mna, srcs = Mna.stamp_linear ~outputs:probe net in
  let t_end = 1e-9 in
  let reference =
    Stepper.solve ~scheme:Stepper.Trapezoidal ~h:0.25e-12 ~t_end mna srcs
  in
  let err h =
    Error.waveform_error_db ~reference
      (Stepper.solve ~scheme:Stepper.Backward_euler ~h ~t_end mna srcs)
  in
  let e10 = err 10e-12 and e5 = err 5e-12 and e1 = err 1e-12 in
  check_bool "10ps → 5ps improves" true (e5 < e10);
  check_bool "5ps → 1ps improves" true (e1 < e5)

(* ---------- CLI-equivalent pipeline ---------- *)

let test_multi_term_netlist_pipeline () =
  (* mixed C + CPE netlist must run through the multi-term engine *)
  let net =
    Parser.parse_string
      "V1 in 0 step(1)\n\
       R1 in out 1k\n\
       C1 out 0 0.2u\n\
       P1 out 0 q=0.5u alpha=0.5\n"
  in
  let mt, srcs = Mna.stamp ~outputs:[ Mna.Node_voltage "out" ] net in
  Alcotest.(check int) "two dynamic terms" 2 (List.length mt.Multi_term.terms);
  let grid = Grid.uniform ~t_end:5e-3 ~m:300 in
  let r = Opm.simulate_multi_term ~grid mt srcs in
  let y = Sim_result.output r 0 in
  check_bool "bounded, rising to 1" true
    (Vec.norm_inf y <= 1.05 && y.(299) > 0.8);
  check_bool "monotone-ish charging" true (y.(299) > y.(30))

let test_csv_output_shape () =
  let net = Parser.parse_string "V1 in 0 step(1)\nR1 in out 1k\nC1 out 0 1u\n" in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  let grid = Grid.uniform ~t_end:1e-3 ~m:10 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let csv = Waveform.to_csv r.Sim_result.outputs in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 10 rows" 11 (List.length lines);
  check_bool "header names probe" true (List.hd lines = "t,v(out)")

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          t "RC netlist, all methods" test_rc_netlist_all_methods_agree;
          t "CPE netlist vs Mittag-Leffler" test_cpe_netlist_vs_mittag_leffler;
          t "LC tank oscillates" test_lc_tank_energy;
          t "mixed C+CPE multi-term" test_multi_term_netlist_pipeline;
          t "CSV output" test_csv_output_shape;
        ] );
      ( "paper-experiments",
        [
          t "Table I pipeline" test_table1_pipeline;
          t "Table II pipeline" test_table2_pipeline;
          t "Table II b-Euler refinement" test_be_step_refinement_shape;
        ] );
    ]
