(* Tests for AC/DC analysis and their consistency with the time-domain
   solvers. *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_analysis

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_bool = Alcotest.(check bool)

let rc_netlist () =
  Parser.parse_string "V1 in 0 dc 0\nR1 in out 1k\nC1 out 0 1u\n"

(* ---------- DC ---------- *)

let test_dc_divider () =
  let net = Parser.parse_string "V1 in 0 dc 1\nR1 in mid 2k\nR2 mid 0 1k\n" in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "mid" ] net in
  close "divider" (1.0 /. 3.0) (Dc.outputs_at sys ~u0:[| 1.0 |]).(0) ~tol:1e-12

let test_dc_gain_matrix () =
  let net = rc_netlist () in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  let g = Dc.dc_gain sys in
  (* RC low-pass passes DC unchanged *)
  close "unity DC gain" 1.0 (Mat.get g 0 0) ~tol:1e-12

let test_dc_inductor_short () =
  (* at DC the inductor is a short: the divider sees only resistors *)
  let net =
    Parser.parse_string "V1 in 0 dc 1\nR1 in a 1k\nL1 a b 1m\nR2 b 0 1k\n"
  in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "b" ] net in
  close "half" 0.5 (Dc.outputs_at sys ~u0:[| 1.0 |]).(0) ~tol:1e-12

let test_dc_vcvs_amplifier () =
  let net =
    Parser.parse_string "V1 in 0 dc 1\nR1 in 0 1k\nE1 out 0 in 0 5\nR2 out 0 1k\n"
  in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  close "gain 5" 5.0 (Dc.outputs_at sys ~u0:[| 1.0 |]).(0) ~tol:1e-12

let test_dc_vccs_transresistance () =
  (* v_out = −gm·R·v_in *)
  let net =
    Parser.parse_string "V1 in 0 dc 1\nG1 out 0 in 0 2m\nR1 out 0 1k\n"
  in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  close "-gmR" (-2.0) (Dc.outputs_at sys ~u0:[| 1.0 |]).(0) ~tol:1e-10

let test_dc_u0_mismatch () =
  let net = rc_netlist () in
  let sys, _ = Mna.stamp_linear net in
  check_bool "raises" true
    (try
       ignore (Dc.operating_point sys ~u0:[| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

(* ---------- AC ---------- *)

let test_ac_rc_pole () =
  let sys, _ =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] (rc_netlist ())
  in
  let w0 = 1.0 /. (1e3 *. 1e-6) in
  let g = Ac.transfer sys w0 in
  close "-3 dB at the pole" (1.0 /. sqrt 2.0)
    (Complex.norm (Cmat.get g 0 0))
    ~tol:1e-9;
  close "phase -45°"
    (-.Float.pi /. 4.0)
    (Complex.arg (Cmat.get g 0 0))
    ~tol:1e-9

let test_ac_rolloff_20db_per_decade () =
  let sys, _ =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] (rc_netlist ())
  in
  let pts = Ac.sweep ~omega_min:1e4 ~omega_max:1e6 ~points:3 sys in
  match pts with
  | [ p1; p2; p3 ] ->
      let g1 = Ac.gain_db p1 ~input:0 ~output:0 in
      let g2 = Ac.gain_db p2 ~input:0 ~output:0 in
      let g3 = Ac.gain_db p3 ~input:0 ~output:0 in
      close "first decade" (-20.0) (g2 -. g1) ~tol:0.2;
      close "second decade" (-20.0) (g3 -. g2) ~tol:0.05
  | _ -> Alcotest.fail "expected 3 points"

let test_ac_fractional_slope () =
  (* a half-order pole rolls off at 10 dB/decade *)
  let sys = Descriptor.scalar ~e:1.0 ~a:(-1.0) ~b:1.0 in
  let pts = Ac.sweep ~alpha:0.5 ~omega_min:1e4 ~omega_max:1e6 ~points:3 sys in
  match pts with
  | [ p1; p2; _ ] ->
      close "10 dB/decade" (-10.0)
        (Ac.gain_db p2 ~input:0 ~output:0 -. Ac.gain_db p1 ~input:0 ~output:0)
        ~tol:0.3
  | _ -> Alcotest.fail "expected 3 points"

let test_ac_matches_time_domain_steady_state () =
  (* drive the RC with a sine, compare the settled amplitude/phase with
     the AC prediction *)
  let sys, srcs_template =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] (rc_netlist ())
  in
  ignore srcs_template;
  let f_hz = 500.0 in
  let w = 2.0 *. Float.pi *. f_hz in
  let srcs =
    [| Source.Sine { amplitude = 1.0; freq_hz = f_hz; phase = 0.0; offset = 0.0 } |]
  in
  let t_end = 20e-3 in
  let grid = Grid.uniform ~t_end ~m:8000 in
  let r = Opm.simulate_linear ~grid sys srcs in
  let y = Sim_result.output r 0 in
  (* peak amplitude over the last few periods *)
  let late = Array.sub y 7000 1000 in
  let amp = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 late in
  let g = Ac.transfer sys w in
  close "steady-state amplitude = |G(jω)|"
    (Complex.norm (Cmat.get g 0 0))
    amp ~tol:2e-3

let test_bode_csv () =
  let sys, _ =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] (rc_netlist ())
  in
  let pts = Ac.sweep ~omega_min:1.0 ~omega_max:100.0 ~points:5 sys in
  let csv = Ac.bode_csv ~input:0 ~output:0 pts in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 5 rows" 6 (List.length lines);
  check_bool "header" true (List.hd lines = "omega,gain_db,phase_deg")

let test_ac_sweep_validation () =
  let sys = Descriptor.scalar ~e:1.0 ~a:(-1.0) ~b:1.0 in
  check_bool "points < 2" true
    (try
       ignore (Ac.sweep ~omega_min:1.0 ~omega_max:10.0 ~points:1 sys);
       false
     with Invalid_argument _ -> true);
  check_bool "bad range" true
    (try
       ignore (Ac.sweep ~omega_min:10.0 ~omega_max:1.0 ~points:3 sys);
       false
     with Invalid_argument _ -> true)

(* ---------- Sweep ---------- *)

let test_sweep_run_and_extremes () =
  let pairs = Sweep.run (fun x -> (x -. 2.0) ** 2.0) [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "all evaluated" 4 (Array.length pairs);
  let v_min, m_min = Sweep.argmin pairs in
  close "argmin value" 2.0 v_min;
  close "min" 0.0 m_min;
  let v_max, _ = Sweep.argmax pairs in
  close "argmax value" 0.0 v_max

let test_sweep_statistics () =
  let s = Sweep.statistics [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  close "mean" 3.0 s.Sweep.mean;
  close "std" (sqrt 2.5) s.Sweep.std ~tol:1e-12;
  close "median" 3.0 s.Sweep.median;
  close "min" 1.0 s.Sweep.min;
  close "max" 5.0 s.Sweep.max;
  check_bool "quantile ordering" true (s.Sweep.q05 <= s.Sweep.median && s.Sweep.median <= s.Sweep.q95)

let test_sweep_monte_carlo_uniform () =
  let s =
    Sweep.monte_carlo ~seed:7 ~samples:4000
      ~sampler:(Sweep.uniform ~lo:0.0 ~hi:1.0)
      Fun.id
  in
  close "mean ≈ 1/2" 0.5 s.Sweep.mean ~tol:0.02;
  close "std ≈ 1/√12" (1.0 /. sqrt 12.0) s.Sweep.std ~tol:0.02

let test_sweep_monte_carlo_reproducible () =
  let once () =
    Sweep.monte_carlo ~seed:11 ~samples:100
      ~sampler:(Sweep.gaussian ~mean:5.0 ~std:1.0)
      Fun.id
  in
  close "deterministic" (once ()).Sweep.mean (once ()).Sweep.mean ~tol:0.0

let test_sweep_circuit_study () =
  (* rise time of an RC ladder vs segment resistance: monotone *)
  let rise r =
    let net =
      Generators.rc_ladder ~r ~c:1e-9 ~sections:3
        ~input:(Source.Step { amplitude = 1.0; delay = 0.0 })
        ()
    in
    let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "n3" ] net in
    let t_end = 60.0 *. r *. 1e-9 in
    let result = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m:800) sys srcs in
    Measure.rise_time result.Sim_result.outputs ~channel:0
  in
  let pairs = Sweep.run rise [| 500.0; 1000.0; 2000.0 |] in
  let times = Array.map snd pairs in
  check_bool "monotone in R" true (times.(0) < times.(1) && times.(1) < times.(2));
  (* rise time scales linearly with R *)
  close "2x R, 2x rise" 2.0 (times.(2) /. times.(1)) ~tol:0.1

(* ---------- Poles ---------- *)

let test_poles_rc () =
  (* single pole at −1/RC; the V source makes E singular (a DAE) *)
  let sys, _ = Mna.stamp_linear (rc_netlist ()) in
  let poles = Poles.of_descriptor ~shift:(-123.0) sys in
  Alcotest.(check int) "one finite pole" 1 (Array.length poles);
  close "−1/RC" (-1000.0) poles.(0).Complex.re ~tol:1e-6;
  check_bool "stable" true (Poles.is_stable ~shift:(-123.0) sys)

let test_poles_lc_tank () =
  let net = Parser.parse_string "I1 top 0 dc 0\nC1 top 0 1n\nL1 top 0 1u\n" in
  let sys, _ = Mna.stamp_linear net in
  let poles = Poles.of_descriptor sys in
  Alcotest.(check int) "two poles" 2 (Array.length poles);
  let w = 1.0 /. sqrt (1e-6 *. 1e-9) in
  Array.iter
    (fun z ->
      close "purely imaginary" 0.0 z.Complex.re ~tol:1.0;
      close "at ±1/√LC" w (Float.abs z.Complex.im) ~tol:(1e-6 *. w))
    poles

let test_poles_sallen_key () =
  let net =
    Parser.parse_string
      "V1 in 0 dc 0\nR1 in a 10k\nR2 a b 10k\nC1 a out 32n\nC2 b 0 2n\nE1 out 0 b 0 1\n"
  in
  let sys, _ = Mna.stamp_linear net in
  let poles = Poles.of_descriptor ~shift:7.0 sys in
  Alcotest.(check int) "conjugate pair" 2 (Array.length poles);
  (* ω0 = 1/(R√(C1C2)) = 12.5 krad/s, Q = 2 *)
  let w0 = 12500.0 and q = 2.0 in
  Array.iter
    (fun z ->
      close "Re = −ω0/2Q" (-.w0 /. (2.0 *. q)) z.Complex.re ~tol:1e-3;
      close "|λ| = ω0" w0 (Complex.norm z) ~tol:1e-3)
    poles

let test_poles_dominant () =
  let net =
    Parser.parse_string
      "I1 a 0 dc 0\nR1 a 0 1k\nC1 a 0 1u\nR2 a b 1k\nC2 b 0 1n\n"
  in
  let sys, _ = Mna.stamp_linear net in
  let dom = Poles.dominant sys in
  (* slowest time constant ~ (R1)(C1): pole near −1/(1k·1u) = −1000 *)
  check_bool "dominant is the slow pole" true
    (dom.Complex.re > -3000.0 && dom.Complex.re < 0.0)

let test_matignon_criterion () =
  (* λ = −1 is stable for every α in (0, 2) *)
  check_bool "negative real" true
    (Poles.fractional_stability_angle ~alpha:0.5 { Complex.re = -1.0; im = 0.0 });
  (* λ = +1 is unstable for every α *)
  check_bool "positive real" false
    (Poles.fractional_stability_angle ~alpha:0.5 { Complex.re = 1.0; im = 0.0 });
  (* λ = ±j (arg π/2): stable iff α < 1 *)
  let j = { Complex.re = 0.0; im = 1.0 } in
  check_bool "jω stable for α=0.9" true
    (Poles.fractional_stability_angle ~alpha:0.9 j);
  check_bool "jω unstable for α=1.1" false
    (Poles.fractional_stability_angle ~alpha:1.1 j)

let test_poles_match_time_domain_decay () =
  (* simulate and compare the dominant decay rate against the pole *)
  let net = Parser.parse_string "I1 a 0 dc 0\nR1 a 0 2k\nC1 a 0 1u\n" in
  let sys, _ = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "a" ] net in
  let pole = (Poles.dominant sys).Complex.re in
  close "pole = −1/RC" (-500.0) pole ~tol:1e-6;
  let r =
    Opm.simulate_linear ~x0:[| 1.0 |]
      ~grid:(Grid.uniform ~t_end:4e-3 ~m:1000)
      sys
      [| Source.Dc 0.0 |]
  in
  let y = Sim_result.output r 0 in
  (* fit the decay between two samples: ln(y1/y2)/(t2−t1) ≈ −pole *)
  let mids = Grid.midpoints r.Sim_result.grid in
  let rate = log (y.(100) /. y.(600)) /. (mids.(600) -. mids.(100)) in
  close "decay rate" (-.pole) rate ~tol:1.0

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "analysis"
    [
      ( "dc",
        [
          t "resistive divider" test_dc_divider;
          t "dc gain matrix" test_dc_gain_matrix;
          t "inductor is a short" test_dc_inductor_short;
          t "vcvs amplifier" test_dc_vcvs_amplifier;
          t "vccs transresistance" test_dc_vccs_transresistance;
          t "u0 mismatch" test_dc_u0_mismatch;
        ] );
      ( "ac",
        [
          t "RC pole gain/phase" test_ac_rc_pole;
          t "-20 dB/decade" test_ac_rolloff_20db_per_decade;
          t "fractional -10 dB/decade" test_ac_fractional_slope;
          t "matches time-domain steady state"
            test_ac_matches_time_domain_steady_state;
          t "bode csv" test_bode_csv;
          t "sweep validation" test_ac_sweep_validation;
        ] );
      ( "sweep",
        [
          t "run + extremes" test_sweep_run_and_extremes;
          t "statistics" test_sweep_statistics;
          t "monte carlo uniform moments" test_sweep_monte_carlo_uniform;
          t "monte carlo reproducible" test_sweep_monte_carlo_reproducible;
          t "circuit rise-time study" test_sweep_circuit_study;
        ] );
      ( "poles",
        [
          t "RC single pole (DAE)" test_poles_rc;
          t "LC tank ±jω" test_poles_lc_tank;
          t "Sallen-Key conjugate pair" test_poles_sallen_key;
          t "dominant pole" test_poles_dominant;
          t "Matignon fractional criterion" test_matignon_criterion;
          t "pole matches time-domain decay" test_poles_match_time_domain_decay;
        ] );
    ]
