test/test_sparse.ml: Alcotest Array Coo Csr Fun List Lu Mat Opm_numkit Opm_sparse Printf QCheck QCheck_alcotest Random Rcm Slu Vec
