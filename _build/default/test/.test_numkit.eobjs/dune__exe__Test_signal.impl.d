test/test_signal.ml: Alcotest Array Error Float List Measure Opm_signal QCheck QCheck_alcotest Source Spectrum String Waveform
