test/test_numkit.ml: Alcotest Array Cmat Complex Eig Expm Fft Float Fun List Lu Mat Opm_numkit Poly Printf QCheck QCheck_alcotest Random Series Special Tri Vec
