test/test_basis.ml: Alcotest Array Block_pulse Float Grid Haar Laguerre Legendre List Mat Opm_basis Opm_numkit Opm_signal Poly Printf QCheck QCheck_alcotest Random Vec Walsh
