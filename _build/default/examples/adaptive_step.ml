(* Adaptive time steps — the paper's §III-B extension.

   A two-time-scale RC circuit (τ₁ = 1 µs, τ₂ = 100 µs) is simulated
   with the adaptive OPM driver. The step sequence starts small to
   resolve the fast stage and grows ~100× once only the slow stage is
   active, giving uniform accuracy with far fewer steps than a uniform
   grid at the small step.

   Run with:  dune exec examples/adaptive_step.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let () =
  let input = Source.Step { amplitude = 1.0; delay = 0.0 } in
  let net = Generators.rc_two_time_scale ~input () in
  let sys, srcs =
    Mna.stamp_linear
      ~outputs:[ Mna.Node_voltage "fast"; Mna.Node_voltage "slow" ] net
  in
  let t_end = 5e-4 in
  let tol = 1e-5 in
  let result, stats = Adaptive.solve ~tol ~h_init:1e-7 ~t_end sys srcs in
  let steps = Grid.steps result.Sim_result.grid in
  let m = Array.length steps in
  Printf.printf "adaptive run: %d steps accepted, %d rejected, %d LU factorisations\n"
    stats.Adaptive.accepted stats.Adaptive.rejected stats.Adaptive.factorizations;
  Printf.printf "step range: %.3g .. %.3g s (ratio %.0fx)\n"
    (Array.fold_left Float.min Float.infinity steps)
    (Array.fold_left Float.max 0.0 steps)
    (Array.fold_left Float.max 0.0 steps
    /. Array.fold_left Float.min Float.infinity steps);

  (* a uniform grid matching the smallest step would need this many: *)
  let h_min = Array.fold_left Float.min Float.infinity steps in
  Printf.printf "uniform grid at h_min would need %d steps (vs %d adaptive)\n"
    (int_of_float (ceil (t_end /. h_min)))
    m;

  (* verify against the uniform-grid OPM answer *)
  let uniform = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m:4096) sys srcs in
  Printf.printf "agreement with uniform m=4096 reference: %.1f dB\n"
    (Error.waveform_error_db ~reference:uniform.Sim_result.outputs
       result.Sim_result.outputs);

  print_endline "\nwaveform at a few instants (fast node, slow node):";
  let times = Grid.midpoints result.Sim_result.grid in
  let v_fast = Sim_result.output result 0 in
  let v_slow = Sim_result.output result 1 in
  List.iter
    (fun frac ->
      let target = frac *. t_end in
      (* nearest midpoint *)
      let best = ref 0 in
      Array.iteri
        (fun i t ->
          if Float.abs (t -. target) < Float.abs (times.(!best) -. target) then
            best := i)
        times;
      Printf.printf "  t = %8.3g s   v_fast = %8.5f   v_slow = %8.5f\n"
        times.(!best) v_fast.(!best) v_slow.(!best))
    [ 0.001; 0.01; 0.1; 0.5; 1.0 ]
