(* Crosstalk between coupled interconnect lines.

   A rising aggressor couples charge into a quiet victim line through
   the inter-wire capacitance; the victim sees a transient glitch whose
   peak is first-order bounded by the capacitive divider cc/(cc+cg).
   The example simulates the pair with OPM, measures the glitch, and
   shows the classic mitigation trade-off: more coupling → bigger
   glitch; stronger victim driver → smaller glitch.

   Run with:  dune exec examples/crosstalk.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let glitch spec =
  let net = Coupled_lines.generate spec in
  let sys, srcs =
    Mna.stamp_linear
      ~outputs:
        [
          Mna.Node_voltage (Coupled_lines.victim_far_node spec);
          Mna.Node_voltage (Coupled_lines.aggressor_far_node spec);
        ]
      net
  in
  let t_end = 2e-9 in
  let r = Opm.simulate_linear ~grid:(Grid.uniform ~t_end ~m:2000) sys srcs in
  let w = r.Sim_result.outputs in
  let _, peak = Measure.peak w ~channel:0 in
  (peak, w)

let () =
  let spec = Coupled_lines.default_spec in
  let peak, w = glitch spec in
  Printf.printf
    "baseline: %d sections, cc/(cc+cg) divider bound = %.2f V\n"
    spec.Coupled_lines.sections
    (spec.Coupled_lines.cc /. (spec.Coupled_lines.cc +. spec.Coupled_lines.c_seg));
  Printf.printf "victim glitch peak: %.4f V; aggressor settles to %.3f V\n\n"
    peak
    (Measure.final_value w ~channel:1);

  print_endline "coupling sweep (cc per section):";
  Printf.printf "  %-12s %12s\n" "cc (fF)" "glitch (V)";
  List.iter
    (fun cc_ff ->
      let p, _ = glitch { spec with Coupled_lines.cc = cc_ff *. 1e-15 } in
      Printf.printf "  %-12g %12.4f\n" cc_ff p)
    [ 5.0; 15.0; 30.0; 60.0; 120.0 ];

  print_endline "\nvictim holder strength sweep (aggressor driver fixed):";
  Printf.printf "  %-12s %12s\n" "r_drv_v (Ω)" "glitch (V)";
  List.iter
    (fun r_drv_victim ->
      let p, _ = glitch { spec with Coupled_lines.r_drv_victim } in
      Printf.printf "  %-12g %12.4f\n" r_drv_victim p)
    [ 25.0; 50.0; 100.0; 200.0; 400.0 ];

  print_endline
    "\nthe glitch grows with coupling and with weaker drivers — the\n\
     standard crosstalk picture, produced here by the OPM engine on the\n\
     MNA-stamped coupled system."
