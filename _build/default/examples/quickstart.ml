(* Quickstart: simulate an RC low-pass filter with OPM.

   Demonstrates the three-step public API:
   1. describe the circuit (netlist or matrices),
   2. pick a time grid,
   3. simulate and read back waveforms.

   Run with:  dune exec examples/quickstart.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let () =
  (* 1. an RC low-pass: 1 kΩ / 1 µF, driven by a 1 V step *)
  let netlist =
    Parser.parse_string
      "V1 in 0 step(1)\n\
       R1 in out 1k\n\
       C1 out 0 1u\n"
  in
  let system, sources =
    Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] netlist
  in

  (* 2. time grid: five time constants, 64 block-pulse intervals *)
  let tau = 1e-3 in
  let grid = Grid.uniform ~t_end:(5.0 *. tau) ~m:64 in

  (* 3. simulate and compare with the analytic answer 1 − e^{−t/τ} *)
  let result = Opm.simulate_linear ~grid system sources in
  let v_out = Sim_result.output result 0 in
  let times = Grid.midpoints grid in

  print_endline "      t           v(out)      analytic";
  Array.iteri
    (fun i t ->
      if i mod 8 = 0 then
        Printf.printf "%12.5g  %12.6f  %12.6f\n" t v_out.(i)
          (1.0 -. exp (-.t /. tau)))
    times;

  let exact =
    Waveform.of_function ~labels:[| "exact" |] times (fun t ->
        [| 1.0 -. exp (-.t /. tau) |])
  in
  Printf.printf "\nglobal error vs analytic: %.1f dB (eq. 30 metric)\n"
    (Error.waveform_error_db ~reference:exact result.Sim_result.outputs)
