(* Sallen–Key active low-pass filter.

   A second-order RC filter around a unity-gain buffer (the VCVS "E"
   element): with equal resistors and C1/C2 = 16 the quality factor is
   Q = √(C1/C2)/2 = 2, giving a visibly underdamped step response.
   The example runs the transient with OPM, extracts bench numbers with
   Opm_signal.Measure, and checks the frequency response with the AC
   sweep (peak near f₀, −40 dB/decade skirt).

   Run with:  dune exec examples/sallen_key.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_analysis

let netlist =
  "* Sallen-Key LPF, K = 1, R = 10k, C1 = 32n, C2 = 2n\n\
   V1 in 0 step(1)\n\
   R1 in a 10k\n\
   R2 a b 10k\n\
   C1 a out 32n\n\
   C2 b 0 2n\n\
   E1 out 0 b 0 1\n"

let () =
  let net = Parser.parse_string netlist in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "out" ] net in
  let r = 10e3 and c1 = 32e-9 and c2 = 2e-9 in
  let w0 = 1.0 /. (r *. sqrt (c1 *. c2)) in
  let q = sqrt (c1 /. c2) /. 2.0 in
  Printf.printf "design: f0 = %.1f Hz, Q = %.2f\n\n" (w0 /. (2.0 *. Float.pi)) q;

  (* transient step response *)
  let t_end = 20.0 *. 2.0 *. Float.pi /. w0 in
  let grid = Grid.uniform ~t_end ~m:4000 in
  let result = Opm.simulate_linear ~grid sys srcs in
  let w = result.Sim_result.outputs in
  Printf.printf "step response (OPM, m = 4000):\n";
  Printf.printf "  overshoot      %6.1f %%   (2nd-order theory: %.1f %%)\n"
    (100.0 *. Measure.overshoot w ~channel:0)
    (100.0 *. exp (-.Float.pi /. sqrt ((4.0 *. q *. q) -. 1.0)));
  Printf.printf "  rise time      %8.3g s\n" (Measure.rise_time w ~channel:0);
  (try
     Printf.printf "  settling (2%%)  %8.3g s\n"
       (Measure.settling_time w ~channel:0)
   with Not_found -> print_endline "  settling: beyond the record");
  Printf.printf "  final value    %8.5f\n" (Measure.final_value w ~channel:0);

  (* frequency response *)
  print_endline "\nAC sweep:";
  let pts =
    Ac.sweep ~omega_min:(w0 /. 100.0) ~omega_max:(w0 *. 100.0) ~points:9 sys
  in
  List.iter
    (fun pt ->
      Printf.printf "  f = %10.1f Hz   gain %8.2f dB   phase %7.1f°\n"
        (pt.Ac.omega /. (2.0 *. Float.pi))
        (Ac.gain_db pt ~input:0 ~output:0)
        (Ac.phase_deg pt ~input:0 ~output:0))
    pts;
  (* peaking at ω0 should be ≈ 20·log10 Q for high-ish Q *)
  let at_w0 = Ac.transfer sys w0 in
  Printf.printf
    "\ngain at f0: %.2f dB (theory 20·log10 Q = %.2f dB); skirt: −40 dB/decade\n"
    (20.0 *. log10 (Complex.norm (Opm_numkit.Cmat.get at_w0 0 0)))
    (20.0 *. log10 q)
