(* Tour of the alternative bases (paper §I).

   The same RC-ladder step response is computed through the BPF
   operational matrices directly, then through the Walsh and Haar
   similarity transforms, showing (a) all bases give the same answer
   and (b) the Walsh "overall trend" property: truncating to the first
   few sequency coefficients keeps the macroscopic shape.

   Run with:  dune exec examples/basis_tour.exe *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit

let () =
  let input = Source.Step { amplitude = 1.0; delay = 0.0 } in
  let net = Generators.rc_ladder ~sections:4 ~input () in
  let sys, srcs = Mna.stamp_linear ~outputs:[ Mna.Node_voltage "n4" ] net in
  let t_end = 2e-5 and m = 64 in
  let grid = Grid.uniform ~t_end ~m in

  (* reference: BPF OPM *)
  let result = Opm.simulate_linear ~grid sys srcs in
  let y_bpf = Sim_result.output result 0 in

  (* the same solve performed in Walsh coordinates:
     E X_W D_W = A X_W + B U_W with D_W = W D W⁻¹, U_W = U Wᵀ/m…
     equivalently transform the BPF answer; we verify the operational
     matrices commute with the change of basis. *)
  let d_bpf = Block_pulse.differential_matrix grid in
  let d_walsh = Walsh.differential_matrix grid in
  let w = Walsh.walsh_matrix m in
  let w_inv = Mat.scale (1.0 /. float_of_int m) (Mat.transpose w) in
  let transported = Mat.mul (Mat.mul w d_bpf) w_inv in
  Printf.printf "‖D_walsh − W·D_bpf·W⁻¹‖ = %g (exact similarity)\n"
    (Mat.max_abs_diff d_walsh transported);
  let d_haar = Haar.differential_matrix grid in
  Printf.printf "Haar similarity defect:   %g\n"
    (Mat.max_abs_diff (Mat.mul d_haar (Haar.integral_matrix grid)) (Mat.eye m));

  (* Walsh low-sequency truncation: keep 8 of 64 coefficients *)
  let c_walsh = Walsh.bpf_to_walsh y_bpf in
  let keep = 8 in
  let trend = Walsh.walsh_to_bpf (Walsh.truncate_spectrum ~keep c_walsh) in
  let err_trend = Error.relative_error_db ~reference:y_bpf trend in
  Printf.printf
    "\nWalsh trend: keeping %d/%d sequency coefficients reproduces the \
     waveform to %.1f dB\n"
    keep m err_trend;

  (* Haar truncation for comparison *)
  let c_haar = Haar.transform y_bpf in
  let truncated = Array.mapi (fun i v -> if i < keep then v else 0.0) c_haar in
  let haar_trend = Haar.inverse_transform truncated in
  Printf.printf "Haar trend:  keeping %d/%d wavelet coefficients: %.1f dB\n" keep
    m
    (Error.relative_error_db ~reference:y_bpf haar_trend);

  print_endline "\n      t       full      walsh-trend";
  Array.iteri
    (fun i t ->
      if i mod 8 = 0 then
        Printf.printf "%10.3g  %9.6f  %9.6f\n" t y_bpf.(i) trend.(i))
    (Grid.midpoints grid)
