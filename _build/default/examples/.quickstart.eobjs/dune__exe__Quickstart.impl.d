examples/quickstart.ml: Array Error Grid Mna Opm Opm_basis Opm_circuit Opm_core Opm_signal Parser Printf Sim_result Waveform
