examples/sallen_key.mli:
