examples/crosstalk.ml: Coupled_lines Grid List Measure Mna Opm Opm_basis Opm_circuit Opm_core Opm_signal Printf Sim_result
