examples/sallen_key.ml: Ac Complex Float Grid List Measure Mna Opm Opm_analysis Opm_basis Opm_circuit Opm_core Opm_numkit Opm_signal Parser Printf Sim_result
