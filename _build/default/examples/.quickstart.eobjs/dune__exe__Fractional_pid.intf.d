examples/fractional_pid.mli:
