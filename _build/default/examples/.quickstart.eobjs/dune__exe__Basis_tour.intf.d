examples/basis_tour.mli:
