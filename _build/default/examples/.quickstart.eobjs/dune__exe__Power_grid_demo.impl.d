examples/power_grid_demo.ml: Array Error Grid Mna Na2 Opm Opm_basis Opm_circuit Opm_core Opm_signal Opm_transient Power_grid Printf Sim_result Stepper
