examples/fractional_tline.ml: Array Error Freq_domain Grid Opm Opm_basis Opm_circuit Opm_core Opm_signal Opm_transient Printf Sim_result Tline
