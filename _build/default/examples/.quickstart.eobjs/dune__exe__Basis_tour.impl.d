examples/basis_tour.ml: Array Block_pulse Error Generators Grid Haar Mat Mna Opm Opm_basis Opm_circuit Opm_core Opm_numkit Opm_signal Printf Sim_result Source Walsh
