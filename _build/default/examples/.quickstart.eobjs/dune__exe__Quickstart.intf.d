examples/quickstart.mli:
