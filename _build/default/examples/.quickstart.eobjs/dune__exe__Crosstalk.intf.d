examples/crosstalk.mli:
