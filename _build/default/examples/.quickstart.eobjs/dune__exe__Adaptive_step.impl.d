examples/adaptive_step.ml: Adaptive Array Error Float Generators Grid List Mna Opm Opm_basis Opm_circuit Opm_core Opm_signal Printf Sim_result Source
