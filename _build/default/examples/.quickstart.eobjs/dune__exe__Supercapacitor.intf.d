examples/supercapacitor.mli:
