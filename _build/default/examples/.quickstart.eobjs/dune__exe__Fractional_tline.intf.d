examples/fractional_tline.mli:
