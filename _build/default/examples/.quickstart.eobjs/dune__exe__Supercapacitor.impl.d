examples/supercapacitor.ml: Array Error Generators Grid Grunwald Mna Opm Opm_basis Opm_circuit Opm_core Opm_numkit Opm_signal Opm_transient Printf Sim_result Source Special Waveform
