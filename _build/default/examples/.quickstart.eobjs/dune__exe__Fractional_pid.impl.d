examples/fractional_pid.ml: Coo Csr Grid List Mat Measure Multi_term Opm Opm_basis Opm_core Opm_numkit Opm_signal Opm_sparse Printf Sim_result Source String
