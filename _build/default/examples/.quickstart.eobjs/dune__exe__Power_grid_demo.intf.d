examples/power_grid_demo.mli:
