examples/adaptive_step.mli:
