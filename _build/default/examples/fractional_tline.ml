(* Fractional transmission line — the paper's Table I scenario.

   A 7-state, 2-port half-order descriptor model is simulated over
   [0, 2.7 ns) with m = 8 block pulses (exactly the paper's setup), and
   compared against the frequency-domain FFT method with 8 and 100
   samples (the paper's FFT-1 / FFT-2).

   Run with:  dune exec examples/fractional_tline.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_transient

let () =
  let sys = Tline.model () in
  let sources = Tline.inputs () in
  let t_end = Tline.t_end and alpha = Tline.alpha in

  (* OPM with the paper's m = 8 *)
  let grid = Grid.uniform ~t_end ~m:8 in
  let opm = Opm.simulate_fractional ~grid ~alpha sys sources in

  (* the two FFT baselines *)
  let fft1 = Freq_domain.solve ~n_samples:8 ~alpha ~t_end sys sources in
  let fft2 = Freq_domain.solve ~n_samples:100 ~alpha ~t_end sys sources in

  Printf.printf "port-1 response (OPM, m = 8, α = %g):\n" alpha;
  let y = Sim_result.output opm 0 in
  Array.iteri
    (fun i t -> Printf.printf "  t = %8.3g s   y = %10.6f\n" t y.(i))
    (Grid.midpoints grid);

  (* the paper's eq. (30): FFT measured against OPM *)
  let err name w =
    Printf.printf "  %-8s vs OPM: %6.1f dB\n" name
      (Error.waveform_error_db ~reference:opm.Sim_result.outputs w)
  in
  print_endline "\nrelative error (eq. 30), reference = OPM:";
  err "FFT-1" fft1;
  err "FFT-2" fft2;

  (* a fine-grid OPM run as an independent accuracy yardstick *)
  let fine = Opm.simulate_fractional ~grid:(Grid.uniform ~t_end ~m:512) ~alpha sys sources in
  print_endline "\nagainst a fine OPM reference (m = 512):";
  Printf.printf "  %-8s        %6.1f dB\n" "OPM-8"
    (Error.waveform_error_db ~reference:fine.Sim_result.outputs
       opm.Sim_result.outputs);
  Printf.printf "  %-8s        %6.1f dB\n" "FFT-1"
    (Error.waveform_error_db ~reference:fine.Sim_result.outputs fft1);
  Printf.printf "  %-8s        %6.1f dB\n" "FFT-2"
    (Error.waveform_error_db ~reference:fine.Sim_result.outputs fft2)
