(* Supercapacitor (CPE) charging — a fractional circuit with a known
   closed-form answer.

   A constant-phase element behind a series resistor obeys the scalar
   relaxation FDE  d^α v/dt^α = −λ v + λ u  with λ = 1/(R·Q); for a
   step input the exact response is 1 − E_α(−λ t^α) (Mittag-Leffler).
   The example charges the cell with OPM and the Grünwald–Letnikov
   baseline and prints both against the analytic curve.

   Run with:  dune exec examples/supercapacitor.exe *)

open Opm_numkit
open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_transient

let () =
  let r = 100.0 and q = 1e-3 and alpha = 0.6 in
  let lambda = 1.0 /. (r *. q) in
  let input = Source.Step { amplitude = 1.0; delay = 0.0 } in
  let net = Generators.cpe_charging ~r ~q ~alpha ~input () in
  let t_end = 1.0 in
  match Mna.stamp_fractional ~outputs:[ Mna.Node_voltage "out" ] net with
  | None -> failwith "expected a single-order fractional netlist"
  | Some (sys, alpha', srcs) ->
      assert (alpha' = alpha);
      let m = 256 in
      let grid = Grid.uniform ~t_end ~m in
      let opm = Opm.simulate_fractional ~grid ~alpha sys srcs in
      let gl = Grunwald.solve ~h:(t_end /. float_of_int m) ~alpha ~t_end sys srcs in
      let times = Grid.midpoints grid in
      let y_opm = Sim_result.output opm 0 in
      let gl_resampled = Waveform.resample gl times in
      let y_gl = Waveform.channel gl_resampled 0 in
      Printf.printf "R = %g Ω, Q = %g F·s^(α−1), α = %g  →  λ = %g\n" r q alpha
        lambda;
      print_endline "      t         OPM         GL          exact";
      Array.iteri
        (fun i t ->
          if i mod 32 = 0 then
            Printf.printf "%9.4f  %10.6f  %10.6f  %10.6f\n" t y_opm.(i) y_gl.(i)
              (Special.ml_step_response ~alpha ~lambda t))
        times;
      let exact =
        Waveform.of_function ~labels:[| "exact" |] times (fun t ->
            [| Special.ml_step_response ~alpha ~lambda t |])
      in
      Printf.printf "\nerror vs Mittag-Leffler: OPM %.1f dB, GL %.1f dB\n"
        (Error.waveform_error_db ~reference:exact opm.Sim_result.outputs)
        (Error.waveform_error_db ~reference:exact gl_resampled)
