(* Fractional-order PI^λ control loop — the "controller design"
   application area the paper's introduction motivates FDEs with.

   Plant:      τ ẏ = −y + K·u_c          (first-order lag)
   Controller: u_c = Kp·e + Ki·I^λ e,    e = r − y
   The fractional integrator state w = I^λ e turns the closed loop into
   the two-term FDE

     τ ẏ          = −(1 + K·Kp)·y + K·Ki·w + K·Kp·r
     d^λ w / dt^λ = −y + r

   which Opm.simulate_multi_term solves directly — one run per λ shows
   how the fractional integral action trades overshoot against settling.

   Run with:  dune exec examples/fractional_pid.exe *)

open Opm_numkit
open Opm_sparse
open Opm_basis
open Opm_signal
open Opm_core

let closed_loop ~tau ~k ~kp ~ki ~lambda =
  let e1 = Coo.create ~rows:2 ~cols:2 in
  Coo.add e1 0 0 tau;
  let el = Coo.create ~rows:2 ~cols:2 in
  Coo.add el 1 1 1.0;
  let a =
    Mat.of_arrays [| [| -.(1.0 +. (k *. kp)); k *. ki |]; [| -1.0; 0.0 |] |]
  in
  let b = Mat.of_arrays [| [| k *. kp |]; [| 1.0 |] |] in
  let c = Mat.of_arrays [| [| 1.0; 0.0 |] |] in
  Multi_term.make
    ~state_names:[| "y"; "w" |]
    ~output_names:[| "y" |]
    ~terms:[ (Coo.to_csr e1, 1.0); (Coo.to_csr el, lambda) ]
    ~a:(Csr.of_dense a) ~b ~c ()

let () =
  let tau = 0.5 and k = 2.0 in
  let kp = 1.0 and ki = 2.0 in
  let t_end = 8.0 in
  let grid = Grid.uniform ~t_end ~m:1200 in
  let reference_input = [| Source.Step { amplitude = 1.0; delay = 0.0 } |] in
  Printf.printf
    "plant τ=%.2g K=%.2g; controller Kp=%.2g Ki=%.2g; unit step reference\n\n"
    tau k kp ki;
  Printf.printf "%-8s %12s %12s %14s %16s\n" "λ" "overshoot" "rise time"
    "settling (2%)" "final value";
  print_endline (String.make 68 '-');
  List.iter
    (fun lambda ->
      let sys = closed_loop ~tau ~k ~kp ~ki ~lambda in
      let r = Opm.simulate_multi_term ~grid sys reference_input in
      let w = r.Sim_result.outputs in
      let overshoot = Measure.overshoot w ~channel:0 in
      let rise = Measure.rise_time w ~channel:0 in
      let settle =
        try Printf.sprintf "%10.3f s" (Measure.settling_time w ~channel:0)
        with Not_found -> "   (not settled)"
      in
      Printf.printf "%-8.2g %11.1f%% %10.3f s %14s %16.4f\n" lambda
        (100.0 *. overshoot) rise settle
        (Measure.final_value w ~channel:0))
    [ 0.5; 0.7; 0.9; 1.0; 1.2 ];
  print_endline
    "\nfractional integral action (λ < 1) still removes the steady-state\n\
     error but with heavier-tailed memory: slower final creep, less\n\
     ringing; λ > 1 rings more. The closed loop is a genuine two-term\n\
     FDE — no classical transient method simulates it directly.";
  (* sanity: the λ = 1 loop is an ordinary PI loop with zero
     steady-state error *)
  let r1 =
    Opm.simulate_multi_term ~grid (closed_loop ~tau ~k ~kp ~ki ~lambda:1.0)
      reference_input
  in
  Printf.printf "\nλ = 1 sanity: final value %.6f (exact 1.0)\n"
    (Measure.final_value r1.Sim_result.outputs ~channel:0)
