(* 3-D power grid — the paper's Table II scenario, scaled down.

   Generates an RLC power grid, builds both system formulations the
   paper compares (second-order NA solved by OPM; first-order MNA DAE
   solved by classical transient schemes) and reports the IR-drop
   waveform at the worst load node plus cross-method agreement.

   Run with:  dune exec examples/power_grid_demo.exe *)

open Opm_basis
open Opm_signal
open Opm_core
open Opm_circuit
open Opm_transient

let () =
  let spec =
    { Power_grid.default_spec with nx = 6; ny = 6; nz = 3; load_count = 4 }
  in
  let net = Power_grid.generate spec in
  Printf.printf "grid %dx%dx%d: NA unknowns %d, MNA unknowns %d\n" spec.nx
    spec.ny spec.nz
    (Power_grid.na_unknowns spec)
    (Power_grid.mna_unknowns spec);

  let probe = Mna.Node_voltage (Power_grid.node_name ~x:0 ~y:0 ~z:0) in
  let t_end = 1e-9 in
  let h = 10e-12 in
  let m = int_of_float (t_end /. h) in

  (* OPM on the second-order NA model *)
  let na_sys, na_srcs = Na2.stamp ~outputs:[ probe ] net in
  let grid = Grid.uniform ~t_end ~m in
  let opm = Opm.simulate_multi_term ~grid na_sys na_srcs in

  (* classical schemes on the MNA DAE *)
  let mna_sys, mna_srcs = Mna.stamp_linear ~outputs:[ probe ] net in
  let trap = Stepper.solve ~scheme:Stepper.Trapezoidal ~h ~t_end mna_sys mna_srcs in
  let gear = Stepper.solve ~scheme:Stepper.Gear2 ~h ~t_end mna_sys mna_srcs in
  let be = Stepper.solve ~scheme:Stepper.Backward_euler ~h ~t_end mna_sys mna_srcs in

  print_endline "\nIR drop at the probed node (OPM on NA model):";
  let y = Sim_result.output opm 0 in
  let times = Grid.midpoints grid in
  Array.iteri
    (fun i t ->
      if i mod 10 = 0 then Printf.printf "  t = %8.3g s   v = %10.6g V\n" t y.(i))
    times;

  print_endline "\nagreement with OPM (eq. 30 metric):";
  let report name w =
    Printf.printf "  %-16s %6.1f dB\n" name
      (Error.waveform_error_db ~reference:opm.Sim_result.outputs w)
  in
  report "trapezoidal" trap;
  report "Gear (BDF2)" gear;
  report "backward Euler" be
